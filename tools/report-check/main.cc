/**
 * @file
 * report-check — validator for MITHRA run reports.
 *
 * `report-check <BENCH_*.json>...` parses each file and checks it
 * against the mithra-run-report schema (telemetry/run_report.hh):
 * schema name and version, required sections, and section kinds. CI
 * runs it over every report the bench binaries emit, so a
 * schema-breaking change fails before the artifacts are uploaded.
 * Exits 1 on the first class of failure found (all files are still
 * checked and reported).
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "telemetry/json.hh"
#include "telemetry/run_report.hh"

int
main(int argc, char **argv)
{
    using namespace mithra::telemetry;

    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: report-check <BENCH_*.json>...\n"
                     "Validates MITHRA run reports against schema "
                     "version %lld; exits 1 on any failure.\n",
                     static_cast<long long>(reportSchemaVersion));
        return 2;
    }

    std::size_t failures = 0;
    for (int arg = 1; arg < argc; ++arg) {
        const std::string path = argv[arg];
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "report-check: %s: cannot read\n",
                         path.c_str());
            ++failures;
            continue;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();

        const ParseResult parsed = parseJson(buffer.str());
        if (!parsed.ok) {
            std::fprintf(stderr,
                         "report-check: %s: JSON parse error at offset "
                         "%zu: %s\n",
                         path.c_str(), parsed.errorOffset,
                         parsed.error.c_str());
            ++failures;
            continue;
        }

        const std::string problem = validateReport(parsed.value);
        if (!problem.empty()) {
            std::fprintf(stderr, "report-check: %s: %s\n", path.c_str(),
                         problem.c_str());
            ++failures;
            continue;
        }
        std::fprintf(stderr, "report-check: %s: ok (%s, v%lld)\n",
                     path.c_str(),
                     parsed.value.find("name")->asString().c_str(),
                     static_cast<long long>(
                         parsed.value.find("schemaVersion")->asInt()));
    }

    if (failures) {
        std::fprintf(stderr, "report-check: %zu of %d report(s) failed\n",
                     failures, argc - 1);
        return 1;
    }
    std::fprintf(stderr, "report-check: %d report(s) valid\n", argc - 1);
    return 0;
}
