/**
 * @file
 * report-check — validator for MITHRA run reports, metrics documents
 * and Pareto-front documents.
 *
 * `report-check [--require <spec>]... <BENCH_*.json>...` parses each
 * file and checks it against the mithra-run-report schema
 * (telemetry/run_report.hh): schema name and version, required
 * sections, and section kinds. With `--metrics`, files are validated
 * against the mithra-metrics schema instead — the deterministic
 * document the service's GET /metrics endpoint serves — and
 * `--require` looks keys up in "stats"/"counters". With `--front`,
 * files are validated against the mithra-pareto-front schema the
 * design-space explorer emits, and `--require` looks keys up in the
 * document's "summary" section.
 *
 * Each repeatable `--require <spec>` demands a key in every checked
 * document. A bare name checks presence; `name>=X` and `name==X`
 * additionally gate the numeric value, which is how CI pins headline
 * results (e.g. `dse.exact_evals_saved_pct>=80`) so a bench refactor
 * cannot silently regress them. CI runs report-check over every report
 * the bench binaries emit, so a schema-breaking change fails before
 * the artifacts are uploaded. Exits 1 on the first class of failure
 * found (all files are still checked and reported).
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/json.hh"
#include "telemetry/run_report.hh"

namespace
{

using mithra::telemetry::Json;

/** One `--require` argument: a key plus an optional value gate. */
struct Requirement
{
    enum class Op
    {
        Present,
        AtLeast,
        Equal,
    };

    std::string key;
    Op op = Op::Present;
    double bound = 0.0;

    /** "name", "name>=X" or "name==X"; false on a malformed spec. */
    static bool parse(const std::string &text, Requirement &out)
    {
        std::string::size_type at;
        if ((at = text.find(">=")) != std::string::npos)
            out.op = Op::AtLeast;
        else if ((at = text.find("==")) != std::string::npos)
            out.op = Op::Equal;
        else {
            out.key = text;
            return !out.key.empty();
        }
        out.key = text.substr(0, at);
        const std::string number = text.substr(at + 2);
        char *end = nullptr;
        out.bound = std::strtod(number.c_str(), &end);
        return !out.key.empty() && end && *end == '\0'
               && end != number.c_str();
    }

    /** Empty when satisfied, else the failure description. */
    std::string check(const Json *section) const
    {
        const Json *value = section ? section->find(key) : nullptr;
        if (!value)
            return "required metric `" + key + "' is missing";
        if (op == Op::Present)
            return "";
        if (value->kind() != Json::Kind::Int
            && value->kind() != Json::Kind::Double)
            return "required metric `" + key + "' is not a number";
        const double have = value->asNumber();
        if (op == Op::AtLeast && !(have >= bound)) {
            return "metric `" + key + "' = " + std::to_string(have)
                + " is below the required " + std::to_string(bound);
        }
        if (op == Op::Equal && have != bound) {
            return "metric `" + key + "' = " + std::to_string(have)
                + " does not equal the required "
                + std::to_string(bound);
        }
        return "";
    }
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace mithra::telemetry;

    enum class Mode
    {
        Report,
        Metrics,
        Front,
    };

    std::vector<Requirement> required;
    std::vector<std::string> paths;
    Mode mode = Mode::Report;
    for (int arg = 1; arg < argc; ++arg) {
        const std::string text = argv[arg];
        if (text == "--metrics") {
            mode = Mode::Metrics;
            continue;
        }
        if (text == "--front") {
            mode = Mode::Front;
            continue;
        }
        if (text == "--require") {
            if (arg + 1 >= argc) {
                std::fprintf(stderr,
                             "report-check: --require needs a metric "
                             "name\n");
                return 2;
            }
            Requirement req;
            if (!Requirement::parse(argv[++arg], req)) {
                std::fprintf(stderr,
                             "report-check: malformed --require spec "
                             "`%s' (want name, name>=X or name==X)\n",
                             argv[arg]);
                return 2;
            }
            required.push_back(std::move(req));
            continue;
        }
        paths.push_back(text);
    }

    if (paths.empty()) {
        std::fprintf(stderr,
                     "usage: report-check [--metrics|--front] "
                     "[--require <spec>]... <BENCH_*.json>...\n"
                     "Validates MITHRA run reports against schema "
                     "version %lld; exits 1 on any failure. Each "
                     "--require <spec> (repeatable) demands a key in "
                     "every report's \"metrics\" section (--metrics: "
                     "\"stats\"/\"counters\"; --front: \"summary\"); "
                     "`name>=X' and `name==X' also gate the value.\n",
                     static_cast<long long>(reportSchemaVersion));
        return 2;
    }

    std::size_t failures = 0;
    for (const std::string &path : paths) {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "report-check: %s: cannot read\n",
                         path.c_str());
            ++failures;
            continue;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();

        const ParseResult parsed = parseJson(buffer.str());
        if (!parsed.ok) {
            std::fprintf(stderr,
                         "report-check: %s: JSON parse error at offset "
                         "%zu: %s\n",
                         path.c_str(), parsed.errorOffset,
                         parsed.error.c_str());
            ++failures;
            continue;
        }

        std::string problem;
        switch (mode) {
          case Mode::Report:
            problem = validateReport(parsed.value);
            break;
          case Mode::Metrics:
            problem = validateMetrics(parsed.value);
            break;
          case Mode::Front:
            problem = validateParetoFront(parsed.value);
            break;
        }
        if (!problem.empty()) {
            std::fprintf(stderr, "report-check: %s: %s\n", path.c_str(),
                         problem.c_str());
            ++failures;
            continue;
        }

        const Json *metrics = nullptr;
        switch (mode) {
          case Mode::Report:
            metrics = parsed.value.find("metrics");
            break;
          case Mode::Metrics:
            metrics = parsed.value.find("stats")->find("counters");
            break;
          case Mode::Front:
            metrics = parsed.value.find("summary");
            break;
        }
        bool unmet = false;
        for (const Requirement &req : required) {
            const std::string failure = req.check(metrics);
            if (!failure.empty()) {
                std::fprintf(stderr, "report-check: %s: %s\n",
                             path.c_str(), failure.c_str());
                unmet = true;
            }
        }
        if (unmet) {
            ++failures;
            continue;
        }
        const Json *label = mode == Mode::Report
            ? parsed.value.find("name")
            : parsed.value.find("schema");
        std::fprintf(stderr, "report-check: %s: ok (%s, v%lld)\n",
                     path.c_str(), label->asString().c_str(),
                     static_cast<long long>(
                         parsed.value.find("schemaVersion")->asInt()));
    }

    if (failures) {
        std::fprintf(stderr,
                     "report-check: %zu of %zu report(s) failed\n",
                     failures, paths.size());
        return 1;
    }
    std::fprintf(stderr, "report-check: %zu report(s) valid\n",
                 paths.size());
    return 0;
}
