/**
 * @file
 * report-check — validator for MITHRA run reports and metrics
 * documents.
 *
 * `report-check [--require <metric>]... <BENCH_*.json>...` parses each
 * file and checks it against the mithra-run-report schema
 * (telemetry/run_report.hh): schema name and version, required
 * sections, and section kinds. With `--metrics`, files are validated
 * against the mithra-metrics schema instead — the deterministic
 * document the service's GET /metrics endpoint serves — and
 * `--require <key>` demands that counter in "stats"/"counters". Each repeatable `--require <metric>`
 * additionally demands that every checked report carries that key in
 * its "metrics" section — CI uses this to pin headline metrics (e.g.
 * the kernel speedups) so a bench refactor cannot silently drop them.
 * CI runs it over every report the bench binaries emit, so a
 * schema-breaking change fails before the artifacts are uploaded.
 * Exits 1 on the first class of failure found (all files are still
 * checked and reported).
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/json.hh"
#include "telemetry/run_report.hh"

int
main(int argc, char **argv)
{
    using namespace mithra::telemetry;

    std::vector<std::string> required;
    std::vector<std::string> paths;
    bool metricsMode = false;
    for (int arg = 1; arg < argc; ++arg) {
        const std::string text = argv[arg];
        if (text == "--metrics") {
            metricsMode = true;
            continue;
        }
        if (text == "--require") {
            if (arg + 1 >= argc) {
                std::fprintf(stderr,
                             "report-check: --require needs a metric "
                             "name\n");
                return 2;
            }
            required.emplace_back(argv[++arg]);
            continue;
        }
        paths.push_back(text);
    }

    if (paths.empty()) {
        std::fprintf(stderr,
                     "usage: report-check [--metrics] "
                     "[--require <metric>]... <BENCH_*.json>...\n"
                     "Validates MITHRA run reports against schema "
                     "version %lld; exits 1 on any failure. Each "
                     "--require <metric> (repeatable) demands that key "
                     "in every report's \"metrics\" section.\n",
                     static_cast<long long>(reportSchemaVersion));
        return 2;
    }

    std::size_t failures = 0;
    for (const std::string &path : paths) {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "report-check: %s: cannot read\n",
                         path.c_str());
            ++failures;
            continue;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();

        const ParseResult parsed = parseJson(buffer.str());
        if (!parsed.ok) {
            std::fprintf(stderr,
                         "report-check: %s: JSON parse error at offset "
                         "%zu: %s\n",
                         path.c_str(), parsed.errorOffset,
                         parsed.error.c_str());
            ++failures;
            continue;
        }

        const std::string problem = metricsMode
            ? validateMetrics(parsed.value)
            : validateReport(parsed.value);
        if (!problem.empty()) {
            std::fprintf(stderr, "report-check: %s: %s\n", path.c_str(),
                         problem.c_str());
            ++failures;
            continue;
        }

        bool missingMetric = false;
        const Json *metrics = metricsMode
            ? parsed.value.find("stats")->find("counters")
            : parsed.value.find("metrics");
        for (const std::string &key : required) {
            if (!metrics || !metrics->find(key)) {
                std::fprintf(stderr,
                             "report-check: %s: required metric `%s' "
                             "is missing\n",
                             path.c_str(), key.c_str());
                missingMetric = true;
            }
        }
        if (missingMetric) {
            ++failures;
            continue;
        }
        const Json *label = metricsMode
            ? parsed.value.find("schema")
            : parsed.value.find("name");
        std::fprintf(stderr, "report-check: %s: ok (%s, v%lld)\n",
                     path.c_str(), label->asString().c_str(),
                     static_cast<long long>(
                         parsed.value.find("schemaVersion")->asInt()));
    }

    if (failures) {
        std::fprintf(stderr,
                     "report-check: %zu of %zu report(s) failed\n",
                     failures, paths.size());
        return 1;
    }
    std::fprintf(stderr, "report-check: %zu report(s) valid\n",
                 paths.size());
    return 0;
}
