/**
 * @file
 * Pass 2 — determinism taint.
 *
 * mithra-lint bans most nondeterminism sources outright, but a banned
 * token is not the whole story: a value can pick up nondeterminism
 * legitimately (placement stats, timing under telemetry's control)
 * and then *flow* somewhere it must never reach — a deterministic
 * counter, a run-report metric, a cache key. This pass follows those
 * flows within one translation unit: identifiers assigned from a
 * source become tainted, functions returning taint become tainted
 * TU-wide, and a tainted identifier inside a sink's argument list is
 * an error. src/telemetry/ is the sanctioned quarantine (volatile
 * stats, timing-on-request) and is exempt; so is src/service/ (the
 * serving shell: sockets, wall-clock timeouts and environment live
 * there by design, DESIGN.md §14) and everything outside src/
 * (benches and tests time freely by design).
 */

#include "analyze.hh"

#include <map>
#include <set>

#include "lex.hh"

namespace mithra::analyze
{

namespace
{

using lex::ScanResult;
using lex::Token;
using lex::TokenKind;

/** Identifiers whose value/effect is nondeterministic. */
const std::set<std::string> &
sourceNames()
{
    static const std::set<std::string> names = {
        "getenv",        "rand",          "srand",
        "rand_r",        "drand48",       "lrand48",
        "mrand48",       "random_device", "chrono",
        "clock_gettime", "gettimeofday",  "timespec_get",
        "wallClockNs",   "cpuClockNs",    "threadOrdinal",
        "steady_clock",  "system_clock",  "high_resolution_clock",
        // Socket I/O: payload sizes, peer addresses and readiness are
        // external-world values. Only src/service/ may touch them.
        "socket",        "accept",        "recv",
        "send",          "poll",          "connect",
        "bind",          "listen",        "getsockname",
    };
    return names;
}

/** Call-like sinks whose arguments must stay deterministic. */
const std::set<std::string> &
sinkNames()
{
    static const std::set<std::string> names = {
        "MITHRA_COUNT", "MITHRA_COUNT_DYNAMIC", "MITHRA_GAUGE_SET",
        "MITHRA_HIST",  "addMetric",            "counter",
        "gauge",        "histogram",            "cacheKey",
    };
    return names;
}

bool
isPunct(const Token &token, const char *text)
{
    return token.kind == TokenKind::Punct && token.text == text;
}

bool
isIdent(const Token &token)
{
    return token.kind == TokenKind::Identifier;
}

/** Index of the matching closer for the opener at `open`. */
std::size_t
matchForward(const std::vector<Token> &tokens, std::size_t open)
{
    const std::string &openText = tokens[open].text;
    const std::string closeText = openText == "(" ? ")"
        : openText == "["                         ? "]"
                                                  : "}";
    int depth = 0;
    for (std::size_t i = open; i < tokens.size(); ++i) {
        if (isPunct(tokens[i], openText.c_str()))
            ++depth;
        else if (isPunct(tokens[i], closeText.c_str()) && --depth == 0)
            return i;
    }
    return tokens.size();
}

/** One enclosing function definition: name + body token range. */
struct FunctionSpan
{
    std::string name;
    std::size_t begin; ///< first token inside the body
    std::size_t end;   ///< one past the last body token
};

/**
 * Locate function definitions: `name ( ... ) [specifiers] {`. Lambdas
 * do not match (their `(` is preceded by `]`) and stay part of the
 * enclosing function, which is what taint scoping wants.
 */
std::vector<FunctionSpan>
segmentFunctions(const std::vector<Token> &tokens)
{
    static const std::set<std::string> specifiers = {
        "const", "noexcept", "override", "final", "mutable",
    };
    std::vector<FunctionSpan> spans;
    std::size_t i = 0;
    while (i < tokens.size()) {
        if (!isPunct(tokens[i], "{")) {
            ++i;
            continue;
        }
        // Walk back over trailing specifiers to the `)`.
        std::size_t j = i;
        while (j > 0 && isIdent(tokens[j - 1])
               && specifiers.count(tokens[j - 1].text))
            --j;
        if (j == 0 || !isPunct(tokens[j - 1], ")")) {
            ++i;
            continue;
        }
        // Find the matching `(` and the name before it.
        int depth = 0;
        std::size_t open = j - 1;
        while (open > 0) {
            if (isPunct(tokens[open], ")"))
                ++depth;
            else if (isPunct(tokens[open], "(") && --depth == 0)
                break;
            --open;
        }
        if (open == 0 || !isIdent(tokens[open - 1])) {
            ++i;
            continue;
        }
        const std::size_t close = matchForward(tokens, i);
        spans.push_back({tokens[open - 1].text, i + 1, close});
        i += 1; // descend: nested lambdas belong to this span
    }
    return spans;
}

/** Where and why an identifier became tainted. */
struct TaintOrigin
{
    std::size_t line;
    std::string reason;
};

using TaintMap = std::map<std::string, TaintOrigin>;

/** Names declared as unordered_* or pointer-keyed map/set in the TU. */
std::set<std::string>
hashOrderedContainers(const std::vector<Token> &tokens)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
        if (!isIdent(tokens[i]))
            continue;
        const bool unordered =
            tokens[i].text.rfind("unordered_", 0) == 0;
        const bool orderedAssoc = tokens[i].text == "map"
            || tokens[i].text == "set" || tokens[i].text == "multimap"
            || tokens[i].text == "multiset";
        if (!unordered && !orderedAssoc)
            continue;
        if (!isPunct(tokens[i + 1], "<"))
            continue;
        // Scan the template argument list; for ordered associative
        // containers only a pointer-typed *key* is hash-like (address
        // order), so the pointer must show up before the first
        // top-level comma.
        int depth = 0;
        bool pointerKey = false;
        bool pastKey = false;
        std::size_t k = i + 1;
        for (; k < tokens.size(); ++k) {
            if (isPunct(tokens[k], "<")) {
                ++depth;
            } else if (isPunct(tokens[k], ">")) {
                if (--depth == 0)
                    break;
            } else if (depth == 1 && isPunct(tokens[k], ",")) {
                pastKey = true;
            } else if (isPunct(tokens[k], "*") && !pastKey) {
                pointerKey = true;
            }
        }
        if (orderedAssoc && !pointerKey)
            continue;
        // Declared name: the identifier after the closer (possibly
        // behind & or the variable name directly).
        std::size_t n = k + 1;
        while (n < tokens.size()
               && (isPunct(tokens[n], "&") || isPunct(tokens[n], "*")))
            ++n;
        if (n < tokens.size() && isIdent(tokens[n]))
            names.insert(tokens[n].text);
    }
    return names;
}

/** Does [begin, end) mention a tainted or source identifier? Returns
 *  the offender's name, or empty. */
std::string
taintIn(const std::vector<Token> &tokens, std::size_t begin,
        std::size_t end, const TaintMap &tainted)
{
    for (std::size_t i = begin; i < end && i < tokens.size(); ++i) {
        if (!isIdent(tokens[i]))
            continue;
        if (tainted.count(tokens[i].text)
            || sourceNames().count(tokens[i].text))
            return tokens[i].text;
    }
    return {};
}

/** End of the expression starting at `begin`: the `;`/`,` at relative
 *  depth 0 or the closer that drops below it. */
std::size_t
expressionEnd(const std::vector<Token> &tokens, std::size_t begin)
{
    int depth = 0;
    for (std::size_t i = begin; i < tokens.size(); ++i) {
        const Token &t = tokens[i];
        if (isPunct(t, "(") || isPunct(t, "[") || isPunct(t, "{"))
            ++depth;
        else if (isPunct(t, ")") || isPunct(t, "]")
                 || isPunct(t, "}")) {
            if (--depth < 0)
                return i;
        } else if (depth == 0
                   && (isPunct(t, ";") || isPunct(t, ","))) {
            return i;
        }
    }
    return tokens.size();
}

TaintOrigin
originOf(const std::string &offender, const TaintMap &tainted,
         std::size_t line)
{
    const auto known = tainted.find(offender);
    if (known != tainted.end())
        return known->second;
    return {line, "nondeterminism source `" + offender + "'"};
}

} // namespace

std::vector<Diagnostic>
checkTaint(const SourceFile &file)
{
    std::vector<Diagnostic> diagnostics;
    if (file.path.rfind("src/", 0) != 0
        || file.path.rfind("src/telemetry/", 0) == 0
        || file.path.rfind("src/service/", 0) == 0)
        return diagnostics;

    const ScanResult scanned = lex::scan(file.source);
    const std::vector<Token> &tokens = scanned.tokens;
    TaintMap tainted;

    // Persistent mutable state shared across calls is a source: a
    // thread_local's value depends on which worker runs the chunk.
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
        if (!isIdent(tokens[i]) || tokens[i].text != "thread_local")
            continue;
        std::string last;
        for (std::size_t j = i + 1; j < tokens.size(); ++j) {
            const Token &t = tokens[j];
            if (isPunct(t, "=") || isPunct(t, ";") || isPunct(t, "{")) {
                if (!last.empty())
                    tainted.emplace(
                        last,
                        TaintOrigin{tokens[i].line,
                                    "thread_local state `" + last
                                        + "'"});
                break;
            }
            if (isIdent(t))
                last = t.text;
        }
    }

    // Iteration order over hash-ordered / pointer-keyed containers is
    // platform-dependent: the range-for loop variable is tainted.
    const std::set<std::string> hashOrdered =
        hashOrderedContainers(tokens);
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
        if (!isIdent(tokens[i]) || tokens[i].text != "for"
            || !isPunct(tokens[i + 1], "("))
            continue;
        const std::size_t close = matchForward(tokens, i + 1);
        std::size_t colon = tokens.size();
        std::string loopVar;
        for (std::size_t j = i + 2; j < close; ++j) {
            if (isPunct(tokens[j], ":")
                && !(j > 0 && isPunct(tokens[j - 1], ":"))
                && !(j + 1 < close && isPunct(tokens[j + 1], ":"))) {
                colon = j;
                break;
            }
            if (isIdent(tokens[j]))
                loopVar = tokens[j].text;
        }
        if (colon == tokens.size() || loopVar.empty())
            continue;
        for (std::size_t j = colon + 1; j < close; ++j) {
            if (isIdent(tokens[j]) && hashOrdered.count(tokens[j].text)) {
                tainted.emplace(
                    loopVar,
                    TaintOrigin{tokens[j].line,
                                "iteration order of hash-ordered "
                                "container `"
                                    + tokens[j].text + "'"});
                break;
            }
        }
    }

    const std::vector<FunctionSpan> functions =
        segmentFunctions(tokens);

    // Propagate through assignments and returns to a fixpoint. The
    // function list gives assignment scoping its granularity; returns
    // taint the function's own name TU-wide.
    bool changed = true;
    for (int round = 0; changed && round < 16; ++round) {
        changed = false;
        for (std::size_t i = 1; i + 1 < tokens.size(); ++i) {
            if (!isPunct(tokens[i], "="))
                continue;
            // `==`, `<=`, `>=`, `!=` are two punct tokens; skip them.
            if (isPunct(tokens[i + 1], "="))
                continue;
            const Token &prev = tokens[i - 1];
            if (isPunct(prev, "=") || isPunct(prev, "<")
                || isPunct(prev, ">") || isPunct(prev, "!"))
                continue;
            std::size_t targetIndex;
            if (isIdent(prev)) {
                targetIndex = i - 1; // plain assignment / init
            } else if (i >= 2 && isIdent(tokens[i - 2])
                       && prev.kind == TokenKind::Punct
                       && std::string("+-*/%&|^").find(prev.text)
                           != std::string::npos) {
                targetIndex = i - 2; // compound assignment
            } else {
                continue;
            }
            const std::string offender = taintIn(
                tokens, i + 1, expressionEnd(tokens, i + 1), tainted);
            if (offender.empty())
                continue;
            const std::string &target = tokens[targetIndex].text;
            if (tainted.count(target))
                continue;
            const TaintOrigin origin =
                originOf(offender, tainted, tokens[i].line);
            tainted.emplace(
                target, TaintOrigin{tokens[i].line,
                                    "assigned from " + origin.reason
                                        + " (line "
                                        + std::to_string(origin.line)
                                        + ")"});
            changed = true;
        }
        for (const FunctionSpan &fn : functions) {
            if (tainted.count(fn.name))
                continue;
            for (std::size_t i = fn.begin;
                 i < fn.end && i < tokens.size(); ++i) {
                if (!isIdent(tokens[i]) || tokens[i].text != "return")
                    continue;
                const std::string offender = taintIn(
                    tokens, i + 1, expressionEnd(tokens, i + 1),
                    tainted);
                if (offender.empty())
                    continue;
                const TaintOrigin origin =
                    originOf(offender, tainted, tokens[i].line);
                tainted.emplace(
                    fn.name,
                    TaintOrigin{tokens[i].line,
                                "returns " + origin.reason + " (line "
                                    + std::to_string(origin.line)
                                    + ")"});
                changed = true;
                break;
            }
        }
    }

    // Sinks: any tainted or source identifier inside the call's
    // argument list is a flow of nondeterminism into deterministic
    // output.
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
        if (!isIdent(tokens[i]) || !sinkNames().count(tokens[i].text)
            || !isPunct(tokens[i + 1], "("))
            continue;
        const std::size_t close = matchForward(tokens, i + 1);
        const std::string offender =
            taintIn(tokens, i + 2, close, tainted);
        if (offender.empty())
            continue;
        if (lex::suppressed(scanned.allows, "mithra-analyze",
                            "taint-flow", tokens[i].line))
            continue;
        const TaintOrigin origin =
            originOf(offender, tainted, tokens[i].line);
        diagnostics.push_back(
            {file.shown(), tokens[i].line, "taint-flow",
             "`" + offender + "' (" + origin.reason
                 + ") flows into sink `" + tokens[i].text
                 + "' — nondeterminism may not reach reports, "
                   "telemetry or cache keys outside src/telemetry"});
    }

    return diagnostics;
}

} // namespace mithra::analyze
