/**
 * @file
 * mithra-analyze driver: load the tree, run all four passes, sort the
 * diagnostics. File collection reuses mithra-lint's walker so both
 * tools always agree on what "the tree" is.
 */

#include "analyze.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace mithra::analyze
{

namespace
{

std::string
readFile(const std::string &path, bool &ok)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        ok = false;
        return {};
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    ok = true;
    return buffer.str();
}

/** Strip `<root>/` so pass logic sees repo-relative slashed paths
 *  whatever root the tool was pointed at. */
std::string
relativeTo(const std::string &root, const std::string &path)
{
    const std::string prefix = root == "." ? "./" : root + "/";
    if (path.rfind(prefix, 0) == 0)
        return path.substr(prefix.size());
    return path;
}

} // namespace

TreeReport
analyzeTree(const std::string &root)
{
    TreeReport report;
    std::vector<Diagnostic> &diagnostics = report.diagnostics;

    std::vector<SourceFile> files;
    for (const char *sub : {"src", "bench", "tools", "tests"}) {
        const std::string where = root + "/" + sub;
        for (const std::string &path : lint::collectFiles(where)) {
            bool ok = false;
            std::string source = readFile(path, ok);
            if (!ok) {
                diagnostics.push_back(
                    {path, 1, "io", "cannot read file"});
                continue;
            }
            files.push_back(
                {relativeTo(root, path), std::move(source), path});
        }
    }
    report.fileCount = files.size();

    // Pass 1 — layering. A missing or broken spec is itself an error:
    // the gate must never silently pass because the DAG vanished.
    const std::string specPath = root + "/tools/mithra-analyze/layers.txt";
    bool specOk = false;
    const std::string specText = readFile(specPath, specOk);
    if (!specOk) {
        diagnostics.push_back({specPath, 1, "layer-spec",
                               "cannot read layer specification"});
    } else {
        const LayerSpec spec =
            parseLayerSpec(specPath, specText, diagnostics);
        const std::vector<Diagnostic> layering =
            checkLayering(spec, files);
        diagnostics.insert(diagnostics.end(), layering.begin(),
                           layering.end());
    }

    // Pass 4 needs the registry and the README up front.
    EnvRegistry registry;
    for (const SourceFile &file : files) {
        if (file.path == "src/common/env_registry.hh") {
            registry = parseEnvRegistry(file.source);
            break;
        }
    }
    if (registry.entries.empty()) {
        diagnostics.push_back(
            {root + "/src/common/env_registry.hh", 1, "env-registry",
             "cannot parse any registry entries — the env-var "
             "registry must declare every MITHRA_* variable"});
    }
    const std::string readmePath = root + "/README.md";
    bool readmeOk = false;
    const std::string readmeText = readFile(readmePath, readmeOk);
    if (!readmeOk) {
        diagnostics.push_back({readmePath, 1, "env-registry",
                               "cannot read README.md for the "
                               "environment-table check"});
    } else if (!registry.entries.empty()) {
        const std::vector<Diagnostic> readme =
            checkReadme(registry, readmePath, readmeText);
        diagnostics.insert(diagnostics.end(), readme.begin(),
                           readme.end());
    }

    // Per-file passes 2-4.
    for (const SourceFile &file : files) {
        for (const Diagnostic &d : checkTaint(file))
            diagnostics.push_back(d);
        for (const Diagnostic &d : checkCaptures(file))
            diagnostics.push_back(d);
        for (const Diagnostic &d : checkEnvUse(registry, file))
            diagnostics.push_back(d);
    }

    std::sort(diagnostics.begin(), diagnostics.end(),
              [](const Diagnostic &a, const Diagnostic &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return report;
}

} // namespace mithra::analyze
