/**
 * @file
 * Pass 1 — the include graph and the layering DAG.
 *
 * layers.txt declares the architecture; this pass makes the compiler's
 * include graph match it. Edges are explicit (no transitivity): an
 * allowed A->B and B->C does not license A->C. File-level include
 * cycles are always an error, whatever the layers say.
 */

#include "analyze.hh"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>

#include "lex.hh"

namespace mithra::analyze
{

namespace
{

/** Lexically normalize a slashed path: drop `.`, fold `a/..`. */
std::string
normalPath(const std::string &path)
{
    std::vector<std::string> parts;
    std::string piece;
    std::istringstream in(path);
    while (std::getline(in, piece, '/')) {
        if (piece.empty() || piece == ".")
            continue;
        if (piece == ".." && !parts.empty() && parts.back() != "..") {
            parts.pop_back();
            continue;
        }
        parts.push_back(piece);
    }
    std::string out;
    for (const std::string &part : parts) {
        if (!out.empty())
            out += '/';
        out += part;
    }
    return out;
}

std::string
dirName(const std::string &path)
{
    const std::size_t slash = path.rfind('/');
    return slash == std::string::npos ? std::string()
                                      : path.substr(0, slash);
}

/** Whitespace-split one layers.txt line. */
std::vector<std::string>
splitWords(const std::string &line)
{
    std::vector<std::string> words;
    std::istringstream in(line);
    std::string word;
    while (in >> word)
        words.push_back(word);
    return words;
}

} // namespace

std::size_t
LayerSpec::layerOf(const std::string &path) const
{
    std::size_t best = static_cast<std::size_t>(-1);
    std::size_t bestLength = 0;
    for (std::size_t i = 0; i < layers.size(); ++i) {
        for (const std::string &prefix : layers[i].prefixes) {
            if (path.rfind(prefix, 0) == 0
                && prefix.size() >= bestLength) {
                best = i;
                bestLength = prefix.size();
            }
        }
    }
    return best;
}

bool
LayerSpec::edgeAllowed(std::size_t from, std::size_t to) const
{
    if (from == to)
        return true;
    if (from >= layers.size() || to >= layers.size())
        return false;
    const std::string &target = layers[to].name;
    const auto &allowed = layers[from].allowed;
    return std::find(allowed.begin(), allowed.end(), target)
        != allowed.end();
}

LayerSpec
parseLayerSpec(const std::string &specPath, const std::string &text,
               std::vector<Diagnostic> &diagnostics)
{
    LayerSpec spec;
    std::map<std::string, std::size_t> byName;

    const auto fail = [&](std::size_t line, const std::string &message) {
        diagnostics.push_back({specPath, line, "layer-spec", message});
    };

    std::istringstream in(text);
    std::string line;
    std::size_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        const std::vector<std::string> words = splitWords(line);
        if (words.empty())
            continue;
        if (words[0] == "layer") {
            if (words.size() < 3) {
                fail(lineNo, "`layer' needs a name and at least one "
                             "path prefix");
                continue;
            }
            if (byName.count(words[1])) {
                fail(lineNo, "duplicate layer `" + words[1] + "'");
                continue;
            }
            byName[words[1]] = spec.layers.size();
            LayerSpec::Layer layer;
            layer.name = words[1];
            layer.prefixes.assign(words.begin() + 2, words.end());
            spec.layers.push_back(std::move(layer));
            continue;
        }
        if (words[0] == "allow") {
            if (words.size() < 4 || words[2] != "->") {
                fail(lineNo,
                     "`allow' syntax: allow <layer> -> <dep> [<dep>...]");
                continue;
            }
            const auto from = byName.find(words[1]);
            if (from == byName.end()) {
                fail(lineNo, "allow for undeclared layer `" + words[1]
                                 + "' (declare layers before edges)");
                continue;
            }
            for (std::size_t w = 3; w < words.size(); ++w) {
                if (!byName.count(words[w])) {
                    fail(lineNo, "allow names undeclared layer `"
                                     + words[w] + "'");
                    continue;
                }
                spec.layers[from->second].allowed.push_back(words[w]);
            }
            continue;
        }
        fail(lineNo, "unknown directive `" + words[0]
                         + "' (expected `layer' or `allow')");
    }

    // The allow edges themselves must form a DAG: a cyclic spec would
    // make "upward" meaningless.
    enum class Mark
    {
        White,
        Gray,
        Black
    };
    std::vector<Mark> marks(spec.layers.size(), Mark::White);
    std::vector<std::size_t> stack;
    const std::function<void(std::size_t)> visit = [&](std::size_t at) {
        marks[at] = Mark::Gray;
        stack.push_back(at);
        for (const std::string &dep : spec.layers[at].allowed) {
            const std::size_t next = byName.at(dep);
            if (marks[next] == Mark::Gray) {
                std::string chain;
                for (std::size_t s =
                         static_cast<std::size_t>(
                             std::find(stack.begin(), stack.end(), next)
                             - stack.begin());
                     s < stack.size(); ++s) {
                    chain += spec.layers[stack[s]].name + " -> ";
                }
                chain += dep;
                fail(1, "layer dependency cycle: " + chain);
            } else if (marks[next] == Mark::White) {
                visit(next);
            }
        }
        stack.pop_back();
        marks[at] = Mark::Black;
    };
    for (std::size_t i = 0; i < spec.layers.size(); ++i) {
        if (marks[i] == Mark::White)
            visit(i);
    }

    return spec;
}

std::vector<Diagnostic>
checkLayering(const LayerSpec &spec, const std::vector<SourceFile> &files)
{
    std::vector<Diagnostic> diagnostics;

    std::map<std::string, std::size_t> byPath;
    for (std::size_t i = 0; i < files.size(); ++i)
        byPath[files[i].path] = i;

    struct Edge
    {
        std::size_t target;
        std::size_t line;
    };
    std::vector<std::vector<Edge>> edges(files.size());

    for (std::size_t i = 0; i < files.size(); ++i) {
        const SourceFile &file = files[i];
        const lex::ScanResult scanned = lex::scan(file.source);

        const std::size_t fromLayer = spec.layerOf(file.path);
        if (fromLayer == static_cast<std::size_t>(-1)) {
            diagnostics.push_back(
                {file.shown(), 1, "layering",
                 "file matches no layer in layers.txt — every scanned "
                 "file must belong to exactly one layer"});
        }

        for (const lex::IncludeDirective &include : scanned.includes) {
            // Resolve like the build does: the including file's
            // directory, then the src/ include root, the repo root,
            // and the tool library roots.
            const std::string dir = dirName(file.path);
            std::size_t target = static_cast<std::size_t>(-1);
            for (const std::string &base :
                 {dir, std::string("src"), std::string(),
                  std::string("tools/mithra-lint"),
                  std::string("tools/mithra-analyze")}) {
                const std::string candidate = normalPath(
                    base.empty() ? include.target
                                 : base + "/" + include.target);
                const auto found = byPath.find(candidate);
                if (found != byPath.end()) {
                    target = found->second;
                    break;
                }
            }
            if (target == static_cast<std::size_t>(-1))
                continue; // external header
            edges[i].push_back({target, include.line});

            const std::size_t toLayer =
                spec.layerOf(files[target].path);
            if (fromLayer == static_cast<std::size_t>(-1)
                || toLayer == static_cast<std::size_t>(-1))
                continue;
            if (spec.edgeAllowed(fromLayer, toLayer))
                continue;
            if (lex::suppressed(scanned.allows, "mithra-analyze",
                                "layering", include.line))
                continue;
            diagnostics.push_back(
                {file.shown(), include.line, "layering",
                 "include chain " + file.path + " (layer "
                     + spec.layers[fromLayer].name + ") -> "
                     + files[target].path + " (layer "
                     + spec.layers[toLayer].name
                     + ") is not an allowed edge in layers.txt"});
        }
    }

    // File-level cycle detection; each cycle reported once, with the
    // full offending include chain printed.
    enum class Mark
    {
        White,
        Gray,
        Black
    };
    std::vector<Mark> marks(files.size(), Mark::White);
    std::vector<std::size_t> stack;
    std::set<std::string> seenCycles;
    const std::function<void(std::size_t)> visit = [&](std::size_t at) {
        marks[at] = Mark::Gray;
        stack.push_back(at);
        for (const Edge &edge : edges[at]) {
            if (marks[edge.target] == Mark::Gray) {
                const auto begin = std::find(stack.begin(), stack.end(),
                                             edge.target);
                std::string chain;
                for (auto it = begin; it != stack.end(); ++it)
                    chain += files[*it].path + " -> ";
                chain += files[edge.target].path;
                if (seenCycles.insert(chain).second) {
                    diagnostics.push_back(
                        {files[at].shown(), edge.line, "include-cycle",
                         "include cycle: " + chain});
                }
            } else if (marks[edge.target] == Mark::White) {
                visit(edge.target);
            }
        }
        stack.pop_back();
        marks[at] = Mark::Black;
    };
    for (std::size_t i = 0; i < files.size(); ++i) {
        if (marks[i] == Mark::White)
            visit(i);
    }

    return diagnostics;
}

} // namespace mithra::analyze
