/**
 * @file
 * mithra-analyze driver: `mithra-analyze [--env-table] [<repo-root>]`
 * runs the four semantic passes (layering DAG, determinism taint,
 * parallel-capture races, env-var registry) over the tree and exits
 * nonzero on any finding. `--env-table` prints the README environment
 * table regenerated from src/common/env_registry.hh and exits.
 * See analyze.hh for the pass catalog.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "analyze.hh"

int
main(int argc, char **argv)
{
    using namespace mithra::analyze;

    bool envTable = false;
    std::string root = ".";
    for (int arg = 1; arg < argc; ++arg) {
        const std::string word = argv[arg];
        if (word == "--env-table") {
            envTable = true;
        } else if (!word.empty() && word[0] == '-') {
            std::fprintf(stderr,
                         "usage: mithra-analyze [--env-table] "
                         "[<repo-root>]\n"
                         "Semantic analysis over "
                         "<root>/{src,bench,tools,tests}; exits 1 on "
                         "any finding.\n");
            return 2;
        } else {
            root = word;
        }
    }

    if (envTable) {
        const std::string path = root + "/src/common/env_registry.hh";
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            std::fprintf(stderr,
                         "mithra-analyze: cannot read %s\n",
                         path.c_str());
            return 2;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        const EnvRegistry registry = parseEnvRegistry(buffer.str());
        if (registry.entries.empty()) {
            std::fprintf(stderr,
                         "mithra-analyze: no registry entries in %s\n",
                         path.c_str());
            return 1;
        }
        std::fputs(renderEnvTable(registry).c_str(), stdout);
        return 0;
    }

    const TreeReport report = analyzeTree(root);
    for (const Diagnostic &d : report.diagnostics)
        std::fprintf(stderr, "%s\n", formatDiagnostic(d).c_str());

    if (!report.diagnostics.empty()) {
        std::fprintf(stderr,
                     "mithra-analyze: %zu finding(s) in %zu file(s) "
                     "scanned\n",
                     report.diagnostics.size(), report.fileCount);
        return 1;
    }
    std::fprintf(stderr, "mithra-analyze: %zu file(s) clean\n",
                 report.fileCount);
    return 0;
}
