/**
 * @file
 * Pass 4 — the MITHRA_* environment-variable registry.
 *
 * Every knob the runtime reads from the environment must be declared
 * exactly once, in src/common/env_registry.hh, with its value range,
 * fallback, and a one-line doc string. This pass closes the loop in
 * three directions: (a) raw `getenv` anywhere outside the registry
 * header is banned — call the checked env:: accessors instead; (b) a
 * `MITHRA_*` string handed to an accessor (or to setenv/unsetenv in
 * tests) must name a registry entry; (c) the registry and the README
 * environment table must list exactly the same variables
 * (`mithra-analyze --env-table` regenerates the table).
 */

#include "analyze.hh"

#include <algorithm>
#include <set>
#include <sstream>

#include "lex.hh"

namespace mithra::analyze
{

namespace
{

using lex::ScanResult;
using lex::Token;
using lex::TokenKind;

bool
isPunct(const Token &token, const char *text)
{
    return token.kind == TokenKind::Punct && token.text == text;
}

/** Calls whose first string argument names an environment variable. */
const std::set<std::string> &
envAccessors()
{
    static const std::set<std::string> names = {
        "getenv", "secure_getenv", "setenv", "unsetenv", "putenv",
        "raw",    "countIn",       "realIn", "flag",     "seed",
        "text",
    };
    return names;
}

} // namespace

bool
EnvRegistry::registered(const std::string &name) const
{
    return std::any_of(entries.begin(), entries.end(),
                       [&](const Entry &entry) {
                           return entry.name == name;
                       });
}

EnvRegistry
parseEnvRegistry(const std::string &source)
{
    EnvRegistry registry;
    const ScanResult scanned = lex::scan(source);
    const std::vector<Token> &tokens = scanned.tokens;

    // Find `registry` followed (eventually) by `{` — the array
    // initializer. Entries are inner brace groups of four
    // comma-separated string fields; adjacent string literals
    // concatenate, like in C++.
    std::size_t start = tokens.size();
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
        if (tokens[i].kind == TokenKind::Identifier
            && tokens[i].text == "registry") {
            for (std::size_t j = i + 1;
                 j < tokens.size() && j < i + 8; ++j) {
                if (isPunct(tokens[j], "{")) {
                    start = j;
                    break;
                }
            }
            break;
        }
    }
    if (start == tokens.size())
        return registry;

    // Aggregate nesting varies (`std::array` needs double braces), so
    // an "entry" is recognized by content: a brace group whose first
    // token is a string literal.
    int depth = 0;
    int entryDepth = 0;
    EnvRegistry::Entry entry;
    std::string field;
    std::size_t fieldIndex = 0;
    const auto commitField = [&]() {
        switch (fieldIndex) {
        case 0: entry.name = field; break;
        case 1: entry.values = field; break;
        case 2: entry.fallback = field; break;
        case 3: entry.doc = field; break;
        default: break;
        }
        field.clear();
        ++fieldIndex;
    };
    for (std::size_t i = start; i < tokens.size(); ++i) {
        const Token &t = tokens[i];
        if (isPunct(t, "{")) {
            ++depth;
            if (entryDepth == 0 && i + 1 < tokens.size()
                && tokens[i + 1].kind == TokenKind::String) {
                entryDepth = depth;
                entry = {};
                field.clear();
                fieldIndex = 0;
            }
            continue;
        }
        if (isPunct(t, "}")) {
            if (depth == entryDepth) {
                commitField();
                if (!entry.name.empty())
                    registry.entries.push_back(entry);
                entryDepth = 0;
            }
            if (--depth == 0)
                break;
            continue;
        }
        if (entryDepth == 0 || depth != entryDepth)
            continue;
        if (isPunct(t, ",")) {
            commitField();
            continue;
        }
        if (t.kind == TokenKind::String)
            field += t.text;
    }
    return registry;
}

std::vector<Diagnostic>
checkEnvUse(const EnvRegistry &registry, const SourceFile &file)
{
    std::vector<Diagnostic> diagnostics;
    const bool isRegistryHeader =
        file.path == "src/common/env_registry.hh";
    if (isRegistryHeader)
        return diagnostics;

    const ScanResult scanned = lex::scan(file.source);
    const std::vector<Token> &tokens = scanned.tokens;

    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
        const Token &t = tokens[i];
        if (t.kind != TokenKind::Identifier)
            continue;

        // (a) raw getenv outside the registry header. Applies to every
        // scanned root: tests and benches read knobs through the
        // checked accessors too, so malformed values trip contracts
        // everywhere the same way.
        if ((t.text == "getenv" || t.text == "secure_getenv")
            && isPunct(tokens[i + 1], "(")
            && !lex::suppressed(scanned.allows, "mithra-analyze",
                                "env-registry", t.line)) {
            diagnostics.push_back(
                {file.shown(), t.line, "env-registry",
                 "raw `" + t.text
                     + "' — read environment knobs through the "
                       "checked accessors in "
                       "src/common/env_registry.hh"});
        }

        // (b) MITHRA_* names handed to accessors must be registered.
        if (!envAccessors().count(t.text)
            || !isPunct(tokens[i + 1], "("))
            continue;
        if (i + 2 >= tokens.size()
            || tokens[i + 2].kind != TokenKind::String)
            continue;
        const std::string &name = tokens[i + 2].text;
        if (name.rfind("MITHRA_", 0) != 0)
            continue;
        if (registry.registered(name))
            continue;
        if (lex::suppressed(scanned.allows, "mithra-analyze",
                            "env-registry", t.line))
            continue;
        diagnostics.push_back(
            {file.shown(), t.line, "env-registry",
             "`" + name
                 + "' is not declared in src/common/env_registry.hh — "
                   "every MITHRA_* variable needs a registry entry "
                   "with range and doc string"});
    }
    return diagnostics;
}

std::vector<Diagnostic>
checkReadme(const EnvRegistry &registry, const std::string &readmePath,
            const std::string &readmeText)
{
    std::vector<Diagnostic> diagnostics;

    // Table rows look like `| `MITHRA_FOO` | ... |`. Collect the rows
    // in order so the README can also be checked for staleness against
    // the registry order.
    std::vector<std::pair<std::string, std::size_t>> rows;
    std::istringstream in(readmeText);
    std::string line;
    std::size_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        const std::string prefix = "| `MITHRA_";
        if (line.rfind(prefix, 0) != 0)
            continue;
        const std::size_t start = 2; // after "| "
        const std::size_t closeTick = line.find('`', start + 1);
        if (closeTick == std::string::npos)
            continue;
        rows.emplace_back(line.substr(start + 1, closeTick - start - 1),
                          lineNo);
    }

    for (const auto &[name, rowLine] : rows) {
        if (!registry.registered(name)) {
            diagnostics.push_back(
                {readmePath, rowLine, "env-registry",
                 "README documents `" + name
                     + "' but src/common/env_registry.hh does not "
                       "declare it — stale row, or missing registry "
                       "entry"});
        }
    }
    for (const EnvRegistry::Entry &entry : registry.entries) {
        const bool present =
            std::any_of(rows.begin(), rows.end(),
                        [&](const std::pair<std::string, std::size_t> &row) {
                            return row.first == entry.name;
                        });
        if (!present) {
            diagnostics.push_back(
                {readmePath, 1, "env-registry",
                 "registry entry `" + entry.name
                     + "' is missing from the README environment "
                       "table — regenerate it with `mithra-analyze "
                       "--env-table`"});
        }
    }
    return diagnostics;
}

std::string
renderEnvTable(const EnvRegistry &registry)
{
    std::string out;
    out += "| variable | values (default) | effect |\n";
    out += "| --- | --- | --- |\n";
    for (const EnvRegistry::Entry &entry : registry.entries) {
        out += "| `" + entry.name + "` | " + entry.values + " ("
            + entry.fallback + ") | " + entry.doc + " |\n";
    }
    return out;
}

} // namespace mithra::analyze
