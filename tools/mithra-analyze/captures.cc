/**
 * @file
 * Pass 3 — parallel-capture race heuristic.
 *
 * The deterministic parallel substrate promises bitwise-identical
 * results at any MITHRA_THREADS; a lambda handed to parallelFor that
 * writes an unstriped by-reference capture breaks that promise (and
 * usually the memory model too). tsan catches such races *when a test
 * provokes the interleaving*; this pass flags them statically on every
 * run. Writes are allowed when the target is a lambda local or
 * parameter, a per-slot indexed write, declared std::atomic in the TU,
 * or preceded by a mutex guard in the same body. Nested parallel
 * calls are analyzed with the enclosing lambda's parameters and locals
 * in scope — the substrate runs nested regions inline on the calling
 * worker, so outer-indexed writes stay single-writer.
 */

#include "analyze.hh"

#include <set>

#include "lex.hh"

namespace mithra::analyze
{

namespace
{

using lex::ScanResult;
using lex::Token;
using lex::TokenKind;

bool
isPunct(const Token &token, const char *text)
{
    return token.kind == TokenKind::Punct && token.text == text;
}

bool
isIdent(const Token &token)
{
    return token.kind == TokenKind::Identifier;
}

bool
isParallelEntry(const std::string &name)
{
    return name == "parallelFor" || name == "parallelForChunks"
        || name == "parallelMapReduce";
}

std::size_t
matchForward(const std::vector<Token> &tokens, std::size_t open)
{
    const std::string &openText = tokens[open].text;
    const std::string closeText = openText == "(" ? ")"
        : openText == "["                         ? "]"
                                                  : "}";
    int depth = 0;
    for (std::size_t i = open; i < tokens.size(); ++i) {
        if (isPunct(tokens[i], openText.c_str()))
            ++depth;
        else if (isPunct(tokens[i], closeText.c_str()) && --depth == 0)
            return i;
    }
    return tokens.size();
}

/** Names declared std::atomic<...> (or atomic_*) anywhere in the TU. */
std::set<std::string>
atomicNames(const std::vector<Token> &tokens)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        if (!isIdent(tokens[i])
            || tokens[i].text.rfind("atomic", 0) != 0)
            continue;
        std::size_t n = i + 1;
        if (n < tokens.size() && isPunct(tokens[n], "<")) {
            int depth = 0;
            for (; n < tokens.size(); ++n) {
                if (isPunct(tokens[n], "<"))
                    ++depth;
                else if (isPunct(tokens[n], ">") && --depth == 0)
                    break;
            }
            ++n;
        }
        if (n < tokens.size() && isIdent(tokens[n]))
            names.insert(tokens[n].text);
    }
    return names;
}

/** Parsed capture list of one lambda. */
struct CaptureList
{
    bool defaultRef = false;          ///< `[&]` or `[&, ...]`
    std::set<std::string> byRef;      ///< explicit `&name`
    std::set<std::string> byValue;    ///< `name`, `name = ...`, `*this`
};

CaptureList
parseCaptures(const std::vector<Token> &tokens, std::size_t open,
              std::size_t close)
{
    CaptureList captures;
    bool pendingRef = false;
    for (std::size_t i = open + 1; i < close; ++i) {
        const Token &t = tokens[i];
        if (isPunct(t, "&")) {
            // `[&]` / `[&,` is a default; `&name` is explicit.
            if (i + 1 >= close || isPunct(tokens[i + 1], ","))
                captures.defaultRef = true;
            else
                pendingRef = true;
            continue;
        }
        if (isIdent(t)) {
            if (pendingRef)
                captures.byRef.insert(t.text);
            else
                captures.byValue.insert(t.text);
            // `name = init` captures by value: skip the initializer.
            if (i + 1 < close && isPunct(tokens[i + 1], "=")) {
                int depth = 0;
                for (++i; i < close; ++i) {
                    if (isPunct(tokens[i], "(")
                        || isPunct(tokens[i], "[")
                        || isPunct(tokens[i], "{"))
                        ++depth;
                    else if (isPunct(tokens[i], ")")
                             || isPunct(tokens[i], "]")
                             || isPunct(tokens[i], "}"))
                        --depth;
                    else if (depth == 0 && isPunct(tokens[i], ","))
                        break;
                }
                --i;
            }
        }
        if (isPunct(t, ","))
            pendingRef = false;
    }
    return captures;
}

/** Parameter names between the lambda's `(` and `)`. */
std::set<std::string>
parseParams(const std::vector<Token> &tokens, std::size_t open,
            std::size_t close)
{
    std::set<std::string> params;
    std::string last;
    int depth = 0;
    for (std::size_t i = open + 1; i < close; ++i) {
        const Token &t = tokens[i];
        if (isPunct(t, "(") || isPunct(t, "<") || isPunct(t, "["))
            ++depth;
        else if (isPunct(t, ")") || isPunct(t, ">")
                 || isPunct(t, "]"))
            --depth;
        if (depth != 0)
            continue;
        if (isIdent(t)) {
            last = t.text;
        } else if (isPunct(t, ",") || isPunct(t, "=")) {
            if (!last.empty())
                params.insert(last);
            last.clear();
            if (isPunct(t, "=")) {
                // Skip default argument to the next top-level comma.
                for (++i; i < close; ++i) {
                    if (isPunct(tokens[i], "(")
                        || isPunct(tokens[i], "<"))
                        ++depth;
                    else if (isPunct(tokens[i], ")")
                             || isPunct(tokens[i], ">"))
                        --depth;
                    else if (depth == 0 && isPunct(tokens[i], ","))
                        break;
                }
                --i;
            }
        }
    }
    if (!last.empty())
        params.insert(last);
    return params;
}

/** Heuristic body-local declarations: `Type name =`, `Type name;`,
 *  `Type name{`, and range-for `Type name :`. */
std::set<std::string>
parseLocals(const std::vector<Token> &tokens, std::size_t begin,
            std::size_t end)
{
    std::set<std::string> locals;
    for (std::size_t i = begin + 1; i < end; ++i) {
        if (!isIdent(tokens[i]))
            continue;
        const Token &prev = tokens[i - 1];
        const bool typedPrev = isIdent(prev) || isPunct(prev, "&")
            || isPunct(prev, "*") || isPunct(prev, ">");
        if (!typedPrev)
            continue;
        if (isIdent(prev)
            && (prev.text == "return" || prev.text == "co_return"
                || prev.text == "delete" || prev.text == "new"))
            continue;
        if (i + 1 >= end)
            continue;
        const Token &next = tokens[i + 1];
        const bool declLike = isPunct(next, "=") || isPunct(next, ";")
            || isPunct(next, "{")
            || (isPunct(next, ":")
                && !(i + 2 < end && isPunct(tokens[i + 2], ":")));
        if (!declLike)
            continue;
        // `a == b` / `a <= b`: `=` here is half of a comparison.
        if (isPunct(next, "=") && i + 2 < end
            && isPunct(tokens[i + 2], "="))
            continue;
        locals.insert(tokens[i].text);
    }
    return locals;
}

/** Mutex-guard declarations make later writes in the body ordered. */
bool
guardBefore(const std::vector<Token> &tokens, std::size_t begin,
            std::size_t until)
{
    static const std::set<std::string> guards = {
        "lock_guard", "scoped_lock", "unique_lock", "shared_lock",
    };
    for (std::size_t i = begin; i < until; ++i) {
        if (isIdent(tokens[i]) && guards.count(tokens[i].text))
            return true;
    }
    return false;
}

/** A write target: the base identifier of the postfix chain ending
 *  just before `op`, plus whether any index on the chain mentions a
 *  name from `slotNames`. */
struct WriteTarget
{
    std::string base;
    std::size_t baseIndex = 0;
    bool slotIndexed = false;
};

bool
resolveTarget(const std::vector<Token> &tokens, std::size_t op,
              const std::set<std::string> &slotNames,
              WriteTarget &out)
{
    std::size_t i = op; // one past the end of the chain, walking left
    bool sawIndex = false;
    while (i > 0) {
        const Token &t = tokens[i - 1];
        if (isPunct(t, "]")) {
            // Match back to the `[`, scanning the index expression.
            int depth = 0;
            std::size_t j = i - 1;
            for (;; --j) {
                if (isPunct(tokens[j], "]"))
                    ++depth;
                else if (isPunct(tokens[j], "[") && --depth == 0)
                    break;
                else if (isIdent(tokens[j])
                         && slotNames.count(tokens[j].text))
                    sawIndex = true;
                if (j == 0)
                    return false;
            }
            i = j;
            continue;
        }
        if (isPunct(t, ".")) {
            --i;
            continue;
        }
        if (isPunct(t, ">") && i >= 2 && isPunct(tokens[i - 2], "-")) {
            i -= 2;
            continue;
        }
        if (isIdent(t)) {
            // Possibly more chain to the left (`a.b`, `a->b`, `a[i].b`).
            if (i >= 2
                && (isPunct(tokens[i - 2], ".")
                    || isPunct(tokens[i - 2], "]")
                    || (isPunct(tokens[i - 2], ">") && i >= 3
                        && isPunct(tokens[i - 3], "-")))) {
                --i;
                continue;
            }
            out.base = t.text;
            out.baseIndex = i - 1;
            out.slotIndexed = sawIndex;
            return true;
        }
        return false;
    }
    return false;
}

struct Context
{
    const SourceFile *file;
    const std::vector<Token> *tokens;
    const std::vector<lex::Annotation> *allows;
    std::set<std::string> atomics;
    std::vector<Diagnostic> *diagnostics;
};

void analyzeCallSpan(const Context &ctx, std::size_t begin,
                     std::size_t end, std::set<std::string> slotNames);

/** Analyze one lambda body for writes to shared by-ref captures.
 *  `slotNames` carries the enclosing lambdas' params/locals for nested
 *  parallel regions (which run inline, hence single-writer). */
void
analyzeBody(const Context &ctx, std::size_t bodyBegin,
            std::size_t bodyEnd, const CaptureList &captures,
            std::set<std::string> slotNames)
{
    const std::vector<Token> &tokens = *ctx.tokens;

    // Record writes before descending: nested parallel call spans are
    // skipped here and analyzed recursively with our slots in scope.
    std::vector<std::pair<std::size_t, std::size_t>> nested;
    for (std::size_t i = bodyBegin; i < bodyEnd; ++i) {
        if (isIdent(tokens[i]) && isParallelEntry(tokens[i].text)
            && i + 1 < bodyEnd && isPunct(tokens[i + 1], "(")) {
            const std::size_t close = matchForward(tokens, i + 1);
            nested.emplace_back(i + 1, close);
            i = close;
        }
    }

    const auto inNested = [&](std::size_t i) {
        for (const auto &span : nested)
            if (i > span.first && i < span.second)
                return true;
        return false;
    };

    const auto sharedWrite = [&](const WriteTarget &target) {
        if (slotNames.count(target.base))
            return false; // local or parameter
        if (!captures.defaultRef && !captures.byRef.count(target.base))
            return false; // not captured by reference
        if (captures.byValue.count(target.base))
            return false; // value copy, private to the lambda
        if (target.slotIndexed)
            return false; // per-slot striped write
        if (ctx.atomics.count(target.base))
            return false;
        if (guardBefore(tokens, bodyBegin, target.baseIndex))
            return false;
        return true;
    };

    const auto report = [&](const WriteTarget &target,
                            const char *what) {
        const std::size_t line = tokens[target.baseIndex].line;
        if (lex::suppressed(*ctx.allows, "mithra-analyze",
                            "capture-race", line))
            return;
        ctx.diagnostics->push_back(
            {ctx.file->shown(), line, "capture-race",
             std::string(what) + " to by-reference capture `"
                 + target.base
                 + "' in a parallel lambda — use a per-slot array "
                   "indexed by the lambda parameter, an atomic, or a "
                   "mutex"});
    };

    for (std::size_t i = bodyBegin + 1; i < bodyEnd; ++i) {
        if (inNested(i))
            continue;
        const Token &t = tokens[i];
        WriteTarget target;
        if (isPunct(t, "=")) {
            // Exclude ==, !=, <=, >= halves and compound second chars.
            if (i + 1 < bodyEnd && isPunct(tokens[i + 1], "="))
                continue;
            const Token &prev = tokens[i - 1];
            if (isPunct(prev, "=") || isPunct(prev, "<")
                || isPunct(prev, ">") || isPunct(prev, "!"))
                continue;
            std::size_t opStart = i;
            if (prev.kind == TokenKind::Punct && prev.text.size() == 1
                && std::string("+-*/%&|^").find(prev.text)
                    != std::string::npos)
                opStart = i - 1; // compound assignment
            if (!resolveTarget(tokens, opStart, slotNames, target))
                continue;
            if (sharedWrite(target))
                report(target,
                       opStart == i ? "assignment" : "compound write");
            continue;
        }
        if ((isPunct(t, "+") && i + 1 < bodyEnd
             && isPunct(tokens[i + 1], "+"))
            || (isPunct(t, "-") && i + 1 < bodyEnd
                && isPunct(tokens[i + 1], "-"))) {
            // Skip the middle of `+++`-like runs (never valid anyway)
            // and make sure this is the operator's first token.
            if (i > bodyBegin && tokens[i - 1].text == t.text
                && tokens[i - 1].kind == TokenKind::Punct)
                continue;
            // Post-increment: chain ends before the operator.
            if (resolveTarget(tokens, i, slotNames, target)
                && sharedWrite(target)) {
                report(target, "increment/decrement");
                i += 1;
                continue;
            }
            // Pre-increment: target follows the operator.
            std::size_t n = i + 2;
            if (n < bodyEnd && isIdent(tokens[n])) {
                // Walk the chain rightward to its end to reuse
                // resolveTarget: find the end of `a.b[c]` style chain.
                std::size_t endOfChain = n;
                while (endOfChain + 1 < bodyEnd) {
                    const Token &nt = tokens[endOfChain + 1];
                    if (isPunct(nt, ".")) {
                        endOfChain += 2;
                    } else if (isPunct(nt, "-") && endOfChain + 2 < bodyEnd
                               && isPunct(tokens[endOfChain + 2], ">")) {
                        endOfChain += 3;
                    } else if (isPunct(nt, "[")) {
                        endOfChain = matchForward(tokens, endOfChain + 1);
                    } else {
                        break;
                    }
                }
                if (resolveTarget(tokens, endOfChain + 1, slotNames,
                                  target)
                    && sharedWrite(target))
                    report(target, "increment/decrement");
            }
            i += 1;
            continue;
        }
    }

    // Descend into nested parallel calls with our names in scope.
    for (const auto &span : nested)
        analyzeCallSpan(ctx, span.first, span.second, slotNames);
}

/** Analyze every by-ref lambda inside one parallel call's argument
 *  span `(begin .. end)`. */
void
analyzeCallSpan(const Context &ctx, std::size_t begin, std::size_t end,
                std::set<std::string> slotNames)
{
    const std::vector<Token> &tokens = *ctx.tokens;
    for (std::size_t i = begin + 1; i < end; ++i) {
        if (!isPunct(tokens[i], "["))
            continue;
        // A capture list directly follows `(`, `,` or the span start;
        // anything else (`x[i]`) is a subscript.
        const Token &prev = tokens[i - 1];
        if (!(isPunct(prev, "(") || isPunct(prev, ",")))
            continue;
        const std::size_t closeBracket = matchForward(tokens, i);
        if (closeBracket >= end)
            break;
        const CaptureList captures =
            parseCaptures(tokens, i, closeBracket);
        if (!captures.defaultRef && captures.byRef.empty()) {
            i = closeBracket;
            continue;
        }
        // Optional parameter list, then optional specifiers / trailing
        // return, then the body.
        std::size_t cursor = closeBracket + 1;
        std::set<std::string> params;
        if (cursor < end && isPunct(tokens[cursor], "(")) {
            const std::size_t closeParen = matchForward(tokens, cursor);
            params = parseParams(tokens, cursor, closeParen);
            cursor = closeParen + 1;
        }
        while (cursor < end && !isPunct(tokens[cursor], "{"))
            ++cursor;
        if (cursor >= end)
            break;
        const std::size_t bodyEnd = matchForward(tokens, cursor);
        std::set<std::string> slots = slotNames;
        slots.insert(params.begin(), params.end());
        const std::set<std::string> locals =
            parseLocals(tokens, cursor, bodyEnd);
        slots.insert(locals.begin(), locals.end());
        analyzeBody(ctx, cursor, bodyEnd, captures, slots);
        i = bodyEnd;
    }
}

} // namespace

std::vector<Diagnostic>
checkCaptures(const SourceFile &file)
{
    std::vector<Diagnostic> diagnostics;
    const ScanResult scanned = lex::scan(file.source);
    const std::vector<Token> &tokens = scanned.tokens;

    Context ctx;
    ctx.file = &file;
    ctx.tokens = &tokens;
    ctx.allows = &scanned.allows;
    ctx.atomics = atomicNames(tokens);
    ctx.diagnostics = &diagnostics;

    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
        if (!isIdent(tokens[i]) || !isParallelEntry(tokens[i].text)
            || !isPunct(tokens[i + 1], "("))
            continue;
        const std::size_t close = matchForward(tokens, i + 1);
        analyzeCallSpan(ctx, i + 1, close, {});
        i = close;
    }

    return diagnostics;
}

} // namespace mithra::analyze
