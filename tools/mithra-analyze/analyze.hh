/**
 * @file
 * mithra-analyze — semantic static analysis over the MITHRA tree.
 *
 * mithra-lint (tools/mithra-lint) enforces *token-level* invariants:
 * a banned identifier is an error wherever it appears. This tool is
 * the semantic layer above it — it reasons about relationships the
 * token rules cannot see: which file includes which, where a value
 * came from before it reached a sink, what a parallel lambda captures
 * and writes. Four passes, all running off the shared lexer in
 * tools/mithra-lint/lex.{hh,cc}:
 *
 *  Pass 1 — layering (`layering`, `include-cycle`)
 *      Extracts the project include graph and checks it against the
 *      declarative layer DAG in tools/mithra-analyze/layers.txt.
 *      Every scanned file must map to exactly one layer (longest
 *      path-prefix match); an include crossing layers must follow a
 *      declared `allow` edge. Edges are explicit, not transitive —
 *      if core may use telemetry and telemetry may use common, core
 *      must still declare common to include it. File-level include
 *      cycles are reported with the full cycle printed.
 *
 *  Pass 2 — determinism taint (`taint-flow`)
 *      A translation-unit-local taint pass over src/ (src/telemetry/
 *      is the sanctioned quarantine and is exempt). Nondeterminism
 *      sources: getenv, rand-family, random_device, timing calls
 *      (chrono, clock_gettime, wallClockNs, ...), threadOrdinal,
 *      thread_local variables, and range-for iteration over
 *      unordered_* or pointer-keyed containers. Taint propagates
 *      through assignments (`x = tainted`) within one function body
 *      and through `return tainted;` into the enclosing function's
 *      name TU-wide. A tainted identifier reaching a report /
 *      telemetry / cache-key sink (MITHRA_COUNT, MITHRA_GAUGE_SET,
 *      MITHRA_HIST, addMetric, counter/gauge/histogram, cacheKey) is
 *      an error. Strictly stronger than mithra-lint's token rules:
 *      those catch the source, this catches the *flow*.
 *
 *  Pass 3 — parallel-capture race heuristic (`capture-race`)
 *      Inside lambda bodies passed to parallelFor / parallelForChunks
 *      / parallelMapReduce, a write (assignment, compound assignment,
 *      increment/decrement) to a by-reference capture is an error
 *      unless it is (a) a lambda local or parameter, (b) a per-slot
 *      indexed write (`out[i] = ...` where the index involves a
 *      lambda parameter or local), (c) a variable declared
 *      std::atomic in the TU, or (d) preceded by a
 *      lock_guard/scoped_lock/unique_lock declaration in the same
 *      body. A cheap, always-on complement to the tsan matrix.
 *
 *  Pass 4 — env-var registry (`env-registry`)
 *      Every `getenv`/`setenv` (and env:: accessor) naming a
 *      `MITHRA_*` variable must name an entry of
 *      src/common/env_registry.hh; raw getenv outside the registry
 *      header is banned in library code outright; and the registry
 *      and README.md's environment table must agree in both
 *      directions (`mithra-analyze --env-table` regenerates the
 *      table).
 *
 * Suppressions share mithra-lint's annotation grammar with this
 * tool's name: `// mithra-analyze: allow(<rule>)` on the offending
 * line or the line above. Diagnostics share mithra-lint's
 * `file:line: error: [rule] message` format.
 *
 * Known false-negative envelope (deliberate: the pass must stay
 * milliseconds-fast and zero-dependency): taint does not track flows
 * through containers, struct fields, out-parameters, or across
 * translation units; the capture pass does not see writes through
 * pointers, references bound before the lambda, or mutating method
 * calls; includes hidden behind macros are invisible. The tsan matrix
 * and contract checks backstop those. False positives are expected to
 * be rare and are handled with an annotation plus a one-line
 * justification.
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint.hh"

namespace mithra::analyze
{

/** Shared diagnostic type/format with mithra-lint. */
using lint::Diagnostic;
using lint::formatDiagnostic;

/** One translation unit handed to the passes. `path` is repo-root
 *  relative with forward slashes; `display` (optional) is what
 *  diagnostics print — defaults to `path`. */
struct SourceFile
{
    std::string path;
    std::string source;
    std::string display;

    const std::string &shown() const
    {
        return display.empty() ? path : display;
    }
};

// ---------------------------------------------------------------- Pass 1

/** Parsed layers.txt. */
struct LayerSpec
{
    struct Layer
    {
        std::string name;
        std::vector<std::string> prefixes; ///< path prefixes, slashed
        std::vector<std::string> allowed;  ///< layers it may include
    };
    std::vector<Layer> layers;

    /** Index of the layer owning `path` (longest prefix match), or
     *  SIZE_MAX when no layer matches. */
    std::size_t layerOf(const std::string &path) const;

    /** Whether layer `from` may include layer `to` (reflexive). */
    bool edgeAllowed(std::size_t from, std::size_t to) const;
};

/**
 * Parse the layers.txt grammar:
 *
 *     # comment
 *     layer <name> <path-prefix> [<path-prefix>...]
 *     allow <name> -> <dep> [<dep>...]
 *
 * Syntax errors and spec-level cycles (the `allow` edges must form a
 * DAG) are appended to `diagnostics` under rule `layer-spec`, anchored
 * to `specPath`.
 */
LayerSpec parseLayerSpec(const std::string &specPath,
                         const std::string &text,
                         std::vector<Diagnostic> &diagnostics);

/**
 * Check every in-tree include edge against the spec and the include
 * graph for file-level cycles. Include targets are resolved against
 * the including file's directory, then `src/`, the repo root, and the
 * tool directories; unresolved includes are treated as external and
 * ignored.
 */
std::vector<Diagnostic> checkLayering(const LayerSpec &spec,
                                      const std::vector<SourceFile> &files);

// ---------------------------------------------------------------- Pass 2

/** Determinism taint over one TU (pass decides applicability from the
 *  path: src/ only, src/telemetry/ exempt). */
std::vector<Diagnostic> checkTaint(const SourceFile &file);

// ---------------------------------------------------------------- Pass 3

/** Parallel-capture race heuristic over one TU (all scanned roots). */
std::vector<Diagnostic> checkCaptures(const SourceFile &file);

// ---------------------------------------------------------------- Pass 4

/** The env-var registry as parsed from src/common/env_registry.hh. */
struct EnvRegistry
{
    struct Entry
    {
        std::string name;
        std::string values;
        std::string fallback;
        std::string doc;
    };
    std::vector<Entry> entries;

    bool registered(const std::string &name) const;
};

/** Extract the `registry` initializer entries from the header. */
EnvRegistry parseEnvRegistry(const std::string &source);

/** Env-var use rules over one TU. */
std::vector<Diagnostic> checkEnvUse(const EnvRegistry &registry,
                                    const SourceFile &file);

/** Registry <-> README environment-table consistency. */
std::vector<Diagnostic> checkReadme(const EnvRegistry &registry,
                                    const std::string &readmePath,
                                    const std::string &readmeText);

/** Render the README environment table from the registry. */
std::string renderEnvTable(const EnvRegistry &registry);

// ----------------------------------------------------------------- Driver

struct TreeReport
{
    std::vector<Diagnostic> diagnostics;
    std::size_t fileCount = 0;
};

/**
 * Run all four passes over `<root>/{src,bench,tools,tests}` with the
 * spec at `<root>/tools/mithra-analyze/layers.txt`, the registry at
 * `<root>/src/common/env_registry.hh` and `<root>/README.md`.
 * Diagnostics come back sorted by (file, line).
 */
TreeReport analyzeTree(const std::string &root);

} // namespace mithra::analyze
