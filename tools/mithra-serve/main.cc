/**
 * @file
 * mithra-serve: the MITHRA service as a long-running process.
 *
 * Usage:
 *   mithra-serve [--port-file <path>]
 *
 * Configuration comes from the MITHRA_SERVE_* environment knobs (see
 * README.md's environment table). The bound port — useful with
 * MITHRA_SERVE_PORT=0, which picks an ephemeral one — is printed on
 * stdout as "listening <port>" and, with --port-file, written to the
 * given path so scripts can wait for readiness without parsing logs.
 *
 * The process runs until SIGINT or SIGTERM, then stops the server
 * cleanly (in-flight requests finish; the running compile job, if
 * any, completes). Signals are forwarded through a self-pipe so the
 * handler itself stays async-signal-safe.
 */

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include <unistd.h>

#include "plugin/loader.hh"
#include "service/server.hh"

namespace
{

int signalPipe[2] = {-1, -1};

extern "C" void
onSignal(int)
{
    const char byte = 1;
    // Best-effort: a full pipe already means a pending shutdown.
    [[maybe_unused]] const ssize_t wrote =
        write(signalPipe[1], &byte, 1);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string portFile;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--port-file" && i + 1 < argc) {
            portFile = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: mithra-serve [--port-file <path>]\n"
                        "knobs: MITHRA_SERVE_{PORT,WORKERS,JOB_QUEUE,"
                        "MAX_BODY,TIMEOUT_MS}\n");
            return 0;
        } else {
            std::fprintf(stderr, "mithra-serve: unknown argument %s\n",
                         arg.c_str());
            return 2;
        }
    }

    if (pipe(signalPipe) != 0) {
        std::fprintf(stderr, "mithra-serve: pipe(): %s\n",
                     std::strerror(errno));
        return 1;
    }
    struct sigaction action{};
    action.sa_handler = onSignal;
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);
    signal(SIGPIPE, SIG_IGN);

    // Plugins load eagerly, before the port binds: a bad MITHRA_PLUGINS
    // value should kill the process at startup, not the first /invoke.
    mithra::plugin::loadFromEnv();

    mithra::service::Server server(
        mithra::service::ServerOptions::fromEnv());
    server.start();

    std::printf("listening %u\n",
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);
    if (!portFile.empty()) {
        std::FILE *out = std::fopen(portFile.c_str(), "w");
        if (!out) {
            std::fprintf(stderr,
                         "mithra-serve: cannot write %s: %s\n",
                         portFile.c_str(), std::strerror(errno));
            return 1;
        }
        std::fprintf(out, "%u\n",
                     static_cast<unsigned>(server.port()));
        std::fclose(out);
    }

    char byte = 0;
    while (read(signalPipe[0], &byte, 1) < 0 && errno == EINTR)
        continue;
    std::printf("shutting down\n");
    server.stop();
    return 0;
}
