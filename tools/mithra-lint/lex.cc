#include "lex.hh"

#include <algorithm>
#include <cctype>

namespace mithra::lex
{

namespace
{

bool
identifierStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identifierChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * Collect `<tool>: allow(<rule>)` annotations from one comment body.
 * `line` is the line the comment starts on; annotations inside a
 * multi-line comment are anchored to the line the marker sits on.
 */
void
parseAllows(const std::string &comment, std::size_t line,
            ScanResult &result)
{
    static const char *const tools[] = {"mithra-lint", "mithra-analyze"};
    for (const char *tool : tools) {
        const std::string marker = std::string(tool) + ": allow(";
        std::size_t at = 0;
        while ((at = comment.find(marker, at)) != std::string::npos) {
            const std::size_t open = at + marker.size();
            const std::size_t close = comment.find(')', open);
            if (close == std::string::npos)
                break;
            const std::size_t markerLine = line
                + static_cast<std::size_t>(std::count(
                    comment.begin(),
                    comment.begin() + static_cast<std::ptrdiff_t>(at),
                    '\n'));
            result.allows.push_back(
                {markerLine, tool, comment.substr(open, close - open)});
            at = close;
        }
    }
}

/** True when `prefix` marks the upcoming `"` as a raw string. */
bool
rawStringPrefix(const std::string &prefix)
{
    return prefix == "R" || prefix == "LR" || prefix == "uR"
        || prefix == "UR" || prefix == "u8R";
}

/** True when `prefix` marks the upcoming `"` as an encoded string. */
bool
encodedStringPrefix(const std::string &prefix)
{
    return prefix == "L" || prefix == "u" || prefix == "U"
        || prefix == "u8";
}

/**
 * Consume a quoted literal (string or char) starting at src[i]; emits
 * a String token for `"` quotes (the body, escapes verbatim).
 */
std::size_t
takeQuoted(const std::string &src, std::size_t i, char quote,
           std::size_t &line, ScanResult &result)
{
    const std::size_t startLine = line;
    const std::size_t bodyStart = i + 1;
    ++i; // opening quote
    while (i < src.size()) {
        if (src[i] == '\\' && i + 1 < src.size()) {
            if (src[i + 1] == '\n')
                ++line;
            i += 2;
            continue;
        }
        if (src[i] == '\n')
            ++line; // ill-formed, but keep line numbers sane
        if (src[i] == quote)
            break;
        ++i;
    }
    const std::size_t bodyEnd = std::min(i, src.size());
    if (quote == '"') {
        result.tokens.push_back(
            {TokenKind::String,
             src.substr(bodyStart, bodyEnd - bodyStart), startLine});
    }
    return bodyEnd < src.size() ? bodyEnd + 1 : bodyEnd;
}

/** Consume a raw string R"delim( ... )delim" starting at the quote. */
std::size_t
takeRawString(const std::string &src, std::size_t i, std::size_t &line,
              ScanResult &result)
{
    const std::size_t startLine = line;
    ++i; // opening quote
    std::string delim;
    while (i < src.size() && src[i] != '(')
        delim.push_back(src[i++]);
    const std::size_t bodyStart = i < src.size() ? i + 1 : i;
    const std::string closer = ")" + delim + "\"";
    const std::size_t end = src.find(closer, i);
    const std::size_t bodyEnd = end == std::string::npos ? src.size() : end;
    const std::size_t stop =
        end == std::string::npos ? src.size() : end + closer.size();
    line += static_cast<std::size_t>(std::count(
        src.begin() + static_cast<std::ptrdiff_t>(i),
        src.begin() + static_cast<std::ptrdiff_t>(stop), '\n'));
    result.tokens.push_back(
        {TokenKind::String, src.substr(bodyStart, bodyEnd - bodyStart),
         startLine});
    return stop;
}

/**
 * If the `#` at src[i] opens an `#include` directive, record its
 * target. Purely a lookahead — consumes nothing, so the token stream
 * is unaffected and the directive still tokenizes as before.
 */
void
recordInclude(const std::string &src, std::size_t i, std::size_t line,
              ScanResult &result)
{
    std::size_t j = i + 1; // past '#'
    while (j < src.size() && (src[j] == ' ' || src[j] == '\t'))
        ++j;
    static const std::string word = "include";
    if (src.compare(j, word.size(), word) != 0)
        return;
    j += word.size();
    while (j < src.size() && (src[j] == ' ' || src[j] == '\t'))
        ++j;
    if (j >= src.size())
        return;
    const char open = src[j];
    if (open != '"' && open != '<')
        return;
    const char close = open == '"' ? '"' : '>';
    const std::size_t end = src.find_first_of(
        std::string(1, close) + "\n", j + 1);
    if (end == std::string::npos || src[end] != close)
        return;
    result.includes.push_back(
        {src.substr(j + 1, end - j - 1), line, open == '<'});
}

} // namespace

ScanResult
scan(const std::string &src)
{
    ScanResult result;
    std::size_t i = 0;
    std::size_t line = 1;
    const std::size_t n = src.size();

    while (i < n) {
        const char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            const std::size_t eol = src.find('\n', i);
            const std::size_t stop = eol == std::string::npos ? n : eol;
            parseAllows(src.substr(i, stop - i), line, result);
            i = stop;
            continue;
        }
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            const std::size_t end = src.find("*/", i + 2);
            const std::size_t stop =
                end == std::string::npos ? n : end + 2;
            const std::string body = src.substr(i, stop - i);
            parseAllows(body, line, result);
            line += static_cast<std::size_t>(
                std::count(body.begin(), body.end(), '\n'));
            i = stop;
            continue;
        }
        if (c == '#') {
            recordInclude(src, i, line, result);
            result.tokens.push_back(
                {TokenKind::Punct, std::string(1, c), line});
            ++i;
            continue;
        }
        if (c == '"') {
            i = takeQuoted(src, i, '"', line, result);
            continue;
        }
        if (c == '\'') {
            i = takeQuoted(src, i, '\'', line, result);
            continue;
        }
        if (identifierStart(c)) {
            std::size_t j = i;
            while (j < n && identifierChar(src[j]))
                ++j;
            std::string text = src.substr(i, j - i);
            if (j < n && src[j] == '"' && rawStringPrefix(text)) {
                i = takeRawString(src, j, line, result);
                continue;
            }
            if (j < n && src[j] == '"' && encodedStringPrefix(text)) {
                i = takeQuoted(src, j, '"', line, result);
                continue;
            }
            if (j < n && src[j] == '\'' && encodedStringPrefix(text)) {
                i = takeQuoted(src, j, '\'', line, result);
                continue;
            }
            result.tokens.push_back(
                {TokenKind::Identifier, std::move(text), line});
            i = j;
            continue;
        }
        const bool numberStart =
            std::isdigit(static_cast<unsigned char>(c))
            || (c == '.' && i + 1 < n
                && std::isdigit(static_cast<unsigned char>(src[i + 1])));
        if (numberStart) {
            std::size_t j = i;
            while (j < n) {
                const char d = src[j];
                if (identifierChar(d) || d == '.' || d == '\'') {
                    ++j;
                    continue;
                }
                // Exponent signs: 1e+3, 0x1p-5.
                if ((d == '+' || d == '-') && j > i) {
                    const char prev = src[j - 1];
                    if (prev == 'e' || prev == 'E' || prev == 'p'
                        || prev == 'P') {
                        ++j;
                        continue;
                    }
                }
                break;
            }
            result.tokens.push_back(
                {TokenKind::Number, src.substr(i, j - i), line});
            i = j;
            continue;
        }
        result.tokens.push_back(
            {TokenKind::Punct, std::string(1, c), line});
        ++i;
    }
    return result;
}

bool
suppressed(const std::vector<Annotation> &allows, std::string_view tool,
           std::string_view rule, std::size_t line)
{
    for (const Annotation &allow : allows) {
        if (allow.tool == tool && allow.rule == rule
            && (allow.line == line || allow.line + 1 == line)) {
            return true;
        }
    }
    return false;
}

} // namespace mithra::lex
