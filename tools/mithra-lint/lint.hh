/**
 * @file
 * mithra-lint — token-level enforcement of MITHRA-specific invariants.
 *
 * The library's headline claim is a *statistical guarantee*, and that
 * guarantee rests on properties no compiler flag checks for us:
 * deterministic randomness, a double-only statistics substrate, and
 * contract-checked subsystems. This linter token-scans the tree and
 * turns violations of those properties into hard errors.
 *
 * Rule catalog (rule ids are what `mithra-lint: allow(<rule>)`
 * annotations name):
 *
 *  no-rand           std::rand / srand / rand_r / drand48: unseeded or
 *                    process-global generators break reproducibility.
 *                    Use common/rng.hh (Rng, rngStream).
 *  no-random-device  std::random_device is nondeterministic by design;
 *                    only common/rng.* may touch entropy sources.
 *  no-time-seed      argless time() / time(nullptr) / time(0): wall
 *                    clock seeding makes runs unreproducible.
 *  no-unordered      unordered_* containers iterate in a hash-dependent
 *                    order, which silently varies across libstdc++
 *                    versions; reduction paths must use ordered
 *                    containers. Lookup-only caches may annotate.
 *  no-float-in-stats src/stats is a double-only substrate (the
 *                    Clopper–Pearson machinery is validated at double
 *                    precision); float types or literals are banned.
 *  pragma-once       headers open with `#pragma once` (before any
 *                    non-comment content).
 *  namespace-mithra  every library file declares namespace mithra.
 *  no-iostream       library code reports through common/logging.hh;
 *                    iostream / fprintf elsewhere bypasses the
 *                    inform() gate benchmarks rely on.
 *  no-naked-assert   assert() vanishes under NDEBUG with no message;
 *                    use MITHRA_ASSERT / MITHRA_EXPECTS /
 *                    MITHRA_ENSURES from common/contracts.hh.
 *  no-raw-timing     std::chrono / clock_gettime / gettimeofday /
 *                    timespec_get / clock() in library code: ad-hoc
 *                    timing bypasses the telemetry layer and leaks
 *                    nondeterministic values into results. Time through
 *                    MITHRA_SPAN (telemetry/span.hh).
 *  no-intrinsics     SIMD intrinsic headers (<immintrin.h> and kin),
 *                    vector types (__m128/__m256/__m512) and _mm*
 *                    intrinsic calls are contained in
 *                    src/common/kernels/ — everything else calls the
 *                    runtime-dispatched kernels:: API, which keeps all
 *                    backends bitwise identical and centrally tested.
 *  no-keyword-identifier
 *                    `final' and `override' used as identifiers
 *                    (`const auto final = ...'): they are contextual
 *                    keywords, and naming variables after them
 *                    confuses readers, tooling and future
 *                    refactorings. Virt-specifier and class-head
 *                    positions (`void f() override', `class X final')
 *                    are of course allowed.
 *  no-dlopen         dlopen / dlsym / dlclose / dlerror and <dlfcn.h>:
 *                    runtime code loading is confined to src/plugin/
 *                    (the sanctioned loader), so the rest of the
 *                    library stays statically analyzable and the
 *                    plugin trust boundary stays in one place.
 *  c-abi-header      include/ headers are the public C plugin ABI and
 *                    must stay C89-clean: classic include guards (not
 *                    `#pragma once`), block comments (no `//`), and
 *                    no C++-only keywords outside the `__cplusplus`
 *                    guard. `plugin_header_c89` (ctest) is the ground
 *                    truth; this rule catches violations at lint speed
 *                    with better messages.
 *
 * Which rules apply depends on the path (see policyForPath): the
 * determinism rules cover src/, bench/ and tests/; the library-hygiene
 * rules (including no-keyword-identifier and no-dlopen) cover src/
 * only; the float ban covers src/stats only; the raw
 * timing ban covers src/ only (bench/ and tests/ may time freely); the
 * intrinsics ban covers src/, bench/ and tests/; the c-abi-header
 * rules cover include/*.h (where pragma-once and namespace-mithra do
 * NOT apply — the ABI header is shared with plain C). common/rng.* is
 * exempt from no-random-device, common/logging.* from no-iostream,
 * src/telemetry/ from no-raw-timing, src/common/kernels/ from
 * no-intrinsics, and src/plugin/ from no-dlopen — they are the
 * sanctioned implementations.
 *
 * A `// mithra-lint: allow(<rule>)` comment suppresses that rule on
 * its own line and the following line.
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mithra::lint
{

/** One rule violation, anchored to a file and line. */
struct Diagnostic
{
    std::string file;
    std::size_t line = 0;
    std::string rule;
    std::string message;
};

/** Which rule groups apply to a file, derived from its path. */
struct PathPolicy
{
    /** rand / random_device / time rules (src, bench, tests). */
    bool determinism = false;
    /** unordered / namespace / iostream / assert rules (src only). */
    bool libraryHygiene = false;
    /** float ban (src/stats only). */
    bool doubleOnly = false;
    /** `#pragma once` requirement (every header scanned). */
    bool headerHygiene = false;
    /** Sanctioned entropy implementation (common/rng.*). */
    bool rngImpl = false;
    /** Sanctioned output implementation (common/logging.*). */
    bool loggingImpl = false;
    /** Sanctioned wall-clock homes (src/telemetry/, src/service/). */
    bool timingImpl = false;
    /** Sanctioned SIMD intrinsics home (src/common/kernels/). */
    bool kernelsImpl = false;
    /** Sanctioned dlopen/dlsym home (src/plugin/). */
    bool pluginImpl = false;
    /** C89 plugin-ABI header rules (include/*.h). */
    bool cAbiHeader = false;
};

/** Derive the rule policy from a (relative or absolute) path. */
PathPolicy policyForPath(const std::string &path);

/**
 * Lint one translation unit. `path` selects the policy and labels the
 * diagnostics; `source` is the file content. Returns all violations in
 * line order.
 */
std::vector<Diagnostic> lintSource(const std::string &path,
                                   const std::string &source);

/** Lint a file on disk (reads it, then defers to lintSource). */
std::vector<Diagnostic> lintFile(const std::string &path);

/**
 * Recursively collect the lintable files (.cc / .cpp / .hh / .hpp /
 * .h) under `root` in sorted order; a regular file is returned as-is.
 */
std::vector<std::string> collectFiles(const std::string &root);

/** Render one diagnostic as "file:line: error: [rule] message". */
std::string formatDiagnostic(const Diagnostic &diagnostic);

} // namespace mithra::lint
