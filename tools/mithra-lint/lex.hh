/**
 * @file
 * Shared C++ token scanner for the in-tree source tools.
 *
 * Both mithra-lint (token-level rules) and mithra-analyze (semantic
 * passes) need the same front end: a fast, dependency-free scan that
 * strips comments and literals, keeps identifiers/numbers/punctuation
 * with line numbers, extracts `#include` targets with full lexing
 * context (so includes inside strings or comments are NOT seen — the
 * analyzer's include graph must not grow phantom edges from test
 * snippets), and collects `<tool>: allow(<rule>)` suppression
 * annotations for any of the known tools.
 *
 * Annotation semantics (shared by both tools): an annotation on line N
 * suppresses the named rule on line N (trailing-comment style) and on
 * line N+1 (preceding-line style). Inside a multi-line block comment
 * the annotation is anchored to the line the marker itself is on, not
 * the comment's first line.
 */

#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace mithra::lex
{

enum class TokenKind
{
    Identifier,
    Number,
    Punct,
    /** A string literal; `text` is the uninterpreted body (no quotes,
     *  escapes kept verbatim). Raw strings carry their full body. */
    String,
};

struct Token
{
    TokenKind kind;
    std::string text;
    std::size_t line;
};

/** One `<tool>: allow(<rule>)` suppression annotation. */
struct Annotation
{
    std::size_t line;
    std::string tool; ///< "mithra-lint" or "mithra-analyze"
    std::string rule;
};

/** One `#include` directive, lexed in context. */
struct IncludeDirective
{
    std::string target; ///< the path between the quotes / angles
    std::size_t line;
    bool angled; ///< `<...>` (true) vs `"..."` (false)
};

/** Everything one pass over a translation unit yields. */
struct ScanResult
{
    std::vector<Token> tokens;
    std::vector<Annotation> allows;
    std::vector<IncludeDirective> includes;
};

/** Tokenize one translation unit. Never fails; garbage input yields
 *  garbage tokens with sane line numbers. */
ScanResult scan(const std::string &source);

/**
 * True when `allows` contains an annotation for `tool` naming `rule`
 * on `line` itself or on the directly preceding line.
 */
bool suppressed(const std::vector<Annotation> &allows,
                std::string_view tool, std::string_view rule,
                std::size_t line);

} // namespace mithra::lex
