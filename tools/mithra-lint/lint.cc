#include "lint.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "lex.hh"

namespace mithra::lint
{

namespace
{

// The scanner itself lives in lex.{hh,cc}, shared with mithra-analyze.
using lex::ScanResult;
using lex::Token;
using lex::TokenKind;
using lex::scan;

/** Forward-slashed copy of `path` for substring policy matching. */
std::string
normalized(const std::string &path)
{
    std::string out = path;
    std::replace(out.begin(), out.end(), '\\', '/');
    return out;
}

bool
pathContains(const std::string &path, const std::string &piece)
{
    return path.find(piece) != std::string::npos;
}

bool
endsWith(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size()
        && text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix)
        == 0;
}

/** Rule-firing context shared by the individual checks. */
struct Linter
{
    const std::string &path;
    const PathPolicy &policy;
    const ScanResult &scanned;
    std::vector<Diagnostic> diagnostics;

    void report(std::size_t line, std::string rule, std::string message)
    {
        if (lex::suppressed(scanned.allows, "mithra-lint", rule, line))
            return;
        diagnostics.push_back(
            {path, line, std::move(rule), std::move(message)});
    }
};

const Token *
tokenAt(const std::vector<Token> &tokens, std::size_t index)
{
    return index < tokens.size() ? &tokens[index] : nullptr;
}

/** time() with no argument or a constant-zero/null argument. */
bool
isWallClockSeed(const std::vector<Token> &tokens, std::size_t i)
{
    const Token *open = tokenAt(tokens, i + 1);
    if (!open || open->kind != TokenKind::Punct || open->text != "(")
        return false;
    const Token *arg = tokenAt(tokens, i + 2);
    if (!arg)
        return false;
    if (arg->kind == TokenKind::Punct && arg->text == ")")
        return true;
    const bool nullArg =
        (arg->kind == TokenKind::Number && arg->text == "0")
        || (arg->kind == TokenKind::Identifier
            && (arg->text == "NULL" || arg->text == "nullptr"));
    if (!nullArg)
        return false;
    const Token *close = tokenAt(tokens, i + 3);
    return close && close->kind == TokenKind::Punct
        && close->text == ")";
}

/** SIMD intrinsic header names (what `#include <x.h>` tokenizes to). */
bool
isIntrinsicHeader(const std::string &text)
{
    static const std::set<std::string> headers = {
        "immintrin", "x86intrin",  "x86gprintrin", "xmmintrin",
        "emmintrin", "pmmintrin",  "tmmintrin",    "smmintrin",
        "nmmintrin", "wmmintrin",  "ammintrin",    "arm_neon",
        "arm_sve",
    };
    return headers.count(text) != 0;
}

/** Vector types, _mm* intrinsic calls and ia32 builtins. */
bool
isIntrinsicIdentifier(const std::string &text)
{
    static const std::set<std::string> prefixes = {
        "_mm_",    "_mm256_", "_mm512_",         "__m64",
        "__m128",  "__m256",  "__m512",          "__builtin_ia32_",
    };
    for (const std::string &prefix : prefixes) {
        if (text.rfind(prefix, 0) == 0)
            return true;
    }
    return false;
}

/** Float literal: non-hex numeric token with an f/F suffix. */
bool
isFloatLiteral(const std::string &text)
{
    if (text.size() < 2)
        return false;
    if (text[0] == '0' && (text[1] == 'x' || text[1] == 'X'))
        return false;
    const char last = text.back();
    return last == 'f' || last == 'F';
}

/**
 * True when the `final` / `override` token at index i sits in a
 * position the grammar reserves for the contextual keyword — a
 * virt-specifier after a member-function declarator (`void f() const
 * override final;`, ref-qualified or noexcept variants included) or a
 * class-head (`class X final : ...`, `struct Y final {`). Everything
 * else is the token used as an identifier.
 */
bool
isSpecifierPosition(const std::vector<Token> &tokens, std::size_t i)
{
    if (i > 0) {
        const Token &prev = tokens[i - 1];
        if (prev.kind == TokenKind::Punct
            && (prev.text == ")" || prev.text == "&"
                || prev.text == "&&"))
            return true;
        if (prev.kind == TokenKind::Identifier
            && (prev.text == "const" || prev.text == "noexcept"
                || prev.text == "override" || prev.text == "final"))
            return true;
    }
    const Token *next = tokenAt(tokens, i + 1);
    if (next && next->kind == TokenKind::Punct
        && (next->text == ":" || next->text == "{"))
        return true;
    // A following `override`/`final` is the specifier list continuing
    // (`final override`), not two identifiers in a row.
    if (next && next->kind == TokenKind::Identifier
        && (next->text == "override" || next->text == "final"))
        return true;
    return false;
}

/**
 * Lines carrying a `//` comment in real code — not inside a string,
 * character constant, or block comment. The token scanner strips
 * comments, so this is the one check that re-reads the raw source.
 */
std::vector<std::size_t>
lineCommentLines(const std::string &source)
{
    std::vector<std::size_t> lines;
    enum class State
    {
        Code,
        Block,
        Str,
        Chr,
    };
    State state = State::Code;
    std::size_t line = 1;
    for (std::size_t i = 0; i < source.size(); ++i) {
        const char c = source[i];
        const char next = i + 1 < source.size() ? source[i + 1] : '\0';
        if (c == '\n') {
            ++line;
            if (state == State::Str || state == State::Chr)
                state = State::Code; // unterminated literal; resync
            continue;
        }
        switch (state) {
          case State::Code:
            if (c == '/' && next == '/') {
                lines.push_back(line);
                while (i + 1 < source.size() && source[i + 1] != '\n')
                    ++i;
            } else if (c == '/' && next == '*') {
                state = State::Block;
                ++i;
            } else if (c == '"') {
                state = State::Str;
            } else if (c == '\'') {
                state = State::Chr;
            }
            break;
          case State::Block:
            if (c == '*' && next == '/') {
                state = State::Code;
                ++i;
            }
            break;
          case State::Str:
            if (c == '\\')
                ++i;
            else if (c == '"')
                state = State::Code;
            break;
          case State::Chr:
            if (c == '\\')
                ++i;
            else if (c == '\'')
                state = State::Code;
            break;
        }
    }
    return lines;
}

/**
 * The public C ABI header: classic include guard, no `//` comments,
 * no C++-only keywords. The `__cplusplus`-guarded extern "C" block is
 * expected — `extern` and the "C" string literal pass untouched.
 */
void
checkCAbiHeader(Linter &lint, const std::string &source)
{
    const auto &tokens = lint.scanned.tokens;

    // #ifndef GUARD / #define GUARD, before any other content.
    const Token *t0 = tokenAt(tokens, 0);
    const Token *t1 = tokenAt(tokens, 1);
    const Token *t2 = tokenAt(tokens, 2);
    const Token *t3 = tokenAt(tokens, 3);
    const Token *t4 = tokenAt(tokens, 4);
    const Token *t5 = tokenAt(tokens, 5);
    const bool guarded = t0 && t0->text == "#" && t1
        && t1->text == "ifndef" && t2
        && t2->kind == TokenKind::Identifier && t3 && t3->text == "#"
        && t4 && t4->text == "define" && t5 && t5->text == t2->text;
    if (!guarded) {
        lint.report(t0 ? t0->line : 1, "c-abi-header",
                    "C ABI headers open with a classic include guard "
                    "(#ifndef X / #define X) — `#pragma once` is not "
                    "C89");
    }

    static const std::set<std::string> cppOnly = {
        "class",        "template",         "typename",
        "namespace",    "virtual",          "constexpr",
        "mutable",      "operator",         "new",
        "delete",       "bool",             "nullptr",
        "using",        "decltype",         "static_cast",
        "reinterpret_cast", "dynamic_cast", "const_cast",
        "noexcept",     "private",          "public",
        "protected",    "friend",           "throw",
        "try",          "catch",
    };
    // Tokens inside `#ifdef __cplusplus` ... `#endif` are exempt:
    // that region is invisible to C compilers by construction.
    std::size_t cppDepth = 0;
    std::size_t condDepth = 0;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const Token &t = tokens[i];
        if (t.text == "#" && i + 1 < tokens.size()) {
            const std::string &directive = tokens[i + 1].text;
            if (directive == "ifdef" || directive == "ifndef"
                || directive == "if") {
                ++condDepth;
                if (cppDepth == 0 && directive == "ifdef"
                    && i + 2 < tokens.size()
                    && tokens[i + 2].text == "__cplusplus")
                    cppDepth = condDepth;
            } else if (directive == "endif") {
                if (cppDepth == condDepth)
                    cppDepth = 0;
                if (condDepth > 0)
                    --condDepth;
            }
        }
        if (cppDepth != 0)
            continue;
        if (t.kind == TokenKind::Identifier && cppOnly.count(t.text)) {
            lint.report(t.line, "c-abi-header",
                        "`" + t.text
                            + "' is not C89; the plugin ABI header is "
                              "compiled by plain C plugins (gate C++ "
                              "constructs behind __cplusplus)");
        }
    }

    for (const std::size_t line : lineCommentLines(source)) {
        lint.report(line, "c-abi-header",
                    "`//' comments are not C89; use /* ... */ in the "
                    "plugin ABI header");
    }
}

void
checkHeaderHygiene(Linter &lint)
{
    const auto &tokens = lint.scanned.tokens;
    const Token *hash = tokenAt(tokens, 0);
    const Token *pragma = tokenAt(tokens, 1);
    const Token *once = tokenAt(tokens, 2);
    const bool ok = hash && hash->text == "#" && pragma
        && pragma->text == "pragma" && once && once->text == "once";
    if (!ok) {
        lint.report(hash ? hash->line : 1, "pragma-once",
                    "header must open with `#pragma once` before any "
                    "other content");
    }
}

void
checkNamespace(Linter &lint)
{
    const auto &tokens = lint.scanned.tokens;
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
        if (tokens[i].kind == TokenKind::Identifier
            && tokens[i].text == "namespace"
            && tokens[i + 1].kind == TokenKind::Identifier
            && tokens[i + 1].text == "mithra") {
            return;
        }
    }
    // A file-level property: an allow anywhere in the file suppresses
    // it (the annotation usually lives in the file doc comment).
    for (const lex::Annotation &allow : lint.scanned.allows) {
        if (allow.tool == "mithra-lint"
            && allow.rule == "namespace-mithra")
            return;
    }
    lint.report(1, "namespace-mithra",
                "library code must live in namespace mithra");
}

void
checkTokens(Linter &lint)
{
    static const std::set<std::string> bannedRand = {
        "rand", "srand", "rand_r", "drand48", "lrand48", "mrand48",
    };
    static const std::set<std::string> bannedStreams = {
        "iostream", "cout", "cerr", "clog", "fprintf",
    };

    const auto &tokens = lint.scanned.tokens;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const Token &t = tokens[i];

        if (lint.policy.determinism && t.kind == TokenKind::Identifier) {
            if (bannedRand.count(t.text)) {
                lint.report(t.line, "no-rand",
                            "`" + t.text
                                + "' is not seedable/reproducible; use "
                                  "mithra::Rng (common/rng.hh)");
            }
            if (t.text == "random_device" && !lint.policy.rngImpl) {
                lint.report(t.line, "no-random-device",
                            "std::random_device is nondeterministic; "
                            "entropy may only enter through "
                            "common/rng.*");
            }
            if (t.text == "time" && isWallClockSeed(tokens, i)) {
                lint.report(t.line, "no-time-seed",
                            "wall-clock time() makes runs "
                            "unreproducible; derive seeds from "
                            "experiment configuration");
            }
            if (!lint.policy.kernelsImpl
                && (isIntrinsicHeader(t.text)
                    || isIntrinsicIdentifier(t.text))) {
                lint.report(t.line, "no-intrinsics",
                            "`" + t.text
                                + "': SIMD intrinsics are contained in "
                                  "src/common/kernels/; call the "
                                  "dispatched kernels:: API so every "
                                  "backend stays bitwise identical");
            }
        }

        if (lint.policy.libraryHygiene
            && t.kind == TokenKind::Identifier) {
            if ((t.text == "final" || t.text == "override")
                && !isSpecifierPosition(tokens, i)) {
                lint.report(t.line, "no-keyword-identifier",
                            "`" + t.text
                                + "' is a contextual keyword; naming a "
                                  "variable after it confuses readers "
                                  "and tooling — pick another name");
            }
            if (t.text.rfind("unordered_", 0) == 0) {
                lint.report(t.line, "no-unordered",
                            "`" + t.text
                                + "' iterates in hash order, which is "
                                  "not deterministic across platforms; "
                                  "use an ordered container or annotate "
                                  "a lookup-only use with "
                                  "`mithra-lint: allow(no-unordered)'");
            }
            if (bannedStreams.count(t.text) && !lint.policy.loggingImpl) {
                lint.report(t.line, "no-iostream",
                            "library code reports through "
                            "common/logging.hh, not `" + t.text + "'");
            }
            if (!lint.policy.pluginImpl) {
                static const std::set<std::string> bannedDl = {
                    "dlopen", "dlsym",  "dlvsym", "dlclose",
                    "dlerror", "dladdr", "dlfcn",
                };
                if (bannedDl.count(t.text)) {
                    lint.report(t.line, "no-dlopen",
                                "`" + t.text
                                    + "': runtime code loading is "
                                      "confined to src/plugin/ (the "
                                      "sanctioned loader); go through "
                                      "the WorkloadRegistry instead");
                }
            }
            if (t.text == "cassert") {
                lint.report(t.line, "no-naked-assert",
                            "<cassert> is banned; use the contract "
                            "macros in common/contracts.hh");
            }
            if (t.text == "assert") {
                const Token *next = tokenAt(tokens, i + 1);
                if (next && next->kind == TokenKind::Punct
                    && (next->text == "(" || next->text == ".")) {
                    lint.report(t.line, "no-naked-assert",
                                "naked assert() compiles out under "
                                "NDEBUG and carries no message; use "
                                "MITHRA_ASSERT / MITHRA_EXPECTS / "
                                "MITHRA_ENSURES");
                }
            }
            if (!lint.policy.timingImpl) {
                static const std::set<std::string> bannedTiming = {
                    "chrono", "clock_gettime", "gettimeofday",
                    "timespec_get",
                };
                if (bannedTiming.count(t.text)) {
                    lint.report(t.line, "no-raw-timing",
                                "`" + t.text
                                    + "' is ad-hoc timing; library code "
                                      "times through MITHRA_SPAN "
                                      "(telemetry/span.hh)");
                }
                if (t.text == "clock") {
                    const Token *next = tokenAt(tokens, i + 1);
                    if (next && next->kind == TokenKind::Punct
                        && next->text == "(") {
                        lint.report(t.line, "no-raw-timing",
                                    "clock() is ad-hoc timing; library "
                                    "code times through MITHRA_SPAN "
                                    "(telemetry/span.hh)");
                    }
                }
            }
        }

        if (lint.policy.doubleOnly) {
            if (t.kind == TokenKind::Identifier && t.text == "float") {
                lint.report(t.line, "no-float-in-stats",
                            "src/stats is a double-only substrate; "
                            "float narrows the guarantee arithmetic");
            }
            if (t.kind == TokenKind::Number
                && isFloatLiteral(t.text)) {
                lint.report(t.line, "no-float-in-stats",
                            "float literal `" + t.text
                                + "' in src/stats; spell it as a "
                                  "double");
            }
        }
    }
}

} // namespace

PathPolicy
policyForPath(const std::string &path)
{
    const std::string p = normalized(path);
    PathPolicy policy;

    const bool inSrc = pathContains(p, "src/");
    const bool inBench = pathContains(p, "bench/");
    const bool inTests = pathContains(p, "tests/");

    policy.determinism = inSrc || inBench || inTests;
    policy.libraryHygiene = inSrc;
    policy.doubleOnly = pathContains(p, "src/stats/");
    policy.headerHygiene = endsWith(p, ".hh") || endsWith(p, ".hpp")
        || endsWith(p, ".h");
    policy.rngImpl = pathContains(p, "src/common/rng.");
    policy.loggingImpl = pathContains(p, "src/common/logging.");
    policy.timingImpl = pathContains(p, "src/telemetry/")
        || pathContains(p, "src/service/");
    policy.kernelsImpl = pathContains(p, "src/common/kernels/");
    policy.pluginImpl = pathContains(p, "src/plugin/");
    // include/*.h is the public C plugin ABI: the C89 rules replace
    // the C++ header hygiene (no pragma-once, no namespace).
    policy.cAbiHeader = pathContains(p, "include/") && !inSrc
        && endsWith(p, ".h");
    if (policy.cAbiHeader)
        policy.headerHygiene = false;
    return policy;
}

std::vector<Diagnostic>
lintSource(const std::string &path, const std::string &source)
{
    const PathPolicy policy = policyForPath(path);
    const ScanResult scanned = scan(source);
    Linter lint{path, policy, scanned, {}};

    if (policy.headerHygiene)
        checkHeaderHygiene(lint);
    if (policy.cAbiHeader)
        checkCAbiHeader(lint, source);
    if (policy.libraryHygiene)
        checkNamespace(lint);
    checkTokens(lint);

    std::stable_sort(lint.diagnostics.begin(), lint.diagnostics.end(),
                     [](const Diagnostic &a, const Diagnostic &b) {
                         return a.line < b.line;
                     });
    return std::move(lint.diagnostics);
}

std::vector<Diagnostic>
lintFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return {{path, 0, "io-error", "cannot read file"}};
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return lintSource(path, buffer.str());
}

std::vector<std::string>
collectFiles(const std::string &root)
{
    namespace fs = std::filesystem;
    std::vector<std::string> files;
    const fs::path rootPath(root);
    if (fs::is_regular_file(rootPath)) {
        files.push_back(rootPath.generic_string());
        return files;
    }
    if (!fs::is_directory(rootPath))
        return files;
    static const std::set<std::string> extensions = {
        ".cc", ".cpp", ".hh", ".hpp", ".h",
    };
    for (const auto &entry :
         fs::recursive_directory_iterator(rootPath)) {
        if (!entry.is_regular_file())
            continue;
        if (extensions.count(entry.path().extension().string()))
            files.push_back(entry.path().generic_string());
    }
    std::sort(files.begin(), files.end());
    return files;
}

std::string
formatDiagnostic(const Diagnostic &diagnostic)
{
    std::ostringstream os;
    os << diagnostic.file << ":" << diagnostic.line << ": error: ["
       << diagnostic.rule << "] " << diagnostic.message;
    return os.str();
}

} // namespace mithra::lint
