/**
 * @file
 * mithra-lint driver: `mithra-lint <file-or-dir>...` lints every
 * C++ source under the given roots and exits nonzero on any
 * violation. See lint.hh for the rule catalog.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "lint.hh"

int
main(int argc, char **argv)
{
    using namespace mithra::lint;

    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: mithra-lint <file-or-dir>...\n"
                     "Lints .cc/.cpp/.hh files for MITHRA invariant "
                     "violations; exits 1 on any finding.\n");
        return 2;
    }

    std::size_t fileCount = 0;
    std::size_t violationCount = 0;
    for (int arg = 1; arg < argc; ++arg) {
        const std::vector<std::string> files = collectFiles(argv[arg]);
        if (files.empty()) {
            std::fprintf(stderr,
                         "mithra-lint: warning: nothing to lint under "
                         "`%s'\n",
                         argv[arg]);
            continue;
        }
        for (const std::string &file : files) {
            ++fileCount;
            for (const Diagnostic &d : lintFile(file)) {
                std::fprintf(stderr, "%s\n",
                             formatDiagnostic(d).c_str());
                ++violationCount;
            }
        }
    }

    if (violationCount) {
        std::fprintf(stderr, "mithra-lint: %zu violation(s) in %zu "
                             "file(s) scanned\n",
                     violationCount, fileCount);
        return 1;
    }
    std::fprintf(stderr, "mithra-lint: %zu file(s) clean\n", fileCount);
    return 0;
}
