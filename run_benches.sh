#!/bin/sh
# Runs every table/figure harness binary. Results are memoized in
# $MITHRA_CACHE (default .mithra-cache.tsv), so re-runs are fast.
set -x
for b in build/bench/*; do
    [ -x "$b" ] || continue
    "$b" || echo "BENCH FAILED: $b"
done
