#!/bin/sh
# Runs every table/figure harness binary and collects the
# machine-readable run report each one must emit. Results are memoized
# in $MITHRA_CACHE (default .mithra-cache.tsv), so re-runs are fast.
#
# Reports land as BENCH_<binary>.json in the repo root (override with
# MITHRA_REPORT_DIR). A binary that fails, or exits without writing its
# report, fails the whole run. A binary that is absent in the current
# build configuration is skipped with a loud note instead of failing
# mid-list — its headline-metric gate is skipped with it.
set -u

report_dir="${MITHRA_REPORT_DIR:-.}"
failed=0

for b in build/bench/*; do
    [ -d "$b" ] && continue
    name=$(basename "$b")
    if [ ! -x "$b" ]; then
        echo "SKIPPED (not built in this configuration): $name" >&2
        continue
    fi
    echo "==> $name"
    if ! "$b"; then
        echo "BENCH FAILED: $name" >&2
        failed=1
        continue
    fi
    report="$report_dir/BENCH_$name.json"
    if [ ! -f "$report" ]; then
        echo "MISSING RUN REPORT: $name did not write $report" >&2
        failed=1
    fi
done

# require_metrics <bench-name> <label> [--require <metric>]...
# Pins a binary's headline metrics, but only when the binary exists in
# this build configuration — a missing binary was already loudly
# skipped above; a present binary with a missing report/metric is a
# real regression.
require_metrics() {
    rm_name="$1"
    rm_label="$2"
    shift 2
    if [ ! -x "build/bench/$rm_name" ]; then
        echo "SKIPPED METRIC GATE (binary not built): $rm_name" >&2
        return 0
    fi
    if ! "$check" "$@" "$report_dir/BENCH_$rm_name.json"; then
        echo "$rm_label" >&2
        failed=1
    fi
}

# Schema-validate every collected report, then pin each harness's
# headline metrics: a run that never measured its headline is a
# regression even if the binary exited cleanly.
check="build/tools/report-check/report-check"
if [ -x "$check" ]; then
    if ! "$check" "$report_dir"/BENCH_*.json; then
        echo "REPORT SCHEMA CHECK FAILED" >&2
        failed=1
    fi
    # The drift/watchdog harness must publish its detection-latency
    # headline — fig12 without a 2-sigma detection measurement is
    # broken.
    require_metrics fig12_drift_watchdog \
        "WATCHDOG HEADLINE METRICS MISSING" \
        --require watchdog.detect_latency_mean_2sigma \
        --require watchdog.control_trips \
        --require watchdog.two_sigma_misses
    # The sharded decision-loop bench must publish its throughput and
    # merge-cost headlines.
    require_metrics micro_runtime \
        "RUNTIME THROUGHPUT METRICS MISSING" \
        --require runtime.decisions_per_sec \
        --require runtime.shard_count \
        --require runtime.merge_overhead_pct
    # The service bench must publish the certified end-to-end /invoke
    # throughput the CI service job gates on.
    require_metrics micro_service \
        "SERVICE THROUGHPUT METRICS MISSING" \
        --require service.invocations_per_sec \
        --require service.direct_invocations_per_sec \
        --require service.http_overhead_pct
    # The design-space exploration bench must publish the pruning
    # savings and front-accuracy headlines the CI dse job gates on.
    require_metrics micro_dse \
        "DSE HEADLINE METRICS MISSING" \
        --require dse.exact_evals_saved_pct \
        --require dse.sweep_speedup \
        --require dse.front_hypervolume_err
else
    echo "note: $check not built; skipping report validation" >&2
fi

if [ "$failed" -ne 0 ]; then
    echo "run_benches.sh: FAILURES (see above)" >&2
    exit 1
fi
echo "run_benches.sh: all benches ran and reported"
