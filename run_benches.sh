#!/bin/sh
# Runs every table/figure harness binary and collects the
# machine-readable run report each one must emit. Results are memoized
# in $MITHRA_CACHE (default .mithra-cache.tsv), so re-runs are fast.
#
# Reports land as BENCH_<binary>.json in the repo root (override with
# MITHRA_REPORT_DIR). A binary that fails, or exits without writing its
# report, fails the whole run.
set -u

report_dir="${MITHRA_REPORT_DIR:-.}"
failed=0

for b in build/bench/*; do
    [ -x "$b" ] || continue
    [ -d "$b" ] && continue
    name=$(basename "$b")
    echo "==> $name"
    if ! "$b"; then
        echo "BENCH FAILED: $name" >&2
        failed=1
        continue
    fi
    report="$report_dir/BENCH_$name.json"
    if [ ! -f "$report" ]; then
        echo "MISSING RUN REPORT: $name did not write $report" >&2
        failed=1
    fi
done

# Schema-validate every collected report. The drift/watchdog harness
# must additionally publish its headline detection-latency metric —
# a fig12 run that never measured a 2-sigma detection is a regression
# even if the binary exited cleanly.
check="build/tools/report-check/report-check"
if [ -x "$check" ]; then
    if ! "$check" "$report_dir"/BENCH_*.json; then
        echo "REPORT SCHEMA CHECK FAILED" >&2
        failed=1
    fi
    if ! "$check" --require watchdog.detect_latency_mean_2sigma \
        --require watchdog.control_trips \
        --require watchdog.two_sigma_misses \
        "$report_dir/BENCH_fig12_drift_watchdog.json"; then
        echo "WATCHDOG HEADLINE METRICS MISSING" >&2
        failed=1
    fi
    # The sharded decision-loop bench must publish its throughput and
    # merge-cost headline metrics — a run that never timed the routed
    # decision stream is a regression even if the binary exited cleanly.
    if ! "$check" --require runtime.decisions_per_sec \
        --require runtime.shard_count \
        --require runtime.merge_overhead_pct \
        "$report_dir/BENCH_micro_runtime.json"; then
        echo "RUNTIME THROUGHPUT METRICS MISSING" >&2
        failed=1
    fi
else
    echo "note: $check not built; skipping report validation" >&2
fi

if [ "$failed" -ne 0 ]; then
    echo "run_benches.sh: FAILURES (see above)" >&2
    exit 1
fi
echo "run_benches.sh: all benches ran and reported"
