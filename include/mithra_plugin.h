/*
 * mithra_plugin.h — the MITHRA plugin ABI (version 1).
 *
 * A plugin is a shared object that contributes workloads (an
 * AxBench-class benchmark: precise function + deterministic dataset
 * generator + quality metric) and/or accelerator backends (an
 * alternative to the built-in NPU) to a MITHRA host process. The host
 * loads plugins named by the MITHRA_PLUGINS environment variable
 * (colon-separated paths, loaded in order) with dlopen and resolves
 * two exported symbols:
 *
 *     uint32_t mithra_plugin_abi_version(void);
 *     int      mithra_plugin_register(const mithra_host_v1 *host);
 *
 * The version function must return MITHRA_PLUGIN_ABI_VERSION as seen
 * at plugin build time; a mismatch is rejected before any other
 * plugin code runs. The register function receives the host's
 * function table and calls host->register_workload /
 * host->register_backend once per contributed item. It returns 0 on
 * success; any other value aborts the load.
 *
 * This header is deliberately C89-clean: it is the one file shared
 * verbatim between the C++ host and plugins written in plain C, and
 * it must keep compiling with `gcc -std=c89 -fsyntax-only` (enforced
 * by CI). Everything here is plain-old-data; ownership never crosses
 * the boundary except through the create/destroy pairs below.
 *
 * Stability policy (DESIGN.md section 16): within ABI v1, existing
 * struct fields are never reordered, removed, or retyped, and the
 * semantics of the lifecycle hooks never change. New capability is
 * added either by appending fields (guarded by struct_size: a plugin
 * built against an older header reports a smaller struct_size and the
 * host treats the missing tail as zeros/NULLs) or by introducing a
 * mithra_*_v2 table with a new entry point. Changing any existing
 * field or hook contract bumps MITHRA_PLUGIN_ABI_VERSION, and the
 * loader rejects the mismatch with an actionable error.
 *
 * Determinism contract (docs/PLUGINS.md): every hook must be a pure
 * function of its arguments. No wall clock, no rand()/random_device,
 * no reads of ambient process state, no allocation-address-dependent
 * behaviour. Two processes loading the same plugin must produce
 * bitwise-identical datasets, traces, and quality scores at any
 * MITHRA_THREADS / MITHRA_SHARDS setting.
 */

#ifndef MITHRA_PLUGIN_H
#define MITHRA_PLUGIN_H

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

/* Bumped only on breaking changes to the v1 tables (see the
 * stability policy above). */
#define MITHRA_PLUGIN_ABI_VERSION 1u

/* ------------------------------------------------------------------ */
/* Quality metrics (mithra_workload_v1.metric).                        */
/* ------------------------------------------------------------------ */

/* Mean per-element relative error of the final output, percent. */
#define MITHRA_METRIC_AVG_RELATIVE_ERROR 0
/* Fraction of binary decisions (element > 0.5) that flipped, percent. */
#define MITHRA_METRIC_MISS_RATE 1
/* RMS element difference relative to the 8-bit range, percent. */
#define MITHRA_METRIC_IMAGE_DIFF 2
/* Plugin-defined: quality_loss() is called instead of a built-in
 * metric and metric_name labels it in reports. */
#define MITHRA_METRIC_CUSTOM 3

/* ------------------------------------------------------------------ */
/* Cost description.                                                   */
/* ------------------------------------------------------------------ */

/*
 * Dynamic operation counts of one code region, in the host's
 * analytical cost model categories (src/sim/opcount.hh). The host
 * converts these into Nehalem-like cycles and energy; a plugin counts
 * the operations its precise kernel executes.
 */
typedef struct mithra_op_counts_v1 {
    uint64_t add_sub;        /* additions and subtractions            */
    uint64_t mul;            /* multiplications                       */
    uint64_t div_op;         /* divisions                             */
    uint64_t sqrt_op;        /* square roots                          */
    uint64_t transcendental; /* exp/log/sin/cos/pow and friends       */
    uint64_t compare;        /* comparisons and branches on data      */
    uint64_t memory;         /* abstract load/store traffic           */
} mithra_op_counts_v1;

/* ------------------------------------------------------------------ */
/* Accelerator backends.                                               */
/* ------------------------------------------------------------------ */

/*
 * An accelerator backend replaces the built-in NPU for workloads that
 * name it (mithra_workload_v1.backend). The host drives the same
 * offline workflow as for the NPU: create an instance, train it to
 * mimic sampled (input, output) pairs of the precise function, then
 * invoke it per accelerated invocation.
 *
 * All hooks receive the table's `ctx` pointer first; `instance` is
 * the opaque value returned by create(). Hooks must be deterministic:
 * train() must derive all randomness from `seed`.
 */
typedef struct mithra_backend_v1 {
    /* sizeof(mithra_backend_v1) at plugin build time (forward
     * compatibility: the host zero-fills any tail it knows about but
     * the plugin does not provide). */
    size_t struct_size;

    /* Unique backend name workloads reference, e.g. "lut16". */
    const char *name;

    /* Opaque plugin state passed to every hook. May be NULL. */
    void *ctx;

    /* Allocate one untrained accelerator instance. NULL on failure
     * (the host treats that as a fatal configuration error). */
    void *(*create)(void *ctx);

    /* Release an instance created by create(). */
    void (*destroy)(void *ctx, void *instance);

    /*
     * Train the instance to mimic the precise function on `count`
     * row-major sample pairs (inputs: count * input_width floats,
     * outputs: count * output_width floats). All randomness must
     * derive from `seed`. Returns the final training MSE in the
     * host's normalized units (>= 0), or a negative value on failure.
     */
    double (*train)(void *ctx, void *instance, const float *inputs,
                    const float *outputs, size_t count,
                    size_t input_width, size_t output_width,
                    uint64_t seed);

    /* One accelerated invocation: read input_width floats, write
     * output_width floats. Must be pure and reentrant: the host calls
     * it from multiple threads concurrently on the same trained
     * instance. */
    void (*invoke)(void *ctx, const void *instance, const float *input,
                   float *output);

    /* Modeled cost of one invoke() on the accelerator hardware. */
    void (*invocation_cost)(void *ctx, const void *instance,
                            uint64_t *cycles, double *picojoules);
} mithra_backend_v1;

/* ------------------------------------------------------------------ */
/* Workloads.                                                          */
/* ------------------------------------------------------------------ */

/*
 * A workload is one AxBench-class benchmark: a deterministic dataset
 * generator, the precise (safe-to-approximate) target function, the
 * final-output recomposition, and the quality metric the application
 * is judged by. Dataset handles are opaque plugin values owned by the
 * plugin and released through dataset_destroy.
 *
 * Threading: the host creates and traces many datasets concurrently.
 * Hooks must not share mutable state across calls; everything must be
 * a function of (ctx, dataset, arguments).
 */
typedef struct mithra_workload_v1 {
    /* sizeof(mithra_workload_v1) at plugin build time. */
    size_t struct_size;

    /* Unique workload name (registry key, cache key, report label). */
    const char *name;

    /* Application domain label, e.g. "Machine Learning". */
    const char *domain;

    /* One of the MITHRA_METRIC_* codes above. */
    int metric;

    /* Human-readable metric label; required when metric is
     * MITHRA_METRIC_CUSTOM, ignored otherwise. */
    const char *metric_name;

    /*
     * Custom final-quality metric, required when metric is
     * MITHRA_METRIC_CUSTOM (NULL otherwise): return the quality loss
     * of `candidate` against `reference` (both `count` floats of the
     * recomposed final output) in percent, >= 0, larger is worse.
     */
    double (*quality_loss)(void *ctx, const float *reference,
                           const float *candidate, size_t count);

    /* Width of one invocation's input / output vector. */
    size_t input_width;
    size_t output_width;

    /*
     * Accelerator topology, e.g. {6, 8, 1}: first entry must equal
     * input_width, last entry output_width. For the built-in NPU this
     * is the MLP layer layout; custom backends may interpret interior
     * entries freely (they still size the host's cost model tables).
     */
    const size_t *topology;
    size_t topology_len;

    /* NPU trainer knobs; 0 picks the host default. Ignored when a
     * custom backend is named. */
    size_t train_epochs;
    double train_learning_rate; /* 0.0 = host default */
    uint64_t train_seed;        /* 0 = host default */

    /* Quantizer code width of the table classifier; 0 defers to the
     * host's width-based policy. */
    unsigned int table_quantizer_bits;

    /* Create one dataset deterministically from `seed`. Equal seeds
     * must yield bitwise-equal datasets. NULL return is fatal. */
    void *(*dataset_create)(void *ctx, uint64_t seed);

    /* Release a dataset created by dataset_create(). */
    void (*dataset_destroy)(void *ctx, void *dataset);

    /* Number of target-function invocations the dataset performs. */
    size_t (*dataset_invocations)(void *ctx, const void *dataset);

    /* Input vector of invocation `index` (write input_width floats),
     * in application execution order. */
    void (*dataset_input)(void *ctx, const void *dataset, size_t index,
                          float *input);

    /* The precise target function: read input_width floats, write
     * output_width floats. Must be pure — the host also calls it on
     * inputs that never appeared in any dataset (drift harnesses,
     * the service's /invoke path). */
    void (*target_function)(void *ctx, const float *input,
                            float *output);

    /* Element count of the recomposed final output of `dataset`. */
    size_t (*final_size)(void *ctx, const void *dataset);

    /*
     * Rebuild the final application output from the per-invocation
     * output stream: `outputs` holds count * output_width floats,
     * where invocation i's vector is the approximate output when the
     * runtime chose the accelerator and the precise one otherwise.
     * Write final_size() floats to final_out. NULL means identity:
     * the final output is the concatenated output stream (final_size
     * must then equal count * output_width).
     */
    void (*recompose)(void *ctx, const void *dataset,
                      const float *outputs, size_t count,
                      float *final_out);

    /* Measured dynamic ops of one precise target-function invocation
     * and of the surrounding non-target region (per invocation). */
    mithra_op_counts_v1 target_ops;
    mithra_op_counts_v1 other_ops_per_invocation;

    /* Name of the accelerator backend to use, or NULL for the host's
     * NPU. The backend must be registered by the time the workload is
     * first compiled (same plugin or an earlier one in
     * MITHRA_PLUGINS). */
    const char *backend;

    /* Opaque plugin state passed to every hook. May be NULL. */
    void *ctx;
} mithra_workload_v1;

/* ------------------------------------------------------------------ */
/* The host table.                                                     */
/* ------------------------------------------------------------------ */

/*
 * Passed to mithra_plugin_register(). Registration functions return 0
 * on success and a negative value on invalid tables; the host copies
 * what it needs, so the tables may live on the plugin's stack. The
 * function-table ctx pointers must stay valid for the process
 * lifetime (plugins are never unloaded).
 */
typedef struct mithra_host_v1 {
    /* MITHRA_PLUGIN_ABI_VERSION of the host. */
    uint32_t abi_version;

    /* sizeof(mithra_host_v1) at host build time. */
    size_t struct_size;

    /* Opaque host state; pass to the registration functions. */
    void *host_ctx;

    int (*register_workload)(void *host_ctx,
                             const mithra_workload_v1 *workload);
    int (*register_backend)(void *host_ctx,
                            const mithra_backend_v1 *backend);
} mithra_host_v1;

/*
 * The two symbols every plugin exports. Declared for plugins that
 * include this header; the host resolves them with dlsym.
 */
uint32_t mithra_plugin_abi_version(void);
int mithra_plugin_register(const mithra_host_v1 *host);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* MITHRA_PLUGIN_H */
