/**
 * @file
 * Figure 12 (extension): watchdog detection latency under input
 * drift and hardware faults.
 *
 * The offline certificate (Figures 6-10) assumes the serving
 * distribution matches the compile distribution and the hardware
 * stays healthy. This harness breaks both assumptions on purpose and
 * measures how fast the runtime guarantee watchdog notices:
 *
 *  - Drift sweep: every benchmark's invocation stream is re-run with
 *    its inputs shifted by 0 / 0.5 / 1 / 2 per-dimension standard
 *    deviations. The 0-sigma row is the false-trip control — the
 *    watchdog must stay HEALTHY on clean streams.
 *  - Fault drills: NPU weight-memory bit flips and MISR decision-
 *    table corruption on otherwise clean streams.
 *
 * For each condition the table reports the post-change violation rate
 * among accelerated invocations (what the watchdog is trying to
 * estimate), whether the watchdog reached DEGRADED, the detection
 * latency in invocations from the onset of the change, and the
 * latency bound predicted from the sequential test's look schedule.
 * Shape to match: zero trips in the control row, detection latency
 * within the predicted bound once the drift pushes the violation rate
 * past the contract, and latency shrinking as drift grows.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.hh"
#include "axbench/drift.hh"
#include "axbench/registry.hh"
#include "common/logging.hh"
#include "core/report.hh"
#include "core/table_classifier.hh"
#include "core/watchdog/watchdog.hh"
#include "sim/fault_injection.hh"
#include "stats/clopper_pearson.hh"
#include "stats/summary.hh"

using namespace mithra;
using core::watchdog::noTrip;
using core::watchdog::Watchdog;
using core::watchdog::WatchdogOptions;

namespace
{

/** Drift magnitudes swept (per-dimension sigmas; 0 = control). */
const double driftMagnitudes[] = {0.0, 0.5, 1.0, 2.0};

/** Streams fed before the change (clean warmup) and after it. */
constexpr std::size_t warmupTraces = 2;
constexpr std::size_t changedTraces = 4;

/**
 * Merge several traces into one stationary mixture stream with a
 * fixed, seeded shuffle. Feeding whole traces back to back makes the
 * violation process bursty — one hot trace followed by three mild
 * ones, or a textured image region after a flat one — which is not
 * the stationary stream the sequential test models. The shuffled
 * mixture carries the aggregate violation rate at every point, so
 * the drill measures rate detection, not input ordering.
 */
axbench::InvocationTrace
mergeShuffled(const std::vector<const axbench::InvocationTrace *> &streams)
{
    MITHRA_EXPECTS(!streams.empty(), "nothing to merge");

    std::vector<std::pair<std::size_t, std::size_t>> order;
    for (std::size_t s = 0; s < streams.size(); ++s)
        for (std::size_t i = 0; i < streams[s]->count(); ++i)
            order.emplace_back(s, i);
    Rng rng = rngStream(0x51f7ULL, 0xf16ULL);
    for (std::size_t i = order.size(); i > 1; --i)
        std::swap(order[i - 1], order[rng.nextBelow(i)]);

    axbench::InvocationTrace merged(streams.front()->inputWidth(),
                                    streams.front()->outputWidth());
    for (const auto &[s, i] : order) {
        const auto in = streams[s]->input(i);
        const auto precise = streams[s]->preciseOutput(i);
        const auto approx = streams[s]->approxOutput(i);
        merged.appendWithApprox(Vec(in.begin(), in.end()),
                                Vec(precise.begin(), precise.end()),
                                Vec(approx.begin(), approx.end()));
    }
    return merged;
}

/** Violation rate / accelerated fraction of one stream. */
struct StreamProfile
{
    double violationRate = 0.0;
    double accelFraction = 0.0;
};

/**
 * Measure what a pristine classifier copy does on one trace: the
 * fraction of invocations it accelerates and the true violation rate
 * among those. This is the quantity the watchdog's audits estimate.
 */
StreamProfile
profileStream(core::TableClassifier classifier,
              const axbench::InvocationTrace &trace, double threshold)
{
    StreamProfile profile;
    std::size_t accel = 0;
    std::size_t violations = 0;
    classifier.beginDataset(trace);
    for (std::size_t i = 0; i < trace.count(); ++i) {
        if (classifier.decidePrecise(trace.inputVec(i), i))
            continue;
        ++accel;
        if (trace.maxAbsError(i) > static_cast<float>(threshold))
            ++violations;
    }
    if (trace.count() > 0)
        profile.accelFraction = static_cast<double>(accel)
            / static_cast<double>(trace.count());
    if (accel > 0)
        profile.violationRate = static_cast<double>(violations)
            / static_cast<double>(accel);
    return profile;
}

/**
 * Latency bound predicted from the sequential test: walk the look
 * schedule until the Clopper-Pearson lower bound at a conservative
 * violation fraction (the contract plus 0.8 of the measured excess
 * over it — shrinking the gap, not the rate, so a stream just above
 * the contract stays detectable) clears the contract, convert audits
 * to invocations through the audit rates, and double for schedule
 * noise. noTrip when the measured rate gives the test nothing to
 * detect.
 */
std::size_t
predictedDetectionInvocations(const StreamProfile &profile,
                              const WatchdogOptions &opts)
{
    if (profile.accelFraction <= 0.0)
        return noTrip;
    const double conservative = opts.maxViolationRate
        + 0.8 * (profile.violationRate - opts.maxViolationRate);
    if (conservative <= opts.maxViolationRate)
        return noTrip;

    const stats::SequentialBoundOptions schedule;
    const double alpha = 1.0 - opts.confidence;
    std::size_t n = schedule.firstLook;
    for (std::size_t look = 0; look < 64; ++look) {
        const double lookAlpha = stats::sequentialAlphaAtLook(alpha,
                                                              look);
        const auto k = static_cast<std::size_t>(
            std::ceil(conservative * static_cast<double>(n)));
        const double lower = stats::clopperPearsonLower(
            k, n, 1.0 - lookAlpha / 2.0);
        if (lower > opts.maxViolationRate) {
            // HEALTHY phase: the windowed screen needs up to a full
            // window of post-change audits at the base rate before the
            // ramp can engage.
            const double healthy =
                static_cast<double>(opts.suspectWindowAudits)
                / (opts.baseAuditRate * profile.accelFraction);
            const double suspect = static_cast<double>(n)
                / (opts.suspectAuditRate * profile.accelFraction);
            return static_cast<std::size_t>(2.0 * (healthy + suspect));
        }
        const auto grown = static_cast<std::size_t>(std::ceil(
            static_cast<double>(n) * schedule.lookGrowth));
        n = grown > n ? grown : n + 1;
    }
    return noTrip;
}

/** Outcome of one drill (warmup + changed streams). */
struct DrillResult
{
    std::size_t warmupTrips = 0;
    /** Invocations from change onset to DEGRADED (noTrip: never). */
    std::size_t detectLatency = noTrip;
    std::size_t audits = 0;
    StreamProfile changed;
};

/**
 * Run one drill: feed `warmup` clean streams through a pristine
 * classifier copy, then `changed` streams (optionally through a
 * different — corrupted — classifier, modeling a fault that strikes
 * at the onset); record when the watchdog first reaches DEGRADED
 * after the change. The changed streams cycle — deployment does not
 * stop producing inputs — until the watchdog trips or the stream has
 * covered `minChangedInvocations` (at least one full pass).
 */
DrillResult
runDrill(const core::TableClassifier &pristine, double threshold,
         const WatchdogOptions &opts,
         const std::vector<const axbench::InvocationTrace *> &warmup,
         const std::vector<const axbench::InvocationTrace *> &changed,
         std::size_t minChangedInvocations = 0,
         const core::TableClassifier *changedClassifier = nullptr)
{
    core::TableClassifier classifier = pristine;
    Watchdog dog(opts, threshold);

    DrillResult result;
    for (const auto *trace : warmup)
        core::watchdog::runStream(dog, classifier, *trace);
    result.warmupTrips = dog.snapshot().trips;

    core::TableClassifier onset =
        changedClassifier ? *changedClassifier : classifier;
    std::size_t offset = 0;
    bool firstPass = true;
    while (firstPass || offset < minChangedInvocations) {
        firstPass = false;
        for (const auto *trace : changed) {
            const auto stream =
                core::watchdog::runStream(dog, onset, *trace);
            if (result.detectLatency == noTrip
                && stream.tripIndex != noTrip)
                result.detectLatency = offset + stream.tripIndex;
            offset += stream.invocations;
            if (result.detectLatency != noTrip)
                break;
        }
        if (result.detectLatency != noTrip || changed.empty())
            break;
    }
    result.audits = dog.snapshot().audits;
    return result;
}

/**
 * How far past the change a drill keeps feeding invocations while
 * the watchdog stays quiet: the predicted bound itself (it already
 * carries 2x schedule slack), capped so a hopeless condition cannot
 * stall the harness.
 */
std::size_t
drillHorizon(std::size_t predictedBound)
{
    constexpr std::size_t cap = 1'500'000;
    if (predictedBound == noTrip)
        return 0;
    return predictedBound < cap ? predictedBound : cap;
}

std::string
fmtLatency(std::size_t latency)
{
    return latency == noTrip ? "-" : std::to_string(latency);
}

} // namespace

int
main()
{
    setInformEnabled(false);
    core::ExperimentRunner runner;
    const auto spec = bench::headlineSpec();
    runner.prefetch(axbench::benchmarkNames());

    WatchdogOptions wopts;
    wopts.enabled = true;

    core::printBanner("Figure 12: watchdog detection latency under "
                      "drift and faults (5% loss contract)");

    core::TablePrinter table({"benchmark", "drift (sigma)",
                              "accel fraction", "violation rate",
                              "tripped", "detect (invocations)",
                              "predicted bound", "audits"});
    std::vector<std::pair<std::string, double>> metrics;
    std::vector<double> twoSigmaLatencies;
    std::size_t controlTrips = 0;
    std::size_t twoSigmaMisses = 0;

    for (const auto &name : axbench::benchmarkNames()) {
        const auto &workload = runner.workload(name);
        const auto &bench = *workload.benchmark;
        const double threshold =
            runner.qualityPackage(name, spec).threshold.threshold;
        const auto &pristine = runner.tunedTableClassifier(name, spec);

        const auto &traces = workload.compileTraces;
        MITHRA_EXPECTS(traces.size() > warmupTraces,
                       "not enough compile traces for the drill");
        std::vector<const axbench::InvocationTrace *> warmup;
        for (std::size_t t = 0; t < warmupTraces; ++t)
            warmup.push_back(traces[t].get());

        // Source streams the change is applied to (reused per drift
        // magnitude; wrap around when compile traces run short).
        std::vector<const axbench::InvocationTrace *> sources;
        for (std::size_t t = 0; t < changedTraces; ++t)
            sources.push_back(
                traces[warmupTraces + t % (traces.size() - warmupTraces)]
                    .get());

        for (const double magnitude : driftMagnitudes) {
            // Build the drifted streams (identity drift reuses the
            // clean traces directly).
            // Sign-scrambled shift plus spread widening: a uniform
            // translation is invisible to gradient/geometry kernels,
            // and pure translation clamps every input to the same
            // quantizer corner. This drift deforms the distribution.
            axbench::DriftSpec drift;
            drift.shiftSigma = magnitude;
            drift.scrambleSigns = true;
            drift.spread = 1.0 + magnitude;
            std::vector<axbench::InvocationTrace> storage;
            std::vector<const axbench::InvocationTrace *> changed;
            for (const auto *source : sources) {
                if (drift.identity()) {
                    changed.push_back(source);
                    continue;
                }
                storage.push_back(axbench::driftTrace(
                    bench, workload.accel, *source,
                    axbench::measureInputMoments(*source), drift));
            }
            for (const auto &trace : storage)
                changed.push_back(&trace);
            const auto merged = mergeShuffled(changed);

            const auto profile =
                profileStream(pristine, merged, threshold);
            const auto bound =
                predictedDetectionInvocations(profile, wopts);
            const auto result = runDrill(pristine, threshold, wopts,
                                         warmup, {&merged},
                                         drillHorizon(bound));
            controlTrips +=
                magnitude == 0.0 ? result.warmupTrips : 0;
            if (magnitude == 0.0 && result.detectLatency != noTrip)
                ++controlTrips;

            const bool tripped = result.detectLatency != noTrip;
            table.addRow({name, core::fmtRatio(magnitude),
                          core::fmtPct(100.0 * profile.accelFraction),
                          core::fmtPct(100.0 * profile.violationRate),
                          tripped ? "yes" : "no",
                          fmtLatency(result.detectLatency),
                          fmtLatency(bound),
                          std::to_string(result.audits)});

            const std::string prefix = name + ".drift_"
                + std::to_string(static_cast<int>(10.0 * magnitude));
            metrics.emplace_back(prefix + ".violation_rate",
                                 profile.violationRate);
            metrics.emplace_back(prefix + ".tripped",
                                 tripped ? 1.0 : 0.0);
            if (tripped)
                metrics.emplace_back(
                    prefix + ".detect_invocations",
                    static_cast<double>(result.detectLatency));
            if (magnitude == 2.0) {
                if (tripped)
                    twoSigmaLatencies.push_back(
                        static_cast<double>(result.detectLatency));
                else
                    ++twoSigmaMisses;
                if (bound != noTrip && tripped
                    && result.detectLatency > bound)
                    ++twoSigmaMisses;
            }
        }
    }
    table.print();

    // Fault drills: hardware decay on clean input streams.
    core::printBanner("Fault drills: NPU weight upsets / decision-"
                      "table corruption on clean streams");
    core::TablePrinter faults({"benchmark", "fault", "bits",
                               "accel fraction", "violation rate",
                               "tripped", "detect (invocations)",
                               "audits"});
    for (const auto &name : axbench::benchmarkNames()) {
        const auto &workload = runner.workload(name);
        const auto &bench = *workload.benchmark;
        const double threshold =
            runner.qualityPackage(name, spec).threshold.threshold;
        const auto &pristine = runner.tunedTableClassifier(name, spec);
        const auto &traces = workload.compileTraces;

        std::vector<const axbench::InvocationTrace *> warmup;
        for (std::size_t t = 0; t < warmupTraces; ++t)
            warmup.push_back(traces[t].get());
        std::vector<const axbench::InvocationTrace *> sources;
        for (std::size_t t = 0; t < changedTraces; ++t)
            sources.push_back(
                traces[warmupTraces + t % (traces.size() - warmupTraces)]
                    .get());

        // NPU decay: deep-copy the accelerator, flip weight bits, and
        // rebuild the streams with the corrupted approximations.
        {
            auto faulty = npu::Approximator::fromParts(
                workload.accel.inputScalerRef(),
                workload.accel.outputScalerRef(),
                workload.accel.network());
            const std::size_t flips =
                std::max<std::size_t>(4, faulty.network().weightCount() / 4);
            sim::flipMlpWeightBits(faulty.mutableNetwork(), flips,
                                   0xfa017ULL);

            const axbench::DriftSpec identity;
            std::vector<axbench::InvocationTrace> storage;
            std::vector<const axbench::InvocationTrace *> changed;
            for (const auto *source : sources)
                storage.push_back(axbench::driftTrace(
                    bench, faulty, *source,
                    axbench::measureInputMoments(*source), identity));
            for (const auto &trace : storage)
                changed.push_back(&trace);
            const auto merged = mergeShuffled(changed);

            const auto profile =
                profileStream(pristine, merged, threshold);
            const auto bound =
                predictedDetectionInvocations(profile, wopts);
            const auto result = runDrill(pristine, threshold, wopts,
                                         warmup, {&merged},
                                         drillHorizon(bound));
            const bool tripped = result.detectLatency != noTrip;
            faults.addRow({name, "npu-weights",
                           std::to_string(flips),
                           core::fmtPct(100.0 * profile.accelFraction),
                           core::fmtPct(100.0 * profile.violationRate),
                           tripped ? "yes" : "no",
                           fmtLatency(result.detectLatency),
                           std::to_string(result.audits)});
            metrics.emplace_back(name + ".npu_fault.tripped",
                                 tripped ? 1.0 : 0.0);
        }

        // Quality-control decay: corrupt the decision tables; clean
        // streams, but the classifier now approves inputs it was
        // trained to redirect.
        {
            core::TableClassifier corrupted = pristine;
            const auto &geom = corrupted.hardware().geometry();
            const std::size_t bits = geom.numTables
                * geom.tableBytes; // 1/8 of all decision bits
            sim::corruptTableBits(corrupted.mutableHardware(), bits,
                                  0x7ab1e2ULL);

            const auto merged = mergeShuffled(sources);
            const auto profile =
                profileStream(corrupted, merged, threshold);
            const auto bound =
                predictedDetectionInvocations(profile, wopts);
            const auto result =
                runDrill(pristine, threshold, wopts, warmup, {&merged},
                         drillHorizon(bound), &corrupted);
            const bool tripped = result.detectLatency != noTrip;
            faults.addRow({name, "misr-table",
                           std::to_string(bits),
                           core::fmtPct(100.0 * profile.accelFraction),
                           core::fmtPct(100.0 * profile.violationRate),
                           tripped ? "yes" : "no",
                           fmtLatency(result.detectLatency),
                           std::to_string(result.audits)});
            metrics.emplace_back(name + ".table_fault.tripped",
                                 tripped ? 1.0 : 0.0);
        }
    }
    faults.print();

    std::printf("\nClean streams never trip the watchdog; every "
                "2-sigma drift trips it within the sequential test's "
                "predicted latency, faster as the drift grows. Faults "
                "that push the violation rate past the contract trip "
                "it too; faults the classifier absorbs below the "
                "contract correctly do not — the watchdog patrols the "
                "guarantee, not the hardware.\n");

    metrics.emplace_back("watchdog.control_trips",
                         static_cast<double>(controlTrips));
    metrics.emplace_back("watchdog.two_sigma_misses",
                         static_cast<double>(twoSigmaMisses));
    metrics.emplace_back("watchdog.detect_latency_mean_2sigma",
                         twoSigmaLatencies.empty()
                             ? -1.0
                             : stats::mean(twoSigmaLatencies));
    bench::writeBenchReport("fig12_drift_watchdog", metrics);
    return 0;
}
