/**
 * @file
 * Microbenchmarks (google-benchmark) of the mechanisms on MITHRA's
 * critical path: MISR hashing, multi-table decisions, neural-classifier
 * forward passes, BDI line compression and Clopper-Pearson bounds.
 *
 * These measure *host* performance of the models (useful when scaling
 * the experiment harness), not modeled hardware latency — the modeled
 * costs live in sim/ and npu/cost_model.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "common/rng.hh"
#include "compress/bdi.hh"
#include "hw/decision_table.hh"
#include "hw/misr.hh"
#include "hw/quantizer.hh"
#include "npu/mlp.hh"
#include "npu/trainer.hh"
#include "stats/clopper_pearson.hh"

using namespace mithra;

namespace
{

std::vector<std::uint8_t>
randomCodes(std::size_t n, Rng &rng)
{
    std::vector<std::uint8_t> codes(n);
    for (auto &c : codes)
        c = static_cast<std::uint8_t>(rng.nextBelow(256));
    return codes;
}

void
BM_MisrHash(benchmark::State &state)
{
    Rng rng(1);
    const auto codes = randomCodes(
        static_cast<std::size_t>(state.range(0)), rng);
    hw::Misr misr(hw::misrConfigPool()[3], 12);
    for (auto _ : state)
        benchmark::DoNotOptimize(misr.hash(codes));
}
BENCHMARK(BM_MisrHash)->Arg(2)->Arg(9)->Arg(18)->Arg(64);

void
BM_EnsembleDecide(benchmark::State &state)
{
    Rng rng(2);
    hw::TableGeometry geometry;
    hw::TableEnsemble ensemble(geometry, {0, 1, 2, 3, 4, 5, 6, 7});
    std::vector<hw::TrainingTuple> tuples;
    for (int i = 0; i < 4096; ++i)
        tuples.push_back({randomCodes(9, rng), rng.bernoulli(0.1)});
    ensemble.train(tuples);

    const auto probe = randomCodes(9, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(ensemble.decidePrecise(probe));
}
BENCHMARK(BM_EnsembleDecide);

void
BM_MlpForward(benchmark::State &state)
{
    const auto hidden = static_cast<std::size_t>(state.range(0));
    npu::Mlp mlp({18, hidden, 2});
    npu::initWeights(mlp, 7);
    Vec input(18);
    Rng rng(3);
    for (auto &v : input)
        v = static_cast<float>(rng.uniform());
    for (auto _ : state)
        benchmark::DoNotOptimize(mlp.forward(input));
}
BENCHMARK(BM_MlpForward)->Arg(2)->Arg(8)->Arg(32);

void
BM_BdiCompressLine(benchmark::State &state)
{
    Rng rng(4);
    std::array<std::uint8_t, compress::lineBytes> line{};
    // A compressible line: small deltas around a base.
    for (std::size_t i = 0; i < line.size(); ++i)
        line[i] = static_cast<std::uint8_t>(100 + rng.nextBelow(8));
    for (auto _ : state)
        benchmark::DoNotOptimize(compress::compressLine(line));
}
BENCHMARK(BM_BdiCompressLine);

void
BM_ClopperPearsonLower(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            stats::clopperPearsonLower(235, 250, 0.95));
    }
}
BENCHMARK(BM_ClopperPearsonLower);

void
BM_GreedyEnsembleTraining(benchmark::State &state)
{
    Rng rng(5);
    std::vector<hw::TrainingTuple> tuples;
    for (int i = 0; i < 20000; ++i)
        tuples.push_back({randomCodes(6, rng), rng.bernoulli(0.1)});
    hw::TableGeometry geometry;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            hw::trainGreedyEnsemble(geometry, tuples));
    }
}
BENCHMARK(BM_GreedyEnsembleTraining)->Unit(benchmark::kMillisecond);

} // namespace

// Expanded BENCHMARK_MAIN() so the binary can emit its run report
// after the benchmarks finish.
int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    bench::writeBenchReport("micro_classifier");
    return 0;
}
