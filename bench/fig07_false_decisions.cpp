/**
 * @file
 * Figure 7: false positives and false negatives of the table-based and
 * neural designs against the oracle, across quality-loss levels.
 *
 * A false positive runs an invocation precisely that the oracle would
 * have accelerated (costs benefit); a false negative accelerates an
 * invocation the oracle would have filtered (costs quality). Shape to
 * match: false positives dominate false negatives for both designs —
 * the classifiers are conservative — with (paper @5%) table 22% FP /
 * 5% FN and neural 18% FP / 9% FN.
 */

#include <cstdio>

#include "bench_common.hh"
#include "axbench/registry.hh"
#include "common/logging.hh"
#include "core/report.hh"
#include "stats/summary.hh"

using namespace mithra;

int
main()
{
    setInformEnabled(false);
    core::ExperimentRunner runner;
    bench::prefetchSuite(
        runner, bench::allLevelSpecs(),
        {core::Design::Table, core::Design::Neural});

    core::printBanner("Figure 7: false decisions versus the oracle");

    core::TablePrinter mean({"quality loss", "design",
                             "false positives", "false negatives"});
    std::vector<std::pair<std::string, double>> metrics;
    for (double quality : bench::qualityLevels) {
        const auto spec = bench::headlineSpec(quality);
        for (core::Design design :
             {core::Design::Table, core::Design::Neural}) {
            std::vector<double> fps, fns;
            for (const auto &name : axbench::benchmarkNames()) {
                const auto record = runner.run(name, spec, design);
                fps.push_back(record.eval.falsePositiveRate);
                fns.push_back(record.eval.falseNegativeRate);
            }
            mean.addRow({core::fmtPct(quality),
                         core::designName(design),
                         core::fmtPct(100.0 * stats::mean(fps)),
                         core::fmtPct(100.0 * stats::mean(fns))});
            if (quality == 5.0) {
                const std::string prefix = core::designName(design);
                metrics.emplace_back(prefix + ".false_positive_mean",
                                     stats::mean(fps));
                metrics.emplace_back(prefix + ".false_negative_mean",
                                     stats::mean(fns));
            }
        }
    }
    mean.print();

    std::printf("\nPer-benchmark at 5%% quality loss:\n\n");
    core::TablePrinter per({"benchmark", "table FP", "table FN",
                            "neural FP", "neural FN"});
    const auto spec = bench::headlineSpec();
    for (const auto &name : axbench::benchmarkNames()) {
        const auto tbl = runner.run(name, spec, core::Design::Table);
        const auto net = runner.run(name, spec, core::Design::Neural);
        per.addRow({name,
                    core::fmtPct(100.0 * tbl.eval.falsePositiveRate),
                    core::fmtPct(100.0 * tbl.eval.falseNegativeRate),
                    core::fmtPct(100.0 * net.eval.falsePositiveRate),
                    core::fmtPct(100.0 * net.eval.falseNegativeRate)});
    }
    per.print();
    bench::writeBenchReport("fig07_false_decisions", metrics);
    return 0;
}
