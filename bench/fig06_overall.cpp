/**
 * @file
 * Figure 6: whole-application benefits versus the desired quality-loss
 * level, with 95% confidence / 90% success-rate guarantees.
 *
 *  (a) geometric-mean speedup over the precise baseline,
 *  (b) geometric-mean energy reduction,
 *  (c) mean accelerator invocation rate,
 * for the oracle, the table-based design and the neural design at
 * quality-loss levels {2.5, 5, 7.5, 10}%.
 *
 * Shape to match (paper, 5% loss): table ~2.5x speedup / ~2.6x energy,
 * neural similar speedup with more energy gain, oracle ~26%/36% above
 * the table design; invocation rates table ~64%, neural ~73%, oracle
 * highest; all rates rise as the quality requirement loosens.
 */

#include <cstdio>

#include "bench_common.hh"
#include "axbench/registry.hh"
#include "common/logging.hh"
#include "core/report.hh"
#include "stats/summary.hh"

using namespace mithra;

int
main()
{
    setInformEnabled(false);
    core::ExperimentRunner runner;
    bench::prefetchSuite(runner, bench::allLevelSpecs(),
                         bench::mainDesigns);

    core::printBanner("Figure 6: speedup / energy reduction / invocation "
                      "rate vs quality loss (95% conf, 90% success)");

    core::TablePrinter table({"quality loss", "design", "geomean speedup",
                              "geomean energy gain", "mean invocation",
                              "datasets in contract"});

    std::vector<std::pair<std::string, double>> metrics;
    for (double quality : bench::qualityLevels) {
        const auto spec = bench::headlineSpec(quality);
        for (core::Design design : bench::mainDesigns) {
            std::vector<double> speedups, energies, rates;
            std::size_t successes = 0, trials = 0;
            for (const auto &name : axbench::benchmarkNames()) {
                const auto record = runner.run(name, spec, design);
                speedups.push_back(record.eval.speedup);
                energies.push_back(record.eval.energyReduction);
                rates.push_back(record.eval.invocationRate);
                successes += record.eval.successes;
                trials += record.eval.trials;
            }
            table.addRow({core::fmtPct(quality),
                          core::designName(design),
                          core::fmtRatio(stats::geomean(speedups)),
                          core::fmtRatio(stats::geomean(energies)),
                          core::fmtPct(100.0 * stats::mean(rates)),
                          std::to_string(successes) + "/"
                              + std::to_string(trials)});
            if (quality == 5.0) {
                const std::string prefix = core::designName(design);
                metrics.emplace_back(prefix + ".speedup_geomean",
                                     stats::geomean(speedups));
                metrics.emplace_back(prefix + ".energy_gain_geomean",
                                     stats::geomean(energies));
                metrics.emplace_back(prefix + ".invocation_rate_mean",
                                     stats::mean(rates));
            }
        }
    }
    table.print();

    std::printf("\nPaper @5%%: oracle 3.19x/3.53x, table 2.5x/2.6x, "
                "neural ~2.5x/+13%% energy; rates 93%%/64%%/73%%.\n");
    bench::writeBenchReport("fig06_overall", metrics);
    return 0;
}
