/**
 * @file
 * Figure 9: the input-conscious designs versus random filtering at the
 * 5% quality-loss level.
 *
 * Random filtering routes a fixed fraction of invocations to the
 * precise core without looking at the inputs. Two comparisons:
 *
 *  1. At the *same invocation rate* as each MITHRA design, random
 *     filtering wrecks the quality contract — choosing *which*
 *     invocations to filter is what matters.
 *  2. At the *same quality contract* (the largest random invocation
 *     rate whose Clopper-Pearson bound still certifies 90% success),
 *     MITHRA delivers more speedup and energy reduction — the paper's
 *     +41%/+50% (table) and +46%/+76% (neural) result.
 */

#include <cstdio>

#include "bench_common.hh"
#include "axbench/registry.hh"
#include "common/logging.hh"
#include "core/report.hh"
#include "stats/summary.hh"

using namespace mithra;

namespace
{

/**
 * Largest random invocation rate whose validation bound certifies the
 * contract (bisection over the precise fraction).
 */
core::ExperimentRecord
randomAtContract(core::ExperimentRunner &runner, const std::string &name,
                 const core::QualitySpec &spec)
{
    double loRate = 0.0; // certainly certifiable (all precise)
    double hiRate = 1.0;
    core::RunOptions options;
    options.randomPreciseFraction = 1.0;
    core::ExperimentRecord best =
        runner.run(name, spec, core::Design::Random, options);
    for (int step = 0; step < 8; ++step) {
        const double rate = 0.5 * (loRate + hiRate);
        options.randomPreciseFraction = 1.0 - rate;
        const auto record =
            runner.run(name, spec, core::Design::Random, options);
        if (record.eval.successLowerBound >= spec.successRate) {
            best = record;
            loRate = rate;
        } else {
            hiRate = rate;
        }
    }
    return best;
}

} // namespace

int
main()
{
    setInformEnabled(false);
    core::ExperimentRunner runner;
    const auto spec = bench::headlineSpec();
    bench::prefetchSuite(runner, {spec},
                         {core::Design::Table, core::Design::Neural});

    core::printBanner("Figure 9: MITHRA vs random filtering (5% quality "
                      "loss)");

    std::printf("(1) Random at the same invocation rate: quality "
                "collapses\n\n");
    core::TablePrinter equalRate({"benchmark", "design",
                                  "invocation rate", "quality met",
                                  "random quality met"});
    for (const auto &name : axbench::benchmarkNames()) {
        for (core::Design design :
             {core::Design::Table, core::Design::Neural}) {
            const auto mithraRecord = runner.run(name, spec, design);
            core::RunOptions randomOptions;
            randomOptions.randomPreciseFraction =
                1.0 - mithraRecord.eval.invocationRate;
            const auto randomRecord = runner.run(
                name, spec, core::Design::Random, randomOptions);
            equalRate.addRow(
                {name, core::designName(design),
                 core::fmtPct(100.0 * mithraRecord.eval.invocationRate),
                 std::to_string(mithraRecord.eval.successes) + "/"
                     + std::to_string(mithraRecord.eval.trials),
                 std::to_string(randomRecord.eval.successes) + "/"
                     + std::to_string(randomRecord.eval.trials)});
        }
    }
    equalRate.print();

    std::printf("\n(2) Random at the same quality contract: benefits "
                "collapse\n\n");
    core::TablePrinter equalQuality(
        {"benchmark", "design", "speedup vs random",
         "energy vs random", "random certified rate"});

    std::vector<double> tableSpeedupGain, tableEnergyGain;
    std::vector<double> neuralSpeedupGain, neuralEnergyGain;
    for (const auto &name : axbench::benchmarkNames()) {
        const auto randomRecord = randomAtContract(runner, name, spec);
        for (core::Design design :
             {core::Design::Table, core::Design::Neural}) {
            const auto mithraRecord = runner.run(name, spec, design);
            const double speedupGain = mithraRecord.eval.speedup
                / randomRecord.eval.speedup;
            const double energyGain = mithraRecord.eval.energyReduction
                / randomRecord.eval.energyReduction;
            if (design == core::Design::Table) {
                tableSpeedupGain.push_back(speedupGain);
                tableEnergyGain.push_back(energyGain);
            } else {
                neuralSpeedupGain.push_back(speedupGain);
                neuralEnergyGain.push_back(energyGain);
            }
            equalQuality.addRow(
                {name, core::designName(design),
                 core::fmtRatio(speedupGain),
                 core::fmtRatio(energyGain),
                 core::fmtPct(100.0
                              * randomRecord.eval.invocationRate)});
        }
    }
    equalQuality.print();

    std::printf("\nMean gain over contract-certified random filtering: "
                "table %.2fx speedup / %.2fx energy,\nneural %.2fx / "
                "%.2fx (paper: +41%%/+50%% table, +46%%/+76%% "
                "neural).\n",
                stats::mean(tableSpeedupGain),
                stats::mean(tableEnergyGain),
                stats::mean(neuralSpeedupGain),
                stats::mean(neuralEnergyGain));
    bench::writeBenchReport(
        "fig09_vs_random",
        {{"table.speedup_gain_mean", stats::mean(tableSpeedupGain)},
         {"table.energy_gain_mean", stats::mean(tableEnergyGain)},
         {"neural.speedup_gain_mean", stats::mean(neuralSpeedupGain)},
         {"neural.energy_gain_mean", stats::mean(neuralEnergyGain)}});
    return 0;
}
