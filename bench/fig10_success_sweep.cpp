/**
 * @file
 * Figure 10: energy-delay-product improvement versus the desired
 * success rate at 95% confidence and 5% quality loss.
 *
 * Raising the success rate demands a tighter threshold, which filters
 * more invocations and shrinks the benefit: statistical guarantees
 * have a price. Shape to match: EDP improvement decreases
 * monotonically (roughly) as the success-rate requirement grows.
 */

#include <cstdio>

#include "bench_common.hh"
#include "axbench/registry.hh"
#include "common/logging.hh"
#include "core/report.hh"
#include "stats/summary.hh"

using namespace mithra;

int
main()
{
    setInformEnabled(false);
    core::ExperimentRunner runner;

    const double successRates[] = {0.50, 0.60, 0.70, 0.80, 0.90, 0.95};
    std::vector<core::QualitySpec> specs;
    for (double successRate : successRates) {
        auto spec = bench::headlineSpec();
        spec.successRate = successRate;
        specs.push_back(spec);
    }
    runner.prefetch(axbench::benchmarkNames(), specs,
                    bench::mainDesigns);

    core::printBanner("Figure 10: EDP improvement vs success rate "
                      "(5% quality loss, 95% confidence)");

    core::TablePrinter table({"success rate", "oracle EDP gain",
                              "table EDP gain", "neural EDP gain",
                              "mean invocation (oracle)"});
    std::vector<std::pair<std::string, double>> metrics;
    for (double successRate : successRates) {
        auto spec = bench::headlineSpec();
        spec.successRate = successRate;

        std::vector<double> oracleEdp, tableEdp, neuralEdp, rates;
        for (const auto &name : axbench::benchmarkNames()) {
            const auto oracle =
                runner.run(name, spec, core::Design::Oracle);
            const auto tbl = runner.run(name, spec, core::Design::Table);
            const auto net =
                runner.run(name, spec, core::Design::Neural);
            oracleEdp.push_back(oracle.eval.edpImprovement);
            tableEdp.push_back(tbl.eval.edpImprovement);
            neuralEdp.push_back(net.eval.edpImprovement);
            rates.push_back(oracle.eval.invocationRate);
        }
        table.addRow({core::fmtPct(100.0 * successRate, 0),
                      core::fmtRatio(stats::geomean(oracleEdp)),
                      core::fmtRatio(stats::geomean(tableEdp)),
                      core::fmtRatio(stats::geomean(neuralEdp)),
                      core::fmtPct(100.0 * stats::mean(rates))});
        const std::string prefix =
            "success_" + std::to_string(
                static_cast<int>(100.0 * successRate));
        metrics.emplace_back(prefix + ".table_edp_geomean",
                             stats::geomean(tableEdp));
        metrics.emplace_back(prefix + ".neural_edp_geomean",
                             stats::geomean(neuralEdp));
    }
    table.print();

    std::printf("\nHigher statistical guarantees come at a higher "
                "price (paper §V-B.1).\n");
    bench::writeBenchReport("fig10_success_sweep", metrics);
    return 0;
}
