/**
 * @file
 * Figure 1: cumulative distribution of the final per-element error
 * under full approximation (100% accelerator invocation).
 *
 * The paper's insight: only a small fraction (0%-20%) of output
 * elements see large errors, which is the opportunity MITHRA exploits.
 * For each benchmark we print a CDF series over the element errors of
 * the unseen validation outputs, plus the fraction of elements whose
 * error exceeds 10% (the "large error" tail).
 */

#include <cstdio>

#include "bench_common.hh"
#include "axbench/registry.hh"
#include "common/logging.hh"
#include "core/report.hh"
#include "stats/summary.hh"

using namespace mithra;

int
main()
{
    setInformEnabled(false);
    core::ExperimentRunner runner;
    // Error samples always need the compiled workloads; build them all
    // across the thread pool up front.
    runner.prefetch(axbench::benchmarkNames());

    core::printBanner("Figure 1: CDF of final element error under full "
                      "approximation");

    std::vector<std::pair<std::string, double>> metrics;
    for (const auto &name : axbench::benchmarkNames()) {
        const auto errors = runner.elementErrorSample(name, 2000000);
        stats::EmpiricalCdf cdf(errors);

        std::printf("%s (%zu elements)\n", name.c_str(), cdf.size());
        std::printf("  error<=   ");
        const double levels[] = {0.5, 1, 2.5, 5, 10, 20, 40, 100};
        for (double level : levels)
            std::printf("%7.1f%%", level);
        std::printf("\n  fraction  ");
        for (double level : levels) {
            std::printf("%7.1f%%",
                        100.0 * cdf.fractionAtOrBelow(level));
        }
        const double largeTail = 1.0 - cdf.fractionAtOrBelow(10.0);
        std::printf("\n  elements with error > 10%%: %.1f%%\n\n",
                    100.0 * largeTail);
        metrics.emplace_back(name + ".large_error_tail_pct",
                             100.0 * largeTail);
    }

    std::printf("Paper claim: only a small fraction (0%%-20%%) of output "
                "elements see large errors.\n");
    bench::writeBenchReport("fig01_error_cdf", metrics);
    return 0;
}
