/**
 * @file
 * Throughput microbenchmark of the sharded, batch-first runtime
 * decision loop (core/shard.hh): how many routed decisions per second
 * the table classifier sustains through runShardedDecisions(), with
 * and without per-shard watchdogs, and how much the deterministic
 * evidence merge costs relative to deciding.
 *
 * Headline metrics (gated by tools/report-check --require in
 * run_benches.sh and the CI perf smoke job):
 *
 *   runtime.decisions_per_sec   routed decisions/sec, watchdog off
 *   runtime.shard_count         shards used (MITHRA_SHARDS or threads)
 *   runtime.merge_overhead_pct  slot-ordered tally fold + evidence
 *                               merge as a percentage of decision time
 *
 * Host performance only — modeled hardware latency lives in sim/.
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "core/shard.hh"
#include "core/table_classifier.hh"

using namespace mithra;
using namespace mithra::core;
using Clock = std::chrono::steady_clock;

namespace
{

constexpr std::size_t inputWidth = 6;
constexpr std::size_t traceRows = 1u << 20;

double
seconds(Clock::time_point begin, Clock::time_point end)
{
    return std::chrono::duration<double>(end - begin).count();
}

/**
 * A synthetic invocation stream with a learnable precise region: the
 * accelerator's error is large when the first input coordinate is in
 * the top decile, plus a thin random fringe — roughly what a trained
 * table sees in deployment.
 */
axbench::InvocationTrace
makeTrace(Rng &rng)
{
    axbench::InvocationTrace trace(inputWidth, 1);
    Vec input(inputWidth);
    Vec precise(1);
    Vec approx(1);
    for (std::size_t i = 0; i < traceRows; ++i) {
        for (auto &v : input)
            v = static_cast<float>(rng.uniform());
        precise[0] = input[0] + input[1];
        const bool hard = input[0] > 0.9f || rng.bernoulli(0.02);
        approx[0] = precise[0]
            + (hard ? 0.3f : 0.01f)
                * static_cast<float>(rng.uniform());
        trace.appendWithApprox(input, precise, approx);
    }
    return trace;
}

/** Label against the same threshold the loop audits with. */
TableClassifier
trainTable(const axbench::InvocationTrace &trace, double threshold)
{
    TrainingData data;
    data.threshold = threshold;
    const std::size_t tuples = 20000;
    for (std::size_t i = 0; i < tuples; ++i) {
        const std::size_t row = i * (traceRows / tuples);
        data.rawInputs.push_back(trace.inputVec(row));
        data.labels.push_back(
            trace.maxAbsError(row) > static_cast<float>(threshold)
                ? 1
                : 0);
    }
    return TableClassifier::train(data, TableClassifierOptions{});
}

} // namespace

int
main()
{
    setInformEnabled(false);
    Rng rng(0xbe7c5);
    const double threshold = 0.05;
    const axbench::InvocationTrace trace = makeTrace(rng);
    TableClassifier table = trainTable(trace, threshold);

    const std::size_t shardCount = defaultShardCount();
    const ShardPlan plan(trace.count(), shardCount);
    DecisionLoopOptions loop;
    loop.oracleThreshold = threshold;

    std::vector<std::uint8_t> decisions(trace.count(), 0);
    std::vector<ShardTally> tallies;
    std::vector<watchdog::Watchdog> noDogs;

    // Watchdog-off pass: the headline routed-decision throughput.
    const std::size_t repsOff = 32;
    table.beginDataset(trace);
    runShardedDecisions(table, trace, plan, noDogs, loop,
                        decisions.data(), tallies); // warm-up
    const auto beginOff = Clock::now();
    for (std::size_t rep = 0; rep < repsOff; ++rep) {
        table.beginDataset(trace);
        runShardedDecisions(table, trace, plan, noDogs, loop,
                            decisions.data(), tallies);
    }
    const double offSeconds = seconds(beginOff, Clock::now());
    const double offDecisions =
        static_cast<double>(repsOff) * static_cast<double>(trace.count());
    const double decisionsPerSec = offDecisions / offSeconds;

    std::size_t accelerated = 0;
    for (const ShardTally &tally : tallies)
        accelerated += tally.accelerated;
    const double accelFraction = static_cast<double>(accelerated)
        / static_cast<double>(trace.count());

    // Watchdog-on pass: per-shard state machines and audits on the
    // same stream, with the slot-ordered merge timed separately.
    watchdog::WatchdogOptions wdOptions;
    wdOptions.baseAuditRate = 0.02;
    std::vector<watchdog::Watchdog> dogs;
    for (std::size_t k = 0; k < shardCount; ++k) {
        watchdog::WatchdogOptions perShard = wdOptions;
        perShard.confidence =
            stats::splitConfidence(wdOptions.confidence, shardCount);
        perShard.seed = shardSeed(wdOptions.seed, k);
        dogs.emplace_back(perShard, threshold);
    }

    const std::size_t repsOn = 8;
    double mergeSeconds = 0.0;
    ShardedEvaluation evidence;
    evidence.shardCount = shardCount;
    evidence.shards.resize(shardCount);
    const auto beginOn = Clock::now();
    for (std::size_t rep = 0; rep < repsOn; ++rep) {
        table.beginDataset(trace);
        runShardedDecisions(table, trace, plan, dogs, loop,
                            decisions.data(), tallies);

        const auto beginMerge = Clock::now();
        for (std::size_t k = 0; k < shardCount; ++k) {
            ShardReport &report = evidence.shards[k];
            report.invocations += tallies[k].invocations;
            report.accelerated += tallies[k].accelerated;
            report.falsePositives += tallies[k].falsePositives;
            report.falseNegatives += tallies[k].falseNegatives;
        }
        mergeShardEvidence(dogs, wdOptions.confidence, evidence);
        mergeSeconds += seconds(beginMerge, Clock::now());
    }
    const double onSeconds = seconds(beginOn, Clock::now());
    const double onDecisions =
        static_cast<double>(repsOn) * static_cast<double>(trace.count());
    const double watchdogPerSec = onDecisions / onSeconds;
    const double mergeOverheadPct =
        100.0 * mergeSeconds / (onSeconds - mergeSeconds);

    std::printf("micro_runtime: sharded decision-loop throughput\n");
    std::printf("  shards                 %zu (threads %zu)\n",
                shardCount, parallelThreadCount());
    std::printf("  decisions/sec          %.3e (watchdog off)\n",
                decisionsPerSec);
    std::printf("  decisions/sec          %.3e (watchdog on)\n",
                watchdogPerSec);
    std::printf("  merge overhead         %.4f %%\n", mergeOverheadPct);
    std::printf("  accelerated fraction   %.3f\n", accelFraction);
    std::printf("  merged envelope        [%.4f, %.4f] @ %zu audits\n",
                evidence.violationEnvelope.lower,
                evidence.violationEnvelope.upper,
                evidence.shards.empty()
                    ? std::size_t{0}
                    : [&] {
                          std::size_t audits = 0;
                          for (const auto &shard : evidence.shards)
                              audits += shard.watchdog.audits;
                          return audits;
                      }());

    bench::writeBenchReport(
        "micro_runtime",
        {{"runtime.decisions_per_sec", decisionsPerSec},
         {"runtime.shard_count", static_cast<double>(shardCount)},
         {"runtime.merge_overhead_pct", mergeOverheadPct},
         {"runtime.decisions_per_sec_watchdog", watchdogPerSec},
         {"runtime.accel_fraction", accelFraction}});
    return 0;
}
