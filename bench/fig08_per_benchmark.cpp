/**
 * @file
 * Figure 8: per-benchmark speedup, energy reduction and accelerator
 * invocation rate for the oracle, table-based and neural designs
 * across quality-loss levels (95% confidence, 90% success rate).
 *
 * Shape to match: most benchmarks track the oracle closely with both
 * designs; on jmeint and jpeg (wide accelerator input vectors, hence
 * heavy hash aliasing) the neural design clearly beats the table
 * design on invocation rate, while jmeint's neural gains are muted by
 * the cost of its own neurons.
 *
 * Pass --no-online to ablate the table design's online updates.
 */

#include <cstdio>
#include <cstring>

#include "bench_common.hh"
#include "axbench/registry.hh"
#include "common/logging.hh"
#include "core/report.hh"

using namespace mithra;

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    const bool noOnline = argc > 1
        && std::strcmp(argv[1], "--no-online") == 0;

    core::ExperimentRunner runner;
    core::RunOptions prefetchOptions;
    prefetchOptions.onlineUpdates = !noOnline;
    bench::prefetchSuite(runner, bench::allLevelSpecs(),
                         bench::mainDesigns, prefetchOptions);

    core::printBanner(std::string("Figure 8: per-benchmark results")
                      + (noOnline ? " (ablation: online updates off)"
                                  : ""));

    std::vector<std::pair<std::string, double>> metrics;
    for (const auto &name : axbench::benchmarkNames()) {
        std::printf("%s\n", name.c_str());
        core::TablePrinter table({"quality loss", "design", "speedup",
                                  "energy gain", "invocation rate",
                                  "quality met"});
        for (double quality : bench::qualityLevels) {
            const auto spec = bench::headlineSpec(quality);
            for (core::Design design : bench::mainDesigns) {
                core::RunOptions options;
                if (design == core::Design::Table && noOnline)
                    options.onlineUpdates = false;
                const auto record = runner.run(name, spec, design,
                                               options);
                table.addRow(
                    {core::fmtPct(quality), core::designName(design),
                     core::fmtRatio(record.eval.speedup),
                     core::fmtRatio(record.eval.energyReduction),
                     core::fmtPct(100.0 * record.eval.invocationRate),
                     std::to_string(record.eval.successes) + "/"
                         + std::to_string(record.eval.trials)});
                if (quality == 5.0) {
                    metrics.emplace_back(
                        name + "." + core::designName(design)
                            + ".speedup",
                        record.eval.speedup);
                }
            }
        }
        table.print();
        std::printf("\n");
    }
    bench::writeBenchReport("fig08_per_benchmark", metrics);
    return 0;
}
