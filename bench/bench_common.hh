/**
 * @file
 * Shared constants and helpers for the table/figure harness binaries.
 *
 * Every binary regenerates one artifact of the paper's evaluation
 * (Section V). All binaries share the ExperimentRunner result cache
 * ($MITHRA_CACHE, default .mithra-cache.tsv), so running them back to
 * back computes the expensive grid only once. MITHRA_SCALE (default 1)
 * shrinks dataset counts/sizes for smoke runs.
 */

#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "axbench/registry.hh"
#include "core/experiment.hh"
#include "telemetry/run_report.hh"

namespace mithra::bench
{

/**
 * Emit the machine-readable run report every harness binary writes
 * alongside its console table: BENCH_<name>.json in $MITHRA_REPORT_DIR
 * (default: the working directory), schema-versioned, carrying the
 * binary's headline metrics plus the full telemetry stats and span
 * registries. run_benches.sh fails the suite when a binary exits
 * without its report.
 */
inline void
writeBenchReport(
    const std::string &name,
    const std::vector<std::pair<std::string, double>> &metrics = {})
{
    telemetry::RunReport report(name);
    for (const auto &[key, value] : metrics)
        report.addMetric(key, value);
    const std::string path = report.write();
    // stderr, so machine-readable stdout (--benchmark_format=json)
    // stays parseable.
    if (!path.empty())
        std::fprintf(stderr, "\nrun report: %s\n", path.c_str());
}

/** Quality-loss levels the paper sweeps (percent). */
inline const std::vector<double> qualityLevels = {2.5, 5.0, 7.5, 10.0};

/** The headline operating point: 5% loss, 95% confidence, 90% rate. */
inline core::QualitySpec
headlineSpec(double qualityLossPct = 5.0)
{
    core::QualitySpec spec;
    spec.maxQualityLossPct = qualityLossPct;
    spec.confidence = 0.95;
    spec.successRate = 0.90;
    return spec;
}

/** The three quality-controlled designs of Figures 6-8. */
inline const std::vector<core::Design> mainDesigns = {
    core::Design::Oracle, core::Design::Table, core::Design::Neural};

/** headlineSpec at every quality level the paper sweeps. */
inline std::vector<core::QualitySpec>
allLevelSpecs()
{
    std::vector<core::QualitySpec> specs;
    for (double quality : qualityLevels)
        specs.push_back(headlineSpec(quality));
    return specs;
}

/**
 * Compile whatever the binary's (spec, design) grid still needs
 * across the thread pool before its serial evaluation loops run.
 * Fully cached runs skip straight to the tables.
 */
inline void
prefetchSuite(core::ExperimentRunner &runner,
              const std::vector<core::QualitySpec> &specs,
              const std::vector<core::Design> &designs,
              const core::RunOptions &options = core::RunOptions{})
{
    runner.prefetch(axbench::benchmarkNames(), specs, designs, options);
}

} // namespace mithra::bench

