/**
 * @file
 * Microbenchmarks (google-benchmark) of the SIMD kernel layer
 * (src/common/kernels): single-thread throughput of the batched MLP
 * forward pass, the batch MISR hasher and the batch quantizer, run
 * once per backend the host CPU supports.
 *
 * Every benchmark reports two counters:
 *   backend            — kernels::Backend the measurement ran under
 *   speedup_vs_scalar  — this backend's mean wall time relative to the
 *                        scalar run of the same family (registration
 *                        puts the scalar run first)
 *
 * The determinism contract (common/kernels/kernels.hh) guarantees all
 * backends compute bitwise-identical results, so the speedup is the
 * whole story. The run report carries the best backend's speedup per
 * family as `<family>.speedup_vs_scalar`; CI pins those keys with
 * report-check --require.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/kernels/kernels.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/vec.hh"
#include "hw/misr.hh"
#include "npu/mlp.hh"
#include "npu/trainer.hh"

using namespace mithra;
namespace kernels = mithra::kernels;

namespace
{

/** family -> speedup at the best backend, for the run report. */
std::map<std::string, double> &
reportSpeedups()
{
    static std::map<std::string, double> speedups;
    return speedups;
}

/** Register one Arg per supported backend, scalar first. */
void
applyBackendArgs(benchmark::internal::Benchmark *bench)
{
    for (auto backend : {kernels::Backend::Scalar, kernels::Backend::Sse42,
                         kernels::Backend::Avx2}) {
        if (kernels::backendSupported(backend))
            bench->Arg(static_cast<long>(backend));
    }
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/**
 * Report the counters. The scalar mean of each family is captured when
 * it runs (first, by registration order) and serves as the baseline
 * for the SIMD backends.
 */
void
reportCounters(benchmark::State &state, const std::string &family,
               kernels::Backend backend, double meanSeconds)
{
    static std::map<std::string, double> baselines;
    if (backend == kernels::Backend::Scalar)
        baselines[family] = meanSeconds;
    state.counters["backend"] =
        benchmark::Counter(static_cast<double>(backend));
    const auto it = baselines.find(family);
    const double speedup = it != baselines.end() && meanSeconds > 0.0
        ? it->second / meanSeconds
        : 0.0;
    state.counters["speedup_vs_scalar"] = benchmark::Counter(speedup);
    // Backends run ascending, so the last write is the best backend.
    reportSpeedups()[family + ".speedup_vs_scalar"] = speedup;
}

void
BM_MlpForward(benchmark::State &state)
{
    const auto backend = static_cast<kernels::Backend>(state.range(0));
    kernels::setActiveBackend(backend);

    const npu::Topology topology = {64, 32, 8};
    npu::Mlp net(topology);
    npu::initWeights(net, 0x5eedULL);

    constexpr std::size_t batch = 512;
    Rng rng(0x6d6c70ULL);
    std::vector<float> inputs(batch * topology.front());
    for (auto &v : inputs)
        v = static_cast<float>(rng.uniform());

    npu::ForwardScratch scratch;
    scratch.prepare(topology);

    double totalSeconds = 0.0;
    std::size_t iterations = 0;
    for (auto _ : state) {
        const auto start = std::chrono::steady_clock::now();
        float sink = 0.0f;
        for (std::size_t i = 0; i < batch; ++i) {
            npu::forwardTrace(
                net, {inputs.data() + i * topology.front(),
                      topology.front()},
                scratch);
            sink += scratch.output()[0];
        }
        benchmark::DoNotOptimize(sink);
        totalSeconds += secondsSince(start);
        ++iterations;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * batch));
    reportCounters(state, "mlp_forward", backend,
                   totalSeconds / static_cast<double>(iterations));
}
BENCHMARK(BM_MlpForward)
    ->Apply(applyBackendArgs)
    ->Unit(benchmark::kMicrosecond);

void
BM_MisrHash(benchmark::State &state)
{
    const auto backend = static_cast<kernels::Backend>(state.range(0));
    kernels::setActiveBackend(backend);

    constexpr std::size_t width = 16;
    constexpr std::size_t count = 4096;
    const hw::Misr misr(hw::misrConfigPool()[0], 12);

    Rng rng(0x6d697372ULL);
    std::vector<std::uint8_t> codes(width * count);
    for (auto &code : codes)
        code = static_cast<std::uint8_t>(rng.nextBelow(256));
    std::vector<std::uint32_t> out(count);

    double totalSeconds = 0.0;
    std::size_t iterations = 0;
    for (auto _ : state) {
        const auto start = std::chrono::steady_clock::now();
        kernels::misrHashBatch(misr.params(), codes.data(), width,
                               count, out.data());
        benchmark::DoNotOptimize(out.data());
        totalSeconds += secondsSince(start);
        ++iterations;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * count));
    reportCounters(state, "misr_hash", backend,
                   totalSeconds / static_cast<double>(iterations));
}
BENCHMARK(BM_MisrHash)
    ->Apply(applyBackendArgs)
    ->Unit(benchmark::kMicrosecond);

void
BM_Quantize(benchmark::State &state)
{
    const auto backend = static_cast<kernels::Backend>(state.range(0));
    kernels::setActiveBackend(backend);

    constexpr std::size_t width = 16;
    constexpr std::size_t count = 4096;
    Rng rng(0x7175616eULL);
    std::vector<float> lows(width), highs(width);
    for (std::size_t j = 0; j < width; ++j) {
        lows[j] = static_cast<float>(rng.uniform(-4.0, 0.0));
        highs[j] = lows[j] + static_cast<float>(rng.uniform(0.5, 4.0));
    }
    std::vector<float> values(width * count);
    for (auto &v : values)
        v = static_cast<float>(rng.uniform(-5.0, 5.0));
    std::vector<std::uint8_t> out(width * count);

    double totalSeconds = 0.0;
    std::size_t iterations = 0;
    for (auto _ : state) {
        const auto start = std::chrono::steady_clock::now();
        kernels::quantizeBatch(values.data(), width, count, lows.data(),
                               highs.data(), 255, out.data());
        benchmark::DoNotOptimize(out.data());
        totalSeconds += secondsSince(start);
        ++iterations;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * width * count));
    reportCounters(state, "quantize", backend,
                   totalSeconds / static_cast<double>(iterations));
}
BENCHMARK(BM_Quantize)
    ->Apply(applyBackendArgs)
    ->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    std::vector<std::pair<std::string, double>> metrics(
        reportSpeedups().begin(), reportSpeedups().end());
    bench::writeBenchReport("micro_kernels", metrics);
    return 0;
}
