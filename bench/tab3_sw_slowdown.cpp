/**
 * @file
 * Section V-B text result: software-only classifiers are a net
 * slowdown — the motivation for MITHRA's hardware classifiers.
 *
 * We model running each classifier's computation on the core instead
 * of in dedicated hardware: the table design computes eight MISR
 * hashes and table probes in software per invocation; the neural
 * design evaluates its MLP with scalar multiply-adds and libm
 * sigmoids. Shape to match: average execution time inflates by ~2.9x
 * (table) and ~9.6x (neural) relative to the hardware-classifier
 * system.
 */

#include <cstdio>

#include "bench_common.hh"
#include "axbench/registry.hh"
#include "common/logging.hh"
#include "core/report.hh"
#include "npu/mlp.hh"
#include "sim/core_model.hh"
#include "sim/system_sim.hh"
#include "stats/summary.hh"

using namespace mithra;

namespace
{

/** Core cycles to compute the table classifier's decision in software. */
double
softwareTableCycles(const sim::CoreModel &core, std::size_t inputs,
                    std::size_t numTables)
{
    sim::OpCounts ops;
    // Quantize each element: subtract, multiply, clamp, round.
    ops.addSub += inputs * 2;
    ops.mul += inputs;
    ops.compare += inputs * 2;
    // Per table: a MISR step per element (rotate, parity, xor ~ 4 ALU
    // ops) plus the table load and bit extract.
    ops.addSub += numTables * inputs * 4;
    ops.memory += numTables;
    ops.compare += numTables;
    return core.cycles(ops);
}

/** Core cycles to evaluate the neural classifier in software. */
double
softwareNeuralCycles(const sim::CoreModel &core, const npu::Topology &topo)
{
    sim::OpCounts ops;
    for (std::size_t l = 1; l < topo.size(); ++l) {
        const std::size_t macs = topo[l] * (topo[l - 1] + 1);
        ops.mul += macs;
        ops.addSub += macs;
        ops.transcendental += topo[l]; // sigmoid via expf
        ops.memory += macs;            // weight loads
    }
    return core.cycles(ops);
}

} // namespace

int
main()
{
    setInformEnabled(false);
    core::ExperimentRunner runner;
    const auto spec = bench::headlineSpec();
    // The simulator path below reads runner.workload() directly, so
    // the compiled workloads are always needed.
    runner.prefetch(axbench::benchmarkNames());

    core::printBanner("Software classifiers (paper 'necessity of "
                      "hardware' result, 5% quality loss)");

    core::TablePrinter table({"benchmark", "design",
                              "speedup (hw classifier)",
                              "speedup (sw classifier)",
                              "sw vs hw slowdown"});

    std::vector<double> tableSlowdowns, neuralSlowdowns;
    for (const auto &name : axbench::benchmarkNames()) {
        const auto &workload = runner.workload(name);
        const sim::CoreModel core(workload.coreParams);
        const sim::SystemSimulator system(core, workload.systemParams);
        const auto baseline = system.baseline(workload.profile);

        for (core::Design design :
             {core::Design::Table, core::Design::Neural}) {
            const auto record = runner.run(name, spec, design);
            const auto invocations = static_cast<double>(
                workload.profile.invocationsPerDataset);
            const auto numAccel = static_cast<std::size_t>(
                record.eval.invocationRate * invocations + 0.5);
            const std::size_t numPrecise =
                workload.profile.invocationsPerDataset - numAccel;

            // Software classifier: its computation serializes on the
            // core ahead of every invocation, both paths.
            sim::ClassifierCost swCost;
            double cycles = 0.0;
            if (design == core::Design::Table) {
                cycles = softwareTableCycles(
                    core, workload.benchmark->npuTopology().front(), 8);
            } else {
                npu::Topology topo = {
                    workload.benchmark->npuTopology().front(), 8, 2};
                cycles = softwareNeuralCycles(core, topo);
            }
            swCost.extraCyclesAccel = cycles;
            swCost.extraCyclesPrecise = cycles;
            swCost.energyPjPerInvocation = core.energyPj(cycles);

            const auto swTotals = system.run(workload.profile, swCost,
                                             numAccel, numPrecise);
            const double hwSpeedup = record.eval.speedup;
            const double swSpeedup = sim::speedup(baseline, swTotals);
            const double slowdown = hwSpeedup / swSpeedup;
            (design == core::Design::Table ? tableSlowdowns
                                           : neuralSlowdowns)
                .push_back(slowdown);

            table.addRow({name, core::designName(design),
                          core::fmtRatio(hwSpeedup),
                          core::fmtRatio(swSpeedup),
                          core::fmtRatio(slowdown)});
        }
    }
    table.print();

    std::printf("\nMean sw-vs-hw slowdown: table %.1fx, neural %.1fx "
                "(paper: 2.9x and 9.6x vs runtime).\n",
                stats::mean(tableSlowdowns),
                stats::mean(neuralSlowdowns));
    std::printf("A co-designed hardware-software solution is necessary "
                "for quality control.\n");
    bench::writeBenchReport(
        "tab3_sw_slowdown",
        {{"table.sw_slowdown_mean", stats::mean(tableSlowdowns)},
         {"neural.sw_slowdown_mean", stats::mean(neuralSlowdowns)}});
    return 0;
}
