/**
 * @file
 * Table II: size of the table-based design after BDI compression and
 * the selected neural classifier topology/size, at the headline 5%
 * quality-loss contract.
 *
 * Shape to match: sparse tables (blackscholes, fft, inversek2j,
 * jmeint) compress well below the 4 KB uncompressed budget; dense
 * tables (jpeg, sobel) barely benefit.
 */

#include <cstdio>

#include "bench_common.hh"
#include "axbench/registry.hh"
#include "common/logging.hh"
#include "core/report.hh"

using namespace mithra;

int
main()
{
    setInformEnabled(false);
    core::ExperimentRunner runner;
    const auto spec = bench::headlineSpec();
    bench::prefetchSuite(runner, {spec},
                         {core::Design::Table, core::Design::Neural});

    core::printBanner("Table II: compressed classifier sizes (5% quality "
                      "loss)");

    core::TablePrinter table({"benchmark", "table size (BDI)",
                              "paper table", "neural topology",
                              "neural size", "paper neural"});
    const char *paperTable[] = {"0.25 KB", "0.25 KB", "0.29 KB",
                                "0.25 KB", "3.70 KB", "3.30 KB"};
    const char *paperNeural[] = {"0.57 KB", "0.10 KB", "0.10 KB",
                                 "1.47 KB", "0.79 KB", "0.22 KB"};
    std::size_t row = 0;
    double tableBytesTotal = 0.0, neuralBytesTotal = 0.0;
    for (const auto &name : axbench::benchmarkNames()) {
        const auto tableRec =
            runner.run(name, spec, core::Design::Table);
        const auto neuralRec =
            runner.run(name, spec, core::Design::Neural);
        table.addRow({name, core::fmtKb(tableRec.compressedBytes),
                      paperTable[row], neuralRec.topology,
                      core::fmtKb(neuralRec.compressedBytes),
                      paperNeural[row]});
        tableBytesTotal += tableRec.compressedBytes;
        neuralBytesTotal += neuralRec.compressedBytes;
        ++row;
    }
    table.print();
    std::printf("\nUncompressed table design: 8 tables x 0.5 KB = 4 KB "
                "(Pareto optimal, see fig11).\n");
    bench::writeBenchReport(
        "tab2_classifier_sizes",
        {{"table.compressed_bytes_total", tableBytesTotal},
         {"neural.config_bytes_total", neuralBytesTotal}});
    return 0;
}
