/**
 * @file
 * Microbenchmark for the surrogate-guided design-space exploration
 * engine (DESIGN.md §15). Two phases, three headline metrics:
 *
 *  1. **Savings** — a 315-candidate geometry x quantizer grid on the
 *     cheapest benchmark, explored with pruning on. Headlines
 *     `dse.exact_evals_saved_pct` (fraction of the grid the surrogate
 *     ruled out without exact evaluation) and `dse.sweep_speedup`
 *     (grid size over exact evaluations selected). CI gates the
 *     former at >= 80, i.e. at least 5x fewer exact evaluations.
 *
 *  2. **Accuracy** — the Figure 11 grid on every benchmark, explored
 *     both pruned and brute-force through the same engine. Headlines
 *     `dse.front_hypervolume_err`, the worst absolute difference
 *     between the pruned and exhaustive Pareto-front hypervolumes
 *     (identical fronts give exactly 0, which CI requires). The
 *     pruned front document for each benchmark is written to
 *     $MITHRA_REPORT_DIR as FRONT_<benchmark>.json for report-check
 *     --front and the CI artifact.
 *
 * Everything runs through the shared ExperimentRunner cache, so a
 * warm replay selects the same candidates and executes zero exact
 * evaluations.
 */

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "bench_common.hh"
#include "axbench/registry.hh"
#include "common/env_registry.hh"
#include "common/logging.hh"
#include "core/report.hh"
#include "dse/explorer.hh"

using namespace mithra;

namespace
{

/** Phase 1: the enlarged savings grid (5 x 7 x 9 = 315 candidates). */
dse::DseAxes
savingsAxes()
{
    dse::DseAxes axes;
    axes.tableCounts = {1, 2, 4, 8, 16};
    axes.tableBytes = {128, 256, 512, 1024, 2048, 4096, 8192};
    axes.quantizerBits = {0, 1, 2, 3, 4, 5, 6, 7, 8};
    return axes;
}

/** Phase 2: the paper's Figure 11 grid. */
dse::DseAxes
fig11Axes()
{
    dse::DseAxes axes;
    axes.tableCounts = {1, 2, 4, 8};
    axes.tableBytes = {128, 512, 2048, 4096};
    axes.quantizerBits = {0};
    return axes;
}

/** Candidate label for console tables: "8T x 0.500 KB @4b". */
std::string
candidateLabel(const dse::DseCandidate &point)
{
    char label[64];
    std::snprintf(label, sizeof(label), "%zuT x %.3f KB @%ub",
                  point.options.geometry.numTables,
                  static_cast<double>(point.options.geometry.tableBytes)
                      / 1024.0,
                  point.options.quantizerBits);
    return label;
}

/** True when both results selected the same front designs in order. */
bool
frontsIdentical(const dse::DseResult &a, const dse::DseResult &b)
{
    if (a.front.size() != b.front.size())
        return false;
    for (std::size_t at = 0; at < a.front.size(); ++at) {
        const core::RunOptions &lhs =
            a.candidates[a.front[at]].options;
        const core::RunOptions &rhs =
            b.candidates[b.front[at]].options;
        if (lhs.geometry.numTables != rhs.geometry.numTables
            || lhs.geometry.tableBytes != rhs.geometry.tableBytes
            || lhs.quantizerBits != rhs.quantizerBits)
            return false;
    }
    return true;
}

} // namespace

int
main()
{
    setInformEnabled(false);
    core::ExperimentRunner runner;
    const auto spec = bench::headlineSpec();

    // ------------------------------------------------------ phase 1
    core::printBanner("DSE savings: 315-candidate grid, surrogate "
                      "pruning on (inversek2j, 5% quality loss)");

    const dse::Explorer explorer;
    const dse::DseResult savings =
        explorer.explore(runner, "inversek2j", spec, savingsAxes());

    core::TablePrinter phase1({"candidates", "seeds+survivors",
                               "executed", "saved", "speedup"});
    phase1.addRow({std::to_string(savings.candidates.size()),
                   std::to_string(savings.exactEvalsSelected),
                   std::to_string(savings.exactEvalsExecuted),
                   core::fmtPct(savings.savedPct),
                   std::to_string(savings.sweepSpeedup) + "x"});
    phase1.print();

    core::TablePrinter front1({"front", "total size",
                               "invocation rate", "quality met"});
    for (const std::size_t at : savings.front) {
        const dse::DseCandidate &point = savings.candidates[at];
        front1.addRow({candidateLabel(point),
                       core::fmtKb(point.costBytes, 3),
                       core::fmtPct(100.0
                                    * point.record.eval.invocationRate),
                       std::to_string(point.record.eval.successes) + "/"
                           + std::to_string(point.record.eval.trials)});
    }
    front1.print();

    // ------------------------------------------------------ phase 2
    core::printBanner("DSE accuracy: pruned vs exhaustive Pareto "
                      "fronts on the Figure 11 grid");

    const dse::DseAxes grid = fig11Axes();
    for (std::size_t count : grid.tableCounts) {
        for (std::size_t bytes : grid.tableBytes) {
            core::RunOptions options;
            options.geometry.numTables = count;
            options.geometry.tableBytes = bytes;
            options.skipCalibration = true;
            runner.prefetch(axbench::benchmarkNames(), {spec},
                            {core::Design::Table}, options);
        }
    }

    dse::DseOptions bruteOptions = explorer.options();
    bruteOptions.exhaustive = true;
    const dse::Explorer brute(bruteOptions);

    const std::string reportDir = env::text("MITHRA_REPORT_DIR", ".");
    std::filesystem::create_directories(reportDir);
    double hypervolumeErr = 0.0;
    bool allIdentical = true;
    core::TablePrinter phase2({"benchmark", "front", "exact evals",
                               "hypervolume err", "fronts match"});
    for (const auto &name : axbench::benchmarkNames()) {
        const dse::DseResult pruned =
            explorer.explore(runner, name, spec, grid);
        const dse::DseResult reference =
            brute.explore(runner, name, spec, grid);
        const double err =
            std::fabs(pruned.hypervolume - reference.hypervolume);
        hypervolumeErr = std::max(hypervolumeErr, err);
        const bool identical = frontsIdentical(pruned, reference);
        allIdentical = allIdentical && identical;
        phase2.addRow({name, std::to_string(pruned.front.size()),
                       std::to_string(pruned.exactEvalsSelected) + "/"
                           + std::to_string(pruned.candidates.size()),
                       std::to_string(err),
                       identical ? "yes" : "NO"});

        const telemetry::Json document = pruned.toJson();
        const std::string problem =
            telemetry::validateParetoFront(document);
        if (!problem.empty())
            warn("front document for ", name, ": ", problem);
        const std::string path =
            reportDir + "/FRONT_" + name + ".json";
        std::ofstream out(path);
        out << document.dump(2) << "\n";
        std::fprintf(stderr, "front report: %s\n", path.c_str());
    }
    phase2.print();
    if (!allIdentical)
        std::printf("\nWARNING: a pruned front diverged from its "
                    "exhaustive reference; widen MITHRA_DSE_MARGIN / "
                    "MITHRA_DSE_QUALITY_MARGIN.\n");

    bench::writeBenchReport(
        "micro_dse",
        {{"dse.exact_evals_saved_pct", savings.savedPct},
         {"dse.sweep_speedup", savings.sweepSpeedup},
         {"dse.front_hypervolume_err", hypervolumeErr}});
    return 0;
}
