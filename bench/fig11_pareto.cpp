/**
 * @file
 * Figure 11: Pareto analysis of the table-based design at 5% quality
 * loss — number of parallel tables x per-table size against the mean
 * accelerator invocation rate.
 *
 * Shape to match: tiny tables alias destructively and lose benefit;
 * capacity beyond ~4 KB total stops paying; more tables at the same
 * per-table size help (distinct hash functions); 8 tables x 0.5 KB is
 * the (paper's) Pareto-optimal default.
 *
 * Pass --bits to run the quantizer-width ablation instead (the other
 * design choice DESIGN.md calls out).
 */

#include <cstdio>
#include <cstring>

#include "bench_common.hh"
#include "axbench/registry.hh"
#include "common/logging.hh"
#include "core/report.hh"
#include "stats/summary.hh"

using namespace mithra;

namespace
{

void
runGeometrySweep(core::ExperimentRunner &runner)
{
    core::printBanner("Figure 11: Pareto analysis of the table-based "
                      "design (5% quality loss)");

    const std::size_t tableCounts[] = {1, 2, 4, 8};
    const std::size_t tableBytes[] = {128, 512, 2048, 4096};
    const auto spec = bench::headlineSpec();

    core::TablePrinter table({"configuration", "total size",
                              "mean invocation rate",
                              "mean quality met"});
    for (std::size_t count : tableCounts) {
        for (std::size_t bytes : tableBytes) {
            core::RunOptions options;
            options.geometry.numTables = count;
            options.geometry.tableBytes = bytes;
            options.skipCalibration = true;

            // Compiles everything in parallel on the first uncached
            // configuration; a no-op afterwards.
            runner.prefetch(axbench::benchmarkNames(), {spec},
                            {core::Design::Table}, options);

            std::vector<double> rates;
            std::size_t successes = 0, trials = 0;
            for (const auto &name : axbench::benchmarkNames()) {
                const auto record = runner.run(
                    name, spec, core::Design::Table, options);
                rates.push_back(record.eval.invocationRate);
                successes += record.eval.successes;
                trials += record.eval.trials;
            }

            char label[64];
            std::snprintf(label, sizeof(label), "%zuT x %.3f KB", count,
                          static_cast<double>(bytes) / 1024.0);
            table.addRow({label,
                          core::fmtKb(static_cast<double>(count * bytes),
                                      3),
                          core::fmtPct(100.0 * stats::mean(rates)),
                          std::to_string(successes) + "/"
                              + std::to_string(trials)});
        }
    }
    table.print();
    std::printf("\nThe paper's Pareto-optimal configuration is 8T x "
                "0.5 KB (4 KB total, uncompressed).\n");
}

void
runBitsAblation(core::ExperimentRunner &runner)
{
    core::printBanner("Ablation: table-classifier quantizer width "
                      "(5% quality loss, 8T x 0.5 KB)");

    const auto spec = bench::headlineSpec();
    for (unsigned bits = 1; bits <= 8; ++bits) {
        core::RunOptions options;
        options.quantizerBits = bits;
        options.skipCalibration = true;
        runner.prefetch(axbench::benchmarkNames(), {spec},
                        {core::Design::Table}, options);
    }

    core::TablePrinter table({"benchmark", "bits", "invocation rate",
                              "FP", "FN", "quality met"});
    for (const auto &name : axbench::benchmarkNames()) {
        for (unsigned bits = 1; bits <= 8; ++bits) {
            // Skip configurations whose pattern space is degenerate
            // for very wide inputs (cost control).
            const auto facts = runner.workloadFacts(name);
            (void)facts;
            core::RunOptions options;
            options.quantizerBits = bits;
            options.skipCalibration = true;
            const auto record = runner.run(name, spec,
                                           core::Design::Table, options);
            table.addRow(
                {name, std::to_string(bits),
                 core::fmtPct(100.0 * record.eval.invocationRate),
                 core::fmtPct(100.0 * record.eval.falsePositiveRate),
                 core::fmtPct(100.0 * record.eval.falseNegativeRate),
                 std::to_string(record.eval.successes) + "/"
                     + std::to_string(record.eval.trials)});
        }
    }
    table.print();
}

} // namespace

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    core::ExperimentRunner runner;

    if (argc > 1 && std::strcmp(argv[1], "--bits") == 0)
        runBitsAblation(runner);
    else
        runGeometrySweep(runner);
    bench::writeBenchReport("fig11_pareto");
    return 0;
}
