/**
 * @file
 * Figure 11: Pareto analysis of the table-based design at 5% quality
 * loss — number of parallel tables x per-table size against the mean
 * accelerator invocation rate.
 *
 * Shape to match: tiny tables alias destructively and lose benefit;
 * capacity beyond ~4 KB total stops paying; more tables at the same
 * per-table size help (distinct hash functions); 8 tables x 0.5 KB is
 * the (paper's) Pareto-optimal default.
 *
 * Since the DSE rework the figure runs on the surrogate-guided
 * explorer (DESIGN.md §15): by default the sweep is pruned — only
 * seed points and candidates the surrogate cannot rule out are
 * evaluated exactly, and the per-benchmark Pareto fronts are printed
 * from measured points. Pass --exhaustive to brute-force the full
 * grid through the same engine and print the classic aggregate table
 * (byte-for-byte the pre-DSE output), which doubles as the engine's
 * accuracy reference. Pass --bits to run the quantizer-width ablation
 * instead (the other design choice DESIGN.md calls out).
 */

#include <cstdio>
#include <cstring>

#include "bench_common.hh"
#include "axbench/registry.hh"
#include "common/logging.hh"
#include "core/report.hh"
#include "dse/explorer.hh"
#include "stats/summary.hh"

using namespace mithra;

namespace
{

/** The paper's Figure 11 grid. */
dse::DseAxes
fig11Axes()
{
    dse::DseAxes axes;
    axes.tableCounts = {1, 2, 4, 8};
    axes.tableBytes = {128, 512, 2048, 4096};
    axes.quantizerBits = {0};
    return axes;
}

/**
 * Brute force the grid through the explorer's exhaustive mode and
 * print the classic aggregate table. Output is byte-for-byte the
 * pre-DSE harness: same prefetch behaviour, same label format, same
 * aggregation in the same order.
 */
void
runExhaustiveSweep(core::ExperimentRunner &runner)
{
    core::printBanner("Figure 11: Pareto analysis of the table-based "
                      "design (5% quality loss)");

    const dse::DseAxes axes = fig11Axes();
    const auto spec = bench::headlineSpec();

    // Compiles everything in parallel on the first uncached
    // configuration; a no-op afterwards.
    for (std::size_t count : axes.tableCounts) {
        for (std::size_t bytes : axes.tableBytes) {
            core::RunOptions options;
            options.geometry.numTables = count;
            options.geometry.tableBytes = bytes;
            options.skipCalibration = true;
            runner.prefetch(axbench::benchmarkNames(), {spec},
                            {core::Design::Table}, options);
        }
    }

    dse::DseOptions dseOptions = dse::DseOptions::fromEnv();
    dseOptions.exhaustive = true;
    const dse::Explorer explorer(dseOptions);
    std::vector<dse::DseResult> results;
    for (const auto &name : axbench::benchmarkNames())
        results.push_back(explorer.explore(runner, name, spec, axes));

    core::TablePrinter table({"configuration", "total size",
                              "mean invocation rate",
                              "mean quality met"});
    std::size_t candidate = 0;
    for (std::size_t count : axes.tableCounts) {
        for (std::size_t bytes : axes.tableBytes) {
            std::vector<double> rates;
            std::size_t successes = 0, trials = 0;
            for (const dse::DseResult &result : results) {
                const auto &eval =
                    result.candidates[candidate].record.eval;
                rates.push_back(eval.invocationRate);
                successes += eval.successes;
                trials += eval.trials;
            }
            ++candidate;

            char label[64];
            std::snprintf(label, sizeof(label), "%zuT x %.3f KB", count,
                          static_cast<double>(bytes) / 1024.0);
            table.addRow({label,
                          core::fmtKb(static_cast<double>(count * bytes),
                                      3),
                          core::fmtPct(100.0 * stats::mean(rates)),
                          std::to_string(successes) + "/"
                              + std::to_string(trials)});
        }
    }
    table.print();
    std::printf("\nThe paper's Pareto-optimal configuration is 8T x "
                "0.5 KB (4 KB total, uncompressed).\n");
}

/**
 * The surrogate-pruned default: per-benchmark Pareto fronts from
 * exactly evaluated survivors only. Returns the per-benchmark results
 * so main() can report the savings headline.
 */
std::vector<dse::DseResult>
runPrunedSweep(core::ExperimentRunner &runner)
{
    core::printBanner("Figure 11: surrogate-pruned Pareto analysis "
                      "of the table-based design (5% quality loss)");

    const dse::DseAxes axes = fig11Axes();
    const auto spec = bench::headlineSpec();
    const dse::Explorer explorer;

    std::vector<dse::DseResult> results;
    core::TablePrinter table({"benchmark", "configuration",
                              "total size", "invocation rate",
                              "quality met"});
    for (const auto &name : axbench::benchmarkNames()) {
        dse::DseResult result =
            explorer.explore(runner, name, spec, axes);
        for (const std::size_t at : result.front) {
            const dse::DseCandidate &point = result.candidates[at];
            char label[64];
            std::snprintf(label, sizeof(label), "%zuT x %.3f KB",
                          point.options.geometry.numTables,
                          static_cast<double>(
                              point.options.geometry.tableBytes)
                              / 1024.0);
            table.addRow(
                {name, label, core::fmtKb(point.costBytes, 3),
                 core::fmtPct(100.0 * point.record.eval.invocationRate),
                 std::to_string(point.record.eval.successes) + "/"
                     + std::to_string(point.record.eval.trials)});
        }
        std::printf("%s: %zu/%zu exact evals (%.1f%% saved, "
                    "%zu front points)\n",
                    name.c_str(), result.exactEvalsSelected,
                    result.candidates.size(), result.savedPct,
                    result.front.size());
        results.push_back(std::move(result));
    }
    table.print();
    std::printf("\nPass --exhaustive for the brute-force reference "
                "grid (the pre-DSE figure).\n");
    return results;
}

} // namespace

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    core::ExperimentRunner runner;

    bool exhaustive = false;
    bool bitsMode = false;
    for (int arg = 1; arg < argc; ++arg) {
        if (std::strcmp(argv[arg], "--exhaustive") == 0)
            exhaustive = true;
        else if (std::strcmp(argv[arg], "--bits") == 0)
            bitsMode = true;
    }

    if (bitsMode) {
        core::printBanner("Ablation: table-classifier quantizer width "
                          "(5% quality loss, 8T x 0.5 KB)");

        const auto spec = bench::headlineSpec();
        for (unsigned bits = 1; bits <= 8; ++bits) {
            core::RunOptions options;
            options.quantizerBits = bits;
            options.skipCalibration = true;
            runner.prefetch(axbench::benchmarkNames(), {spec},
                            {core::Design::Table}, options);
        }

        core::TablePrinter table({"benchmark", "bits",
                                  "invocation rate", "FP", "FN",
                                  "quality met"});
        for (const auto &name : axbench::benchmarkNames()) {
            for (unsigned bits = 1; bits <= 8; ++bits) {
                // Skip configurations whose pattern space is
                // degenerate for very wide inputs (cost control).
                const auto facts = runner.workloadFacts(name);
                (void)facts;
                core::RunOptions options;
                options.quantizerBits = bits;
                options.skipCalibration = true;
                const auto record = runner.run(
                    name, spec, core::Design::Table, options);
                table.addRow(
                    {name, std::to_string(bits),
                     core::fmtPct(100.0 * record.eval.invocationRate),
                     core::fmtPct(100.0
                                  * record.eval.falsePositiveRate),
                     core::fmtPct(100.0
                                  * record.eval.falseNegativeRate),
                     std::to_string(record.eval.successes) + "/"
                         + std::to_string(record.eval.trials)});
            }
        }
        table.print();
        bench::writeBenchReport("fig11_pareto");
        return 0;
    }

    if (exhaustive || dse::DseOptions::fromEnv().exhaustive) {
        runExhaustiveSweep(runner);
        bench::writeBenchReport("fig11_pareto");
        return 0;
    }

    const std::vector<dse::DseResult> results = runPrunedSweep(runner);
    double savedPct = 0.0, speedup = 0.0;
    for (const dse::DseResult &result : results) {
        savedPct += result.savedPct;
        speedup += result.sweepSpeedup;
    }
    savedPct /= static_cast<double>(results.size());
    speedup /= static_cast<double>(results.size());
    bench::writeBenchReport("fig11_pareto",
                            {{"dse.exact_evals_saved_pct", savedPct},
                             {"dse.sweep_speedup", speedup}});
    return 0;
}
