/**
 * @file
 * Throughput microbenchmark of the MITHRA service's batched certified
 * /invoke endpoint: how many routed-and-certified invocations per
 * second a live server sustains over a real loopback socket, and what
 * the HTTP shell costs relative to calling the model engine directly.
 *
 * Headline metrics (gated by tools/report-check --require in
 * run_benches.sh and the CI service job):
 *
 *   service.invocations_per_sec        end-to-end over HTTP
 *   service.direct_invocations_per_sec Model::invoke() in-process
 *   service.http_overhead_pct          shell cost vs the direct path
 *   service.batch_rows                 rows per /invoke request
 *
 * The compile job runs through the real JobManager; only the steady
 * /invoke stream is timed.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "common/contracts.hh"
#include "common/logging.hh"
#include "service/client.hh"
#include "service/server.hh"

using namespace mithra;
using Clock = std::chrono::steady_clock;

namespace
{

constexpr std::size_t batchRows = 4096;
constexpr std::size_t batchCount = 32;

double
seconds(Clock::time_point begin, Clock::time_point end)
{
    return std::chrono::duration<double>(end - begin).count();
}

} // namespace

int
main()
{
    setInformEnabled(false);
    const std::string benchmark = "inversek2j";

    service::ServerOptions options;
    options.port = 0; // ephemeral
    service::Server server(options);
    server.start();

    // Compile/train through the real job queue, polling in-process.
    service::JobSpec spec;
    spec.benchmark = benchmark;
    spec.compileDatasets = 60;
    spec.npuTrainSamples = 4000;
    spec.classifierTuples = 50000;
    std::string job;
    if (!server.jobs().submit(spec, job))
        fatal("micro_service: job queue refused the compile job");
    service::JobSnapshot snap;
    for (;;) {
        MITHRA_ASSERT(server.jobs().snapshot(job, snap),
                      "job vanished");
        if (snap.state == service::JobState::Done)
            break;
        if (snap.state == service::JobState::Failed)
            fatal("micro_service: compile failed: ", snap.error);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }

    // In-distribution inputs from deterministically seeded datasets.
    const auto bench = axbench::makeBenchmark(benchmark);
    const std::size_t width = bench->npuTopology().front();
    std::vector<float> rows;
    std::uint64_t datasetSeed = 0x5eed0;
    while (rows.size() < batchRows * batchCount * width) {
        const auto dataset = bench->makeDataset(datasetSeed++);
        const axbench::InvocationTrace trace = bench->trace(*dataset);
        const auto flat = trace.inputsFlat();
        rows.insert(rows.end(), flat.begin(), flat.end());
    }
    rows.resize(batchRows * batchCount * width);

    // Pre-serialize every request body so the timed loop measures the
    // service, not this harness's snprintf.
    std::vector<std::string> bodies;
    bodies.reserve(batchCount);
    for (std::size_t b = 0; b < batchCount; ++b) {
        std::string body =
            "{\"model\": \"" + job + "\", \"inputs\": [";
        for (std::size_t i = 0; i < batchRows; ++i) {
            body += i ? ",[" : "[";
            for (std::size_t j = 0; j < width; ++j) {
                if (j)
                    body += ',';
                char cell[32];
                std::snprintf(
                    cell, sizeof(cell), "%.9g",
                    static_cast<double>(
                        rows[(b * batchRows + i) * width + j]));
                body += cell;
            }
            body += ']';
        }
        body += "]}";
        bodies.push_back(std::move(body));
    }

    service::HttpClient client(server.port());
    const std::shared_ptr<service::Model> model =
        server.models().find(job);
    MITHRA_ASSERT(model != nullptr, "model not published");

    // Warm both paths once (first-touch allocations, keep-alive).
    (void)model->invoke(rows.data(), batchRows);
    (void)client.post("/invoke", bodies[0]);

    // Direct path: the model engine without the HTTP shell.
    const auto beginDirect = Clock::now();
    for (std::size_t b = 0; b < batchCount; ++b)
        (void)model->invoke(rows.data() + b * batchRows * width,
                            batchRows);
    const double directSeconds = seconds(beginDirect, Clock::now());

    // End-to-end path: parse, route, decide, certify, serialize.
    std::size_t accelerated = 0;
    const auto beginHttp = Clock::now();
    for (std::size_t b = 0; b < batchCount; ++b) {
        const service::ClientResult reply =
            client.post("/invoke", bodies[b]);
        if (!reply.ok || reply.status != 200)
            fatal("micro_service: /invoke failed: ",
                  reply.ok ? std::to_string(reply.status)
                           : reply.error);
        // Count decisions without a full JSON parse: certified
        // decisions are the only 0/1 array in the response.
        const std::size_t at = reply.body.find("\"decisions\"");
        for (std::size_t i = reply.body.find('[', at);
             reply.body[i] != ']'; ++i)
            accelerated += reply.body[i] == '1';
    }
    const double httpSeconds = seconds(beginHttp, Clock::now());

    const double streamed =
        static_cast<double>(batchRows * batchCount);
    const double httpPerSec = streamed / httpSeconds;
    const double directPerSec = streamed / directSeconds;
    const double overheadPct =
        100.0 * (httpSeconds - directSeconds) / directSeconds;
    const double accelFraction =
        static_cast<double>(accelerated) / streamed;

    server.stop();

    std::printf("micro_service: certified /invoke throughput\n");
    std::printf("  batch rows             %zu x %zu batches\n",
                batchRows, batchCount);
    std::printf("  invocations/sec        %.3e (HTTP end-to-end)\n",
                httpPerSec);
    std::printf("  invocations/sec        %.3e (direct engine)\n",
                directPerSec);
    std::printf("  HTTP shell overhead    %.1f %%\n", overheadPct);
    std::printf("  accelerated fraction   %.3f\n", accelFraction);

    bench::writeBenchReport(
        "micro_service",
        {{"service.invocations_per_sec", httpPerSec},
         {"service.direct_invocations_per_sec", directPerSec},
         {"service.http_overhead_pct", overheadPct},
         {"service.batch_rows", static_cast<double>(batchRows)},
         {"service.accel_fraction", accelFraction}});
    return 0;
}
