/**
 * @file
 * Microbenchmarks (google-benchmark) of the parallel execution
 * substrate: serial vs. parallel wall time for compile-pipeline trace
 * generation, NPU training and compile+threshold tuning at
 * MITHRA_THREADS in {1, 2, 4, hardware_concurrency}.
 *
 * Every benchmark reports two counters:
 *   threads            — pool width the measurement ran at
 *   speedup_vs_1thread — this width's mean wall time relative to the
 *                        1-thread run of the same benchmark family
 *                        (registration puts the 1-thread run first)
 *
 * The determinism contract (common/parallel.hh) guarantees all widths
 * compute identical results, so the speedup is the whole story.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "axbench/registry.hh"
#include "bench_common.hh"
#include "common/kernels/kernels.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "core/pipeline.hh"
#include "hw/misr.hh"
#include "npu/mlp.hh"
#include "npu/trainer.hh"

using namespace mithra;

namespace
{

/** family -> speedup at the widest pool, for the run report. */
std::map<std::string, double> &
reportSpeedups()
{
    static std::map<std::string, double> speedups;
    return speedups;
}

/** {1, 2, 4, hw} deduplicated and ascending. */
std::vector<std::size_t>
threadCounts()
{
    std::vector<std::size_t> counts = {1, 2, 4};
    const std::size_t hw = std::max<std::size_t>(
        1, std::thread::hardware_concurrency());
    counts.push_back(hw);
    std::sort(counts.begin(), counts.end());
    counts.erase(std::unique(counts.begin(), counts.end()),
                 counts.end());
    return counts;
}

void
applyThreadArgs(benchmark::internal::Benchmark *bench)
{
    for (std::size_t threads : threadCounts())
        bench->Arg(static_cast<long>(threads));
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/**
 * Report the counters. The 1-thread mean of each family is captured
 * when it runs (first, by registration order) and serves as the
 * baseline for the wider runs.
 */
void
reportCounters(benchmark::State &state, const std::string &family,
               std::size_t threads, double meanSeconds)
{
    static std::map<std::string, double> baselines;
    if (threads == 1)
        baselines[family] = meanSeconds;
    // "pool_threads": google-benchmark itself reports a "threads"
    // field (its own thread plumbing, always 1 here).
    state.counters["pool_threads"] =
        benchmark::Counter(static_cast<double>(threads));
    const auto it = baselines.find(family);
    const double speedup = it != baselines.end() && meanSeconds > 0.0
        ? it->second / meanSeconds
        : 0.0;
    state.counters["speedup_vs_1thread"] = benchmark::Counter(speedup);
    // Widths run ascending, so the last write is the widest pool.
    reportSpeedups()[family + ".speedup_vs_1thread"] = speedup;
}

constexpr const char *benchName = "inversek2j";

void
BM_TraceGeneration(benchmark::State &state)
{
    const auto threads = static_cast<std::size_t>(state.range(0));
    setParallelThreadCount(threads);
    const auto bench = axbench::makeBenchmark(benchName);
    constexpr std::size_t datasetCount = 16;

    double totalSeconds = 0.0;
    std::size_t iterations = 0;
    for (auto _ : state) {
        const auto start = std::chrono::steady_clock::now();
        std::vector<std::unique_ptr<axbench::Dataset>> datasets(
            datasetCount);
        std::vector<std::unique_ptr<axbench::InvocationTrace>> traces(
            datasetCount);
        parallelFor(0, datasetCount, 1, [&](std::size_t d) {
            datasets[d] = bench->makeDataset(
                axbench::compileSeed(benchName, d));
            traces[d] = std::make_unique<axbench::InvocationTrace>(
                bench->trace(*datasets[d]));
        });
        benchmark::DoNotOptimize(traces.data());
        totalSeconds += secondsSince(start);
        ++iterations;
    }
    reportCounters(state, "trace_generation", threads,
                   totalSeconds / static_cast<double>(iterations));
}
BENCHMARK(BM_TraceGeneration)
    ->Apply(applyThreadArgs)
    ->Unit(benchmark::kMillisecond);

void
BM_NpuTraining(benchmark::State &state)
{
    const auto threads = static_cast<std::size_t>(state.range(0));
    setParallelThreadCount(threads);

    // Synthetic regression set shaped like a mid-size NPU workload.
    constexpr std::size_t samples = 4096;
    const npu::Topology topology = {16, 32, 4};
    Rng rng(0xbe9c4a11u);
    VecBatch inputs(samples), targets(samples);
    for (std::size_t i = 0; i < samples; ++i) {
        inputs[i].resize(topology.front());
        for (auto &v : inputs[i])
            v = static_cast<float>(rng.uniform());
        targets[i].resize(topology.back());
        for (auto &v : targets[i])
            v = static_cast<float>(rng.uniform(0.1, 0.9));
    }
    npu::TrainerOptions options;
    options.epochs = 8;

    double totalSeconds = 0.0;
    std::size_t iterations = 0;
    for (auto _ : state) {
        const auto start = std::chrono::steady_clock::now();
        npu::Mlp mlp(topology);
        npu::initWeights(mlp, 7);
        benchmark::DoNotOptimize(
            npu::train(mlp, inputs, targets, options));
        totalSeconds += secondsSince(start);
        ++iterations;
    }
    reportCounters(state, "npu_training", threads,
                   totalSeconds / static_cast<double>(iterations));
}
BENCHMARK(BM_NpuTraining)
    ->Apply(applyThreadArgs)
    ->Unit(benchmark::kMillisecond);

void
BM_BatchHashing(benchmark::State &state)
{
    const auto threads = static_cast<std::size_t>(state.range(0));
    setParallelThreadCount(threads);

    // Decision-table-training shaped workload: hash a large flat code
    // batch through one MISR, chunked across the pool. Each chunk is a
    // contiguous row range, so the result is identical at every width.
    constexpr std::size_t width = 16;
    constexpr std::size_t count = 1u << 16;
    const hw::Misr misr(hw::misrConfigPool()[0], 12);
    Rng rng(0x68617368u);
    std::vector<std::uint8_t> codes(width * count);
    for (auto &code : codes)
        code = static_cast<std::uint8_t>(rng.nextBelow(256));
    std::vector<std::uint32_t> signatures(count);

    double totalSeconds = 0.0;
    std::size_t iterations = 0;
    for (auto _ : state) {
        const auto start = std::chrono::steady_clock::now();
        parallelForChunks(
            0, count, 1024,
            [&](std::size_t begin, std::size_t end, std::size_t) {
                kernels::misrHashBatch(misr.params(),
                                       codes.data() + begin * width,
                                       width, end - begin,
                                       signatures.data() + begin);
            });
        benchmark::DoNotOptimize(signatures.data());
        totalSeconds += secondsSince(start);
        ++iterations;
    }
    reportCounters(state, "batch_hashing", threads,
                   totalSeconds / static_cast<double>(iterations));
}
BENCHMARK(BM_BatchHashing)
    ->Apply(applyThreadArgs)
    ->Unit(benchmark::kMillisecond);

void
BM_CompileTune(benchmark::State &state)
{
    const auto threads = static_cast<std::size_t>(state.range(0));
    setParallelThreadCount(threads);

    core::PipelineOptions options;
    options.compileDatasetCount = 16;
    options.npuTrainSamples = 4000;
    const core::Pipeline pipeline(options);
    core::QualitySpec spec;

    double totalSeconds = 0.0;
    std::size_t iterations = 0;
    for (auto _ : state) {
        const auto start = std::chrono::steady_clock::now();
        const auto workload = pipeline.compile(benchName);
        const auto result = pipeline.tuneThreshold(workload, spec);
        benchmark::DoNotOptimize(result.threshold);
        totalSeconds += secondsSince(start);
        ++iterations;
    }
    reportCounters(state, "compile_tune", threads,
                   totalSeconds / static_cast<double>(iterations));
}
BENCHMARK(BM_CompileTune)
    ->Apply(applyThreadArgs)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

} // namespace

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    std::vector<std::pair<std::string, double>> metrics(
        reportSpeedups().begin(), reportSpeedups().end());
    bench::writeBenchReport("micro_parallel", metrics);
    return 0;
}
