/**
 * @file
 * Table I: benchmarks, their domains, quality metrics, NPU topologies,
 * and the final application error when the accelerator is always
 * invoked (no quality control).
 */

#include <cstdio>

#include "bench_common.hh"
#include "axbench/registry.hh"
#include "common/logging.hh"
#include "core/report.hh"

using namespace mithra;

int
main()
{
    setInformEnabled(false);
    core::ExperimentRunner runner;
    runner.prefetchFacts(axbench::benchmarkNames());

    core::printBanner("Table I: benchmarks and error with full "
                      "approximation");

    core::TablePrinter table({"benchmark", "domain", "metric",
                              "NPU topology", "invocations/dataset",
                              "error (full approx)",
                              "paper"});
    const char *paperError[] = {"6.03%", "7.22%", "7.50%", "17.69%",
                                "7.00%", "9.96%"};
    std::size_t row = 0;
    std::vector<std::pair<std::string, double>> metrics;
    for (const auto &name : axbench::benchmarkNames()) {
        const auto facts = runner.workloadFacts(name);
        table.addRow({name, facts.domain, facts.metricName,
                      facts.npuTopology,
                      std::to_string(facts.invocationsPerDataset),
                      core::fmtPct(facts.fullApproxLossMean, 2),
                      paperError[row++]});
        metrics.emplace_back(name + ".full_approx_loss_pct",
                             facts.fullApproxLossMean);
    }
    table.print();
    bench::writeBenchReport("tab1_benchmarks", metrics);
    return 0;
}
