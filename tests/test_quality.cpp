/**
 * @file
 * Unit tests for the application quality metrics and the image and
 * common substrates (scale knobs, report formatting).
 */

#include <gtest/gtest.h>

#include "axbench/image.hh"
#include "axbench/quality.hh"
#include "common/scale.hh"
#include "core/report.hh"

using namespace mithra;
using namespace mithra::axbench;

TEST(Quality, IdenticalOutputsHaveZeroLoss)
{
    const FinalOutput out{{1.0f, 2.0f, 3.0f}};
    for (auto metric :
         {QualityMetric::AvgRelativeError, QualityMetric::MissRate,
          QualityMetric::ImageDiff}) {
        EXPECT_DOUBLE_EQ(qualityLoss(metric, out, out), 0.0);
    }
}

TEST(Quality, AvgRelativeErrorSimpleCase)
{
    const FinalOutput reference{{10.0f, 20.0f}};
    const FinalOutput candidate{{11.0f, 20.0f}};
    // One element off by 10%, one exact: average 5%.
    EXPECT_NEAR(qualityLoss(QualityMetric::AvgRelativeError, reference,
                            candidate),
                5.0, 1e-6);
}

TEST(Quality, AvgRelativeErrorSaturatesAt100)
{
    const FinalOutput reference{{1.0f}};
    const FinalOutput candidate{{1000.0f}};
    EXPECT_DOUBLE_EQ(qualityLoss(QualityMetric::AvgRelativeError,
                                 reference, candidate),
                     100.0);
}

TEST(Quality, AvgRelativeErrorNearZeroReferenceUsesFloor)
{
    // A tiny reference element must not blow the metric past 100%.
    const FinalOutput reference{{1e-9f, 100.0f}};
    const FinalOutput candidate{{0.5f, 100.0f}};
    const double loss = qualityLoss(QualityMetric::AvgRelativeError,
                                    reference, candidate);
    EXPECT_LE(loss, 50.0 + 1e-9);
    EXPECT_GT(loss, 0.0);
}

TEST(Quality, MissRateCountsFlips)
{
    const FinalOutput reference{{1.0f, 0.0f, 1.0f, 0.0f}};
    const FinalOutput candidate{{1.0f, 1.0f, 1.0f, 0.0f}};
    EXPECT_DOUBLE_EQ(qualityLoss(QualityMetric::MissRate, reference,
                                 candidate),
                     25.0);
}

TEST(Quality, ImageDiffIsRmsOfPixelError)
{
    // All pixels off by 25.5 of 255 -> 10% RMS.
    const FinalOutput reference{{100.0f, 100.0f, 100.0f, 100.0f}};
    const FinalOutput candidate{{125.5f, 74.5f, 125.5f, 74.5f}};
    EXPECT_NEAR(qualityLoss(QualityMetric::ImageDiff, reference,
                            candidate),
                10.0, 1e-6);
}

TEST(Quality, ElementErrorsLengthMatches)
{
    const FinalOutput reference{{1.0f, 2.0f, 3.0f}};
    const FinalOutput candidate{{1.0f, 2.5f, 3.0f}};
    const auto errors = elementErrors(QualityMetric::AvgRelativeError,
                                      reference, candidate);
    ASSERT_EQ(errors.size(), 3u);
    EXPECT_DOUBLE_EQ(errors[0], 0.0);
    EXPECT_GT(errors[1], 0.0);
}

TEST(Quality, MetricNamesMatchTableOne)
{
    EXPECT_EQ(metricName(QualityMetric::AvgRelativeError),
              "Avg. Relative Error");
    EXPECT_EQ(metricName(QualityMetric::MissRate), "Miss Rate");
    EXPECT_EQ(metricName(QualityMetric::ImageDiff), "Image Diff");
}

TEST(Image, DimensionsAndFill)
{
    Image img(8, 4, 7);
    EXPECT_EQ(img.width(), 8u);
    EXPECT_EQ(img.height(), 4u);
    EXPECT_EQ(img.at(3, 2), 7);
}

TEST(Image, SetAndGet)
{
    Image img(4, 4);
    img.set(1, 2, 200);
    EXPECT_EQ(img.at(1, 2), 200);
    EXPECT_EQ(img.pixels()[2 * 4 + 1], 200);
}

TEST(Image, ClampedAccessAtEdges)
{
    Image img(3, 3);
    img.set(0, 0, 11);
    img.set(2, 2, 22);
    EXPECT_EQ(img.atClamped(-5, -5), 11);
    EXPECT_EQ(img.atClamped(10, 10), 22);
}

TEST(Image, SceneGenerationDeterministic)
{
    SceneParams params;
    params.width = 32;
    params.height = 32;
    const Image a = generateScene(42, params);
    const Image b = generateScene(42, params);
    EXPECT_EQ(a.pixels(), b.pixels());
}

TEST(Image, DifferentSeedsDiffer)
{
    SceneParams params;
    params.width = 32;
    params.height = 32;
    const Image a = generateScene(1, params);
    const Image b = generateScene(2, params);
    EXPECT_NE(a.pixels(), b.pixels());
}

TEST(Image, SceneHasContrast)
{
    SceneParams params;
    params.width = 64;
    params.height = 64;
    const Image img = generateScene(3, params);
    std::uint8_t lo = 255, hi = 0;
    for (auto px : img.pixels()) {
        lo = std::min(lo, px);
        hi = std::max(hi, px);
    }
    EXPECT_GT(static_cast<int>(hi) - lo, 50);
}

TEST(Scale, ScaledCountRespectsMinimum)
{
    EXPECT_GE(scaledCount(4096, 256), 256u);
    EXPECT_GE(scaledCount(10, 8), 8u);
}

TEST(Report, FormatHelpers)
{
    using core::fmtBytes;
    using core::fmtKb;
    using core::fmtPct;
    using core::fmtRatio;
    EXPECT_EQ(fmtPct(12.345, 1), "12.3%");
    EXPECT_EQ(fmtRatio(2.5), "2.50x");
    EXPECT_EQ(fmtBytes(512), "512 B");
    EXPECT_EQ(fmtBytes(2048), "2.00 KB");
    EXPECT_EQ(fmtKb(1024, 2), "1.00 KB");
}

TEST(Report, TablePrinterHandlesRows)
{
    core::TablePrinter table({"a", "b"});
    table.addRow({"hello", "1"});
    table.addRow({"x", "longer-cell"});
    // Printing must not crash; output goes to stdout.
    table.print();
    SUCCEED();
}
