/**
 * @file
 * Tests for the runtime classifiers: oracle, random filter, the
 * table-based design (training, online updates, compression) and the
 * neural design (topology selection, conservativeness).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/classifier.hh"
#include "core/neural_classifier.hh"
#include "core/table_classifier.hh"

using namespace mithra;
using namespace mithra::core;

namespace
{

/** Synthetic training data: label = input[0] > cut. */
TrainingData
syntheticData(std::size_t n, float cut, std::uint64_t seed)
{
    Rng rng(seed);
    TrainingData data;
    data.threshold = 0.1;
    for (std::size_t i = 0; i < n; ++i) {
        const float x = static_cast<float>(rng.uniform());
        const float y = static_cast<float>(rng.uniform());
        data.rawInputs.push_back({x, y});
        data.labels.push_back(x > cut ? 1 : 0);
    }
    return data;
}

} // namespace

TEST(Oracle, DecisionsFollowTraceErrors)
{
    axbench::InvocationTrace trace(1, 1);
    trace.appendWithApprox({0.0f}, {1.0f}, {1.05f}); // error 0.05
    trace.appendWithApprox({1.0f}, {1.0f}, {1.50f}); // error 0.50

    OracleClassifier oracle(0.1f);
    oracle.beginDataset(trace);
    EXPECT_FALSE(oracle.decidePrecise({0.0f}, 0));
    EXPECT_TRUE(oracle.decidePrecise({1.0f}, 1));
    EXPECT_EQ(oracle.configSizeBytes(), 0u);
    EXPECT_DOUBLE_EQ(oracle.cost().energyPjPerInvocation, 0.0);
}

TEST(RandomFilter, MatchesRequestedFraction)
{
    RandomFilterClassifier random(0.3, 42);
    int precise = 0;
    constexpr int n = 20000;
    for (int i = 0; i < n; ++i)
        precise += random.decidePrecise({}, static_cast<std::size_t>(i));
    EXPECT_NEAR(static_cast<double>(precise) / n, 0.3, 0.02);
}

TEST(RandomFilter, ExtremesAreDeterministic)
{
    RandomFilterClassifier never(0.0, 1);
    RandomFilterClassifier always(1.0, 1);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(never.decidePrecise({}, 0));
        EXPECT_TRUE(always.decidePrecise({}, 0));
    }
}

TEST(TableClassifier, LearnsThresholdedRegion)
{
    const auto data = syntheticData(20000, 0.75f, 7);
    TableClassifierOptions options;
    options.quantizerBits = 4;
    auto classifier = TableClassifier::train(data, options);

    // Training inputs with x clearly above/below the cut separate.
    std::size_t correct = 0, total = 0;
    Rng rng(8);
    for (int i = 0; i < 2000; ++i) {
        const float x = static_cast<float>(rng.uniform());
        const float y = static_cast<float>(rng.uniform());
        if (std::fabs(x - 0.75f) < 0.05f)
            continue; // skip the boundary cells
        const bool expected = x > 0.75f;
        correct += classifier.decidePrecise({x, y}, 0) == expected;
        ++total;
    }
    EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total),
              0.95);
}

TEST(TableClassifier, OnlineUpdateMarksObservedErrors)
{
    const auto data = syntheticData(1000, 2.0f, 9); // no precise labels
    TableClassifierOptions options;
    options.quantizerBits = 6;
    auto classifier = TableClassifier::train(data, options);

    const Vec input = {0.5f, 0.5f};
    EXPECT_FALSE(classifier.decidePrecise(input, 0));
    // Observing a small error must not change the decision.
    classifier.observe(input, 0.01f);
    EXPECT_FALSE(classifier.decidePrecise(input, 0));
    // Observing a large error must flip it.
    classifier.observe(input, 5.0f);
    EXPECT_TRUE(classifier.decidePrecise(input, 0));
    EXPECT_EQ(classifier.onlineUpdatesApplied(), 1u);
}

TEST(TableClassifier, OnlineUpdatesCanBeDisabled)
{
    const auto data = syntheticData(1000, 2.0f, 10);
    TableClassifierOptions options;
    options.onlineUpdates = false;
    auto classifier = TableClassifier::train(data, options);
    const Vec input = {0.5f, 0.5f};
    classifier.observe(input, 5.0f);
    EXPECT_FALSE(classifier.decidePrecise(input, 0));
    EXPECT_EQ(classifier.onlineUpdatesApplied(), 0u);
}

TEST(TableClassifier, EmptyTablesCompressAway)
{
    // No precise labels at all: the tables are all zero and BDI
    // collapses them to per-line tags.
    const auto data = syntheticData(5000, 2.0f, 11);
    auto classifier = TableClassifier::train(data,
                                             TableClassifierOptions{});
    EXPECT_EQ(classifier.uncompressedSizeBytes(), 4096u);
    EXPECT_LT(classifier.compressedSizeBytes(), 256u);
}

TEST(TableClassifier, DenserTablesCompressWorse)
{
    const auto sparse = syntheticData(20000, 0.97f, 11);
    const auto dense = syntheticData(20000, 0.30f, 11);
    TableClassifierOptions options;
    options.quantizerBits = 4;
    const auto sparseClassifier = TableClassifier::train(sparse,
                                                         options);
    const auto denseClassifier = TableClassifier::train(dense, options);
    EXPECT_LE(sparseClassifier.compressedSizeBytes(),
              denseClassifier.compressedSizeBytes());
}

TEST(TableClassifier, CostModelShape)
{
    const auto data = syntheticData(5000, 0.5f, 12);
    auto classifier = TableClassifier::train(data,
                                             TableClassifierOptions{});
    const auto cost = classifier.cost();
    // The decision overlaps the accelerated path but delays fallback.
    EXPECT_DOUBLE_EQ(cost.extraCyclesAccel, 0.0);
    EXPECT_GT(cost.extraCyclesPrecise, 0.0);
    EXPECT_GT(cost.energyPjPerInvocation, 0.0);
    EXPECT_GT(classifier.configSizeBytes(), 0u);
}

TEST(TableClassifier, FailClosedDisablesApproximation)
{
    const auto data = syntheticData(1000, 0.5f, 13);
    auto classifier = TableClassifier::train(data,
                                             TableClassifierOptions{});
    EXPECT_TRUE(classifier.approximationEnabled());
    classifier.disableApproximation();
    EXPECT_FALSE(classifier.approximationEnabled());
}

TEST(NeuralClassifier, LearnsLinearBoundary)
{
    const auto data = syntheticData(20000, 0.5f, 14);
    NeuralClassifierOptions options;
    options.trainer.epochs = 40;
    auto classifier = NeuralClassifier::train(data, options);

    EXPECT_GT(classifier.selectionAccuracy(), 0.95);
    Rng rng(15);
    std::size_t correct = 0, total = 0;
    for (int i = 0; i < 1000; ++i) {
        const float x = static_cast<float>(rng.uniform());
        const float y = static_cast<float>(rng.uniform());
        if (std::fabs(x - 0.5f) < 0.05f)
            continue;
        correct += classifier.decidePrecise({x, y}, 0) == (x > 0.5f);
        ++total;
    }
    EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total),
              0.95);
}

TEST(NeuralClassifier, SelectsSmallTopologyForEasyProblem)
{
    // A linearly separable problem should not need 32 hidden neurons.
    const auto data = syntheticData(8000, 0.5f, 16);
    NeuralClassifierOptions options;
    options.trainer.epochs = 30;
    auto classifier = NeuralClassifier::train(data, options);
    ASSERT_EQ(classifier.topology().size(), 3u);
    EXPECT_EQ(classifier.topology().front(), 2u);
    EXPECT_EQ(classifier.topology().back(), 2u);
    EXPECT_LE(classifier.topology()[1], 8u);
}

TEST(NeuralClassifier, ForcedTopologyIsRespected)
{
    const auto data = syntheticData(4000, 0.5f, 17);
    NeuralClassifierOptions options;
    options.forcedHidden = 16;
    options.trainer.epochs = 10;
    auto classifier = NeuralClassifier::train(data, options);
    EXPECT_EQ(classifier.topology()[1], 16u);
}

TEST(NeuralClassifier, CostChargesBothPaths)
{
    const auto data = syntheticData(4000, 0.5f, 18);
    NeuralClassifierOptions options;
    options.trainer.epochs = 5;
    auto classifier = NeuralClassifier::train(data, options);
    const auto cost = classifier.cost();
    // The classifier shares the NPU: it serializes on either path.
    EXPECT_GT(cost.extraCyclesAccel, 0.0);
    EXPECT_DOUBLE_EQ(cost.extraCyclesAccel, cost.extraCyclesPrecise);
    EXPECT_GT(cost.energyPjPerInvocation, 0.0);
}

TEST(NeuralClassifier, OversamplingBiasesTowardPrecise)
{
    // With heavy precise-class oversampling, borderline inputs should
    // flip toward the precise side.
    const auto data = syntheticData(20000, 0.8f, 19);

    NeuralClassifierOptions neutral;
    neutral.trainer.epochs = 30;
    neutral.forcedHidden = 8;
    auto balanced = NeuralClassifier::train(data, neutral);

    NeuralClassifierOptions conservative = neutral;
    conservative.preciseOversample = 4.0;
    auto biased = NeuralClassifier::train(data, conservative);

    Rng rng(20);
    int balancedPrecise = 0, biasedPrecise = 0;
    for (int i = 0; i < 2000; ++i) {
        const Vec input = {static_cast<float>(rng.uniform()),
                           static_cast<float>(rng.uniform())};
        balancedPrecise += balanced.decidePrecise(input, 0);
        biasedPrecise += biased.decidePrecise(input, 0);
    }
    EXPECT_GE(biasedPrecise, balancedPrecise);
}
