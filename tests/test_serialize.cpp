/**
 * @file
 * Tests for NPU configuration serialization: exact round-trips of
 * networks, scalers and whole approximators.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "common/rng.hh"
#include "npu/serialize.hh"
#include "npu/trainer.hh"

using namespace mithra;
using namespace mithra::npu;

TEST(Serialize, MlpRoundTripsBitExact)
{
    Mlp original({6, 8, 3, 1});
    initWeights(original, 42);

    std::stringstream stream;
    saveMlp(stream, original);
    const Mlp restored = loadMlp(stream);

    ASSERT_EQ(restored.topology(), original.topology());
    for (std::size_t l = 1; l < original.topology().size(); ++l)
        EXPECT_EQ(restored.layerWeights(l), original.layerWeights(l));
}

TEST(Serialize, MlpForwardIdenticalAfterRoundTrip)
{
    Mlp original({4, 16, 2});
    initWeights(original, 7);

    std::stringstream stream;
    saveMlp(stream, original);
    const Mlp restored = loadMlp(stream);

    Rng rng(3);
    for (int trial = 0; trial < 50; ++trial) {
        Vec input(4);
        for (auto &v : input)
            v = static_cast<float>(rng.uniform(-2.0, 2.0));
        const Vec a = original.forward(input);
        const Vec b = restored.forward(input);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i)
            EXPECT_EQ(a[i], b[i]); // bit-exact via hexfloats
    }
}

TEST(Serialize, ScalerRoundTrips)
{
    LinearScaler original({-1.5f, 0.0f}, {2.5f, 10.0f});
    std::stringstream stream;
    saveScaler(stream, original);
    const LinearScaler restored = loadScaler(stream);
    EXPECT_EQ(restored.lowerBounds(), original.lowerBounds());
    EXPECT_EQ(restored.upperBounds(), original.upperBounds());
}

TEST(Serialize, ApproximatorRoundTripsBehaviour)
{
    // Train a tiny approximator and verify the restored copy gives
    // identical outputs on fresh inputs.
    Rng rng(11);
    VecBatch inputs, outputs;
    for (int i = 0; i < 200; ++i) {
        const float x = static_cast<float>(rng.uniform());
        inputs.push_back({x});
        outputs.push_back({2.0f * x + 1.0f});
    }
    Approximator original;
    TrainerOptions options;
    options.epochs = 50;
    original.trainToMimic({1, 4, 1}, inputs, outputs, options);

    std::stringstream stream;
    saveApproximator(stream, original);
    const Approximator restored = loadApproximator(stream);
    EXPECT_TRUE(restored.trained());

    for (int trial = 0; trial < 50; ++trial) {
        const Vec input = {static_cast<float>(rng.uniform())};
        EXPECT_EQ(restored.invoke(input)[0], original.invoke(input)[0]);
    }
}

TEST(Serialize, FileWrappersRoundTrip)
{
    Rng rng(12);
    VecBatch inputs, outputs;
    for (int i = 0; i < 100; ++i) {
        const float x = static_cast<float>(rng.uniform());
        inputs.push_back({x, 1.0f - x});
        outputs.push_back({x * x});
    }
    Approximator original;
    TrainerOptions options;
    options.epochs = 20;
    original.trainToMimic({2, 2, 1}, inputs, outputs, options);

    const std::string path = "/tmp/mithra-test-npu.cfg";
    saveApproximatorFile(path, original);
    const Approximator restored = loadApproximatorFile(path);
    EXPECT_EQ(restored.invoke({0.25f, 0.75f})[0],
              original.invoke({0.25f, 0.75f})[0]);
    std::remove(path.c_str());
}

TEST(SerializeDeathTest, RejectsCorruptMagic)
{
    std::stringstream stream("not-a-config 3");
    EXPECT_DEATH(loadMlp(stream), "expected");
}

TEST(SerializeDeathTest, RejectsTruncatedWeights)
{
    Mlp mlp({2, 2});
    initWeights(mlp, 1);
    std::stringstream stream;
    saveMlp(stream, mlp);
    std::string text = stream.str();
    text.resize(text.size() / 2);
    std::stringstream truncated(text);
    EXPECT_DEATH(loadMlp(truncated), "parse error");
}
