/**
 * @file
 * Tests for the deterministic parallel execution substrate
 * (common/parallel.hh): range/grain edge cases, ordered reduction,
 * exception semantics, and the headline guarantee — Pipeline and
 * Trainer outputs are bitwise identical at 1 and N threads.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/parallel.hh"
#include "common/rng.hh"
#include "core/pipeline.hh"
#include "npu/mlp.hh"
#include "npu/trainer.hh"

using namespace mithra;

namespace
{

/** Pins the pool width for one test, restoring it afterwards. */
class ThreadCountGuard
{
  public:
    explicit ThreadCountGuard(std::size_t threads)
        : saved(parallelThreadCount())
    {
        setParallelThreadCount(threads);
    }
    ~ThreadCountGuard() { setParallelThreadCount(saved); }

  private:
    std::size_t saved;
};

TEST(Parallel, EmptyRangeIsNoOp)
{
    ThreadCountGuard guard(4);
    std::atomic<int> calls{0};
    parallelFor(5, 5, 1, [&](std::size_t) { ++calls; });
    parallelFor(7, 3, 8, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
    EXPECT_EQ(parallelMapReduce(
                  2, 2, 1, 42,
                  [](std::size_t i) { return static_cast<int>(i); },
                  [](int a, int b) { return a + b; }),
              42);
}

TEST(Parallel, GrainLargerThanRangeRunsOneChunk)
{
    ThreadCountGuard guard(4);
    std::vector<std::size_t> visited;
    std::atomic<std::size_t> chunks{0};
    parallelForChunks(3, 9, 100,
                      [&](std::size_t begin, std::size_t end,
                          std::size_t chunkIndex) {
                          EXPECT_EQ(chunkIndex, 0u);
                          ++chunks;
                          for (std::size_t i = begin; i < end; ++i)
                              visited.push_back(i);
                      });
    EXPECT_EQ(chunks.load(), 1u);
    const std::vector<std::size_t> expected = {3, 4, 5, 6, 7, 8};
    EXPECT_EQ(visited, expected);
}

TEST(Parallel, EveryIndexVisitedExactlyOnce)
{
    ThreadCountGuard guard(4);
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    parallelFor(0, n, 7, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(Parallel, ExceptionFromLowestChunkPropagates)
{
    ThreadCountGuard guard(4);
    // Chunks 3 and 7 both throw; the contract rethrows the
    // lowest-indexed chunk's exception at any thread count.
    const auto run = [] {
        parallelForChunks(0, 80, 10,
                          [](std::size_t, std::size_t,
                             std::size_t chunkIndex) {
                              if (chunkIndex == 3)
                                  throw std::runtime_error("chunk3");
                              if (chunkIndex == 7)
                                  throw std::runtime_error("chunk7");
                          });
    };
    try {
        run();
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &err) {
        EXPECT_STREQ(err.what(), "chunk3");
    }

    setParallelThreadCount(1);
    try {
        run();
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &err) {
        EXPECT_STREQ(err.what(), "chunk3");
    }
}

TEST(Parallel, MapReduceFloatSumBitwiseStableAcrossWidths)
{
    // Fill with values whose sum is association-sensitive so any
    // reordering of the fold would change the bits.
    constexpr std::size_t n = 10000;
    std::vector<float> values(n);
    Rng rng(0x5ca1ab1e);
    for (auto &v : values)
        v = static_cast<float>(rng.uniform(-1.0, 1.0)) * 1e6f +
            static_cast<float>(rng.uniform());

    const auto sum = [&] {
        return parallelMapReduce(
            0, n, 64, 0.0f,
            [&](std::size_t i) { return values[i]; },
            [](float a, float b) { return a + b; });
    };

    ThreadCountGuard guard(1);
    const float serial = sum();
    for (std::size_t threads : {2u, 4u, 8u}) {
        setParallelThreadCount(threads);
        const float parallel = sum();
        EXPECT_EQ(serial, parallel) << "threads=" << threads;
    }
}

TEST(Parallel, RngStreamsDeterministicAndIndependent)
{
    Rng a = rngStream(123, 0);
    Rng a2 = rngStream(123, 0);
    Rng b = rngStream(123, 1);
    Rng c = rngStream(124, 0);
    const std::uint64_t va = a.next();
    EXPECT_EQ(va, a2.next());
    EXPECT_NE(va, b.next());
    EXPECT_NE(va, c.next());
}

TEST(Parallel, TrainerBitwiseIdenticalAcrossWidths)
{
    constexpr std::size_t samples = 300;
    const npu::Topology topology = {4, 8, 2};
    Rng rng(0xdead5eed);
    VecBatch inputs(samples), targets(samples);
    for (std::size_t i = 0; i < samples; ++i) {
        inputs[i].resize(topology.front());
        for (auto &v : inputs[i])
            v = static_cast<float>(rng.uniform());
        targets[i].resize(topology.back());
        for (auto &v : targets[i])
            v = static_cast<float>(rng.uniform(0.1, 0.9));
    }
    npu::TrainerOptions options;
    options.epochs = 6;

    const auto trainOnce = [&] {
        npu::Mlp mlp(topology);
        npu::initWeights(mlp, 11);
        const double mse = npu::train(mlp, inputs, targets, options);
        return std::make_pair(mse, mlp);
    };

    ThreadCountGuard guard(1);
    const auto [serialMse, serialMlp] = trainOnce();
    for (std::size_t threads : {2u, 4u}) {
        setParallelThreadCount(threads);
        const auto [parallelMse, parallelMlp] = trainOnce();
        EXPECT_EQ(serialMse, parallelMse) << "threads=" << threads;
        for (std::size_t l = 1; l < topology.size(); ++l)
            EXPECT_EQ(serialMlp.layerWeights(l),
                      parallelMlp.layerWeights(l))
                << "threads=" << threads << " layer=" << l;
    }
}

TEST(Parallel, PipelineBitwiseIdenticalAcrossWidths)
{
    // Small but real compile + threshold tune; MITHRA_SCALE is latched
    // so the sizes are set through PipelineOptions instead.
    core::PipelineOptions options;
    options.compileDatasetCount = 6;
    options.npuTrainSamples = 1500;
    options.classifierTuples = 20000;
    const core::Pipeline pipeline(options);
    const core::QualitySpec spec;

    const auto compileOnce = [&] {
        const auto workload = pipeline.compile("inversek2j");
        const auto threshold = pipeline.tuneThreshold(workload, spec);
        return std::make_tuple(workload.npuTrainMse,
                               workload.fullApproxLossMean,
                               threshold.threshold,
                               threshold.successLowerBound,
                               threshold.successes, threshold.trials);
    };

    ThreadCountGuard guard(1);
    const auto serial = compileOnce();
    setParallelThreadCount(4);
    const auto parallel = compileOnce();
    EXPECT_EQ(std::get<0>(serial), std::get<0>(parallel));
    EXPECT_EQ(std::get<1>(serial), std::get<1>(parallel));
    EXPECT_EQ(std::get<2>(serial), std::get<2>(parallel));
    EXPECT_EQ(std::get<3>(serial), std::get<3>(parallel));
    EXPECT_EQ(std::get<4>(serial), std::get<4>(parallel));
    EXPECT_EQ(std::get<5>(serial), std::get<5>(parallel));
}

} // namespace
