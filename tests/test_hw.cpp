/**
 * @file
 * Unit tests for the classifier hardware models: MISR hashing,
 * the input quantizer, decision tables and the multi-table ensemble.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "hw/decision_table.hh"
#include "hw/misr.hh"
#include "hw/quantizer.hh"

using namespace mithra;
using namespace mithra::hw;

namespace
{

std::vector<std::uint8_t>
randomCodes(std::size_t n, Rng &rng)
{
    std::vector<std::uint8_t> codes(n);
    for (auto &c : codes)
        c = static_cast<std::uint8_t>(rng.nextBelow(256));
    return codes;
}

} // namespace

TEST(Misr, DeterministicHashing)
{
    Misr misr(misrConfigPool()[0], 12);
    const std::vector<std::uint8_t> codes = {1, 2, 3, 4};
    EXPECT_EQ(misr.hash(codes), misr.hash(codes));
}

TEST(Misr, SignatureWithinIndexRange)
{
    Rng rng(1);
    for (unsigned bits : {10u, 12u, 14u, 16u}) {
        Misr misr(misrConfigPool()[5], bits);
        for (int i = 0; i < 200; ++i) {
            const auto codes = randomCodes(1 + rng.nextBelow(20), rng);
            EXPECT_LT(misr.hash(codes), 1u << bits);
        }
    }
}

TEST(Misr, AcceptsVaryingInputCounts)
{
    // The paper requires the hash to accept any number of elements.
    Misr misr(misrConfigPool()[2], 12);
    Rng rng(2);
    for (std::size_t n : {1u, 2u, 6u, 9u, 18u, 64u}) {
        const auto codes = randomCodes(n, rng);
        EXPECT_LT(misr.hash(codes), 4096u);
    }
}

TEST(Misr, ResetRestoresSeedState)
{
    Misr misr(misrConfigPool()[1], 12);
    misr.shiftIn(0xab);
    const auto first = misr.signature();
    misr.reset();
    misr.shiftIn(0xab);
    EXPECT_EQ(misr.signature(), first);
}

TEST(Misr, PoolConfigurationsMapInputsDifferently)
{
    // The 16 pool configurations must map the same input to mostly
    // different indices (paper: "least similarity").
    Rng rng(3);
    const auto codes = randomCodes(9, rng);
    std::set<std::uint32_t> signatures;
    for (const auto &config : misrConfigPool()) {
        Misr misr(config, 12);
        signatures.insert(misr.hash(codes));
    }
    EXPECT_GE(signatures.size(), 14u);
}

TEST(Misr, InputPerturbationChangesIndex)
{
    // Flipping one input element should change the signature nearly
    // always (low destructive aliasing).
    Rng rng(4);
    Misr misr(misrConfigPool()[7], 12);
    int collisions = 0;
    for (int trial = 0; trial < 500; ++trial) {
        auto codes = randomCodes(6, rng);
        const auto base = misr.hash(codes);
        codes[rng.nextBelow(codes.size())] ^= 1u
            << rng.nextBelow(8);
        collisions += misr.hash(codes) == base;
    }
    EXPECT_LT(collisions, 10);
}

TEST(Quantizer, CalibratedRangesCoverInputs)
{
    InputQuantizer quantizer;
    quantizer.calibrate({{0.0f, 10.0f}, {5.0f, 20.0f}, {2.5f, 15.0f}},
                        8);
    EXPECT_EQ(quantizer.width(), 2u);
    EXPECT_FLOAT_EQ(quantizer.lowerBounds()[0], 0.0f);
    EXPECT_FLOAT_EQ(quantizer.highBounds()[0], 5.0f);
    EXPECT_FLOAT_EQ(quantizer.lowerBounds()[1], 10.0f);
    EXPECT_FLOAT_EQ(quantizer.highBounds()[1], 20.0f);
}

TEST(Quantizer, EndpointsMapToExtremes)
{
    InputQuantizer quantizer({0.0f}, {1.0f}, 8);
    EXPECT_EQ(quantizer.quantize({0.0f})[0], 0);
    EXPECT_EQ(quantizer.quantize({1.0f})[0], 255);
    EXPECT_EQ(quantizer.quantize({0.5f})[0], 128);
}

TEST(Quantizer, OutOfRangeInputsClamp)
{
    InputQuantizer quantizer({0.0f}, {1.0f}, 8);
    EXPECT_EQ(quantizer.quantize({-5.0f})[0], 0);
    EXPECT_EQ(quantizer.quantize({42.0f})[0], 255);
}

TEST(Quantizer, NarrowCodesStayInRange)
{
    InputQuantizer quantizer({0.0f, 0.0f}, {1.0f, 1.0f}, 3);
    for (float v : {0.0f, 0.2f, 0.5f, 0.9f, 1.0f}) {
        const auto codes = quantizer.quantize({v, v});
        EXPECT_LT(codes[0], 8);
        EXPECT_LT(codes[1], 8);
    }
}

TEST(Quantizer, DegenerateRangeHandled)
{
    InputQuantizer quantizer;
    quantizer.calibrate({{3.0f}, {3.0f}, {3.0f}}, 8);
    EXPECT_EQ(quantizer.quantize({3.0f})[0], 0);
}

TEST(Quantizer, DefaultBitsPolicy)
{
    EXPECT_EQ(InputQuantizer::defaultBits(1), 8u);
    EXPECT_EQ(InputQuantizer::defaultBits(2), 4u);
    EXPECT_EQ(InputQuantizer::defaultBits(6), 2u);
    EXPECT_EQ(InputQuantizer::defaultBits(18), 1u);
    EXPECT_EQ(InputQuantizer::defaultBits(64), 1u);
}

TEST(DecisionTable, SetAndReadBits)
{
    DecisionTable table(12);
    EXPECT_EQ(table.entries(), 4096u);
    EXPECT_EQ(table.sizeBytes(), 512u);
    EXPECT_FALSE(table.bit(100));
    table.setBit(100);
    EXPECT_TRUE(table.bit(100));
    table.clearBit(100);
    EXPECT_FALSE(table.bit(100));
}

TEST(DecisionTable, OnesCount)
{
    DecisionTable table(10);
    table.setBit(0);
    table.setBit(63);
    table.setBit(64);
    table.setBit(1023);
    EXPECT_EQ(table.onesCount(), 4u);
}

TEST(DecisionTable, BytesRoundTrip)
{
    Rng rng(5);
    DecisionTable table(12);
    std::vector<std::uint32_t> set;
    for (int i = 0; i < 100; ++i) {
        const auto idx = static_cast<std::uint32_t>(rng.nextBelow(4096));
        table.setBit(idx);
        set.push_back(idx);
    }
    const auto restored = DecisionTable::fromBytes(table.toBytes());
    EXPECT_EQ(restored.entries(), table.entries());
    for (auto idx : set)
        EXPECT_TRUE(restored.bit(idx));
    EXPECT_EQ(restored.onesCount(), table.onesCount());
}

TEST(TableGeometry, IndexBits)
{
    TableGeometry geometry;
    geometry.tableBytes = 512;
    EXPECT_EQ(geometry.indexBits(), 12u); // 4096 single-bit entries
    geometry.tableBytes = 128;
    EXPECT_EQ(geometry.indexBits(), 10u);
    geometry.tableBytes = 4096;
    EXPECT_EQ(geometry.indexBits(), 15u);
}

TEST(TableEnsemble, TrainedPrecisePatternsAlwaysRedirect)
{
    // Unanimity invariant: a pattern marked precise during training is
    // marked in every table, so it must always read precise.
    Rng rng(6);
    TableGeometry geometry;
    TableEnsemble ensemble(geometry, {0, 1, 2, 3, 4, 5, 6, 7});

    std::vector<TrainingTuple> tuples;
    for (int i = 0; i < 500; ++i)
        tuples.push_back({randomCodes(6, rng), true});
    for (int i = 0; i < 5000; ++i)
        tuples.push_back({randomCodes(6, rng), false});
    ensemble.train(tuples);

    for (const auto &tuple : tuples) {
        if (tuple.precise)
            EXPECT_TRUE(ensemble.decidePrecise(tuple.codes));
    }
}

TEST(TableEnsemble, UnseenPatternsMostlyAccelerate)
{
    Rng rng(7);
    TableGeometry geometry;
    TableEnsemble ensemble(geometry, {0, 1, 2, 3, 4, 5, 6, 7});

    std::vector<TrainingTuple> tuples;
    for (int i = 0; i < 300; ++i)
        tuples.push_back({randomCodes(9, rng), true});
    ensemble.train(tuples);

    int precise = 0;
    for (int i = 0; i < 2000; ++i)
        precise += ensemble.decidePrecise(randomCodes(9, rng));
    // With 300 patterns in 8 x 4096-entry tables the unanimity vote
    // almost never misroutes an unseen pattern.
    EXPECT_LT(precise, 20);
}

TEST(TableEnsemble, MarkPreciseIsOnlineUpdate)
{
    Rng rng(8);
    TableGeometry geometry;
    TableEnsemble ensemble(geometry, {3, 7, 11, 2, 5, 9, 13, 1});
    const auto codes = randomCodes(6, rng);
    EXPECT_FALSE(ensemble.decidePrecise(codes));
    ensemble.markPrecise(codes);
    EXPECT_TRUE(ensemble.decidePrecise(codes));
}

TEST(TableEnsemble, DensityReflectsTraining)
{
    Rng rng(9);
    TableGeometry geometry;
    TableEnsemble ensemble(geometry, {0, 1, 2, 3, 4, 5, 6, 7});
    EXPECT_DOUBLE_EQ(ensemble.density(), 0.0);
    std::vector<TrainingTuple> tuples;
    for (int i = 0; i < 1000; ++i)
        tuples.push_back({randomCodes(6, rng), true});
    ensemble.train(tuples);
    EXPECT_GT(ensemble.density(), 0.0);
    EXPECT_LT(ensemble.density(), 0.5);
}

TEST(TableEnsemble, ToBytesHasGeometrySize)
{
    TableGeometry geometry;
    geometry.numTables = 4;
    geometry.tableBytes = 128;
    TableEnsemble ensemble(geometry, {0, 1, 2, 3});
    EXPECT_EQ(ensemble.toBytes().size(), 512u);
}

TEST(TableEnsemble, CountFalseDecisions)
{
    Rng rng(10);
    TableGeometry geometry;
    TableEnsemble ensemble(geometry, {0, 1, 2, 3, 4, 5, 6, 7});
    std::vector<TrainingTuple> tuples;
    for (int i = 0; i < 1000; ++i)
        tuples.push_back({randomCodes(6, rng), rng.bernoulli(0.1)});
    ensemble.train(tuples);
    const auto count = countFalseDecisions(ensemble, tuples);
    EXPECT_EQ(count.total, tuples.size());
    // Training tuples are memorized; only aliasing causes errors.
    EXPECT_EQ(count.falseNegatives, 0u);
}

TEST(GreedyEnsemble, UsesDistinctConfigurations)
{
    Rng rng(11);
    std::vector<TrainingTuple> tuples;
    for (int i = 0; i < 2000; ++i)
        tuples.push_back({randomCodes(6, rng), rng.bernoulli(0.15)});

    TableGeometry geometry;
    const auto ensemble = trainGreedyEnsemble(geometry, tuples);
    std::set<std::size_t> ids(ensemble.misrConfigIds().begin(),
                              ensemble.misrConfigIds().end());
    EXPECT_EQ(ids.size(), geometry.numTables);
}

TEST(GreedyEnsemble, NoFalseNegativesOnTrainingData)
{
    Rng rng(12);
    std::vector<TrainingTuple> tuples;
    for (int i = 0; i < 3000; ++i)
        tuples.push_back({randomCodes(4, rng), rng.bernoulli(0.1)});
    TableGeometry geometry;
    const auto ensemble = trainGreedyEnsemble(geometry, tuples);
    const auto count = countFalseDecisions(ensemble, tuples);
    EXPECT_EQ(count.falseNegatives, 0u);
}

TEST(GreedyEnsemble, ClusteredLabelsAreSeparable)
{
    // When all precise tuples share a code region (clustered errors),
    // the ensemble should separate them nearly perfectly.
    Rng rng(13);
    std::vector<TrainingTuple> tuples;
    for (int i = 0; i < 4000; ++i) {
        auto codes = randomCodes(2, rng);
        const bool precise = codes[0] < 32; // cluster in one corner
        tuples.push_back({std::move(codes), precise});
    }
    TableGeometry geometry;
    const auto ensemble = trainGreedyEnsemble(geometry, tuples);
    const auto count = countFalseDecisions(ensemble, tuples);
    EXPECT_LT(static_cast<double>(count.errors())
                  / static_cast<double>(count.total),
              0.02);
}

/** Parameterized sweep: the ensemble invariants hold at every
 *  geometry the Figure 11 Pareto analysis visits. */
class GeometrySweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>>
{
};

TEST_P(GeometrySweep, TrainedPatternsAlwaysRedirect)
{
    const auto [numTables, tableBytes] = GetParam();
    Rng rng(101);
    TableGeometry geometry;
    geometry.numTables = numTables;
    geometry.tableBytes = tableBytes;

    std::vector<TrainingTuple> tuples;
    for (int i = 0; i < 600; ++i)
        tuples.push_back({randomCodes(6, rng), rng.bernoulli(0.1)});
    const auto ensemble = trainGreedyEnsemble(geometry, tuples);

    for (const auto &tuple : tuples) {
        if (tuple.precise)
            EXPECT_TRUE(ensemble.decidePrecise(tuple.codes));
    }
    EXPECT_EQ(ensemble.toBytes().size(), geometry.totalBytes());
}

INSTANTIATE_TEST_SUITE_P(
    ParetoGrid, GeometrySweep,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 128},
                      std::pair<std::size_t, std::size_t>{1, 4096},
                      std::pair<std::size_t, std::size_t>{2, 512},
                      std::pair<std::size_t, std::size_t>{4, 2048},
                      std::pair<std::size_t, std::size_t>{8, 128},
                      std::pair<std::size_t, std::size_t>{8, 512},
                      std::pair<std::size_t, std::size_t>{8, 4096}));

/** Parameterized sweep: MISR signatures stay in range and reset
 *  correctly at every width a table geometry can request. */
class MisrWidthSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(MisrWidthSweep, SignaturesInRangeAndDeterministic)
{
    const unsigned bits = GetParam();
    Rng rng(202);
    for (std::size_t id = 0; id < misrPoolSize; ++id) {
        Misr misr(misrConfigPool()[id], bits);
        const auto codes = randomCodes(1 + rng.nextBelow(32), rng);
        const auto first = misr.hash(codes);
        EXPECT_LT(first, 1u << bits);
        EXPECT_EQ(misr.hash(codes), first);
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, MisrWidthSweep,
                         ::testing::Values(10u, 12u, 14u, 15u, 16u));
