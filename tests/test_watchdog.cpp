/**
 * @file
 * Watchdog layer tests: the sequential Clopper–Pearson envelope
 * against brute-force binomial tail sums, the audit schedule's
 * determinism and thread-count independence, the state machine's
 * transitions and hysteresis, and the contract death tests.
 */

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "axbench/benchmark.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "core/watchdog/watchdog.hh"
#include "stats/clopper_pearson.hh"
#include "stats/sequential_bound.hh"

using namespace mithra;
using core::watchdog::noTrip;
using core::watchdog::Routing;
using core::watchdog::State;
using core::watchdog::Watchdog;
using core::watchdog::WatchdogOptions;

namespace
{

/** Exact binomial tail P(X >= k) for X ~ Bin(n, p), brute force. */
double
binomialUpperTail(std::size_t k, std::size_t n, double p)
{
    // Sum C(n, i) p^i (1-p)^(n-i) for i in [k, n], accumulating the
    // binomial coefficient incrementally in doubles (n stays small).
    double tail = 0.0;
    double coeff = 1.0; // C(n, 0)
    for (std::size_t i = 0; i <= n; ++i) {
        if (i >= k) {
            tail += coeff * std::pow(p, static_cast<double>(i))
                * std::pow(1.0 - p,
                           static_cast<double>(n - i));
        }
        coeff *= static_cast<double>(n - i)
            / static_cast<double>(i + 1);
    }
    return tail;
}

/** Exact binomial CDF P(X <= k), brute force. */
double
binomialLowerTail(std::size_t k, std::size_t n, double p)
{
    double cdf = 0.0;
    double coeff = 1.0;
    for (std::size_t i = 0; i <= k; ++i) {
        cdf += coeff * std::pow(p, static_cast<double>(i))
            * std::pow(1.0 - p, static_cast<double>(n - i));
        coeff *= static_cast<double>(n - i)
            / static_cast<double>(i + 1);
    }
    return cdf;
}

} // namespace

TEST(SequentialAlpha, SpendingScheduleSumsToAlpha)
{
    const double alpha = 0.05;
    double spent = 0.0;
    for (std::size_t look = 0; look < 10000; ++look)
        spent += stats::sequentialAlphaAtLook(alpha, look);
    // The Basel series converges to alpha from below.
    EXPECT_LT(spent, alpha);
    EXPECT_GT(spent, 0.999 * alpha);
    // Early looks get the biggest budget.
    EXPECT_GT(stats::sequentialAlphaAtLook(alpha, 0),
              stats::sequentialAlphaAtLook(alpha, 1));
}

TEST(SequentialBound, MatchesBruteForceBinomialTails)
{
    // Feed a fixed Bernoulli stream and verify each look's envelope
    // refinement against the defining tail-sum equations of the
    // Clopper–Pearson interval, evaluated by brute-force summation.
    stats::SequentialBoundOptions opts;
    opts.confidence = 0.95;
    opts.firstLook = 8;
    opts.lookGrowth = 1.5;
    stats::SequentialBinomialBound bound(opts);

    Rng rng(0x5eed5ULL);
    const double alpha = 1.0 - opts.confidence;
    double upperEnvelope = 1.0;
    double lowerEnvelope = 0.0;
    std::size_t looks = 0;
    std::size_t successes = 0;

    for (std::size_t i = 0; i < 200; ++i) {
        const bool success = rng.bernoulli(0.3);
        successes += success ? 1 : 0;
        const std::size_t n = i + 1;

        const bool lookDue = n == bound.nextLookAt();
        bound.record(success);
        ASSERT_EQ(bound.observations(), n);
        ASSERT_EQ(bound.successes(), successes);

        if (!lookDue)
            continue;
        ++looks;
        ASSERT_EQ(bound.looksTaken(), looks);

        const double lookAlpha =
            stats::sequentialAlphaAtLook(alpha, looks - 1);
        const double tailMass = lookAlpha / 2.0;

        // Reference interval straight from the tail-sum definitions.
        const double upper = stats::clopperPearsonUpper(
            successes, n, 1.0 - tailMass);
        const double lower = stats::clopperPearsonLower(
            successes, n, 1.0 - tailMass);

        // Brute-force check of the reference interval itself: at the
        // upper limit, seeing <= k successes is exactly the spent tail
        // mass; at the lower limit, seeing >= k is.
        if (successes < n) {
            EXPECT_NEAR(binomialLowerTail(successes, n, upper),
                        tailMass, 1e-6)
                << "upper tail at look " << looks << " (n=" << n << ")";
        }
        if (successes > 0) {
            EXPECT_NEAR(binomialUpperTail(successes, n, lower),
                        tailMass, 1e-6)
                << "lower tail at look " << looks << " (n=" << n << ")";
        }

        upperEnvelope = std::min(upperEnvelope, upper);
        lowerEnvelope = std::max(lowerEnvelope, lower);
        EXPECT_DOUBLE_EQ(bound.upperBound(), upperEnvelope);
        EXPECT_DOUBLE_EQ(bound.lowerBound(), lowerEnvelope);
    }

    EXPECT_GE(looks, 5u);
    EXPECT_GT(bound.lowerBound(), 0.0);
    EXPECT_LT(bound.upperBound(), 1.0);
    EXPECT_LE(bound.lowerBound(), 0.3);
    EXPECT_GE(bound.upperBound(), 0.3);
}

TEST(SequentialBound, EnvelopeOnlyTightens)
{
    stats::SequentialBinomialBound bound(0.9);
    double upper = 1.0;
    double lower = 0.0;
    Rng rng(0xfeedULL);
    for (std::size_t i = 0; i < 500; ++i) {
        bound.record(rng.bernoulli(0.5));
        EXPECT_LE(bound.upperBound(), upper);
        EXPECT_GE(bound.lowerBound(), lower);
        EXPECT_LE(bound.lowerBound(), bound.upperBound());
        upper = bound.upperBound();
        lower = bound.lowerBound();
    }
}

TEST(SequentialBound, ResetRestartsTheSchedule)
{
    stats::SequentialBinomialBound bound(0.95);
    const std::size_t firstLook = bound.nextLookAt();
    for (int i = 0; i < 50; ++i)
        bound.record(i % 2 == 0);
    ASSERT_GT(bound.looksTaken(), 0u);

    bound.reset();
    EXPECT_EQ(bound.observations(), 0u);
    EXPECT_EQ(bound.successes(), 0u);
    EXPECT_EQ(bound.looksTaken(), 0u);
    EXPECT_EQ(bound.nextLookAt(), firstLook);
    EXPECT_DOUBLE_EQ(bound.upperBound(), 1.0);
    EXPECT_DOUBLE_EQ(bound.lowerBound(), 0.0);
}

TEST(AuditSchedule, DensityTracksRateAndRampsAreSupersets)
{
    const std::uint64_t seed = 0xd09ULL;
    std::size_t base = 0;
    std::size_t ramped = 0;
    for (std::uint64_t i = 0; i < 100000; ++i) {
        const bool atBase = Watchdog::auditScheduled(seed, i, 0.02);
        const bool atRamp = Watchdog::auditScheduled(seed, i, 0.2);
        base += atBase ? 1 : 0;
        ramped += atRamp ? 1 : 0;
        // Monotone in the rate: ramping up never unschedules an audit.
        if (atBase) {
            EXPECT_TRUE(atRamp) << "index " << i;
        }
    }
    EXPECT_NEAR(static_cast<double>(base) / 100000.0, 0.02, 0.005);
    EXPECT_NEAR(static_cast<double>(ramped) / 100000.0, 0.2, 0.01);

    EXPECT_FALSE(Watchdog::auditScheduled(seed, 7, 0.0));
    EXPECT_TRUE(Watchdog::auditScheduled(seed, 7, 1.0));
}

TEST(AuditSchedule, BitwiseIdenticalAcrossThreadCounts)
{
    // The audit schedule and the state machine must not depend on
    // MITHRA_THREADS. Interleave the serial watchdog loop with real
    // parallel work at 1/2/8 threads and require the byte-exact same
    // audit/decision/state sequence every time.
    const double threshold = 0.5;
    WatchdogOptions opts;
    opts.enabled = true;
    opts.suspectMinAudits = 4;

    // Synthetic error stream: mostly clean, violating from index 600.
    std::vector<float> errors;
    {
        Rng rng(0xabcdULL);
        for (std::size_t i = 0; i < 1200; ++i) {
            const bool bad = i >= 600 || rng.bernoulli(0.01);
            errors.push_back(bad ? 1.0f : 0.1f);
        }
    }

    const std::size_t savedThreads = parallelThreadCount();
    std::vector<std::vector<std::uint8_t>> signatures;
    for (const std::size_t threads : {1u, 2u, 8u}) {
        setParallelThreadCount(threads);
        // Engage the pool with unrelated parallel work between
        // watchdog steps so any hidden coupling would surface.
        std::vector<double> scratch(4096);
        parallelFor(0, scratch.size(), 256, [&](std::size_t i) {
            scratch[i] = static_cast<double>(i) * 0.5;
        });

        Watchdog dog(opts, threshold);
        std::vector<std::uint8_t> signature;
        for (std::size_t i = 0; i < errors.size(); ++i) {
            const Routing routing = dog.route(true);
            if (routing.audited())
                dog.reportAudit(errors[i]);
            signature.push_back(static_cast<std::uint8_t>(
                (routing.useAccel ? 1 : 0)
                | (routing.auditPrecise ? 2 : 0)
                | (routing.auditShadowAccel ? 4 : 0)
                | (static_cast<int>(dog.state()) << 3)));
        }
        const auto snap = dog.snapshot();
        signature.push_back(static_cast<std::uint8_t>(snap.audits));
        signature.push_back(static_cast<std::uint8_t>(snap.trips));
        signatures.push_back(std::move(signature));
    }
    setParallelThreadCount(savedThreads);

    ASSERT_EQ(signatures.size(), 3u);
    EXPECT_EQ(signatures[0], signatures[1]);
    EXPECT_EQ(signatures[0], signatures[2]);
}

namespace
{

/** Drive `count` accelerated invocations with a fixed error value. */
std::size_t
feed(Watchdog &dog, std::size_t count, float error)
{
    std::size_t audits = 0;
    for (std::size_t i = 0; i < count; ++i) {
        const Routing routing = dog.route(true);
        if (routing.audited()) {
            dog.reportAudit(error);
            ++audits;
        }
    }
    return audits;
}

/** Options that audit every accelerated invocation (fast tests). */
WatchdogOptions
fullAuditOptions()
{
    WatchdogOptions opts;
    opts.enabled = true;
    opts.baseAuditRate = 1.0;
    opts.suspectAuditRate = 1.0;
    opts.degradedAuditRate = 1.0;
    return opts;
}

} // namespace

TEST(WatchdogStateMachine, CleanStreamStaysHealthy)
{
    Watchdog dog(fullAuditOptions(), 0.5);
    feed(dog, 5000, 0.1f);

    const auto snap = dog.snapshot();
    EXPECT_EQ(snap.state, State::Healthy);
    EXPECT_EQ(snap.trips, 0u);
    EXPECT_EQ(snap.suspectEntries, 0u);
    EXPECT_EQ(snap.forcedPrecise, 0u);
    EXPECT_EQ(snap.firstTripAt, noTrip);
    // The envelope certifies a violation rate far below the contract.
    EXPECT_LT(snap.violationUpperBound, 0.1);
}

TEST(WatchdogStateMachine, RareViolationsBelowContractNeverTrip)
{
    // True violation rate ~2% against a 10% contract: the realistic
    // healthy regime. Sporadic violations must not trip or even raise
    // sustained suspicion.
    WatchdogOptions opts = fullAuditOptions();
    Watchdog dog(opts, 0.5);
    Rng rng(0x11ceULL);
    for (std::size_t i = 0; i < 20000; ++i) {
        const Routing routing = dog.route(true);
        if (routing.audited())
            dog.reportAudit(rng.bernoulli(0.02) ? 1.0f : 0.1f);
    }
    const auto snap = dog.snapshot();
    EXPECT_EQ(snap.state, State::Healthy);
    EXPECT_EQ(snap.trips, 0u);
    EXPECT_LT(snap.violationUpperBound, 0.1);
    EXPECT_GT(snap.violations, 0u);
}

TEST(WatchdogStateMachine, SustainedViolationsTripToDegraded)
{
    Watchdog dog(fullAuditOptions(), 0.5);
    feed(dog, 200, 1.0f);

    const auto snap = dog.snapshot();
    EXPECT_EQ(snap.state, State::Degraded);
    EXPECT_EQ(snap.suspectEntries, 1u);
    EXPECT_EQ(snap.trips, 1u);
    EXPECT_NE(snap.firstTripAt, noTrip);
    EXPECT_LT(snap.firstTripAt, 100u);
    // Degraded forces the precise path but keeps shadow-auditing.
    const Routing routing = dog.route(true);
    EXPECT_FALSE(routing.useAccel);
    EXPECT_FALSE(routing.auditPrecise);
    EXPECT_TRUE(routing.auditShadowAccel);
    dog.reportAudit(1.0f);
    EXPECT_GT(dog.snapshot().forcedPrecise, 0u);
}

TEST(WatchdogStateMachine, SuspicionClearsWithoutConfidentEvidence)
{
    // A short violation burst raises SUSPECT; clean audits afterwards
    // must certify health and return to HEALTHY without a trip.
    WatchdogOptions opts = fullAuditOptions();
    opts.suspectMinAudits = 4;
    Watchdog dog(opts, 0.5);

    feed(dog, 6, 1.0f); // point rate 100% > 10%: SUSPECT
    ASSERT_EQ(dog.state(), State::Suspect);

    feed(dog, 2000, 0.1f);
    const auto snap = dog.snapshot();
    EXPECT_EQ(snap.state, State::Healthy);
    EXPECT_EQ(snap.suspectEntries, 1u);
    EXPECT_EQ(snap.trips, 0u);
}

TEST(WatchdogStateMachine, RecoversThroughProbationAfterFaultClears)
{
    WatchdogOptions opts = fullAuditOptions();
    Watchdog dog(opts, 0.5);

    feed(dog, 200, 1.0f);
    ASSERT_EQ(dog.state(), State::Degraded);

    // Fault clears: shadow audits run clean. The watchdog must demand
    // recoveryMinAudits and a certified margin before re-enabling.
    std::size_t shadowAudits = 0;
    while (dog.state() == State::Degraded && shadowAudits < 10000)
        shadowAudits += feed(dog, 1, 0.1f);
    ASSERT_EQ(dog.state(), State::Recovered);
    EXPECT_GE(shadowAudits, opts.recoveryMinAudits);

    // Recovered accelerates again (on probation, still audited).
    const Routing routing = dog.route(true);
    EXPECT_TRUE(routing.useAccel);
    EXPECT_TRUE(routing.auditPrecise);
    dog.reportAudit(0.1f);

    feed(dog, 2000, 0.1f);
    const auto snap = dog.snapshot();
    EXPECT_EQ(snap.state, State::Healthy);
    EXPECT_EQ(snap.recoveries, 1u);
    EXPECT_EQ(snap.trips, 1u);
}

TEST(WatchdogStateMachine, ProbationRelapseTripsAgain)
{
    WatchdogOptions opts = fullAuditOptions();
    Watchdog dog(opts, 0.5);

    feed(dog, 200, 1.0f);
    ASSERT_EQ(dog.state(), State::Degraded);
    std::size_t guard = 0;
    while (dog.state() == State::Degraded && guard++ < 10000)
        feed(dog, 1, 0.1f);
    ASSERT_EQ(dog.state(), State::Recovered);

    // The fault comes back during probation: straight back to
    // DEGRADED, counting a second trip.
    feed(dog, 200, 1.0f);
    const auto snap = dog.snapshot();
    EXPECT_EQ(snap.state, State::Degraded);
    EXPECT_EQ(snap.trips, 2u);
    EXPECT_EQ(snap.recoveries, 1u);
}

TEST(WatchdogStateMachine, PrecisePathInvocationsAreNotAudited)
{
    Watchdog dog(fullAuditOptions(), 0.5);
    for (std::size_t i = 0; i < 100; ++i) {
        const Routing routing = dog.route(false);
        EXPECT_FALSE(routing.useAccel);
        EXPECT_FALSE(routing.audited());
    }
    EXPECT_EQ(dog.snapshot().audits, 0u);
    EXPECT_EQ(dog.snapshot().invocations, 100u);
}

TEST(WatchdogStream, CleanTraceWithRealClassifierNeverTrips)
{
    // runStream over a synthetic trace whose approximations are good:
    // the drift-off invariant (zero DEGRADED transitions) end to end.
    class AcceptAll final : public core::Classifier
    {
      public:
        std::string kind() const override { return "accept-all"; }
        bool decidePrecise(const Vec &, std::size_t) override
        {
            return false;
        }
        sim::ClassifierCost cost() const override { return {}; }
        std::size_t configSizeBytes() const override { return 0; }
    };

    axbench::InvocationTrace trace(1, 1);
    Rng rng(0x70a57ULL);
    for (std::size_t i = 0; i < 4000; ++i) {
        const auto x = static_cast<float>(rng.uniform());
        const bool rare = rng.bernoulli(0.01);
        trace.appendWithApprox({x}, {1.0f},
                               {rare ? 2.0f : 1.05f});
    }

    WatchdogOptions opts;
    opts.enabled = true;
    Watchdog dog(opts, 0.5);
    AcceptAll classifier;
    const auto result =
        core::watchdog::runStream(dog, classifier, trace);

    EXPECT_EQ(result.invocations, 4000u);
    EXPECT_EQ(result.tripIndex, noTrip);
    EXPECT_EQ(result.snapshot.trips, 0u);
    EXPECT_EQ(result.snapshot.state, State::Healthy);
    EXPECT_GT(result.snapshot.audits, 0u);
}

TEST(WatchdogOptionsEnv, DefaultsAreOffAndSane)
{
    const WatchdogOptions opts;
    EXPECT_FALSE(opts.enabled);
    EXPECT_GT(opts.baseAuditRate, 0.0);
    EXPECT_GT(opts.suspectAuditRate, opts.baseAuditRate);
    EXPECT_GT(opts.maxViolationRate, 0.0);
    EXPECT_LT(opts.maxViolationRate, 1.0);
    EXPECT_GT(opts.recoverMargin, 0.0);
    EXPECT_LE(opts.recoverMargin, 1.0);
}

#if MITHRA_CHECKS_ENABLED

TEST(WatchdogDeath, SequentialBoundRejectsInvalidConfidence)
{
    EXPECT_DEATH(stats::SequentialBinomialBound bound(1.5),
                 "confidence");
}

TEST(WatchdogDeath, SequentialBoundRejectsZeroConfidence)
{
    EXPECT_DEATH(stats::SequentialBinomialBound bound(0.0),
                 "confidence");
}

TEST(WatchdogDeath, ReportWithoutScheduledAuditIsRejected)
{
    WatchdogOptions opts;
    Watchdog dog(opts, 0.5);
    EXPECT_DEATH(dog.reportAudit(0.1f), "audit");
}

TEST(WatchdogDeath, RouteWithUnreportedAuditIsRejected)
{
    Watchdog dog(fullAuditOptions(), 0.5);
    const Routing routing = dog.route(true);
    ASSERT_TRUE(routing.audited());
    EXPECT_DEATH(dog.route(true), "unreported");
}

#endif // MITHRA_CHECKS_ENABLED
