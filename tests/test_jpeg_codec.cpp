/**
 * @file
 * Unit and property tests for the baseline JPEG codec substrate.
 */

#include <gtest/gtest.h>

#include <set>

#include "axbench/jpeg_codec.hh"
#include "common/rng.hh"

using namespace mithra;
using namespace mithra::axbench::jpeg;

TEST(JpegCodec, ZigzagIsAPermutation)
{
    const auto &order = zigzagOrder();
    std::set<std::size_t> seen(order.begin(), order.end());
    EXPECT_EQ(seen.size(), blockSize);
    EXPECT_EQ(order[0], 0u);      // DC first
    EXPECT_EQ(order[1], 1u);      // then right
    EXPECT_EQ(order[2], 8u);      // then down-left
    EXPECT_EQ(order[63], 63u);    // highest frequency last
}

TEST(JpegCodec, QuantTableQualityScaling)
{
    const auto q50 = quantTable(50);
    const auto q90 = quantTable(90);
    const auto q10 = quantTable(10);
    for (std::size_t i = 0; i < blockSize; ++i) {
        EXPECT_LE(q90[i], q50[i]);
        EXPECT_GE(q10[i], q50[i]);
        EXPECT_GE(q90[i], 1);
        EXPECT_LE(q10[i], 255);
    }
    // Quality 50 uses the Annex-K base table unchanged.
    EXPECT_EQ(q50[0], 16);
    EXPECT_EQ(q50[63], 99);
}

TEST(JpegCodec, FlatBlockHasOnlyDc)
{
    const auto table = quantTable(75);
    float pixels[blockSize];
    std::fill(pixels, pixels + blockSize, 200.0f);
    float coeffs[blockSize];
    blockDctQuantize<float>(pixels, table, coeffs);
    for (std::size_t i = 1; i < blockSize; ++i)
        EXPECT_FLOAT_EQ(coeffs[i], 0.0f) << "AC index " << i;
    EXPECT_NE(coeffs[0], 0.0f);
}

TEST(JpegCodec, DctIdctRoundTripIsClose)
{
    Rng rng(1);
    const auto table = quantTable(95); // fine quantization
    float pixels[blockSize];
    for (auto &p : pixels)
        p = static_cast<float>(100.0 + 20.0 * rng.uniform());
    float coeffs[blockSize];
    blockDctQuantize<float>(pixels, table, coeffs);
    float decoded[blockSize];
    blockDequantizeIdct(coeffs, table, decoded);
    for (std::size_t i = 0; i < blockSize; ++i)
        EXPECT_NEAR(decoded[i], pixels[i], 6.0f);
}

TEST(JpegCodec, LowerQualityLosesMore)
{
    Rng rng(2);
    float pixels[blockSize];
    for (auto &p : pixels)
        p = static_cast<float>(rng.uniform(0.0, 255.0));

    auto rmse = [&](int quality) {
        const auto table = quantTable(quality);
        float coeffs[blockSize], decoded[blockSize];
        blockDctQuantize<float>(pixels, table, coeffs);
        blockDequantizeIdct(coeffs, table, decoded);
        double sum = 0.0;
        for (std::size_t i = 0; i < blockSize; ++i) {
            const double d = decoded[i] - pixels[i];
            sum += d * d;
        }
        return std::sqrt(sum / blockSize);
    };

    EXPECT_LT(rmse(90), rmse(20));
}

TEST(JpegCodec, BitStreamRoundTrip)
{
    BitStream stream;
    stream.writeBits(0b101, 3);
    stream.writeBits(0xff, 8);
    stream.writeBits(0, 2);
    stream.writeBits(0b110011, 6);
    EXPECT_EQ(stream.sizeBits(), 19u);
    EXPECT_EQ(stream.sizeBytes(), 3u);

    BitReader reader(stream.bytes());
    EXPECT_EQ(reader.readBits(3), 0b101u);
    EXPECT_EQ(reader.readBits(8), 0xffu);
    EXPECT_EQ(reader.readBits(2), 0u);
    EXPECT_EQ(reader.readBits(6), 0b110011u);
}

TEST(JpegCodec, HuffmanTablesRoundTripEverySymbol)
{
    for (const HuffmanTable *table :
         {&HuffmanTable::standardDc(), &HuffmanTable::standardAc()}) {
        // DC symbols are 0..11; AC symbols come from the standard set.
        std::vector<std::uint8_t> symbols;
        if (table == &HuffmanTable::standardDc()) {
            for (std::uint8_t s = 0; s <= 11; ++s)
                symbols.push_back(s);
        } else {
            symbols = {0x00, 0x01, 0x11, 0xf0, 0xfa, 0x53, 0x28};
        }
        BitStream stream;
        for (auto s : symbols)
            table->encode(stream, s);
        BitReader reader(stream.bytes());
        for (auto s : symbols)
            EXPECT_EQ(table->decode(reader), s);
    }
}

TEST(JpegCodec, EntropyRoundTripZeroBlocks)
{
    std::vector<std::array<int, blockSize>> blocks(3);
    for (auto &block : blocks)
        block.fill(0);
    const auto stream = entropyEncode(blocks);
    EXPECT_EQ(entropyDecode(stream, blocks.size()), blocks);
}

TEST(JpegCodec, EntropyRoundTripDcChain)
{
    // DC values exercise the difference coding across blocks.
    std::vector<std::array<int, blockSize>> blocks(4);
    int dc = 0;
    for (auto &block : blocks) {
        block.fill(0);
        dc += 37;
        block[0] = dc;
    }
    const auto stream = entropyEncode(blocks);
    EXPECT_EQ(entropyDecode(stream, blocks.size()), blocks);
}

/** Property: random sparse coefficient blocks round-trip exactly. */
class EntropyRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(EntropyRoundTrip, RandomBlocks)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    std::vector<std::array<int, blockSize>> blocks(8);
    for (auto &block : blocks) {
        block.fill(0);
        block[0] = static_cast<int>(rng.nextBelow(200)) - 100;
        const std::size_t nonzero = rng.nextBelow(20);
        for (std::size_t k = 0; k < nonzero; ++k) {
            block[1 + rng.nextBelow(blockSize - 1)] =
                static_cast<int>(rng.nextBelow(60)) - 30;
        }
    }
    const auto stream = entropyEncode(blocks);
    EXPECT_EQ(entropyDecode(stream, blocks.size()), blocks);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EntropyRoundTrip,
                         ::testing::Range(1, 13));

TEST(JpegCodec, EntropyCodingCompressesSparseBlocks)
{
    // A sparse block stream must beat raw 2-bytes-per-coefficient.
    std::vector<std::array<int, blockSize>> blocks(16);
    Rng rng(77);
    for (auto &block : blocks) {
        block.fill(0);
        block[0] = 40;
        block[1] = static_cast<int>(rng.nextBelow(8)) - 4;
    }
    const auto stream = entropyEncode(blocks);
    EXPECT_LT(stream.sizeBytes(), blocks.size() * blockSize * 2 / 10);
}

TEST(JpegCodec, RunLengthLongZeroRuns)
{
    // Coefficients placed after >16 zeros exercise the ZRL symbol.
    std::vector<std::array<int, blockSize>> blocks(1);
    blocks[0].fill(0);
    blocks[0][zigzagOrder()[40]] = 9;
    blocks[0][zigzagOrder()[63]] = -3;
    const auto stream = entropyEncode(blocks);
    EXPECT_EQ(entropyDecode(stream, 1), blocks);
}
