/**
 * @file
 * Unit and property tests for Base-Delta-Immediate compression.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "compress/bdi.hh"

using namespace mithra;
using namespace mithra::compress;

namespace
{

std::array<std::uint8_t, lineBytes>
filledLine(std::uint8_t value)
{
    std::array<std::uint8_t, lineBytes> line;
    line.fill(value);
    return line;
}

} // namespace

TEST(Bdi, ZeroLineIsFree)
{
    const auto line = filledLine(0);
    const auto compressed = compressLine(line);
    EXPECT_EQ(compressed.encoding, BdiEncoding::Zeros);
    EXPECT_TRUE(compressed.payload.empty());
    EXPECT_EQ(decompressLine(compressed), line);
}

TEST(Bdi, RepeatedLineUsesEightBytes)
{
    std::array<std::uint8_t, lineBytes> line{};
    for (std::size_t i = 0; i < lineBytes; ++i)
        line[i] = static_cast<std::uint8_t>(i % 8 + 1);
    const auto compressed = compressLine(line);
    EXPECT_EQ(compressed.encoding, BdiEncoding::Repeated);
    EXPECT_EQ(compressed.payload.size(), 8u);
    EXPECT_EQ(decompressLine(compressed), line);
}

TEST(Bdi, SmallDeltasPickBase8Delta1)
{
    // 8-byte words near a common base, differing in the low byte.
    std::array<std::uint8_t, lineBytes> line{};
    for (std::size_t w = 0; w < 8; ++w) {
        line[w * 8] = static_cast<std::uint8_t>(10 + w);
        line[w * 8 + 1] = 0x42; // same high bytes everywhere
    }
    const auto compressed = compressLine(line);
    EXPECT_EQ(compressed.encoding, BdiEncoding::Base8Delta1);
    EXPECT_EQ(compressed.payload.size(), 8u + 8u);
    EXPECT_EQ(decompressLine(compressed), line);
}

TEST(Bdi, IncompressibleLineStaysRaw)
{
    Rng rng(99);
    std::array<std::uint8_t, lineBytes> line;
    for (auto &b : line)
        b = static_cast<std::uint8_t>(rng.nextBelow(256));
    const auto compressed = compressLine(line);
    EXPECT_EQ(compressed.encoding, BdiEncoding::Uncompressed);
    EXPECT_EQ(decompressLine(compressed), line);
}

TEST(Bdi, CompressedNeverLargerThanRawPlusTag)
{
    Rng rng(100);
    for (int trial = 0; trial < 50; ++trial) {
        std::array<std::uint8_t, lineBytes> line;
        for (auto &b : line)
            b = static_cast<std::uint8_t>(rng.nextBelow(4) * 60);
        const auto compressed = compressLine(line);
        EXPECT_LE(compressed.sizeBytes(), lineBytes + 1);
    }
}

/** Property: every generated pattern round-trips exactly. */
class BdiRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(BdiRoundTrip, LineRoundTrips)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    for (int trial = 0; trial < 200; ++trial) {
        std::array<std::uint8_t, lineBytes> line{};
        switch (rng.nextBelow(5)) {
          case 0: // sparse
            for (int k = 0; k < 4; ++k)
                line[rng.nextBelow(lineBytes)] =
                    static_cast<std::uint8_t>(rng.nextBelow(256));
            break;
          case 1: // clustered values
            for (auto &b : line)
                b = static_cast<std::uint8_t>(100 + rng.nextBelow(6));
            break;
          case 2: // 4-byte words around a base
            for (std::size_t w = 0; w < lineBytes / 4; ++w) {
                line[w * 4] =
                    static_cast<std::uint8_t>(rng.nextBelow(256));
                line[w * 4 + 1] = 0x11;
                line[w * 4 + 2] = 0x22;
                line[w * 4 + 3] = 0x33;
            }
            break;
          case 3: // random
            for (auto &b : line)
                b = static_cast<std::uint8_t>(rng.nextBelow(256));
            break;
          default: // all equal
            line.fill(static_cast<std::uint8_t>(rng.nextBelow(256)));
            break;
        }
        const auto compressed = compressLine(line);
        EXPECT_EQ(decompressLine(compressed), line);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BdiRoundTrip, ::testing::Range(1, 9));

TEST(Bdi, BufferRoundTripWithPartialTail)
{
    Rng rng(101);
    for (std::size_t size : {1u, 63u, 64u, 65u, 200u, 4096u}) {
        std::vector<std::uint8_t> bytes(size);
        for (auto &b : bytes)
            b = static_cast<std::uint8_t>(rng.nextBelow(256));
        const auto buffer = compressBuffer(bytes);
        EXPECT_EQ(buffer.originalBytes, size);
        EXPECT_EQ(decompressBuffer(buffer), bytes);
    }
}

TEST(Bdi, SparseBufferCompressesWell)
{
    // A mostly-zero 4 KB table should shrink by an order of magnitude
    // (the paper's blackscholes/fft/inversek2j tables shrink ~16x).
    std::vector<std::uint8_t> bytes(4096, 0);
    bytes[17] = 1;
    bytes[900] = 3;
    const auto buffer = compressBuffer(bytes);
    EXPECT_GT(buffer.ratio(), 10.0);
    EXPECT_EQ(decompressBuffer(buffer), bytes);
}

TEST(Bdi, DenseBufferBarelyCompresses)
{
    Rng rng(102);
    std::vector<std::uint8_t> bytes(4096);
    for (auto &b : bytes)
        b = static_cast<std::uint8_t>(rng.nextBelow(256));
    const auto buffer = compressBuffer(bytes);
    EXPECT_LT(buffer.ratio(), 1.1);
}

TEST(Bdi, DecompressCyclesAreSmall)
{
    EXPECT_EQ(decompressCycles(BdiEncoding::Zeros), 0u);
    EXPECT_EQ(decompressCycles(BdiEncoding::Uncompressed), 0u);
    EXPECT_LE(decompressCycles(BdiEncoding::Base8Delta1), 2u);
}

TEST(Bdi, EncodingNamesAreUnique)
{
    const BdiEncoding all[] = {
        BdiEncoding::Zeros,       BdiEncoding::Repeated,
        BdiEncoding::Base8Delta1, BdiEncoding::Base8Delta2,
        BdiEncoding::Base8Delta4, BdiEncoding::Base4Delta1,
        BdiEncoding::Base4Delta2, BdiEncoding::Base2Delta1,
        BdiEncoding::Uncompressed,
    };
    std::set<std::string> names;
    for (auto encoding : all)
        names.insert(encodingName(encoding));
    EXPECT_EQ(names.size(), std::size(all));
}
