/**
 * @file
 * Kernel-layer tests (src/common/kernels): every backend the CPU
 * supports must be bitwise identical to the scalar reference on every
 * kernel, the scalar reference must match pinned golden values (the
 * pre-refactor behavior), and the batch paths must stay bitwise
 * deterministic at any thread width. Suite names start with "Kernels"
 * so CI's native-build gate can run exactly this file twice
 * (`ctest -R '^Kernels'` under MITHRA_KERNELS=scalar and the default
 * best backend).
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/kernels/kernels.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/vec.hh"
#include "hw/misr.hh"
#include "hw/quantizer.hh"
#include "npu/mlp.hh"
#include "npu/trainer.hh"

namespace
{

using mithra::Rng;
using mithra::Vec;
namespace kernels = mithra::kernels;
using kernels::Backend;

/** Every backend the running CPU can execute (scalar always can). */
std::vector<Backend>
supportedBackends()
{
    std::vector<Backend> backends;
    for (Backend b : {Backend::Scalar, Backend::Sse42, Backend::Avx2}) {
        if (kernels::backendSupported(b))
            backends.push_back(b);
    }
    return backends;
}

/** RAII backend override that restores the previous choice. */
struct BackendGuard
{
    Backend previous;

    explicit BackendGuard(Backend backend)
        : previous(kernels::activeBackend())
    {
        kernels::setActiveBackend(backend);
    }

    ~BackendGuard() { kernels::setActiveBackend(previous); }
};

std::uint32_t
bitsOf(float value)
{
    return std::bit_cast<std::uint32_t>(value);
}

/** Fill a padded weight/input pair with deterministic values. */
void
fillGemvOperands(Rng &rng, std::size_t rows, std::size_t width,
                 kernels::AlignedVec &weights, kernels::AlignedVec &input,
                 std::vector<float> &bias)
{
    const std::size_t stride = kernels::paddedSize(width);
    weights.assign(rows * stride, 0.0f);
    input.assign(stride, 0.0f);
    bias.assign(rows, 0.0f);
    for (std::size_t r = 0; r < rows; ++r) {
        bias[r] = static_cast<float>(rng.uniform(-1.0, 1.0));
        for (std::size_t j = 0; j < width; ++j) {
            weights[r * stride + j] =
                static_cast<float>(rng.uniform(-2.0, 2.0));
        }
    }
    for (std::size_t j = 0; j < width; ++j)
        input[j] = static_cast<float>(rng.uniform(-3.0, 3.0));
}

TEST(KernelsBackend, ScalarAlwaysSupported)
{
    EXPECT_TRUE(kernels::backendSupported(Backend::Scalar));
    EXPECT_TRUE(kernels::backendSupported(kernels::bestSupportedBackend()));
    EXPECT_TRUE(kernels::backendSupported(kernels::activeBackend()));
}

TEST(KernelsBackend, NamesAreStable)
{
    EXPECT_STREQ(kernels::backendName(Backend::Scalar), "scalar");
    EXPECT_STREQ(kernels::backendName(Backend::Sse42), "sse42");
    EXPECT_STREQ(kernels::backendName(Backend::Avx2), "avx2");
}

TEST(KernelsBackend, OverrideSwitchesDispatch)
{
    const Backend before = kernels::activeBackend();
    {
        BackendGuard guard(Backend::Scalar);
        EXPECT_EQ(kernels::activeBackend(), Backend::Scalar);
    }
    EXPECT_EQ(kernels::activeBackend(), before);
}

// Golden values pin the scalar reference (and therefore every backend)
// to the canonical 8-lane reduction and the floor(+0.5) quantizer
// rounding; a change in any backend's arithmetic order shows up here
// as a bit-pattern mismatch.
TEST(KernelsGolden, GemvBiasMatchesPinnedBits)
{
    const std::size_t width = 10, rows = 3;
    const std::size_t stride = kernels::paddedSize(width);
    kernels::AlignedVec weights(rows * stride, 0.0f);
    kernels::AlignedVec input(stride, 0.0f);
    float bias[3];
    for (std::size_t r = 0; r < rows; ++r) {
        bias[r] = 0.25f * static_cast<float>(r) - 0.1f;
        for (std::size_t j = 0; j < width; ++j) {
            weights[r * stride + j] =
                0.123f * static_cast<float>(j + 1)
                - 0.3f * static_cast<float>(r);
        }
    }
    for (std::size_t j = 0; j < width; ++j)
        input[j] = 0.017f * static_cast<float>(j) - 0.05f;

    const std::uint32_t golden[3] = {0x3e80e950u, 0x3ed83517u,
                                     0x3f17c06eu};
    for (Backend backend : supportedBackends()) {
        BackendGuard guard(backend);
        float out[3] = {0.0f, 0.0f, 0.0f};
        kernels::gemvBias(weights.data(), stride, bias, input.data(),
                          rows, out);
        for (std::size_t r = 0; r < rows; ++r) {
            EXPECT_EQ(bitsOf(out[r]), golden[r])
                << "backend " << kernels::backendName(backend)
                << " row " << r;
        }
    }
}

TEST(KernelsGolden, MisrPoolSignaturesMatchPinnedValues)
{
    std::uint8_t codes[16];
    for (int i = 0; i < 16; ++i)
        codes[i] = static_cast<std::uint8_t>(17 * i + 3);

    const struct
    {
        std::size_t configId;
        std::uint32_t signature;
    } golden[] = {{0, 0x293u}, {7, 0x8f3u}, {15, 0x58au}};

    for (const auto &expect : golden) {
        const mithra::hw::Misr misr(
            mithra::hw::misrConfigPool()[expect.configId], 12);
        EXPECT_EQ(misr.hash({codes, 16}), expect.signature);
        for (Backend backend : supportedBackends()) {
            BackendGuard guard(backend);
            std::uint32_t out = 0;
            kernels::misrHashBatch(misr.params(), codes, 16, 1, &out);
            EXPECT_EQ(out, expect.signature)
                << "backend " << kernels::backendName(backend)
                << " config " << expect.configId;
        }
    }
}

TEST(KernelsGolden, QuantizeMatchesPinnedCodes)
{
    const float lows[4] = {-1.0f, 0.0f, -2.5f, 1.0f};
    const float highs[4] = {1.0f, 4.0f, 2.5f, 9.0f};
    const float vals[4] = {-0.2f, 3.1f, 2.6f, 0.5f};
    const std::uint8_t golden[4] = {3, 5, 7, 0};
    for (Backend backend : supportedBackends()) {
        BackendGuard guard(backend);
        std::uint8_t out[4] = {255, 255, 255, 255};
        kernels::quantizeBatch(vals, 4, 1, lows, highs, 7, out);
        for (std::size_t i = 0; i < 4; ++i) {
            EXPECT_EQ(out[i], golden[i])
                << "backend " << kernels::backendName(backend)
                << " element " << i;
        }
    }
}

TEST(KernelsEquality, GemvBitwiseEqualAcrossShapes)
{
    Rng rng(0x6b65726e31ULL);
    for (std::size_t width = 1; width <= 64; ++width) {
        const std::size_t rows = 1 + width % 7;
        const std::size_t stride = kernels::paddedSize(width);
        kernels::AlignedVec weights, input;
        std::vector<float> bias;
        fillGemvOperands(rng, rows, width, weights, input, bias);

        std::vector<float> reference(rows);
        {
            BackendGuard guard(Backend::Scalar);
            kernels::gemvBias(weights.data(), stride, bias.data(),
                              input.data(), rows, reference.data());
        }
        for (Backend backend : supportedBackends()) {
            BackendGuard guard(backend);
            std::vector<float> out(rows);
            kernels::gemvBias(weights.data(), stride, bias.data(),
                              input.data(), rows, out.data());
            for (std::size_t r = 0; r < rows; ++r) {
                ASSERT_EQ(bitsOf(out[r]), bitsOf(reference[r]))
                    << "backend " << kernels::backendName(backend)
                    << " width " << width << " row " << r;
            }
        }
    }
}

TEST(KernelsEquality, ElementwiseKernelsBitwiseEqual)
{
    Rng rng(0x6b65726e32ULL);
    for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{8},
                          std::size_t{19}, std::size_t{64},
                          std::size_t{70}}) {
        std::vector<float> x(n), grad(n);
        for (std::size_t i = 0; i < n; ++i) {
            x[i] = static_cast<float>(rng.uniform(-2.0, 2.0));
            grad[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
        }
        const float a = static_cast<float>(rng.uniform(-1.0, 1.0));

        std::vector<float> yRef(n, 0.5f), velRef(n, 0.25f),
            wRef(n, -0.75f);
        {
            BackendGuard guard(Backend::Scalar);
            kernels::axpy(a, x.data(), yRef.data(), n);
            kernels::addInPlace(yRef.data(), grad.data(), n);
            kernels::sgdMomentumStep(0.9f, 0.01f, grad.data(),
                                     velRef.data(), wRef.data(), n);
        }
        for (Backend backend : supportedBackends()) {
            BackendGuard guard(backend);
            std::vector<float> y(n, 0.5f), vel(n, 0.25f), w(n, -0.75f);
            kernels::axpy(a, x.data(), y.data(), n);
            kernels::addInPlace(y.data(), grad.data(), n);
            kernels::sgdMomentumStep(0.9f, 0.01f, grad.data(),
                                     vel.data(), w.data(), n);
            for (std::size_t i = 0; i < n; ++i) {
                ASSERT_EQ(bitsOf(y[i]), bitsOf(yRef[i]))
                    << kernels::backendName(backend) << " n " << n;
                ASSERT_EQ(bitsOf(vel[i]), bitsOf(velRef[i]))
                    << kernels::backendName(backend) << " n " << n;
                ASSERT_EQ(bitsOf(w[i]), bitsOf(wRef[i]))
                    << kernels::backendName(backend) << " n " << n;
            }
        }
    }
}

TEST(KernelsEquality, MisrBatchEqualsSequentialForAllPoolConfigs)
{
    Rng rng(0x6b65726e33ULL);
    const auto &pool = mithra::hw::misrConfigPool();
    for (std::size_t id = 0; id < mithra::hw::misrPoolSize; ++id) {
        const mithra::hw::Misr misr(pool[id], 12);
        for (std::size_t width : {std::size_t{1}, std::size_t{3},
                                  std::size_t{16}, std::size_t{33}}) {
            const std::size_t count = 19; // exercises the lane tails
            std::vector<std::uint8_t> codes(width * count);
            for (auto &code : codes)
                code = static_cast<std::uint8_t>(rng.nextBelow(256));

            std::vector<std::uint32_t> expected(count);
            for (std::size_t i = 0; i < count; ++i) {
                expected[i] = misr.hash(
                    {codes.data() + i * width, width});
            }
            for (Backend backend : supportedBackends()) {
                BackendGuard guard(backend);
                std::vector<std::uint32_t> out(count, 0);
                kernels::misrHashBatch(misr.params(), codes.data(),
                                       width, count, out.data());
                for (std::size_t i = 0; i < count; ++i) {
                    ASSERT_EQ(out[i], expected[i])
                        << kernels::backendName(backend) << " config "
                        << id << " width " << width << " row " << i;
                }
            }
        }
    }
}

TEST(KernelsEquality, QuantizeBatchEqualsScalarAndLround)
{
    Rng rng(0x6b65726e34ULL);
    const std::size_t width = 11, count = 23;
    std::vector<float> lows(width), highs(width),
        values(width * count);
    for (std::size_t j = 0; j < width; ++j) {
        lows[j] = static_cast<float>(rng.uniform(-4.0, 0.0));
        highs[j] = lows[j] + static_cast<float>(rng.uniform(0.5, 4.0));
    }
    // Mix in-range, out-of-range (clamped) and exact-boundary values.
    for (std::size_t i = 0; i < count; ++i) {
        for (std::size_t j = 0; j < width; ++j) {
            const double pick = rng.uniform();
            float v;
            if (pick < 0.1) {
                v = lows[j];
            } else if (pick < 0.2) {
                v = highs[j];
            } else {
                v = static_cast<float>(
                    rng.uniform(lows[j] - 1.0, highs[j] + 1.0));
            }
            values[i * width + j] = v;
        }
    }

    for (std::uint32_t levels : {1u, 7u, 15u, 255u}) {
        std::vector<std::uint8_t> reference(width * count);
        {
            BackendGuard guard(Backend::Scalar);
            kernels::quantizeBatch(values.data(), width, count,
                                   lows.data(), highs.data(), levels,
                                   reference.data());
        }
        // The scalar reference must equal the historical formula
        // lround(clamp((x - lo) / (hi - lo), 0, 1) * levels).
        for (std::size_t i = 0; i < count; ++i) {
            for (std::size_t j = 0; j < width; ++j) {
                const float x = values[i * width + j];
                float t = (x - lows[j]) / (highs[j] - lows[j]);
                t = std::min(1.0f, std::max(0.0f, t));
                const long code =
                    std::lround(t * static_cast<float>(levels));
                ASSERT_EQ(static_cast<long>(reference[i * width + j]),
                          code)
                    << "levels " << levels << " row " << i << " col "
                    << j;
            }
        }
        for (Backend backend : supportedBackends()) {
            BackendGuard guard(backend);
            std::vector<std::uint8_t> out(width * count, 255);
            kernels::quantizeBatch(values.data(), width, count,
                                   lows.data(), highs.data(), levels,
                                   out.data());
            ASSERT_EQ(out, reference)
                << kernels::backendName(backend) << " levels "
                << levels;
        }
    }
}

TEST(KernelsEquality, LessEqualMaskEqualsScalar)
{
    Rng rng(0x6b65726e35ULL);
    const float threshold = 0.125f;
    for (std::size_t n : {std::size_t{1}, std::size_t{8},
                          std::size_t{31}, std::size_t{100}}) {
        std::vector<float> values(n);
        for (std::size_t i = 0; i < n; ++i) {
            // Exact-threshold hits must count as accelerated.
            values[i] = (i % 5 == 0)
                ? threshold
                : static_cast<float>(rng.uniform(-1.0, 1.0));
        }
        std::vector<std::uint8_t> reference(n, 255);
        std::size_t referenceOnes = 0;
        {
            BackendGuard guard(Backend::Scalar);
            referenceOnes = kernels::lessEqualMask(
                values.data(), n, threshold, reference.data());
        }
        std::size_t plainOnes = 0;
        for (std::size_t i = 0; i < n; ++i)
            plainOnes += values[i] <= threshold ? 1u : 0u;
        EXPECT_EQ(referenceOnes, plainOnes);

        for (Backend backend : supportedBackends()) {
            BackendGuard guard(backend);
            std::vector<std::uint8_t> out(n, 255);
            const std::size_t ones = kernels::lessEqualMask(
                values.data(), n, threshold, out.data());
            EXPECT_EQ(ones, referenceOnes)
                << kernels::backendName(backend) << " n " << n;
            ASSERT_EQ(out, reference)
                << kernels::backendName(backend) << " n " << n;
        }
    }
}

/** Forward an MLP under one backend; returns the output activations. */
Vec
forwardUnder(Backend backend, const mithra::npu::Mlp &net,
             const Vec &input)
{
    BackendGuard guard(backend);
    return net.forward(input);
}

TEST(KernelsMlp, ForwardBitwiseEqualAcrossBackends)
{
    Rng rng(0x6b65726e36ULL);
    const std::size_t shapes[][3] = {
        {1, 2, 1}, {9, 4, 2}, {18, 16, 2}, {33, 8, 5}, {64, 32, 8}};
    for (const auto &shape : shapes) {
        mithra::npu::Mlp net({shape[0], shape[1], shape[2]});
        mithra::npu::initWeights(net, 0x5eedULL + shape[0]);
        Vec input(shape[0]);
        for (auto &v : input)
            v = static_cast<float>(rng.uniform(0.0, 1.0));

        const Vec reference = forwardUnder(Backend::Scalar, net, input);
        for (Backend backend : supportedBackends()) {
            const Vec out = forwardUnder(backend, net, input);
            ASSERT_EQ(out.size(), reference.size());
            for (std::size_t i = 0; i < out.size(); ++i) {
                ASSERT_EQ(bitsOf(out[i]), bitsOf(reference[i]))
                    << kernels::backendName(backend) << " topology "
                    << shape[0] << "x" << shape[1] << "x" << shape[2];
            }
        }
    }
}

/** Train a small classifier-shaped MLP; returns all logical weights. */
std::vector<float>
trainUnder(Backend backend)
{
    BackendGuard guard(backend);
    mithra::npu::Mlp net({6, 8, 2});
    mithra::npu::initWeights(net, 0x7ea17ULL);

    Rng rng(0xda7aULL);
    mithra::VecBatch inputs, targets;
    for (std::size_t i = 0; i < 96; ++i) {
        Vec in(6);
        for (auto &v : in)
            v = static_cast<float>(rng.uniform(0.0, 1.0));
        const bool hot = in[0] + in[1] > 1.0f;
        inputs.push_back(std::move(in));
        targets.push_back(hot ? Vec{0.9f, 0.1f} : Vec{0.1f, 0.9f});
    }
    mithra::npu::TrainerOptions options;
    options.epochs = 12;
    options.batchSize = 16;
    options.seed = 0x5eedULL;
    mithra::npu::train(net, inputs, targets, options);

    std::vector<float> weights;
    for (std::size_t l = 1; l < net.topology().size(); ++l) {
        for (std::size_t o = 0; o < net.topology()[l]; ++o) {
            for (std::size_t f = 0; f <= net.topology()[l - 1]; ++f)
                weights.push_back(net.weight(l, o, f));
        }
    }
    return weights;
}

TEST(KernelsMlp, TrainingBitwiseEqualAcrossBackends)
{
    const std::vector<float> reference = trainUnder(Backend::Scalar);
    for (Backend backend : supportedBackends()) {
        const std::vector<float> weights = trainUnder(backend);
        ASSERT_EQ(weights.size(), reference.size());
        for (std::size_t i = 0; i < weights.size(); ++i) {
            ASSERT_EQ(bitsOf(weights[i]), bitsOf(reference[i]))
                << kernels::backendName(backend) << " weight " << i;
        }
    }
}

// tsan-labeled: the batch paths must stay bitwise identical at any
// MITHRA_THREADS width (the parallel substrate guarantees ordered
// reductions; the kernels must not break that by sharing state).
TEST(KernelsDeterminism, TrainingIdenticalAcrossThreadWidths)
{
    const std::size_t before = mithra::parallelThreadCount();
    mithra::setParallelThreadCount(1);
    const std::vector<float> reference =
        trainUnder(kernels::activeBackend());
    for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
        mithra::setParallelThreadCount(threads);
        const std::vector<float> weights =
            trainUnder(kernels::activeBackend());
        ASSERT_EQ(weights.size(), reference.size());
        for (std::size_t i = 0; i < weights.size(); ++i) {
            ASSERT_EQ(bitsOf(weights[i]), bitsOf(reference[i]))
                << "threads " << threads << " weight " << i;
        }
    }
    mithra::setParallelThreadCount(before);
}

TEST(KernelsDeterminism, QuantizerBatchMatchesScalarEntryPoint)
{
    Rng rng(0x6b65726e37ULL);
    mithra::VecBatch calibration;
    for (std::size_t i = 0; i < 32; ++i) {
        Vec v(5);
        for (auto &x : v)
            x = static_cast<float>(rng.uniform(-3.0, 3.0));
        calibration.push_back(std::move(v));
    }
    mithra::hw::InputQuantizer quantizer;
    quantizer.calibrate(calibration);

    const std::size_t count = 17;
    std::vector<float> flat(5 * count);
    for (auto &x : flat)
        x = static_cast<float>(rng.uniform(-4.0, 4.0));

    std::vector<std::uint8_t> batch(5 * count);
    quantizer.quantizeBatch(flat.data(), count, batch.data());
    for (std::size_t i = 0; i < count; ++i) {
        const Vec row(flat.begin() + static_cast<std::ptrdiff_t>(i * 5),
                      flat.begin()
                          + static_cast<std::ptrdiff_t>((i + 1) * 5));
        const auto codes = quantizer.quantize(row);
        for (std::size_t j = 0; j < 5; ++j)
            ASSERT_EQ(batch[i * 5 + j], codes[j]) << "row " << i;
    }
}

} // namespace
