/**
 * @file
 * Plugin ABI tests: loader rejection paths (ABI mismatch, missing
 * entry points, missing files, duplicate workload names), deterministic
 * MITHRA_PLUGINS registration order, bitwise parity between the
 * statically linked and dlopen-loaded kmeans plugin, the plugin
 * accelerator-backend seam, thread/shard bitwise identity of the full
 * pipeline on a plugin workload (tsan-labeled: drives the shard loop
 * at 8 threads), and the /invoke end-to-end path with a certificate.
 *
 * The kmeans example plugin is linked into this binary *and* loaded
 * as kmeans.so — the parity test drives the C tables directly and
 * compares against the registry-resolved benchmark.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "axbench/benchmark.hh"
#include "axbench/registry.hh"
#include "common/parallel.hh"
#include "core/pipeline.hh"
#include "core/runtime.hh"
#include "core/table_classifier.hh"
#include "mithra_plugin.h"
#include "plugin/host.hh"
#include "plugin/loader.hh"
#include "service/client.hh"
#include "service/server.hh"
#include "telemetry/json.hh"

using namespace mithra;
using namespace mithra::core;

// The statically linked copy of plugins/kmeans/kmeans_plugin.c.
extern "C" {
uint32_t mithra_plugin_abi_version(void);
int mithra_plugin_register(const mithra_host_v1 *host);
}

namespace
{

/**
 * Load the example plugins exactly the way a user would: through the
 * MITHRA_PLUGINS knob and the registry's lazy discovery hook. Runs
 * once; every test goes through here so ordering cannot matter.
 */
void
ensurePluginsLoaded()
{
    static const bool loaded = [] {
        const std::string paths = std::string(MITHRA_TEST_PLUGIN_KMEANS)
            + ":" + MITHRA_TEST_PLUGIN_MINI;
        setenv("MITHRA_PLUGINS", paths.c_str(), 1);
        plugin::enableAutoDiscovery();
        // First resolution anywhere triggers discovery.
        return !axbench::benchmarkNames().empty();
    }();
    ASSERT_TRUE(loaded);
}

} // namespace

TEST(PluginLoader, RejectsAbiMismatch)
{
    EXPECT_DEATH(plugin::loadPlugin(MITHRA_TEST_PLUGIN_ABI_MISMATCH),
                 "ABI v99.*rebuild the plugin against this tree's "
                 "include/mithra_plugin\\.h");
}

TEST(PluginLoader, RejectsSharedObjectWithoutEntryPoints)
{
    EXPECT_DEATH(plugin::loadPlugin(MITHRA_TEST_PLUGIN_NO_ENTRY),
                 "is not a MITHRA plugin.*mithra_plugin_abi_version");
}

TEST(PluginLoader, RejectsMissingFile)
{
    EXPECT_DEATH(plugin::loadPlugin("/nonexistent/ghost.so"),
                 "cannot load plugin.*MITHRA_PLUGINS");
}

TEST(PluginLoader, RejectsWorkloadShadowingBuiltin)
{
    EXPECT_DEATH(plugin::loadPlugin(MITHRA_TEST_PLUGIN_SHADOW),
                 "duplicate workload name `sobel'");
}

TEST(PluginLoader, RegistersInEnvOrderAfterBuiltins)
{
    ensurePluginsLoaded();

    const auto plugins = plugin::loadedPlugins();
    ASSERT_EQ(plugins.size(), 2u);
    EXPECT_EQ(plugins[0].path, MITHRA_TEST_PLUGIN_KMEANS);
    EXPECT_EQ(plugins[0].abiVersion, MITHRA_PLUGIN_ABI_VERSION);
    ASSERT_EQ(plugins[0].workloads,
              std::vector<std::string>{"kmeans"});
    EXPECT_EQ(plugins[1].path, MITHRA_TEST_PLUGIN_MINI);
    ASSERT_EQ(plugins[1].workloads,
              std::vector<std::string>{"toyline"});
    ASSERT_EQ(plugins[1].backends, std::vector<std::string>{"mean1"});

    // Built-ins keep Table I order; plugin workloads follow in
    // MITHRA_PLUGINS order. This exact sequence is the determinism
    // contract reports and cache keys rely on.
    const std::vector<std::string> expected{
        "blackscholes", "fft", "inversek2j", "jmeint",
        "jpeg",         "sobel", "kmeans",   "toyline"};
    EXPECT_EQ(axbench::benchmarkNames(), expected);

    // Idempotent: a second pass over the same env loads nothing new.
    EXPECT_EQ(plugin::loadFromEnv(), 0u);
    EXPECT_EQ(plugin::loadedPlugins().size(), 2u);
}

TEST(PluginLoader, ProvenanceFeedsCacheTag)
{
    ensurePluginsLoaded();
    auto &registry = axbench::WorkloadRegistry::global();
    EXPECT_EQ(registry.cacheTag("inversek2j"), "");
    EXPECT_EQ(registry.provenance("kmeans").origin,
              MITHRA_TEST_PLUGIN_KMEANS);
    EXPECT_EQ(registry.cacheTag("kmeans"), "kmeans@v1");
}

TEST(PluginWorkload, ExposesCustomMetric)
{
    ensurePluginsLoaded();
    const auto bench = axbench::makeBenchmark("kmeans");
    EXPECT_EQ(bench->name(), "kmeans");
    EXPECT_EQ(bench->domain(), "Machine Learning");
    EXPECT_EQ(bench->metric(), axbench::QualityMetric::Custom);
    EXPECT_EQ(bench->metricLabel(), "Cluster Miss Rate");
    EXPECT_EQ(bench->npuTopology(), (npu::Topology{6, 8, 1}));

    // The custom loss: identical assignments -> 0, one of four
    // flipped -> 25%.
    axbench::FinalOutput a{{0.0f, 1.0f, 2.0f, 3.0f}};
    axbench::FinalOutput b{{0.0f, 1.0f, 2.0f, 0.0f}};
    EXPECT_EQ(bench->qualityLoss(a, a), 0.0);
    EXPECT_EQ(bench->qualityLoss(a, b), 25.0);
}

TEST(PluginStaticParity, DlopenMatchesStaticLinkBitwise)
{
    ensurePluginsLoaded();
    ASSERT_EQ(mithra_plugin_abi_version(), MITHRA_PLUGIN_ABI_VERSION);

    // Capture the statically linked plugin's table with a local host
    // that records instead of registering (the name "kmeans" is
    // already taken by the dlopen copy).
    static mithra_workload_v1 captured;
    static bool capturedOne = false;
    mithra_host_v1 host;
    std::memset(&host, 0, sizeof(host));
    host.abi_version = MITHRA_PLUGIN_ABI_VERSION;
    host.struct_size = sizeof(host);
    host.register_workload = [](void *, const mithra_workload_v1 *w) {
        captured = *w;
        capturedOne = true;
        return 0;
    };
    host.register_backend = [](void *, const mithra_backend_v1 *) {
        return 0;
    };
    ASSERT_EQ(mithra_plugin_register(&host), 0);
    ASSERT_TRUE(capturedOne);
    const mithra_workload_v1 &w = captured;

    const auto bench = axbench::makeBenchmark("kmeans");
    for (std::size_t d = 0; d < 2; ++d) {
        SCOPED_TRACE("dataset " + std::to_string(d));
        const std::uint64_t seed = axbench::compileSeed("kmeans", d);

        void *raw = w.dataset_create(w.ctx, seed);
        ASSERT_NE(raw, nullptr);
        const std::size_t n = w.dataset_invocations(w.ctx, raw);

        const auto dataset = bench->makeDataset(seed);
        const auto trace = bench->trace(*dataset);
        ASSERT_EQ(trace.count(), n);

        std::vector<float> input(w.input_width);
        std::vector<float> output(w.output_width);
        std::vector<float> precise;
        precise.reserve(n * w.output_width);
        for (std::size_t i = 0; i < n; ++i) {
            w.dataset_input(w.ctx, raw, i, input.data());
            w.target_function(w.ctx, input.data(), output.data());
            ASSERT_EQ(std::memcmp(trace.input(i).data(), input.data(),
                                  input.size() * sizeof(float)),
                      0)
                << "input " << i;
            ASSERT_EQ(std::memcmp(trace.preciseOutput(i).data(),
                                  output.data(),
                                  output.size() * sizeof(float)),
                      0)
                << "output " << i;
            precise.insert(precise.end(), output.begin(), output.end());
        }

        // Final-output parity: all-precise recompose both ways.
        const auto viaHost = bench->recompose(
            *dataset, trace, std::vector<std::uint8_t>(n, 0));
        const std::size_t finalCount = w.final_size(w.ctx, raw);
        ASSERT_EQ(viaHost.elements.size(), finalCount);
        std::vector<float> viaTable(finalCount);
        w.recompose(w.ctx, raw, precise.data(), n, viaTable.data());
        EXPECT_EQ(std::memcmp(viaHost.elements.data(), viaTable.data(),
                              finalCount * sizeof(float)),
                  0);

        w.dataset_destroy(w.ctx, raw);
    }
}

TEST(PluginBackend, TrainsInvokesAndCosts)
{
    ensurePluginsLoaded();
    const auto bench = axbench::makeBenchmark("toyline");
    const auto accel = bench->makeAccelerator();
    ASSERT_NE(accel, nullptr);
    EXPECT_EQ(accel->kind(), "mean1");
    EXPECT_FALSE(accel->trained());

    // mean1 memorizes the mean training output: mean of {1, 2, 3} = 2,
    // MSE = variance = 2/3.
    const VecBatch inputs{{0.0f, 0.0f}, {1.0f, 0.0f}, {0.0f, 1.0f}};
    const VecBatch outputs{{1.0f}, {2.0f}, {3.0f}};
    const double mse = accel->trainToMimic(inputs, outputs, 0x5eed);
    EXPECT_NEAR(mse, 2.0 / 3.0, 1e-9);
    EXPECT_TRUE(accel->trained());

    const Vec predicted = accel->invoke({0.5f, 0.5f});
    ASSERT_EQ(predicted.size(), 1u);
    EXPECT_FLOAT_EQ(predicted[0], 2.0f);

    const auto cost = accel->invocationCost();
    EXPECT_EQ(cost.cycles, 12u);
    EXPECT_EQ(cost.picoJoules, 4.5);
}

namespace
{

/** Small, fast pipeline configuration (mirrors test_runtime). */
PipelineOptions
kmeansOptions()
{
    PipelineOptions options;
    options.compileDatasetCount = 12;
    options.npuTrainSamples = 2000;
    options.classifierTuples = 10000;
    options.maxCalibrationRounds = 1;
    return options;
}

QualitySpec
kmeansSpec()
{
    QualitySpec spec;
    spec.maxQualityLossPct = 5.0; // <= 5% of points misassigned
    spec.confidence = 0.9;
    spec.successRate = 0.6;
    return spec;
}

/** One compiled kmeans workload shared by the identity sweeps. */
struct KmeansEnv
{
    CompiledWorkload workload;
    QualitySpec spec = kmeansSpec();
    double threshold = 0.0;
    std::unique_ptr<TableClassifier> table;
    ValidationSet validation;
};

KmeansEnv &
kmeansEnv()
{
    static KmeansEnv *shared = [] {
        ensurePluginsLoaded();
        const Pipeline pipeline(kmeansOptions());
        auto *e = new KmeansEnv{pipeline.compile("kmeans")};
        const ThresholdResult threshold =
            pipeline.tuneThreshold(e->workload, e->spec);
        e->threshold = threshold.threshold;
        auto table = pipeline.tuneTable(e->workload, e->spec, threshold);
        e->table = std::move(table.classifier);
        e->validation = makeValidationSet(e->workload, 8);
        return e;
    }();
    return *shared;
}

DesignEvaluation
runKmeansEval(std::size_t shards, std::size_t threads)
{
    KmeansEnv &e = kmeansEnv();
    setParallelThreadCount(threads);
    EvaluationOptions options;
    options.shards = shards;
    const Evaluator evaluator(e.workload, e.spec, e.threshold, options);
    TableClassifier copy = *e.table;
    DesignEvaluation eval = evaluator.evaluate(copy, e.validation);
    setParallelThreadCount(1);
    return eval;
}

/** Every aggregate the evaluation reports, compared bitwise. */
void
expectIdentical(const DesignEvaluation &a, const DesignEvaluation &b)
{
    EXPECT_EQ(a.meanQualityLoss, b.meanQualityLoss);
    EXPECT_EQ(a.p99QualityLoss, b.p99QualityLoss);
    EXPECT_EQ(a.successes, b.successes);
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.successLowerBound, b.successLowerBound);
    EXPECT_EQ(a.invocationRate, b.invocationRate);
    EXPECT_EQ(a.speedup, b.speedup);
    EXPECT_EQ(a.energyReduction, b.energyReduction);
    EXPECT_EQ(a.edpImprovement, b.edpImprovement);
    EXPECT_EQ(a.totals.cycles, b.totals.cycles);
    EXPECT_EQ(a.totals.energyPj, b.totals.energyPj);
}

} // namespace

TEST(PluginPipeline, KmeansBitwiseIdenticalAcrossShardsAndThreads)
{
    // The determinism contract applies to plugin workloads unchanged:
    // bit-for-bit identical aggregates at any MITHRA_THREADS and (with
    // the watchdog off) any MITHRA_SHARDS.
    const DesignEvaluation reference = runKmeansEval(1, 1);
    for (const std::size_t shards : {1u, 5u}) {
        for (const std::size_t threads : {1u, 2u, 8u}) {
            SCOPED_TRACE("shards=" + std::to_string(shards)
                         + " threads=" + std::to_string(threads));
            const DesignEvaluation eval = runKmeansEval(shards, threads);
            expectIdentical(reference, eval);
            EXPECT_EQ(eval.sharded.shardCount, shards);
        }
    }
}

namespace
{

std::string
waitForJob(service::Server &server, const std::string &id)
{
    for (;;) {
        service::JobSnapshot snap;
        EXPECT_TRUE(server.jobs().snapshot(id, snap));
        if (snap.state == service::JobState::Done)
            return "";
        if (snap.state == service::JobState::Failed)
            return snap.error.empty() ? "failed" : snap.error;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
}

} // namespace

TEST(PluginService, KmeansServesCertifiedInvocations)
{
    ensurePluginsLoaded();
    service::ServerOptions options;
    options.workers = 2;
    service::Server server(options);
    server.start();
    service::HttpClient client(server.port());

    const service::ClientResult submitted = client.post(
        "/jobs",
        "{\"benchmark\": \"kmeans\", \"design\": \"table\", "
        "\"compileDatasets\": 6, \"npuTrainSamples\": 500, "
        "\"classifierTuples\": 5000}");
    ASSERT_TRUE(submitted.ok) << submitted.error;
    ASSERT_EQ(submitted.status, 202) << submitted.body;
    const telemetry::ParseResult parsed =
        telemetry::parseJson(submitted.body);
    ASSERT_TRUE(parsed.ok);
    const std::string id = parsed.value.find("id")->asString();
    ASSERT_EQ(waitForJob(server, id), "");

    // Two rows of kmeans inputs: point xyz ++ centroid xyz.
    const service::ClientResult invoked = client.post(
        "/invoke",
        "{\"model\": \"" + id
            + "\", \"inputs\": [[0.2,0.3,0.4,0.25,0.3,0.4],"
              "[0.7,0.6,0.5,0.2,0.2,0.2]]}");
    ASSERT_TRUE(invoked.ok) << invoked.error;
    ASSERT_EQ(invoked.status, 200) << invoked.body;
    const telemetry::ParseResult reply =
        telemetry::parseJson(invoked.body);
    ASSERT_TRUE(reply.ok);
    EXPECT_EQ(reply.value.find("decisions")->asArray().size(), 2u);
    const telemetry::Json *certificate =
        reply.value.find("certificate");
    ASSERT_NE(certificate, nullptr);
    EXPECT_EQ(
        certificate->find("batch")->find("invocations")->asInt(), 2);

    server.stop();
}
