/**
 * @file
 * Unit tests for the simulation substrate: operation counting, the
 * core cost model and whole-system cost composition.
 */

#include <gtest/gtest.h>

#include "sim/core_model.hh"
#include "sim/opcount.hh"
#include "sim/system_sim.hh"

using namespace mithra;
using namespace mithra::sim;

TEST(OpCount, CountsEachOperatorClass)
{
    resetOpTally();
    Counted<float> a(2.0f), b(3.0f);
    const Counted<float> sum = a + b;
    const Counted<float> product = a * b;
    const Counted<float> quotient = a / b;
    const Counted<float> difference = a - b;
    (void)sum;
    (void)product;
    (void)quotient;
    (void)difference;

    const OpCounts counts = resetOpTally();
    EXPECT_EQ(counts.addSub, 2u);
    EXPECT_EQ(counts.mul, 1u);
    EXPECT_EQ(counts.div, 1u);
}

TEST(OpCount, ComparisonsAndMathFunctions)
{
    resetOpTally();
    Counted<float> x(4.0f);
    const bool less = x < Counted<float>(5.0f);
    EXPECT_TRUE(less);
    const auto root = sqrt(x);
    const auto ex = exp(x);
    const auto lg = log(x);
    const auto sn = sin(x);
    EXPECT_FLOAT_EQ(root.value(), 2.0f);
    (void)ex;
    (void)lg;
    (void)sn;

    const OpCounts counts = resetOpTally();
    EXPECT_EQ(counts.compare, 1u);
    EXPECT_EQ(counts.sqrtOp, 1u);
    EXPECT_EQ(counts.transcendental, 3u);
}

TEST(OpCount, NegationAndMemory)
{
    resetOpTally();
    Counted<float> x(1.0f);
    const auto neg = -x;
    EXPECT_FLOAT_EQ(neg.value(), -1.0f);
    countMemoryOps(5);

    const OpCounts counts = resetOpTally();
    EXPECT_EQ(counts.addSub, 1u);
    EXPECT_EQ(counts.memory, 5u);
}

TEST(OpCount, ScopedCountingNests)
{
    resetOpTally();
    Counted<float> x(1.0f);
    x += Counted<float>(1.0f); // outer op
    {
        ScopedOpCount scope;
        x += Counted<float>(1.0f); // inner op
        EXPECT_EQ(scope.counts().addSub, 1u);
    }
    // After the scope ends, outer + inner are both visible.
    EXPECT_EQ(resetOpTally().addSub, 2u);
}

TEST(OpCount, ArithmeticOnCounts)
{
    OpCounts a;
    a.addSub = 10;
    a.mul = 4;
    OpCounts b;
    b.addSub = 2;
    b.memory = 8;

    const OpCounts sum = a + b;
    EXPECT_EQ(sum.addSub, 12u);
    EXPECT_EQ(sum.mul, 4u);
    EXPECT_EQ(sum.memory, 8u);
    EXPECT_EQ(sum.total(), 24u);

    const OpCounts diff = sum - b;
    EXPECT_EQ(diff.addSub, a.addSub);

    const OpCounts half = sum.scaled(0.5);
    EXPECT_EQ(half.addSub, 6u);
    EXPECT_EQ(half.mul, 2u);
}

TEST(CoreModel, CycleWeightsApplied)
{
    CoreParams params;
    params.ilpFactor = 1.0;
    params.branchMispredictRate = 0.0;
    const CoreModel core(params);

    OpCounts ops;
    ops.addSub = 10;
    EXPECT_DOUBLE_EQ(core.cycles(ops), 10.0 * params.addSubCycles);

    OpCounts divs;
    divs.div = 3;
    EXPECT_DOUBLE_EQ(core.cycles(divs), 3.0 * params.divCycles);
}

TEST(CoreModel, IlpDividesThroughput)
{
    CoreParams params;
    params.ilpFactor = 2.0;
    params.branchMispredictRate = 0.0;
    const CoreModel core(params);
    OpCounts ops;
    ops.addSub = 100;
    EXPECT_DOUBLE_EQ(core.cycles(ops), 50.0);
}

TEST(CoreModel, MispredictionsBypassIlp)
{
    CoreParams params;
    params.ilpFactor = 4.0;
    params.branchMispredictRate = 0.1;
    params.mispredictPenaltyCycles = 10.0;
    const CoreModel core(params);
    OpCounts ops;
    ops.compare = 100;
    // 100 compares / 4 ILP + 100 * 0.1 * 10 penalty.
    EXPECT_DOUBLE_EQ(core.cycles(ops), 25.0 + 100.0);
}

TEST(CoreModel, EnergyAndTime)
{
    const CoreModel core;
    EXPECT_DOUBLE_EQ(core.energyPj(10.0),
                     10.0 * core.params().picoJoulesPerCycle);
    EXPECT_NEAR(core.seconds(2.08e9), 1.0, 1e-9);
}

namespace
{

RegionProfile
exampleProfile()
{
    RegionProfile profile;
    profile.preciseCycles = 100.0;
    profile.preciseEnergyPj = 200000.0;
    profile.accelCycles = 25.0;
    profile.accelEnergyPj = 1000.0;
    profile.invocationsPerDataset = 1000;
    profile.otherCyclesPerDataset = 50000.0;
    profile.otherEnergyPjPerDataset = 1.0e8;
    return profile;
}

} // namespace

TEST(SystemSim, BaselineComposition)
{
    const SystemSimulator system{CoreModel{}};
    const auto profile = exampleProfile();
    const auto totals = system.baseline(profile);
    EXPECT_DOUBLE_EQ(totals.cycles, 50000.0 + 1000 * 100.0);
    EXPECT_DOUBLE_EQ(totals.energyPj, 1.0e8 + 1000 * 200000.0);
}

TEST(SystemSim, FullApproxFasterThanBaseline)
{
    const SystemSimulator system{CoreModel{}};
    const auto profile = exampleProfile();
    const auto baseline = system.baseline(profile);
    const auto approx = system.fullApprox(profile);
    EXPECT_LT(approx.cycles, baseline.cycles);
    EXPECT_GT(speedup(baseline, approx), 1.0);
}

TEST(SystemSim, RunAllPreciseCostsMoreThanBaseline)
{
    // Routing everything to the precise path still pays the branch
    // and classifier overhead: MITHRA can never beat the baseline at
    // a 0% invocation rate.
    const SystemSimulator system{CoreModel{}};
    const auto profile = exampleProfile();
    ClassifierCost cost;
    cost.extraCyclesPrecise = 2.0;
    const auto run = system.run(profile, cost, 0, 1000);
    EXPECT_GT(run.cycles, system.baseline(profile).cycles);
}

TEST(SystemSim, RunInterpolatesWithInvocations)
{
    const SystemSimulator system{CoreModel{}};
    const auto profile = exampleProfile();
    const ClassifierCost cost;
    const auto none = system.run(profile, cost, 0, 1000);
    const auto half = system.run(profile, cost, 500, 500);
    const auto all = system.run(profile, cost, 1000, 0);
    EXPECT_GT(none.cycles, half.cycles);
    EXPECT_GT(half.cycles, all.cycles);
}

TEST(SystemSim, ClassifierEnergyChargedPerInvocation)
{
    const SystemSimulator system{CoreModel{}};
    const auto profile = exampleProfile();
    ClassifierCost expensive;
    expensive.energyPjPerInvocation = 500.0;
    const ClassifierCost free;
    const auto cheap = system.run(profile, free, 500, 500);
    const auto costly = system.run(profile, expensive, 500, 500);
    EXPECT_NEAR(costly.energyPj - cheap.energyPj, 1000 * 500.0, 1e-6);
}

TEST(SystemSim, RatioHelpers)
{
    RunTotals a{1000.0, 2000.0};
    RunTotals b{500.0, 500.0};
    EXPECT_DOUBLE_EQ(speedup(a, b), 2.0);
    EXPECT_DOUBLE_EQ(energyReduction(a, b), 4.0);
    EXPECT_DOUBLE_EQ(edpImprovement(a, b), 8.0);
    EXPECT_DOUBLE_EQ(a.edp(), 2.0e6);
}

TEST(SystemSim, DecisionCountMismatchPanics)
{
    const SystemSimulator system{CoreModel{}};
    const auto profile = exampleProfile();
    EXPECT_DEATH(system.run(profile, ClassifierCost{}, 1, 1),
                 "decision counts");
}
