/**
 * @file
 * Unit tests for the NPU substrate: MLP forward pass, offline trainer,
 * the scaled approximator and the cycle/energy cost model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "npu/approximator.hh"
#include "npu/cost_model.hh"
#include "npu/mlp.hh"
#include "npu/trainer.hh"

using namespace mithra;
using namespace mithra::npu;

TEST(Mlp, TopologyNameFormat)
{
    EXPECT_EQ(topologyName({6, 8, 3, 1}), "6->8->3->1");
    EXPECT_EQ(topologyName({2, 8, 2}), "2->8->2");
}

TEST(Mlp, ForwardOutputWidth)
{
    Mlp mlp({3, 5, 2});
    const Vec out = mlp.forward({0.1f, 0.2f, 0.3f});
    EXPECT_EQ(out.size(), 2u);
}

TEST(Mlp, ZeroWeightsGiveSigmoidOfZero)
{
    Mlp mlp({2, 2});
    const Vec out = mlp.forward({1.0f, -1.0f});
    EXPECT_FLOAT_EQ(out[0], 0.5f);
    EXPECT_FLOAT_EQ(out[1], 0.5f);
}

TEST(Mlp, SingleNeuronComputesSigmoid)
{
    Mlp mlp({1, 1});
    mlp.setWeight(1, 0, 0, 2.0f); // input weight
    mlp.setWeight(1, 0, 1, 0.5f); // bias
    const Vec out = mlp.forward({1.5f});
    const float expected = 1.0f / (1.0f + std::exp(-(2.0f * 1.5f
                                                     + 0.5f)));
    EXPECT_NEAR(out[0], expected, 1e-6f);
}

TEST(Mlp, WeightCountFormula)
{
    // Paper Table I topologies.
    EXPECT_EQ(Mlp({6, 8, 3, 1}).weightCount(),
              8u * 7 + 3u * 9 + 1u * 4);
    EXPECT_EQ(Mlp({64, 16, 64}).weightCount(), 16u * 65 + 64u * 17);
}

TEST(Mlp, MacsAndSigmoidsPerForward)
{
    Mlp mlp({2, 8, 2});
    EXPECT_EQ(mlp.macsPerForward(), 8u * 3 + 2u * 9);
    EXPECT_EQ(mlp.sigmoidsPerForward(), 10u);
    EXPECT_EQ(mlp.sizeBytes(), mlp.weightCount() * 4);
}

TEST(Mlp, WeightAccessorsRoundTrip)
{
    Mlp mlp({2, 3, 1});
    mlp.setWeight(1, 2, 0, 0.25f);
    mlp.setWeight(2, 0, 3, -1.5f); // output bias
    EXPECT_FLOAT_EQ(mlp.weight(1, 2, 0), 0.25f);
    EXPECT_FLOAT_EQ(mlp.weight(2, 0, 3), -1.5f);
}

TEST(Trainer, InitWeightsDeterministic)
{
    Mlp a({4, 8, 2}), b({4, 8, 2});
    initWeights(a, 7);
    initWeights(b, 7);
    EXPECT_EQ(a.layerWeights(1), b.layerWeights(1));
    EXPECT_EQ(a.layerWeights(2), b.layerWeights(2));
}

TEST(Trainer, InitWeightsBounded)
{
    Mlp mlp({4, 8, 2});
    initWeights(mlp, 9);
    for (std::size_t l = 1; l < 3; ++l)
        for (float w : mlp.layerWeights(l))
            EXPECT_LE(std::fabs(w), 1.0f);
}

TEST(Trainer, LearnsXor)
{
    const VecBatch inputs = {{0.f, 0.f}, {0.f, 1.f}, {1.f, 0.f},
                             {1.f, 1.f}};
    const VecBatch targets = {{0.1f}, {0.9f}, {0.9f}, {0.1f}};

    Mlp mlp({2, 4, 1});
    initWeights(mlp, 3);
    TrainerOptions options;
    options.epochs = 3000;
    options.learningRate = 0.5f;
    options.batchSize = 4;
    const double mse = train(mlp, inputs, targets, options);
    EXPECT_LT(mse, 0.01);

    EXPECT_LT(mlp.forward({0.f, 0.f})[0], 0.4f);
    EXPECT_GT(mlp.forward({0.f, 1.f})[0], 0.6f);
    EXPECT_GT(mlp.forward({1.f, 0.f})[0], 0.6f);
    EXPECT_LT(mlp.forward({1.f, 1.f})[0], 0.4f);
}

TEST(Trainer, LearnsSmoothFunction)
{
    // Regression on sin over [0, 1] (scaled into the sigmoid band).
    Rng rng(5);
    VecBatch inputs, targets;
    for (int i = 0; i < 400; ++i) {
        const float x = static_cast<float>(rng.uniform());
        inputs.push_back({x});
        targets.push_back(
            {0.1f + 0.8f * 0.5f * (1.0f + std::sin(6.28f * x))});
    }
    Mlp mlp({1, 8, 1});
    initWeights(mlp, 4);
    TrainerOptions options;
    options.epochs = 900;
    options.learningRate = 0.5f;
    options.lrDecay = 0.997f;
    const double mse = train(mlp, inputs, targets, options);
    EXPECT_LT(mse, 0.01);
}

TEST(Trainer, EarlyStopOnTargetMse)
{
    const VecBatch inputs = {{0.f}, {1.f}};
    const VecBatch targets = {{0.5f}, {0.5f}};
    Mlp mlp({1, 2, 1});
    initWeights(mlp, 6);
    TrainerOptions options;
    options.epochs = 100000; // would take long without early stop
    options.targetMse = 0.01;
    const double mse = train(mlp, inputs, targets, options);
    EXPECT_LT(mse, 0.01);
}

TEST(Trainer, MeanSquaredErrorOfPerfectFit)
{
    Mlp mlp({1, 1});
    const VecBatch inputs = {{0.0f}};
    const VecBatch targets = {{0.5f}}; // sigmoid(0) = 0.5 exactly
    EXPECT_NEAR(meanSquaredError(mlp, inputs, targets), 0.0, 1e-12);
}

TEST(Scaler, RoundTripWithinRange)
{
    LinearScaler scaler;
    scaler.fit({{0.0f, -5.0f}, {10.0f, 5.0f}});
    const Vec raw = {2.5f, 0.0f};
    const Vec unit = scaler.toUnit(raw);
    EXPECT_NEAR(unit[0], 0.25f, 1e-6f);
    EXPECT_NEAR(unit[1], 0.5f, 1e-6f);
    const Vec back = scaler.fromUnit(unit);
    EXPECT_NEAR(back[0], raw[0], 1e-5f);
    EXPECT_NEAR(back[1], raw[1], 1e-5f);
}

TEST(Scaler, ClampsOutOfRange)
{
    LinearScaler scaler;
    scaler.fit({{0.0f}, {1.0f}});
    EXPECT_FLOAT_EQ(scaler.toUnit({99.0f})[0], 1.0f);
    EXPECT_FLOAT_EQ(scaler.toUnit({-99.0f})[0], 0.0f);
}

TEST(Approximator, MimicsLinearFunction)
{
    // y = 0.5 x0 + 0.25 x1 over [0, 1]^2 — easily learnable.
    Rng rng(6);
    VecBatch inputs, outputs;
    for (int i = 0; i < 600; ++i) {
        const float x0 = static_cast<float>(rng.uniform());
        const float x1 = static_cast<float>(rng.uniform());
        inputs.push_back({x0, x1});
        outputs.push_back({0.5f * x0 + 0.25f * x1});
    }

    Approximator approximator;
    TrainerOptions options;
    options.epochs = 300;
    options.learningRate = 0.4f;
    const double mse = approximator.trainToMimic({2, 4, 1}, inputs,
                                                 outputs, options);
    EXPECT_LT(mse, 0.002);
    EXPECT_TRUE(approximator.trained());

    double worst = 0.0;
    for (int i = 0; i < 100; ++i) {
        const float x0 = static_cast<float>(rng.uniform());
        const float x1 = static_cast<float>(rng.uniform());
        const float expected = 0.5f * x0 + 0.25f * x1;
        const Vec out = approximator.invoke({x0, x1});
        worst = std::max(worst,
                         std::fabs(static_cast<double>(out[0])
                                   - expected));
    }
    EXPECT_LT(worst, 0.08);
}

TEST(CostModel, InvocationCyclesFormula)
{
    NpuParams params; // 8 PEs, 1 cycle/word, 4 overhead, 1/sigmoid
    const NpuCostModel model(params);

    // 2->8->2: enqueue 2; layer1 one round of (2+1)+1; layer2 one
    // round of (8+1)+1; dequeue 2; overhead 4.
    Mlp mlp({2, 8, 2});
    EXPECT_EQ(model.invocationCycles(mlp), 4u + 2 + (3 + 1) + (9 + 1)
                                               + 2);
}

TEST(CostModel, MorePesNeverSlower)
{
    Mlp mlp({18, 32, 8, 2});
    NpuParams few;
    few.numPes = 2;
    NpuParams many;
    many.numPes = 16;
    EXPECT_GT(NpuCostModel(few).invocationCycles(mlp),
              NpuCostModel(many).invocationCycles(mlp));
}

TEST(CostModel, EnergyScalesWithNetworkSize)
{
    const NpuCostModel model;
    Mlp small({2, 2, 1});
    Mlp large({64, 32, 64});
    EXPECT_LT(model.invocationEnergyPj(small),
              model.invocationEnergyPj(large));
    EXPECT_GT(model.invocationEnergyPj(small), 0.0);
}

TEST(CostModel, CostBundlesMatchPieces)
{
    const NpuCostModel model;
    Mlp mlp({9, 8, 1});
    const auto cost = model.invocationCost(mlp);
    EXPECT_EQ(cost.cycles, model.invocationCycles(mlp));
    EXPECT_DOUBLE_EQ(cost.picoJoules, model.invocationEnergyPj(mlp));
}

/** Table I topologies should all be modeled without surprises. */
class PaperTopology : public ::testing::TestWithParam<Topology>
{
};

TEST_P(PaperTopology, CostsArePositiveAndFinite)
{
    const NpuCostModel model;
    Mlp mlp(GetParam());
    EXPECT_GT(model.invocationCycles(mlp), 0u);
    EXPECT_GT(model.invocationEnergyPj(mlp), 0.0);
    EXPECT_LT(model.invocationCycles(mlp), 10000u);
}

INSTANTIATE_TEST_SUITE_P(
    TableOne, PaperTopology,
    ::testing::Values(Topology{6, 8, 3, 1}, Topology{1, 4, 4, 2},
                      Topology{2, 8, 2}, Topology{18, 32, 8, 2},
                      Topology{64, 16, 64}, Topology{9, 8, 1}));
