/**
 * @file
 * Tests for the six AxBench workloads: kernel correctness against
 * independent references, trace determinism, and the trace/recompose
 * contract every benchmark must satisfy.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "axbench/inversek2j.hh"
#include "axbench/jmeint.hh"
#include "axbench/registry.hh"
#include "common/rng.hh"

using namespace mithra;
using namespace mithra::axbench;

/** Contract tests that every benchmark must pass. */
class BenchmarkContract : public ::testing::TestWithParam<std::string>
{
  protected:
    std::unique_ptr<Benchmark> bench =
        makeBenchmark(GetParam());
};

TEST_P(BenchmarkContract, NameMatchesRegistry)
{
    EXPECT_EQ(bench->name(), GetParam());
}

TEST_P(BenchmarkContract, DatasetsAreDeterministic)
{
    const auto a = bench->makeDataset(123);
    const auto b = bench->makeDataset(123);
    const auto traceA = bench->trace(*a);
    const auto traceB = bench->trace(*b);
    ASSERT_EQ(traceA.count(), traceB.count());
    for (std::size_t i = 0; i < std::min<std::size_t>(traceA.count(), 50);
         ++i) {
        const auto inA = traceA.input(i);
        const auto inB = traceB.input(i);
        for (std::size_t k = 0; k < inA.size(); ++k)
            EXPECT_FLOAT_EQ(inA[k], inB[k]);
    }
}

TEST_P(BenchmarkContract, DifferentSeedsGiveDifferentData)
{
    // fft's accelerator inputs are butterfly angles (dataset
    // independent); seed diversity must then show up in the final
    // application output instead.
    const auto a = bench->makeDataset(1);
    const auto b = bench->makeDataset(2);
    const auto traceA = bench->trace(*a);
    const auto traceB = bench->trace(*b);
    bool anyDifferent = false;
    for (std::size_t i = 0;
         i < std::min<std::size_t>(traceA.count(), 100) && !anyDifferent;
         ++i) {
        const auto inA = traceA.input(i);
        const auto inB = traceB.input(i);
        for (std::size_t k = 0; k < inA.size(); ++k)
            anyDifferent |= inA[k] != inB[k];
    }
    if (!anyDifferent) {
        const auto outA = bench->preciseOutput(*a, traceA);
        const auto outB = bench->preciseOutput(*b, traceB);
        anyDifferent = outA.elements != outB.elements;
    }
    EXPECT_TRUE(anyDifferent);
}

TEST_P(BenchmarkContract, TraceWidthsMatchNpuTopology)
{
    const auto dataset = bench->makeDataset(7);
    const auto trace = bench->trace(*dataset);
    EXPECT_EQ(trace.inputWidth(), bench->npuTopology().front());
    EXPECT_EQ(trace.outputWidth(), bench->npuTopology().back());
    EXPECT_GT(trace.count(), 0u);
}

TEST_P(BenchmarkContract, PreciseRecomposeMatchesItself)
{
    // Recomposing with all-precise decisions must be deterministic
    // and self-consistent.
    const auto dataset = bench->makeDataset(11);
    const auto trace = bench->trace(*dataset);
    const auto a = bench->preciseOutput(*dataset, trace);
    const auto b = bench->preciseOutput(*dataset, trace);
    EXPECT_EQ(a.elements, b.elements);
    EXPECT_FALSE(a.elements.empty());
}

TEST_P(BenchmarkContract, PreciseDecisionsHaveZeroLoss)
{
    const auto dataset = bench->makeDataset(13);
    const auto trace = bench->trace(*dataset);
    const auto reference = bench->preciseOutput(*dataset, trace);
    EXPECT_DOUBLE_EQ(
        qualityLoss(bench->metric(), reference, reference), 0.0);
}

TEST_P(BenchmarkContract, CostsAreMeasuredAndPositive)
{
    const auto costs = bench->measureCosts();
    EXPECT_GT(costs.targetOpsPerInvocation.total(), 0u);
    EXPECT_GT(costs.otherOpsPerDataset.total(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkContract,
                         ::testing::ValuesIn(benchmarkNames()));

TEST(Registry, ListsSixBenchmarks)
{
    EXPECT_EQ(benchmarkNames().size(), 6u);
    EXPECT_EQ(makeAllBenchmarks().size(), 6u);
}

// ---------------------------------------------------------------------
// Kernel-specific correctness against independent references.

TEST(BlackscholesKernel, PutCallParity)
{
    // C - P = S - K e^{-rT} for matched call/put option pairs. The
    // traces expose prices through the benchmark interface.
    const auto bench = makeBenchmark("blackscholes");
    const auto dataset = bench->makeDataset(55);
    const auto trace = bench->trace(*dataset);

    // Find one call and verify parity using a manufactured put: we
    // reconstruct prices directly from the traced kernel instead,
    // checking the price is within no-arbitrage bounds.
    for (std::size_t i = 0; i < std::min<std::size_t>(trace.count(), 200);
         ++i) {
        const auto in = trace.input(i);
        const float spot = in[0], strike = in[1], rate = in[2];
        const float time = in[4], type = in[5];
        const float price = trace.preciseOutput(i)[0];
        const float discounted = strike * std::exp(-rate * time);
        if (type < 0.5f) {
            // Call: max(S - Ke^{-rT}, 0) <= C <= S.
            EXPECT_GE(price, std::max(spot - discounted, 0.0f) - 0.01f);
            EXPECT_LE(price, spot + 0.01f);
        } else {
            // Put: max(Ke^{-rT} - S, 0) <= P <= Ke^{-rT}.
            EXPECT_GE(price, std::max(discounted - spot, 0.0f) - 0.01f);
            EXPECT_LE(price, discounted + 0.01f);
        }
    }
}

TEST(InverseK2JKernel, ForwardInverseRoundTrip)
{
    // Applying forward kinematics to the traced angles must recover
    // the traced target coordinates.
    const auto bench = makeBenchmark("inversek2j");
    const auto dataset = bench->makeDataset(66);
    const auto trace = bench->trace(*dataset);
    for (std::size_t i = 0; i < std::min<std::size_t>(trace.count(), 200);
         ++i) {
        const auto in = trace.input(i);
        const auto out = trace.preciseOutput(i);
        float x, y;
        InverseK2J::forward(out[0], out[1], x, y);
        EXPECT_NEAR(x, in[0], 1e-3f);
        EXPECT_NEAR(y, in[1], 1e-3f);
    }
}

TEST(JmeintKernel, KnownIntersectingTriangles)
{
    // Two triangles crossing through each other.
    const float vertices[18] = {
        // Triangle in the z = 0 plane.
        -1.0f, -1.0f, 0.0f, 1.0f, -1.0f, 0.0f, 0.0f, 1.0f, 0.0f,
        // Triangle pierced through it, spanning z = -1..1.
        0.0f, 0.0f, -1.0f, 0.2f, 0.0f, 1.0f, -0.2f, 0.2f, 1.0f};
    EXPECT_TRUE(Jmeint::trianglesIntersect(vertices));
}

TEST(JmeintKernel, KnownSeparatedTriangles)
{
    const float vertices[18] = {
        -1.0f, -1.0f, 0.0f, 1.0f, -1.0f, 0.0f, 0.0f, 1.0f, 0.0f,
        // Far away in z.
        -1.0f, -1.0f, 5.0f, 1.0f, -1.0f, 5.0f, 0.0f, 1.0f, 5.0f};
    EXPECT_FALSE(Jmeint::trianglesIntersect(vertices));
}

TEST(JmeintKernel, SharedPlaneSeparated)
{
    // Coplanar but disjoint triangles.
    const float vertices[18] = {
        0.0f, 0.0f, 0.0f, 1.0f, 0.0f, 0.0f, 0.0f, 1.0f, 0.0f,
        5.0f, 5.0f, 0.0f, 6.0f, 5.0f, 0.0f, 5.0f, 6.0f, 0.0f};
    EXPECT_FALSE(Jmeint::trianglesIntersect(vertices));
}

TEST(JmeintKernel, CoplanarOverlapping)
{
    const float vertices[18] = {
        0.0f, 0.0f, 0.0f, 2.0f, 0.0f, 0.0f, 0.0f, 2.0f, 0.0f,
        0.5f, 0.5f, 0.0f, 2.5f, 0.5f, 0.0f, 0.5f, 2.5f, 0.0f};
    EXPECT_TRUE(Jmeint::trianglesIntersect(vertices));
}

TEST(FftKernel, MatchesNaiveDft)
{
    // The fft benchmark's precise recompose must equal a textbook DFT
    // of the same signal.
    const auto bench = makeBenchmark("fft");
    const auto dataset = bench->makeDataset(77);
    const auto trace = bench->trace(*dataset);
    const auto spectrum = bench->preciseOutput(*dataset, trace);

    const std::size_t n = spectrum.elements.size() / 2;

    // Recover the input signal via the inverse DFT of the output and
    // check Parseval-style consistency on a few bins instead of
    // recomputing the whole O(n^2) DFT (slow in a unit test): check
    // bin 0 equals the signal sum.
    // The trace exposes only twiddles, so reconstruct the signal sum
    // from spectrum bin 0 = sum of inputs.
    double re0 = spectrum.elements[0];
    double sumCheck = 0.0;
    // The spectrum of a real signal obeys conjugate symmetry:
    // X[k] = conj(X[n-k]).
    for (std::size_t k = 1; k < std::min<std::size_t>(n / 2, 64); ++k) {
        const double reK = spectrum.elements[2 * k];
        const double imK = spectrum.elements[2 * k + 1];
        const double reNk = spectrum.elements[2 * (n - k)];
        const double imNk = spectrum.elements[2 * (n - k) + 1];
        EXPECT_NEAR(reK, reNk, 2e-2 * (1.0 + std::fabs(reK)));
        EXPECT_NEAR(imK, -imNk, 2e-2 * (1.0 + std::fabs(imK)));
    }
    (void)re0;
    (void)sumCheck;

    // DC bin has no imaginary part for a real signal.
    EXPECT_NEAR(spectrum.elements[1], 0.0, 1e-2);
}

TEST(SobelKernel, FlatImageHasNoEdges)
{
    // A constant image produces zero gradient magnitude everywhere.
    const auto bench = makeBenchmark("sobel");
    const auto dataset = bench->makeDataset(88);
    auto trace = bench->trace(*dataset);

    // Build a synthetic all-equal window invocation check through the
    // recompose path: every traced output must lie in [0, 1].
    for (std::size_t i = 0; i < std::min<std::size_t>(trace.count(), 500);
         ++i) {
        const float magnitude = trace.preciseOutput(i)[0];
        EXPECT_GE(magnitude, 0.0f);
        EXPECT_LE(magnitude, 1.0f);

        // When the window is constant the gradient must be zero.
        const auto in = trace.input(i);
        bool flat = true;
        for (std::size_t k = 1; k < 9; ++k)
            flat &= in[k] == in[0];
        if (flat)
            EXPECT_FLOAT_EQ(magnitude, 0.0f);
    }
}

TEST(JpegBenchmark, PreciseEncodeDecodeIsFaithful)
{
    // The precise codec output at quality 75 must stay close to the
    // source image (RMS under ~10% of full scale for natural scenes).
    const auto bench = makeBenchmark("jpeg");
    const auto dataset = bench->makeDataset(99);
    const auto trace = bench->trace(*dataset);
    const auto decoded = bench->preciseOutput(*dataset, trace);

    // Rebuild the source image pixels from the trace inputs (each
    // invocation carries its block's pixels).
    double sumSq = 0.0;
    std::size_t count = 0;
    for (std::size_t b = 0; b < trace.count(); ++b) {
        const auto blockPixels = trace.input(b);
        for (std::size_t i = 0; i < blockPixels.size(); ++i) {
            // Decoded image is block-major reconstructable; compare
            // via the recompose layout below.
            (void)i;
        }
        count += blockPixels.size();
    }
    ASSERT_EQ(count, decoded.elements.size());

    // Spot check: mean absolute difference between the decoded image
    // and the block inputs, mapped through the same layout.
    // (recompose writes block (bx,by) pixels in row-major order.)
    const std::size_t edge = static_cast<std::size_t>(
        std::lround(std::sqrt(static_cast<double>(
            decoded.elements.size()))));
    const std::size_t blocksPerRow = edge / 8;
    for (std::size_t b = 0; b < trace.count(); ++b) {
        const auto blockPixels = trace.input(b);
        const std::size_t bx = (b % blocksPerRow) * 8;
        const std::size_t by = (b / blocksPerRow) * 8;
        for (std::size_t y = 0; y < 8; ++y) {
            for (std::size_t x = 0; x < 8; ++x) {
                const double src = blockPixels[y * 8 + x];
                const double dec =
                    decoded.elements[(by + y) * edge + bx + x];
                sumSq += (src - dec) * (src - dec);
            }
        }
    }
    const double rms = std::sqrt(
        sumSq / static_cast<double>(decoded.elements.size()));
    EXPECT_LT(rms / 255.0, 0.10);
}
