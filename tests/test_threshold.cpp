/**
 * @file
 * Tests for the statistical threshold optimizer (Algorithm 1) and the
 * training-data generator, using a hermetic synthetic benchmark whose
 * accelerator error structure is fully controlled.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/logging.hh"
#include "common/rng.hh"
#include "core/threshold_optimizer.hh"
#include "core/training_data.hh"

using namespace mithra;
using namespace mithra::core;

namespace
{

/** A dataset holding nothing: all state lives in the traces. */
struct FakeDataset final : axbench::Dataset
{
};

/**
 * A synthetic benchmark: one input element in [0, 1], identity final
 * output (concatenation of chosen scalar outputs), avg-relative-error
 * metric. The accelerator error of invocation i is supplied directly,
 * so tests control the error distribution exactly.
 */
class FakeBenchmark final : public axbench::Benchmark
{
  public:
    std::string name() const override { return "fake"; }
    std::string domain() const override { return "Testing"; }
    axbench::QualityMetric metric() const override
    {
        return axbench::QualityMetric::AvgRelativeError;
    }
    npu::Topology npuTopology() const override { return {1, 2, 1}; }

    std::unique_ptr<axbench::Dataset> makeDataset(
        std::uint64_t) const override
    {
        return std::make_unique<FakeDataset>();
    }

    axbench::InvocationTrace trace(
        const axbench::Dataset &) const override
    {
        mithra::panic("FakeBenchmark traces are built by the test");
    }

    axbench::FinalOutput recompose(
        const axbench::Dataset &, const axbench::InvocationTrace &trace,
        const std::vector<std::uint8_t> &useAccel) const override
    {
        axbench::FinalOutput out;
        for (std::size_t i = 0; i < trace.count(); ++i) {
            const auto chosen = useAccel[i] ? trace.approxOutput(i)
                                            : trace.preciseOutput(i);
            out.elements.push_back(chosen[0]);
        }
        return out;
    }

    axbench::BenchmarkCosts measureCosts() const override
    {
        return {};
    }

    Vec targetFunction(const Vec &) const override
    {
        // Fake precise outputs are fixed at 1.0 (see FakeProblem).
        return {1.0f};
    }
};

/**
 * Build a threshold problem of `datasets` traces with `perDataset`
 * invocations each. Precise outputs are 1.0; the approximate output of
 * invocation i is 1 + error where error is drawn from a two-population
 * mix: mostly small (<= smallError), a fraction large (largeError).
 */
struct FakeProblem
{
    FakeBenchmark benchmark;
    std::vector<std::unique_ptr<axbench::Dataset>> datasets;
    std::vector<std::unique_ptr<axbench::InvocationTrace>> traces;
    ThresholdProblem problem;
};

std::unique_ptr<FakeProblem>
makeFakeProblem(std::size_t datasets, std::size_t perDataset,
                double largeFraction, float smallError,
                float largeError, std::uint64_t seed = 1)
{
    auto fake = std::make_unique<FakeProblem>();
    Rng rng(seed);
    fake->problem.benchmark = &fake->benchmark;
    for (std::size_t d = 0; d < datasets; ++d) {
        fake->datasets.push_back(std::make_unique<FakeDataset>());
        auto trace = std::make_unique<axbench::InvocationTrace>(1, 1);
        for (std::size_t i = 0; i < perDataset; ++i) {
            const float input = static_cast<float>(rng.uniform());
            const bool large = rng.bernoulli(largeFraction);
            const float error = large
                ? largeError
                : static_cast<float>(rng.uniform()) * smallError;
            trace->appendWithApprox({input}, {1.0f}, {1.0f + error});
        }
        fake->traces.push_back(std::move(trace));
        fake->problem.entries.push_back(ThresholdProblem::makeEntry(
            fake->benchmark, *fake->datasets.back(),
            *fake->traces.back()));
    }
    return fake;
}

} // namespace

TEST(ThresholdOptimizer, EntryCachesMaxAbsErrors)
{
    auto fake = makeFakeProblem(2, 50, 0.2, 0.01f, 0.5f);
    for (const auto &entry : fake->problem.entries) {
        ASSERT_EQ(entry.errors.size(), 50u);
        for (std::size_t i = 0; i < entry.errors.size(); ++i) {
            EXPECT_FLOAT_EQ(entry.errors[i],
                            entry.trace->maxAbsError(i));
        }
    }
}

TEST(ThresholdOptimizer, EvaluateAtZeroAcceleratesNothing)
{
    auto fake = makeFakeProblem(5, 100, 0.2, 0.01f, 0.5f);
    QualitySpec spec;
    const ThresholdOptimizer optimizer(spec);
    const auto result = optimizer.evaluate(fake->problem, 0.0);
    EXPECT_EQ(result.successes, 5u);
    EXPECT_DOUBLE_EQ(result.invocationRate, 0.0);
}

TEST(ThresholdOptimizer, EvaluateAboveMaxAcceleratesEverything)
{
    auto fake = makeFakeProblem(5, 100, 0.2, 0.01f, 0.5f);
    QualitySpec spec;
    const ThresholdOptimizer optimizer(spec);
    const auto result = optimizer.evaluate(fake->problem, 1.0);
    EXPECT_DOUBLE_EQ(result.invocationRate, 1.0);
}

TEST(ThresholdOptimizer, InvocationRateMonotoneInThreshold)
{
    auto fake = makeFakeProblem(5, 200, 0.15, 0.02f, 0.6f);
    QualitySpec spec;
    const ThresholdOptimizer optimizer(spec);
    double previous = -1.0;
    for (double th : {0.0, 0.01, 0.05, 0.3, 0.7}) {
        const auto result = optimizer.evaluate(fake->problem, th);
        EXPECT_GE(result.invocationRate, previous);
        previous = result.invocationRate;
    }
}

TEST(ThresholdOptimizer, SeparatesBimodalErrors)
{
    // 10% of invocations err at 0.5; the rest below 0.02. With a 5%
    // relative-error budget the optimizer should settle between the
    // modes, accelerating ~90% of invocations.
    auto fake = makeFakeProblem(40, 300, 0.10, 0.02f, 0.5f);
    QualitySpec spec;
    spec.maxQualityLossPct = 5.0;
    spec.confidence = 0.95;
    spec.successRate = 0.80; // achievable with 40 datasets
    const ThresholdOptimizer optimizer(spec);
    const auto result = optimizer.optimize(fake->problem);

    EXPECT_GE(result.threshold, 0.02);
    EXPECT_LT(result.threshold, 0.5);
    EXPECT_NEAR(result.invocationRate, 0.90, 0.03);
    EXPECT_GE(result.successLowerBound, spec.successRate);
}

TEST(ThresholdOptimizer, FullApproxAcceptedWhenHarmless)
{
    // All errors tiny: the loosest threshold passes everything.
    auto fake = makeFakeProblem(40, 100, 0.0, 0.001f, 0.0f);
    QualitySpec spec;
    spec.maxQualityLossPct = 5.0;
    spec.successRate = 0.80;
    const ThresholdOptimizer optimizer(spec);
    const auto result = optimizer.optimize(fake->problem);
    EXPECT_DOUBLE_EQ(result.invocationRate, 1.0);
}

TEST(ThresholdOptimizer, UnreachableContractFallsToZero)
{
    // Too few datasets for the demanded success rate: the optimizer
    // must report the (still insufficient) all-precise point.
    auto fake = makeFakeProblem(5, 50, 0.1, 0.02f, 0.5f);
    QualitySpec spec;
    spec.successRate = 0.99;
    const ThresholdOptimizer optimizer(spec);
    const auto result = optimizer.optimize(fake->problem);
    EXPECT_DOUBLE_EQ(result.threshold, 0.0);
    EXPECT_LT(result.successLowerBound, 0.99);
}

TEST(ThresholdOptimizer, IterativeAgreesWithBisection)
{
    auto fake = makeFakeProblem(40, 200, 0.10, 0.02f, 0.5f);
    QualitySpec spec;
    spec.successRate = 0.80;
    const ThresholdOptimizer optimizer(spec);
    const auto bisect = optimizer.optimize(fake->problem);
    const auto iterative =
        optimizer.optimizeIterative(fake->problem, 0.01, 0.02);
    // Both must land between the error modes with similar rates.
    EXPECT_NEAR(iterative.invocationRate, bisect.invocationRate, 0.05);
    EXPECT_GE(iterative.successLowerBound, spec.successRate);
}

TEST(TrainingData, LabelsMatchThreshold)
{
    auto fake = makeFakeProblem(10, 100, 0.2, 0.02f, 0.5f);
    const auto data = buildTrainingData(fake->problem, 0.1, 100000, 1);
    ASSERT_FALSE(data.rawInputs.empty());
    EXPECT_EQ(data.rawInputs.size(), data.labels.size());
    // Large errors (0.5) are labeled precise, small ones accelerate.
    EXPECT_NEAR(data.preciseFraction(), 0.2, 0.05);
}

TEST(TrainingData, SamplingHonorsCap)
{
    auto fake = makeFakeProblem(10, 100, 0.2, 0.02f, 0.5f);
    const auto data = buildTrainingData(fake->problem, 0.1, 200, 1);
    EXPECT_LE(data.rawInputs.size(), 400u); // probabilistic cap
    EXPECT_GE(data.rawInputs.size(), 80u);
}

TEST(TrainingData, QuantizedTuplesAlign)
{
    auto fake = makeFakeProblem(5, 100, 0.3, 0.02f, 0.5f);
    const auto data = buildTrainingData(fake->problem, 0.1, 100000, 2);
    hw::InputQuantizer quantizer;
    quantizer.calibrate(data.rawInputs, 8);
    const auto tuples = data.quantized(quantizer);
    ASSERT_EQ(tuples.size(), data.labels.size());
    for (std::size_t i = 0; i < tuples.size(); ++i) {
        EXPECT_EQ(tuples[i].precise, data.labels[i] != 0);
        EXPECT_EQ(tuples[i].codes,
                  quantizer.quantize(data.rawInputs[i]));
    }
}

namespace
{

/**
 * Two offloaded functions sharing one final output: function 0's
 * errors are mostly small, function 1's errors are mostly large, so
 * the greedy tuple should open function 0 wide and clamp function 1.
 */
MultiFunctionProblem
makeTwoFunctionProblem(std::vector<std::unique_ptr<
                           axbench::InvocationTrace>> &keepAlive,
                       std::size_t datasets)
{
    Rng rng(99);
    MultiFunctionProblem problem;
    for (std::size_t d = 0; d < datasets; ++d) {
        MultiFunctionEntry entry;
        for (int f = 0; f < 2; ++f) {
            auto trace =
                std::make_unique<axbench::InvocationTrace>(1, 1);
            for (int i = 0; i < 100; ++i) {
                const double largeFraction = f == 0 ? 0.05 : 0.6;
                const float error = rng.bernoulli(largeFraction)
                    ? 0.5f
                    : 0.01f * static_cast<float>(rng.uniform());
                trace->appendWithApprox(
                    {static_cast<float>(rng.uniform())}, {1.0f},
                    {1.0f + error});
            }
            entry.traces.push_back(trace.get());
            std::vector<float> errors;
            for (std::size_t i = 0; i < trace->count(); ++i)
                errors.push_back(trace->maxAbsError(i));
            entry.errors.push_back(std::move(errors));
            keepAlive.push_back(std::move(trace));
        }
        const auto *t0 = entry.traces[0];
        const auto *t1 = entry.traces[1];
        axbench::FinalOutput precise;
        for (std::size_t i = 0; i < t0->count(); ++i)
            precise.elements.push_back(1.0f);
        for (std::size_t i = 0; i < t1->count(); ++i)
            precise.elements.push_back(1.0f);
        entry.preciseFinal = precise;
        entry.recompose =
            [t0, t1](const std::vector<std::vector<std::uint8_t>>
                         &decisions) {
                axbench::FinalOutput out;
                for (std::size_t i = 0; i < t0->count(); ++i) {
                    out.elements.push_back(
                        decisions[0][i] ? t0->approxOutput(i)[0]
                                        : t0->preciseOutput(i)[0]);
                }
                for (std::size_t i = 0; i < t1->count(); ++i) {
                    out.elements.push_back(
                        decisions[1][i] ? t1->approxOutput(i)[0]
                                        : t1->preciseOutput(i)[0]);
                }
                return out;
            };
        problem.entries.push_back(std::move(entry));
    }
    return problem;
}

} // namespace

TEST(MultiFunctionOptimizer, EvaluateAtZeroIsAllPrecise)
{
    std::vector<std::unique_ptr<axbench::InvocationTrace>> keepAlive;
    const auto problem = makeTwoFunctionProblem(keepAlive, 10);
    QualitySpec spec;
    const MultiFunctionOptimizer optimizer(spec);
    const auto result = optimizer.evaluate(problem, {0.0, 0.0});
    EXPECT_DOUBLE_EQ(result.invocationRate, 0.0);
    EXPECT_EQ(result.successes, 10u);
}

TEST(MultiFunctionOptimizer, GreedyTupleOpensCleanFunctionWide)
{
    std::vector<std::unique_ptr<axbench::InvocationTrace>> keepAlive;
    const auto problem = makeTwoFunctionProblem(keepAlive, 40);
    QualitySpec spec;
    spec.maxQualityLossPct = 5.0;
    spec.successRate = 0.80;
    const MultiFunctionOptimizer optimizer(spec);
    const auto result = optimizer.optimize(problem);

    ASSERT_EQ(result.thresholds.size(), 2u);
    // Function 0 (rarely erring) gets a loose threshold; function 1
    // (often erring) must stay clamped between the error modes.
    EXPECT_GT(result.thresholds[0], 0.4);
    EXPECT_LT(result.thresholds[1], 0.5);
    EXPECT_GE(result.successLowerBound, spec.successRate);
    EXPECT_GT(result.invocationRate, 0.5);
}

TEST(MultiFunctionOptimizer, TupleRespectsJointContract)
{
    std::vector<std::unique_ptr<axbench::InvocationTrace>> keepAlive;
    const auto problem = makeTwoFunctionProblem(keepAlive, 40);
    QualitySpec spec;
    spec.maxQualityLossPct = 5.0;
    spec.successRate = 0.80;
    const MultiFunctionOptimizer optimizer(spec);
    const auto greedy = optimizer.optimize(problem);
    // Re-evaluating the returned tuple reproduces its own metrics.
    const auto check = optimizer.evaluate(problem, greedy.thresholds);
    EXPECT_EQ(check.successes, greedy.successes);
    EXPECT_DOUBLE_EQ(check.invocationRate, greedy.invocationRate);
}
