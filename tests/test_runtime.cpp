/**
 * @file
 * Sharded runtime decision loop tests: shard-plan partition
 * properties, bitwise identity of DesignEvaluation aggregates across
 * MITHRA_SHARDS / MITHRA_THREADS settings (watchdog off), thread-count
 * identity at a fixed shard count (watchdog on), the deterministic
 * evidence merge, and the predicted alpha-split gap of the merged
 * sequential bound. tsan-labeled: the identity tests drive the shard
 * loop at 8 threads.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "common/parallel.hh"
#include "common/rng.hh"
#include "core/pipeline.hh"
#include "core/runtime.hh"
#include "core/shard.hh"
#include "core/table_classifier.hh"
#include "stats/clopper_pearson.hh"
#include "stats/sequential_bound.hh"

using namespace mithra;
using namespace mithra::core;

namespace
{

/** Small, fast pipeline configuration (mirrors test_integration). */
PipelineOptions
testOptions()
{
    PipelineOptions options;
    options.compileDatasetCount = 16;
    options.npuTrainSamples = 3000;
    options.classifierTuples = 20000;
    options.maxCalibrationRounds = 2;
    return options;
}

QualitySpec
testSpec()
{
    QualitySpec spec;
    spec.maxQualityLossPct = 5.0;
    spec.confidence = 0.95;
    spec.successRate = 0.75;
    return spec;
}

/** One compiled workload shared by every test in this binary. */
struct Env
{
    CompiledWorkload workload;
    QualitySpec spec = testSpec();
    double threshold = 0.0;
    std::unique_ptr<TableClassifier> table;
    ValidationSet validation;
};

Env &
env()
{
    static Env *shared = [] {
        const Pipeline pipeline(testOptions());
        auto *e = new Env{pipeline.compile("inversek2j")};
        auto package = pipeline.tune(e->workload, e->spec);
        e->threshold = package.threshold.threshold;
        e->table = std::move(package.table);
        e->validation = makeValidationSet(e->workload, 8);
        return e;
    }();
    return *shared;
}

/**
 * Evaluate a fresh copy of the tuned table classifier (online updates
 * mutate it) under the given shard/thread configuration.
 */
DesignEvaluation
runEval(std::size_t shards, std::size_t threads, bool watchdogOn)
{
    Env &e = env();
    setParallelThreadCount(threads);
    EvaluationOptions options;
    options.shards = shards;
    if (watchdogOn) {
        options.watchdog.enabled = true;
        // Audit densely so the short validation stream still feeds
        // every shard's envelope.
        options.watchdog.baseAuditRate = 0.05;
    }
    const Evaluator evaluator(e.workload, e.spec, e.threshold, options);
    TableClassifier copy = *e.table;
    DesignEvaluation eval = evaluator.evaluate(copy, e.validation);
    setParallelThreadCount(1);
    return eval;
}

/** Every aggregate the evaluation reports, compared bitwise. */
void
expectIdentical(const DesignEvaluation &a, const DesignEvaluation &b)
{
    EXPECT_EQ(a.meanQualityLoss, b.meanQualityLoss);
    EXPECT_EQ(a.p99QualityLoss, b.p99QualityLoss);
    EXPECT_EQ(a.successes, b.successes);
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.successLowerBound, b.successLowerBound);
    EXPECT_EQ(a.invocationRate, b.invocationRate);
    EXPECT_EQ(a.speedup, b.speedup);
    EXPECT_EQ(a.energyReduction, b.energyReduction);
    EXPECT_EQ(a.edpImprovement, b.edpImprovement);
    EXPECT_EQ(a.falsePositiveRate, b.falsePositiveRate);
    EXPECT_EQ(a.falseNegativeRate, b.falseNegativeRate);
    EXPECT_EQ(a.totals.cycles, b.totals.cycles);
    EXPECT_EQ(a.totals.energyPj, b.totals.energyPj);
    EXPECT_EQ(a.baselineTotals.cycles, b.baselineTotals.cycles);
    EXPECT_EQ(a.baselineTotals.energyPj, b.baselineTotals.energyPj);
}

} // namespace

TEST(ShardPlan, PartitionsContiguouslyWithBalancedSizes)
{
    for (const std::size_t total : {0u, 1u, 7u, 64u, 1000u, 1001u}) {
        for (const std::size_t shards : {1u, 2u, 3u, 8u, 13u}) {
            const ShardPlan plan(total, shards);
            EXPECT_EQ(plan.begin(0), 0u);
            EXPECT_EQ(plan.end(shards - 1), total);
            std::size_t covered = 0;
            for (std::size_t k = 0; k < shards; ++k) {
                EXPECT_EQ(plan.begin(k), covered);
                covered += plan.size(k);
                // Balanced: sizes differ by at most one.
                EXPECT_LE(plan.size(k), total / shards + 1);
                EXPECT_GE(plan.size(k) + 1, total / shards);
            }
            EXPECT_EQ(covered, total);
        }
    }
}

TEST(ShardPlan, DefaultShardCountReadsEnvironment)
{
    setenv("MITHRA_SHARDS", "7", 1);
    EXPECT_EQ(defaultShardCount(), 7u);
    unsetenv("MITHRA_SHARDS");
    EXPECT_EQ(defaultShardCount(), parallelThreadCount());
}

TEST(ShardPlan, ShardSeedsAreDistinct)
{
    EXPECT_NE(shardSeed(0xd09ULL, 0), shardSeed(0xd09ULL, 1));
    EXPECT_NE(shardSeed(0xd09ULL, 0), shardSeed(0xd0aULL, 0));
}

TEST(ShardedRuntime, BitwiseIdenticalAcrossShardsAndThreads)
{
    // Watchdog off: the evaluation must be bit-for-bit identical for
    // ANY shard count and ANY thread count (DESIGN.md §12).
    const DesignEvaluation reference = runEval(1, 1, false);
    EXPECT_EQ(reference.sharded.shardCount, 1u);
    for (const std::size_t shards : {1u, 5u}) {
        for (const std::size_t threads : {1u, 2u, 8u}) {
            const DesignEvaluation eval = runEval(shards, threads,
                                                  false);
            SCOPED_TRACE("shards=" + std::to_string(shards)
                         + " threads=" + std::to_string(threads));
            expectIdentical(reference, eval);
            EXPECT_EQ(eval.sharded.shardCount, shards);
        }
    }
}

TEST(ShardedRuntime, WatchdogIdenticalAcrossThreadsAtFixedShards)
{
    // Watchdog on: the shard count is semantic configuration, but the
    // thread count still must not change anything.
    const DesignEvaluation reference = runEval(3, 1, true);
    ASSERT_TRUE(reference.watchdogEnabled);
    ASSERT_EQ(reference.sharded.shards.size(), 3u);
    for (const std::size_t threads : {2u, 8u}) {
        const DesignEvaluation eval = runEval(3, threads, true);
        SCOPED_TRACE("threads=" + std::to_string(threads));
        expectIdentical(reference, eval);
        EXPECT_EQ(eval.watchdog.audits, reference.watchdog.audits);
        EXPECT_EQ(eval.watchdog.violations,
                  reference.watchdog.violations);
        EXPECT_EQ(eval.watchdog.state, reference.watchdog.state);
        for (std::size_t k = 0; k < 3; ++k) {
            const auto &a = reference.sharded.shards[k].watchdog;
            const auto &b = eval.sharded.shards[k].watchdog;
            EXPECT_EQ(a.audits, b.audits);
            EXPECT_EQ(a.violations, b.violations);
            EXPECT_EQ(a.violationLowerBound, b.violationLowerBound);
            EXPECT_EQ(a.violationUpperBound, b.violationUpperBound);
        }
    }
}

TEST(ShardedRuntime, MergedEvidenceIsSlotOrderedReduction)
{
    const DesignEvaluation eval = runEval(4, 2, true);
    ASSERT_TRUE(eval.watchdogEnabled);
    ASSERT_EQ(eval.sharded.shards.size(), 4u);
    EXPECT_EQ(eval.sharded.shardConfidence,
              stats::splitConfidence(0.95, 4));

    std::size_t audits = 0;
    std::size_t violations = 0;
    std::size_t invocations = 0;
    stats::ProportionEnvelope expected;
    for (const ShardReport &shard : eval.sharded.shards) {
        audits += shard.watchdog.audits;
        violations += shard.watchdog.violations;
        invocations += shard.invocations;
        expected = stats::intersectEnvelopes(
            expected, {shard.watchdog.violationLowerBound,
                       shard.watchdog.violationUpperBound});
    }
    EXPECT_EQ(eval.watchdog.audits, audits);
    EXPECT_EQ(eval.watchdog.violations, violations);
    EXPECT_EQ(invocations, env().validation.totalInvocations());
    EXPECT_EQ(eval.sharded.violationEnvelope.lower, expected.lower);
    EXPECT_EQ(eval.sharded.violationEnvelope.upper, expected.upper);
    EXPECT_EQ(eval.watchdog.violationLowerBound, expected.lower);
    EXPECT_EQ(eval.watchdog.violationUpperBound, expected.upper);
    EXPECT_TRUE(eval.sharded.violationEnvelope.valid());
}

TEST(AlphaSplit, SplitConfidenceSpendsAlphaOverShards)
{
    EXPECT_NEAR(stats::splitConfidence(0.95, 1), 0.95, 1e-15);
    EXPECT_NEAR(stats::splitConfidence(0.95, 5), 0.99, 1e-15);
    EXPECT_NEAR(1.0 - stats::splitConfidence(0.9, 8), 0.1 / 8.0,
                1e-15);
}

TEST(AlphaSplit, EnvelopeIntersectionTakesTightestSides)
{
    const stats::ProportionEnvelope merged = stats::intersectEnvelopes(
        {0.2, 0.9}, {0.3, 0.95});
    EXPECT_EQ(merged.lower, 0.3);
    EXPECT_EQ(merged.upper, 0.9);
    EXPECT_TRUE(merged.valid());
    EXPECT_FALSE(
        stats::intersectEnvelopes({0.6, 0.9}, {0.1, 0.4}).valid());
}

TEST(AlphaSplit, MergedBoundWithinPredictedGap)
{
    // A deterministic synthetic audit stream: ~97% successes.
    const double confidence = 0.95;
    const std::size_t n = 20000;
    std::vector<bool> stream(n);
    std::size_t successes = 0;
    for (std::size_t i = 0; i < n; ++i) {
        stream[i] = indexedBernoulli(0x5eedULL, i, 0.97);
        successes += stream[i] ? 1 : 0;
    }

    stats::SequentialBinomialBound single(confidence);
    for (std::size_t i = 0; i < n; ++i)
        single.record(stream[i]);
    const double singleLower = single.lowerBound();
    EXPECT_GT(singleLower, 0.9);

    for (const std::size_t shards : {2u, 8u}) {
        const double shardConfidence =
            stats::splitConfidence(confidence, shards);
        const ShardPlan plan(n, shards);
        double mergedLower = 0.0;
        double predictedLower = 0.0;
        for (std::size_t k = 0; k < shards; ++k) {
            stats::SequentialBinomialBound bound(shardConfidence);
            std::size_t shardSuccesses = 0;
            for (std::size_t i = plan.begin(k); i < plan.end(k); ++i) {
                bound.record(stream[i]);
                shardSuccesses += stream[i] ? 1 : 0;
            }
            if (bound.lowerBound() > mergedLower)
                mergedLower = bound.lowerBound();
            // The one-look predictor of what this shard can certify:
            // its own counts at the split confidence.
            const double oneLook = stats::clopperPearsonLower(
                shardSuccesses, plan.size(k), shardConfidence);
            if (oneLook > predictedLower)
                predictedLower = oneLook;
        }

        // The merge pays two predictable prices versus the single
        // stream: the alpha split (confidence 1 - alpha/N per shard)
        // and the sample split (n/N observations per shard). Both are
        // captured by the one-look Clopper–Pearson predictor, so the
        // sequential merge may not be looser than the single-stream
        // bound by more than that predicted gap (small slack for the
        // look schedules).
        const double predictedGap = stats::clopperPearsonLower(
                                        successes, n, confidence)
            - predictedLower;
        SCOPED_TRACE("shards=" + std::to_string(shards));
        EXPECT_GE(predictedGap, 0.0);
        EXPECT_LT(predictedGap, 0.05);
        EXPECT_GE(mergedLower, singleLower - predictedGap - 0.01);
    }
}

TEST(ShardedRuntime, RunShardedDecisionsMatchesSerialReference)
{
    // Direct equivalence on the primitive: sharded decisions over a
    // real trace equal the serial decidePrecise walk.
    Env &e = env();
    const auto &trace = *e.validation.entries.front().trace;
    RandomFilterClassifier sharded(0.4, 0x1234);
    RandomFilterClassifier serial(0.4, 0x1234);
    sharded.beginDataset(trace);
    serial.beginDataset(trace);

    setParallelThreadCount(4);
    const ShardPlan plan(trace.count(), 6);
    std::vector<watchdog::Watchdog> noDogs;
    DecisionLoopOptions loop;
    loop.oracleThreshold = e.threshold;
    loop.blockSize = 64;
    std::vector<std::uint8_t> decisions(trace.count(), 0);
    std::vector<ShardTally> tallies;
    runShardedDecisions(sharded, trace, plan, noDogs, loop,
                        decisions.data(), tallies);
    setParallelThreadCount(1);

    ASSERT_EQ(tallies.size(), 6u);
    std::size_t accelerated = 0;
    for (std::size_t i = 0; i < trace.count(); ++i) {
        const bool precise = serial.decidePrecise(trace.inputVec(i), i);
        EXPECT_EQ(decisions[i], precise ? 0 : 1);
        accelerated += precise ? 0 : 1;
    }
    std::size_t shardAccel = 0;
    for (const ShardTally &tally : tallies)
        shardAccel += tally.accelerated;
    EXPECT_EQ(shardAccel, accelerated);
}
