/**
 * @file
 * Unit tests for the deterministic random number generator.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"

using namespace mithra;

TEST(Rng, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 4);
}

TEST(Rng, SplitMix64KnownValue)
{
    // First output for state 0 is a published reference value.
    std::uint64_t state = 0;
    EXPECT_EQ(splitMix64(state), 0xe220a8397b1dcdafULL);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespected)
{
    Rng rng(8);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformMeanIsHalf)
{
    Rng rng(9);
    double sum = 0.0;
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowInRange)
{
    Rng rng(10);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, NextBelowCoversAllValues)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextBelow(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NormalMoments)
{
    Rng rng(12);
    constexpr int n = 200000;
    double sum = 0.0, sumSq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sumSq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sumSq / n, 1.0, 0.03);
}

TEST(Rng, NormalShiftScale)
{
    Rng rng(13);
    constexpr int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, LognormalPositive)
{
    Rng rng(14);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(15);
    constexpr int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(2.0);
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(16);
    constexpr int n = 100000;
    int hits = 0;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, PermutationIsValid)
{
    Rng rng(17);
    const auto perm = rng.permutation(100);
    ASSERT_EQ(perm.size(), 100u);
    std::set<std::size_t> seen(perm.begin(), perm.end());
    EXPECT_EQ(seen.size(), 100u);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, PermutationOfZeroAndOne)
{
    Rng rng(18);
    EXPECT_TRUE(rng.permutation(0).empty());
    const auto one = rng.permutation(1);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], 0u);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng parent(19);
    Rng child = parent.fork();
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += parent.next() == child.next();
    EXPECT_LT(equal, 4);
}
