/**
 * @file
 * Service layer tests: the strict HTTP/1.1 parser's edge cases
 * (oversized headers, truncated lines, pipelining, body limits), the
 * socket-free router's error contract, model reproducibility across
 * independently compiled jobs, and a live-socket end-to-end lifecycle
 * with concurrent clients (the tsan-labeled heavy path).
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/client.hh"
#include "service/http.hh"
#include "service/server.hh"
#include "telemetry/json.hh"
#include "telemetry/run_report.hh"

using namespace mithra;
using service::HttpLimits;
using service::HttpRequest;
using service::HttpResponse;
using service::RequestParser;
using Status = service::RequestParser::Status;
using telemetry::Json;

namespace
{

Status
feedAll(RequestParser &parser, const std::string &text)
{
    return parser.feed(text.data(), text.size());
}

Json
bodyOf(const HttpResponse &response)
{
    const telemetry::ParseResult parsed =
        telemetry::parseJson(response.body);
    EXPECT_TRUE(parsed.ok) << parsed.error << "\n" << response.body;
    return parsed.value;
}

} // namespace

TEST(HttpParser, ParsesSimpleGet)
{
    RequestParser parser;
    ASSERT_EQ(feedAll(parser,
                      "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"),
              Status::Complete);
    const HttpRequest &request = parser.request();
    EXPECT_EQ(request.method, "GET");
    EXPECT_EQ(request.target, "/metrics");
    EXPECT_EQ(request.minorVersion, 1);
    EXPECT_TRUE(request.keepAlive);
    ASSERT_NE(request.header("host"), nullptr);
    EXPECT_EQ(*request.header("host"), "x");
}

TEST(HttpParser, AccumulatesByteByByte)
{
    RequestParser parser;
    const std::string text =
        "POST /invoke HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}";
    for (std::size_t i = 0; i + 1 < text.size(); ++i)
        ASSERT_EQ(parser.feed(&text[i], 1), Status::NeedMore) << i;
    ASSERT_EQ(parser.feed(&text[text.size() - 1], 1),
              Status::Complete);
    EXPECT_EQ(parser.request().body, "{}");
}

TEST(HttpParser, TruncatedRequestLineNeedsMore)
{
    RequestParser parser;
    EXPECT_EQ(feedAll(parser, "GET /jo"), Status::NeedMore);
    EXPECT_EQ(feedAll(parser, "bs HTTP/1.1\r\n\r\n"),
              Status::Complete);
    EXPECT_EQ(parser.request().target, "/jobs");
}

TEST(HttpParser, MalformedRequestLineIs400)
{
    RequestParser parser;
    ASSERT_EQ(feedAll(parser, "NOT-A-REQUEST\r\n\r\n"), Status::Error);
    EXPECT_EQ(parser.errorStatus(), 400);
}

TEST(HttpParser, WrongHttpVersionIs505)
{
    RequestParser parser;
    ASSERT_EQ(feedAll(parser, "GET / HTTP/2.0\r\n\r\n"),
              Status::Error);
    EXPECT_EQ(parser.errorStatus(), 505);
}

TEST(HttpParser, Http10DefaultsToClose)
{
    RequestParser parser;
    ASSERT_EQ(feedAll(parser, "GET / HTTP/1.0\r\n\r\n"),
              Status::Complete);
    EXPECT_FALSE(parser.request().keepAlive);
}

TEST(HttpParser, ConnectionCloseDisablesKeepAlive)
{
    RequestParser parser;
    ASSERT_EQ(feedAll(parser,
                      "GET / HTTP/1.1\r\nConnection: close\r\n\r\n"),
              Status::Complete);
    EXPECT_FALSE(parser.request().keepAlive);
}

TEST(HttpParser, OversizedHeaderBlockIs431)
{
    HttpLimits limits;
    limits.maxHeaderBytes = 128;
    RequestParser parser(limits);
    const std::string text = "GET / HTTP/1.1\r\nX-Pad: "
        + std::string(200, 'a') + "\r\n\r\n";
    ASSERT_EQ(feedAll(parser, text), Status::Error);
    EXPECT_EQ(parser.errorStatus(), 431);
}

TEST(HttpParser, TooManyHeadersIs431)
{
    HttpLimits limits;
    limits.maxHeaderCount = 4;
    RequestParser parser(limits);
    std::string text = "GET / HTTP/1.1\r\n";
    for (int i = 0; i < 6; ++i)
        text += "X-H" + std::to_string(i) + ": v\r\n";
    text += "\r\n";
    ASSERT_EQ(feedAll(parser, text), Status::Error);
    EXPECT_EQ(parser.errorStatus(), 431);
}

TEST(HttpParser, ChunkedTransferIs411)
{
    RequestParser parser;
    ASSERT_EQ(feedAll(parser,
                      "POST / HTTP/1.1\r\n"
                      "Transfer-Encoding: chunked\r\n\r\n"),
              Status::Error);
    EXPECT_EQ(parser.errorStatus(), 411);
}

TEST(HttpParser, MalformedContentLengthIs400)
{
    RequestParser parser;
    ASSERT_EQ(feedAll(parser,
                      "POST / HTTP/1.1\r\n"
                      "Content-Length: twelve\r\n\r\n"),
              Status::Error);
    EXPECT_EQ(parser.errorStatus(), 400);
}

TEST(HttpParser, OverLimitBodyIs413)
{
    HttpLimits limits;
    limits.maxBodyBytes = 1024;
    RequestParser parser(limits);
    ASSERT_EQ(feedAll(parser,
                      "POST / HTTP/1.1\r\n"
                      "Content-Length: 2048\r\n\r\n"),
              Status::Error);
    EXPECT_EQ(parser.errorStatus(), 413);
}

TEST(HttpParser, ZeroLengthBodyCompletes)
{
    RequestParser parser;
    ASSERT_EQ(feedAll(parser,
                      "POST /jobs HTTP/1.1\r\n"
                      "Content-Length: 0\r\n\r\n"),
              Status::Complete);
    EXPECT_TRUE(parser.request().body.empty());
}

TEST(HttpParser, PipelinedRequestsParseInOrder)
{
    RequestParser parser;
    ASSERT_EQ(feedAll(parser,
                      "GET /first HTTP/1.1\r\n\r\n"
                      "POST /second HTTP/1.1\r\n"
                      "Content-Length: 3\r\n\r\nabc"),
              Status::Complete);
    EXPECT_EQ(parser.request().target, "/first");
    ASSERT_EQ(parser.next(), Status::Complete);
    EXPECT_EQ(parser.request().target, "/second");
    EXPECT_EQ(parser.request().body, "abc");
    EXPECT_EQ(parser.next(), Status::NeedMore);
}

TEST(HttpParser, SerializedResponseRoundTrips)
{
    HttpResponse response;
    response.status = 429;
    response.body = "{\"error\": \"full\"}";
    const std::string wire = serializeResponse(response, true);
    EXPECT_NE(wire.find("HTTP/1.1 429 Too Many Requests\r\n"),
              std::string::npos);
    EXPECT_NE(wire.find("Content-Length: 17\r\n"), std::string::npos);
    EXPECT_NE(wire.find("Connection: keep-alive\r\n"),
              std::string::npos);
    EXPECT_NE(wire.find("\r\n\r\n{\"error\": \"full\"}"),
              std::string::npos);
}

namespace
{

HttpRequest
makeRequest(const std::string &method, const std::string &target,
            const std::string &body = "")
{
    HttpRequest request;
    request.method = method;
    request.target = target;
    request.body = body;
    return request;
}

} // namespace

TEST(ServiceRouter, HealthzAndUnknownPaths)
{
    service::Server server;
    EXPECT_EQ(server.handle(makeRequest("GET", "/healthz")).status,
              200);
    EXPECT_EQ(server.handle(makeRequest("GET", "/bogus")).status,
              404);
    EXPECT_EQ(server.handle(makeRequest("DELETE", "/jobs")).status,
              405);
    EXPECT_EQ(server.handle(makeRequest("PUT", "/invoke")).status,
              405);
    EXPECT_EQ(server.handle(makeRequest("POST", "/metrics")).status,
              405);
}

TEST(ServiceRouter, RejectsBadJobSpecs)
{
    service::Server server;
    EXPECT_EQ(server.handle(makeRequest("POST", "/jobs", "{nope"))
                  .status,
              400);
    EXPECT_EQ(server
                  .handle(makeRequest("POST", "/jobs",
                                      "{\"benchmark\": \"no-such\"}"))
                  .status,
              400);
    EXPECT_EQ(
        server
            .handle(makeRequest(
                "POST", "/jobs",
                "{\"benchmark\": \"fft\", \"design\": \"magic\"}"))
            .status,
        400);
    EXPECT_EQ(
        server
            .handle(makeRequest(
                "POST", "/jobs",
                "{\"benchmark\": \"fft\", \"shards\": 0}"))
            .status,
        400);
    EXPECT_EQ(
        server
            .handle(makeRequest(
                "POST", "/jobs",
                "{\"benchmark\": \"fft\", \"confidence\": 1.5}"))
            .status,
        400);
}

TEST(ServiceRouter, InvokeErrorsDistinguishMissingFromPending)
{
    service::ServerOptions options;
    options.jobQueueDepth = 8;
    service::Server server(options); // never started: jobs stay queued
    EXPECT_EQ(server
                  .handle(makeRequest("POST", "/invoke",
                                      "{\"model\": \"ghost\"}"))
                  .status,
              404);

    const HttpResponse submitted = server.handle(makeRequest(
        "POST", "/jobs", "{\"benchmark\": \"fft\"}"));
    ASSERT_EQ(submitted.status, 202);
    const std::string id =
        bodyOf(submitted).find("id")->asString();
    const HttpResponse pending = server.handle(makeRequest(
        "POST", "/invoke", "{\"model\": \"" + id + "\"}"));
    EXPECT_EQ(pending.status, 409);
    EXPECT_EQ(server.handle(makeRequest("GET", "/jobs/" + id)).status,
              200);
    EXPECT_EQ(server.handle(makeRequest("GET", "/jobs/nope")).status,
              404);
}

TEST(ServiceRouter, BoundedJobQueueAnswers429)
{
    service::ServerOptions options;
    options.jobQueueDepth = 2;
    service::Server server(options); // never started: nothing drains
    const HttpRequest submit = makeRequest(
        "POST", "/jobs", "{\"benchmark\": \"fft\"}");
    EXPECT_EQ(server.handle(submit).status, 202);
    EXPECT_EQ(server.handle(submit).status, 202);
    EXPECT_EQ(server.handle(submit).status, 429);
}

TEST(ServiceRouter, MetricsDocumentValidates)
{
    service::Server server;
    const HttpResponse response =
        server.handle(makeRequest("GET", "/metrics"));
    ASSERT_EQ(response.status, 200);
    EXPECT_EQ(telemetry::validateMetrics(bodyOf(response)), "");
}

TEST(ServiceRouter, ModelsListStartsEmpty)
{
    service::Server server;
    const HttpResponse response =
        server.handle(makeRequest("GET", "/models"));
    ASSERT_EQ(response.status, 200);
    EXPECT_TRUE(bodyOf(response).find("models")->asArray().empty());
    EXPECT_EQ(server.handle(makeRequest("GET", "/models/none")).status,
              404);
}

namespace
{

/** Tiny certifiable-in-seconds spec for the end-to-end tests. */
std::string
tinyJobSpec()
{
    return "{\"benchmark\": \"inversek2j\", \"design\": \"table\", "
           "\"compileDatasets\": 6, \"npuTrainSamples\": 500, "
           "\"classifierTuples\": 5000}";
}

std::string
waitForJob(service::Server &server, const std::string &id)
{
    for (;;) {
        service::JobSnapshot snap;
        EXPECT_TRUE(server.jobs().snapshot(id, snap));
        if (snap.state == service::JobState::Done)
            return "";
        if (snap.state == service::JobState::Failed)
            return snap.error.empty() ? "failed" : snap.error;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
}

/** A 3-row invoke body for the 2-wide inversek2j model. */
std::string
invokeBody(const std::string &model)
{
    return "{\"model\": \"" + model
        + "\", \"inputs\": [[0.25,0.5],[0.75,0.1],[0.9,0.9]]}";
}

} // namespace

TEST(ServiceEndToEnd, LifecycleOverRealSocket)
{
    service::ServerOptions options;
    options.workers = 2;
    service::Server server(options);
    server.start();
    service::HttpClient client(server.port());

    const service::ClientResult submitted =
        client.post("/jobs", tinyJobSpec());
    ASSERT_TRUE(submitted.ok) << submitted.error;
    ASSERT_EQ(submitted.status, 202) << submitted.body;
    const telemetry::ParseResult parsed =
        telemetry::parseJson(submitted.body);
    ASSERT_TRUE(parsed.ok);
    const std::string id = parsed.value.find("id")->asString();
    ASSERT_EQ(waitForJob(server, id), "");

    const service::ClientResult invoked =
        client.post("/invoke", invokeBody(id));
    ASSERT_TRUE(invoked.ok) << invoked.error;
    ASSERT_EQ(invoked.status, 200) << invoked.body;
    const telemetry::ParseResult reply =
        telemetry::parseJson(invoked.body);
    ASSERT_TRUE(reply.ok);
    EXPECT_EQ(reply.value.find("decisions")->asArray().size(), 3u);
    const Json *certificate = reply.value.find("certificate");
    ASSERT_NE(certificate, nullptr);
    EXPECT_EQ(certificate->find("batch")
                  ->find("invocations")
                  ->asInt(),
              3);
    EXPECT_NE(certificate->find("watchdog"), nullptr);

    // Wrong row width and malformed JSON answer 400, not a crash.
    const service::ClientResult badWidth = client.post(
        "/invoke",
        "{\"model\": \"" + id + "\", \"inputs\": [[1.0]]}");
    EXPECT_EQ(badWidth.status, 400);
    const service::ClientResult badJson =
        client.post("/invoke", "{\"model\": ");
    EXPECT_EQ(badJson.status, 400);

    const service::ClientResult metrics = client.get("/metrics");
    ASSERT_EQ(metrics.status, 200);
    const telemetry::ParseResult document =
        telemetry::parseJson(metrics.body);
    ASSERT_TRUE(document.ok);
    EXPECT_EQ(telemetry::validateMetrics(document.value), "");

    const service::ClientResult described =
        client.get("/models/" + id);
    ASSERT_EQ(described.status, 200);
    server.stop();
}

TEST(ServiceEndToEnd, IndependentCompilesReproduceBitwise)
{
    service::Server server;
    server.start();
    service::HttpClient client(server.port());

    std::vector<std::string> ids;
    for (int i = 0; i < 2; ++i) {
        const service::ClientResult submitted =
            client.post("/jobs", tinyJobSpec());
        ASSERT_EQ(submitted.status, 202);
        const telemetry::ParseResult parsed =
            telemetry::parseJson(submitted.body);
        ASSERT_TRUE(parsed.ok);
        ids.push_back(parsed.value.find("id")->asString());
    }
    for (const std::string &id : ids)
        ASSERT_EQ(waitForJob(server, id), "");

    // Same spec, same inputs: identical decisions and certificates
    // modulo the server-assigned model id.
    std::vector<std::string> stripped;
    for (const std::string &id : ids) {
        const service::ClientResult invoked =
            client.post("/invoke", invokeBody(id));
        ASSERT_EQ(invoked.status, 200);
        telemetry::ParseResult reply =
            telemetry::parseJson(invoked.body);
        ASSERT_TRUE(reply.ok);
        reply.value.asObject().erase("model");
        Json &certificate =
            reply.value.asObject().at("certificate");
        certificate.asObject().erase("model");
        stripped.push_back(reply.value.dump());
    }
    EXPECT_EQ(stripped[0], stripped[1]);
    server.stop();
}

TEST(ServiceEndToEnd, ConcurrentClientsSeeConsistentAnswers)
{
    service::ServerOptions options;
    options.workers = 4;
    service::Server server(options);
    server.start();

    std::vector<std::thread> clients;
    std::vector<int> failures(8, 0);
    for (std::size_t t = 0; t < failures.size(); ++t) {
        clients.emplace_back([&, t] {
            service::HttpClient client(server.port());
            for (int i = 0; i < 25; ++i) {
                const service::ClientResult health =
                    client.get("/healthz");
                if (!health.ok || health.status != 200)
                    ++failures[t];
                const service::ClientResult metrics =
                    client.get("/metrics");
                if (!metrics.ok || metrics.status != 200)
                    ++failures[t];
            }
        });
    }
    for (std::thread &thread : clients)
        thread.join();
    for (const int failed : failures)
        EXPECT_EQ(failed, 0);
    server.stop();
}

TEST(ServiceEndToEnd, ClientSurvivesIdleTimeoutBetweenRequests)
{
    // The server reaps idle keep-alive connections; a client request
    // after the reaping must transparently reconnect (the long-poll
    // pattern: submit, wait out a compile, invoke).
    service::ServerOptions options;
    options.requestTimeoutMs = 150;
    service::Server server(options);
    server.start();
    service::HttpClient client(server.port());
    EXPECT_EQ(client.get("/healthz").status, 200);
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    const service::ClientResult after = client.get("/healthz");
    EXPECT_TRUE(after.ok) << after.error;
    EXPECT_EQ(after.status, 200);
    server.stop();
}

TEST(ServiceEndToEnd, PartialRequestTimesOutWith408)
{
    service::ServerOptions options;
    options.requestTimeoutMs = 150;
    service::Server server(options);
    server.start();

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address.sin_port = htons(server.port());
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&address),
                        sizeof(address)),
              0);
    const char *partial = "GET /metrics HTT";
    ASSERT_GT(::send(fd, partial, std::strlen(partial), MSG_NOSIGNAL),
              0);
    std::string reply;
    char chunk[512];
    for (;;) {
        const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
        if (got <= 0)
            break;
        reply.append(chunk, static_cast<std::size_t>(got));
    }
    EXPECT_NE(reply.find("HTTP/1.1 408 "), std::string::npos)
        << reply;
    ::close(fd);
    server.stop();
}
