/**
 * @file
 * mithra-analyze pass tests: each pass is fed synthetic translation
 * units seeded with one known violation and must fire with the right
 * rule id and file:line; a known-good variant must stay clean.
 * Snippets live in raw strings, which the shared tokenizer strips —
 * so this file itself scans clean under both tools.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analyze.hh"
#include "lex.hh"

namespace
{

using mithra::analyze::checkCaptures;
using mithra::analyze::checkEnvUse;
using mithra::analyze::checkLayering;
using mithra::analyze::checkReadme;
using mithra::analyze::checkTaint;
using mithra::analyze::Diagnostic;
using mithra::analyze::EnvRegistry;
using mithra::analyze::LayerSpec;
using mithra::analyze::parseEnvRegistry;
using mithra::analyze::parseLayerSpec;
using mithra::analyze::renderEnvTable;
using mithra::analyze::SourceFile;

bool
fired(const std::vector<Diagnostic> &diagnostics,
      const std::string &rule, std::size_t line)
{
    return std::any_of(diagnostics.begin(), diagnostics.end(),
                       [&](const Diagnostic &d) {
                           return d.rule == rule && d.line == line;
                       });
}

bool
firedRule(const std::vector<Diagnostic> &diagnostics,
          const std::string &rule)
{
    return std::any_of(diagnostics.begin(), diagnostics.end(),
                       [&](const Diagnostic &d) {
                           return d.rule == rule;
                       });
}

// ------------------------------------------------------------- layer spec

const char *specText = R"(# test spec
layer common src/common/
layer core   src/core/
layer tests  tests/
allow core  -> common
allow tests -> common core
)";

LayerSpec
spec()
{
    std::vector<Diagnostic> diagnostics;
    LayerSpec parsed =
        parseLayerSpec("layers.txt", specText, diagnostics);
    EXPECT_TRUE(diagnostics.empty());
    return parsed;
}

TEST(AnalyzeLayerSpec, ParsesLayersAndEdges)
{
    const LayerSpec parsed = spec();
    ASSERT_EQ(parsed.layers.size(), 3u);
    EXPECT_EQ(parsed.layerOf("src/common/foo.hh"), 0u);
    EXPECT_EQ(parsed.layerOf("src/core/bar.cc"), 1u);
    EXPECT_EQ(parsed.layerOf("elsewhere/x.cc"),
              static_cast<std::size_t>(-1));
    EXPECT_TRUE(parsed.edgeAllowed(1, 0)); // core -> common
    EXPECT_FALSE(parsed.edgeAllowed(0, 1)); // common -> core
    EXPECT_TRUE(parsed.edgeAllowed(0, 0)); // reflexive
}

TEST(AnalyzeLayerSpec, LongestPrefixWins)
{
    std::vector<Diagnostic> diagnostics;
    const LayerSpec parsed = parseLayerSpec(
        "layers.txt",
        "layer common src/common/\n"
        "layer parallel src/common/parallel.\n",
        diagnostics);
    EXPECT_TRUE(diagnostics.empty());
    EXPECT_EQ(parsed.layerOf("src/common/parallel.cc"), 1u);
    EXPECT_EQ(parsed.layerOf("src/common/scale.cc"), 0u);
}

TEST(AnalyzeLayerSpec, SyntaxErrorsAreDiagnosed)
{
    std::vector<Diagnostic> diagnostics;
    parseLayerSpec("layers.txt",
                   "layer onlyname\n"
                   "allow nowhere -> nothing\n"
                   "frobnicate x\n",
                   diagnostics);
    ASSERT_EQ(diagnostics.size(), 3u);
    EXPECT_TRUE(fired(diagnostics, "layer-spec", 1));
    EXPECT_TRUE(fired(diagnostics, "layer-spec", 2));
    EXPECT_TRUE(fired(diagnostics, "layer-spec", 3));
}

TEST(AnalyzeLayerSpec, CyclicSpecIsDiagnosed)
{
    std::vector<Diagnostic> diagnostics;
    parseLayerSpec("layers.txt",
                   "layer a src/a/\n"
                   "layer b src/b/\n"
                   "allow a -> b\n"
                   "allow b -> a\n",
                   diagnostics);
    EXPECT_TRUE(firedRule(diagnostics, "layer-spec"));
}

// -------------------------------------------------------------- layering

TEST(AnalyzeLayering, UpwardIncludeIsDiagnosed)
{
    const std::vector<SourceFile> files = {
        {"src/common/low.hh", "#pragma once\n#include \"core/high.hh\"\n",
         ""},
        {"src/core/high.hh", "#pragma once\n", ""},
    };
    const std::vector<Diagnostic> diagnostics =
        checkLayering(spec(), files);
    ASSERT_TRUE(fired(diagnostics, "layering", 2));
    // The message names both endpoints and their layers.
    const auto d = std::find_if(diagnostics.begin(), diagnostics.end(),
                                [](const Diagnostic &x) {
                                    return x.rule == "layering";
                                });
    EXPECT_NE(d->message.find("src/common/low.hh"), std::string::npos);
    EXPECT_NE(d->message.find("core"), std::string::npos);
}

TEST(AnalyzeLayering, AllowedEdgeAndSameLayerAreClean)
{
    const std::vector<SourceFile> files = {
        {"src/core/a.hh", "#pragma once\n#include \"common/b.hh\"\n"
                          "#include \"core/peer.hh\"\n",
         ""},
        {"src/core/peer.hh", "#pragma once\n", ""},
        {"src/common/b.hh", "#pragma once\n", ""},
    };
    EXPECT_TRUE(checkLayering(spec(), files).empty());
}

TEST(AnalyzeLayering, ServiceShellSitsAboveCoreNotBeside)
{
    // The in-tree spec's shape for the service layer: service may
    // reach down into core/telemetry/common, but nothing below the
    // shell may include service headers — the deterministic core
    // must stay deliverable without the socket code.
    std::vector<Diagnostic> specDiags;
    const LayerSpec layered = parseLayerSpec(
        "layers.txt",
        "layer common  src/common/\n"
        "layer core    src/core/\n"
        "layer service src/service/\n"
        "allow core    -> common\n"
        "allow service -> common core\n",
        specDiags);
    EXPECT_TRUE(specDiags.empty());
    const std::vector<SourceFile> clean = {
        {"src/service/server.hh", "#pragma once\n"
                                  "#include \"core/runtime.hh\"\n"
                                  "#include \"common/logging.hh\"\n",
         ""},
        {"src/core/runtime.hh", "#pragma once\n", ""},
        {"src/common/logging.hh", "#pragma once\n", ""},
    };
    EXPECT_TRUE(checkLayering(layered, clean).empty());

    const std::vector<SourceFile> inverted = {
        {"src/core/runtime.hh", "#pragma once\n"
                                "#include \"service/http.hh\"\n",
         ""},
        {"src/service/http.hh", "#pragma once\n", ""},
    };
    EXPECT_TRUE(fired(checkLayering(layered, inverted), "layering", 2));
}

TEST(AnalyzeLayering, DseSitsAboveCoreAndCoreCannotReachBack)
{
    // The in-tree spec's shape for the design-space explorer: dse may
    // drive core's experiment runner, but core must never include a
    // dse header — the runner stays deliverable without the explorer,
    // and the explorer's determinism contract rests on core's, not
    // the other way around.
    std::vector<Diagnostic> specDiags;
    const LayerSpec layered = parseLayerSpec(
        "layers.txt",
        "layer common src/common/\n"
        "layer core   src/core/\n"
        "layer dse    src/dse/\n"
        "allow core -> common\n"
        "allow dse  -> common core\n",
        specDiags);
    EXPECT_TRUE(specDiags.empty());

    const std::vector<SourceFile> clean = {
        {"src/dse/explorer.hh", "#pragma once\n"
                                "#include \"core/experiment.hh\"\n",
         ""},
        {"src/core/experiment.hh", "#pragma once\n", ""},
    };
    EXPECT_TRUE(checkLayering(layered, clean).empty());

    // Seeded violation: core reaching up into the explorer.
    const std::vector<SourceFile> inverted = {
        {"src/core/experiment.cc", "#include \"dse/explorer.hh\"\n",
         ""},
        {"src/dse/explorer.hh", "#pragma once\n", ""},
    };
    const std::vector<Diagnostic> diagnostics =
        checkLayering(layered, inverted);
    ASSERT_TRUE(fired(diagnostics, "layering", 1));
    const auto d = std::find_if(diagnostics.begin(), diagnostics.end(),
                                [](const Diagnostic &x) {
                                    return x.rule == "layering";
                                });
    EXPECT_NE(d->message.find("dse"), std::string::npos);
}

TEST(AnalyzeLayering, PluginHostSitsAboveAxbenchOutsideTheCore)
{
    // The in-tree spec's shape for the plugin host: plugin adapts C
    // tables into the axbench registry, so it may reach down into
    // axbench/common — but core must never include plugin (discovery
    // is injected through WorkloadRegistry::setDiscovery), and the
    // loader must not grow tendrils into the service shell.
    std::vector<Diagnostic> specDiags;
    const LayerSpec layered = parseLayerSpec(
        "layers.txt",
        "layer common  src/common/\n"
        "layer axbench src/axbench/\n"
        "layer core    src/core/\n"
        "layer service src/service/\n"
        "layer plugin  src/plugin/\n"
        "allow axbench -> common\n"
        "allow core    -> common axbench\n"
        "allow service -> common core\n"
        "allow plugin  -> common axbench\n",
        specDiags);
    EXPECT_TRUE(specDiags.empty());

    const std::vector<SourceFile> clean = {
        {"src/plugin/host.cc", "#include \"axbench/registry.hh\"\n"
                               "#include \"common/logging.hh\"\n",
         ""},
        {"src/axbench/registry.hh", "#pragma once\n", ""},
        {"src/common/logging.hh", "#pragma once\n", ""},
    };
    EXPECT_TRUE(checkLayering(layered, clean).empty());

    // Seeded violation 1: the loader reaching sideways-up into the
    // service shell.
    const std::vector<SourceFile> intoService = {
        {"src/plugin/loader.cc", "#include \"service/server.hh\"\n",
         ""},
        {"src/service/server.hh", "#pragma once\n", ""},
    };
    const std::vector<Diagnostic> diagnostics =
        checkLayering(layered, intoService);
    ASSERT_TRUE(fired(diagnostics, "layering", 1));
    const auto d = std::find_if(diagnostics.begin(), diagnostics.end(),
                                [](const Diagnostic &x) {
                                    return x.rule == "layering";
                                });
    EXPECT_NE(d->message.find("service"), std::string::npos);

    // Seeded violation 2: core depending on the loader (the discovery
    // hook exists precisely so this edge never appears).
    const std::vector<SourceFile> coreIntoPlugin = {
        {"src/core/experiment.cc", "#include \"plugin/loader.hh\"\n",
         ""},
        {"src/plugin/loader.hh", "#pragma once\n", ""},
    };
    EXPECT_TRUE(
        fired(checkLayering(layered, coreIntoPlugin), "layering", 1));
}

TEST(AnalyzeLayering, TransitivityIsNotImplied)
{
    // tests -> core and core -> common, but a spec without
    // tests -> common must still reject the direct include.
    std::vector<Diagnostic> specDiags;
    const LayerSpec narrow = parseLayerSpec(
        "layers.txt",
        "layer common src/common/\n"
        "layer core   src/core/\n"
        "layer tests  tests/\n"
        "allow core  -> common\n"
        "allow tests -> core\n",
        specDiags);
    const std::vector<SourceFile> files = {
        {"tests/t.cpp", "#include \"common/b.hh\"\n", ""},
        {"src/common/b.hh", "#pragma once\n", ""},
    };
    EXPECT_TRUE(fired(checkLayering(narrow, files), "layering", 1));
}

TEST(AnalyzeLayering, UnmappedFileIsDiagnosed)
{
    const std::vector<SourceFile> files = {
        {"scripts/tool.cc", "int x;\n", ""},
    };
    EXPECT_TRUE(fired(checkLayering(spec(), files), "layering", 1));
}

TEST(AnalyzeLayering, IncludeCycleIsDiagnosedWithChain)
{
    const std::vector<SourceFile> files = {
        {"src/core/a.hh", "#pragma once\n#include \"core/b.hh\"\n", ""},
        {"src/core/b.hh", "#pragma once\n#include \"core/c.hh\"\n", ""},
        {"src/core/c.hh", "#pragma once\n#include \"core/a.hh\"\n", ""},
    };
    const std::vector<Diagnostic> diagnostics =
        checkLayering(spec(), files);
    ASSERT_TRUE(firedRule(diagnostics, "include-cycle"));
    const auto d = std::find_if(diagnostics.begin(), diagnostics.end(),
                                [](const Diagnostic &x) {
                                    return x.rule == "include-cycle";
                                });
    // The full chain is printed: every participant appears.
    EXPECT_NE(d->message.find("src/core/a.hh"), std::string::npos);
    EXPECT_NE(d->message.find("src/core/b.hh"), std::string::npos);
    EXPECT_NE(d->message.find("src/core/c.hh"), std::string::npos);
}

TEST(AnalyzeLayering, AnnotationSuppressesUpwardInclude)
{
    const std::vector<SourceFile> files = {
        {"src/common/low.hh",
         "#pragma once\n"
         "// mithra-analyze: allow(layering) — test fixture\n"
         "#include \"core/high.hh\"\n",
         ""},
        {"src/core/high.hh", "#pragma once\n", ""},
    };
    EXPECT_TRUE(checkLayering(spec(), files).empty());
}

// ----------------------------------------------------------------- taint

std::vector<Diagnostic>
taintAt(const std::string &path, const std::string &source)
{
    return checkTaint({path, source, ""});
}

TEST(AnalyzeTaint, DirectSourceInSinkFires)
{
    const std::string source = R"cpp(
void emit() {
    MITHRA_GAUGE_SET("x", threadOrdinal());
}
)cpp";
    EXPECT_TRUE(fired(taintAt("src/core/a.cc", source), "taint-flow", 3));
}

TEST(AnalyzeTaint, AssignmentPropagatesToSink)
{
    const std::string source = R"cpp(
void emit() {
    double t = wallClockNs();
    double u = t * 2.0;
    MITHRA_COUNT("x", u);
}
)cpp";
    EXPECT_TRUE(fired(taintAt("src/core/a.cc", source), "taint-flow", 5));
}

TEST(AnalyzeTaint, ReturnTaintsFunctionTuWide)
{
    const std::string source = R"cpp(
double stamp() {
    return static_cast<double>(wallClockNs());
}
void emit() {
    MITHRA_HIST("x", stamp());
}
)cpp";
    EXPECT_TRUE(fired(taintAt("src/core/a.cc", source), "taint-flow", 6));
}

TEST(AnalyzeTaint, ThreadLocalIsASource)
{
    const std::string source = R"cpp(
thread_local int scratch = 0;
void emit() {
    MITHRA_COUNT("x", scratch);
}
)cpp";
    EXPECT_TRUE(fired(taintAt("src/core/a.cc", source), "taint-flow", 4));
}

TEST(AnalyzeTaint, UnorderedIterationTaintsLoopVariable)
{
    const std::string source = R"cpp(
void emit(const std::unordered_map<int, double> &m) {
    for (const auto &entry : m) {
        addMetric("k", entry.second);
    }
}
)cpp";
    EXPECT_TRUE(fired(taintAt("src/core/a.cc", source), "taint-flow", 4));
}

TEST(AnalyzeTaint, CleanFlowsStayClean)
{
    const std::string source = R"cpp(
void emit(double value) {
    double scaled = value * 2.0;
    MITHRA_COUNT("x", scaled);
    double t = wallClockNs();
    consume(t); // tainted, but never reaches a sink
}
)cpp";
    EXPECT_TRUE(taintAt("src/core/a.cc", source).empty());
}

TEST(AnalyzeTaint, TelemetryAndTestsAreExempt)
{
    const std::string source = R"cpp(
void emit() {
    MITHRA_GAUGE_SET("x", threadOrdinal());
}
)cpp";
    EXPECT_TRUE(taintAt("src/telemetry/a.cc", source).empty());
    EXPECT_TRUE(taintAt("tests/a.cpp", source).empty());
    EXPECT_TRUE(taintAt("bench/a.cpp", source).empty());
}

TEST(AnalyzeTaint, SocketReadsAreSourcesOutsideTheServiceShell)
{
    // recv() results are external-world values: a payload size must
    // not feed a deterministic metric from core code...
    const std::string source = R"cpp(
void pump(int fd, char *buffer) {
    long got = recv(fd, buffer, 4096, 0);
    MITHRA_COUNT("bytes", got);
}
)cpp";
    EXPECT_TRUE(fired(taintAt("src/core/a.cc", source), "taint-flow", 4));
    // ...while the identical code is sanctioned in the service shell
    // (the clean twin), exactly like wall-clock in telemetry.
    EXPECT_TRUE(taintAt("src/service/a.cc", source).empty());
}

TEST(AnalyzeTaint, AcceptedConnectionsAreSourcesOutsideTheShell)
{
    const std::string source = R"cpp(
int next(int listenFd) {
    int fd = accept(listenFd, nullptr, nullptr);
    MITHRA_GAUGE_SET("fd", fd);
    return fd;
}
)cpp";
    EXPECT_TRUE(fired(taintAt("src/hw/a.cc", source), "taint-flow", 4));
    EXPECT_TRUE(taintAt("src/service/a.cc", source).empty());
}

TEST(AnalyzeTaint, AnnotationSuppresses)
{
    const std::string source = R"cpp(
void emit() {
    // volatile stat, never in dumps: mithra-analyze: allow(taint-flow)
    MITHRA_GAUGE_SET("x", threadOrdinal());
}
)cpp";
    EXPECT_TRUE(taintAt("src/core/a.cc", source).empty());
}

// -------------------------------------------------------------- captures

std::vector<Diagnostic>
capturesAt(const std::string &source)
{
    return checkCaptures({"src/core/a.cc", source, ""});
}

TEST(AnalyzeCaptures, SharedAccumulatorFires)
{
    const std::string source = R"cpp(
void sum(std::size_t n) {
    double total = 0.0;
    parallelFor(0, n, 1, [&](std::size_t i) {
        total += work(i);
    });
}
)cpp";
    EXPECT_TRUE(fired(capturesAt(source), "capture-race", 5));
}

TEST(AnalyzeCaptures, SharedIncrementFires)
{
    const std::string source = R"cpp(
void count(std::size_t n) {
    int calls = 0;
    parallelFor(0, n, 1, [&](std::size_t i) {
        ++calls;
        use(i);
    });
}
)cpp";
    EXPECT_TRUE(fired(capturesAt(source), "capture-race", 5));
}

TEST(AnalyzeCaptures, PerSlotIndexedWriteIsClean)
{
    const std::string source = R"cpp(
void fill(std::vector<double> &out) {
    parallelFor(0, out.size(), 1, [&](std::size_t i) {
        out[i] = work(i);
    });
}
)cpp";
    EXPECT_TRUE(capturesAt(source).empty());
}

TEST(AnalyzeCaptures, AtomicTargetIsClean)
{
    const std::string source = R"cpp(
void count(std::size_t n) {
    std::atomic<int> calls{0};
    parallelFor(0, n, 1, [&](std::size_t i) {
        ++calls;
        use(i);
    });
}
)cpp";
    EXPECT_TRUE(capturesAt(source).empty());
}

TEST(AnalyzeCaptures, MutexGuardedWriteIsClean)
{
    const std::string source = R"cpp(
void sum(std::size_t n) {
    double total = 0.0;
    std::mutex m;
    parallelFor(0, n, 1, [&](std::size_t i) {
        const double part = work(i);
        std::lock_guard<std::mutex> lock(m);
        total += part;
    });
}
)cpp";
    EXPECT_TRUE(capturesAt(source).empty());
}

TEST(AnalyzeCaptures, LambdaLocalsAndParamsAreClean)
{
    const std::string source = R"cpp(
void run(std::size_t n) {
    parallelFor(0, n, 1, [&](std::size_t i) {
        double acc = 0.0;
        for (std::size_t j = 0; j < i; ++j)
            acc += work(j);
        sink(acc);
    });
}
)cpp";
    EXPECT_TRUE(capturesAt(source).empty());
}

TEST(AnalyzeCaptures, ValueCaptureIsClean)
{
    const std::string source = R"cpp(
void run(std::size_t n, int seed) {
    parallelFor(0, n, 1, [&, seed](std::size_t i) mutable {
        seed = static_cast<int>(i);
        use(seed);
    });
}
)cpp";
    EXPECT_TRUE(capturesAt(source).empty());
}

TEST(AnalyzeCaptures, NestedParallelOuterIndexIsClean)
{
    // Nested regions run inline on the calling worker, so a write
    // striped by the *outer* parameter stays single-writer.
    const std::string source = R"cpp(
void run(std::size_t n, std::size_t m, Grid &out) {
    parallelFor(0, n, 1, [&](std::size_t d) {
        parallelFor(0, m, 1, [&](std::size_t i) {
            out[d][i] = work(d, i);
        });
    });
}
)cpp";
    EXPECT_TRUE(capturesAt(source).empty());
}

TEST(AnalyzeCaptures, SerialLambdaOutsideParallelIsClean)
{
    const std::string source = R"cpp(
void run(std::vector<double> &values) {
    double total = 0.0;
    std::for_each(values.begin(), values.end(),
                  [&](double v) { total += v; });
}
)cpp";
    EXPECT_TRUE(capturesAt(source).empty());
}

TEST(AnalyzeCaptures, AnnotationSuppresses)
{
    const std::string source = R"cpp(
void sum(std::size_t n) {
    double total = 0.0;
    parallelFor(0, n, 1, [&](std::size_t i) {
        // single-threaded test fixture: mithra-analyze: allow(capture-race)
        total += work(i);
    });
}
)cpp";
    EXPECT_TRUE(capturesAt(source).empty());
}

// ------------------------------------------------------------------- env

const char *registrySource = R"cpp(
struct VarInfo { const char *n, *v, *f, *d; };
inline constexpr std::array<VarInfo, 2> registry{{
    {"MITHRA_THREADS", "int in [1, 1024]", "all hardware threads",
     "sizes the worker pool"},
    {"MITHRA_TRACE", "path", "off", "trace output path"},
}};
)cpp";

TEST(AnalyzeEnv, ParsesRegistryEntries)
{
    const EnvRegistry registry = parseEnvRegistry(registrySource);
    ASSERT_EQ(registry.entries.size(), 2u);
    EXPECT_EQ(registry.entries[0].name, "MITHRA_THREADS");
    EXPECT_EQ(registry.entries[0].values, "int in [1, 1024]");
    EXPECT_EQ(registry.entries[0].fallback, "all hardware threads");
    EXPECT_EQ(registry.entries[0].doc, "sizes the worker pool");
    EXPECT_TRUE(registry.registered("MITHRA_TRACE"));
    EXPECT_FALSE(registry.registered("MITHRA_NOPE"));
}

TEST(AnalyzeEnv, UnregisteredVariableFires)
{
    const EnvRegistry registry = parseEnvRegistry(registrySource);
    const std::string source = R"cpp(
int f() { return env::countIn("MITHRA_NOPE", 1, 9, 4); }
)cpp";
    EXPECT_TRUE(fired(checkEnvUse(registry, {"src/core/a.cc", source, ""}),
                      "env-registry", 2));
}

TEST(AnalyzeEnv, RawGetenvFires)
{
    const EnvRegistry registry = parseEnvRegistry(registrySource);
    const std::string source = R"cpp(
const char *f() { return std::getenv("MITHRA_THREADS"); }
)cpp";
    EXPECT_TRUE(fired(checkEnvUse(registry, {"src/core/a.cc", source, ""}),
                      "env-registry", 2));
}

TEST(AnalyzeEnv, RegisteredAccessorUseIsClean)
{
    const EnvRegistry registry = parseEnvRegistry(registrySource);
    const std::string source = R"cpp(
int f() { return env::countIn("MITHRA_THREADS", 1, 1024, 8); }
void g() { setenv("MITHRA_TRACE", "/tmp/t.json", 1); }
)cpp";
    EXPECT_TRUE(
        checkEnvUse(registry, {"src/core/a.cc", source, ""}).empty());
}

TEST(AnalyzeEnv, ReadmeDriftFiresBothDirections)
{
    const EnvRegistry registry = parseEnvRegistry(registrySource);
    const std::string readme =
        "# doc\n"
        "| `MITHRA_THREADS` | int | pool |\n"
        "| `MITHRA_STALE` | ? | gone |\n";
    const std::vector<Diagnostic> diagnostics =
        checkReadme(registry, "README.md", readme);
    // MITHRA_STALE documented but unregistered; MITHRA_TRACE
    // registered but undocumented.
    EXPECT_TRUE(fired(diagnostics, "env-registry", 3));
    EXPECT_TRUE(fired(diagnostics, "env-registry", 1));
    EXPECT_EQ(diagnostics.size(), 2u);
}

TEST(AnalyzeEnv, RenderedTableRoundTrips)
{
    const EnvRegistry registry = parseEnvRegistry(registrySource);
    const std::string table = renderEnvTable(registry);
    EXPECT_NE(table.find("| `MITHRA_THREADS` | int in [1, 1024] "
                         "(all hardware threads) | sizes the worker "
                         "pool |"),
              std::string::npos);
    // The rendered table satisfies the README check by construction.
    EXPECT_TRUE(checkReadme(registry, "README.md", table).empty());
}

// ------------------------------------------------- diagnostics & lexer

TEST(AnalyzeFormat, GoldenDiagnosticFormat)
{
    const Diagnostic d{"src/core/a.cc", 12, "layering", "bad edge"};
    EXPECT_EQ(mithra::analyze::formatDiagnostic(d),
              "src/core/a.cc:12: error: [layering] bad edge");
}

TEST(SharedLexer, SuppressionCoversSameAndFollowingLine)
{
    using mithra::lex::scan;
    using mithra::lex::suppressed;
    const auto scanned = scan("int a; // mithra-analyze: allow(x)\n"
                              "int b;\n"
                              "int c;\n");
    EXPECT_TRUE(suppressed(scanned.allows, "mithra-analyze", "x", 1));
    EXPECT_TRUE(suppressed(scanned.allows, "mithra-analyze", "x", 2));
    EXPECT_FALSE(suppressed(scanned.allows, "mithra-analyze", "x", 3));
    // Tool and rule must both match.
    EXPECT_FALSE(suppressed(scanned.allows, "mithra-lint", "x", 1));
    EXPECT_FALSE(suppressed(scanned.allows, "mithra-analyze", "y", 1));
}

TEST(SharedLexer, IncludesAreExtractedWithoutConsumingTokens)
{
    using mithra::lex::scan;
    const auto scanned = scan("#include \"core/a.hh\"\n"
                              "#include <vector>\n"
                              "int x;\n");
    ASSERT_EQ(scanned.includes.size(), 2u);
    EXPECT_EQ(scanned.includes[0].target, "core/a.hh");
    EXPECT_FALSE(scanned.includes[0].angled);
    EXPECT_EQ(scanned.includes[0].line, 1u);
    EXPECT_EQ(scanned.includes[1].target, "vector");
    EXPECT_TRUE(scanned.includes[1].angled);
}

} // namespace
