/**
 * @file
 * End-to-end integration tests: the compile pipeline, the runtime
 * evaluator and the experiment runner's result cache, exercised on a
 * deliberately small configuration of the cheapest benchmark.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "core/experiment.hh"
#include "core/pipeline.hh"
#include "core/runtime.hh"

using namespace mithra;
using namespace mithra::core;

namespace
{

/** Small, fast pipeline configuration for tests. */
PipelineOptions
testOptions()
{
    PipelineOptions options;
    options.compileDatasetCount = 16;
    options.npuTrainSamples = 3000;
    options.classifierTuples = 20000;
    options.maxCalibrationRounds = 2;
    return options;
}

/** A spec achievable with 16 compile datasets. */
QualitySpec
testSpec()
{
    QualitySpec spec;
    spec.maxQualityLossPct = 5.0;
    spec.confidence = 0.95;
    spec.successRate = 0.75;
    return spec;
}

} // namespace

TEST(PipelineIntegration, CompileProducesConsistentWorkload)
{
    const Pipeline pipeline(testOptions());
    const auto workload = pipeline.compile("inversek2j");

    EXPECT_EQ(workload.benchmark->name(), "inversek2j");
    EXPECT_EQ(workload.compileDatasets.size(), 16u);
    EXPECT_EQ(workload.compileTraces.size(), 16u);
    EXPECT_EQ(workload.problem.entries.size(), 16u);
    EXPECT_TRUE(workload.accel.trained());
    EXPECT_GT(workload.fullApproxLossMean, 0.0);
    EXPECT_GT(workload.profile.preciseCycles, 0.0);
    EXPECT_GT(workload.profile.accelCycles, 0.0);
    EXPECT_GT(workload.profile.invocationsPerDataset, 0u);

    // Every trace carries approximations after compile.
    for (const auto &trace : workload.compileTraces)
        EXPECT_TRUE(trace->hasApproximations());
}

TEST(PipelineIntegration, TuneAndEvaluateEndToEnd)
{
    const Pipeline pipeline(testOptions());
    const auto workload = pipeline.compile("inversek2j");
    const auto spec = testSpec();
    const auto package = pipeline.tune(workload, spec);

    EXPECT_GT(package.threshold.threshold, 0.0);
    ASSERT_TRUE(package.table);
    ASSERT_TRUE(package.neural);
    EXPECT_LE(package.tableLabelThreshold,
              package.threshold.threshold + 1e-12);

    const auto validation = makeValidationSet(workload, 16);
    EXPECT_EQ(validation.entries.size(), 16u);
    const Evaluator evaluator(workload, spec,
                              package.threshold.threshold);

    const auto oracle = evaluator.evaluateOracle(validation);
    EXPECT_GT(oracle.invocationRate, 0.1);
    EXPECT_EQ(oracle.falsePositiveRate, 0.0);
    EXPECT_EQ(oracle.falseNegativeRate, 0.0);
    EXPECT_GT(oracle.speedup, 1.0);

    const auto table = evaluator.evaluate(*package.table, validation);
    EXPECT_GE(table.invocationRate, 0.0);
    EXPECT_LE(table.invocationRate, oracle.invocationRate + 0.1);

    const auto fullApprox = evaluator.evaluateFullApprox(validation);
    EXPECT_DOUBLE_EQ(fullApprox.invocationRate, 1.0);
    EXPECT_GE(fullApprox.speedup, oracle.speedup - 1e-9);

    const auto random = evaluator.evaluateRandom(
        validation, 1.0 - oracle.invocationRate);
    EXPECT_NEAR(random.invocationRate, oracle.invocationRate, 0.05);
    // At the same rate, the oracle's quality is at least as good.
    EXPECT_LE(oracle.meanQualityLoss, random.meanQualityLoss + 1e-9);
}

TEST(PipelineIntegration, ValidationSeedsAreUnseen)
{
    const Pipeline pipeline(testOptions());
    // Compile and validation seeds must never collide for any index.
    for (std::size_t i = 0; i < 250; ++i) {
        for (std::size_t j = 0; j < 250; ++j) {
            ASSERT_NE(axbench::compileSeed("sobel", i),
                      axbench::validationSeed("sobel", j));
        }
    }
}

TEST(ExperimentRunner, CacheRoundTripsRecords)
{
    const std::string path = "/tmp/mithra-test-cache.tsv";
    std::remove(path.c_str());
    setenv("MITHRA_CACHE", path.c_str(), 1);

    ExperimentRecord first;
    {
        ExperimentRunner runner(testOptions());
        first = runner.run("inversek2j", testSpec(), Design::Oracle);
        EXPECT_GT(first.eval.trials, 0u);
    }
    {
        // A fresh runner must serve the identical record from disk
        // without recompiling (no workload is loaded for cache hits).
        ExperimentRunner runner(testOptions());
        const auto second = runner.run("inversek2j", testSpec(),
                                       Design::Oracle);
        EXPECT_EQ(second.eval.successes, first.eval.successes);
        EXPECT_DOUBLE_EQ(second.eval.speedup, first.eval.speedup);
        EXPECT_DOUBLE_EQ(second.threshold, first.threshold);
        EXPECT_EQ(second.eval.kind, first.eval.kind);
    }
    unsetenv("MITHRA_CACHE");
    std::remove(path.c_str());
}

TEST(ExperimentRunner, WorkloadFactsAreStable)
{
    const std::string path = "/tmp/mithra-test-cache2.tsv";
    std::remove(path.c_str());
    setenv("MITHRA_CACHE", path.c_str(), 1);

    ExperimentRunner runner(testOptions());
    const auto facts = runner.workloadFacts("inversek2j");
    EXPECT_EQ(facts.domain, "Robotics");
    EXPECT_EQ(facts.metricName, "Avg. Relative Error");
    EXPECT_EQ(facts.npuTopology, "2->8->2");
    EXPECT_GT(facts.invocationsPerDataset, 0u);

    const auto cached = runner.workloadFacts("inversek2j");
    EXPECT_EQ(cached.domain, facts.domain);
    EXPECT_DOUBLE_EQ(cached.fullApproxLossMean,
                     facts.fullApproxLossMean);

    unsetenv("MITHRA_CACHE");
    std::remove(path.c_str());
}

TEST(ExperimentRunner, DesignNamesAreDistinct)
{
    std::set<std::string> names;
    for (auto design : {Design::FullApprox, Design::Oracle,
                        Design::Table, Design::Neural, Design::Random})
        names.insert(designName(design));
    EXPECT_EQ(names.size(), 5u);
}
