/**
 * @file
 * Tests for the experiment-harness plumbing: the TSV result cache,
 * run-option semantics and design naming. (End-to-end runner behaviour
 * is covered in test_integration.cpp.)
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "core/experiment.hh"

using namespace mithra;
using namespace mithra::core;

namespace
{

std::string
tempCachePath()
{
    return "/tmp/mithra-cache-unit.tsv";
}

} // namespace

TEST(ResultCache, MissingFileIsEmpty)
{
    std::remove(tempCachePath().c_str());
    ResultCache cache(tempCachePath());
    EXPECT_FALSE(cache.get("nope").has_value());
}

TEST(ResultCache, PutThenGet)
{
    std::remove(tempCachePath().c_str());
    ResultCache cache(tempCachePath());
    cache.put("alpha", "1 2 3");
    ASSERT_TRUE(cache.get("alpha").has_value());
    EXPECT_EQ(*cache.get("alpha"), "1 2 3");
    std::remove(tempCachePath().c_str());
}

TEST(ResultCache, PersistsAcrossInstances)
{
    std::remove(tempCachePath().c_str());
    {
        ResultCache cache(tempCachePath());
        cache.put("k1", "v1");
        cache.put("k2", "v2 with spaces");
    }
    {
        ResultCache cache(tempCachePath());
        EXPECT_EQ(*cache.get("k1"), "v1");
        EXPECT_EQ(*cache.get("k2"), "v2 with spaces");
        EXPECT_FALSE(cache.get("k3").has_value());
    }
    std::remove(tempCachePath().c_str());
}

TEST(ResultCache, LastWriteWins)
{
    std::remove(tempCachePath().c_str());
    {
        ResultCache cache(tempCachePath());
        cache.put("key", "old");
        cache.put("key", "new");
        EXPECT_EQ(*cache.get("key"), "new");
    }
    {
        // The append-only file replays in order; the newest survives.
        ResultCache cache(tempCachePath());
        EXPECT_EQ(*cache.get("key"), "new");
    }
    std::remove(tempCachePath().c_str());
}

TEST(ResultCache, IgnoresMalformedLines)
{
    std::remove(tempCachePath().c_str());
    {
        std::FILE *f = std::fopen(tempCachePath().c_str(), "w");
        std::fputs("no-tab-in-this-line\ngood\tvalue\n", f);
        std::fclose(f);
    }
    ResultCache cache(tempCachePath());
    EXPECT_EQ(*cache.get("good"), "value");
    EXPECT_FALSE(cache.get("no-tab-in-this-line").has_value());
    std::remove(tempCachePath().c_str());
}

TEST(ResultCache, RefreshAdoptsRowsFromAnotherWriter)
{
    std::remove(tempCachePath().c_str());
    ResultCache mine(tempCachePath());
    ResultCache theirs(tempCachePath());

    mine.put("shared", "mine");
    theirs.put("shared", "theirs");
    theirs.put("fresh", "from-the-other-writer");

    // refresh() adopts rows this instance has not seen; on a key
    // conflict the in-memory value wins (evaluations are
    // deterministic, so real conflicts carry identical values).
    EXPECT_EQ(mine.refresh(), 1u);
    EXPECT_EQ(*mine.get("shared"), "mine");
    EXPECT_EQ(*mine.get("fresh"), "from-the-other-writer");

    // A second refresh with nothing new adopts nothing.
    EXPECT_EQ(mine.refresh(), 0u);
    std::remove(tempCachePath().c_str());
}

TEST(ResultCache, TwoWritersInterleaveWholeRows)
{
    std::remove(tempCachePath().c_str());
    // Two instances of the same file, interleaving appends the way
    // two bench binaries sharing $MITHRA_CACHE do. Every append is a
    // whole line under flock, so a fresh reader must see every row
    // untorn regardless of the interleaving.
    ResultCache alpha(tempCachePath());
    ResultCache beta(tempCachePath());
    for (int i = 0; i < 50; ++i) {
        alpha.put("alpha-" + std::to_string(i),
                  "payload with spaces " + std::to_string(i));
        beta.put("beta-" + std::to_string(i),
                 "another payload " + std::to_string(i));
    }

    ResultCache reader(tempCachePath());
    for (int i = 0; i < 50; ++i) {
        ASSERT_TRUE(reader.get("alpha-" + std::to_string(i)).has_value())
            << "row alpha-" << i << " lost or torn";
        ASSERT_TRUE(reader.get("beta-" + std::to_string(i)).has_value())
            << "row beta-" << i << " lost or torn";
        EXPECT_EQ(*reader.get("beta-" + std::to_string(i)),
                  "another payload " + std::to_string(i));
    }
    std::remove(tempCachePath().c_str());
}

TEST(RunOptions, DefaultDetection)
{
    RunOptions options;
    EXPECT_TRUE(options.isDefault());

    RunOptions geometry;
    geometry.geometry.numTables = 4;
    EXPECT_FALSE(geometry.isDefault());

    RunOptions bits;
    bits.quantizerBits = 3;
    EXPECT_FALSE(bits.isDefault());

    RunOptions online;
    online.onlineUpdates = false;
    EXPECT_FALSE(online.isDefault());

    RunOptions noCal;
    noCal.skipCalibration = true;
    EXPECT_FALSE(noCal.isDefault());

    RunOptions random;
    random.randomPreciseFraction = 0.25;
    EXPECT_FALSE(random.isDefault());
}

TEST(Design, NamesMatchPaperVocabulary)
{
    EXPECT_EQ(designName(Design::FullApprox), "full-approx");
    EXPECT_EQ(designName(Design::Oracle), "oracle");
    EXPECT_EQ(designName(Design::Table), "table");
    EXPECT_EQ(designName(Design::Neural), "neural");
    EXPECT_EQ(designName(Design::Random), "random");
}
