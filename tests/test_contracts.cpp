/**
 * @file
 * Negative contract tests: one per src/ subsystem, each driving a
 * documented precondition or postcondition to failure and expecting
 * the contract machinery to abort with the right kind in the message.
 * Death tests only exist in checked builds (MITHRA_CHECKS_ENABLED);
 * in a -DMITHRA_CHECKED=OFF release build they are skipped and the
 * positive half (contracts silent on valid input) still runs.
 */

#include <gtest/gtest.h>

#include "common/contracts.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "compress/bdi.hh"
#include "core/threshold_optimizer.hh"
#include "hw/decision_table.hh"
#include "hw/quantizer.hh"
#include "npu/mlp.hh"
#include "npu/trainer.hh"
#include "sim/core_model.hh"
#include "stats/clopper_pearson.hh"
#include "stats/special_functions.hh"

namespace
{

using namespace mithra;

TEST(Contracts, ChecksEnabledMatchesBuildConfiguration)
{
#if defined(NDEBUG) && !(defined(MITHRA_CHECKED) && MITHRA_CHECKED)
    EXPECT_EQ(MITHRA_CHECKS_ENABLED, 0);
#else
    EXPECT_EQ(MITHRA_CHECKS_ENABLED, 1);
#endif
}

TEST(Contracts, MacrosAreSilentOnValidInput)
{
    const int value = 3;
    MITHRA_EXPECTS(value > 0, "positive input required, got ", value);
    MITHRA_ASSERT(value * 2 == 6, "arithmetic invariant broke");
    MITHRA_ENSURES(value < 10, "result escaped its range: ", value);
    SUCCEED();
}

#if MITHRA_CHECKS_ENABLED

using ContractsDeath = ::testing::Test;

// stats: successes > trials violates the Clopper–Pearson domain.
TEST(ContractsDeath, StatsRejectsImpossibleSuccessCount)
{
    EXPECT_DEATH(stats::clopperPearsonLower(5, 4, 0.95),
                 "precondition.*successes");
}

TEST(ContractsDeath, StatsRejectsConfidenceOutsideUnitInterval)
{
    EXPECT_DEATH(stats::clopperPearsonUpper(1, 4, 1.5),
                 "precondition.*confidence");
}

TEST(ContractsDeath, StatsRejectsNegativeBetaParameters)
{
    EXPECT_DEATH(stats::regIncompleteBeta(-1.0, 2.0, 0.5),
                 "precondition.*beta parameters");
}

// hw: table index width and quantizer input width are bounded.
TEST(ContractsDeath, HwRejectsUnreasonableTableWidth)
{
    EXPECT_DEATH(hw::DecisionTable table(2),
                 "precondition.*table index width");
}

TEST(ContractsDeath, HwRejectsOutOfRangeTableIndex)
{
    hw::DecisionTable table(4);
    EXPECT_DEATH(table.setBit(1u << 20),
                 "precondition.*out of range");
}

TEST(ContractsDeath, HwRejectsMismatchedQuantizerInput)
{
    hw::InputQuantizer quantizer({0.0f, 0.0f}, {1.0f, 1.0f}, 4);
    EXPECT_DEATH(quantizer.quantize({0.5f}),
                 "precondition.*input width");
}

// npu: topology consistency and training-set sanity.
TEST(ContractsDeath, NpuRejectsSingleLayerTopology)
{
    EXPECT_DEATH(npu::Mlp mlp({7}), "precondition.*two layers");
}

TEST(ContractsDeath, NpuRejectsNonPositiveLearningRate)
{
    npu::Mlp mlp({2, 2, 1});
    npu::TrainerOptions options;
    options.learningRate = 0.0f;
    const VecBatch inputs = {{0.0f, 1.0f}};
    const VecBatch targets = {{1.0f}};
    EXPECT_DEATH(npu::train(mlp, inputs, targets, options),
                 "precondition.*learning rate");
}

// common: the parallel substrate requires a positive grain, and the
// RNG rejects an empty sampling interval.
TEST(ContractsDeath, ParallelRejectsZeroGrain)
{
    EXPECT_DEATH(parallelFor(0, 8, 0, [](std::size_t) {}),
                 "precondition.*grain");
}

TEST(ContractsDeath, RngRejectsZeroBound)
{
    Rng rng(1);
    EXPECT_DEATH(rng.nextBelow(0), "precondition.*positive bound");
}

// compress: payload metadata must match the claimed encoding.
TEST(ContractsDeath, BdiRejectsCorruptRepeatedPayload)
{
    compress::BdiLine corrupt{compress::BdiEncoding::Repeated,
                              {1, 2, 3}};
    EXPECT_DEATH(compress::decompressLine(corrupt),
                 "precondition.*repeated payload");
}

// core: the quality spec is validated before any optimization runs.
TEST(ContractsDeath, CoreRejectsConfidenceOfOne)
{
    core::QualitySpec spec;
    spec.confidence = 1.0;
    EXPECT_DEATH(core::ThresholdOptimizer optimizer(spec),
                 "precondition.*confidence");
}

// sim: the core model needs a positive ILP factor.
TEST(ContractsDeath, SimRejectsZeroIlpFactor)
{
    sim::CoreParams params;
    params.ilpFactor = 0.0;
    EXPECT_DEATH(sim::CoreModel model(params),
                 "precondition.*ILP factor");
}

#endif // MITHRA_CHECKS_ENABLED

} // namespace
