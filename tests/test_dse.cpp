/**
 * @file
 * Tests for the surrogate-guided design-space exploration engine:
 * Pareto arithmetic, the ridge surrogate's fit and honest uncertainty,
 * the explorer's pruning guarantees on synthetic landscapes, and the
 * runner-backed path's determinism and cache replay.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/parallel.hh"
#include "core/experiment.hh"
#include "dse/explorer.hh"
#include "dse/pareto.hh"
#include "dse/surrogate.hh"
#include "telemetry/run_report.hh"

using namespace mithra;
using namespace mithra::dse;

// ---------------------------------------------------------------- pareto

TEST(Pareto, DominatesRequiresNoWorseAndStrictlyBetter)
{
    const ParetoPoint cheapGood{100.0, 0.5, true, 0};
    const ParetoPoint dearBad{200.0, 0.4, true, 1};
    EXPECT_TRUE(dominates(cheapGood, dearBad));
    EXPECT_FALSE(dominates(dearBad, cheapGood));

    // Equal on both axes: neither dominates (nothing strictly better).
    const ParetoPoint twin{100.0, 0.5, true, 2};
    EXPECT_FALSE(dominates(cheapGood, twin));
    EXPECT_FALSE(dominates(twin, cheapGood));

    // Better on one axis, worse on the other: incomparable.
    const ParetoPoint dearGood{200.0, 0.6, true, 3};
    EXPECT_FALSE(dominates(cheapGood, dearGood));
    EXPECT_FALSE(dominates(dearGood, cheapGood));
}

TEST(Pareto, DominanceMarginShiftsTheBenefitAxis)
{
    const ParetoPoint incumbent{100.0, 0.50, true, 0};
    const ParetoPoint claimant{150.0, 0.52, true, 1};
    // At face value the claimant's extra benefit saves it.
    EXPECT_FALSE(dominates(incumbent, claimant));
    // A negative margin tolerates that much claimed advantage.
    EXPECT_TRUE(dominates(incumbent, claimant, -0.05));
    // A positive margin demands the incumbent win by that much.
    const ParetoPoint weak{150.0, 0.46, true, 2};
    EXPECT_TRUE(dominates(incumbent, weak));
    EXPECT_FALSE(dominates(incumbent, weak, 0.05));
}

TEST(Pareto, FrontSortsByCostAndDropsDominated)
{
    const std::vector<ParetoPoint> points{
        {400.0, 0.9, true, 0},
        {100.0, 0.2, true, 1},
        {200.0, 0.1, true, 2}, // dominated by index 1
        {200.0, 0.6, true, 3},
    };
    const auto front = paretoFront(points);
    ASSERT_EQ(front.size(), 3u);
    EXPECT_EQ(front[0], 1u);
    EXPECT_EQ(front[1], 3u);
    EXPECT_EQ(front[2], 0u);
}

TEST(Pareto, FrontIgnoresInfeasibleAndDedupsTies)
{
    const std::vector<ParetoPoint> points{
        {100.0, 0.9, false, 0}, // infeasible: never on the front
        {100.0, 0.5, true, 1},
        {100.0, 0.5, true, 2}, // duplicate of 1: lowest index kept
    };
    const auto front = paretoFront(points);
    ASSERT_EQ(front.size(), 1u);
    EXPECT_EQ(front[0], 1u);

    EXPECT_TRUE(paretoFront({{100.0, 0.5, false, 0}}).empty());
}

TEST(Pareto, SinglePointFrontIsDegenerate)
{
    const std::vector<ParetoPoint> points{{128.0, 0.3, true, 0}};
    const auto front = paretoFront(points);
    ASSERT_EQ(front.size(), 1u);
    EXPECT_EQ(front[0], 0u);
}

TEST(Pareto, HypervolumeIsTheStaircaseArea)
{
    // Two steps: (100, 0.5) and (300, 0.8) against reference cost 500.
    const std::vector<ParetoPoint> front{
        {100.0, 0.5, true, 0},
        {300.0, 0.8, true, 1},
    };
    // (500-100)*0.5 for the first step plus (500-300)*(0.8-0.5).
    EXPECT_DOUBLE_EQ(hypervolume(front, 500.0), 260.0);
    // A point at the reference cost contributes nothing.
    EXPECT_DOUBLE_EQ(hypervolume({{500.0, 1.0, true, 0}}, 500.0), 0.0);
    EXPECT_DOUBLE_EQ(hypervolume({}, 500.0), 0.0);
}

// ------------------------------------------------------------- surrogate

TEST(Surrogate, RecoversALinearModelExactly)
{
    // y = 2 + 3a - b on well-spread rows: the ridge fit (tiny lambda)
    // must reproduce targets to numerical precision.
    std::vector<std::vector<double>> rows;
    std::vector<double> targets;
    for (double a = 0.0; a < 4.0; a += 1.0) {
        for (double b = 0.0; b < 3.0; b += 1.0) {
            rows.push_back({1.0, a, b});
            targets.push_back(2.0 + 3.0 * a - b);
        }
    }
    const auto fit = RidgeSurrogate::fit(rows, targets);
    for (std::size_t r = 0; r < rows.size(); ++r)
        EXPECT_NEAR(fit.predict(rows[r]), targets[r], 1e-6);
    EXPECT_LT(fit.maxResidual(), 1e-6);
    EXPECT_LT(fit.standardError(), 1e-6);
}

TEST(Surrogate, StandardErrorSurvivesInterpolation)
{
    // Two points, two features: the fit interpolates, so SSE ~ 0 and
    // trace(H) ~ n. The effective-dof correction must keep the
    // standard error from collapsing the same way the residual does
    // when the data is NOT actually linear in the features provided.
    const std::vector<std::vector<double>> rows{{1.0, 0.0}, {1.0, 1.0}};
    const std::vector<double> targets{0.0, 1.0};
    const auto fit = RidgeSurrogate::fit(rows, targets);
    // Interpolation: residuals vanish...
    EXPECT_LT(fit.maxResidual(), 1e-6);
    // ...and the denominator max(1, n - trace(H)) floors at one, so
    // the standard error equals sqrt(SSE), still ~0 here — but the
    // floor is what matters: it must never divide by ~0.
    EXPECT_GE(fit.standardError(), 0.0);
}

TEST(Surrogate, LeverageGrowsAwayFromTheTrainingData)
{
    std::vector<std::vector<double>> rows;
    std::vector<double> targets;
    for (double a = 0.0; a < 8.0; a += 1.0) {
        rows.push_back({1.0, a});
        targets.push_back(0.5 * a);
    }
    const auto fit = RidgeSurrogate::fit(rows, targets);
    const double inside = fit.leverageScale({1.0, 3.5});
    const double outside = fit.leverageScale({1.0, 30.0});
    EXPECT_GE(inside, 1.0);
    EXPECT_GT(outside, inside);
}

TEST(Surrogate, FitIsDeterministic)
{
    std::vector<std::vector<double>> rows;
    std::vector<double> targets;
    for (double a = 0.0; a < 5.0; a += 1.0) {
        for (double b = 0.0; b < 5.0; b += 1.0) {
            rows.push_back({1.0, a, b, a * b});
            targets.push_back(1.0 + 0.25 * a * b - 0.1 * b);
        }
    }
    const auto one = RidgeSurrogate::fit(rows, targets);
    const auto two = RidgeSurrogate::fit(rows, targets);
    ASSERT_EQ(one.weights().size(), two.weights().size());
    for (std::size_t i = 0; i < one.weights().size(); ++i)
        EXPECT_EQ(one.weights()[i], two.weights()[i]);
    EXPECT_EQ(one.standardError(), two.standardError());
}

// -------------------------------------------------- synthetic explorer

namespace
{

/**
 * Deterministic synthetic landscape: invocation rate saturates with
 * log-capacity and quantizer bits; quality collapses once capacity
 * crosses a cliff. Mirrors the real benchmarks' shape closely enough
 * to exercise both pruning rules.
 */
class SyntheticBackend : public EvalBackend
{
  public:
    bool isCached(const core::RunOptions &) const override
    {
        return false;
    }

    std::vector<core::ExperimentRecord>
    evaluate(const std::vector<core::RunOptions> &batch) override
    {
        ++batches;
        std::vector<core::ExperimentRecord> records;
        for (const core::RunOptions &options : batch) {
            ++evals;
            records.push_back(evaluateOne(options));
        }
        return records;
    }

    static core::ExperimentRecord
    evaluateOne(const core::RunOptions &options)
    {
        const double cap = static_cast<double>(
            options.geometry.numTables * options.geometry.tableBytes);
        const double lc = std::log2(cap);
        const double bits = static_cast<double>(options.quantizerBits);
        core::ExperimentRecord record;
        record.eval.invocationRate =
            std::min(0.95, 0.05 * (bits / 8.0) * lc);
        record.eval.trials = 12;
        record.eval.successes = cap > 4096.0 && bits >= 8.0 ? 6 : 12;
        return record;
    }

    std::size_t evals = 0;
    std::size_t batches = 0;
};

DseAxes
syntheticAxes()
{
    DseAxes axes;
    axes.tableCounts = {1, 2, 4, 8};
    axes.tableBytes = {128, 512, 2048, 8192};
    axes.quantizerBits = {2, 4, 8};
    return axes;
}

core::QualitySpec
syntheticSpec()
{
    core::QualitySpec spec;
    spec.maxQualityLossPct = 5.0;
    spec.confidence = 0.95;
    spec.successRate = 0.9;
    return spec;
}

} // namespace

TEST(Explorer, ExhaustiveEvaluatesEveryCandidate)
{
    SyntheticBackend backend;
    DseOptions options;
    options.exhaustive = true;
    const auto result = Explorer(options).exploreWith(
        backend, "synthetic", syntheticSpec(), syntheticAxes());
    EXPECT_EQ(result.candidates.size(), 48u);
    EXPECT_EQ(backend.evals, 48u);
    EXPECT_EQ(result.exactEvalsSelected, 48u);
    EXPECT_DOUBLE_EQ(result.savedPct, 0.0);
    EXPECT_DOUBLE_EQ(result.sweepSpeedup, 1.0);
}

TEST(Explorer, PrunedFrontMatchesExhaustiveOnTheSyntheticLandscape)
{
    SyntheticBackend prunedBackend, bruteBackend;
    DseOptions bruteOptions;
    bruteOptions.exhaustive = true;
    const auto brute = Explorer(bruteOptions).exploreWith(
        bruteBackend, "synthetic", syntheticSpec(), syntheticAxes());
    const auto pruned = Explorer(DseOptions{}).exploreWith(
        prunedBackend, "synthetic", syntheticSpec(), syntheticAxes());

    // The pruned sweep must spend strictly fewer exact evaluations...
    EXPECT_LT(pruned.exactEvalsSelected, brute.exactEvalsSelected);
    EXPECT_GT(pruned.savedPct, 0.0);

    // ...and still find the identical front, point for point.
    ASSERT_EQ(pruned.front.size(), brute.front.size());
    for (std::size_t i = 0; i < pruned.front.size(); ++i) {
        const auto &p = pruned.candidates[pruned.front[i]].options;
        const auto &b = brute.candidates[brute.front[i]].options;
        EXPECT_EQ(p.geometry.numTables, b.geometry.numTables);
        EXPECT_EQ(p.geometry.tableBytes, b.geometry.tableBytes);
        EXPECT_EQ(p.quantizerBits, b.quantizerBits);
    }
    EXPECT_DOUBLE_EQ(pruned.hypervolume, brute.hypervolume);
}

TEST(Explorer, ResultIsDeterministicAcrossRepeatedRuns)
{
    const auto runOnce = [] {
        SyntheticBackend backend;
        return Explorer(DseOptions{}).exploreWith(
            backend, "synthetic", syntheticSpec(), syntheticAxes());
    };
    const auto one = runOnce();
    const auto two = runOnce();
    ASSERT_EQ(one.candidates.size(), two.candidates.size());
    for (std::size_t i = 0; i < one.candidates.size(); ++i) {
        EXPECT_EQ(one.candidates[i].state, two.candidates[i].state);
        EXPECT_EQ(one.candidates[i].predictedRate,
                  two.candidates[i].predictedRate);
    }
    EXPECT_EQ(one.front, two.front);
    EXPECT_EQ(one.rounds, two.rounds);
    EXPECT_EQ(one.hypervolume, two.hypervolume);
}

TEST(Explorer, FrontDocumentValidates)
{
    SyntheticBackend backend;
    const auto result = Explorer(DseOptions{}).exploreWith(
        backend, "synthetic", syntheticSpec(), syntheticAxes());
    const auto document = result.toJson();
    EXPECT_EQ(telemetry::validateParetoFront(document), "");
    ASSERT_NE(document.find("schema"), nullptr);
    EXPECT_EQ(document.find("schema")->asString(),
              "mithra-pareto-front");
    ASSERT_NE(document.find("benchmark"), nullptr);
    EXPECT_EQ(document.find("benchmark")->asString(), "synthetic");
    ASSERT_NE(document.find("candidates"), nullptr);
    EXPECT_EQ(document.find("candidates")->asArray().size(),
              result.candidates.size());
    ASSERT_NE(document.find("front"), nullptr);
    EXPECT_EQ(document.find("front")->asArray().size(),
              result.front.size());
}

// --------------------------------------------------- runner-backed path

namespace
{

core::PipelineOptions
fastPipeline()
{
    core::PipelineOptions options;
    options.compileDatasetCount = 16;
    options.npuTrainSamples = 3000;
    options.classifierTuples = 20000;
    options.maxCalibrationRounds = 2;
    return options;
}

core::QualitySpec
fastSpec()
{
    core::QualitySpec spec;
    spec.maxQualityLossPct = 5.0;
    spec.confidence = 0.95;
    spec.successRate = 0.75;
    return spec;
}

DseAxes
tinyAxes()
{
    DseAxes axes;
    axes.tableCounts = {1, 2};
    axes.tableBytes = {128, 512};
    axes.quantizerBits = {0};
    return axes;
}

} // namespace

TEST(ExplorerRunner, WarmCacheReplaySelectsWithoutExecuting)
{
    const std::string cachePath = "/tmp/mithra-dse-test-cache.tsv";
    std::remove(cachePath.c_str());
    setenv("MITHRA_CACHE", cachePath.c_str(), 1);

    DseOptions options;
    options.seedEvals = 2;
    const Explorer explorer(options);

    core::ExperimentRunner cold(fastPipeline());
    const auto first = explorer.explore(cold, "inversek2j", fastSpec(),
                                        tinyAxes());
    EXPECT_EQ(first.exactEvalsExecuted, first.exactEvalsSelected);
    EXPECT_GT(first.exactEvalsSelected, 0u);

    // A fresh runner over the same cache replays every selection.
    core::ExperimentRunner warm(fastPipeline());
    const auto replay = explorer.explore(warm, "inversek2j", fastSpec(),
                                         tinyAxes());
    EXPECT_EQ(replay.exactEvalsExecuted, 0u);
    EXPECT_EQ(replay.exactEvalsSelected, first.exactEvalsSelected);
    ASSERT_EQ(replay.front.size(), first.front.size());
    for (std::size_t i = 0; i < replay.front.size(); ++i)
        EXPECT_EQ(replay.front[i], first.front[i]);
    EXPECT_EQ(replay.hypervolume, first.hypervolume);

    unsetenv("MITHRA_CACHE");
    std::remove(cachePath.c_str());
}

// tsan-labeled: the exact-evaluation fan-out runs across the thread
// pool; the explorer's selection, front and hypervolume must come out
// bitwise identical at any width.
TEST(ExplorerRunner, ResultIdenticalAcrossThreadWidths)
{
    const std::size_t before = mithra::parallelThreadCount();
    const std::string cacheBase = "/tmp/mithra-dse-test-threads";
    setenv("MITHRA_CACHE", (cacheBase + "-1.tsv").c_str(), 1);
    std::remove((cacheBase + "-1.tsv").c_str());

    DseOptions options;
    options.seedEvals = 2;
    const Explorer explorer(options);

    mithra::setParallelThreadCount(1);
    core::ExperimentRunner reference(fastPipeline());
    const auto one = explorer.explore(reference, "inversek2j",
                                      fastSpec(), tinyAxes());

    for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
        const std::string cachePath =
            cacheBase + "-" + std::to_string(threads) + ".tsv";
        std::remove(cachePath.c_str());
        setenv("MITHRA_CACHE", cachePath.c_str(), 1);
        mithra::setParallelThreadCount(threads);
        core::ExperimentRunner runner(fastPipeline());
        const auto wide = explorer.explore(runner, "inversek2j",
                                           fastSpec(), tinyAxes());

        ASSERT_EQ(wide.candidates.size(), one.candidates.size());
        for (std::size_t i = 0; i < wide.candidates.size(); ++i) {
            EXPECT_EQ(wide.candidates[i].state, one.candidates[i].state)
                << "threads " << threads << " candidate " << i;
            EXPECT_EQ(wide.candidates[i].record.eval.invocationRate,
                      one.candidates[i].record.eval.invocationRate)
                << "threads " << threads << " candidate " << i;
        }
        EXPECT_EQ(wide.front, one.front);
        EXPECT_EQ(wide.hypervolume, one.hypervolume);
        EXPECT_EQ(wide.toJson().dump(2), one.toJson().dump(2));
        std::remove(cachePath.c_str());
    }

    mithra::setParallelThreadCount(before);
    unsetenv("MITHRA_CACHE");
    std::remove((cacheBase + "-1.tsv").c_str());
}
