/**
 * @file
 * mithra-lint rule tests: each rule is fed a known-bad snippet and
 * must fire with the right rule id and file:line, and a known-good
 * variant must stay clean. Snippets live in raw strings, which the
 * lint tokenizer strips — so this file itself lints clean.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint.hh"

namespace
{

using mithra::lint::Diagnostic;
using mithra::lint::lintSource;
using mithra::lint::policyForPath;

/** All diagnostics for `source` at a src/ library path. */
std::vector<Diagnostic>
lintAt(const std::string &path, const std::string &source)
{
    return lintSource(path, source);
}

bool
fired(const std::vector<Diagnostic> &diagnostics,
      const std::string &rule, std::size_t line)
{
    return std::any_of(diagnostics.begin(), diagnostics.end(),
                       [&](const Diagnostic &d) {
                           return d.rule == rule && d.line == line;
                       });
}

bool
firedRule(const std::vector<Diagnostic> &diagnostics,
          const std::string &rule)
{
    return std::any_of(diagnostics.begin(), diagnostics.end(),
                       [&](const Diagnostic &d) {
                           return d.rule == rule;
                       });
}

/** A minimal clean library file all bad snippets are derived from. */
const char *cleanSource = R"cpp(#pragma once

namespace mithra
{
int answer() { return 42; }
} // namespace mithra
)cpp";

TEST(Lint, CleanFilePasses)
{
    EXPECT_TRUE(lintAt("src/core/clean.hh", cleanSource).empty());
}

TEST(Lint, UnseededRandFires)
{
    const auto diagnostics = lintAt("src/core/bad.cc", R"cpp(#pragma once
namespace mithra
{
int roll() { return std::rand() % 6; }
} // namespace mithra
)cpp");
    EXPECT_TRUE(fired(diagnostics, "no-rand", 4));
}

TEST(Lint, SrandFires)
{
    const auto diagnostics = lintAt("src/core/bad.cc", R"cpp(
namespace mithra
{
void reseed(unsigned s) { srand(s); }
} // namespace mithra
)cpp");
    EXPECT_TRUE(fired(diagnostics, "no-rand", 4));
}

TEST(Lint, RandomDeviceFiresOutsideRngImpl)
{
    const std::string source = R"cpp(#pragma once
#include <random>
namespace mithra
{
std::random_device entropy;
} // namespace mithra
)cpp";
    EXPECT_TRUE(fired(lintAt("src/core/bad.hh", source),
                      "no-random-device", 5));
    // The sanctioned implementation is exempt by path.
    EXPECT_FALSE(firedRule(lintAt("src/common/rng.cc", source),
                           "no-random-device"));
}

TEST(Lint, WallClockTimeSeedFires)
{
    const auto diagnostics = lintAt("src/core/bad.cc", R"cpp(
namespace mithra
{
long stamp() { return time(nullptr); }
long stamp0() { return std::time(0); }
} // namespace mithra
)cpp");
    EXPECT_TRUE(fired(diagnostics, "no-time-seed", 4));
    EXPECT_TRUE(fired(diagnostics, "no-time-seed", 5));
}

TEST(Lint, TimeWithRealArgumentDoesNotFire)
{
    const auto diagnostics = lintAt("src/core/ok.cc", R"cpp(
namespace mithra
{
long stamp(long *out) { return time(out); }
long runtime() { return 7; }
} // namespace mithra
)cpp");
    EXPECT_FALSE(firedRule(diagnostics, "no-time-seed"));
}

TEST(Lint, UnorderedContainerFires)
{
    const auto diagnostics = lintAt("src/core/bad.hh", R"cpp(#pragma once
#include <unordered_map>
namespace mithra
{
std::unordered_map<int, int> histogram;
} // namespace mithra
)cpp");
    EXPECT_TRUE(fired(diagnostics, "no-unordered", 2));
    EXPECT_TRUE(fired(diagnostics, "no-unordered", 5));
}

TEST(Lint, UnorderedAllowAnnotationSuppresses)
{
    const auto diagnostics = lintAt("src/core/ok.hh", R"cpp(#pragma once
// lookup-only cache: mithra-lint: allow(no-unordered)
#include <unordered_map>
namespace mithra
{
} // namespace mithra
)cpp");
    EXPECT_FALSE(firedRule(diagnostics, "no-unordered"));
}

TEST(Lint, FloatInStatsFires)
{
    const std::string source = R"cpp(
namespace mithra::stats
{
float half() { return 0.5f; }
} // namespace mithra::stats
)cpp";
    const auto diagnostics = lintAt("src/stats/bad.cc", source);
    EXPECT_TRUE(fired(diagnostics, "no-float-in-stats", 4));
    // Same code outside src/stats is not double-only.
    EXPECT_FALSE(firedRule(lintAt("src/npu/ok.cc", source),
                           "no-float-in-stats"));
}

TEST(Lint, HexLiteralSuffixIsNotAFloat)
{
    const auto diagnostics = lintAt("src/stats/ok.cc", R"cpp(
namespace mithra::stats
{
unsigned mask() { return 0x2F; }
double scaled() { return 0x1.0p-53; }
} // namespace mithra::stats
)cpp");
    EXPECT_FALSE(firedRule(diagnostics, "no-float-in-stats"));
}

TEST(Lint, MissingPragmaOnceFires)
{
    const auto diagnostics = lintAt("src/core/bad.hh", R"cpp(
#ifndef BAD_HH
#define BAD_HH
namespace mithra
{
} // namespace mithra
#endif
)cpp");
    EXPECT_TRUE(fired(diagnostics, "pragma-once", 2));
}

TEST(Lint, PragmaOnceAfterDocCommentPasses)
{
    const auto diagnostics = lintAt("src/core/ok.hh", R"cpp(/**
 * @file doc comment first is fine.
 */
#pragma once
namespace mithra
{
} // namespace mithra
)cpp");
    EXPECT_FALSE(firedRule(diagnostics, "pragma-once"));
}

TEST(Lint, MissingNamespaceFires)
{
    const auto diagnostics = lintAt("src/core/bad.cc", R"cpp(
int looseFunction() { return 1; }
)cpp");
    EXPECT_TRUE(firedRule(diagnostics, "namespace-mithra"));
}

TEST(Lint, NestedNamespacePasses)
{
    const auto diagnostics = lintAt("src/core/ok.cc", R"cpp(
namespace mithra::axbench::jpeg
{
int ok() { return 1; }
} // namespace mithra::axbench::jpeg
)cpp");
    EXPECT_FALSE(firedRule(diagnostics, "namespace-mithra"));
}

TEST(Lint, IostreamInLibraryFires)
{
    const std::string source = R"cpp(
#include <iostream>
#include <cstdio>
namespace mithra
{
void shout() { std::cerr << "x"; std::fprintf(stderr, "x"); }
} // namespace mithra
)cpp";
    const auto diagnostics = lintAt("src/core/bad.cc", source);
    EXPECT_TRUE(fired(diagnostics, "no-iostream", 2));
    EXPECT_TRUE(fired(diagnostics, "no-iostream", 6));
    // logging.cc is the sanctioned output path.
    EXPECT_FALSE(firedRule(lintAt("src/common/logging.cc", source),
                           "no-iostream"));
    // Harness code (tests/, bench/) may print freely.
    EXPECT_FALSE(firedRule(lintAt("tests/ok.cpp", source),
                           "no-iostream"));
}

TEST(Lint, NakedAssertFires)
{
    const auto diagnostics = lintAt("src/core/bad.cc", R"cpp(
#include <cassert>
namespace mithra
{
void check(int x) { assert(x > 0); }
} // namespace mithra
)cpp");
    EXPECT_TRUE(fired(diagnostics, "no-naked-assert", 2));
    EXPECT_TRUE(fired(diagnostics, "no-naked-assert", 5));
}

TEST(Lint, ContractMacrosAndStaticAssertPass)
{
    const auto diagnostics = lintAt("src/core/ok.cc", R"cpp(
namespace mithra
{
void check(int x)
{
    MITHRA_ASSERT(x > 0, "x must be positive, got ", x);
    static_assert(sizeof(int) >= 4);
}
} // namespace mithra
)cpp");
    EXPECT_FALSE(firedRule(diagnostics, "no-naked-assert"));
}

TEST(Lint, ViolationsInsideStringsAndCommentsIgnored)
{
    const auto diagnostics = lintAt("src/core/ok.cc", R"cpp(
namespace mithra
{
// std::rand() in a comment is documentation, not a call.
const char *hint = "never call srand() or std::random_device";
} // namespace mithra
)cpp");
    EXPECT_FALSE(firedRule(diagnostics, "no-rand"));
    EXPECT_FALSE(firedRule(diagnostics, "no-random-device"));
}

TEST(Lint, RawTimingFiresInLibraryCode)
{
    const auto diagnostics = lintAt("src/core/bad.cc", R"cpp(
#include <chrono>
#include <ctime>
namespace mithra
{
double now()
{
    timespec ts;
    clock_gettime(0, &ts);
    gettimeofday(nullptr, nullptr);
    timespec_get(&ts, 1);
    return static_cast<double>(clock());
}
} // namespace mithra
)cpp");
    EXPECT_TRUE(fired(diagnostics, "no-raw-timing", 2));
    EXPECT_TRUE(fired(diagnostics, "no-raw-timing", 9));
    EXPECT_TRUE(fired(diagnostics, "no-raw-timing", 10));
    EXPECT_TRUE(fired(diagnostics, "no-raw-timing", 11));
    EXPECT_TRUE(fired(diagnostics, "no-raw-timing", 12));
}

TEST(Lint, RawTimingExemptionsAndAllows)
{
    const char *source = R"cpp(
namespace mithra
{
double now()
{
    timespec ts;
    clock_gettime(0, &ts);
    return static_cast<double>(ts.tv_sec);
}
} // namespace mithra
)cpp";
    // The telemetry layer is the sanctioned timing implementation.
    EXPECT_FALSE(firedRule(lintAt("src/telemetry/span.cc", source),
                           "no-raw-timing"));
    // Harness code (bench/, tests/) may time freely.
    EXPECT_FALSE(firedRule(lintAt("bench/micro_parallel.cpp", source),
                           "no-raw-timing"));
    EXPECT_FALSE(firedRule(lintAt("tests/test_parallel.cpp", source),
                           "no-raw-timing"));
    // An allow() annotation suppresses the rule on the next line.
    const auto diagnostics = lintAt("src/core/ok.cc", R"cpp(
namespace mithra
{
// mithra-lint: allow(no-raw-timing)
long jiffies() { return clock(); }
} // namespace mithra
)cpp");
    EXPECT_FALSE(firedRule(diagnostics, "no-raw-timing"));
}

TEST(Lint, ClockIdentifierWithoutCallDoesNotFire)
{
    const auto diagnostics = lintAt("src/core/ok.cc", R"cpp(
namespace mithra
{
struct CoreParams { double clock = 2.0e9; };
double hz(const CoreParams &p) { return p.clock; }
} // namespace mithra
)cpp");
    EXPECT_FALSE(firedRule(diagnostics, "no-raw-timing"));
}

TEST(Lint, IntrinsicsOutsideKernelsFire)
{
    const std::string source = R"cpp(
#include <immintrin.h>
namespace mithra
{
float sum8(const float *x)
{
    __m256 v = _mm256_loadu_ps(x);
    __m128 lo = _mm256_castps256_ps128(v);
    (void)lo;
    return _mm_cvtss_f32(_mm_setzero_ps());
}
} // namespace mithra
)cpp";
    const auto diagnostics = lintAt("src/npu/bad.cc", source);
    EXPECT_TRUE(fired(diagnostics, "no-intrinsics", 2));
    EXPECT_TRUE(fired(diagnostics, "no-intrinsics", 7));
    EXPECT_TRUE(fired(diagnostics, "no-intrinsics", 8));
    EXPECT_TRUE(fired(diagnostics, "no-intrinsics", 10));
    // Harness code is not exempt: bench/ and tests/ must also go
    // through the dispatched kernels API.
    EXPECT_TRUE(firedRule(lintAt("bench/micro_bad.cpp", source),
                          "no-intrinsics"));
    EXPECT_TRUE(firedRule(lintAt("tests/test_bad.cpp", source),
                          "no-intrinsics"));
    // The kernels layer is the sanctioned home.
    EXPECT_FALSE(
        firedRule(lintAt("src/common/kernels/kernels_avx2.cc", source),
                  "no-intrinsics"));
}

TEST(Lint, IntrinsicHeaderVariantsFire)
{
    const auto diagnostics = lintAt("src/core/bad.cc", R"cpp(
#include <xmmintrin.h>
#include <x86intrin.h>
#include <arm_neon.h>
namespace mithra
{
} // namespace mithra
)cpp");
    EXPECT_TRUE(fired(diagnostics, "no-intrinsics", 2));
    EXPECT_TRUE(fired(diagnostics, "no-intrinsics", 3));
    EXPECT_TRUE(fired(diagnostics, "no-intrinsics", 4));
}

TEST(Lint, NonIntrinsicIdentifiersPass)
{
    const auto diagnostics = lintAt("src/core/ok.cc", R"cpp(
namespace mithra
{
int _mmap_like = 0;
int immintrinsically = 1;
bool cpuHasAvx2() { return __builtin_cpu_supports("avx2"); }
} // namespace mithra
)cpp");
    EXPECT_FALSE(firedRule(diagnostics, "no-intrinsics"));
}

TEST(Lint, KeywordIdentifierFires)
{
    const auto diagnostics = lintAt("src/core/bad.cc", R"cpp(
namespace mithra
{
int compute();
void f()
{
    const auto final = compute();
    int override = final + 1;
    (void)override;
}
} // namespace mithra
)cpp");
    EXPECT_TRUE(fired(diagnostics, "no-keyword-identifier", 7));
    EXPECT_TRUE(fired(diagnostics, "no-keyword-identifier", 8));
}

TEST(Lint, SpecifierPositionsDoNotFire)
{
    const auto diagnostics = lintAt("src/core/ok.hh", R"cpp(#pragma once
namespace mithra
{
class Base
{
  public:
    virtual ~Base() = default;
    virtual int get() const = 0;
    virtual int move() = 0;
    virtual int quiet() noexcept = 0;
};
class X final : public Base
{
  public:
    int get() const override { return 1; }
    int move() && final override { return 2; }
    int quiet() noexcept override { return 3; }
};
struct Y final
{
};
} // namespace mithra
)cpp");
    EXPECT_FALSE(firedRule(diagnostics, "no-keyword-identifier"));
}

TEST(Lint, KeywordIdentifierIsLibraryOnly)
{
    // tests/ and bench/ may shadow the contextual keywords (gtest
    // fixtures sometimes do); only library code is held to the rule.
    const auto diagnostics = lintAt("tests/test_x.cpp", R"cpp(
void f()
{
    int final = 1;
    (void)final;
}
)cpp");
    EXPECT_FALSE(firedRule(diagnostics, "no-keyword-identifier"));
}

TEST(Lint, KeywordIdentifierAllowAnnotationSuppresses)
{
    const auto diagnostics = lintAt("src/core/ok.cc", R"cpp(
namespace mithra
{
int compute();
// legacy name: mithra-lint: allow(no-keyword-identifier)
const auto final = compute();
} // namespace mithra
)cpp");
    EXPECT_FALSE(firedRule(diagnostics, "no-keyword-identifier"));
}

TEST(Lint, DiagnosticFormatHasFileAndLine)
{
    const auto diagnostics = lintAt("src/core/bad.cc", R"cpp(
namespace mithra
{
int roll() { return rand(); }
} // namespace mithra
)cpp");
    ASSERT_TRUE(firedRule(diagnostics, "no-rand"));
    const auto &d = *std::find_if(diagnostics.begin(),
                                  diagnostics.end(),
                                  [](const Diagnostic &x) {
                                      return x.rule == "no-rand";
                                  });
    const std::string rendered = mithra::lint::formatDiagnostic(d);
    EXPECT_NE(rendered.find("src/core/bad.cc:4"), std::string::npos);
    EXPECT_NE(rendered.find("[no-rand]"), std::string::npos);
}

TEST(Lint, DlopenOutsidePluginLoaderFires)
{
    const auto diagnostics = lintAt("src/core/sneaky.cc", R"cpp(
namespace mithra
{
void *load(const char *path) { return dlopen(path, 2); }
void *find(void *h, const char *s) { return dlsym(h, s); }
} // namespace mithra
)cpp");
    EXPECT_TRUE(fired(diagnostics, "no-dlopen", 4));
    EXPECT_TRUE(fired(diagnostics, "no-dlopen", 5));
}

TEST(Lint, DlopenAllowedInPluginLoader)
{
    const auto diagnostics = lintAt("src/plugin/loader.cc", R"cpp(
namespace mithra
{
void *load(const char *path) { return dlopen(path, 2); }
} // namespace mithra
)cpp");
    EXPECT_FALSE(firedRule(diagnostics, "no-dlopen"));
}

TEST(Lint, DlopenIsLibraryOnly)
{
    // Tests may poke at loaders freely; only src/ is confined.
    const auto diagnostics = lintAt("tests/test_plugin.cpp", R"cpp(
void *load(const char *path) { return dlopen(path, 2); }
)cpp");
    EXPECT_FALSE(firedRule(diagnostics, "no-dlopen"));
}

/** A minimal well-formed C ABI header. */
const char *cleanAbiHeader = R"c(/* doc */
#ifndef MITHRA_X_H
#define MITHRA_X_H

#ifdef __cplusplus
extern "C" {
#endif

struct mithra_x { unsigned v; };

#ifdef __cplusplus
}
#endif

#endif /* MITHRA_X_H */
)c";

TEST(Lint, CleanCAbiHeaderPasses)
{
    EXPECT_TRUE(lintAt("include/mithra_x.h", cleanAbiHeader).empty());
}

TEST(Lint, CAbiHeaderRejectsPragmaOnce)
{
    const auto diagnostics = lintAt("include/mithra_x.h", R"c(
#pragma once
struct mithra_x { unsigned v; };
)c");
    EXPECT_TRUE(firedRule(diagnostics, "c-abi-header"));
    // And the C++ header rule stays quiet — include/ is not its turf.
    EXPECT_FALSE(firedRule(diagnostics, "pragma-once"));
    EXPECT_FALSE(firedRule(diagnostics, "namespace-mithra"));
}

TEST(Lint, CAbiHeaderRejectsCppKeywordsOutsideGuard)
{
    const auto diagnostics = lintAt("include/mithra_x.h", R"c(
#ifndef MITHRA_X_H
#define MITHRA_X_H
class mithra_x;
template <typename T> struct y;
#endif
)c");
    EXPECT_TRUE(fired(diagnostics, "c-abi-header", 4));
    EXPECT_TRUE(fired(diagnostics, "c-abi-header", 5));
}

TEST(Lint, CAbiHeaderAllowsCppInsideCplusplusGuard)
{
    const auto diagnostics = lintAt("include/mithra_x.h", R"c(
#ifndef MITHRA_X_H
#define MITHRA_X_H
#ifdef __cplusplus
extern "C" {
class gated;
}
#endif
#endif
)c");
    EXPECT_FALSE(firedRule(diagnostics, "c-abi-header"));
}

TEST(Lint, CAbiHeaderRejectsLineComments)
{
    const auto diagnostics = lintAt("include/mithra_x.h", R"c(
#ifndef MITHRA_X_H
#define MITHRA_X_H
struct mithra_x { unsigned v; }; // not C89
#endif
)c");
    EXPECT_TRUE(fired(diagnostics, "c-abi-header", 4));
}

TEST(Lint, CAbiHeaderIgnoresSlashesInStringsAndBlockComments)
{
    const auto diagnostics = lintAt("include/mithra_x.h", R"c(
#ifndef MITHRA_X_H
#define MITHRA_X_H
/* a // inside a block comment is fine */
static const char *mithra_x_url = "http://example.com";
#endif
)c");
    EXPECT_FALSE(firedRule(diagnostics, "c-abi-header"));
}

TEST(Lint, RealPluginHeaderIsClean)
{
    // The shipped ABI header must satisfy its own rule (the C89
    // compile test in CMake is the ground truth; this keeps the lint
    // rule honest against the real file).
    const auto diagnostics =
        mithra::lint::lintFile(std::string(MITHRA_SOURCE_DIR)
                               + "/include/mithra_plugin.h");
    EXPECT_TRUE(diagnostics.empty());
}

TEST(Lint, PolicySelection)
{
    EXPECT_TRUE(policyForPath("src/stats/summary.cc").doubleOnly);
    EXPECT_FALSE(policyForPath("src/npu/mlp.cc").doubleOnly);
    EXPECT_TRUE(policyForPath("bench/fig01_error_cdf.cpp").determinism);
    EXPECT_FALSE(policyForPath("bench/fig01_error_cdf.cpp")
                     .libraryHygiene);
    EXPECT_TRUE(policyForPath("/abs/repo/src/hw/misr.cc")
                    .libraryHygiene);
    EXPECT_TRUE(policyForPath("src/common/rng.cc").rngImpl);
    EXPECT_TRUE(policyForPath("src/common/logging.hh").loggingImpl);
    EXPECT_TRUE(policyForPath("src/telemetry/span.cc").timingImpl);
    EXPECT_FALSE(policyForPath("src/core/pipeline.cc").timingImpl);
    EXPECT_TRUE(policyForPath("src/common/kernels/kernels_sse42.cc")
                    .kernelsImpl);
    EXPECT_FALSE(policyForPath("src/common/parallel.hh").kernelsImpl);
    EXPECT_TRUE(policyForPath("src/plugin/loader.cc").pluginImpl);
    EXPECT_FALSE(policyForPath("src/core/pipeline.cc").pluginImpl);
    EXPECT_TRUE(policyForPath("include/mithra_plugin.h").cAbiHeader);
    EXPECT_FALSE(policyForPath("include/mithra_plugin.h")
                     .headerHygiene);
    EXPECT_FALSE(policyForPath("src/axbench/registry.hh").cAbiHeader);
}

} // namespace
