/**
 * @file
 * telemetry/json tests: deterministic serialization (sorted keys,
 * round-tripping doubles, Int/Double kind preservation) and the strict
 * parser (duplicate keys, trailing content, malformed escapes).
 */

#include <gtest/gtest.h>

#include <string>

#include "telemetry/json.hh"

namespace
{

using mithra::telemetry::Json;
using mithra::telemetry::parseJson;

TEST(Json, ScalarKindsAndAccessors)
{
    EXPECT_EQ(Json().kind(), Json::Kind::Null);
    EXPECT_TRUE(Json(true).asBool());
    EXPECT_EQ(Json(std::int64_t{-7}).asInt(), -7);
    EXPECT_DOUBLE_EQ(Json(2.5).asNumber(), 2.5);
    EXPECT_EQ(Json("text").asString(), "text");
    // asNumber widens Int transparently.
    EXPECT_DOUBLE_EQ(Json(std::int64_t{3}).asNumber(), 3.0);
}

TEST(Json, CompactDumpSortsObjectKeys)
{
    Json value;
    value["zebra"] = Json(std::int64_t{1});
    value["alpha"] = Json(std::int64_t{2});
    value["mid"] = Json(std::int64_t{3});
    EXPECT_EQ(value.dump(), R"({"alpha":2,"mid":3,"zebra":1})");
}

TEST(Json, PrettyDumpIsStable)
{
    Json value;
    value["a"] = Json(Json::Array{Json(std::int64_t{1}),
                                  Json(std::int64_t{2})});
    value["b"] = Json("x");
    EXPECT_EQ(value.dump(1), "{\n \"a\": [\n  1,\n  2\n ],\n"
                             " \"b\": \"x\"\n}\n");
}

TEST(Json, DoubleRoundTripsExactly)
{
    const double samples[] = {0.1, 1.0 / 3.0, 6.02214076e23,
                              -2.2250738585072014e-308, 12345.678,
                              0.0, -0.0, 1e-9};
    for (const double sample : samples) {
        const std::string text = Json(sample).dump();
        const auto parsed = parseJson(text);
        ASSERT_TRUE(parsed.ok) << text << ": " << parsed.error;
        EXPECT_EQ(parsed.value.asNumber(), sample) << text;
    }
}

TEST(Json, DoubleKindSurvivesRoundTrip)
{
    // A double that prints without a fraction must not come back Int.
    const std::string text = Json(1.0).dump();
    EXPECT_EQ(text, "1.0");
    const auto parsed = parseJson(text);
    ASSERT_TRUE(parsed.ok);
    EXPECT_EQ(parsed.value.kind(), Json::Kind::Double);

    const auto intParsed = parseJson(Json(std::int64_t{1}).dump());
    ASSERT_TRUE(intParsed.ok);
    EXPECT_EQ(intParsed.value.kind(), Json::Kind::Int);
}

TEST(Json, StringEscapesRoundTrip)
{
    const std::string nasty = "line\nwith \"quotes\", tab\t, "
                              "backslash \\ and bell\x07";
    const auto parsed = parseJson(Json(nasty).dump());
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(parsed.value.asString(), nasty);
}

TEST(Json, NestedDocumentRoundTrip)
{
    Json document;
    document["metrics"]["speedup"] = Json(2.5);
    document["name"] = Json("fig06");
    document["tags"] =
        Json(Json::Array{Json("a"), Json(), Json(false)});
    const auto parsed = parseJson(document.dump(2));
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_TRUE(parsed.value == document);
}

TEST(Json, FindAndEquality)
{
    Json value;
    value["key"] = Json(std::int64_t{9});
    ASSERT_NE(value.find("key"), nullptr);
    EXPECT_EQ(value.find("key")->asInt(), 9);
    EXPECT_EQ(value.find("absent"), nullptr);
    EXPECT_FALSE(Json(std::int64_t{1}) == Json(1.0)); // kinds differ
}

TEST(Json, ParserRejectsDuplicateKeys)
{
    const auto parsed = parseJson(R"({"a":1,"a":2})");
    EXPECT_FALSE(parsed.ok);
    EXPECT_NE(parsed.error.find("duplicate"), std::string::npos);
}

TEST(Json, ParserRejectsTrailingContent)
{
    const auto parsed = parseJson("{} []");
    EXPECT_FALSE(parsed.ok);
    EXPECT_NE(parsed.error.find("trailing"), std::string::npos);
}

TEST(Json, ParserRejectsMalformedDocuments)
{
    const char *broken[] = {
        "",         "{",         "[1,",       "\"open",
        "{\"a\"1}", "tru",       "01x",       "{\"a\":\"\\q\"}",
        "nan",      "{\"a\":}",
    };
    for (const char *text : broken)
        EXPECT_FALSE(parseJson(text).ok) << text;
}

TEST(Json, ParserAcceptsNumbersAndLiterals)
{
    const auto parsed =
        parseJson(R"([0, -3, 2.5, 1e3, -1.5e-2, true, false, null])");
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const auto &items = parsed.value.asArray();
    ASSERT_EQ(items.size(), 8u);
    EXPECT_EQ(items[0].asInt(), 0);
    EXPECT_EQ(items[1].asInt(), -3);
    EXPECT_DOUBLE_EQ(items[2].asNumber(), 2.5);
    EXPECT_DOUBLE_EQ(items[3].asNumber(), 1000.0);
    EXPECT_DOUBLE_EQ(items[4].asNumber(), -0.015);
    EXPECT_TRUE(items[5].asBool());
    EXPECT_FALSE(items[6].asBool());
    EXPECT_EQ(items[7].kind(), Json::Kind::Null);
}

TEST(Json, ParserReportsErrorOffset)
{
    const auto parsed = parseJson("[1, )");
    EXPECT_FALSE(parsed.ok);
    EXPECT_EQ(parsed.errorOffset, 4u);
}

} // namespace
