/**
 * @file
 * Unit and property tests for the statistics substrate: the
 * regularized incomplete beta function, Clopper-Pearson exact bounds
 * and descriptive statistics.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "stats/clopper_pearson.hh"
#include "stats/special_functions.hh"
#include "stats/summary.hh"

using namespace mithra;
using namespace mithra::stats;

TEST(SpecialFunctions, LnBetaSymmetry)
{
    EXPECT_NEAR(lnBeta(2.5, 4.0), lnBeta(4.0, 2.5), 1e-12);
}

TEST(SpecialFunctions, IncompleteBetaBoundaries)
{
    EXPECT_DOUBLE_EQ(regIncompleteBeta(3.0, 5.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(regIncompleteBeta(3.0, 5.0, 1.0), 1.0);
}

TEST(SpecialFunctions, IncompleteBetaUniformCase)
{
    // Beta(1, 1) is the uniform distribution: I_x(1,1) = x.
    for (double x : {0.1, 0.25, 0.5, 0.75, 0.9})
        EXPECT_NEAR(regIncompleteBeta(1.0, 1.0, x), x, 1e-12);
}

TEST(SpecialFunctions, IncompleteBetaClosedForm)
{
    // I_x(1, b) = 1 - (1-x)^b and I_x(a, 1) = x^a.
    for (double x : {0.2, 0.5, 0.8}) {
        EXPECT_NEAR(regIncompleteBeta(1.0, 3.0, x),
                    1.0 - std::pow(1.0 - x, 3.0), 1e-10);
        EXPECT_NEAR(regIncompleteBeta(4.0, 1.0, x), std::pow(x, 4.0),
                    1e-10);
    }
}

TEST(SpecialFunctions, IncompleteBetaSymmetryRelation)
{
    // I_x(a, b) = 1 - I_{1-x}(b, a).
    for (double x : {0.1, 0.3, 0.6, 0.9}) {
        EXPECT_NEAR(regIncompleteBeta(2.5, 7.0, x),
                    1.0 - regIncompleteBeta(7.0, 2.5, 1.0 - x), 1e-10);
    }
}

/** Parameterized monotonicity sweep of the incomplete beta. */
class IncompleteBetaSweep
    : public ::testing::TestWithParam<std::pair<double, double>>
{
};

TEST_P(IncompleteBetaSweep, MonotoneInX)
{
    const auto [a, b] = GetParam();
    double previous = -1.0;
    for (double x = 0.0; x <= 1.0; x += 0.05) {
        const double value = regIncompleteBeta(a, b, x);
        EXPECT_GE(value, previous - 1e-12);
        EXPECT_GE(value, 0.0);
        EXPECT_LE(value, 1.0);
        previous = value;
    }
}

TEST_P(IncompleteBetaSweep, InverseRoundTrip)
{
    const auto [a, b] = GetParam();
    for (double p : {0.01, 0.1, 0.5, 0.9, 0.99}) {
        const double x = regIncompleteBetaInv(a, b, p);
        EXPECT_NEAR(regIncompleteBeta(a, b, x), p, 1e-8)
            << "a=" << a << " b=" << b << " p=" << p;
    }
}

INSTANTIATE_TEST_SUITE_P(
    ParamGrid, IncompleteBetaSweep,
    ::testing::Values(std::pair{0.5, 0.5}, std::pair{1.0, 3.0},
                      std::pair{2.0, 2.0}, std::pair{5.0, 1.5},
                      std::pair{10.0, 30.0}, std::pair{90.0, 11.0},
                      std::pair{235.0, 16.0}));

TEST(SpecialFunctions, BinomialCdfMatchesDirectSum)
{
    // Direct summation reference for small n.
    const int n = 12;
    const double p = 0.3;
    double direct = 0.0;
    double logChoose = 0.0; // running C(n, k)
    for (int k = 0; k <= n; ++k) {
        if (k > 0) {
            logChoose += std::log(static_cast<double>(n - k + 1))
                - std::log(static_cast<double>(k));
        }
        direct += std::exp(logChoose + k * std::log(p)
                           + (n - k) * std::log(1.0 - p));
        EXPECT_NEAR(binomialCdf(k, n, p), direct, 1e-9) << "k=" << k;
    }
}

TEST(SpecialFunctions, FQuantileMedianOfF11)
{
    // Median of F(1,1) is 1 by symmetry of the ratio.
    EXPECT_NEAR(fQuantile(0.5, 1.0, 1.0), 1.0, 1e-6);
}

TEST(ClopperPearson, ZeroSuccessesGiveZeroLower)
{
    EXPECT_DOUBLE_EQ(clopperPearsonLower(0, 100, 0.95), 0.0);
}

TEST(ClopperPearson, AllSuccessesClosedForm)
{
    // With k = n the exact lower bound is (1 - confidence)^(1/n).
    for (std::size_t n : {10u, 50u, 250u}) {
        EXPECT_NEAR(clopperPearsonLower(n, n, 0.95),
                    std::pow(0.05, 1.0 / static_cast<double>(n)), 1e-9);
    }
}

TEST(ClopperPearson, AllFailuresUpperClosedForm)
{
    // With k = 0 the exact upper bound is 1 - (1 - confidence)^(1/n).
    EXPECT_NEAR(clopperPearsonUpper(0, 20, 0.95),
                1.0 - std::pow(0.05, 1.0 / 20.0), 1e-9);
}

TEST(ClopperPearson, PaperOperatingPoint)
{
    // 235 of 250 unseen datasets at 95% confidence must certify a 90%
    // success rate (the paper's headline operating point).
    EXPECT_GE(clopperPearsonLower(235, 250, 0.95), 0.90);
    EXPECT_LT(clopperPearsonLower(230, 250, 0.95), 0.90);
}

TEST(ClopperPearson, LowerBoundBelowPointEstimate)
{
    for (std::size_t k : {10u, 50u, 90u}) {
        const double bound = clopperPearsonLower(k, 100, 0.95);
        EXPECT_LT(bound, static_cast<double>(k) / 100.0);
    }
}

TEST(ClopperPearson, MonotoneInSuccesses)
{
    double previous = -1.0;
    for (std::size_t k = 0; k <= 50; k += 5) {
        const double bound = clopperPearsonLower(k, 50, 0.95);
        EXPECT_GE(bound, previous);
        previous = bound;
    }
}

TEST(ClopperPearson, HigherConfidenceIsMoreConservative)
{
    EXPECT_GT(clopperPearsonLower(45, 50, 0.90),
              clopperPearsonLower(45, 50, 0.99));
}

TEST(ClopperPearson, IntervalContainsPointEstimate)
{
    const auto interval = clopperPearsonInterval(30, 100, 0.95);
    EXPECT_LT(interval.lower, 0.30);
    EXPECT_GT(interval.upper, 0.30);
    EXPECT_GT(interval.lower, 0.0);
    EXPECT_LT(interval.upper, 1.0);
}

TEST(ClopperPearson, RequiredSuccessesIsConsistent)
{
    const std::size_t required = requiredSuccesses(250, 0.90, 0.95);
    EXPECT_GE(clopperPearsonLower(required, 250, 0.95), 0.90);
    ASSERT_GT(required, 0u);
    EXPECT_LT(clopperPearsonLower(required - 1, 250, 0.95), 0.90);
}

TEST(ClopperPearson, RequiredSuccessesUnreachable)
{
    // 10 trials cannot certify a 90% rate at 95% confidence.
    EXPECT_GT(requiredSuccesses(10, 0.90, 0.95), 10u);
}

TEST(ClopperPearson, CoverageProperty)
{
    // Property: for true rate p, the lower bound exceeds p with
    // probability at most (1 - confidence). Simulated check.
    Rng rng(123);
    const double p = 0.85;
    const std::size_t trials = 60;
    int violations = 0;
    constexpr int runs = 2000;
    for (int run = 0; run < runs; ++run) {
        std::size_t successes = 0;
        for (std::size_t t = 0; t < trials; ++t)
            successes += rng.bernoulli(p);
        if (clopperPearsonLower(successes, trials, 0.95) > p)
            ++violations;
    }
    // Expect <= 5% violations (allowing simulation slack).
    EXPECT_LT(violations, static_cast<int>(0.08 * runs));
}

TEST(Summary, MeanAndStddev)
{
    const std::vector<double> xs = {1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(mean(xs), 3.0);
    EXPECT_NEAR(stddev(xs), std::sqrt(2.0), 1e-12);
}

TEST(Summary, GeomeanOfPowers)
{
    EXPECT_NEAR(geomean({1.0, 4.0, 16.0}), 4.0, 1e-12);
}

TEST(Summary, PercentileInterpolation)
{
    std::vector<double> xs = {10, 20, 30, 40};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
}

TEST(Summary, EmpiricalCdfFractions)
{
    EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(0.5), 0.0);
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(2.0), 0.5);
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(10.0), 1.0);
}

TEST(Summary, EmpiricalCdfQuantile)
{
    EmpiricalCdf cdf({5.0, 1.0, 3.0});
    EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 5.0);
}

TEST(Summary, CdfSeriesEndpoints)
{
    EmpiricalCdf cdf({0.0, 1.0, 2.0, 3.0});
    const auto series = cdf.series(5);
    ASSERT_EQ(series.size(), 5u);
    EXPECT_DOUBLE_EQ(series.front().first, 0.0);
    EXPECT_DOUBLE_EQ(series.back().first, 3.0);
    EXPECT_DOUBLE_EQ(series.back().second, 1.0);
}
