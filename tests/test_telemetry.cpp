/**
 * @file
 * Telemetry-layer tests: the determinism contract (bitwise-identical
 * dumps and run reports at MITHRA_THREADS=1/2/8), histogram bucket
 * edges, span call counts, the run-report schema round trip, and the
 * MITHRA_EXPECTS death on duplicate stat registration.
 *
 * The thread-count sweep exercises the striped-counter merge under
 * real concurrency, so this suite carries the tsan label.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/parallel.hh"
#include "telemetry/run_report.hh"
#include "telemetry/span.hh"
#include "telemetry/stats.hh"

namespace
{

using namespace mithra;
using namespace mithra::telemetry;

// Death tests first (gtest runs *DeathTest suites before the rest, so
// they fork before any pool worker threads exist).

TEST(TelemetryDeathTest, DuplicateRegistrationDies)
{
    StatsRegistry registry;
    registry.addCounter("dup.stat");
    EXPECT_DEATH(registry.addCounter("dup.stat"),
                 "precondition.*duplicate stat registration");
    // The name is reserved across kinds, not per kind.
    EXPECT_DEATH(registry.addGauge("dup.stat"),
                 "precondition.*duplicate stat registration");
    EXPECT_DEATH(registry.addHistogram("dup.stat", "", 0.0, 1.0, 4),
                 "precondition.*duplicate stat registration");
}

TEST(TelemetryDeathTest, GetOrCreateKindMismatchDies)
{
    StatsRegistry registry;
    registry.addCounter("kinds.counter");
    registry.histogram("kinds.hist", 0.0, 1.0, 8);
    EXPECT_DEATH(registry.gauge("kinds.counter"),
                 "precondition.*exists with a different kind");
    EXPECT_DEATH(registry.histogram("kinds.hist", 0.0, 1.0, 16),
                 "precondition.*different bucketing");
}

TEST(Telemetry, CounterStripesMergeExactly)
{
    StatsRegistry registry;
    Counter &counter = registry.addCounter("stripes.hits");
    constexpr std::size_t iterations = 100000;
    parallelFor(0, iterations, 128,
                [&](std::size_t) { counter.increment(); });
    EXPECT_EQ(counter.value(),
              static_cast<std::int64_t>(iterations));
    counter.reset();
    EXPECT_EQ(counter.value(), 0);
}

TEST(Telemetry, HistogramBucketEdges)
{
    Histogram histogram("edges", "", 0.0, 1.0, 4);
    EXPECT_DOUBLE_EQ(histogram.bucketWidth(), 0.25);

    histogram.record(0.0);    // lo is inclusive: bucket 0
    histogram.record(0.25);   // exact interior edge: bucket 1, not 0
    histogram.record(0.9999); // last bucket
    histogram.record(1.0);    // hi is exclusive: overflow
    histogram.record(-0.001); // underflow
    histogram.record(7.0);    // overflow

    EXPECT_EQ(histogram.samples(), 6);
    EXPECT_EQ(histogram.bucketCountAt(0), 1);
    EXPECT_EQ(histogram.bucketCountAt(1), 1);
    EXPECT_EQ(histogram.bucketCountAt(2), 0);
    EXPECT_EQ(histogram.bucketCountAt(3), 1);
    EXPECT_EQ(histogram.underflows(), 1);
    EXPECT_EQ(histogram.overflows(), 2);
    // min/max track every sample, including under/overflows.
    EXPECT_DOUBLE_EQ(histogram.minSample(), -0.001);
    EXPECT_DOUBLE_EQ(histogram.maxSample(), 7.0);

    histogram.reset();
    EXPECT_EQ(histogram.samples(), 0);
    EXPECT_DOUBLE_EQ(histogram.minSample(), 0.0);
    EXPECT_DOUBLE_EQ(histogram.maxSample(), 0.0);
}

TEST(Telemetry, GaugeIsLastWriteWins)
{
    StatsRegistry registry;
    Gauge &gauge = registry.gauge("gauge.lww");
    gauge.set(1.0);
    gauge.set(2.5);
    EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
    EXPECT_EQ(registry.findGauge("gauge.lww"), &gauge);
    EXPECT_EQ(registry.findCounter("gauge.lww"), nullptr);
}

TEST(Telemetry, VolatileStatsAreExcludedByDefault)
{
    StatsRegistry registry;
    registry.addCounter("stable.count").add(3);
    registry.addCounter("placement.count", "", /*isVolatile=*/true)
        .add(9);

    const std::string quiet = registry.dump(false);
    EXPECT_NE(quiet.find("stable.count"), std::string::npos);
    EXPECT_EQ(quiet.find("placement.count"), std::string::npos);

    const std::string full = registry.dump(true);
    EXPECT_NE(full.find("placement.count"), std::string::npos);

    const Json quietJson = registry.toJson(false);
    EXPECT_EQ(quietJson.find("counters")->find("placement.count"),
              nullptr);
    const Json fullJson = registry.toJson(true);
    ASSERT_NE(fullJson.find("counters")->find("placement.count"),
              nullptr);
    EXPECT_EQ(
        fullJson.find("counters")->find("placement.count")->asInt(), 9);
}

TEST(Telemetry, SpanSitesAggregateCallCounts)
{
    SpanRegistry registry;
    SpanSite &site = registry.site("test.span");
    EXPECT_EQ(&registry.site("test.span"), &site);

    for (int i = 0; i < 5; ++i) {
        ScopedSpan span(site);
    }
    EXPECT_EQ(site.calls(), 5);

    // Counts-only export carries no timing keys.
    const Json quiet = registry.toJson(false);
    const Json *entry = quiet.find("test.span");
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->find("calls")->asInt(), 5);
    EXPECT_EQ(entry->find("wall_ns"), nullptr);
    const Json timed = registry.toJson(true);
    EXPECT_NE(timed.find("test.span")->find("wall_ns"), nullptr);

    registry.resetValues();
    EXPECT_EQ(site.calls(), 0);
}

TEST(Telemetry, RunReportSchemaRoundTrips)
{
    RunReport report("schema_round_trip");
    report.addMetric("speedup", 2.5);
    report.addMetric("invocations", std::int64_t{1024});
    report.addMetric("design", std::string("table"));

    const Json document = report.toJson();
    const ParseResult parsed = parseJson(document.dump(2));
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_TRUE(parsed.value == document);
    EXPECT_EQ(validateReport(parsed.value), "");

    EXPECT_EQ(parsed.value.find("schema")->asString(),
              reportSchemaName);
    EXPECT_EQ(parsed.value.find("schemaVersion")->asInt(),
              reportSchemaVersion);
    EXPECT_EQ(parsed.value.find("name")->asString(),
              "schema_round_trip");
    const Json *metrics = parsed.value.find("metrics");
    ASSERT_NE(metrics, nullptr);
    EXPECT_DOUBLE_EQ(metrics->find("speedup")->asNumber(), 2.5);
    EXPECT_EQ(metrics->find("invocations")->kind(), Json::Kind::Int);
    EXPECT_EQ(metrics->find("design")->asString(), "table");
}

TEST(Telemetry, ValidateReportRejectsBadDocuments)
{
    EXPECT_NE(validateReport(Json(std::int64_t{1})), "");

    const auto tampered = [](const char *key, Json value) {
        Json document = RunReport("tamper").toJson();
        document[key] = std::move(value);
        return validateReport(document);
    };
    EXPECT_NE(tampered("schema", Json("other-schema")), "");
    EXPECT_NE(tampered("schemaVersion",
                       Json(reportSchemaVersion + 1)),
              "");
    EXPECT_NE(tampered("name", Json("")), "");
    EXPECT_NE(tampered("metrics", Json(std::int64_t{3})), "");
    EXPECT_NE(tampered("stats", Json(Json::Object{})), "");
    EXPECT_NE(tampered("spans", Json()), "");
}

/**
 * The headline guarantee: the same workload produces bitwise-identical
 * stats dumps and run-report documents at pool widths 1, 2 and 8.
 * Width 1 is the exact serial path, so this also proves the striped
 * parallel accumulation reproduces serial results.
 */
TEST(Telemetry, DumpAndReportAreBitwiseStableAcrossThreadCounts)
{
    // Span wall/CPU times may never leak into the compared documents.
    ::unsetenv("MITHRA_REPORT_TIMING");

    auto &stats = StatsRegistry::global();
    auto &spans = SpanRegistry::global();
    Counter &items = stats.counter("test.determinism.items");
    Histogram &values =
        stats.histogram("test.determinism.values", 0.0, 1.0, 10);

    const std::size_t originalWidth = parallelThreadCount();
    std::vector<std::string> dumps;
    std::vector<std::string> reports;
    for (const std::size_t width : {1u, 2u, 8u}) {
        setParallelThreadCount(width);
        stats.resetValues();
        spans.resetValues();
        {
            ScopedSpan span(spans.site("test.determinism.region"));
            parallelFor(0, 4096, 64, [&](std::size_t i) {
                items.add(1);
                values.record(static_cast<double>(i % 100) / 100.0);
            });
        }
        stats.gauge("test.determinism.gauge")
            .set(static_cast<double>(items.value()));

        dumps.push_back(stats.dump(false));
        reports.push_back(RunReport("determinism_check").toJson().dump());
    }
    setParallelThreadCount(originalWidth);

    ASSERT_EQ(dumps.size(), 3u);
    EXPECT_EQ(items.value(), 4096); // one increment per index, exact
    EXPECT_EQ(dumps[0], dumps[1]);
    EXPECT_EQ(dumps[0], dumps[2]);
    EXPECT_EQ(reports[0], reports[1]);
    EXPECT_EQ(reports[0], reports[2]);

    // Sanity: the compared dump actually contains the workload's stats.
    EXPECT_NE(dumps[0].find("test.determinism.items"),
              std::string::npos);
    EXPECT_NE(dumps[0].find("test.determinism.values::samples"),
              std::string::npos);
}

} // namespace
