/**
 * @file
 * Domain example: statistical guarantees for approximate option
 * pricing.
 *
 * A trading platform wants NPU-accelerated Black-Scholes pricing but
 * must bound the pricing error: at most 5% average relative error, on
 * at least S% of market snapshots, with 95% confidence. This example
 * sweeps the success-rate knob S and shows how MITHRA's tuned
 * threshold, invocation rate and delivered quality respond — the
 * "price of a guarantee" tradeoff (paper Figure 10).
 *
 * Usage: finance_guarantee [datasets]
 */

#include <cstdio>
#include <cstdlib>

#include "core/pipeline.hh"
#include "core/report.hh"
#include "core/runtime.hh"

using namespace mithra;

int
main(int argc, char **argv)
{
    const std::size_t datasets = argc > 1
        ? static_cast<std::size_t>(std::atoi(argv[1]))
        : 60;

    core::PipelineOptions options;
    options.compileDatasetCount = datasets;
    core::Pipeline pipeline(options);
    const auto workload = pipeline.compile("blackscholes");
    const auto validation = core::makeValidationSet(workload, datasets);

    std::printf("Pricing error with unconditional acceleration: "
                "%.2f%%\n\n",
                workload.fullApproxLossMean);

    core::TablePrinter table({"success rate S", "threshold",
                              "invocation rate", "mean error",
                              "snapshots in contract", "speedup"});

    for (double successRate : {0.50, 0.70, 0.80, 0.90}) {
        core::QualitySpec spec;
        spec.maxQualityLossPct = 5.0;
        spec.confidence = 0.95;
        spec.successRate = successRate;

        const auto threshold = pipeline.tuneThreshold(workload, spec);
        const core::Evaluator evaluator(workload, spec,
                                        threshold.threshold);
        const auto oracle = evaluator.evaluateOracle(validation);

        table.addRow({core::fmtPct(100.0 * successRate, 0),
                      core::fmtPct(threshold.threshold, 3),
                      core::fmtPct(100.0 * oracle.invocationRate),
                      core::fmtPct(oracle.meanQualityLoss, 2),
                      std::to_string(oracle.successes) + "/"
                          + std::to_string(oracle.trials),
                      core::fmtRatio(oracle.speedup)});
    }
    table.print();

    std::printf("\nTighter guarantees need tighter thresholds: fewer "
                "invocations reach the accelerator\nand the speedup "
                "shrinks — the programmer chooses the point on this "
                "curve.\n");
    return 0;
}
