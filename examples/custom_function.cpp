/**
 * @file
 * Extensibility example: bringing your own safe-to-approximate
 * function to MITHRA.
 *
 * Implements a minimal axbench::Benchmark for a user kernel — the
 * polar conversion (x, y) -> (r, theta) — and runs the whole MITHRA
 * flow on it: NPU training, statistical threshold tuning, classifier
 * training and validation on unseen datasets. This is the template to
 * follow for onboarding new workloads.
 *
 * Usage: custom_function [datasets]
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/rng.hh"
#include "core/pipeline.hh"
#include "core/report.hh"
#include "core/runtime.hh"

using namespace mithra;

namespace
{

/** The workload's datasets: a batch of (x, y) points. */
struct PolarDataset final : axbench::Dataset
{
    std::vector<float> xs, ys;
};

/** Polar conversion as an AxBench-style benchmark. */
class PolarBenchmark final : public axbench::Benchmark
{
  public:
    static constexpr std::size_t pointsPerDataset = 2048;

    std::string name() const override { return "polar"; }
    std::string domain() const override { return "Geometry"; }
    axbench::QualityMetric metric() const override
    {
        return axbench::QualityMetric::AvgRelativeError;
    }
    npu::Topology npuTopology() const override { return {2, 8, 2}; }
    npu::TrainerOptions npuTrainerOptions() const override
    {
        npu::TrainerOptions options;
        options.epochs = 120;
        options.learningRate = 0.4f;
        return options;
    }
    unsigned tableQuantizerBits() const override { return 4; }

    std::unique_ptr<axbench::Dataset> makeDataset(
        std::uint64_t seed) const override
    {
        Rng rng(seed);
        auto dataset = std::make_unique<PolarDataset>();
        // Points cluster in an annulus sector that varies per dataset.
        const double radius = rng.uniform(0.5, 2.0);
        const double sector = rng.uniform(0.3, 1.2);
        for (std::size_t i = 0; i < pointsPerDataset; ++i) {
            const double r = radius * (0.8 + 0.4 * rng.uniform());
            const double a = sector * rng.uniform() + 0.1;
            dataset->xs.push_back(
                static_cast<float>(r * std::cos(a)));
            dataset->ys.push_back(
                static_cast<float>(r * std::sin(a)));
        }
        return dataset;
    }

    axbench::InvocationTrace trace(
        const axbench::Dataset &dataset) const override
    {
        const auto &ds = dynamic_cast<const PolarDataset &>(dataset);
        axbench::InvocationTrace trace(2, 2);
        for (std::size_t i = 0; i < ds.xs.size(); ++i) {
            const float r = std::hypot(ds.xs[i], ds.ys[i]);
            const float theta = std::atan2(ds.ys[i], ds.xs[i]);
            trace.append({ds.xs[i], ds.ys[i]}, {r, theta});
        }
        return trace;
    }

    axbench::FinalOutput recompose(
        const axbench::Dataset &, const axbench::InvocationTrace &trace,
        const std::vector<std::uint8_t> &useAccel) const override
    {
        axbench::FinalOutput out;
        for (std::size_t i = 0; i < trace.count(); ++i) {
            const auto chosen = useAccel[i] ? trace.approxOutput(i)
                                            : trace.preciseOutput(i);
            out.elements.push_back(chosen[0]);
            out.elements.push_back(chosen[1]);
        }
        return out;
    }

    Vec targetFunction(const Vec &input) const override
    {
        const float r = std::hypot(input[0], input[1]);
        const float theta = std::atan2(input[1], input[0]);
        return {r, theta};
    }

    axbench::BenchmarkCosts measureCosts() const override
    {
        // hypot + atan2 dominate: ~2 transcendental + a few ALU ops.
        axbench::BenchmarkCosts costs;
        costs.targetOpsPerInvocation.transcendental = 2;
        costs.targetOpsPerInvocation.mul = 2;
        costs.targetOpsPerInvocation.addSub = 2;
        costs.targetOpsPerInvocation.memory = 4;
        costs.otherOpsPerDataset.memory = 4 * pointsPerDataset;
        costs.otherOpsPerDataset.addSub = 2 * pointsPerDataset;
        return costs;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    const std::size_t datasets = argc > 1
        ? static_cast<std::size_t>(std::atoi(argv[1]))
        : 40;

    // The pipeline works with any Benchmark implementation; here we
    // drive the pieces directly since "polar" is not in the registry.
    const core::Pipeline pipeline({.compileDatasetCount = datasets});
    PolarBenchmark bench;

    // 1. Compile by hand (the registry-based Pipeline::compile is for
    //    built-in workloads): datasets, traces, NPU, threshold problem.
    core::CompiledWorkload workload;
    workload.benchmark = std::make_unique<PolarBenchmark>();
    VecBatch trainIn, trainOut;
    for (std::size_t d = 0; d < datasets; ++d) {
        auto dataset = bench.makeDataset(1000 + d);
        auto trace = std::make_unique<axbench::InvocationTrace>(
            bench.trace(*dataset));
        for (std::size_t i = 0; i < trace->count(); i += 7) {
            trainIn.push_back(trace->inputVec(i));
            const auto out = trace->preciseOutput(i);
            trainOut.emplace_back(out.begin(), out.end());
        }
        workload.compileDatasets.push_back(std::move(dataset));
        workload.compileTraces.push_back(std::move(trace));
    }
    workload.npuTrainMse = workload.accel.trainToMimic(
        bench.npuTopology(), trainIn, trainOut,
        bench.npuTrainerOptions());

    workload.problem.benchmark = workload.benchmark.get();
    for (std::size_t d = 0; d < datasets; ++d) {
        workload.compileTraces[d]->attachApproximations(workload.accel);
        workload.problem.entries.push_back(
            core::ThresholdProblem::makeEntry(
                *workload.benchmark, *workload.compileDatasets[d],
                *workload.compileTraces[d]));
    }

    const auto costs = bench.measureCosts();
    const sim::CoreModel core;
    const npu::NpuCostModel npuCost;
    workload.costs = costs;
    workload.profile.preciseCycles =
        core.cycles(costs.targetOpsPerInvocation) + 8.0;
    workload.profile.preciseEnergyPj =
        core.energyPj(workload.profile.preciseCycles);
    workload.profile.accelCycles = static_cast<double>(
        npuCost.invocationCycles(workload.accel.network()));
    workload.profile.accelEnergyPj =
        npuCost.invocationEnergyPj(workload.accel.network());
    workload.profile.invocationsPerDataset =
        workload.compileTraces.front()->count();
    workload.profile.otherCyclesPerDataset =
        core.cycles(costs.otherOpsPerDataset);
    workload.profile.otherEnergyPjPerDataset =
        core.energyPj(workload.profile.otherCyclesPerDataset);

    // 2. Tune the knob and train the classifiers.
    core::QualitySpec spec;
    spec.maxQualityLossPct = 5.0;
    spec.confidence = 0.95;
    spec.successRate = datasets >= 60 ? 0.90 : 0.75;
    const auto package = pipeline.tune(workload, spec);

    std::printf("custom workload    : %s (%s)\n", bench.name().c_str(),
                bench.domain().c_str());
    std::printf("NPU train MSE      : %.5f\n", workload.npuTrainMse);
    std::printf("tuned threshold    : %.5f (bound %.3f)\n",
                package.threshold.threshold,
                package.threshold.successLowerBound);

    // 3. Validate on unseen datasets.
    std::vector<core::ValidationEntry> entries;
    core::ValidationSet validation;
    for (std::size_t d = 0; d < datasets; ++d) {
        core::ValidationEntry entry;
        entry.dataset = bench.makeDataset(90000 + d);
        entry.trace = std::make_unique<axbench::InvocationTrace>(
            bench.trace(*entry.dataset));
        entry.trace->attachApproximations(workload.accel);
        entry.preciseFinal =
            bench.preciseOutput(*entry.dataset, *entry.trace);
        validation.entries.push_back(std::move(entry));
    }

    const core::Evaluator evaluator(workload, spec,
                                    package.threshold.threshold);
    core::TablePrinter table({"design", "quality loss", "in contract",
                              "invocation rate", "speedup"});
    auto addRow = [&](const core::DesignEvaluation &eval) {
        table.addRow({eval.kind, core::fmtPct(eval.meanQualityLoss),
                      std::to_string(eval.successes) + "/"
                          + std::to_string(eval.trials),
                      core::fmtPct(100.0 * eval.invocationRate),
                      core::fmtRatio(eval.speedup)});
    };
    addRow(evaluator.evaluateFullApprox(validation));
    addRow(evaluator.evaluateOracle(validation));
    addRow(evaluator.evaluate(*package.table, validation));
    addRow(evaluator.evaluate(*package.neural, validation));
    std::printf("\n");
    table.print();
    return 0;
}
