/**
 * @file
 * Full MITHRA-as-a-service lifecycle over a real socket, against a
 * live mithra-serve:
 *
 *   1. submit an async compile/train job (POST /jobs),
 *   2. poll it to completion (GET /jobs/<id>),
 *   3. stream invocations through the batched certified endpoint
 *      (POST /invoke), checking every batch's quality certificate,
 *   4. fetch and validate the telemetry document (GET /metrics).
 *
 * The run prints a lifecycle digest: an FNV-1a hash over every batch's
 * decision sequence and certificate (minus the server-assigned model
 * id). Decisions and certificates are a pure function of the request
 * sequence, so two runs — even against servers configured with
 * different MITHRA_THREADS / MITHRA_SERVE_WORKERS — print the same
 * digest. CI runs this twice under different settings and diffs.
 *
 * Usage: service_client <port> [benchmark] [invocations] [batch]
 *   port         mithra-serve's port on 127.0.0.1
 *   benchmark    axbench benchmark to compile (default inversek2j)
 *   invocations  total streamed through /invoke (default 100000)
 *   batch        rows per /invoke request (default 4096)
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "axbench/registry.hh"
#include "service/client.hh"
#include "telemetry/json.hh"
#include "telemetry/run_report.hh"

using namespace mithra;
using telemetry::Json;

namespace
{

std::uint64_t
fnv1a(std::uint64_t hash, const void *data, std::size_t size)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

[[noreturn]] void
die(const std::string &what)
{
    std::fprintf(stderr, "service_client: %s\n", what.c_str());
    std::exit(1);
}

Json
parseBody(const service::ClientResult &result,
          const std::string &context)
{
    if (!result.ok)
        die(context + ": " + result.error);
    const telemetry::ParseResult parsed =
        telemetry::parseJson(result.body);
    if (!parsed.ok)
        die(context + ": unparseable body: " + parsed.error);
    return parsed.value;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        die("usage: service_client <port> [benchmark] [invocations] "
            "[batch]");
    const auto port =
        static_cast<std::uint16_t>(std::atoi(argv[1]));
    const std::string benchmark = argc > 2 ? argv[2] : "inversek2j";
    const std::size_t invocations = argc > 3
        ? static_cast<std::size_t>(std::atol(argv[3]))
        : 100000;
    const std::size_t batch = argc > 4
        ? static_cast<std::size_t>(std::atol(argv[4]))
        : 4096;

    service::HttpClient client(port);

    // 0. Liveness.
    const service::ClientResult health = client.get("/healthz");
    if (!health.ok || health.status != 200)
        die("server not healthy on port " + std::to_string(port));

    // 1. Submit a compile/train job. The settings are the smallest
    //    that certify the headline contract (see quickstart.cpp).
    const std::string spec = "{\"benchmark\": \"" + benchmark
        + "\", \"design\": \"table\", \"compileDatasets\": 60, "
          "\"npuTrainSamples\": 4000, \"classifierTuples\": 50000}";
    const service::ClientResult submitted =
        client.post("/jobs", spec);
    const Json submitBody = parseBody(submitted, "POST /jobs");
    if (submitted.status != 202)
        die("POST /jobs: status " + std::to_string(submitted.status)
            + ": " + submitted.body);
    const std::string job = submitBody.find("id")->asString();
    std::printf("submitted %s for %s\n", job.c_str(),
                benchmark.c_str());

    // 2. Poll until the pipeline publishes the model.
    for (;;) {
        const service::ClientResult poll =
            client.get("/jobs/" + job);
        const Json body = parseBody(poll, "GET /jobs/" + job);
        const std::string state = body.find("state")->asString();
        if (state == "failed")
            die("job failed: " + body.find("error")->asString());
        if (state == "done") {
            const Json *result = body.find("result");
            std::printf(
                "model ready: threshold %.5f, success bound %.3f\n",
                result->find("threshold")->asNumber(),
                result->find("successLowerBound")->asNumber());
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }

    // 3. Stream invocations through /invoke in batches, drawing
    //    in-distribution inputs from deterministically seeded
    //    datasets of the same benchmark.
    const auto bench = axbench::makeBenchmark(benchmark);
    const std::size_t width = bench->npuTopology().front();
    std::vector<float> rows;
    std::uint64_t datasetSeed = 0x5eed0;
    while (rows.size() < invocations * width) {
        const auto dataset = bench->makeDataset(datasetSeed++);
        const axbench::InvocationTrace trace =
            bench->trace(*dataset);
        const auto flat = trace.inputsFlat();
        rows.insert(rows.end(), flat.begin(), flat.end());
    }
    rows.resize(invocations * width);

    std::uint64_t digest = 0xcbf29ce484222325ULL;
    std::size_t sent = 0;
    std::size_t accelerated = 0;
    std::string watchdogState = "disabled";
    while (sent < invocations) {
        const std::size_t count =
            std::min(batch, invocations - sent);
        std::string body = "{\"model\": \"" + job
            + "\", \"inputs\": [";
        for (std::size_t i = 0; i < count; ++i) {
            body += i ? ",[" : "[";
            for (std::size_t j = 0; j < width; ++j) {
                if (j)
                    body += ',';
                char cell[32];
                std::snprintf(
                    cell, sizeof(cell), "%.9g",
                    static_cast<double>(
                        rows[(sent + i) * width + j]));
                body += cell;
            }
            body += ']';
        }
        body += "]}";

        const service::ClientResult reply =
            client.post("/invoke", body);
        Json invoke = parseBody(reply, "POST /invoke");
        if (reply.status != 200)
            die("POST /invoke: status "
                + std::to_string(reply.status) + ": " + reply.body);

        const Json::Array &decisions =
            invoke.find("decisions")->asArray();
        if (decisions.size() != count)
            die("decision count mismatch");
        for (const Json &decision : decisions) {
            const auto bit =
                static_cast<unsigned char>(decision.asInt());
            accelerated += bit;
            digest = fnv1a(digest, &bit, 1);
        }
        // The certificate minus the server-assigned model id is
        // run-invariant; fold its exact bytes into the digest.
        Json certificate = *invoke.find("certificate");
        certificate.asObject().erase("model");
        const std::string dumped = certificate.dump();
        digest = fnv1a(digest, dumped.data(), dumped.size());
        watchdogState =
            certificate.find("watchdog")
                ? certificate.find("watchdog")->find("state")->asString()
                : "disabled";
        sent += count;
    }
    std::printf("streamed %zu invocations: %.1f%% accelerated, "
                "watchdog %s\n",
                sent, 100.0 * static_cast<double>(accelerated)
                          / static_cast<double>(sent),
                watchdogState.c_str());

    // 4. Telemetry document, schema-checked client-side.
    const service::ClientResult metrics = client.get("/metrics");
    const Json document = parseBody(metrics, "GET /metrics");
    const std::string problem = telemetry::validateMetrics(document);
    if (!problem.empty())
        die("GET /metrics: invalid document: " + problem);
    std::printf(
        "metrics valid: %lld service invocations counted\n",
        static_cast<long long>(document.find("stats")
                                   ->find("counters")
                                   ->find("service.invocations")
                                   ->asInt()));

    std::printf("lifecycle digest: %016llx\n",
                static_cast<unsigned long long>(digest));
    return 0;
}
