/**
 * @file
 * Domain example: a MITHRA-controlled edge-detection pipeline.
 *
 * Runs the sobel workload end to end: generates a procedural scene,
 * compiles MITHRA (NPU + quality knob + table classifier) for a 5%
 * image-diff contract, then processes unseen images and writes the
 * precise and approximate edge maps as PGM files for inspection.
 *
 * Usage: image_pipeline [datasets] [output-prefix]
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "axbench/image.hh"
#include "core/pipeline.hh"
#include "core/report.hh"
#include "core/runtime.hh"

using namespace mithra;

namespace
{

void
writePgm(const std::string &path, const std::vector<float> &pixels,
         std::size_t edge)
{
    std::ofstream out(path, std::ios::binary);
    out << "P5\n" << edge << " " << edge << "\n255\n";
    for (float p : pixels) {
        out.put(static_cast<char>(
            std::clamp(static_cast<int>(p + 0.5f), 0, 255)));
    }
    std::printf("wrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const std::size_t datasets = argc > 1
        ? static_cast<std::size_t>(std::atoi(argv[1]))
        : 40;
    const std::string prefix = argc > 2 ? argv[2] : "sobel";

    // Compile MITHRA for the sobel workload.
    core::PipelineOptions options;
    options.compileDatasetCount = datasets;
    core::Pipeline pipeline(options);
    const auto workload = pipeline.compile("sobel");

    core::QualitySpec spec;
    spec.maxQualityLossPct = 5.0;
    spec.confidence = 0.95;
    spec.successRate = datasets >= 60 ? 0.90 : 0.75;
    const auto package = pipeline.tune(workload, spec);

    // Process one unseen image with the table-based design.
    const auto validation = core::makeValidationSet(workload, 1);
    const auto &entry = validation.entries.front();
    const auto &trace = *entry.trace;

    package.table->beginDataset(trace);
    std::vector<std::uint8_t> decisions(trace.count(), 0);
    std::size_t accelerated = 0;
    for (std::size_t i = 0; i < trace.count(); ++i) {
        const bool precise = !package.table->approximationEnabled()
            || package.table->decidePrecise(trace.inputVec(i), i);
        decisions[i] = precise ? 0 : 1;
        accelerated += precise ? 0 : 1;
    }

    const auto preciseEdges = workload.benchmark->preciseOutput(
        *entry.dataset, trace);
    const auto mithraEdges = workload.benchmark->recompose(
        *entry.dataset, trace, decisions);
    const double loss = axbench::qualityLoss(
        workload.benchmark->metric(), preciseEdges, mithraEdges);

    const auto edge = static_cast<std::size_t>(
        std::lround(std::sqrt(
            static_cast<double>(preciseEdges.elements.size()))));
    writePgm(prefix + "_precise.pgm", preciseEdges.elements, edge);
    writePgm(prefix + "_mithra.pgm", mithraEdges.elements, edge);

    std::printf("\nimage            : %zux%zu\n", edge, edge);
    std::printf("invocations      : %zu (one per pixel)\n",
                trace.count());
    std::printf("accelerated      : %s\n",
                core::fmtPct(100.0 * static_cast<double>(accelerated)
                                 / static_cast<double>(trace.count()))
                    .c_str());
    std::printf("image diff       : %s (contract: <= %s)\n",
                core::fmtPct(loss, 2).c_str(),
                core::fmtPct(spec.maxQualityLossPct, 1).c_str());
    std::printf("threshold (knob) : %.4f\n",
                package.threshold.threshold);
    return 0;
}
