/**
 * @file
 * Quickstart: compile MITHRA for one benchmark, tune the quality knob
 * for a 5% quality-loss contract at 95% confidence / 90% success rate,
 * and evaluate the oracle, table-based and neural designs on unseen
 * datasets.
 *
 * Usage: quickstart [benchmark] [datasets]
 *   benchmark  one of blackscholes fft inversek2j jmeint jpeg sobel
 *              (default blackscholes)
 *   datasets   compile/validation dataset count (default 60 for a
 *              fast demo — the smallest count that can certify the
 *              headline contract; the paper uses 250)
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/pipeline.hh"
#include "core/report.hh"
#include "core/runtime.hh"

using namespace mithra;

int
main(int argc, char **argv)
{
    const std::string benchmark = argc > 1 ? argv[1] : "blackscholes";
    const std::size_t datasets = argc > 2
        ? static_cast<std::size_t>(std::atoi(argv[2]))
        : 60;

    // 1. Compile: generate representative datasets, train the NPU,
    //    trace every accelerator invocation.
    core::PipelineOptions options;
    options.compileDatasetCount = datasets;
    core::Pipeline pipeline(options);
    const auto workload = pipeline.compile(benchmark);

    std::printf("benchmark          : %s\n", benchmark.c_str());
    std::printf("NPU topology       : %s (train MSE %.4g)\n",
                npu::topologyName(workload.benchmark->npuTopology())
                    .c_str(),
                workload.npuTrainMse);
    std::printf("full-approx loss   : %.2f%%\n",
                workload.fullApproxLossMean);

    // 2. Tune the knob: find the accelerator-error threshold that
    //    meets the contract with statistical guarantees, then train
    //    both hardware classifiers against it.
    core::QualitySpec spec;
    spec.maxQualityLossPct = 5.0;
    spec.confidence = 0.95;
    spec.successRate = 0.90;
    const auto package = pipeline.tune(workload, spec);

    std::printf("threshold          : %.5f (success bound %.3f)\n",
                package.threshold.threshold,
                package.threshold.successLowerBound);
    std::printf("table classifier   : %zu tables x %s, %s compressed\n",
                package.table->hardware().geometry().numTables,
                core::fmtBytes(static_cast<double>(
                    package.table->hardware().geometry().tableBytes))
                    .c_str(),
                core::fmtBytes(static_cast<double>(
                    package.table->compressedSizeBytes())).c_str());
    std::printf("neural classifier  : %s (holdout acc %.3f)\n",
                npu::topologyName(package.neural->topology()).c_str(),
                package.neural->selectionAccuracy());

    // 3. Validate on unseen datasets.
    const auto validation = core::makeValidationSet(workload, datasets);
    core::Evaluator evaluator(workload, spec,
                              package.threshold.threshold);

    core::TablePrinter table({"design", "quality loss", "success",
                              "CP bound", "invocation rate", "speedup",
                              "energy gain", "FP", "FN"});
    auto addRow = [&](const core::DesignEvaluation &eval) {
        table.addRow({eval.kind, core::fmtPct(eval.meanQualityLoss),
                      std::to_string(eval.successes) + "/"
                          + std::to_string(eval.trials),
                      core::fmtPct(100.0 * eval.successLowerBound),
                      core::fmtPct(100.0 * eval.invocationRate),
                      core::fmtRatio(eval.speedup),
                      core::fmtRatio(eval.energyReduction),
                      core::fmtPct(100.0 * eval.falsePositiveRate),
                      core::fmtPct(100.0 * eval.falseNegativeRate)});
    };

    addRow(evaluator.evaluateFullApprox(validation));
    addRow(evaluator.evaluateOracle(validation));
    addRow(evaluator.evaluate(*package.table, validation));
    addRow(evaluator.evaluate(*package.neural, validation));
    std::printf("\n");
    table.print();
    return 0;
}
