/*
 * Fixture: a shared object that is not a MITHRA plugin at all — it
 * exports neither mithra_plugin_abi_version nor
 * mithra_plugin_register. The loader must say so by name.
 */
int fixture_no_entry_marker = 42;
