/*
 * Fixture: exercises the backend half of the ABI. Registers an
 * accelerator backend ("mean1", a constant predictor that memorizes
 * the mean training output) plus a tiny workload ("toyline") that
 * declares `backend = "mean1"`. The test drives
 * makeAccelerator()/trainToMimic()/invoke() directly and checks the
 * cost numbers round-trip.
 */
#include <stdlib.h>

#include "mithra_plugin.h"

/* ------------------------- backend: mean1 ------------------------ */

typedef struct mean1_state {
    float mean[4];
    size_t width;
} mean1_state;

static void *
mean1_create(void *ctx)
{
    mean1_state *st = (mean1_state *)malloc(sizeof(mean1_state));
    size_t i;
    (void)ctx;
    if (!st)
        return NULL;
    for (i = 0; i < 4; ++i)
        st->mean[i] = 0.0f;
    st->width = 0;
    return st;
}

static void
mean1_destroy(void *ctx, void *instance)
{
    (void)ctx;
    free(instance);
}

static double
mean1_train(void *ctx, void *instance, const float *inputs,
            const float *outputs, size_t count, size_t input_width,
            size_t output_width, uint64_t seed)
{
    mean1_state *st = (mean1_state *)instance;
    double sse = 0.0;
    size_t i, j;

    (void)ctx;
    (void)inputs;
    (void)input_width;
    (void)seed;
    if (output_width > 4 || count == 0)
        return -1.0;
    st->width = output_width;
    for (j = 0; j < output_width; ++j) {
        double sum = 0.0;
        for (i = 0; i < count; ++i)
            sum += (double)outputs[i * output_width + j];
        st->mean[j] = (float)(sum / (double)count);
    }
    for (i = 0; i < count; ++i)
        for (j = 0; j < output_width; ++j) {
            const double diff = (double)outputs[i * output_width + j]
                - (double)st->mean[j];
            sse += diff * diff;
        }
    return sse / (double)(count * output_width);
}

static void
mean1_invoke(void *ctx, const void *instance, const float *input,
             float *output)
{
    const mean1_state *st = (const mean1_state *)instance;
    size_t j;
    (void)ctx;
    (void)input;
    for (j = 0; j < st->width; ++j)
        output[j] = st->mean[j];
}

static void
mean1_cost(void *ctx, const void *instance, uint64_t *cycles,
           double *pico_joules)
{
    (void)ctx;
    (void)instance;
    *cycles = 12;
    *pico_joules = 4.5;
}

/* ------------------------ workload: toyline ---------------------- */

static const size_t toyline_topology[] = {2, 4, 1};

static void *
toyline_dataset_create(void *ctx, uint64_t seed)
{
    uint64_t *box = (uint64_t *)malloc(sizeof(uint64_t));
    (void)ctx;
    if (box)
        *box = seed;
    return box;
}

static void
toyline_dataset_destroy(void *ctx, void *dataset)
{
    (void)ctx;
    free(dataset);
}

static size_t
toyline_dataset_invocations(void *ctx, const void *dataset)
{
    (void)ctx;
    (void)dataset;
    return 64;
}

static void
toyline_dataset_input(void *ctx, const void *dataset, size_t index,
                      float *input)
{
    const uint64_t *seed = (const uint64_t *)dataset;
    (void)ctx;
    input[0] = (float)((*seed + 3u * index) % 101u) / 101.0f;
    input[1] = (float)((*seed + 7u * index) % 103u) / 103.0f;
}

static void
toyline_target(void *ctx, const float *input, float *output)
{
    (void)ctx;
    output[0] = 0.4f * input[0] + 0.3f * input[1] + 0.1f;
}

static size_t
toyline_final_size(void *ctx, const void *dataset)
{
    (void)ctx;
    (void)dataset;
    return 64;
}

/* --------------------------- registration ------------------------ */

uint32_t
mithra_plugin_abi_version(void)
{
    return MITHRA_PLUGIN_ABI_VERSION;
}

int
mithra_plugin_register(const mithra_host_v1 *host)
{
    mithra_backend_v1 backend;
    mithra_workload_v1 workload;
    size_t i;
    unsigned char *bytes;
    int rc;

    bytes = (unsigned char *)&backend;
    for (i = 0; i < sizeof(backend); ++i)
        bytes[i] = 0;
    backend.struct_size = sizeof(backend);
    backend.name = "mean1";
    backend.create = mean1_create;
    backend.destroy = mean1_destroy;
    backend.train = mean1_train;
    backend.invoke = mean1_invoke;
    backend.invocation_cost = mean1_cost;
    rc = host->register_backend(host->host_ctx, &backend);
    if (rc != 0)
        return rc;

    bytes = (unsigned char *)&workload;
    for (i = 0; i < sizeof(workload); ++i)
        bytes[i] = 0;
    workload.struct_size = sizeof(workload);
    workload.name = "toyline";
    workload.domain = "Fixture";
    workload.metric = MITHRA_METRIC_AVG_RELATIVE_ERROR;
    workload.input_width = 2;
    workload.output_width = 1;
    workload.topology = toyline_topology;
    workload.topology_len = 3;
    workload.dataset_create = toyline_dataset_create;
    workload.dataset_destroy = toyline_dataset_destroy;
    workload.dataset_invocations = toyline_dataset_invocations;
    workload.dataset_input = toyline_dataset_input;
    workload.target_function = toyline_target;
    workload.final_size = toyline_final_size;
    workload.backend = "mean1";

    return host->register_workload(host->host_ctx, &workload);
}
