/*
 * Fixture: claims a future ABI version. The loader must reject it
 * with a "rebuild against this tree's include/mithra_plugin.h" error
 * before ever calling mithra_plugin_register.
 */
#include "mithra_plugin.h"

uint32_t
mithra_plugin_abi_version(void)
{
    return 99u;
}

int
mithra_plugin_register(const mithra_host_v1 *host)
{
    (void)host;
    return 0; /* must be unreachable */
}
