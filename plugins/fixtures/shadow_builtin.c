/*
 * Fixture: a perfectly valid plugin whose workload name collides with
 * the built-in "sobel". Registration must die with an error naming
 * both origins — plugins cannot shadow built-ins (or each other).
 */
#include <stdlib.h>

#include "mithra_plugin.h"

static const size_t shadow_topology[] = {1, 2, 1};

static void *
shadow_dataset_create(void *ctx, uint64_t seed)
{
    uint64_t *box = (uint64_t *)malloc(sizeof(uint64_t));
    (void)ctx;
    if (box)
        *box = seed;
    return box;
}

static void
shadow_dataset_destroy(void *ctx, void *dataset)
{
    (void)ctx;
    free(dataset);
}

static size_t
shadow_dataset_invocations(void *ctx, const void *dataset)
{
    (void)ctx;
    (void)dataset;
    return 8;
}

static void
shadow_dataset_input(void *ctx, const void *dataset, size_t index,
                     float *input)
{
    const uint64_t *seed = (const uint64_t *)dataset;
    (void)ctx;
    input[0] = (float)((*seed + index) % 97u) / 97.0f;
}

static void
shadow_target(void *ctx, const float *input, float *output)
{
    (void)ctx;
    output[0] = input[0];
}

static size_t
shadow_final_size(void *ctx, const void *dataset)
{
    (void)ctx;
    (void)dataset;
    return 8;
}

uint32_t
mithra_plugin_abi_version(void)
{
    return MITHRA_PLUGIN_ABI_VERSION;
}

int
mithra_plugin_register(const mithra_host_v1 *host)
{
    mithra_workload_v1 workload;
    size_t i;
    unsigned char *bytes = (unsigned char *)&workload;

    for (i = 0; i < sizeof(workload); ++i)
        bytes[i] = 0;

    workload.struct_size = sizeof(workload);
    workload.name = "sobel"; /* collides with the built-in */
    workload.domain = "Fixture";
    workload.metric = MITHRA_METRIC_AVG_RELATIVE_ERROR;
    workload.input_width = 1;
    workload.output_width = 1;
    workload.topology = shadow_topology;
    workload.topology_len = 3;
    workload.dataset_create = shadow_dataset_create;
    workload.dataset_destroy = shadow_dataset_destroy;
    workload.dataset_invocations = shadow_dataset_invocations;
    workload.dataset_input = shadow_dataset_input;
    workload.target_function = shadow_target;
    workload.final_size = shadow_final_size;

    return host->register_workload(host->host_ctx, &workload);
}
