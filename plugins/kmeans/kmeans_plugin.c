/*
 * kmeans — the in-tree example MITHRA plugin (docs/PLUGINS.md walks
 * through building this file from scratch).
 *
 * The workload is the distance kernel of one Lloyd-iteration k-means
 * step, the classic approximate-computing target: for every (point,
 * candidate centroid) pair the safe-to-approximate function computes
 * the Euclidean distance, and the application then assigns each point
 * to its nearest centroid. The NPU approximates the distance; the
 * quality metric is the fraction of points whose *assignment* flips
 * ("Cluster Miss Rate") — a custom metric the built-in enum cannot
 * express, computed by the quality_loss hook below.
 *
 * One dataset = KM_POINTS points drawn around KM_K true cluster
 * centers, plus KM_K candidate centroids (the current Lloyd
 * estimate). Invocation order is point-major: invocation i queries
 * point i / KM_K against centroid i % KM_K. The final output is one
 * element per point: the index of its nearest centroid.
 *
 * Determinism: everything derives from the dataset seed through
 * splitmix64. No wall clock, no rand(), no global mutable state.
 */

#include <math.h>
#include <stdlib.h>

#include "mithra_plugin.h"

#define KM_K 4      /* centroids */
#define KM_DIM 3    /* spatial dimensions */
#define KM_POINTS 256
#define KM_INPUT_WIDTH (2 * KM_DIM) /* point xyz + centroid xyz */

enum { KM_INVOCATIONS = KM_POINTS * KM_K };

typedef struct kmeans_dataset {
    float points[KM_POINTS][KM_DIM];
    float centroids[KM_K][KM_DIM];
} kmeans_dataset;

/* ---------------------------------------------------------------- */
/* Seeded generation (splitmix64 -> uniform floats).                 */
/* ---------------------------------------------------------------- */

static uint64_t
splitmix64(uint64_t *state)
{
    uint64_t z;
    *state += 0x9e3779b97f4a7c15ULL;
    z = *state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/* Uniform in [lo, hi), from the high 24 bits. */
static float
uniform(uint64_t *state, float lo, float hi)
{
    const float unit =
        (float)(splitmix64(state) >> 40) / 16777216.0f;
    return lo + (hi - lo) * unit;
}

/* ---------------------------------------------------------------- */
/* Workload hooks.                                                   */
/* ---------------------------------------------------------------- */

static void *
kmeans_dataset_create(void *ctx, uint64_t seed)
{
    kmeans_dataset *ds;
    float truth[KM_K][KM_DIM];
    uint64_t rng = seed ^ 0x6b6d65616e73ULL; /* "kmeans" */
    int k, d, p;

    (void)ctx;
    ds = (kmeans_dataset *)malloc(sizeof(kmeans_dataset));
    if (!ds)
        return NULL;

    /* True cluster centers, well inside the unit cube. */
    for (k = 0; k < KM_K; ++k)
        for (d = 0; d < KM_DIM; ++d)
            truth[k][d] = uniform(&rng, 0.15f, 0.85f);

    /* Points scatter around their center, round-robin membership. */
    for (p = 0; p < KM_POINTS; ++p)
        for (d = 0; d < KM_DIM; ++d)
            ds->points[p][d] = truth[p % KM_K][d]
                + uniform(&rng, -0.08f, 0.08f);

    /* Candidate centroids: the current Lloyd estimate, slightly off
     * the truth. */
    for (k = 0; k < KM_K; ++k)
        for (d = 0; d < KM_DIM; ++d)
            ds->centroids[k][d] = truth[k][d]
                + uniform(&rng, -0.05f, 0.05f);
    return ds;
}

static void
kmeans_dataset_destroy(void *ctx, void *dataset)
{
    (void)ctx;
    free(dataset);
}

static size_t
kmeans_dataset_invocations(void *ctx, const void *dataset)
{
    (void)ctx;
    (void)dataset;
    return KM_INVOCATIONS;
}

static void
kmeans_dataset_input(void *ctx, const void *dataset, size_t index,
                     float *input)
{
    const kmeans_dataset *ds = (const kmeans_dataset *)dataset;
    const size_t p = index / KM_K;
    const size_t k = index % KM_K;
    int d;

    (void)ctx;
    for (d = 0; d < KM_DIM; ++d) {
        input[d] = ds->points[p][d];
        input[KM_DIM + d] = ds->centroids[k][d];
    }
}

/* The safe-to-approximate function: Euclidean point-centroid
 * distance. Pure — the host also calls it on inputs of its own. */
static void
kmeans_target(void *ctx, const float *input, float *output)
{
    float sum = 0.0f;
    int d;

    (void)ctx;
    for (d = 0; d < KM_DIM; ++d) {
        const float diff = input[d] - input[KM_DIM + d];
        sum += diff * diff;
    }
    output[0] = sqrtf(sum);
}

static size_t
kmeans_final_size(void *ctx, const void *dataset)
{
    (void)ctx;
    (void)dataset;
    return KM_POINTS;
}

/* Assign every point to the centroid with the smallest (possibly
 * approximated) distance. Ties break toward the lower index, so the
 * result is a pure function of the distance stream. */
static void
kmeans_recompose(void *ctx, const void *dataset, const float *outputs,
                 size_t count, float *final_out)
{
    size_t p;

    (void)ctx;
    (void)dataset;
    (void)count;
    for (p = 0; p < KM_POINTS; ++p) {
        const float *row = outputs + p * KM_K;
        int best = 0;
        int k;
        for (k = 1; k < KM_K; ++k) {
            if (row[k] < row[best])
                best = k;
        }
        final_out[p] = (float)best;
    }
}

/* Cluster Miss Rate: percent of points whose assignment flipped. */
static double
kmeans_quality_loss(void *ctx, const float *reference,
                    const float *candidate, size_t count)
{
    size_t misses = 0;
    size_t p;

    (void)ctx;
    if (count == 0)
        return 0.0;
    for (p = 0; p < count; ++p) {
        if ((int)reference[p] != (int)candidate[p])
            ++misses;
    }
    return 100.0 * (double)misses / (double)count;
}

/* ---------------------------------------------------------------- */
/* Registration.                                                     */
/* ---------------------------------------------------------------- */

static const size_t kmeans_topology[] = {KM_INPUT_WIDTH, 8, 1};

uint32_t
mithra_plugin_abi_version(void)
{
    return MITHRA_PLUGIN_ABI_VERSION;
}

int
mithra_plugin_register(const mithra_host_v1 *host)
{
    mithra_workload_v1 workload;
    size_t i;
    unsigned char *bytes = (unsigned char *)&workload;

    for (i = 0; i < sizeof(workload); ++i)
        bytes[i] = 0;

    workload.struct_size = sizeof(workload);
    workload.name = "kmeans";
    workload.domain = "Machine Learning";
    workload.metric = MITHRA_METRIC_CUSTOM;
    workload.metric_name = "Cluster Miss Rate";
    workload.quality_loss = kmeans_quality_loss;
    workload.input_width = KM_INPUT_WIDTH;
    workload.output_width = 1;
    workload.topology = kmeans_topology;
    workload.topology_len =
        sizeof(kmeans_topology) / sizeof(kmeans_topology[0]);
    workload.table_quantizer_bits = 0; /* host width policy */
    workload.dataset_create = kmeans_dataset_create;
    workload.dataset_destroy = kmeans_dataset_destroy;
    workload.dataset_invocations = kmeans_dataset_invocations;
    workload.dataset_input = kmeans_dataset_input;
    workload.target_function = kmeans_target;
    workload.final_size = kmeans_final_size;
    workload.recompose = kmeans_recompose;

    /* One distance: 3 subs + 2 adds + 3 muls + 1 sqrt, 6 loads. */
    workload.target_ops.add_sub = 5;
    workload.target_ops.mul = 3;
    workload.target_ops.sqrt_op = 1;
    workload.target_ops.memory = 6;
    /* Argmin bookkeeping per distance: 1 compare, 1 store. */
    workload.other_ops_per_invocation.compare = 1;
    workload.other_ops_per_invocation.memory = 1;

    workload.backend = NULL; /* host NPU */

    return host->register_workload(host->host_ctx, &workload);
}
