#!/usr/bin/env sh
# Check (default) or fix (--fix) C++ formatting with clang-format,
# using the repo-root .clang-format. Exits 0 with a notice when
# clang-format is not installed, so local builds in minimal containers
# are never blocked; CI installs clang-format and gets the real check.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

mode=check
if [ "${1:-}" = "--fix" ]; then
    mode=fix
fi

if ! command -v clang-format >/dev/null 2>&1; then
    echo "check_format: clang-format not found; skipping format check" >&2
    exit 0
fi

files=$(find src bench tests tools examples \
        \( -name '*.cc' -o -name '*.cpp' -o -name '*.hh' \
           -o -name '*.hpp' -o -name '*.h' \) -type f | sort)

if [ "$mode" = fix ]; then
    # shellcheck disable=SC2086
    clang-format -i $files
    echo "check_format: reformatted $(echo "$files" | wc -l) file(s)"
    exit 0
fi

status=0
for f in $files; do
    if ! clang-format --dry-run -Werror "$f" >/dev/null 2>&1; then
        echo "check_format: needs formatting: $f" >&2
        status=1
    fi
done

if [ "$status" -eq 0 ]; then
    echo "check_format: $(echo "$files" | wc -l) file(s) clean"
else
    echo "check_format: run scripts/check_format.sh --fix" >&2
fi
exit "$status"
