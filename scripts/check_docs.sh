#!/usr/bin/env sh
# Documentation gate (CI job `docs`): fails when the docs drift from
# the tree.
#
#   1. README env table must be byte-identical to the generated
#      `mithra-analyze --env-table .` output (the registry in
#      src/common/env_registry.hh is the single source of truth).
#   2. Every relative markdown link and anchor in the curated doc set
#      must resolve: the target file exists, and a `#fragment` matches
#      a real heading slug in the target.
#   3. Every src/ subsystem must be documented in DESIGN.md (at least
#      one `src/<name>` reference), and README must link the docs/
#      pages so they are discoverable.
#
# Usage: scripts/check_docs.sh [path/to/mithra-analyze]
# The env-table check is skipped with a notice when no mithra-analyze
# binary is found (minimal containers are never blocked; CI builds
# the tool and gets the real check).
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

# Resolve a caller-supplied mithra-analyze path before leaving the
# caller's directory — a relative path must not silently stop
# resolving (and skip the env-table check) after the cd below.
if [ "$#" -ge 1 ] && [ -n "$1" ]; then
    case $1 in
        /*) ;;
        *) set -- "$(pwd)/$1" ;;
    esac
fi

cd "$repo_root"

status=0
fail() {
    echo "check_docs: $1" >&2
    status=1
}

# ---------------------------------------------------------------- 1.
# README environment table vs the generated one.
analyze=${1:-}
if [ -z "$analyze" ]; then
    for candidate in build/tools/mithra-analyze/mithra-analyze \
                     build-*/tools/mithra-analyze/mithra-analyze \
                     build-analyze/mithra-analyze; do
        if [ -x "$candidate" ]; then
            analyze=$candidate
            break
        fi
    done
fi

if [ -z "$analyze" ] || [ ! -x "$analyze" ]; then
    echo "check_docs: mithra-analyze not built; skipping env-table check" >&2
else
    generated=$("$analyze" --env-table .)
    # The README table is the contiguous pipe-table block starting at
    # the same header row the generator emits.
    in_readme=$(awk '
        /^\| variable \| values \(default\) \| effect \|$/ { on = 1 }
        on && /^\|/ { print; next }
        on { exit }
    ' README.md)
    if [ "$generated" != "$in_readme" ]; then
        fail "README env table is stale — regenerate with \`$analyze --env-table .\` and paste over the table under '## Environment variables'"
        printf '%s\n' "$generated" > /tmp/check_docs_env_table.$$ 2>/dev/null || true
        printf '%s\n' "$in_readme" | diff -u - /tmp/check_docs_env_table.$$ >&2 || true
        rm -f /tmp/check_docs_env_table.$$
    fi
fi

# ---------------------------------------------------------------- 2.
# Relative links and anchors in the curated doc set.
docs="README.md DESIGN.md EXPERIMENTS.md ROADMAP.md CHANGES.md"
for f in docs/*.md; do
    docs="$docs $f"
done

# GitHub-style heading slug: lowercase, backticks and punctuation
# stripped (hyphens/underscores kept), spaces to hyphens.
slugs_of() {
    sed -n 's/^#\{1,6\} //p' "$1" | awk '{
        gsub(/`/, "")
        line = tolower($0)
        gsub(/[^a-z0-9 _-]/, "", line)
        gsub(/ /, "-", line)
        print line
    }'
}

for doc in $docs; do
    [ -f "$doc" ] || continue
    doc_dir=$(dirname "$doc")
    # Inline links only: every `](target)` occurrence outside fenced
    # code blocks, one target per line.
    targets=$(awk '
        /^```/ { fence = !fence; next }
        fence  { next }
        {
            line = $0
            while (match(line, /\]\([^)]+\)/)) {
                print substr(line, RSTART + 2, RLENGTH - 3)
                line = substr(line, RSTART + RLENGTH)
            }
        }
    ' "$doc")
    for target in $targets; do
        case $target in
            *://*|mailto:*) continue ;;
        esac
        anchor=${target#*#}
        path=${target%%#*}
        if [ "$anchor" = "$target" ]; then
            anchor=""
        fi
        if [ -n "$path" ]; then
            resolved="$doc_dir/$path"
            if [ ! -e "$resolved" ]; then
                fail "$doc: broken relative link \`$target' ($resolved does not exist)"
                continue
            fi
        else
            resolved="$doc"
        fi
        if [ -n "$anchor" ]; then
            case $resolved in
                *.md)
                    if ! slugs_of "$resolved" | grep -qxF "$anchor"; then
                        fail "$doc: anchor \`#$anchor' does not match any heading in $resolved"
                    fi
                    ;;
            esac
        fi
    done
done

# ---------------------------------------------------------------- 3.
# Every src/ subsystem is documented, and the docs/ pages are
# reachable from the README.
for dir in src/*/; do
    name=$(basename "$dir")
    if ! grep -q "src/$name" DESIGN.md; then
        fail "DESIGN.md has no section covering src/$name — document the subsystem (see docs/ARCHITECTURE.md 'Where to change what')"
    fi
done

for page in docs/PLUGINS.md docs/ARCHITECTURE.md; do
    if ! grep -q "$page" README.md; then
        fail "README.md does not link $page"
    fi
done

if [ "$status" -eq 0 ]; then
    echo "check_docs: docs are in sync"
fi
exit "$status"
