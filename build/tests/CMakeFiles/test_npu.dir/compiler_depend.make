# Empty compiler generated dependencies file for test_npu.
# This may be replaced when dependencies are built.
