file(REMOVE_RECURSE
  "CMakeFiles/test_bdi.dir/test_bdi.cpp.o"
  "CMakeFiles/test_bdi.dir/test_bdi.cpp.o.d"
  "test_bdi"
  "test_bdi.pdb"
  "test_bdi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bdi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
