
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_benchmarks.cpp" "tests/CMakeFiles/test_benchmarks.dir/test_benchmarks.cpp.o" "gcc" "tests/CMakeFiles/test_benchmarks.dir/test_benchmarks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mithra_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mithra_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/mithra_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/mithra_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/axbench/CMakeFiles/mithra_axbench.dir/DependInfo.cmake"
  "/root/repo/build/src/npu/CMakeFiles/mithra_npu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mithra_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mithra_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
