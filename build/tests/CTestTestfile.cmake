# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_bdi[1]_include.cmake")
include("/root/repo/build/tests/test_hw[1]_include.cmake")
include("/root/repo/build/tests/test_npu[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_quality[1]_include.cmake")
include("/root/repo/build/tests/test_jpeg_codec[1]_include.cmake")
include("/root/repo/build/tests/test_benchmarks[1]_include.cmake")
include("/root/repo/build/tests/test_threshold[1]_include.cmake")
include("/root/repo/build/tests/test_classifiers[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_experiment[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
