file(REMOVE_RECURSE
  "CMakeFiles/custom_function.dir/custom_function.cpp.o"
  "CMakeFiles/custom_function.dir/custom_function.cpp.o.d"
  "custom_function"
  "custom_function.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_function.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
