file(REMOVE_RECURSE
  "CMakeFiles/finance_guarantee.dir/finance_guarantee.cpp.o"
  "CMakeFiles/finance_guarantee.dir/finance_guarantee.cpp.o.d"
  "finance_guarantee"
  "finance_guarantee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finance_guarantee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
