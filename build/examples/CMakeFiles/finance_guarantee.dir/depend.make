# Empty dependencies file for finance_guarantee.
# This may be replaced when dependencies are built.
