file(REMOVE_RECURSE
  "CMakeFiles/tab2_classifier_sizes.dir/tab2_classifier_sizes.cpp.o"
  "CMakeFiles/tab2_classifier_sizes.dir/tab2_classifier_sizes.cpp.o.d"
  "tab2_classifier_sizes"
  "tab2_classifier_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_classifier_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
