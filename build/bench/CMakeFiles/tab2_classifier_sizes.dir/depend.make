# Empty dependencies file for tab2_classifier_sizes.
# This may be replaced when dependencies are built.
