# Empty dependencies file for fig01_error_cdf.
# This may be replaced when dependencies are built.
