file(REMOVE_RECURSE
  "CMakeFiles/fig09_vs_random.dir/fig09_vs_random.cpp.o"
  "CMakeFiles/fig09_vs_random.dir/fig09_vs_random.cpp.o.d"
  "fig09_vs_random"
  "fig09_vs_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_vs_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
