# Empty compiler generated dependencies file for fig09_vs_random.
# This may be replaced when dependencies are built.
