# Empty dependencies file for fig10_success_sweep.
# This may be replaced when dependencies are built.
