# Empty dependencies file for fig11_pareto.
# This may be replaced when dependencies are built.
