file(REMOVE_RECURSE
  "CMakeFiles/tab3_sw_slowdown.dir/tab3_sw_slowdown.cpp.o"
  "CMakeFiles/tab3_sw_slowdown.dir/tab3_sw_slowdown.cpp.o.d"
  "tab3_sw_slowdown"
  "tab3_sw_slowdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_sw_slowdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
