# Empty dependencies file for tab3_sw_slowdown.
# This may be replaced when dependencies are built.
