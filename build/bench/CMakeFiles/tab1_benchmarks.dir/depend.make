# Empty dependencies file for tab1_benchmarks.
# This may be replaced when dependencies are built.
