file(REMOVE_RECURSE
  "CMakeFiles/tab1_benchmarks.dir/tab1_benchmarks.cpp.o"
  "CMakeFiles/tab1_benchmarks.dir/tab1_benchmarks.cpp.o.d"
  "tab1_benchmarks"
  "tab1_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
