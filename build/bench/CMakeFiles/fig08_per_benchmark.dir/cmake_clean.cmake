file(REMOVE_RECURSE
  "CMakeFiles/fig08_per_benchmark.dir/fig08_per_benchmark.cpp.o"
  "CMakeFiles/fig08_per_benchmark.dir/fig08_per_benchmark.cpp.o.d"
  "fig08_per_benchmark"
  "fig08_per_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_per_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
