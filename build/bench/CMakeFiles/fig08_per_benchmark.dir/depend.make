# Empty dependencies file for fig08_per_benchmark.
# This may be replaced when dependencies are built.
