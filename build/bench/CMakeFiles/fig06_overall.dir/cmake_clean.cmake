file(REMOVE_RECURSE
  "CMakeFiles/fig06_overall.dir/fig06_overall.cpp.o"
  "CMakeFiles/fig06_overall.dir/fig06_overall.cpp.o.d"
  "fig06_overall"
  "fig06_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
