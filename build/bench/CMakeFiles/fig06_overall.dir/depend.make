# Empty dependencies file for fig06_overall.
# This may be replaced when dependencies are built.
