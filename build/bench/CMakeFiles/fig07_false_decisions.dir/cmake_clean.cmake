file(REMOVE_RECURSE
  "CMakeFiles/fig07_false_decisions.dir/fig07_false_decisions.cpp.o"
  "CMakeFiles/fig07_false_decisions.dir/fig07_false_decisions.cpp.o.d"
  "fig07_false_decisions"
  "fig07_false_decisions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_false_decisions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
