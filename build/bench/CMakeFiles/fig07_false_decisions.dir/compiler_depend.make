# Empty compiler generated dependencies file for fig07_false_decisions.
# This may be replaced when dependencies are built.
