file(REMOVE_RECURSE
  "CMakeFiles/mithra_hw.dir/decision_table.cc.o"
  "CMakeFiles/mithra_hw.dir/decision_table.cc.o.d"
  "CMakeFiles/mithra_hw.dir/misr.cc.o"
  "CMakeFiles/mithra_hw.dir/misr.cc.o.d"
  "CMakeFiles/mithra_hw.dir/quantizer.cc.o"
  "CMakeFiles/mithra_hw.dir/quantizer.cc.o.d"
  "libmithra_hw.a"
  "libmithra_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mithra_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
