file(REMOVE_RECURSE
  "libmithra_hw.a"
)
