
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/decision_table.cc" "src/hw/CMakeFiles/mithra_hw.dir/decision_table.cc.o" "gcc" "src/hw/CMakeFiles/mithra_hw.dir/decision_table.cc.o.d"
  "/root/repo/src/hw/misr.cc" "src/hw/CMakeFiles/mithra_hw.dir/misr.cc.o" "gcc" "src/hw/CMakeFiles/mithra_hw.dir/misr.cc.o.d"
  "/root/repo/src/hw/quantizer.cc" "src/hw/CMakeFiles/mithra_hw.dir/quantizer.cc.o" "gcc" "src/hw/CMakeFiles/mithra_hw.dir/quantizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mithra_common.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/mithra_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
