# Empty compiler generated dependencies file for mithra_hw.
# This may be replaced when dependencies are built.
