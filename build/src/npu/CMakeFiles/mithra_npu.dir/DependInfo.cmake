
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/npu/approximator.cc" "src/npu/CMakeFiles/mithra_npu.dir/approximator.cc.o" "gcc" "src/npu/CMakeFiles/mithra_npu.dir/approximator.cc.o.d"
  "/root/repo/src/npu/cost_model.cc" "src/npu/CMakeFiles/mithra_npu.dir/cost_model.cc.o" "gcc" "src/npu/CMakeFiles/mithra_npu.dir/cost_model.cc.o.d"
  "/root/repo/src/npu/mlp.cc" "src/npu/CMakeFiles/mithra_npu.dir/mlp.cc.o" "gcc" "src/npu/CMakeFiles/mithra_npu.dir/mlp.cc.o.d"
  "/root/repo/src/npu/serialize.cc" "src/npu/CMakeFiles/mithra_npu.dir/serialize.cc.o" "gcc" "src/npu/CMakeFiles/mithra_npu.dir/serialize.cc.o.d"
  "/root/repo/src/npu/trainer.cc" "src/npu/CMakeFiles/mithra_npu.dir/trainer.cc.o" "gcc" "src/npu/CMakeFiles/mithra_npu.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mithra_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
