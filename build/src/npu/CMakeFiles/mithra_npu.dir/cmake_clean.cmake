file(REMOVE_RECURSE
  "CMakeFiles/mithra_npu.dir/approximator.cc.o"
  "CMakeFiles/mithra_npu.dir/approximator.cc.o.d"
  "CMakeFiles/mithra_npu.dir/cost_model.cc.o"
  "CMakeFiles/mithra_npu.dir/cost_model.cc.o.d"
  "CMakeFiles/mithra_npu.dir/mlp.cc.o"
  "CMakeFiles/mithra_npu.dir/mlp.cc.o.d"
  "CMakeFiles/mithra_npu.dir/serialize.cc.o"
  "CMakeFiles/mithra_npu.dir/serialize.cc.o.d"
  "CMakeFiles/mithra_npu.dir/trainer.cc.o"
  "CMakeFiles/mithra_npu.dir/trainer.cc.o.d"
  "libmithra_npu.a"
  "libmithra_npu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mithra_npu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
