file(REMOVE_RECURSE
  "libmithra_npu.a"
)
