# Empty compiler generated dependencies file for mithra_npu.
# This may be replaced when dependencies are built.
