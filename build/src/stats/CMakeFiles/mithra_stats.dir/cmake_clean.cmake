file(REMOVE_RECURSE
  "CMakeFiles/mithra_stats.dir/clopper_pearson.cc.o"
  "CMakeFiles/mithra_stats.dir/clopper_pearson.cc.o.d"
  "CMakeFiles/mithra_stats.dir/special_functions.cc.o"
  "CMakeFiles/mithra_stats.dir/special_functions.cc.o.d"
  "CMakeFiles/mithra_stats.dir/summary.cc.o"
  "CMakeFiles/mithra_stats.dir/summary.cc.o.d"
  "libmithra_stats.a"
  "libmithra_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mithra_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
