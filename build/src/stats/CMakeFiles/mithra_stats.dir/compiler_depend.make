# Empty compiler generated dependencies file for mithra_stats.
# This may be replaced when dependencies are built.
