file(REMOVE_RECURSE
  "libmithra_stats.a"
)
