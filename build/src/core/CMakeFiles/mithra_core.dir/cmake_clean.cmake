file(REMOVE_RECURSE
  "CMakeFiles/mithra_core.dir/classifier.cc.o"
  "CMakeFiles/mithra_core.dir/classifier.cc.o.d"
  "CMakeFiles/mithra_core.dir/experiment.cc.o"
  "CMakeFiles/mithra_core.dir/experiment.cc.o.d"
  "CMakeFiles/mithra_core.dir/neural_classifier.cc.o"
  "CMakeFiles/mithra_core.dir/neural_classifier.cc.o.d"
  "CMakeFiles/mithra_core.dir/pipeline.cc.o"
  "CMakeFiles/mithra_core.dir/pipeline.cc.o.d"
  "CMakeFiles/mithra_core.dir/report.cc.o"
  "CMakeFiles/mithra_core.dir/report.cc.o.d"
  "CMakeFiles/mithra_core.dir/runtime.cc.o"
  "CMakeFiles/mithra_core.dir/runtime.cc.o.d"
  "CMakeFiles/mithra_core.dir/table_classifier.cc.o"
  "CMakeFiles/mithra_core.dir/table_classifier.cc.o.d"
  "CMakeFiles/mithra_core.dir/threshold_optimizer.cc.o"
  "CMakeFiles/mithra_core.dir/threshold_optimizer.cc.o.d"
  "CMakeFiles/mithra_core.dir/training_data.cc.o"
  "CMakeFiles/mithra_core.dir/training_data.cc.o.d"
  "libmithra_core.a"
  "libmithra_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mithra_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
