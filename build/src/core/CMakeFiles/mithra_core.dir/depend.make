# Empty dependencies file for mithra_core.
# This may be replaced when dependencies are built.
