
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/classifier.cc" "src/core/CMakeFiles/mithra_core.dir/classifier.cc.o" "gcc" "src/core/CMakeFiles/mithra_core.dir/classifier.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/core/CMakeFiles/mithra_core.dir/experiment.cc.o" "gcc" "src/core/CMakeFiles/mithra_core.dir/experiment.cc.o.d"
  "/root/repo/src/core/neural_classifier.cc" "src/core/CMakeFiles/mithra_core.dir/neural_classifier.cc.o" "gcc" "src/core/CMakeFiles/mithra_core.dir/neural_classifier.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/mithra_core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/mithra_core.dir/pipeline.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/mithra_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/mithra_core.dir/report.cc.o.d"
  "/root/repo/src/core/runtime.cc" "src/core/CMakeFiles/mithra_core.dir/runtime.cc.o" "gcc" "src/core/CMakeFiles/mithra_core.dir/runtime.cc.o.d"
  "/root/repo/src/core/table_classifier.cc" "src/core/CMakeFiles/mithra_core.dir/table_classifier.cc.o" "gcc" "src/core/CMakeFiles/mithra_core.dir/table_classifier.cc.o.d"
  "/root/repo/src/core/threshold_optimizer.cc" "src/core/CMakeFiles/mithra_core.dir/threshold_optimizer.cc.o" "gcc" "src/core/CMakeFiles/mithra_core.dir/threshold_optimizer.cc.o.d"
  "/root/repo/src/core/training_data.cc" "src/core/CMakeFiles/mithra_core.dir/training_data.cc.o" "gcc" "src/core/CMakeFiles/mithra_core.dir/training_data.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mithra_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mithra_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/mithra_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/mithra_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/npu/CMakeFiles/mithra_npu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mithra_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/axbench/CMakeFiles/mithra_axbench.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
