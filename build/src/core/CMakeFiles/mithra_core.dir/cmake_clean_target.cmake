file(REMOVE_RECURSE
  "libmithra_core.a"
)
