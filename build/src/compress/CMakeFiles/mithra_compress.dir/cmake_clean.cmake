file(REMOVE_RECURSE
  "CMakeFiles/mithra_compress.dir/bdi.cc.o"
  "CMakeFiles/mithra_compress.dir/bdi.cc.o.d"
  "libmithra_compress.a"
  "libmithra_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mithra_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
