# Empty dependencies file for mithra_compress.
# This may be replaced when dependencies are built.
