file(REMOVE_RECURSE
  "libmithra_compress.a"
)
