file(REMOVE_RECURSE
  "CMakeFiles/mithra_common.dir/logging.cc.o"
  "CMakeFiles/mithra_common.dir/logging.cc.o.d"
  "CMakeFiles/mithra_common.dir/rng.cc.o"
  "CMakeFiles/mithra_common.dir/rng.cc.o.d"
  "CMakeFiles/mithra_common.dir/scale.cc.o"
  "CMakeFiles/mithra_common.dir/scale.cc.o.d"
  "libmithra_common.a"
  "libmithra_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mithra_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
