# Empty dependencies file for mithra_common.
# This may be replaced when dependencies are built.
