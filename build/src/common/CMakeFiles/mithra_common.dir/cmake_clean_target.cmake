file(REMOVE_RECURSE
  "libmithra_common.a"
)
