file(REMOVE_RECURSE
  "CMakeFiles/mithra_sim.dir/core_model.cc.o"
  "CMakeFiles/mithra_sim.dir/core_model.cc.o.d"
  "CMakeFiles/mithra_sim.dir/opcount.cc.o"
  "CMakeFiles/mithra_sim.dir/opcount.cc.o.d"
  "CMakeFiles/mithra_sim.dir/system_sim.cc.o"
  "CMakeFiles/mithra_sim.dir/system_sim.cc.o.d"
  "libmithra_sim.a"
  "libmithra_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mithra_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
