file(REMOVE_RECURSE
  "libmithra_sim.a"
)
