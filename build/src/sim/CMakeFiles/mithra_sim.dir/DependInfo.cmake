
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/core_model.cc" "src/sim/CMakeFiles/mithra_sim.dir/core_model.cc.o" "gcc" "src/sim/CMakeFiles/mithra_sim.dir/core_model.cc.o.d"
  "/root/repo/src/sim/opcount.cc" "src/sim/CMakeFiles/mithra_sim.dir/opcount.cc.o" "gcc" "src/sim/CMakeFiles/mithra_sim.dir/opcount.cc.o.d"
  "/root/repo/src/sim/system_sim.cc" "src/sim/CMakeFiles/mithra_sim.dir/system_sim.cc.o" "gcc" "src/sim/CMakeFiles/mithra_sim.dir/system_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mithra_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
