# Empty dependencies file for mithra_sim.
# This may be replaced when dependencies are built.
