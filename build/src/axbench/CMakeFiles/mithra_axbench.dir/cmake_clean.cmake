file(REMOVE_RECURSE
  "CMakeFiles/mithra_axbench.dir/benchmark.cc.o"
  "CMakeFiles/mithra_axbench.dir/benchmark.cc.o.d"
  "CMakeFiles/mithra_axbench.dir/blackscholes.cc.o"
  "CMakeFiles/mithra_axbench.dir/blackscholes.cc.o.d"
  "CMakeFiles/mithra_axbench.dir/fft.cc.o"
  "CMakeFiles/mithra_axbench.dir/fft.cc.o.d"
  "CMakeFiles/mithra_axbench.dir/image.cc.o"
  "CMakeFiles/mithra_axbench.dir/image.cc.o.d"
  "CMakeFiles/mithra_axbench.dir/inversek2j.cc.o"
  "CMakeFiles/mithra_axbench.dir/inversek2j.cc.o.d"
  "CMakeFiles/mithra_axbench.dir/jmeint.cc.o"
  "CMakeFiles/mithra_axbench.dir/jmeint.cc.o.d"
  "CMakeFiles/mithra_axbench.dir/jpeg.cc.o"
  "CMakeFiles/mithra_axbench.dir/jpeg.cc.o.d"
  "CMakeFiles/mithra_axbench.dir/jpeg_codec.cc.o"
  "CMakeFiles/mithra_axbench.dir/jpeg_codec.cc.o.d"
  "CMakeFiles/mithra_axbench.dir/quality.cc.o"
  "CMakeFiles/mithra_axbench.dir/quality.cc.o.d"
  "CMakeFiles/mithra_axbench.dir/registry.cc.o"
  "CMakeFiles/mithra_axbench.dir/registry.cc.o.d"
  "CMakeFiles/mithra_axbench.dir/sobel.cc.o"
  "CMakeFiles/mithra_axbench.dir/sobel.cc.o.d"
  "libmithra_axbench.a"
  "libmithra_axbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mithra_axbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
