file(REMOVE_RECURSE
  "libmithra_axbench.a"
)
