# Empty dependencies file for mithra_axbench.
# This may be replaced when dependencies are built.
