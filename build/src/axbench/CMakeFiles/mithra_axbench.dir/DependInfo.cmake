
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/axbench/benchmark.cc" "src/axbench/CMakeFiles/mithra_axbench.dir/benchmark.cc.o" "gcc" "src/axbench/CMakeFiles/mithra_axbench.dir/benchmark.cc.o.d"
  "/root/repo/src/axbench/blackscholes.cc" "src/axbench/CMakeFiles/mithra_axbench.dir/blackscholes.cc.o" "gcc" "src/axbench/CMakeFiles/mithra_axbench.dir/blackscholes.cc.o.d"
  "/root/repo/src/axbench/fft.cc" "src/axbench/CMakeFiles/mithra_axbench.dir/fft.cc.o" "gcc" "src/axbench/CMakeFiles/mithra_axbench.dir/fft.cc.o.d"
  "/root/repo/src/axbench/image.cc" "src/axbench/CMakeFiles/mithra_axbench.dir/image.cc.o" "gcc" "src/axbench/CMakeFiles/mithra_axbench.dir/image.cc.o.d"
  "/root/repo/src/axbench/inversek2j.cc" "src/axbench/CMakeFiles/mithra_axbench.dir/inversek2j.cc.o" "gcc" "src/axbench/CMakeFiles/mithra_axbench.dir/inversek2j.cc.o.d"
  "/root/repo/src/axbench/jmeint.cc" "src/axbench/CMakeFiles/mithra_axbench.dir/jmeint.cc.o" "gcc" "src/axbench/CMakeFiles/mithra_axbench.dir/jmeint.cc.o.d"
  "/root/repo/src/axbench/jpeg.cc" "src/axbench/CMakeFiles/mithra_axbench.dir/jpeg.cc.o" "gcc" "src/axbench/CMakeFiles/mithra_axbench.dir/jpeg.cc.o.d"
  "/root/repo/src/axbench/jpeg_codec.cc" "src/axbench/CMakeFiles/mithra_axbench.dir/jpeg_codec.cc.o" "gcc" "src/axbench/CMakeFiles/mithra_axbench.dir/jpeg_codec.cc.o.d"
  "/root/repo/src/axbench/quality.cc" "src/axbench/CMakeFiles/mithra_axbench.dir/quality.cc.o" "gcc" "src/axbench/CMakeFiles/mithra_axbench.dir/quality.cc.o.d"
  "/root/repo/src/axbench/registry.cc" "src/axbench/CMakeFiles/mithra_axbench.dir/registry.cc.o" "gcc" "src/axbench/CMakeFiles/mithra_axbench.dir/registry.cc.o.d"
  "/root/repo/src/axbench/sobel.cc" "src/axbench/CMakeFiles/mithra_axbench.dir/sobel.cc.o" "gcc" "src/axbench/CMakeFiles/mithra_axbench.dir/sobel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mithra_common.dir/DependInfo.cmake"
  "/root/repo/build/src/npu/CMakeFiles/mithra_npu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mithra_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
