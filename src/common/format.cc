#include "common/format.hh"

#include <cstdio>

namespace mithra
{

std::string
fmtPct(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, value);
    return buf;
}

std::string
fmtRatio(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*fx", decimals, value);
    return buf;
}

std::string
fmtBytes(double bytes)
{
    char buf[64];
    if (bytes < 1024.0)
        std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
    else
        std::snprintf(buf, sizeof(buf), "%.2f KB", bytes / 1024.0);
    return buf;
}

std::string
fmtKb(double bytes, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f KB", decimals, bytes / 1024.0);
    return buf;
}

std::string
fmtCount(double value)
{
    char buf[64];
    if (value >= 1e6)
        std::snprintf(buf, sizeof(buf), "%.2fM", value / 1e6);
    else if (value >= 1e3)
        std::snprintf(buf, sizeof(buf), "%.1fk", value / 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
}

} // namespace mithra
