/**
 * @file
 * Contract-checking macros for the whole library.
 *
 * Three macros express the three kinds of executable contracts; all of
 * them take a condition plus a streamed explanation (message and
 * offending values):
 *
 *  MITHRA_EXPECTS(cond, ...) — a *precondition*: the caller handed us
 *      arguments or state outside the documented domain.
 *  MITHRA_ENSURES(cond, ...) — a *postcondition*: we are about to
 *      return a result that violates our own documented guarantee.
 *  MITHRA_ASSERT(cond, ...)  — an *internal invariant*: intermediate
 *      state that must hold if the code is correct.
 *
 * A failed contract reports kind, condition, file:line and the
 * formatted message, then aborts (so death tests and core dumps both
 * work). Checks compile to nothing under NDEBUG unless MITHRA_CHECKED
 * is defined non-zero; the build system keeps MITHRA_CHECKED=1 on by
 * default (option MITHRA_CHECKED in CMake) because classifier and
 * simulator state is cheap to check relative to the modeled work.
 * `-DMITHRA_CHECKED=OFF` produces a maximum-speed release build with
 * every contract compiled out.
 *
 * When compiled out, the condition and message are still parsed (as
 * unevaluated operands), so variables used only in contracts do not
 * trigger -Wunused warnings and cannot bit-rot.
 */

#pragma once

#include <string>

#include "common/logging.hh"

#if !defined(NDEBUG) || (defined(MITHRA_CHECKED) && MITHRA_CHECKED)
#define MITHRA_CHECKS_ENABLED 1
#else
#define MITHRA_CHECKS_ENABLED 0
#endif

namespace mithra::detail
{

/** Report a failed contract (kind/condition/location) and abort. */
[[noreturn]] void contractFailure(const char *kind, const char *condition,
                                  const char *file, int line,
                                  const std::string &message);

} // namespace mithra::detail

#if MITHRA_CHECKS_ENABLED
#define MITHRA_CONTRACT_(kind, cond, ...)                                   \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::mithra::detail::contractFailure(                              \
                kind, #cond, __FILE__, __LINE__,                            \
                ::mithra::detail::concat(__VA_ARGS__));                     \
        }                                                                   \
    } while (0)
#else
#define MITHRA_CONTRACT_(kind, cond, ...)                                   \
    do {                                                                    \
        (void)sizeof((cond) ? 1 : 0);                                       \
        (void)sizeof(::mithra::detail::concat(__VA_ARGS__));                \
    } while (0)
#endif

/** Check an internal invariant; see file comment for semantics. */
#define MITHRA_ASSERT(cond, ...)                                            \
    MITHRA_CONTRACT_("invariant", cond, __VA_ARGS__)

/** Check a caller-facing precondition; see file comment for semantics. */
#define MITHRA_EXPECTS(cond, ...)                                           \
    MITHRA_CONTRACT_("precondition", cond, __VA_ARGS__)

/** Check a result postcondition; see file comment for semantics. */
#define MITHRA_ENSURES(cond, ...)                                           \
    MITHRA_CONTRACT_("postcondition", cond, __VA_ARGS__)
