#include "common/parallel.hh"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <string>
#include <thread>

#include "common/env_registry.hh"
#include "telemetry/telemetry.hh"

namespace mithra
{

namespace
{

thread_local bool insideRegion = false;

std::size_t
defaultThreadCount()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return env::countIn("MITHRA_THREADS", 1, 1024, hw ? hw : 1);
}

/**
 * The pool itself. One job is active at a time (top-level regions from
 * different threads serialize on dispatchMutex); workers pull chunks
 * from an atomic cursor, so static chunk *identity* is fixed while
 * chunk *placement* is dynamic.
 */
class ThreadPool
{
  public:
    static ThreadPool &global();

    ~ThreadPool() { stopWorkers(); }

    std::size_t width()
    {
        std::lock_guard<std::mutex> lock(configMutex);
        return configuredWidth;
    }

    void setWidth(std::size_t threads)
    {
        MITHRA_EXPECTS(threads >= 1, "thread count must be positive");
        std::lock_guard<std::mutex> lock(configMutex);
        if (threads == configuredWidth)
            return;
        stopWorkers();
        configuredWidth = threads;
    }

    void run(std::size_t chunkCount,
             void (*invoke)(void *, std::size_t), void *context)
    {
        // One region at a time; a second top-level caller waits here.
        std::lock_guard<std::mutex> dispatch(dispatchMutex);
        {
            std::lock_guard<std::mutex> lock(configMutex);
            startWorkersLocked();
        }

        job.invoke = invoke;
        job.context = context;
        job.chunkCount = chunkCount;
        job.errors.assign(chunkCount, nullptr);
        job.nextChunk.store(0, std::memory_order_relaxed);
        job.doneChunks.store(0, std::memory_order_relaxed);

        {
            // Publishing under jobMutex sequences the field writes
            // above before any worker's first look at the job.
            std::lock_guard<std::mutex> lock(jobMutex);
            ++jobGeneration;
            jobActive = true;
        }
        jobReady.notify_all();

        // The caller participates, then waits for stragglers.
        executeChunks();
        waitForCompletion();

        MITHRA_ENSURES(job.doneChunks.load(std::memory_order_acquire)
                           == job.chunkCount,
                       "pool retired ", job.doneChunks.load(),
                       " of ", job.chunkCount, " chunks");
        for (auto &error : job.errors) {
            if (error)
                std::rethrow_exception(error);
        }
    }

  private:
    struct Job
    {
        void (*invoke)(void *, std::size_t) = nullptr;
        void *context = nullptr;
        std::size_t chunkCount = 0;
        std::atomic<std::size_t> nextChunk{0};
        std::atomic<std::size_t> doneChunks{0};
        std::vector<std::exception_ptr> errors;
    };

    void executeChunks()
    {
        const bool wasInside = insideRegion;
        insideRegion = true;
        std::size_t executed = 0;
        for (;;) {
            const std::size_t chunk =
                job.nextChunk.fetch_add(1, std::memory_order_relaxed);
            if (chunk >= job.chunkCount)
                break;
            try {
                job.invoke(job.context, chunk);
            } catch (...) {
                job.errors[chunk] = std::current_exception();
            }
            ++executed;
            if (job.doneChunks.fetch_add(1, std::memory_order_release)
                    + 1
                == job.chunkCount) {
                std::lock_guard<std::mutex> lock(jobMutex);
                jobDone.notify_all();
            }
        }
        insideRegion = wasInside;

#if MITHRA_TELEMETRY_ENABLED
        // Placement accounting: how many chunks this thread pulled off
        // the cursor. Placement is dynamic (only chunk *identity* is
        // static), so these are volatile stats — excluded from
        // deterministic dumps and run reports.
        if (executed) {
            // The thread-ordinal key is registered volatile (the
            // `true` argument), so it never reaches deterministic
            // dumps. mithra-analyze: allow(taint-flow)
            telemetry::StatsRegistry::global().counter(
                    "parallel.placement.thread"
                        + std::to_string(telemetry::threadOrdinal()),
                    true)
                .add(static_cast<std::int64_t>(executed));
        }
#else
        (void)executed;
#endif
    }

    void waitForCompletion()
    {
        // Spin briefly (regions are often back to back and short),
        // then block until the last chunk retires and every worker has
        // left the job (so its storage can be reused).
        for (int spin = 0; spin < 8192; ++spin) {
            if (job.doneChunks.load(std::memory_order_acquire)
                == job.chunkCount)
                break;
            std::this_thread::yield();
        }
        std::unique_lock<std::mutex> lock(jobMutex);
        jobDone.wait(lock, [&] {
            return job.doneChunks.load(std::memory_order_acquire)
                == job.chunkCount
                && activeWorkers == 0;
        });
        // Retire the job before releasing dispatchMutex so a worker
        // that wakes late can never touch its storage while the next
        // region is being set up.
        jobActive = false;
    }

    void workerLoop()
    {
        std::uint64_t seenGeneration = 0;
        for (;;) {
            std::unique_lock<std::mutex> lock(jobMutex);
            jobReady.wait(lock, [&] {
                return stopping
                    || (jobActive && jobGeneration != seenGeneration);
            });
            if (stopping)
                return;
            seenGeneration = jobGeneration;
            ++activeWorkers;
            lock.unlock();

            executeChunks();

            lock.lock();
            --activeWorkers;
            jobDone.notify_all();
        }
    }

    void startWorkersLocked()
    {
        if (!workers.empty() || configuredWidth <= 1)
            return;
        stopping = false;
        workers.reserve(configuredWidth - 1);
        for (std::size_t t = 0; t + 1 < configuredWidth; ++t)
            workers.emplace_back([this] { workerLoop(); });
    }

    void stopWorkers()
    {
        {
            std::lock_guard<std::mutex> lock(jobMutex);
            stopping = true;
        }
        jobReady.notify_all();
        for (auto &worker : workers)
            worker.join();
        workers.clear();
    }

    std::mutex configMutex;
    std::size_t configuredWidth = defaultThreadCount();
    std::vector<std::thread> workers;

    std::mutex dispatchMutex;
    std::mutex jobMutex;
    std::condition_variable jobReady;
    std::condition_variable jobDone;
    std::uint64_t jobGeneration = 0;
    std::size_t activeWorkers = 0;
    bool jobActive = false;
    bool stopping = false;
    Job job;
};

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

} // namespace

std::size_t
parallelThreadCount()
{
    return ThreadPool::global().width();
}

void
setParallelThreadCount(std::size_t threads)
{
    ThreadPool::global().setWidth(threads);
}

bool
inParallelRegion()
{
    return insideRegion;
}

namespace detail
{

void
runChunks(std::size_t chunkCount,
          void (*invoke)(void *context, std::size_t chunkIndex),
          void *context, bool forceInline)
{
    if (chunkCount == 0)
        return;
    // Region/chunk accounting. Chunk layout depends only on the range
    // and the grain — never the pool width — so these counters are
    // identical at any MITHRA_THREADS and safe for the deterministic
    // dump (unlike the per-thread placement stats below).
    MITHRA_COUNT("parallel.regions", 1);
    MITHRA_COUNT("parallel.chunks", chunkCount);
    // Inline when there is nothing to overlap (one chunk, one thread)
    // or when already inside a region (nested parallelism). Inline
    // execution runs chunks in index order — by the chunking contract
    // this computes exactly what the pooled execution computes.
    if (forceInline || chunkCount == 1 || insideRegion
        || ThreadPool::global().width() == 1) {
        for (std::size_t chunk = 0; chunk < chunkCount; ++chunk)
            invoke(context, chunk);
        return;
    }
    ThreadPool::global().run(chunkCount, invoke, context);
}

} // namespace detail

} // namespace mithra
