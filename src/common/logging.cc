#include "common/logging.hh"

#include <cstdio>

namespace mithra
{

namespace
{
bool informOn = true;
}

void
setInformEnabled(bool enabled)
{
    informOn = enabled;
}

bool
informEnabled()
{
    return informOn;
}

namespace detail
{

void
emitMessage(const char *prefix, const std::string &message)
{
    if (message.empty())
        return;
    if (prefix == std::string("info") && !informOn)
        return;
    std::fprintf(stderr, "%s: %s\n", prefix, message.c_str());
}

} // namespace detail

} // namespace mithra
