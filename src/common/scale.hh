/**
 * @file
 * Experiment scale knobs.
 *
 * The paper's evaluation uses 250 compilation datasets and 250 unseen
 * validation datasets per benchmark. Running the full pipeline at that
 * scale is the default; the MITHRA_SCALE environment variable (a float,
 * e.g. 0.2) shrinks dataset counts and sizes proportionally so the whole
 * harness can be smoke-tested quickly.
 */

#pragma once

#include <cstddef>

namespace mithra
{

/** @return the global scale factor from MITHRA_SCALE (default 1.0). */
double experimentScale();

/** Scale a count, clamped below by the given minimum. */
std::size_t scaledCount(std::size_t full, std::size_t minimum = 8);

/** Paper value: datasets used to find the threshold and train. */
std::size_t numCompileDatasets();

/** Paper value: unseen datasets used for validation/evaluation. */
std::size_t numValidationDatasets();

} // namespace mithra

