/**
 * @file
 * Deterministic pseudo-random number generation for the whole library.
 *
 * Every experiment in this repository must be exactly reproducible from
 * a seed, so we implement our own small generators instead of relying on
 * implementation-defined std::default_random_engine distributions:
 *
 *  - SplitMix64: used to expand user seeds into generator state.
 *  - Xoshiro256**: the main generator (Blackman & Vigna), fast and with
 *    good statistical quality for simulation workloads.
 *
 * Distribution helpers (uniform, normal, lognormal, exponential) are
 * implemented here so results are bit-identical across platforms.
 */

#pragma once

#include <cstdint>
#include <vector>

namespace mithra
{

/** SplitMix64 step: expands a 64-bit state into a stream of values. */
std::uint64_t splitMix64(std::uint64_t &state);

/**
 * Counter-based Bernoulli draw: true with probability `p`, as a pure
 * function of (seed, index) through one SplitMix64 step. Because the
 * draw depends only on the pair — never on call order, thread count or
 * how a stream is sharded — schedules built on it (watchdog audits,
 * online error sampling, random filtering) are bitwise identical no
 * matter how the index space is partitioned. The draw is compared
 * against p * 2^64, so for a fixed (seed, index) the outcome is
 * monotone in p: raising the rate only adds events, it never
 * unschedules one.
 */
bool indexedBernoulli(std::uint64_t seed, std::uint64_t index, double p);

class Rng;

/**
 * Derive an independent generator for one parallel work item: stream
 * `stream` split from `seed` via SplitMix64. Unlike Rng::fork() this
 * needs no shared mutated generator, so parallel chunks can seed
 * themselves from (seed, chunkIndex) deterministically regardless of
 * execution order or thread count.
 */
Rng rngStream(std::uint64_t seed, std::uint64_t stream);

/**
 * Xoshiro256** deterministic random number generator with portable
 * distribution helpers.
 */
class Rng
{
  public:
    /** Construct from a seed; equal seeds yield equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** @return the next raw 64-bit value. */
    std::uint64_t next();

    /** @return uniform double in [0, 1). */
    double uniform();

    /** @return uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** @return uniform integer in [0, bound), bound > 0. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** @return standard normal variate (Box–Muller, cached pair). */
    double normal();

    /** @return normal variate with the given mean and stddev. */
    double normal(double mean, double stddev);

    /** @return lognormal variate exp(N(mu, sigma)). */
    double lognormal(double mu, double sigma);

    /** @return exponential variate with the given rate. */
    double exponential(double rate);

    /** @return true with probability p. */
    bool bernoulli(double p);

    /** Fisher–Yates shuffle of an index vector [0, n). */
    std::vector<std::size_t> permutation(std::size_t n);

    /** Derive an independent child generator (for parallel streams). */
    Rng fork();

  private:
    std::uint64_t s[4];
    double cachedNormal;
    bool hasCachedNormal;
};

} // namespace mithra

