#include "common/contracts.hh"

#include <cstdlib>

namespace mithra::detail
{

void
contractFailure(const char *kind, const char *condition, const char *file,
                int line, const std::string &message)
{
    emitMessage(kind, concat("`", condition, "' violated at ", file, ":",
                             line, ": ", message));
    std::abort();
}

} // namespace mithra::detail
