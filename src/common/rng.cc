#include "common/rng.hh"

#include <cmath>
#include <numbers>

#include "common/contracts.hh"

namespace mithra
{

std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

bool
indexedBernoulli(std::uint64_t seed, std::uint64_t index, double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    // One SplitMix64 draw keyed by (seed, index). Multiplying the
    // index by the golden-ratio increment before mixing decorrelates
    // consecutive indices; comparing against p * 2^64 makes the event
    // set monotone in p (see the header).
    std::uint64_t state = seed + index * 0x9e3779b97f4a7c15ULL;
    const std::uint64_t draw = splitMix64(state);
    const double scaled = p * 18446744073709551616.0; // 2^64
    return static_cast<double>(draw) < scaled;
}

Rng
rngStream(std::uint64_t seed, std::uint64_t stream)
{
    // Two SplitMix64 expansions decorrelate (seed, stream) pairs that
    // differ in either component by a single bit.
    std::uint64_t state = seed;
    const std::uint64_t expandedSeed = splitMix64(state);
    state = expandedSeed ^ (stream + 0x632be59bd9b4e019ULL);
    return Rng(splitMix64(state));
}

namespace
{

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
    : cachedNormal(0.0), hasCachedNormal(false)
{
    std::uint64_t sm = seed;
    for (auto &word : s)
        word = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    MITHRA_EXPECTS(bound > 0, "nextBelow needs a positive bound");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::normal()
{
    if (hasCachedNormal) {
        hasCachedNormal = false;
        return cachedNormal;
    }
    // Box–Muller transform; u1 in (0, 1] to keep log() finite.
    double u1 = 1.0 - uniform();
    double u2 = uniform();
    double radius = std::sqrt(-2.0 * std::log(u1));
    double angle = 2.0 * std::numbers::pi * u2;
    cachedNormal = radius * std::sin(angle);
    hasCachedNormal = true;
    return radius * std::cos(angle);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

double
Rng::exponential(double rate)
{
    MITHRA_EXPECTS(rate > 0.0, "exponential needs a positive rate");
    return -std::log(1.0 - uniform()) / rate;
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

std::vector<std::size_t>
Rng::permutation(std::size_t n)
{
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i)
        idx[i] = i;
    for (std::size_t i = n; i > 1; --i) {
        std::size_t j = nextBelow(i);
        std::swap(idx[i - 1], idx[j]);
    }
    return idx;
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xa5a5a5a5deadbeefULL);
}

} // namespace mithra
