/**
 * @file
 * Deterministic parallel execution substrate.
 *
 * A fixed-size thread pool (sized from std::thread::hardware_concurrency,
 * overridable with the MITHRA_THREADS environment variable) plus static
 * chunked parallel loops. The design contract, relied on by every
 * caller in core/, npu/, hw/ and bench/:
 *
 *  - **Static chunking.** A range [begin, end) is cut into chunks of
 *    `grain` consecutive indices. The chunk layout depends only on the
 *    range and the grain — never on the thread count — so any
 *    floating-point association introduced by chunking is identical
 *    whether the chunks run on 1 thread or N.
 *  - **Ordered reduction.** parallelMapReduce folds the per-chunk
 *    partials in chunk-index order, so the result is bitwise identical
 *    at every thread count (a grain of 1 reproduces the serial left
 *    fold exactly).
 *  - **MITHRA_THREADS=1 is the exact serial path.** No worker threads
 *    are ever started; every loop body runs inline on the caller.
 *  - **Nested regions run inline.** A parallel loop issued from inside
 *    a worker task executes serially on that worker. Because of the
 *    chunking contract this changes *where* the chunks run, never what
 *    they compute.
 *  - **Deterministic exceptions.** When chunk bodies throw, the
 *    exception of the lowest-indexed throwing chunk is rethrown on the
 *    caller (inline execution stops at that chunk; pooled execution
 *    drains the remaining chunks first — either way the same exception
 *    surfaces).
 *
 * Per-chunk pseudo-randomness must come from rngStream() (common/rng.hh)
 * keyed by a stable chunk or item index — never from a shared mutated
 * generator.
 */

#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/contracts.hh"

namespace mithra
{

/** Configured pool width (MITHRA_THREADS or hardware concurrency). */
std::size_t parallelThreadCount();

/**
 * Reconfigure the pool width (tests and benchmarks sweeping thread
 * counts). Joins any running workers; must not be called from inside a
 * parallel region or concurrently with one.
 */
void setParallelThreadCount(std::size_t threads);

/** True while the calling thread is executing a parallel-region task. */
bool inParallelRegion();

namespace detail
{

/** Type-erased chunk dispatch: body(chunkIndex) for every chunk. */
void runChunks(std::size_t chunkCount,
               void (*invoke)(void *context, std::size_t chunkIndex),
               void *context, bool forceInline);

template <typename Body>
void
runChunkedBody(std::size_t chunkCount, Body &body, bool forceInline)
{
    runChunks(
        chunkCount,
        [](void *context, std::size_t chunk) {
            (*static_cast<Body *>(context))(chunk);
        },
        &body, forceInline);
}

} // namespace detail

/**
 * Run fn(chunkBegin, chunkEnd, chunkIndex) over [begin, end) cut into
 * chunks of `grain` indices. Chunks may run concurrently; indices
 * inside one chunk always run in order on one thread.
 */
template <typename Fn>
void
parallelForChunks(std::size_t begin, std::size_t end, std::size_t grain,
                  Fn &&fn)
{
    if (end <= begin)
        return;
    MITHRA_EXPECTS(grain > 0, "parallel grain must be positive");
    const std::size_t chunkCount = (end - begin + grain - 1) / grain;
    auto body = [&](std::size_t chunk) {
        const std::size_t chunkBegin = begin + chunk * grain;
        const std::size_t chunkEnd = std::min(chunkBegin + grain, end);
        fn(chunkBegin, chunkEnd, chunk);
    };
    detail::runChunkedBody(chunkCount, body, false);
}

/**
 * Run fn(i) for every i in [begin, end), statically chunked by
 * `grain`. fn must not depend on cross-index execution order.
 */
template <typename Fn>
void
parallelFor(std::size_t begin, std::size_t end, std::size_t grain,
            Fn &&fn)
{
    parallelForChunks(begin, end, grain,
                      [&](std::size_t chunkBegin, std::size_t chunkEnd,
                          std::size_t) {
                          for (std::size_t i = chunkBegin; i < chunkEnd;
                               ++i)
                              fn(i);
                      });
}

/**
 * Ordered map-reduce: result = fold of per-chunk partials in chunk
 * order, seeded with `init`; each partial is the in-order fold of
 * map(i) over its chunk. With a fixed grain the result is bitwise
 * identical at any thread count; with grain 1 it equals the serial
 * left fold reduce(...reduce(init, map(begin)) ..., map(end-1)).
 */
template <typename T, typename Map, typename Reduce>
T
parallelMapReduce(std::size_t begin, std::size_t end, std::size_t grain,
                  T init, Map &&map, Reduce &&reduce)
{
    if (end <= begin)
        return init;
    MITHRA_EXPECTS(grain > 0, "parallel grain must be positive");
    const std::size_t chunkCount = (end - begin + grain - 1) / grain;
    std::vector<T> partials(chunkCount);
    auto body = [&](std::size_t chunk) {
        const std::size_t chunkBegin = begin + chunk * grain;
        const std::size_t chunkEnd = std::min(chunkBegin + grain, end);
        T partial = map(chunkBegin);
        for (std::size_t i = chunkBegin + 1; i < chunkEnd; ++i)
            partial = reduce(std::move(partial), map(i));
        partials[chunk] = std::move(partial);
    };
    detail::runChunkedBody(chunkCount, body, false);

    T result = std::move(init);
    for (auto &partial : partials)
        result = reduce(std::move(result), std::move(partial));
    return result;
}

} // namespace mithra

