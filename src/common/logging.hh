/**
 * @file
 * Status/error reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal invariant was violated; this is a bug in the
 *            library itself. Aborts (may dump core).
 * fatal()  — the simulation cannot continue because of a user error
 *            (bad configuration, invalid arguments). Exits with code 1.
 * warn()   — something may not behave as the user expects.
 * inform() — progress / status messages.
 */

#pragma once

#include <cstdlib>
#include <sstream>
#include <string>

namespace mithra
{

namespace detail
{

/** Formats "prefix: message" and writes it to stderr. */
void emitMessage(const char *prefix, const std::string &message);

/** Concatenate an arbitrary list of streamable values into a string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Report an internal library bug and abort. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::emitMessage("panic", detail::concat(std::forward<Args>(args)...));
    std::abort();
}

/** Report an unrecoverable user error and exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::emitMessage("fatal", detail::concat(std::forward<Args>(args)...));
    std::exit(1);
}

/** Report a suspicious but survivable condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emitMessage("warn", detail::concat(std::forward<Args>(args)...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emitMessage("info", detail::concat(std::forward<Args>(args)...));
}

/** Enable/disable inform() output (benchmark harnesses silence it). */
void setInformEnabled(bool enabled);

/** @return whether inform() currently prints. */
bool informEnabled();

} // namespace mithra

