/**
 * @file
 * SSE4.2 backend. The canonical 8-lane dot-product reduction is held
 * in two 4-wide registers: accA carries lane[0..3], accB lane[4..7],
 * so `accA + accB` *is* m[0..3] of the specification and the final
 * shuffle tree reproduces (m0 + m2) + (m1 + m3) exactly. Multiplies
 * and adds stay separate instructions — no FMA — so results are
 * bitwise identical to the scalar reference.
 *
 * This translation unit is compiled with -msse4.2; intrinsics must not
 * leak outside src/common/kernels/ (lint rule no-intrinsics).
 */

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include "common/kernels/kernels_impl.hh"

namespace mithra::kernels::detail
{

namespace
{

/** Canonical reduction of the two 4-lane accumulators. */
inline float
reduceLanes(__m128 accA, __m128 accB)
{
    const __m128 m = _mm_add_ps(accA, accB); // m[k] = lane[k]+lane[k+4]
    // t0 = m0 + m2, t1 = m1 + m3.
    const __m128 t = _mm_add_ps(m, _mm_movehl_ps(m, m));
    // (m0 + m2) + (m1 + m3).
    const __m128 s = _mm_add_ss(t, _mm_shuffle_ps(t, t, 0x55));
    return _mm_cvtss_f32(s);
}

void
gemvBiasSse42(const float *weights, std::size_t stride,
              const float *bias, const float *input, std::size_t rows,
              float *out)
{
    for (std::size_t r = 0; r < rows; ++r) {
        const float *w = weights + r * stride;
        __m128 accA = _mm_setzero_ps();
        __m128 accB = _mm_setzero_ps();
        for (std::size_t j = 0; j < stride; j += 8) {
            accA = _mm_add_ps(accA,
                              _mm_mul_ps(_mm_load_ps(w + j),
                                         _mm_load_ps(input + j)));
            accB = _mm_add_ps(accB,
                              _mm_mul_ps(_mm_load_ps(w + j + 4),
                                         _mm_load_ps(input + j + 4)));
        }
        out[r] = reduceLanes(accA, accB) + bias[r];
    }
}

void
axpySse42(float a, const float *x, float *y, std::size_t n)
{
    const __m128 va = _mm_set1_ps(a);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128 vy = _mm_add_ps(
            _mm_loadu_ps(y + i), _mm_mul_ps(va, _mm_loadu_ps(x + i)));
        _mm_storeu_ps(y + i, vy);
    }
    for (; i < n; ++i)
        y[i] += a * x[i];
}

void
addInPlaceSse42(float *y, const float *x, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        _mm_storeu_ps(y + i, _mm_add_ps(_mm_loadu_ps(y + i),
                                        _mm_loadu_ps(x + i)));
    }
    for (; i < n; ++i)
        y[i] += x[i];
}

void
sgdMomentumStepSse42(float momentum, float scale, const float *grad,
                     float *velocity, float *weights, std::size_t n)
{
    const __m128 vm = _mm_set1_ps(momentum);
    const __m128 vs = _mm_set1_ps(scale);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128 vel = _mm_sub_ps(
            _mm_mul_ps(vm, _mm_loadu_ps(velocity + i)),
            _mm_mul_ps(vs, _mm_loadu_ps(grad + i)));
        _mm_storeu_ps(velocity + i, vel);
        _mm_storeu_ps(weights + i,
                      _mm_add_ps(_mm_loadu_ps(weights + i), vel));
    }
    for (; i < n; ++i) {
        velocity[i] = momentum * velocity[i] - scale * grad[i];
        weights[i] += velocity[i];
    }
}

/** Lane-parallel parity of (state & taps): xor-fold to bit 0. */
inline __m128i
parity128(__m128i v)
{
    v = _mm_xor_si128(v, _mm_srli_epi32(v, 16));
    v = _mm_xor_si128(v, _mm_srli_epi32(v, 8));
    v = _mm_xor_si128(v, _mm_srli_epi32(v, 4));
    v = _mm_xor_si128(v, _mm_srli_epi32(v, 2));
    v = _mm_xor_si128(v, _mm_srli_epi32(v, 1));
    return _mm_and_si128(v, _mm_set1_epi32(1));
}

void
misrHashBatchSse42(const MisrParams &p, const std::uint8_t *codes,
                   std::size_t width, std::size_t count,
                   std::uint32_t *out)
{
    const int rot = static_cast<int>(p.rotate % p.bits);
    const int invRot = static_cast<int>(p.bits) - rot;
    const __m128i taps = _mm_set1_epi32(static_cast<int>(p.taps));
    const __m128i mask = _mm_set1_epi32(static_cast<int>(p.mask));
    const __m128i spread = _mm_set1_epi32(static_cast<int>(p.spread));

    // 4 invocations per register; the 4-row block is transposed first
    // so each step loads its codes from one contiguous dword.
    std::vector<std::uint8_t> transposed(width * 4);
    std::size_t base = 0;
    for (; base + 4 <= count; base += 4) {
        for (std::size_t lane = 0; lane < 4; ++lane) {
            const std::uint8_t *row = codes + (base + lane) * width;
            for (std::size_t j = 0; j < width; ++j)
                transposed[j * 4 + lane] = row[j];
        }

        __m128i state =
            _mm_set1_epi32(static_cast<int>(p.seed & p.mask));
        for (std::size_t j = 0; j < width; ++j) {
            const __m128i feedback =
                parity128(_mm_and_si128(state, taps));
            const __m128i rotated = _mm_and_si128(
                _mm_or_si128(_mm_slli_epi32(state, rot),
                             _mm_srli_epi32(state, invRot)),
                mask);
            state = _mm_xor_si128(rotated, feedback);

            std::uint32_t packed;
            __builtin_memcpy(&packed, transposed.data() + j * 4, 4);
            const __m128i code4 = _mm_cvtepu8_epi32(
                _mm_cvtsi32_si128(static_cast<int>(packed)));
            const __m128i spreadCode = _mm_and_si128(
                _mm_mullo_epi32(code4, spread), mask);
            state = _mm_xor_si128(state, spreadCode);
        }
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + base),
                         state);
    }

    for (; base < count; ++base)
        out[base] = misrHashOne(p, codes + base * width, width);
}

void
quantizeBatchSse42(const float *inputs, std::size_t width,
                   std::size_t count, const float *lows,
                   const float *highs, std::uint32_t levels,
                   std::uint8_t *out)
{
    const float levelsF = static_cast<float>(levels);
    const __m128 vLevels = _mm_set1_ps(levelsF);
    const __m128 vHalf = _mm_set1_ps(0.5f);
    const __m128 vZero = _mm_setzero_ps();
    const __m128 vOne = _mm_set1_ps(1.0f);

    for (std::size_t i = 0; i < count; ++i) {
        const float *row = inputs + i * width;
        std::uint8_t *dst = out + i * width;
        std::size_t j = 0;
        for (; j + 4 <= width; j += 4) {
            const __m128 x = _mm_loadu_ps(row + j);
            const __m128 lo = _mm_loadu_ps(lows + j);
            const __m128 hi = _mm_loadu_ps(highs + j);
            __m128 t =
                _mm_div_ps(_mm_sub_ps(x, lo), _mm_sub_ps(hi, lo));
            t = _mm_max_ps(t, vZero);
            t = _mm_min_ps(t, vOne);
            const __m128 scaled = _mm_floor_ps(
                _mm_add_ps(_mm_mul_ps(t, vLevels), vHalf));
            const __m128i words = _mm_cvttps_epi32(scaled);
            const __m128i packed16 = _mm_packus_epi32(words, words);
            const __m128i packed8 = _mm_packus_epi16(packed16,
                                                     packed16);
            const int dword = _mm_cvtsi128_si32(packed8);
            __builtin_memcpy(dst + j, &dword, 4);
        }
        for (; j < width; ++j)
            dst[j] = quantizeOne(row[j], lows[j], highs[j], levelsF);
    }
}

std::size_t
lessEqualMaskSse42(const float *values, std::size_t n, float threshold,
                   std::uint8_t *out)
{
    const __m128 vth = _mm_set1_ps(threshold);
    std::size_t ones = 0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128 cmp = _mm_cmple_ps(_mm_loadu_ps(values + i), vth);
        const unsigned mask =
            static_cast<unsigned>(_mm_movemask_ps(cmp));
        for (std::size_t k = 0; k < 4; ++k)
            out[i + k] = static_cast<std::uint8_t>((mask >> k) & 1u);
        ones += static_cast<std::size_t>(__builtin_popcount(mask));
    }
    for (; i < n; ++i) {
        const std::uint8_t hit = values[i] <= threshold ? 1 : 0;
        out[i] = hit;
        ones += hit;
    }
    return ones;
}

} // namespace

const KernelOps &
sse42Ops()
{
    static const KernelOps ops = {
        gemvBiasSse42,     axpySse42,          addInPlaceSse42,
        sgdMomentumStepSse42, misrHashBatchSse42, quantizeBatchSse42,
        lessEqualMaskSse42,
    };
    return ops;
}

} // namespace mithra::kernels::detail

#endif // x86
