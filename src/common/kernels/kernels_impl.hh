/**
 * @file
 * Internal backend plumbing for src/common/kernels.
 *
 * Each backend translation unit (kernels_scalar.cc, kernels_sse42.cc,
 * kernels_avx2.cc) fills one KernelOps table; kernels.cc selects one
 * table at startup and the public entry points indirect through it.
 * The inline helpers here are the *specification* implementations the
 * SIMD backends reuse for row tails — plain C++, no intrinsics (the
 * intrinsics-containment lint rule also covers this header).
 */

#pragma once

#include <cmath>

#include "common/kernels/kernels.hh"

namespace mithra::kernels::detail
{

/** Function-pointer table one backend fills. */
struct KernelOps
{
    void (*gemvBias)(const float *weights, std::size_t stride,
                     const float *bias, const float *input,
                     std::size_t rows, float *out) = nullptr;
    void (*axpy)(float a, const float *x, float *y, std::size_t n)
        = nullptr;
    void (*addInPlace)(float *y, const float *x, std::size_t n) = nullptr;
    void (*sgdMomentumStep)(float momentum, float scale,
                            const float *grad, float *velocity,
                            float *weights, std::size_t n) = nullptr;
    void (*misrHashBatch)(const MisrParams &params,
                          const std::uint8_t *codes, std::size_t width,
                          std::size_t count, std::uint32_t *out)
        = nullptr;
    void (*quantizeBatch)(const float *inputs, std::size_t width,
                          std::size_t count, const float *lows,
                          const float *highs, std::uint32_t levels,
                          std::uint8_t *out) = nullptr;
    std::size_t (*lessEqualMask)(const float *values, std::size_t n,
                                 float threshold, std::uint8_t *out)
        = nullptr;
};

/** The reference backend (always available). */
const KernelOps &scalarOps();

#if defined(__x86_64__) || defined(__i386__)
/** SSE4.2 backend (compiled only on x86). */
const KernelOps &sse42Ops();
/** AVX2 backend (compiled only on x86). */
const KernelOps &avx2Ops();
#endif

/**
 * The canonical 8-lane strided dot product (see kernels.hh). Shared by
 * the scalar backend and by assertions/tests; the SIMD backends must
 * match it bit for bit.
 */
inline float
dot8Reference(const float *w, const float *x, std::size_t stride)
{
    float lane[8] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
    for (std::size_t j = 0; j < stride; j += 8) {
        for (std::size_t k = 0; k < 8; ++k)
            lane[k] += w[j + k] * x[j + k];
    }
    const float m0 = lane[0] + lane[4];
    const float m1 = lane[1] + lane[5];
    const float m2 = lane[2] + lane[6];
    const float m3 = lane[3] + lane[7];
    return (m0 + m2) + (m1 + m3);
}

/**
 * One sequential MISR register step — the exact hw::Misr::stepState
 * sequence. SIMD backends replicate this per lane and reuse it for
 * batch tails.
 */
inline std::uint32_t
misrStep(const MisrParams &p, std::uint32_t current, std::uint8_t code)
{
    std::uint32_t parity = current & p.taps;
    parity ^= parity >> 16;
    parity ^= parity >> 8;
    parity ^= parity >> 4;
    parity ^= parity >> 2;
    parity ^= parity >> 1;
    const std::uint32_t feedback = parity & 1u;

    const std::uint32_t r = p.rotate % p.bits;
    current = ((current << r) | (current >> (p.bits - r))) & p.mask;
    current ^= feedback;

    const std::uint32_t spreadCode =
        (static_cast<std::uint32_t>(code) * p.spread) & p.mask;
    return current ^ spreadCode;
}

/** Sequential hash of one row (the batch-tail / reference path). */
inline std::uint32_t
misrHashOne(const MisrParams &p, const std::uint8_t *codes,
            std::size_t width)
{
    std::uint32_t state = p.seed & p.mask;
    for (std::size_t j = 0; j < width; ++j)
        state = misrStep(p, state, codes[j]);
    return state;
}

/** Reference quantization of one element (the canonical rounding). */
inline std::uint8_t
quantizeOne(float x, float lo, float hi, float levels)
{
    float t = (x - lo) / (hi - lo);
    t = t < 0.0f ? 0.0f : t;
    t = t > 1.0f ? 1.0f : t;
    return static_cast<std::uint8_t>(std::floor(t * levels + 0.5f));
}

} // namespace mithra::kernels::detail
