/**
 * @file
 * Scalar reference backend. This file *is* the kernel specification:
 * every SIMD backend must reproduce its outputs bit for bit. It is
 * compiled with -ffp-contract=off and -fno-tree-vectorize (see the
 * directory's CMakeLists) so neither FMA contraction nor an
 * auto-vectorizer can perturb the specified operation order, even
 * under -DMITHRA_NATIVE=ON.
 */

#include "common/kernels/kernels_impl.hh"

namespace mithra::kernels::detail
{

namespace
{

void
gemvBiasScalar(const float *weights, std::size_t stride,
               const float *bias, const float *input, std::size_t rows,
               float *out)
{
    for (std::size_t r = 0; r < rows; ++r) {
        out[r] = dot8Reference(weights + r * stride, input, stride)
            + bias[r];
    }
}

void
axpyScalar(float a, const float *x, float *y, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        y[i] += a * x[i];
}

void
addInPlaceScalar(float *y, const float *x, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        y[i] += x[i];
}

void
sgdMomentumStepScalar(float momentum, float scale, const float *grad,
                      float *velocity, float *weights, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        velocity[i] = momentum * velocity[i] - scale * grad[i];
        weights[i] += velocity[i];
    }
}

void
misrHashBatchScalar(const MisrParams &params, const std::uint8_t *codes,
                    std::size_t width, std::size_t count,
                    std::uint32_t *out)
{
    for (std::size_t i = 0; i < count; ++i)
        out[i] = misrHashOne(params, codes + i * width, width);
}

void
quantizeBatchScalar(const float *inputs, std::size_t width,
                    std::size_t count, const float *lows,
                    const float *highs, std::uint32_t levels,
                    std::uint8_t *out)
{
    const float levelsF = static_cast<float>(levels);
    for (std::size_t i = 0; i < count; ++i) {
        const float *row = inputs + i * width;
        std::uint8_t *codes = out + i * width;
        for (std::size_t j = 0; j < width; ++j)
            codes[j] = quantizeOne(row[j], lows[j], highs[j], levelsF);
    }
}

std::size_t
lessEqualMaskScalar(const float *values, std::size_t n, float threshold,
                    std::uint8_t *out)
{
    std::size_t ones = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t hit = values[i] <= threshold ? 1 : 0;
        out[i] = hit;
        ones += hit;
    }
    return ones;
}

} // namespace

const KernelOps &
scalarOps()
{
    static const KernelOps ops = {
        gemvBiasScalar,     axpyScalar,          addInPlaceScalar,
        sgdMomentumStepScalar, misrHashBatchScalar, quantizeBatchScalar,
        lessEqualMaskScalar,
    };
    return ops;
}

} // namespace mithra::kernels::detail
