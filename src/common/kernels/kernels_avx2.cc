/**
 * @file
 * AVX2 backend. The canonical 8-lane dot-product reduction maps 1:1
 * onto one 8-wide register: the in-register lanes *are* lane[0..7] of
 * the specification, the 128-bit halves add to m[0..3], and the final
 * shuffle tree reproduces (m0 + m2) + (m1 + m3) exactly. Multiplies
 * and adds stay separate instructions — FMA is never emitted — so the
 * results are bitwise identical to the scalar reference.
 *
 * This translation unit is compiled with -mavx2; intrinsics must not
 * leak outside src/common/kernels/ (lint rule no-intrinsics).
 */

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include "common/kernels/kernels_impl.hh"

namespace mithra::kernels::detail
{

namespace
{

/** Canonical reduction of one 8-lane accumulator (see kernels.hh). */
inline float
reduceLanes(__m256 acc)
{
    const __m128 lo = _mm256_castps256_ps128(acc);
    const __m128 hi = _mm256_extractf128_ps(acc, 1);
    const __m128 m = _mm_add_ps(lo, hi); // m[k] = lane[k] + lane[k+4]
    // t0 = m0 + m2, t1 = m1 + m3.
    const __m128 t = _mm_add_ps(m, _mm_movehl_ps(m, m));
    // (m0 + m2) + (m1 + m3).
    const __m128 s =
        _mm_add_ss(t, _mm_shuffle_ps(t, t, 0x55));
    return _mm_cvtss_f32(s);
}

void
gemvBiasAvx2(const float *weights, std::size_t stride, const float *bias,
             const float *input, std::size_t rows, float *out)
{
    // Two independent rows per iteration: each keeps its own canonical
    // accumulator (per-row order unchanged), the pairing only hides
    // the add latency.
    std::size_t r = 0;
    for (; r + 1 < rows; r += 2) {
        const float *w0 = weights + r * stride;
        const float *w1 = w0 + stride;
        __m256 acc0 = _mm256_setzero_ps();
        __m256 acc1 = _mm256_setzero_ps();
        for (std::size_t j = 0; j < stride; j += 8) {
            const __m256 x = _mm256_load_ps(input + j);
            acc0 = _mm256_add_ps(
                acc0, _mm256_mul_ps(_mm256_load_ps(w0 + j), x));
            acc1 = _mm256_add_ps(
                acc1, _mm256_mul_ps(_mm256_load_ps(w1 + j), x));
        }
        out[r] = reduceLanes(acc0) + bias[r];
        out[r + 1] = reduceLanes(acc1) + bias[r + 1];
    }
    if (r < rows) {
        const float *w = weights + r * stride;
        __m256 acc = _mm256_setzero_ps();
        for (std::size_t j = 0; j < stride; j += 8) {
            acc = _mm256_add_ps(
                acc, _mm256_mul_ps(_mm256_load_ps(w + j),
                                   _mm256_load_ps(input + j)));
        }
        out[r] = reduceLanes(acc) + bias[r];
    }
}

void
axpyAvx2(float a, const float *x, float *y, std::size_t n)
{
    const __m256 va = _mm256_set1_ps(a);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 vy = _mm256_add_ps(
            _mm256_loadu_ps(y + i),
            _mm256_mul_ps(va, _mm256_loadu_ps(x + i)));
        _mm256_storeu_ps(y + i, vy);
    }
    for (; i < n; ++i)
        y[i] += a * x[i];
}

void
addInPlaceAvx2(float *y, const float *x, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        _mm256_storeu_ps(y + i,
                         _mm256_add_ps(_mm256_loadu_ps(y + i),
                                       _mm256_loadu_ps(x + i)));
    }
    for (; i < n; ++i)
        y[i] += x[i];
}

void
sgdMomentumStepAvx2(float momentum, float scale, const float *grad,
                    float *velocity, float *weights, std::size_t n)
{
    const __m256 vm = _mm256_set1_ps(momentum);
    const __m256 vs = _mm256_set1_ps(scale);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 vel = _mm256_sub_ps(
            _mm256_mul_ps(vm, _mm256_loadu_ps(velocity + i)),
            _mm256_mul_ps(vs, _mm256_loadu_ps(grad + i)));
        _mm256_storeu_ps(velocity + i, vel);
        _mm256_storeu_ps(
            weights + i,
            _mm256_add_ps(_mm256_loadu_ps(weights + i), vel));
    }
    for (; i < n; ++i) {
        velocity[i] = momentum * velocity[i] - scale * grad[i];
        weights[i] += velocity[i];
    }
}

/** Lane-parallel parity of (state & taps): xor-fold to bit 0. */
inline __m256i
parity256(__m256i v)
{
    v = _mm256_xor_si256(v, _mm256_srli_epi32(v, 16));
    v = _mm256_xor_si256(v, _mm256_srli_epi32(v, 8));
    v = _mm256_xor_si256(v, _mm256_srli_epi32(v, 4));
    v = _mm256_xor_si256(v, _mm256_srli_epi32(v, 2));
    v = _mm256_xor_si256(v, _mm256_srli_epi32(v, 1));
    return _mm256_and_si256(v, _mm256_set1_epi32(1));
}

void
misrHashBatchAvx2(const MisrParams &p, const std::uint8_t *codes,
                  std::size_t width, std::size_t count,
                  std::uint32_t *out)
{
    const int rot = static_cast<int>(p.rotate % p.bits);
    const int invRot = static_cast<int>(p.bits) - rot;
    const __m256i taps = _mm256_set1_epi32(static_cast<int>(p.taps));
    const __m256i mask = _mm256_set1_epi32(static_cast<int>(p.mask));
    const __m256i spread =
        _mm256_set1_epi32(static_cast<int>(p.spread));

    // 8 invocations advance in lockstep, one register lane each; the
    // 8-row block is transposed first so each step loads its 8 codes
    // from one contiguous quadword.
    std::vector<std::uint8_t> transposed(width * 8);
    std::size_t base = 0;
    for (; base + 8 <= count; base += 8) {
        for (std::size_t lane = 0; lane < 8; ++lane) {
            const std::uint8_t *row = codes + (base + lane) * width;
            for (std::size_t j = 0; j < width; ++j)
                transposed[j * 8 + lane] = row[j];
        }

        __m256i state =
            _mm256_set1_epi32(static_cast<int>(p.seed & p.mask));
        for (std::size_t j = 0; j < width; ++j) {
            const __m256i feedback =
                parity256(_mm256_and_si256(state, taps));
            const __m256i rotated = _mm256_and_si256(
                _mm256_or_si256(_mm256_slli_epi32(state, rot),
                                _mm256_srli_epi32(state, invRot)),
                mask);
            state = _mm256_xor_si256(rotated, feedback);

            const __m128i packed = _mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(transposed.data()
                                                  + j * 8));
            const __m256i code8 = _mm256_cvtepu8_epi32(packed);
            const __m256i spreadCode = _mm256_and_si256(
                _mm256_mullo_epi32(code8, spread), mask);
            state = _mm256_xor_si256(state, spreadCode);
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + base),
                            state);
    }

    for (; base < count; ++base)
        out[base] = misrHashOne(p, codes + base * width, width);
}

void
quantizeBatchAvx2(const float *inputs, std::size_t width,
                  std::size_t count, const float *lows,
                  const float *highs, std::uint32_t levels,
                  std::uint8_t *out)
{
    const float levelsF = static_cast<float>(levels);
    const __m256 vLevels = _mm256_set1_ps(levelsF);
    const __m256 vHalf = _mm256_set1_ps(0.5f);
    const __m256 vZero = _mm256_setzero_ps();
    const __m256 vOne = _mm256_set1_ps(1.0f);

    for (std::size_t i = 0; i < count; ++i) {
        const float *row = inputs + i * width;
        std::uint8_t *dst = out + i * width;
        std::size_t j = 0;
        for (; j + 8 <= width; j += 8) {
            const __m256 x = _mm256_loadu_ps(row + j);
            const __m256 lo = _mm256_loadu_ps(lows + j);
            const __m256 hi = _mm256_loadu_ps(highs + j);
            __m256 t = _mm256_div_ps(_mm256_sub_ps(x, lo),
                                     _mm256_sub_ps(hi, lo));
            t = _mm256_max_ps(t, vZero);
            t = _mm256_min_ps(t, vOne);
            const __m256 scaled = _mm256_floor_ps(
                _mm256_add_ps(_mm256_mul_ps(t, vLevels), vHalf));
            const __m256i words = _mm256_cvttps_epi32(scaled);
            const __m128i lo128 = _mm256_castsi256_si128(words);
            const __m128i hi128 = _mm256_extracti128_si256(words, 1);
            const __m128i packed16 = _mm_packus_epi32(lo128, hi128);
            const __m128i packed8 = _mm_packus_epi16(packed16,
                                                     packed16);
            _mm_storel_epi64(reinterpret_cast<__m128i *>(dst + j),
                             packed8);
        }
        for (; j < width; ++j)
            dst[j] = quantizeOne(row[j], lows[j], highs[j], levelsF);
    }
}

std::size_t
lessEqualMaskAvx2(const float *values, std::size_t n, float threshold,
                  std::uint8_t *out)
{
    const __m256 vth = _mm256_set1_ps(threshold);
    std::size_t ones = 0;
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 cmp =
            _mm256_cmp_ps(_mm256_loadu_ps(values + i), vth, _CMP_LE_OQ);
        const unsigned mask =
            static_cast<unsigned>(_mm256_movemask_ps(cmp));
        for (std::size_t k = 0; k < 8; ++k)
            out[i + k] = static_cast<std::uint8_t>((mask >> k) & 1u);
        ones += static_cast<std::size_t>(__builtin_popcount(mask));
    }
    for (; i < n; ++i) {
        const std::uint8_t hit = values[i] <= threshold ? 1 : 0;
        out[i] = hit;
        ones += hit;
    }
    return ones;
}

} // namespace

const KernelOps &
avx2Ops()
{
    static const KernelOps ops = {
        gemvBiasAvx2,     axpyAvx2,          addInPlaceAvx2,
        sgdMomentumStepAvx2, misrHashBatchAvx2, quantizeBatchAvx2,
        lessEqualMaskAvx2,
    };
    return ops;
}

} // namespace mithra::kernels::detail

#endif // x86
