/**
 * @file
 * Backend selection and the dispatched public entry points.
 *
 * The backend is chosen exactly once, on first kernel use: the most
 * capable instruction set the CPU reports, unless MITHRA_KERNELS names
 * one explicitly (fatal on an unknown name or an unsupported backend —
 * a silent fallback would invalidate any scalar-vs-SIMD comparison the
 * caller thought it was running). Tests and benches may re-point the
 * dispatch table afterwards through setActiveBackend() from a
 * quiescent point.
 */

#include "common/kernels/kernels.hh"

#include <atomic>
#include <cstring>

#include "common/contracts.hh"
#include "common/env_registry.hh"
#include "common/kernels/kernels_impl.hh"
#include "common/logging.hh"
#include "telemetry/telemetry.hh"

namespace mithra::kernels
{

namespace
{

std::atomic<const detail::KernelOps *> activeOpsPointer{nullptr};
std::atomic<int> activeBackendValue{static_cast<int>(Backend::Scalar)};

/** The dispatch table of one (supported) backend. */
const detail::KernelOps &
opsFor(Backend backend)
{
#if defined(__x86_64__) || defined(__i386__)
    if (backend == Backend::Sse42)
        return detail::sse42Ops();
    if (backend == Backend::Avx2)
        return detail::avx2Ops();
#endif
    (void)backend;
    return detail::scalarOps();
}

/** Parse a MITHRA_KERNELS value; fatal on an unknown name. */
Backend
parseBackendName(const char *name)
{
    if (std::strcmp(name, "scalar") == 0)
        return Backend::Scalar;
    if (std::strcmp(name, "sse42") == 0)
        return Backend::Sse42;
    if (std::strcmp(name, "avx2") == 0)
        return Backend::Avx2;
    fatal("MITHRA_KERNELS=", name,
          " is not a kernel backend (scalar|sse42|avx2)");
}

/** Pick the startup backend: MITHRA_KERNELS override or best. */
Backend
selectStartupBackend()
{
    const char *request = env::text("MITHRA_KERNELS");
    if (request == nullptr)
        return bestSupportedBackend();
    const Backend backend = parseBackendName(request);
    if (!backendSupported(backend)) {
        fatal("MITHRA_KERNELS=", request,
              " requested but this CPU does not support it");
    }
    return backend;
}

/** The active dispatch table, selecting a backend on first use. */
const detail::KernelOps &
activeOps()
{
    const detail::KernelOps *ops =
        activeOpsPointer.load(std::memory_order_acquire);
    if (ops != nullptr)
        return *ops;
    // Thread-safe one-time selection; concurrent first users block on
    // the magic static until the winner has published the table.
    static const bool selected = [] {
        setActiveBackend(selectStartupBackend());
        return true;
    }();
    (void)selected;
    return *activeOpsPointer.load(std::memory_order_acquire);
}

} // namespace

const char *
backendName(Backend backend)
{
    switch (backend) {
    case Backend::Scalar:
        return "scalar";
    case Backend::Sse42:
        return "sse42";
    case Backend::Avx2:
        return "avx2";
    }
    return "unknown";
}

bool
backendSupported(Backend backend)
{
    if (backend == Backend::Scalar)
        return true;
#if defined(__x86_64__) || defined(__i386__)
    if (backend == Backend::Sse42)
        return __builtin_cpu_supports("sse4.2") != 0;
    if (backend == Backend::Avx2)
        return __builtin_cpu_supports("avx2") != 0;
#endif
    return false;
}

Backend
bestSupportedBackend()
{
    if (backendSupported(Backend::Avx2))
        return Backend::Avx2;
    if (backendSupported(Backend::Sse42))
        return Backend::Sse42;
    return Backend::Scalar;
}

Backend
activeBackend()
{
    activeOps(); // force first-use selection
    return static_cast<Backend>(
        activeBackendValue.load(std::memory_order_acquire));
}

void
setActiveBackend(Backend backend)
{
    if (!backendSupported(backend)) {
        fatal("kernel backend ", backendName(backend),
              " is not supported on this CPU");
    }
    activeBackendValue.store(static_cast<int>(backend),
                             std::memory_order_release);
    activeOpsPointer.store(&opsFor(backend),
                           std::memory_order_release);
    MITHRA_GAUGE_SET("kernels.backend", static_cast<int>(backend));
}

void
gemvBias(const float *weights, std::size_t stride, const float *bias,
         const float *input, std::size_t rows, float *out)
{
    MITHRA_EXPECTS(stride % 8 == 0, "gemv stride ", stride,
                   " is not lane-padded");
    MITHRA_EXPECTS(reinterpret_cast<std::uintptr_t>(weights)
                           % kernelAlignment
                       == 0,
                   "gemv weights are not 32-byte aligned");
    MITHRA_EXPECTS(reinterpret_cast<std::uintptr_t>(input)
                           % kernelAlignment
                       == 0,
                   "gemv input is not 32-byte aligned");
    // No per-call telemetry: this is the innermost MAC loop. Callers
    // account MACs/bytes at batch granularity.
    activeOps().gemvBias(weights, stride, bias, input, rows, out);
}

void
axpy(float a, const float *x, float *y, std::size_t n)
{
    activeOps().axpy(a, x, y, n);
}

void
addInPlace(float *y, const float *x, std::size_t n)
{
    activeOps().addInPlace(y, x, n);
}

void
sgdMomentumStep(float momentum, float scale, const float *grad,
                float *velocity, float *weights, std::size_t n)
{
    activeOps().sgdMomentumStep(momentum, scale, grad, velocity,
                                weights, n);
}

void
misrHashBatch(const MisrParams &params, const std::uint8_t *codes,
              std::size_t width, std::size_t count, std::uint32_t *out)
{
    MITHRA_EXPECTS(params.bits > 0 && params.bits <= 24,
                   "MISR width ", params.bits, " out of range");
    MITHRA_COUNT("kernels.misr.rows", count);
    MITHRA_COUNT("kernels.misr.bytes", width * count);
    activeOps().misrHashBatch(params, codes, width, count, out);
}

void
quantizeBatch(const float *inputs, std::size_t width, std::size_t count,
              const float *lows, const float *highs,
              std::uint32_t levels, std::uint8_t *out)
{
    MITHRA_EXPECTS(levels > 0 && levels <= 255, "quantizer levels ",
                   levels, " out of range");
    MITHRA_COUNT("kernels.quantize.elems", width * count);
    activeOps().quantizeBatch(inputs, width, count, lows, highs,
                              levels, out);
}

std::size_t
lessEqualMask(const float *values, std::size_t n, float threshold,
              std::uint8_t *out)
{
    MITHRA_COUNT("kernels.mask.elems", n);
    return activeOps().lessEqualMask(values, n, threshold, out);
}

} // namespace mithra::kernels
