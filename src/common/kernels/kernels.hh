/**
 * @file
 * Portable SIMD batch kernels for the MITHRA hot loops.
 *
 * Three inner loops dominate the software runtime of every experiment:
 * the sigmoid-MLP forward/backward MACs (paper §IV-B), the MISR
 * signature hash over each invocation's quantized input codes
 * (§IV-A.1), and the input quantizer itself. This layer provides
 * batched primitives for all three with runtime-dispatched
 * implementations: a scalar reference, SSE4.2 and AVX2. Intrinsics are
 * confined to this directory (mithra-lint enforces the containment);
 * everything above calls the dispatched entry points below.
 *
 * Determinism contract (the reason this file exists instead of
 * `-O3 -ffast-math`):
 *
 *  - Every backend is **bitwise identical**. The floating-point MAC
 *    reduction order is part of the kernel specification, not an
 *    implementation detail: a dot product is defined as a fixed
 *    8-lane strided sum
 *
 *        lane[k] += w[j + k] * x[j + k]      k = 0..7, j += 8
 *
 *    followed by the canonical tree
 *
 *        m[k] = lane[k] + lane[k + 4]        k = 0..3
 *        dot  = (m[0] + m[2]) + (m[1] + m[3])
 *
 *    The scalar reference implements exactly this order (compiled with
 *    -ffp-contract=off so no FMA contraction sneaks in), SSE4.2 keeps
 *    the eight lanes in two 4-wide registers, and AVX2 holds them in
 *    one 8-wide register — all three produce the same bit pattern for
 *    every input. Operands are multiplied then added; FMA is never
 *    used, at any -march.
 *  - Integer kernels (the batch MISR) are exactly the sequential
 *    register sequence of hw::Misr, lane-parallel across invocations.
 *  - Element-wise kernels (axpy, saxpby-style updates, quantization,
 *    threshold compares) have no cross-element reduction, so any lane
 *    width is bitwise identical by construction.
 *
 * The backend is selected once at startup: the best instruction set
 * the CPU supports, overridable with MITHRA_KERNELS=scalar|sse42|avx2.
 * Benchmarks and tests may switch explicitly via setActiveBackend().
 *
 * Buffers fed to the GEMV kernels use the padded SoA layout: row
 * strides rounded up to 8 floats (32 bytes), rows 32-byte aligned,
 * padding lanes zero-filled (AlignedVec value-initializes). Padding
 * contributes +0.0f products to the lane sums, which leaves every
 * accumulation bit-exact.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace mithra::kernels
{

/** Kernel instruction-set backends, in ascending preference order. */
enum class Backend
{
    Scalar = 0,
    Sse42 = 1,
    Avx2 = 2,
};

/** Stable lowercase name ("scalar", "sse42", "avx2"). */
const char *backendName(Backend backend);

/** True when the running CPU can execute `backend`. */
bool backendSupported(Backend backend);

/** The most capable backend the running CPU supports. */
Backend bestSupportedBackend();

/**
 * The backend every dispatched kernel currently runs. Selected once on
 * first use: bestSupportedBackend(), unless MITHRA_KERNELS names a
 * specific backend (fatal when the name is unknown or the CPU cannot
 * run it). The choice is recorded through telemetry as the
 * kernels.backend gauge.
 */
Backend activeBackend();

/**
 * Override the dispatched backend (tests and the scalar-vs-SIMD
 * micro benches). Not thread safe against concurrently running
 * kernels; call only from a quiescent point.
 */
void setActiveBackend(Backend backend);

/** Round a row width up to the 8-float lane granularity. */
constexpr std::size_t
paddedSize(std::size_t n)
{
    return (n + 7) / 8 * 8;
}

/** Byte alignment of every kernel-visible float row. */
inline constexpr std::size_t kernelAlignment = 32;

/**
 * Minimal 32-byte-aligning allocator so the padded SoA buffers can
 * stay ordinary std::vectors (value-initialized — padding lanes start
 * at +0.0f and the kernels never write them).
 */
template <typename T> struct AlignedAllocator
{
    using value_type = T;

    AlignedAllocator() = default;
    template <typename U> AlignedAllocator(const AlignedAllocator<U> &)
    {
    }

    T *allocate(std::size_t n)
    {
        return static_cast<T *>(::operator new(
            n * sizeof(T), std::align_val_t{kernelAlignment}));
    }

    void deallocate(T *p, std::size_t) noexcept
    {
        ::operator delete(p, std::align_val_t{kernelAlignment});
    }

    template <typename U>
    bool operator==(const AlignedAllocator<U> &) const
    {
        return true;
    }
};

/** A 32-byte-aligned float buffer (the padded SoA row storage). */
using AlignedVec = std::vector<float, AlignedAllocator<float>>;

/**
 * Dense GEMV with bias over the padded SoA layout:
 *
 *     out[r] = dot8(weights + r * stride, input) + bias[r]
 *
 * for r in [0, rows), where dot8 is the canonical 8-lane reduction
 * described in the file header. `stride` must be a multiple of 8;
 * `weights` and `input` must be 32-byte aligned with zero-filled
 * padding lanes. `out` receives exactly `rows` floats (no padding is
 * written). The activation (sigmoid) deliberately stays with the
 * caller: it is scalar std::exp in every path.
 */
void gemvBias(const float *weights, std::size_t stride, const float *bias,
              const float *input, std::size_t rows, float *out);

/** y[i] += a * x[i]. Element-wise; no alignment requirement. */
void axpy(float a, const float *x, float *y, std::size_t n);

/** y[i] += x[i]. Element-wise; no alignment requirement. */
void addInPlace(float *y, const float *x, std::size_t n);

/**
 * Momentum SGD step over one flat parameter array:
 *
 *     velocity[i] = momentum * velocity[i] - scale * grad[i]
 *     weights[i] += velocity[i]
 *
 * Element-wise; no alignment requirement.
 */
void sgdMomentumStep(float momentum, float scale, const float *grad,
                     float *velocity, float *weights, std::size_t n);

/**
 * One MISR wiring flattened for the kernel layer (hw::Misr::params()
 * produces it — hw depends on kernels, not the other way around).
 */
struct MisrParams
{
    std::uint32_t taps = 0;
    std::uint32_t spread = 0;
    std::uint32_t seed = 0;
    std::uint32_t mask = 0;
    std::uint32_t rotate = 0;
    std::uint32_t bits = 0;
};

/**
 * Batch MISR hash: `count` invocations of `width` codes each, stored
 * row-major in one flat buffer. out[i] receives exactly the value
 * sequential hashing produces (hw::Misr::hash of row i). Pure integer;
 * SIMD backends advance one register lane per invocation.
 */
void misrHashBatch(const MisrParams &params, const std::uint8_t *codes,
                   std::size_t width, std::size_t count,
                   std::uint32_t *out);

/**
 * Batch linear quantization: `count` rows of `width` floats, row-major.
 * Per element with the per-column ranges:
 *
 *     t = clamp((x - lo) / (hi - lo), 0, 1)
 *     code = floor(t * levels + 0.5f)
 *
 * The floor(+0.5) rounding is the canonical spec (identical to
 * round-half-up, and directly expressible as a SIMD floor). Requires
 * hi > lo per column; levels = 2^bits - 1 <= 255.
 */
void quantizeBatch(const float *inputs, std::size_t width,
                   std::size_t count, const float *lows,
                   const float *highs, std::uint32_t levels,
                   std::uint8_t *out);

/**
 * Threshold compare: out[i] = (values[i] <= threshold) ? 1 : 0.
 * Returns the number of ones. The pipeline's instrumented-run loops
 * (Algorithm 1 step 2) burn most of the threshold search here.
 */
std::size_t lessEqualMask(const float *values, std::size_t n,
                          float threshold, std::uint8_t *out);

} // namespace mithra::kernels
