/**
 * @file
 * Shared numeric vector aliases.
 *
 * Accelerator invocations move small vectors of scalars between the
 * core, the classifier and the NPU. Single precision matches the NPU
 * hardware the paper builds on and halves the memory footprint of the
 * cached invocation traces.
 */

#pragma once

#include <vector>

namespace mithra
{

/** An accelerator input or output vector. */
using Vec = std::vector<float>;

/** A batch of vectors. */
using VecBatch = std::vector<Vec>;

} // namespace mithra

