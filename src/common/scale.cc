#include "common/scale.hh"

#include <algorithm>
#include <cstdlib>

#include "common/logging.hh"

namespace mithra
{

double
experimentScale()
{
    static const double scale = [] {
        const char *env = std::getenv("MITHRA_SCALE");
        if (!env)
            return 1.0;
        char *end = nullptr;
        double value = std::strtod(env, &end);
        if (end == env || value <= 0.0 || value > 100.0) {
            fatal("MITHRA_SCALE must be a float in (0, 100], got `",
                  env, "'");
        }
        return value;
    }();
    return scale;
}

std::size_t
scaledCount(std::size_t full, std::size_t minimum)
{
    const double scaled = static_cast<double>(full) * experimentScale();
    const auto count = std::max<std::size_t>(
        static_cast<std::size_t>(scaled), 1);
    return std::max(minimum, count);
}

std::size_t
numCompileDatasets()
{
    return scaledCount(250);
}

std::size_t
numValidationDatasets()
{
    return scaledCount(250);
}

} // namespace mithra
