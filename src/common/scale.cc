#include "common/scale.hh"

#include <algorithm>

#include "common/env_registry.hh"
#include "common/logging.hh"

namespace mithra
{

double
experimentScale()
{
    static const double scale = env::realIn(
        "MITHRA_SCALE", 0.0, 100.0, 1.0, /*openLow=*/true,
        /*openHigh=*/false);
    return scale;
}

std::size_t
scaledCount(std::size_t full, std::size_t minimum)
{
    const double scaled = static_cast<double>(full) * experimentScale();
    const auto count = std::max<std::size_t>(
        static_cast<std::size_t>(scaled), 1);
    return std::max(minimum, count);
}

std::size_t
numCompileDatasets()
{
    return scaledCount(250);
}

std::size_t
numValidationDatasets()
{
    return scaledCount(250);
}

} // namespace mithra
