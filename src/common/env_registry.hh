/**
 * @file
 * Central registry of every `MITHRA_*` environment variable, plus the
 * checked accessors all library code reads them through.
 *
 * Scattered `getenv` + `atoi` parsing is how configuration drift
 * starts: two call sites disagree on a default, a typoed variable name
 * silently reads as "unset", and the README table rots. This header is
 * the single source of truth:
 *
 *  - `registry` lists every variable with its value domain, default
 *    and a one-line doc string. mithra-analyze pass 4 (`env-registry`
 *    rule) enforces that every `getenv("MITHRA_...")` in the tree
 *    names an entry here, that raw `getenv` appears nowhere else in
 *    library code, and that every entry appears in README.md's
 *    environment table (regenerate the table with
 *    `mithra-analyze --env-table`).
 *
 *  - The typed accessors (`countIn`, `realIn`, `flag`, `seed`,
 *    `text`) range-validate on read and fail a MITHRA_EXPECTS
 *    contract on malformed values, so a typo like MITHRA_THREADS=1e3
 *    dies with the offending text instead of half-applying.
 *
 * Reading an unregistered name through an accessor is itself a
 * contract violation: registration is not optional documentation.
 */

#pragma once

#include <array>
#include <cstdint>
#include <cstdlib>
#include <string_view>

#include "common/contracts.hh"

namespace mithra::env
{

/** One registered environment variable. */
struct VarInfo
{
    const char *name;     ///< "MITHRA_THREADS"
    const char *values;   ///< human-readable value domain
    const char *fallback; ///< human-readable default
    const char *doc;      ///< one-line description (README table cell)
};

/**
 * Every MITHRA_* environment variable the tree reads, in the order the
 * README table presents them. mithra-analyze checks both directions:
 * tree use -> registry entry, registry entry -> README row.
 */
inline constexpr std::array<VarInfo, 23> registry{{
    {"MITHRA_SCALE", "float in (0, 100]", "`1.0`",
     "scales dataset counts/sizes; 1.0 = 250 compile + 250 validation "
     "datasets per benchmark, `0.1` ≈ minutes-long smoke run"},
    {"MITHRA_THREADS", "int in [1, 1024]", "all hardware threads",
     "sizes the worker pool (compile pipeline, threshold optimizer, "
     "trainers); `1` forces the exact serial code path; bitwise "
     "identical at any value"},
    {"MITHRA_KERNELS", "`scalar`, `sse42`, `avx2`", "best supported",
     "SIMD backend for the batch kernels (NPU MACs, MISR hashing, "
     "quantizer); every backend bitwise identical (`DESIGN.md` §10)"},
    {"MITHRA_SHARDS", "int in [1, 1024]", "thread count",
     "shard count of the runtime decision loop (`DESIGN.md` §12); "
     "bitwise identical at any value with the watchdog off, semantic "
     "configuration with it on"},
    {"MITHRA_CACHE", "path", "`.mithra-cache.tsv`",
     "shared experiment result cache; delete to recompute"},
    {"MITHRA_PLUGINS", "colon-separated paths", "none",
     "plugin `.so` files to load (workloads and accelerator backends, "
     "`docs/PLUGINS.md`), in order; each must speak plugin ABI v1 "
     "(`include/mithra_plugin.h`)"},
    {"MITHRA_REPORT_DIR", "dir", "`.`",
     "where bench binaries write `BENCH_<name>.json` run reports"},
    {"MITHRA_REPORT_TIMING", "flag", "off",
     "include nondeterministic span wall/CPU times in run reports"},
    {"MITHRA_TRACE", "path", "off",
     "buffer every telemetry span as a Chrome trace-event file "
     "(`chrome://tracing`, Perfetto)"},
    {"MITHRA_WATCHDOG", "flag", "off",
     "enable the runtime guarantee watchdog (`DESIGN.md` §11); off is "
     "bit-for-bit the legacy runtime"},
    {"MITHRA_WATCHDOG_RATE", "float in (0, 1)", "`0.02`",
     "fraction of accelerated invocations audited while HEALTHY"},
    {"MITHRA_WATCHDOG_MAX_VIOLATION", "float in (0, 1)", "`0.1`",
     "allowed violation rate among accelerated invocations — the "
     "contract the watchdog patrols"},
    {"MITHRA_WATCHDOG_CONFIDENCE", "float in (0, 1)", "`0.95`",
     "confidence of the sequential Clopper–Pearson envelope per "
     "monitoring epoch"},
    {"MITHRA_WATCHDOG_SEED", "uint64", "`0xd09`",
     "seed of the deterministic audit schedule"},
    {"MITHRA_DSE_MARGIN", "float in [0, 1)", "`0.02`",
     "invocation-rate loss the design-space explorer may trade for "
     "pruning: a pruned candidate's true rate exceeds the best "
     "cheaper measured rate by at most this much while the surrogate "
     "residual bound holds (`DESIGN.md` §15)"},
    {"MITHRA_DSE_QUALITY_MARGIN", "float in [0, 1)", "`0.05`",
     "quality-met slack the explorer may trade when pruning "
     "predicted-infeasible candidates"},
    {"MITHRA_DSE_SEED_EVALS", "int in [1, 4096]", "`12`",
     "exact evaluations the explorer spends seeding the surrogate fit "
     "before pruning"},
    {"MITHRA_DSE_EXHAUSTIVE", "flag", "off",
     "force the explorer to evaluate every candidate exactly (the "
     "brute-force reference; no surrogate, no pruning)"},
    {"MITHRA_SERVE_PORT", "int in [0, 65535]", "`0`",
     "TCP port `mithra-serve` binds (`DESIGN.md` §14); `0` picks an "
     "ephemeral port, printed on stdout and via `--port-file`"},
    {"MITHRA_SERVE_WORKERS", "int in [1, 256]", "`4`",
     "connection worker threads of the service shell; changing it "
     "never changes decisions or certificates"},
    {"MITHRA_SERVE_JOB_QUEUE", "int in [1, 4096]", "`16`",
     "bounded depth of the async compile/train job queue; `POST /jobs` "
     "answers 429 when full"},
    {"MITHRA_SERVE_MAX_BODY", "int in [1024, 2^30]", "`8388608`",
     "largest accepted HTTP request body in bytes; larger requests "
     "are refused with 413"},
    {"MITHRA_SERVE_TIMEOUT_MS", "int in [100, 600000]", "`10000`",
     "per-connection idle/read timeout of the service shell in "
     "milliseconds"},
}};

/** Registry entry for `name`, or nullptr when unregistered. */
inline constexpr const VarInfo *
find(std::string_view name)
{
    for (const VarInfo &info : registry) {
        if (name == info.name)
            return &info;
    }
    return nullptr;
}

/**
 * The raw value of a *registered* variable, or nullptr when unset.
 * The one sanctioned `getenv` in library code (mithra-analyze's
 * env-registry rule bans it everywhere else).
 */
inline const char *
raw(const char *name)
{
    MITHRA_EXPECTS(find(name) != nullptr,
                   "unregistered environment variable ", name,
                   " — add it to src/common/env_registry.hh");
    return std::getenv(name);
}

/** Integer count in [lo, hi]; `fallback` when unset. */
inline std::size_t
countIn(const char *name, long lo, long hi, std::size_t fallback)
{
    const char *value = raw(name);
    if (!value)
        return fallback;
    char *end = nullptr;
    const long parsed = std::strtol(value, &end, 10);
    MITHRA_EXPECTS(end != value && *end == '\0' && parsed >= lo
                       && parsed <= hi,
                   name, " must be an integer in [", lo, ", ", hi,
                   "], got `", value, "'");
    return static_cast<std::size_t>(parsed);
}

/**
 * Real number in the interval between `lo` and `hi`; the bounds are
 * exclusive/inclusive per `openLow`/`openHigh`. `fallback` when unset.
 */
inline double
realIn(const char *name, double lo, double hi, double fallback,
       bool openLow = true, bool openHigh = true)
{
    const char *value = raw(name);
    if (!value)
        return fallback;
    char *end = nullptr;
    const double parsed = std::strtod(value, &end);
    const bool aboveLow = openLow ? parsed > lo : parsed >= lo;
    const bool belowHigh = openHigh ? parsed < hi : parsed <= hi;
    MITHRA_EXPECTS(end != value && *end == '\0' && aboveLow
                       && belowHigh,
                   name, " must be a float in ", openLow ? "(" : "[",
                   lo, ", ", hi, openHigh ? ")" : "]", ", got `", value,
                   "'");
    return parsed;
}

/** Boolean flag: set, non-empty and not starting with '0'. */
inline bool
flag(const char *name, bool fallback = false)
{
    const char *value = raw(name);
    if (!value)
        return fallback;
    return value[0] != '\0' && value[0] != '0';
}

/** uint64 seed; decimal / 0x hex / 0 octal accepted. */
inline std::uint64_t
seed(const char *name, std::uint64_t fallback)
{
    const char *value = raw(name);
    if (!value)
        return fallback;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(value, &end, 0);
    MITHRA_EXPECTS(end != value && *end == '\0', name,
                   " must be an integer, got `", value, "'");
    return static_cast<std::uint64_t>(parsed);
}

/** Raw string value; `fallback` (may be nullptr) when unset/empty. */
inline const char *
text(const char *name, const char *fallback = nullptr)
{
    const char *value = raw(name);
    return value && *value ? value : fallback;
}

} // namespace mithra::env
