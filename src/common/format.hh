/**
 * @file
 * Shared number formatting for human-readable output.
 *
 * These helpers originated in core/report.hh for the table/figure
 * harness binaries; they live in common/ so lower layers (notably the
 * telemetry dump) can reuse them without a core -> telemetry cycle.
 * core/report.hh re-exports them into mithra::core for its callers.
 */

#pragma once

#include <string>

namespace mithra
{

/** "12.3%" with the given number of decimals. */
std::string fmtPct(double value, int decimals = 1);

/** "2.53x" with the given number of decimals. */
std::string fmtRatio(double value, int decimals = 2);

/** "512 B" below 1 KiB, "1.50 KB" above. */
std::string fmtBytes(double bytes);

/** Bytes rendered as "12.00 KB". */
std::string fmtKb(double bytes, int decimals = 2);

/** "1.2k" / "3.40M" style human count (exact below 1000). */
std::string fmtCount(double value);

} // namespace mithra
