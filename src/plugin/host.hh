/**
 * @file
 * Host-side adapters for the C plugin ABI (include/mithra_plugin.h).
 *
 * The loader (loader.cc) hands each plugin the mithra_host_v1 table
 * built here. Registration callbacks validate the C tables field by
 * field — a plugin author's mistake must die with a message naming
 * the plugin and the field, not as a crash three subsystems later —
 * then adapt them behind the narrow C++ seams the rest of the tree
 * already speaks: a workload table becomes an axbench::Benchmark in
 * the WorkloadRegistry, a backend table becomes an
 * axbench::Accelerator factory the workload's makeAccelerator()
 * resolves by name.
 *
 * Copies, not references: every string and table is deep-copied at
 * registration, so plugins may build their tables on the stack. The
 * function-table ctx pointers are kept verbatim (plugins are never
 * unloaded).
 */

#pragma once

#include <string>
#include <vector>

#include "mithra_plugin.h"

namespace mithra::plugin
{

/** What one registration callback batch recorded (loader reporting). */
struct RegistrationLog
{
    std::vector<std::string> workloads;
    std::vector<std::string> backends;
};

/**
 * The host table handed to mithra_plugin_register(). `provenance`
 * labels fatal diagnostics and registry entries (the plugin path);
 * registrations are recorded into `log`. Single-threaded: one plugin
 * registers at a time (the loader serializes).
 */
const mithra_host_v1 &hostTable(const std::string &provenance,
                                RegistrationLog &log);

/**
 * Validate + adopt one workload table (also the static-linking path:
 * tests register a plugin's table directly to compare against the
 * dlopen route). Fatal on invalid tables or duplicate names.
 */
void registerWorkloadTable(const mithra_workload_v1 *table,
                           const std::string &provenance);

/** Validate + adopt one backend table. Fatal on invalid tables or
 *  duplicate backend names. */
void registerBackendTable(const mithra_backend_v1 *table,
                          const std::string &provenance);

/** Names of all registered accelerator backends, in load order. */
std::vector<std::string> backendNames();

} // namespace mithra::plugin
