#include "plugin/loader.hh"

#include <dlfcn.h>

#include <deque>

#include "axbench/registry.hh"
#include "common/env_registry.hh"
#include "common/logging.hh"
#include "mithra_plugin.h"
#include "plugin/host.hh"

namespace mithra::plugin
{

namespace
{

/** Load-order record; deque keeps LoadedPlugin references stable. */
std::deque<LoadedPlugin> &
registryOfLoaded()
{
    static std::deque<LoadedPlugin> loaded;
    return loaded;
}

const LoadedPlugin *
findLoaded(const std::string &path)
{
    for (const LoadedPlugin &plugin : registryOfLoaded()) {
        if (plugin.path == path)
            return &plugin;
    }
    return nullptr;
}

/** dlsym with the function-pointer cast in one audited place. */
template <typename FnType>
FnType
resolve(void *handle, const char *symbol)
{
    // POSIX guarantees object/function pointer interconvertibility
    // for dlsym; the reinterpret_cast is the sanctioned idiom.
    return reinterpret_cast<FnType>(dlsym(handle, symbol));
}

} // namespace

const LoadedPlugin &
loadPlugin(const std::string &path)
{
    if (const LoadedPlugin *already = findLoaded(path))
        return *already;

    // RTLD_NOW: undefined symbols surface here, with the path named,
    // not at first call. RTLD_LOCAL: plugin internals must not leak
    // into (or collide with) the host's symbol table.
    void *handle = dlopen(path.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (!handle) {
        const char *why = dlerror();
        fatal("cannot load plugin `", path, "': ",
              why ? why : "dlopen failed",
              " — check the path in MITHRA_PLUGINS");
    }

    const auto versionFn =
        resolve<uint32_t (*)(void)>(handle, "mithra_plugin_abi_version");
    if (!versionFn) {
        fatal("`", path, "' is not a MITHRA plugin: it does not export "
              "mithra_plugin_abi_version() (see include/mithra_plugin.h "
              "and docs/PLUGINS.md)");
    }
    const uint32_t version = versionFn();
    if (version != MITHRA_PLUGIN_ABI_VERSION) {
        fatal("plugin `", path, "' speaks ABI v", version,
              " but this host speaks v", MITHRA_PLUGIN_ABI_VERSION,
              " — rebuild the plugin against this tree's "
              "include/mithra_plugin.h");
    }

    const auto registerFn = resolve<int (*)(const mithra_host_v1 *)>(
        handle, "mithra_plugin_register");
    if (!registerFn) {
        fatal("`", path, "' is not a MITHRA plugin: it exports "
              "mithra_plugin_abi_version() but not "
              "mithra_plugin_register()");
    }

    RegistrationLog log;
    const int rc = registerFn(&hostTable(path, log));
    if (rc != 0) {
        fatal("plugin `", path, "': mithra_plugin_register() returned ",
              rc, " — the plugin refused to initialize");
    }
    if (log.workloads.empty() && log.backends.empty()) {
        warn("plugin `", path,
             "' registered nothing (no workloads, no backends)");
    }

    LoadedPlugin plugin;
    plugin.path = path;
    plugin.abiVersion = version;
    plugin.workloads = log.workloads;
    plugin.backends = log.backends;
    registryOfLoaded().push_back(std::move(plugin));
    const LoadedPlugin &stored = registryOfLoaded().back();
    inform("plugin[", path, "]: ABI v", version, ", ",
           stored.workloads.size(), " workload(s), ",
           stored.backends.size(), " backend(s)");
    return stored;
}

std::size_t
loadFromEnv()
{
    const char *value = env::text("MITHRA_PLUGINS");
    if (!value)
        return 0;
    std::size_t loaded = 0;
    const std::string paths(value);
    std::size_t begin = 0;
    while (begin <= paths.size()) {
        const std::size_t end = paths.find(':', begin);
        const std::string path = paths.substr(
            begin, end == std::string::npos ? std::string::npos
                                            : end - begin);
        if (!path.empty() && !findLoaded(path)) {
            loadPlugin(path);
            ++loaded;
        }
        if (end == std::string::npos)
            break;
        begin = end + 1;
    }
    return loaded;
}

std::vector<LoadedPlugin>
loadedPlugins()
{
    return {registryOfLoaded().begin(), registryOfLoaded().end()};
}

void
enableAutoDiscovery()
{
    axbench::WorkloadRegistry::global().setDiscovery(
        [] { loadFromEnv(); });
}

} // namespace mithra::plugin
