/**
 * @file
 * The plugin loader: dlopen + symbol/ABI validation + deterministic
 * registration order.
 *
 * Plugins load in exactly the order their paths appear in
 * MITHRA_PLUGINS (colon-separated), and each path loads at most once
 * per process — repeated loadFromEnv() calls are idempotent, so the
 * registry's name order is a pure function of the environment value.
 * Every failure mode is a fatal() with an actionable message naming
 * the path: unresolvable file (dlerror text), missing entry-point
 * symbols (not a MITHRA plugin), ABI version mismatch (rebuild
 * against include/mithra_plugin.h), and a register hook that returns
 * nonzero.
 *
 * dlopen/dlsym live here and only here — mithra-lint's no-dlopen rule
 * confines runtime code loading to src/plugin so the rest of the
 * library stays statically analyzable.
 */

#pragma once

#include <string>
#include <vector>

namespace mithra::plugin
{

/** One successfully loaded plugin. */
struct LoadedPlugin
{
    std::string path;
    unsigned abiVersion = 0;
    std::vector<std::string> workloads;
    std::vector<std::string> backends;
};

/**
 * Load one plugin shared object (fatal on every failure mode above).
 * A path already loaded in this process is returned as-is without
 * re-running its registration.
 */
const LoadedPlugin &loadPlugin(const std::string &path);

/**
 * Load every path in MITHRA_PLUGINS (colon-separated, in order);
 * empty segments are ignored. Returns the plugins newly loaded by
 * this call (already-loaded paths are skipped silently).
 */
std::size_t loadFromEnv();

/** Everything loaded so far, in load order (copied snapshot). */
std::vector<LoadedPlugin> loadedPlugins();

/**
 * Install loadFromEnv() as the WorkloadRegistry's lazy discovery
 * hook: the first benchmark-name resolution anywhere in the process
 * pulls in MITHRA_PLUGINS. Call once at startup from binaries that
 * should honor the knob (mithra-serve loads eagerly instead, to fail
 * fast before binding the port).
 */
void enableAutoDiscovery();

} // namespace mithra::plugin
