#include "plugin/host.hh"

#include <algorithm>
#include <cstring>
#include <memory>
#include <utility>

#include "axbench/accelerator.hh"
#include "axbench/benchmark.hh"
#include "axbench/registry.hh"
#include "common/contracts.hh"
#include "common/logging.hh"

namespace mithra::plugin
{

namespace
{

/** Deep copy of a mithra_backend_v1 (strings owned, hooks verbatim). */
struct BackendTable
{
    std::string name;
    std::string provenance;
    void *ctx = nullptr;
    void *(*create)(void *) = nullptr;
    void (*destroy)(void *, void *) = nullptr;
    double (*train)(void *, void *, const float *, const float *,
                    std::size_t, std::size_t, std::size_t,
                    std::uint64_t) = nullptr;
    void (*invoke)(void *, const void *, const float *,
                   float *) = nullptr;
    void (*invocationCost)(void *, const void *, std::uint64_t *,
                           double *) = nullptr;
};

/** Deep copy of a mithra_workload_v1. */
struct WorkloadTable
{
    std::string name;
    std::string domain;
    std::string metricName;
    std::string backend; ///< empty = built-in NPU
    std::string provenance;
    int metric = 0;
    void *ctx = nullptr;
    double (*qualityLoss)(void *, const float *, const float *,
                          std::size_t) = nullptr;
    std::size_t inputWidth = 0;
    std::size_t outputWidth = 0;
    npu::Topology topology;
    std::size_t trainEpochs = 0;
    double trainLearningRate = 0.0;
    std::uint64_t trainSeed = 0;
    unsigned tableQuantizerBits = 0;
    void *(*datasetCreate)(void *, std::uint64_t) = nullptr;
    void (*datasetDestroy)(void *, void *) = nullptr;
    std::size_t (*datasetInvocations)(void *, const void *) = nullptr;
    void (*datasetInput)(void *, const void *, std::size_t,
                         float *) = nullptr;
    void (*targetFunction)(void *, const float *, float *) = nullptr;
    std::size_t (*finalSize)(void *, const void *) = nullptr;
    void (*recomposeFn)(void *, const void *, const float *, std::size_t,
                        float *) = nullptr;
    sim::OpCounts targetOps;
    sim::OpCounts otherOpsPerInvocation;
};

/**
 * Registered tables. Pointed into by registry factories and live
 * benchmark objects, so the storage must never move: unique_ptr
 * elements keep the tables themselves stable.
 */
std::vector<std::unique_ptr<BackendTable>> &
backendTables()
{
    static std::vector<std::unique_ptr<BackendTable>> tables;
    return tables;
}

std::vector<std::unique_ptr<WorkloadTable>> &
workloadTables()
{
    static std::vector<std::unique_ptr<WorkloadTable>> tables;
    return tables;
}

const BackendTable *
findBackend(const std::string &name)
{
    for (const auto &table : backendTables()) {
        if (table->name == name)
            return table.get();
    }
    return nullptr;
}

sim::OpCounts
opCountsFrom(const mithra_op_counts_v1 &ops)
{
    sim::OpCounts out;
    out.addSub = ops.add_sub;
    out.mul = ops.mul;
    out.div = ops.div_op;
    out.sqrtOp = ops.sqrt_op;
    out.transcendental = ops.transcendental;
    out.compare = ops.compare;
    out.memory = ops.memory;
    return out;
}

// ------------------------------------------------------------ backend

/** axbench::Accelerator over a plugin backend table. */
class PluginAccelerator final : public axbench::Accelerator
{
  public:
    explicit PluginAccelerator(const BackendTable &tableIn)
        : table(tableIn), instance(table.create(table.ctx))
    {
        if (!instance) {
            fatal("backend `", table.name, "' (", table.provenance,
                  "): create() returned NULL");
        }
    }

    ~PluginAccelerator() override
    {
        table.destroy(table.ctx, instance);
    }

    PluginAccelerator(const PluginAccelerator &) = delete;
    PluginAccelerator &operator=(const PluginAccelerator &) = delete;

    std::string kind() const override { return table.name; }

    double trainToMimic(const VecBatch &inputs, const VecBatch &outputs,
                        std::uint64_t seed) override
    {
        MITHRA_EXPECTS(!inputs.empty() && inputs.size() == outputs.size(),
                       "backend training needs aligned sample batches");
        inWidth = inputs.front().size();
        outWidth = outputs.front().size();
        std::vector<float> flatIn, flatOut;
        flatIn.reserve(inputs.size() * inWidth);
        flatOut.reserve(outputs.size() * outWidth);
        for (std::size_t i = 0; i < inputs.size(); ++i) {
            MITHRA_EXPECTS(inputs[i].size() == inWidth
                               && outputs[i].size() == outWidth,
                           "ragged backend training batch");
            flatIn.insert(flatIn.end(), inputs[i].begin(),
                          inputs[i].end());
            flatOut.insert(flatOut.end(), outputs[i].begin(),
                           outputs[i].end());
        }
        const double mse = table.train(table.ctx, instance,
                                       flatIn.data(), flatOut.data(),
                                       inputs.size(), inWidth, outWidth,
                                       seed);
        if (mse < 0.0) {
            fatal("backend `", table.name, "' (", table.provenance,
                  "): train() failed (returned ", mse, ")");
        }
        isTrained = true;
        return mse;
    }

    bool trained() const override { return isTrained; }

    Vec invoke(const Vec &input) const override
    {
        MITHRA_EXPECTS(isTrained, "backend `", table.name,
                       "' invoked before training");
        MITHRA_EXPECTS(input.size() == inWidth,
                       "backend input width mismatch");
        Vec out(outWidth);
        table.invoke(table.ctx, instance, input.data(), out.data());
        return out;
    }

    axbench::AcceleratorCost invocationCost() const override
    {
        axbench::AcceleratorCost cost;
        table.invocationCost(table.ctx, instance, &cost.cycles,
                             &cost.picoJoules);
        return cost;
    }

  private:
    const BackendTable &table;
    void *instance;
    bool isTrained = false;
    std::size_t inWidth = 0;
    std::size_t outWidth = 0;
};

// ----------------------------------------------------------- workload

/** Opaque plugin dataset handle with plugin-owned destruction. */
class PluginDataset final : public axbench::Dataset
{
  public:
    PluginDataset(const WorkloadTable &tableIn, void *handleIn)
        : table(tableIn), datasetHandle(handleIn)
    {
    }

    ~PluginDataset() override
    {
        table.datasetDestroy(table.ctx, datasetHandle);
    }

    PluginDataset(const PluginDataset &) = delete;
    PluginDataset &operator=(const PluginDataset &) = delete;

    void *handle() const { return datasetHandle; }

  private:
    const WorkloadTable &table;
    void *datasetHandle;
};

/** axbench::Benchmark over a plugin workload table. */
class PluginWorkload final : public axbench::Benchmark
{
  public:
    explicit PluginWorkload(const WorkloadTable &tableIn)
        : table(tableIn)
    {
    }

    std::string name() const override { return table.name; }
    std::string domain() const override { return table.domain; }

    axbench::QualityMetric metric() const override
    {
        switch (table.metric) {
          case MITHRA_METRIC_AVG_RELATIVE_ERROR:
            return axbench::QualityMetric::AvgRelativeError;
          case MITHRA_METRIC_MISS_RATE:
            return axbench::QualityMetric::MissRate;
          case MITHRA_METRIC_IMAGE_DIFF:
            return axbench::QualityMetric::ImageDiff;
          default:
            return axbench::QualityMetric::Custom;
        }
    }

    double qualityLoss(const axbench::FinalOutput &reference,
                       const axbench::FinalOutput &candidate)
        const override
    {
        if (!table.qualityLoss)
            return Benchmark::qualityLoss(reference, candidate);
        MITHRA_EXPECTS(reference.elements.size()
                           == candidate.elements.size(),
                       "output element count mismatch: ",
                       reference.elements.size(), " vs ",
                       candidate.elements.size());
        const double loss = table.qualityLoss(
            table.ctx, reference.elements.data(),
            candidate.elements.data(), reference.elements.size());
        MITHRA_ENSURES(loss >= 0.0, "workload `", table.name,
                       "': quality_loss() returned ", loss,
                       " — losses are percentages >= 0");
        return loss;
    }

    std::string metricLabel() const override
    {
        return table.metricName.empty()
            ? axbench::metricName(metric())
            : table.metricName;
    }

    npu::Topology npuTopology() const override { return table.topology; }

    npu::TrainerOptions npuTrainerOptions() const override
    {
        npu::TrainerOptions options;
        if (table.trainEpochs)
            options.epochs = table.trainEpochs;
        if (table.trainLearningRate > 0.0)
            options.learningRate =
                static_cast<float>(table.trainLearningRate);
        if (table.trainSeed)
            options.seed = table.trainSeed;
        return options;
    }

    unsigned tableQuantizerBits() const override
    {
        return table.tableQuantizerBits;
    }

    std::unique_ptr<axbench::Dataset> makeDataset(
        std::uint64_t seed) const override
    {
        void *handle = table.datasetCreate(table.ctx, seed);
        if (!handle) {
            fatal("workload `", table.name, "' (", table.provenance,
                  "): dataset_create(", seed, ") returned NULL");
        }
        return std::make_unique<PluginDataset>(table, handle);
    }

    axbench::InvocationTrace trace(
        const axbench::Dataset &dataset) const override
    {
        void *handle = pluginHandle(dataset);
        const std::size_t count =
            table.datasetInvocations(table.ctx, handle);
        MITHRA_EXPECTS(count > 0, "workload `", table.name,
                       "': dataset reports zero invocations");
        axbench::InvocationTrace trace(table.inputWidth,
                                       table.outputWidth);
        Vec input(table.inputWidth);
        Vec output(table.outputWidth);
        for (std::size_t i = 0; i < count; ++i) {
            table.datasetInput(table.ctx, handle, i, input.data());
            table.targetFunction(table.ctx, input.data(),
                                 output.data());
            trace.append(input, output);
        }
        return trace;
    }

    axbench::FinalOutput recompose(
        const axbench::Dataset &dataset,
        const axbench::InvocationTrace &trace,
        const std::vector<std::uint8_t> &useAccel) const override
    {
        MITHRA_EXPECTS(useAccel.size() == trace.count(),
                       "decision vector length mismatch");
        void *handle = pluginHandle(dataset);
        // The chosen per-invocation output stream, row-major.
        std::vector<float> chosen(trace.count() * table.outputWidth);
        for (std::size_t i = 0; i < trace.count(); ++i) {
            const auto out = useAccel[i] ? trace.approxOutput(i)
                                         : trace.preciseOutput(i);
            std::copy(out.begin(), out.end(),
                      chosen.begin()
                          + static_cast<std::ptrdiff_t>(
                              i * table.outputWidth));
        }
        const std::size_t finalCount =
            table.finalSize(table.ctx, handle);
        axbench::FinalOutput finalOut;
        if (!table.recomposeFn) {
            MITHRA_EXPECTS(finalCount == chosen.size(),
                           "workload `", table.name,
                           "': identity recompose requires final_size "
                           "== invocations * output_width (",
                           finalCount, " vs ", chosen.size(), ")");
            finalOut.elements = std::move(chosen);
            return finalOut;
        }
        finalOut.elements.assign(finalCount, 0.0f);
        table.recomposeFn(table.ctx, handle, chosen.data(),
                          trace.count(), finalOut.elements.data());
        return finalOut;
    }

    Vec targetFunction(const Vec &input) const override
    {
        MITHRA_EXPECTS(input.size() == table.inputWidth,
                       "workload `", table.name,
                       "': target input width mismatch");
        Vec out(table.outputWidth);
        table.targetFunction(table.ctx, input.data(), out.data());
        return out;
    }

    axbench::BenchmarkCosts measureCosts() const override
    {
        // Plugin kernels are not Counted<T>-instrumented; the table
        // declares per-invocation op counts instead, and a probe
        // dataset scales the non-target region to per-dataset units.
        const auto probe = makeDataset(axbench::compileSeed(table.name,
                                                            0));
        const auto &dataset =
            static_cast<const PluginDataset &>(*probe);
        const std::size_t invocations =
            table.datasetInvocations(table.ctx, dataset.handle());
        axbench::BenchmarkCosts costs;
        costs.targetOpsPerInvocation = table.targetOps;
        costs.otherOpsPerDataset = table.otherOpsPerInvocation.scaled(
            static_cast<double>(invocations));
        return costs;
    }

    std::unique_ptr<axbench::Accelerator> makeAccelerator()
        const override
    {
        if (table.backend.empty())
            return nullptr;
        const BackendTable *backend = findBackend(table.backend);
        if (!backend) {
            fatal("workload `", table.name, "' (", table.provenance,
                  ") names accelerator backend `", table.backend,
                  "', which no loaded plugin registered — check "
                  "MITHRA_PLUGINS order (backends must load with or "
                  "before their workloads)");
        }
        return std::make_unique<PluginAccelerator>(*backend);
    }

  private:
    void *pluginHandle(const axbench::Dataset &dataset) const
    {
        const auto *plugin =
            dynamic_cast<const PluginDataset *>(&dataset);
        MITHRA_EXPECTS(plugin != nullptr, "workload `", table.name,
                       "' received a foreign dataset");
        return plugin->handle();
    }

    const WorkloadTable &table;
};

// -------------------------------------------------------- validation

/**
 * Copy the caller's table prefix into a zero-filled host-side view:
 * older v1 plugins (smaller struct_size) read as zeros/NULLs in the
 * tail, newer ones (larger struct_size) have their unknown tail
 * ignored. struct_size below the v1 baseline is rejected.
 */
template <typename TableType>
TableType
copyPrefix(const TableType *table, const char *what,
           const std::string &provenance)
{
    TableType view;
    std::memset(&view, 0, sizeof(view));
    if (table == nullptr) {
        fatal("plugin ", provenance, ": register_", what,
              "(NULL) — pass a table");
    }
    if (table->struct_size < sizeof(TableType)) {
        fatal("plugin ", provenance, ": ", what, " struct_size ",
              table->struct_size, " is below the ABI v1 baseline ",
              sizeof(TableType),
              " — rebuild against include/mithra_plugin.h");
    }
    std::memcpy(&view, table,
                std::min(static_cast<std::size_t>(table->struct_size),
                         sizeof(TableType)));
    return view;
}

void
requireField(bool ok, const std::string &provenance, const char *what,
             const char *field)
{
    if (!ok) {
        fatal("plugin ", provenance, ": ", what, " table field `",
              field, "' is missing or invalid (see "
              "include/mithra_plugin.h)");
    }
}

} // namespace

void
registerBackendTable(const mithra_backend_v1 *table,
                     const std::string &provenance)
{
    const mithra_backend_v1 view =
        copyPrefix(table, "backend", provenance);
    requireField(view.name && *view.name, provenance, "backend", "name");
    requireField(view.create != nullptr, provenance, "backend",
                 "create");
    requireField(view.destroy != nullptr, provenance, "backend",
                 "destroy");
    requireField(view.train != nullptr, provenance, "backend", "train");
    requireField(view.invoke != nullptr, provenance, "backend",
                 "invoke");
    requireField(view.invocation_cost != nullptr, provenance, "backend",
                 "invocation_cost");

    if (const BackendTable *existing = findBackend(view.name)) {
        fatal("duplicate accelerator backend `", view.name,
              "': already registered by ", existing->provenance,
              ", now offered by ", provenance);
    }

    auto copy = std::make_unique<BackendTable>();
    copy->name = view.name;
    copy->provenance = provenance;
    copy->ctx = view.ctx;
    copy->create = view.create;
    copy->destroy = view.destroy;
    copy->train = view.train;
    copy->invoke = view.invoke;
    copy->invocationCost = view.invocation_cost;
    backendTables().push_back(std::move(copy));
}

void
registerWorkloadTable(const mithra_workload_v1 *table,
                      const std::string &provenance)
{
    const mithra_workload_v1 view =
        copyPrefix(table, "workload", provenance);
    requireField(view.name && *view.name, provenance, "workload",
                 "name");
    requireField(view.domain && *view.domain, provenance, "workload",
                 "domain");
    requireField(view.metric >= MITHRA_METRIC_AVG_RELATIVE_ERROR
                     && view.metric <= MITHRA_METRIC_CUSTOM,
                 provenance, "workload", "metric");
    if (view.metric == MITHRA_METRIC_CUSTOM) {
        requireField(view.quality_loss != nullptr, provenance,
                     "workload", "quality_loss");
        requireField(view.metric_name && *view.metric_name, provenance,
                     "workload", "metric_name");
    }
    requireField(view.input_width > 0, provenance, "workload",
                 "input_width");
    requireField(view.output_width > 0, provenance, "workload",
                 "output_width");
    requireField(view.topology != nullptr && view.topology_len >= 2,
                 provenance, "workload", "topology");
    requireField(view.topology[0] == view.input_width
                     && view.topology[view.topology_len - 1]
                         == view.output_width,
                 provenance, "workload",
                 "topology (must start with input_width and end with "
                 "output_width)");
    requireField(view.dataset_create != nullptr, provenance, "workload",
                 "dataset_create");
    requireField(view.dataset_destroy != nullptr, provenance,
                 "workload", "dataset_destroy");
    requireField(view.dataset_invocations != nullptr, provenance,
                 "workload", "dataset_invocations");
    requireField(view.dataset_input != nullptr, provenance, "workload",
                 "dataset_input");
    requireField(view.target_function != nullptr, provenance,
                 "workload", "target_function");
    requireField(view.final_size != nullptr, provenance, "workload",
                 "final_size");

    auto copy = std::make_unique<WorkloadTable>();
    copy->name = view.name;
    copy->domain = view.domain;
    copy->metricName = view.metric_name ? view.metric_name : "";
    copy->backend = view.backend ? view.backend : "";
    copy->provenance = provenance;
    copy->metric = view.metric;
    copy->ctx = view.ctx;
    copy->qualityLoss = view.quality_loss;
    copy->inputWidth = view.input_width;
    copy->outputWidth = view.output_width;
    copy->topology.assign(view.topology,
                          view.topology + view.topology_len);
    copy->trainEpochs = view.train_epochs;
    copy->trainLearningRate = view.train_learning_rate;
    copy->trainSeed = view.train_seed;
    copy->tableQuantizerBits = view.table_quantizer_bits;
    copy->datasetCreate = view.dataset_create;
    copy->datasetDestroy = view.dataset_destroy;
    copy->datasetInvocations = view.dataset_invocations;
    copy->datasetInput = view.dataset_input;
    copy->targetFunction = view.target_function;
    copy->finalSize = view.final_size;
    copy->recomposeFn = view.recompose;
    copy->targetOps = opCountsFrom(view.target_ops);
    copy->otherOpsPerInvocation =
        opCountsFrom(view.other_ops_per_invocation);

    const WorkloadTable *stable = copy.get();
    workloadTables().push_back(std::move(copy));
    // Duplicate names (against built-ins and other plugins) die in
    // the registry with both provenances named.
    axbench::WorkloadRegistry::global().add(
        stable->name, {provenance, MITHRA_PLUGIN_ABI_VERSION},
        [stable] { return std::make_unique<PluginWorkload>(*stable); });
}

std::vector<std::string>
backendNames()
{
    std::vector<std::string> names;
    for (const auto &table : backendTables())
        names.push_back(table->name);
    return names;
}

namespace
{

/** Registration-callback state for the plugin currently loading. */
struct HostState
{
    std::string provenance;
    RegistrationLog *log = nullptr;
};

HostState &
currentHost()
{
    static HostState state;
    return state;
}

extern "C" int
mithraHostRegisterWorkload(void *hostCtx, const mithra_workload_v1 *w)
{
    auto *state = static_cast<HostState *>(hostCtx);
    registerWorkloadTable(w, state->provenance);
    if (state->log && w && w->name)
        state->log->workloads.emplace_back(w->name);
    return 0;
}

extern "C" int
mithraHostRegisterBackend(void *hostCtx, const mithra_backend_v1 *b)
{
    auto *state = static_cast<HostState *>(hostCtx);
    registerBackendTable(b, state->provenance);
    if (state->log && b && b->name)
        state->log->backends.emplace_back(b->name);
    return 0;
}

} // namespace

const mithra_host_v1 &
hostTable(const std::string &provenance, RegistrationLog &log)
{
    HostState &state = currentHost();
    state.provenance = provenance;
    state.log = &log;
    static mithra_host_v1 table = [] {
        mithra_host_v1 t{};
        t.abi_version = MITHRA_PLUGIN_ABI_VERSION;
        t.struct_size = sizeof(mithra_host_v1);
        t.host_ctx = &currentHost();
        t.register_workload = &mithraHostRegisterWorkload;
        t.register_backend = &mithraHostRegisterBackend;
        return t;
    }();
    return table;
}

} // namespace mithra::plugin
