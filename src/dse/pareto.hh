/**
 * @file
 * Two-objective Pareto arithmetic for the design-space explorer.
 *
 * Design points are compared on (cost, benefit) with cost minimized
 * (total table bytes) and benefit maximized (accelerator invocation
 * rate). The front is the set of feasible points no other feasible
 * point dominates; points with identical (cost, benefit) coordinates
 * collapse to the lowest-index representative so the front is a
 * geometric object, not an artifact of enumeration order. All
 * comparisons are exact double comparisons over deterministic
 * evaluation results, so the front is bitwise reproducible.
 */

#pragma once

#include <cstddef>
#include <vector>

namespace mithra::dse
{

/** One candidate projected onto the two front objectives. */
struct ParetoPoint
{
    /** Lower is better (total table bytes). */
    double cost = 0.0;
    /** Higher is better (invocation rate). */
    double benefit = 0.0;
    /** Points failing the quality contract never join the front. */
    bool feasible = true;
    /** Candidate index this point projects (tie-break identity). */
    std::size_t index = 0;
};

/**
 * True when `a` dominates `b`: no worse on both objectives and
 * strictly better on at least one. `margin` shifts the benefit axis —
 * a pruning test with margin m asks whether `a` would dominate `b`
 * even if b's benefit were m higher than claimed.
 */
bool dominates(const ParetoPoint &a, const ParetoPoint &b,
               double margin = 0.0);

/**
 * Indices (into `points`) of the non-dominated feasible points,
 * sorted by ascending cost, then descending benefit. Duplicate
 * (cost, benefit) pairs keep only the lowest `index` representative.
 * Infeasible points are ignored entirely. Empty when no point is
 * feasible.
 */
std::vector<std::size_t>
paretoFront(const std::vector<ParetoPoint> &points);

/**
 * Hypervolume dominated by `front` relative to the reference corner
 * (refCost, refBenefit): the staircase area between the front and the
 * reference, in (bytes x rate) units. Points outside the reference box
 * contribute only their clipped part. `front` holds the points
 * themselves (typically the paretoFront selection); passing dominated
 * points is harmless — they add no area.
 */
double hypervolume(const std::vector<ParetoPoint> &front, double refCost,
                   double refBenefit = 0.0);

} // namespace mithra::dse
