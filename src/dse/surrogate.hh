/**
 * @file
 * Closed-form ridge-regression surrogate for the design-space
 * explorer.
 *
 * The explorer needs cheap predictions of expensive evaluation
 * outcomes (invocation rate, quality-met probability) from design
 * coordinates. A ridge fit over a handful of hand-picked basis
 * features is enough for the smooth capacity-vs-benefit landscapes the
 * table designs trace, and — unlike an iterative trainer — it has a
 * closed form: the normal equations are assembled and solved serially
 * in double precision (Gaussian elimination with partial pivoting), so
 * the fitted weights, every prediction, and therefore the pruning
 * decisions downstream are bitwise identical at any MITHRA_THREADS.
 *
 * Besides point predictions the fit carries honest uncertainty: the
 * residual standard error corrected for the effective degrees of
 * freedom (n minus the trace of the hat matrix — a near-interpolating
 * fit has tiny training residuals precisely because it spent its
 * degrees of freedom, and the correction keeps it from claiming
 * certainty it does not have), and the per-query leverage scale
 * sqrt(1 + x' (X'X + lambda I)^-1 x) that widens intervals away from
 * the training data. The explorer prunes only when a measured point
 * wins by more than the resulting prediction interval.
 */

#pragma once

#include <cstddef>
#include <vector>

namespace mithra::dse
{

/** Least-squares fit of targets ~ features with an L2 penalty. */
class RidgeSurrogate
{
  public:
    RidgeSurrogate() = default;

    /**
     * Fit on `rows` feature vectors (all the same width, first entry
     * conventionally the constant 1) against `targets`. `lambda`
     * regularizes every weight; the default is small enough to leave
     * well-conditioned fits untouched while keeping near-collinear
     * feature sets solvable.
     */
    static RidgeSurrogate
    fit(const std::vector<std::vector<double>> &rows,
        const std::vector<double> &targets, double lambda = 1e-6);

    /** Predicted target for one feature vector. */
    double predict(const std::vector<double> &features) const;

    /** Largest |prediction - target| over the training rows. */
    double maxResidual() const { return worstResidual; }

    /**
     * Residual standard error sqrt(SSE / max(1, n - trace(H))):
     * training error per honest degree of freedom. Zero only when the
     * data is genuinely noiseless, not merely interpolated.
     */
    double standardError() const { return stdErr; }

    /**
     * Prediction-interval scale sqrt(1 + x' (X'X + lambda I)^-1 x)
     * at one query point: ~1 amid the training data, growing as the
     * query extrapolates. Multiply by standardError() (and a sigma
     * multiplier) for the interval half-width.
     */
    double leverageScale(const std::vector<double> &features) const;

    /** Fitted weights, one per feature column. */
    const std::vector<double> &weights() const { return coef; }

  private:
    std::vector<double> coef;
    /** The regularized gram matrix X'X + lambda I, row-major. */
    std::vector<std::vector<double>> gram;
    double worstResidual = 0.0;
    double stdErr = 0.0;
};

} // namespace mithra::dse
