#include "dse/surrogate.hh"

#include <cmath>
#include <utility>

#include "common/contracts.hh"

namespace mithra::dse
{

namespace
{

/**
 * Solve the dense symmetric system `a`x = `b` in place via Gaussian
 * elimination with partial pivoting. Strictly serial: the surrogate's
 * determinism contract rests on this running the same instruction
 * stream regardless of the thread pool.
 */
std::vector<double>
solveDense(std::vector<std::vector<double>> a, std::vector<double> b)
{
    const std::size_t n = a.size();
    for (std::size_t col = 0; col < n; ++col) {
        std::size_t pivot = col;
        for (std::size_t row = col + 1; row < n; ++row) {
            if (std::fabs(a[row][col]) > std::fabs(a[pivot][col]))
                pivot = row;
        }
        MITHRA_ASSERT(a[pivot][col] != 0.0,
                      "singular surrogate system at column ", col);
        std::swap(a[col], a[pivot]);
        std::swap(b[col], b[pivot]);
        for (std::size_t row = col + 1; row < n; ++row) {
            const double factor = a[row][col] / a[col][col];
            if (factor == 0.0)
                continue;
            for (std::size_t k = col; k < n; ++k)
                a[row][k] -= factor * a[col][k];
            b[row] -= factor * b[col];
        }
    }
    std::vector<double> x(n, 0.0);
    for (std::size_t rev = n; rev-- > 0;) {
        double acc = b[rev];
        for (std::size_t k = rev + 1; k < n; ++k)
            acc -= a[rev][k] * x[k];
        x[rev] = acc / a[rev][rev];
    }
    return x;
}

} // namespace

RidgeSurrogate
RidgeSurrogate::fit(const std::vector<std::vector<double>> &rows,
                    const std::vector<double> &targets, double lambda)
{
    MITHRA_EXPECTS(!rows.empty(), "surrogate fit needs training rows");
    MITHRA_EXPECTS(rows.size() == targets.size(),
                   "surrogate rows/targets mismatch: ", rows.size(),
                   " vs ", targets.size());
    MITHRA_EXPECTS(lambda >= 0.0, "negative ridge penalty ", lambda);
    const std::size_t width = rows.front().size();
    MITHRA_EXPECTS(width > 0, "surrogate features must be non-empty");
    for (const auto &row : rows) {
        MITHRA_EXPECTS(row.size() == width,
                       "ragged surrogate feature rows: ", row.size(),
                       " vs ", width);
    }

    // Normal equations (X^T X + lambda I) w = X^T y, accumulated in
    // row order.
    std::vector<std::vector<double>> gram(
        width, std::vector<double>(width, 0.0));
    std::vector<double> moment(width, 0.0);
    for (std::size_t r = 0; r < rows.size(); ++r) {
        const auto &row = rows[r];
        for (std::size_t i = 0; i < width; ++i) {
            for (std::size_t j = 0; j < width; ++j)
                gram[i][j] += row[i] * row[j];
            moment[i] += row[i] * targets[r];
        }
    }
    for (std::size_t i = 0; i < width; ++i)
        gram[i][i] += lambda;

    RidgeSurrogate model;
    model.gram = gram;
    model.coef = solveDense(std::move(gram), std::move(moment));

    // Honest uncertainty: sum of squared residuals over the effective
    // degrees of freedom n - trace(H), where the hat-matrix diagonal
    // h_r = x_r' (X'X + lambda I)^-1 x_r is each row's leverage. A fit
    // that (near-)interpolates has trace(H) ~ n and tiny residuals;
    // the correction makes its standard error reflect that the small
    // SSE was bought with degrees of freedom, not earned from data.
    double sse = 0.0, hatTrace = 0.0;
    for (std::size_t r = 0; r < rows.size(); ++r) {
        const double err = model.predict(rows[r]) - targets[r];
        sse += err * err;
        if (std::fabs(err) > model.worstResidual)
            model.worstResidual = std::fabs(err);
        const std::vector<double> solved =
            solveDense(model.gram, rows[r]);
        double leverage = 0.0;
        for (std::size_t i = 0; i < width; ++i)
            leverage += rows[r][i] * solved[i];
        hatTrace += leverage;
    }
    const double effectiveDof = std::max(
        1.0, static_cast<double>(rows.size()) - hatTrace);
    model.stdErr = std::sqrt(sse / effectiveDof);
    return model;
}

double
RidgeSurrogate::leverageScale(const std::vector<double> &features) const
{
    MITHRA_EXPECTS(features.size() == coef.size(),
                   "surrogate feature width ", features.size(),
                   " does not match fit width ", coef.size());
    const std::vector<double> solved = solveDense(gram, features);
    double leverage = 0.0;
    for (std::size_t i = 0; i < features.size(); ++i)
        leverage += features[i] * solved[i];
    // The gram matrix is positive definite, so the quadratic form is
    // non-negative up to rounding; clip before the square root.
    return std::sqrt(1.0 + std::max(0.0, leverage));
}

double
RidgeSurrogate::predict(const std::vector<double> &features) const
{
    MITHRA_EXPECTS(features.size() == coef.size(),
                   "surrogate feature width ", features.size(),
                   " does not match fit width ", coef.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < coef.size(); ++i)
        acc += coef[i] * features[i];
    return acc;
}

} // namespace mithra::dse
