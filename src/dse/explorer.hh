/**
 * @file
 * Surrogate-guided design-space exploration (DESIGN.md §15).
 *
 * Exhaustively sweeping the table design space — numTables x
 * tableBytes x quantizerBits — costs one full training + simulation
 * pass per cell. The explorer spends that budget only where it
 * matters:
 *
 *   1. enumerate every candidate over the requested axes;
 *   2. exactly evaluate a small deterministic seed subset;
 *   3. fit closed-form ridge surrogates for the two front objectives
 *      (invocation rate, quality-met probability) on every completed
 *      record;
 *   4. prune candidates a measured point dominates by more than the
 *      surrogate's per-candidate prediction interval minus the
 *      configured tolerated-loss margin, and candidates predicted to
 *      miss the quality contract beyond the equivalent guard;
 *   5. exactly evaluate the most promising survivors (fanned out
 *      across the thread pool by ExperimentRunner::runMany), refit on
 *      the enlarged record set, and repeat from step 4 until no
 *      candidate survives pruning; the measured points' Pareto front
 *      is the result.
 *
 * Determinism contract: enumeration order, seed selection, the
 * surrogate fit and every pruning comparison are pure serial double
 * arithmetic over deterministic evaluation records, so the selected
 * set, the front and the emitted JSON are bitwise identical at any
 * MITHRA_THREADS.
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "dse/pareto.hh"
#include "telemetry/json.hh"

namespace mithra::dse
{

/** The candidate axes; enumerated counts-outer, bits-inner. */
struct DseAxes
{
    std::vector<std::size_t> tableCounts{1, 2, 4, 8};
    std::vector<std::size_t> tableBytes{128, 512, 2048, 4096};
    /** Quantizer widths; 0 = the benchmark's own hint. */
    std::vector<unsigned> quantizerBits{0};

    std::size_t candidateCount() const
    {
        return tableCounts.size() * tableBytes.size()
               * quantizerBits.size();
    }
};

/** Explorer knobs; fromEnv() reads the MITHRA_DSE_* variables. */
struct DseOptions
{
    /**
     * Tolerated invocation-rate loss: a candidate is pruned when a
     * cheaper measured point beats its prediction plus the fit's
     * worst training residual minus this margin. 0 = fully
     * conservative (never lose a true front point while the residual
     * bound holds); larger = fewer exact evals, at the risk of losing
     * front points whose advantage is below the margin.
     */
    double margin = 0.02;
    /**
     * Tolerated quality-met slack: a candidate is pruned as
     * infeasible when its predicted quality-met probability plus the
     * fit's worst residual minus this margin misses the contract.
     */
    double qualityMargin = 0.05;
    /** Exact evaluations spent seeding the surrogate fit. */
    std::size_t seedEvals = 12;
    /** Evaluate everything (reference mode; no surrogate, no prune). */
    bool exhaustive = false;

    static DseOptions fromEnv();
};

/** What the explorer decided to do with one candidate. */
enum class CandidateState
{
    /** Exactly evaluated to seed the surrogate fit. */
    Seed,
    /** Survived pruning; exactly evaluated. */
    Survivor,
    /** A measured point dominates it beyond the guard band. */
    PrunedDominated,
    /** Predicted to miss the quality contract beyond the guard band. */
    PrunedInfeasible,
};

const char *candidateStateName(CandidateState state);

/** One enumerated design point and everything decided about it. */
struct DseCandidate
{
    core::RunOptions options{};
    /** Front cost objective: total uncompressed table bytes. */
    double costBytes = 0.0;
    CandidateState state = CandidateState::Survivor;
    /** Surrogate view; meaningful for non-seed candidates. */
    double predictedRate = 0.0;
    double predictedQuality = 0.0;
    /** Exact record; valid when `measured`. */
    bool measured = false;
    core::ExperimentRecord record{};
};

/** Everything one explore() call produced. */
struct DseResult
{
    std::string benchmark;
    core::QualitySpec spec{};
    DseOptions options{};
    DseAxes axes{};
    std::vector<DseCandidate> candidates;
    /** Candidate indices on the measured front, cost-ascending. */
    std::vector<std::size_t> front;
    /** Hypervolume of the measured front (see referenceCost()). */
    double hypervolume = 0.0;
    /** Worst training residuals of the final surrogate fits. */
    double rateResidual = 0.0;
    double qualityResidual = 0.0;
    /** Refinement rounds spent after the seed batch. */
    std::size_t rounds = 0;
    /** Exact evaluations the explorer asked for (seeds + survivors). */
    std::size_t exactEvalsSelected = 0;
    /** Of those, how many were not already in the result cache. */
    std::size_t exactEvalsExecuted = 0;
    /** 100 * (1 - selected / candidates). */
    double savedPct = 0.0;
    /** candidates / selected — the exact-evaluation reduction. */
    double sweepSpeedup = 1.0;

    /** Hypervolume reference corner: 9/8 of the dearest candidate. */
    double referenceCost() const;

    /** The mithra-pareto-front v1 document (DESIGN.md §15). */
    telemetry::Json toJson() const;
};

/**
 * Evaluation backend the explorer drives. The production backend
 * wraps ExperimentRunner; tests substitute synthetic landscapes.
 */
class EvalBackend
{
  public:
    virtual ~EvalBackend() = default;

    /** True when this candidate's exact result is already memoized. */
    virtual bool isCached(const core::RunOptions &options) const = 0;

    /** Exactly evaluate a batch, one record per entry, in order. */
    virtual std::vector<core::ExperimentRecord>
    evaluate(const std::vector<core::RunOptions> &batch) = 0;
};

/** The surrogate-guided explorer; stateless between explore() calls. */
class Explorer
{
  public:
    explicit Explorer(const DseOptions &options = DseOptions::fromEnv())
        : opts(options)
    {
    }

    const DseOptions &options() const { return opts; }

    /** Explore one benchmark's design space through a runner. */
    DseResult explore(core::ExperimentRunner &runner,
                      const std::string &benchmark,
                      const core::QualitySpec &spec,
                      const DseAxes &axes = DseAxes{}) const;

    /** Explore through an arbitrary backend (tests). */
    DseResult exploreWith(EvalBackend &backend,
                          const std::string &benchmark,
                          const core::QualitySpec &spec,
                          const DseAxes &axes) const;

  private:
    DseOptions opts;
};

} // namespace mithra::dse
