#include "dse/explorer.hh"

#include <algorithm>
#include <cmath>

#include "common/contracts.hh"
#include "common/env_registry.hh"
#include "dse/surrogate.hh"
#include "telemetry/run_report.hh"
#include "telemetry/telemetry.hh"

namespace mithra::dse
{

namespace
{

/**
 * Basis features of one design point. Log-scale geometry terms track
 * the capacity landscape (rate rises with total bytes and saturates),
 * the interaction term separates many-small from few-large layouts,
 * and the quantizer terms carry the bits axis. The bits x geometry
 * cross terms matter most in practice: both objectives are near-flat
 * within a quantizer width and move sharply where width meets
 * capacity (wide patterns in big tables lift the rate until the
 * quality contract collapses). The hint indicator keeps bits=0
 * ("benchmark default") from reading as "zero-width".
 */
std::vector<double>
designFeatures(const core::RunOptions &options)
{
    const double lt =
        std::log2(static_cast<double>(options.geometry.numTables));
    const double lb =
        std::log2(static_cast<double>(options.geometry.tableBytes));
    const double cap = lt + lb;
    const double bits = static_cast<double>(options.quantizerBits);
    const double hint = options.quantizerBits == 0 ? 1.0 : 0.0;
    return {1.0,
            lt,
            lb,
            lt * lb,
            cap * cap,
            bits,
            bits * bits,
            bits * bits * bits,
            bits * lt,
            bits * lb,
            bits * bits * cap,
            hint};
}

/**
 * Both objectives are probabilities, and both landscapes are
 * plateaus joined by saturating ramps — exactly the shape a linear
 * model fits badly in probability space and well in log-odds space.
 * The surrogates therefore regress logit(p); predictions and interval
 * bounds map back through the sigmoid, which also makes the intervals
 * naturally asymmetric (tight against the 0/1 rails, wide mid-range).
 *
 * The clip bounds the plateau targets at ~±4.6 log-odds. Every
 * pruning decision compares against thresholds well inside (0.01,
 * 0.99) — the quality contract and the dominance margins — so
 * saturated observations beyond the clip carry no decision-relevant
 * information; mapping them further out would only inflate the fitted
 * dynamic range and with it the residual error of every interval.
 */
constexpr double kLogitClip = 1e-2;

double
logit(double p)
{
    const double clipped =
        std::min(1.0 - kLogitClip, std::max(kLogitClip, p));
    return std::log(clipped / (1.0 - clipped));
}

double
sigmoid(double z)
{
    return 1.0 / (1.0 + std::exp(-z));
}

/**
 * Prediction-interval half-width (in log-odds) at one query point:
 * one sigma of the fit's honest standard error, scaled by the query's
 * leverage (wider away from the training data). One sigma per round
 * is enough because no pruning decision is final until the loop
 * exits: every refinement round refits on fresh measurements and
 * re-classifies every unmeasured candidate — including previously
 * pruned ones — so a candidate is only lost if successively better
 * fits all agree it cannot pay its way within the margins. The
 * floor keeps a fit that happens to thread its training points exactly
 * from claiming zero uncertainty — the exact evaluations themselves
 * carry finite-trial noise (the quality-met probability is a
 * proportion over a handful of validation datasets) that the
 * regression cannot see.
 */
double
intervalWidth(const RidgeSurrogate &fit,
              const std::vector<double> &features)
{
    constexpr double kSigma = 1.0;
    constexpr double kNoiseFloor = 0.1;
    return kSigma * std::max(fit.standardError(), kNoiseFloor)
           * fit.leverageScale(features);
}

/** Measured quality-met probability of one record. */
double
qualityOf(const core::ExperimentRecord &record)
{
    if (record.eval.trials == 0)
        return 0.0;
    return static_cast<double>(record.eval.successes)
           / static_cast<double>(record.eval.trials);
}

/**
 * Deterministic seed picks: both ends of the enumeration plus an even
 * stride between them. Pure integer arithmetic — the same axes and
 * budget always select the same candidates.
 */
std::vector<std::size_t>
seedIndices(std::size_t total, std::size_t budget)
{
    const std::size_t want = std::min(budget, total);
    std::vector<std::size_t> picks;
    if (want <= 1 || total == 1) {
        picks.push_back(0);
        return picks;
    }
    for (std::size_t k = 0; k < want; ++k)
        picks.push_back(k * (total - 1) / (want - 1));
    picks.erase(std::unique(picks.begin(), picks.end()), picks.end());
    return picks;
}

/** The production backend: batch evaluation through the runner. */
class RunnerBackend : public EvalBackend
{
  public:
    RunnerBackend(core::ExperimentRunner &r, std::string bench,
                  const core::QualitySpec &s)
        : runner(r), benchmark(std::move(bench)), spec(s)
    {
    }

    bool isCached(const core::RunOptions &options) const override
    {
        return runner.isCached(benchmark, spec, core::Design::Table,
                               options);
    }

    std::vector<core::ExperimentRecord>
    evaluate(const std::vector<core::RunOptions> &batch) override
    {
        return runner.runMany(benchmark, spec, core::Design::Table,
                              batch);
    }

  private:
    core::ExperimentRunner &runner;
    std::string benchmark;
    core::QualitySpec spec;
};

} // namespace

DseOptions
DseOptions::fromEnv()
{
    DseOptions options;
    options.margin = env::realIn("MITHRA_DSE_MARGIN", 0.0, 1.0,
                                 options.margin, false, true);
    options.qualityMargin =
        env::realIn("MITHRA_DSE_QUALITY_MARGIN", 0.0, 1.0,
                    options.qualityMargin, false, true);
    options.seedEvals = env::countIn("MITHRA_DSE_SEED_EVALS", 1, 4096,
                                     options.seedEvals);
    options.exhaustive = env::flag("MITHRA_DSE_EXHAUSTIVE");
    return options;
}

const char *
candidateStateName(CandidateState state)
{
    switch (state) {
      case CandidateState::Seed: return "seed";
      case CandidateState::Survivor: return "survivor";
      case CandidateState::PrunedDominated: return "pruned-dominated";
      case CandidateState::PrunedInfeasible: return "pruned-infeasible";
    }
    panic("unknown candidate state");
}

double
DseResult::referenceCost() const
{
    double dearest = 0.0;
    for (const DseCandidate &candidate : candidates)
        dearest = std::max(dearest, candidate.costBytes);
    return dearest * 1.125;
}

DseResult
Explorer::explore(core::ExperimentRunner &runner,
                  const std::string &benchmark,
                  const core::QualitySpec &spec,
                  const DseAxes &axes) const
{
    RunnerBackend backend(runner, benchmark, spec);
    return exploreWith(backend, benchmark, spec, axes);
}

DseResult
Explorer::exploreWith(EvalBackend &backend, const std::string &benchmark,
                      const core::QualitySpec &spec,
                      const DseAxes &axes) const
{
    MITHRA_SPAN("dse.explore");
    MITHRA_EXPECTS(axes.candidateCount() > 0,
                   "empty design space: every axis needs values");

    DseResult result;
    result.benchmark = benchmark;
    result.spec = spec;
    result.options = opts;
    result.axes = axes;

    for (const std::size_t count : axes.tableCounts) {
        for (const std::size_t bytes : axes.tableBytes) {
            for (const unsigned bits : axes.quantizerBits) {
                DseCandidate candidate;
                candidate.options.geometry.numTables = count;
                candidate.options.geometry.tableBytes = bytes;
                candidate.options.quantizerBits = bits;
                candidate.options.skipCalibration = true;
                candidate.costBytes = static_cast<double>(count * bytes);
                result.candidates.push_back(std::move(candidate));
            }
        }
    }
    const std::size_t total = result.candidates.size();
    MITHRA_COUNT("dse.candidates", total);

    // Batch-evaluate the given candidates, tallying how many are cold.
    auto evaluateBatch = [&](const std::vector<std::size_t> &picks) {
        if (picks.empty())
            return;
        std::vector<core::RunOptions> batch;
        batch.reserve(picks.size());
        for (const std::size_t i : picks) {
            if (!backend.isCached(result.candidates[i].options))
                ++result.exactEvalsExecuted;
            batch.push_back(result.candidates[i].options);
        }
        const std::vector<core::ExperimentRecord> records =
            backend.evaluate(batch);
        MITHRA_ASSERT(records.size() == picks.size(),
                      "backend returned ", records.size(),
                      " records for ", picks.size(), " candidates");
        for (std::size_t at = 0; at < picks.size(); ++at) {
            result.candidates[picks[at]].record = records[at];
            result.candidates[picks[at]].measured = true;
        }
    };

    if (opts.exhaustive) {
        std::vector<std::size_t> everything(total);
        for (std::size_t i = 0; i < total; ++i)
            everything[i] = i;
        evaluateBatch(everything);
    } else {
        const std::vector<std::size_t> seeds =
            seedIndices(total, opts.seedEvals);
        for (const std::size_t i : seeds)
            result.candidates[i].state = CandidateState::Seed;
        evaluateBatch(seeds);

        // Refinement loop: fit both objective surrogates on
        // everything measured so far, classify the unmeasured
        // candidates with per-candidate prediction intervals, exactly
        // evaluate the most promising survivors, and repeat with the
        // tighter fit until no candidate survives pruning. Every
        // pruning decision stands on the final (best-informed) fit.
        for (;;) {
            std::vector<std::vector<double>> rows;
            std::vector<double> rates, qualities;
            std::vector<ParetoPoint> measured;
            for (std::size_t i = 0; i < total; ++i) {
                const DseCandidate &candidate = result.candidates[i];
                if (!candidate.measured)
                    continue;
                rows.push_back(designFeatures(candidate.options));
                rates.push_back(
                    logit(candidate.record.eval.invocationRate));
                qualities.push_back(logit(qualityOf(candidate.record)));
                measured.push_back(
                    {candidate.costBytes,
                     candidate.record.eval.invocationRate,
                     qualityOf(candidate.record) >= spec.successRate,
                     i});
            }
            const RidgeSurrogate rateFit =
                RidgeSurrogate::fit(rows, rates);
            const RidgeSurrogate qualityFit =
                RidgeSurrogate::fit(rows, qualities);
            result.rateResidual = rateFit.maxResidual();
            result.qualityResidual = qualityFit.maxResidual();

            // A candidate is pruned only when a cheaper measured
            // point beats its prediction by more than the prediction
            // interval minus the tolerated-loss margin: while the
            // interval holds, a dominance-pruned candidate's true
            // rate exceeds the best cheaper measured rate by at most
            // `margin`, and an infeasibility-pruned candidate misses
            // the quality contract by all but at most
            // `qualityMargin`. margin = 0 is fully conservative;
            // larger margins trade marginal front points for fewer
            // exact evaluations (in particular, near-flat plateaus
            // collapse onto one measured point).
            std::vector<std::pair<double, std::size_t>> ranked;
            for (std::size_t i = 0; i < total; ++i) {
                DseCandidate &candidate = result.candidates[i];
                const std::vector<double> features =
                    designFeatures(candidate.options);
                const double zRate = rateFit.predict(features);
                const double zQuality = qualityFit.predict(features);
                candidate.predictedRate = sigmoid(zRate);
                candidate.predictedQuality = sigmoid(zQuality);
                if (candidate.measured)
                    continue;

                const double rateUpper = sigmoid(
                    zRate + intervalWidth(rateFit, features));
                const double qualityUpper = sigmoid(
                    zQuality + intervalWidth(qualityFit, features));
                if (qualityUpper
                    < spec.successRate + opts.qualityMargin) {
                    candidate.state = CandidateState::PrunedInfeasible;
                    continue;
                }
                const ParetoPoint claimed{candidate.costBytes,
                                          rateUpper, true, i};
                double bestCheaper = 0.0;
                bool beaten = false;
                for (const ParetoPoint &point : measured) {
                    if (!point.feasible)
                        continue;
                    if (point.cost <= claimed.cost)
                        bestCheaper =
                            std::max(bestCheaper, point.benefit);
                    beaten = beaten
                             || dominates(point, claimed, -opts.margin);
                }
                if (beaten) {
                    candidate.state = CandidateState::PrunedDominated;
                    continue;
                }
                candidate.state = CandidateState::Survivor;
                // Evaluate by expected improvement: the optimistic
                // rate gain over the incumbent, discounted by the
                // predicted odds of actually meeting the quality
                // contract. Quality-suspect candidates sink to the
                // back of the queue, where a later round's tighter
                // fit often prunes them before they cost an exact
                // evaluation.
                const double feasibleOdds = std::min(
                    1.0, candidate.predictedQuality
                             / std::max(spec.successRate, 1e-9));
                ranked.emplace_back(
                    (rateUpper - bestCheaper) * feasibleOdds, i);
            }
            if (ranked.empty())
                break;
            std::sort(ranked.begin(), ranked.end(),
                      [](const auto &a, const auto &b) {
                          if (a.first != b.first)
                              return a.first > b.first;
                          return a.second < b.second;
                      });
            // Small rounds: right after seeding the fit is at its
            // least trustworthy (every upper bound saturates), so
            // committing a whole seed-sized batch to it wastes evals
            // on noise. A few evaluations per round keep the blind
            // spend bounded while each refit sharpens the next pick.
            const std::size_t roundBudget =
                std::max<std::size_t>(2, opts.seedEvals / 3);
            std::vector<std::size_t> round;
            for (std::size_t at = 0;
                 at < ranked.size() && at < roundBudget; ++at)
                round.push_back(ranked[at].second);
            std::sort(round.begin(), round.end());
            evaluateBatch(round);
            ++result.rounds;
        }
    }

    for (const DseCandidate &candidate : result.candidates) {
        if (candidate.state == CandidateState::Seed
            || candidate.state == CandidateState::Survivor)
            ++result.exactEvalsSelected;
    }
    MITHRA_COUNT("dse.exact_evals_selected", result.exactEvalsSelected);
    MITHRA_COUNT("dse.exact_evals_executed", result.exactEvalsExecuted);
    MITHRA_COUNT("dse.pruned", total - result.exactEvalsSelected);
    result.savedPct =
        100.0
        * (1.0
           - static_cast<double>(result.exactEvalsSelected)
                 / static_cast<double>(total));
    result.sweepSpeedup =
        static_cast<double>(total)
        / static_cast<double>(result.exactEvalsSelected);

    // The front of everything measured, on measured feasibility.
    std::vector<ParetoPoint> points;
    for (std::size_t i = 0; i < total; ++i) {
        const DseCandidate &candidate = result.candidates[i];
        if (!candidate.measured)
            continue;
        points.push_back({candidate.costBytes,
                          candidate.record.eval.invocationRate,
                          qualityOf(candidate.record)
                              >= spec.successRate,
                          i});
    }
    std::vector<ParetoPoint> frontPoints;
    for (const std::size_t at : paretoFront(points)) {
        result.front.push_back(points[at].index);
        frontPoints.push_back(points[at]);
    }
    result.hypervolume =
        hypervolume(frontPoints, result.referenceCost(), 0.0);
    return result;
}

telemetry::Json
DseResult::toJson() const
{
    using telemetry::Json;

    Json doc;
    doc["schema"] = Json(telemetry::paretoFrontSchemaName);
    doc["schemaVersion"] = Json(telemetry::paretoFrontSchemaVersion);
    doc["gitDescribe"] = Json(telemetry::gitDescribe());
    doc["benchmark"] = Json(benchmark);

    Json::Object specObj;
    specObj.emplace("maxQualityLossPct", Json(spec.maxQualityLossPct));
    specObj.emplace("confidence", Json(spec.confidence));
    specObj.emplace("successRate", Json(spec.successRate));
    doc["spec"] = Json(std::move(specObj));

    auto sizeArray = [](const std::vector<std::size_t> &values) {
        Json::Array out;
        for (const std::size_t v : values)
            out.emplace_back(v);
        return Json(std::move(out));
    };
    Json::Object axesObj;
    axesObj.emplace("tableCounts", sizeArray(axes.tableCounts));
    axesObj.emplace("tableBytes", sizeArray(axes.tableBytes));
    Json::Array bitsArray;
    for (const unsigned bits : axes.quantizerBits)
        bitsArray.emplace_back(static_cast<std::int64_t>(bits));
    axesObj.emplace("quantizerBits", Json(std::move(bitsArray)));
    doc["axes"] = Json(std::move(axesObj));

    Json::Object optionsObj;
    optionsObj.emplace("margin", Json(options.margin));
    optionsObj.emplace("qualityMargin", Json(options.qualityMargin));
    optionsObj.emplace("seedEvals", Json(options.seedEvals));
    optionsObj.emplace("exhaustive", Json(options.exhaustive));
    doc["options"] = Json(std::move(optionsObj));

    Json::Object summary;
    summary.emplace("candidates", Json(candidates.size()));
    summary.emplace("exactEvalsSelected", Json(exactEvalsSelected));
    summary.emplace("exactEvalsExecuted", Json(exactEvalsExecuted));
    summary.emplace("savedPct", Json(savedPct));
    summary.emplace("sweepSpeedup", Json(sweepSpeedup));
    summary.emplace("rateResidual", Json(rateResidual));
    summary.emplace("qualityResidual", Json(qualityResidual));
    summary.emplace("rounds", Json(rounds));
    summary.emplace("hypervolume", Json(hypervolume));
    summary.emplace("referenceCost", Json(referenceCost()));
    doc["summary"] = Json(std::move(summary));

    auto designObj = [](const DseCandidate &candidate) {
        Json::Object out;
        out.emplace("numTables",
                    Json(candidate.options.geometry.numTables));
        out.emplace("tableBytes",
                    Json(candidate.options.geometry.tableBytes));
        out.emplace("quantizerBits",
                    Json(static_cast<std::int64_t>(
                        candidate.options.quantizerBits)));
        out.emplace("costBytes", Json(candidate.costBytes));
        return out;
    };

    Json::Array frontArray;
    for (const std::size_t i : front) {
        const DseCandidate &candidate = candidates[i];
        Json::Object entry = designObj(candidate);
        entry.emplace("invocationRate",
                      Json(candidate.record.eval.invocationRate));
        entry.emplace("qualityMet",
                      Json(candidate.record.eval.trials == 0
                               ? 0.0
                               : static_cast<double>(
                                     candidate.record.eval.successes)
                                     / static_cast<double>(
                                         candidate.record.eval.trials)));
        entry.emplace("successes",
                      Json(candidate.record.eval.successes));
        entry.emplace("trials", Json(candidate.record.eval.trials));
        entry.emplace("speedup", Json(candidate.record.eval.speedup));
        entry.emplace("energyReduction",
                      Json(candidate.record.eval.energyReduction));
        entry.emplace("compressedBytes",
                      Json(candidate.record.compressedBytes));
        entry.emplace("threshold", Json(candidate.record.threshold));
        frontArray.emplace_back(std::move(entry));
    }
    doc["front"] = Json(std::move(frontArray));

    Json::Array candidateArray;
    for (const DseCandidate &candidate : candidates) {
        Json::Object entry = designObj(candidate);
        entry.emplace("state", Json(candidateStateName(candidate.state)));
        entry.emplace("measured", Json(candidate.measured));
        entry.emplace("predictedRate", Json(candidate.predictedRate));
        entry.emplace("predictedQuality",
                      Json(candidate.predictedQuality));
        if (candidate.measured) {
            entry.emplace("invocationRate",
                          Json(candidate.record.eval.invocationRate));
            entry.emplace(
                "qualityMet",
                Json(candidate.record.eval.trials == 0
                         ? 0.0
                         : static_cast<double>(
                               candidate.record.eval.successes)
                               / static_cast<double>(
                                   candidate.record.eval.trials)));
        }
        candidateArray.emplace_back(std::move(entry));
    }
    doc["candidates"] = Json(std::move(candidateArray));
    return doc;
}

} // namespace mithra::dse
