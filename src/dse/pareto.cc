#include "dse/pareto.hh"

#include <algorithm>

namespace mithra::dse
{

bool
dominates(const ParetoPoint &a, const ParetoPoint &b, double margin)
{
    const double claimed = b.benefit + margin;
    if (a.cost > b.cost || a.benefit < claimed)
        return false;
    return a.cost < b.cost || a.benefit > claimed;
}

std::vector<std::size_t>
paretoFront(const std::vector<ParetoPoint> &points)
{
    std::vector<std::size_t> order;
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (points[i].feasible)
            order.push_back(i);
    }
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (points[a].cost != points[b].cost)
                      return points[a].cost < points[b].cost;
                  if (points[a].benefit != points[b].benefit)
                      return points[a].benefit > points[b].benefit;
                  return points[a].index < points[b].index;
              });

    // Cost-ascending sweep: a point joins the front only with strictly
    // more benefit than everything at most as expensive. The strict
    // comparison both rejects dominated points and collapses duplicate
    // (cost, benefit) pairs onto their first (lowest-index) occurrence.
    std::vector<std::size_t> front;
    double best = 0.0;
    for (const std::size_t i : order) {
        if (front.empty() || points[i].benefit > best) {
            front.push_back(i);
            best = points[i].benefit;
        }
    }
    return front;
}

double
hypervolume(const std::vector<ParetoPoint> &front, double refCost,
            double refBenefit)
{
    std::vector<ParetoPoint> clipped;
    for (const ParetoPoint &p : front) {
        if (p.feasible && p.cost < refCost && p.benefit > refBenefit)
            clipped.push_back(p);
    }
    const std::vector<std::size_t> keep = paretoFront(clipped);

    // Walk the staircase cost-ascending: each member adds the
    // rectangle spanning from its cost to the reference corner, and
    // from the previous (cheaper, lower-benefit) member's benefit up
    // to its own.
    double volume = 0.0;
    double floorBenefit = refBenefit;
    for (const std::size_t i : keep) {
        const ParetoPoint &p = clipped[i];
        volume += (refCost - p.cost) * (p.benefit - floorBenefit);
        floorBenefit = p.benefit;
    }
    return volume;
}

} // namespace mithra::dse
