#include "axbench/registry.hh"

#include <sstream>
#include <utility>

#include "axbench/blackscholes.hh"
#include "axbench/fft.hh"
#include "axbench/inversek2j.hh"
#include "axbench/jmeint.hh"
#include "axbench/jpeg.hh"
#include "axbench/sobel.hh"
#include "common/logging.hh"

namespace mithra::axbench
{

WorkloadRegistry &
WorkloadRegistry::global()
{
    static WorkloadRegistry *shared = [] {
        auto *registry = new WorkloadRegistry;
        // The six paper benchmarks, Table I order.
        registry->add("blackscholes", {}, [] {
            return std::make_unique<Blackscholes>();
        });
        registry->add("fft", {}, [] { return std::make_unique<Fft>(); });
        registry->add("inversek2j", {},
                      [] { return std::make_unique<InverseK2J>(); });
        registry->add("jmeint", {},
                      [] { return std::make_unique<Jmeint>(); });
        registry->add("jpeg", {}, [] { return std::make_unique<Jpeg>(); });
        registry->add("sobel", {},
                      [] { return std::make_unique<Sobel>(); });
        return registry;
    }();
    return *shared;
}

void
WorkloadRegistry::add(const std::string &name, Provenance provenance,
                      Factory factory)
{
    MITHRA_EXPECTS(!name.empty(), "workload name must be nonempty");
    MITHRA_EXPECTS(factory != nullptr, "workload factory must be set");
    const std::lock_guard<std::recursive_mutex> lock(mutex);
    if (const Entry *existing = lookup(name)) {
        fatal("duplicate workload name `", name, "': already registered "
              "by ", existing->provenance.origin, ", now offered by ",
              provenance.origin,
              " — every workload name must be process-unique");
    }
    entries.push_back({name, std::move(provenance), std::move(factory)});
}

void
WorkloadRegistry::setDiscovery(std::function<void()> hook)
{
    const std::lock_guard<std::recursive_mutex> lock(mutex);
    MITHRA_EXPECTS(!discovered,
                   "plugin discovery installed after workload names "
                   "were already resolved — install it at startup, "
                   "before the first registry lookup");
    discovery = std::move(hook);
}

void
WorkloadRegistry::ensureDiscovered()
{
    // Caller holds the mutex. Mark before running: the hook registers
    // through add(), which must not re-trigger discovery.
    if (discovered)
        return;
    discovered = true;
    if (discovery)
        discovery();
}

const WorkloadRegistry::Entry *
WorkloadRegistry::lookup(const std::string &name) const
{
    for (const Entry &entry : entries) {
        if (entry.name == name)
            return &entry;
    }
    return nullptr;
}

std::vector<std::string>
WorkloadRegistry::names()
{
    const std::lock_guard<std::recursive_mutex> lock(mutex);
    ensureDiscovered();
    std::vector<std::string> out;
    out.reserve(entries.size());
    for (const Entry &entry : entries)
        out.push_back(entry.name);
    return out;
}

bool
WorkloadRegistry::contains(const std::string &name)
{
    const std::lock_guard<std::recursive_mutex> lock(mutex);
    ensureDiscovered();
    return lookup(name) != nullptr;
}

std::unique_ptr<Benchmark>
WorkloadRegistry::make(const std::string &name)
{
    const std::lock_guard<std::recursive_mutex> lock(mutex);
    ensureDiscovered();
    const Entry *entry = lookup(name);
    if (!entry) {
        std::ostringstream known;
        for (const Entry &e : entries)
            known << (known.tellp() > 0 ? ", " : "") << e.name;
        fatal("unknown benchmark `", name, "' (registered: ",
              known.str(),
              ") — plugin workloads load from MITHRA_PLUGINS");
    }
    auto benchmark = entry->factory();
    MITHRA_ENSURES(benchmark != nullptr, "workload factory for `", name,
                   "' returned nothing");
    return benchmark;
}

WorkloadRegistry::Provenance
WorkloadRegistry::provenance(const std::string &name)
{
    const std::lock_guard<std::recursive_mutex> lock(mutex);
    ensureDiscovered();
    const Entry *entry = lookup(name);
    if (!entry)
        fatal("unknown benchmark `", name, "'");
    return entry->provenance;
}

std::string
WorkloadRegistry::cacheTag(const std::string &name)
{
    const std::lock_guard<std::recursive_mutex> lock(mutex);
    ensureDiscovered();
    const Entry *entry = lookup(name);
    if (!entry || entry->provenance.abiVersion == 0)
        return {};
    return name + "@v" + std::to_string(entry->provenance.abiVersion);
}

std::vector<std::string>
benchmarkNames()
{
    return WorkloadRegistry::global().names();
}

std::unique_ptr<Benchmark>
makeBenchmark(const std::string &name)
{
    return WorkloadRegistry::global().make(name);
}

std::vector<std::unique_ptr<Benchmark>>
makeAllBenchmarks()
{
    std::vector<std::unique_ptr<Benchmark>> all;
    for (const auto &name : benchmarkNames())
        all.push_back(makeBenchmark(name));
    return all;
}

} // namespace mithra::axbench
