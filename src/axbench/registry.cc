#include "axbench/registry.hh"

#include "axbench/blackscholes.hh"
#include "axbench/fft.hh"
#include "axbench/inversek2j.hh"
#include "axbench/jmeint.hh"
#include "axbench/jpeg.hh"
#include "axbench/sobel.hh"
#include "common/logging.hh"

namespace mithra::axbench
{

std::vector<std::string>
benchmarkNames()
{
    return {"blackscholes", "fft", "inversek2j", "jmeint", "jpeg",
            "sobel"};
}

std::unique_ptr<Benchmark>
makeBenchmark(const std::string &name)
{
    if (name == "blackscholes")
        return std::make_unique<Blackscholes>();
    if (name == "fft")
        return std::make_unique<Fft>();
    if (name == "inversek2j")
        return std::make_unique<InverseK2J>();
    if (name == "jmeint")
        return std::make_unique<Jmeint>();
    if (name == "jpeg")
        return std::make_unique<Jpeg>();
    if (name == "sobel")
        return std::make_unique<Sobel>();
    fatal("unknown benchmark `", name, "'");
}

std::vector<std::unique_ptr<Benchmark>>
makeAllBenchmarks()
{
    std::vector<std::unique_ptr<Benchmark>> all;
    for (const auto &name : benchmarkNames())
        all.push_back(makeBenchmark(name));
    return all;
}

} // namespace mithra::axbench
