/**
 * @file
 * blackscholes — financial analysis (PARSEC-style option pricing).
 *
 * The safe-to-approximate function prices one European option from six
 * inputs (spot, strike, rate, volatility, time, type) with the
 * Black–Scholes closed form; the NPU topology is 6->8->3->1 and the
 * quality metric is average relative error over the option prices
 * (paper Table I).
 */

#pragma once

#include "axbench/benchmark.hh"

namespace mithra::axbench
{

class Blackscholes final : public Benchmark
{
  public:
    std::string name() const override { return "blackscholes"; }
    std::string domain() const override { return "Financial Analysis"; }
    QualityMetric metric() const override
    {
        return QualityMetric::AvgRelativeError;
    }
    npu::Topology npuTopology() const override { return {6, 8, 3, 1}; }
    npu::TrainerOptions npuTrainerOptions() const override;
    unsigned tableQuantizerBits() const override { return 3; }

    std::unique_ptr<Dataset> makeDataset(std::uint64_t seed) const override;
    InvocationTrace trace(const Dataset &dataset) const override;
    FinalOutput recompose(
        const Dataset &dataset, const InvocationTrace &trace,
        const std::vector<std::uint8_t> &useAccel) const override;
    BenchmarkCosts measureCosts() const override;
    Vec targetFunction(const Vec &input) const override;

    /** Options per dataset (paper: 4096 data points). */
    static std::size_t optionsPerDataset();
};

} // namespace mithra::axbench

