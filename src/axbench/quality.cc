#include "axbench/quality.hh"

#include <cmath>

#include "common/contracts.hh"

namespace mithra::axbench
{

std::string
metricName(QualityMetric metric)
{
    switch (metric) {
      case QualityMetric::AvgRelativeError: return "Avg. Relative Error";
      case QualityMetric::MissRate: return "Miss Rate";
      case QualityMetric::ImageDiff: return "Image Diff";
      case QualityMetric::Custom: return "Custom";
    }
    panic("unknown quality metric");
}

namespace
{

/**
 * Scale floor for relative errors: elements with magnitude near zero
 * would otherwise dominate the metric with huge ratios that no
 * application-level metric would report.
 */
double
relativeFloor(const FinalOutput &reference)
{
    double sumSq = 0.0;
    for (float r : reference.elements)
        sumSq += static_cast<double>(r) * r;
    const double rms = reference.elements.empty()
        ? 0.0
        : std::sqrt(sumSq / static_cast<double>(reference.elements.size()));
    return 1e-2 * rms + 1e-9;
}

} // namespace

std::vector<double>
elementErrors(QualityMetric metric, const FinalOutput &reference,
              const FinalOutput &candidate)
{
    MITHRA_EXPECTS(reference.elements.size() == candidate.elements.size(),
                   "output element count mismatch: ",
                   reference.elements.size(), " vs ",
                   candidate.elements.size());
    MITHRA_EXPECTS(metric != QualityMetric::Custom,
                   "custom metrics have no element-error decomposition; "
                   "evaluate through Benchmark::qualityLoss()");
    const std::size_t n = reference.elements.size();
    std::vector<double> errors(n);

    switch (metric) {
      case QualityMetric::AvgRelativeError: {
        const double floor = relativeFloor(reference);
        for (std::size_t i = 0; i < n; ++i) {
            const double r = reference.elements[i];
            const double c = candidate.elements[i];
            // Saturate at 100%: a wrecked element counts as fully
            // wrong rather than letting near-zero references dominate
            // the average (AxBench-style behaviour).
            errors[i] = std::min(100.0,
                                 100.0 * std::fabs(r - c)
                                     / std::max(std::fabs(r), floor));
        }
        break;
      }
      case QualityMetric::MissRate: {
        for (std::size_t i = 0; i < n; ++i) {
            const bool r = reference.elements[i] > 0.5f;
            const bool c = candidate.elements[i] > 0.5f;
            errors[i] = (r == c) ? 0.0 : 100.0;
        }
        break;
      }
      case QualityMetric::ImageDiff: {
        for (std::size_t i = 0; i < n; ++i) {
            const double diff = static_cast<double>(reference.elements[i])
                - candidate.elements[i];
            errors[i] = 100.0 * std::fabs(diff) / 255.0;
        }
        break;
      }
      case QualityMetric::Custom:
        break; // unreachable: rejected by the contract above
    }
    return errors;
}

double
qualityLoss(QualityMetric metric, const FinalOutput &reference,
            const FinalOutput &candidate)
{
    const auto errors = elementErrors(metric, reference, candidate);
    if (errors.empty())
        return 0.0;

    if (metric == QualityMetric::ImageDiff) {
        // RMS of the per-pixel differences, relative to full scale.
        double sumSq = 0.0;
        for (double e : errors)
            sumSq += e * e;
        return std::sqrt(sumSq / static_cast<double>(errors.size()));
    }

    double sum = 0.0;
    for (double e : errors)
        sum += e;
    return sum / static_cast<double>(errors.size());
}

} // namespace mithra::axbench
