/**
 * @file
 * Benchmark registry: name -> factory for the six paper benchmarks.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "axbench/benchmark.hh"

namespace mithra::axbench
{

/** Names of all registered benchmarks, in Table I order. */
std::vector<std::string> benchmarkNames();

/** Instantiate a benchmark by name; fatal() on unknown names. */
std::unique_ptr<Benchmark> makeBenchmark(const std::string &name);

/** Instantiate every benchmark, in Table I order. */
std::vector<std::unique_ptr<Benchmark>> makeAllBenchmarks();

} // namespace mithra::axbench

