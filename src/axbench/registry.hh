/**
 * @file
 * The workload registry: one resolution point for built-in benchmarks
 * and runtime-loaded plugin workloads.
 *
 * Built-ins (the six paper benchmarks) register at construction in
 * Table I order. Plugin workloads (include/mithra_plugin.h) register
 * through the same add() path in MITHRA_PLUGINS load order, either
 * eagerly (mithra-serve loads at startup) or lazily through the
 * discovery hook a binary installs with setDiscovery() — the hook
 * runs once, before the first name resolution, so bench harnesses and
 * the ExperimentRunner see plugin workloads without the core layer
 * ever depending on the loader (src/plugin sits *above* axbench in
 * the layering DAG; the hook is injected downward).
 *
 * The free functions keep the historical API: every existing call
 * site resolves through the one registry.
 */

#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "axbench/benchmark.hh"

namespace mithra::axbench
{

/** Name -> factory registry with deterministic registration order. */
class WorkloadRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<Benchmark>()>;

    /** Where a workload came from (report labels, cache keys). */
    struct Provenance
    {
        /** "builtin", or the plugin path that registered the name. */
        std::string origin = "builtin";
        /** Plugin ABI version; 0 for built-ins. */
        unsigned abiVersion = 0;
    };

    /** The process-wide registry (built-ins pre-registered). */
    static WorkloadRegistry &global();

    /**
     * Register a workload. Names are unique across built-ins and all
     * plugins: a duplicate is fatal() — two workloads answering to
     * one name would silently split cache keys and reports.
     */
    void add(const std::string &name, Provenance provenance,
             Factory factory);

    /**
     * Install the lazy plugin-discovery hook (plugin::enableAuto-
     * Discovery()). Runs at most once, before the first resolution.
     * Installing a hook after discovery already ran is fatal: names
     * resolved so far would disagree with names resolved later.
     */
    void setDiscovery(std::function<void()> hook);

    /** All names in registration order (built-ins first, then plugin
     *  workloads in MITHRA_PLUGINS load order). */
    std::vector<std::string> names();

    /** Whether `name` resolves (after discovery). */
    bool contains(const std::string &name);

    /** Instantiate by name; fatal() on unknown names. */
    std::unique_ptr<Benchmark> make(const std::string &name);

    /** Provenance of a registered name; fatal() on unknown names. */
    Provenance provenance(const std::string &name);

    /**
     * Experiment cache-key suffix for `name`: empty for built-ins,
     * "name@v<abi>" for plugin workloads — a plugin workload's
     * records must never share a cache line with a future built-in
     * (or differently versioned plugin) of the same name.
     */
    std::string cacheTag(const std::string &name);

  private:
    struct Entry
    {
        std::string name;
        Provenance provenance;
        Factory factory;
    };

    void ensureDiscovered();
    const Entry *lookup(const std::string &name) const;

    // Recursive: the discovery hook loads plugins, which re-enter
    // through add().
    std::recursive_mutex mutex;
    std::vector<Entry> entries;
    std::function<void()> discovery;
    bool discovered = false;
};

/** Names of all registered benchmarks (built-ins in Table I order,
 *  then plugin workloads in load order). */
std::vector<std::string> benchmarkNames();

/** Instantiate a benchmark by name; fatal() on unknown names. */
std::unique_ptr<Benchmark> makeBenchmark(const std::string &name);

/** Instantiate every registered benchmark, in registry order. */
std::vector<std::unique_ptr<Benchmark>> makeAllBenchmarks();

} // namespace mithra::axbench
