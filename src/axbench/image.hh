/**
 * @file
 * Grayscale image substrate for the jpeg and sobel benchmarks.
 *
 * The paper evaluates on 512x512 photos; this repository synthesizes
 * procedural scenes (gradient backgrounds, rectangles, disks, line
 * segments, Gaussian noise) so every dataset is generated from a seed.
 * The default edge length is 64 so the 2x250-dataset pipeline stays
 * tractable on one core; callers can scale it up.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hh"

namespace mithra::axbench
{

/** An 8-bit grayscale image. */
class Image
{
  public:
    Image(std::size_t width, std::size_t height, std::uint8_t fill = 0);

    std::size_t width() const { return w; }
    std::size_t height() const { return h; }

    std::uint8_t at(std::size_t x, std::size_t y) const;
    void set(std::size_t x, std::size_t y, std::uint8_t value);

    /** Pixel with clamp-to-edge semantics for window kernels. */
    std::uint8_t atClamped(long x, long y) const;

    const std::vector<std::uint8_t> &pixels() const { return data; }
    std::vector<std::uint8_t> &pixels() { return data; }

  private:
    std::size_t w, h;
    std::vector<std::uint8_t> data;
};

/** Knobs for the procedural scene generator. */
struct SceneParams
{
    std::size_t width = 64;
    std::size_t height = 64;
    std::size_t minShapes = 3;
    std::size_t maxShapes = 9;
    double noiseStddev = 6.0;
};

/** Generate a procedural scene deterministically from a seed. */
Image generateScene(std::uint64_t seed, const SceneParams &params);

} // namespace mithra::axbench

