/**
 * @file
 * Application-specific quality metrics (paper Table I).
 *
 * Each benchmark declares one metric; the statistical optimizer and the
 * evaluation harness only ever see "final quality loss" percentages:
 *
 *  - AvgRelativeError: mean per-element relative error, in percent
 *    (blackscholes, fft, inversek2j).
 *  - MissRate: fraction of binary decisions that flipped, in percent
 *    (jmeint).
 *  - ImageDiff: root-mean-square pixel difference relative to the
 *    8-bit range, in percent (jpeg, sobel).
 */

#pragma once

#include <string>
#include <vector>

namespace mithra::axbench
{

/** A final application output as a flat element vector. */
struct FinalOutput
{
    std::vector<float> elements;
};

/** The quality metric a benchmark is judged by. */
enum class QualityMetric
{
    AvgRelativeError,
    MissRate,
    ImageDiff,
    /**
     * Benchmark-defined metric: the loss is computed by the
     * benchmark's qualityLoss() override (plugin workloads route it
     * to their C quality_loss hook). The free functions below reject
     * it — code holding only the enum cannot evaluate a custom
     * metric.
     */
    Custom,
};

/** Metric name as printed in Table I. */
std::string metricName(QualityMetric metric);

/**
 * Final quality loss of `candidate` against `reference`, in percent.
 * Larger is worse; 0 means identical.
 */
double qualityLoss(QualityMetric metric, const FinalOutput &reference,
                   const FinalOutput &candidate);

/**
 * Per-element final error (same units as the metric) — the Figure 1
 * CDF is built over these values.
 */
std::vector<double> elementErrors(QualityMetric metric,
                                  const FinalOutput &reference,
                                  const FinalOutput &candidate);

} // namespace mithra::axbench

