#include "axbench/jpeg_codec.hh"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/contracts.hh"

namespace mithra::axbench::jpeg
{

const std::array<std::size_t, blockSize> &
zigzagOrder()
{
    static const std::array<std::size_t, blockSize> order = {
        0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
        12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
        35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
        58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
    };
    return order;
}

std::array<int, blockSize>
quantTable(int quality)
{
    MITHRA_EXPECTS(quality >= 1 && quality <= 100,
                   "JPEG quality out of range: ", quality);
    // ITU-T T.81 Annex K luminance table.
    static const int base[blockSize] = {
        16, 11, 10, 16, 24,  40,  51,  61,
        12, 12, 14, 19, 26,  58,  60,  55,
        14, 13, 16, 24, 40,  57,  69,  56,
        14, 17, 22, 29, 51,  87,  80,  62,
        18, 22, 37, 56, 68,  109, 103, 77,
        24, 35, 55, 64, 81,  104, 113, 92,
        49, 64, 78, 87, 103, 121, 120, 101,
        72, 92, 95, 98, 112, 100, 103, 99,
    };

    // libjpeg-style quality scaling.
    const int scale = quality < 50 ? 5000 / quality : 200 - 2 * quality;
    std::array<int, blockSize> table;
    for (std::size_t i = 0; i < blockSize; ++i) {
        const int value = (base[i] * scale + 50) / 100;
        table[i] = std::clamp(value, 1, 255);
    }
    return table;
}

const float *
dctCosTable()
{
    static const auto table = [] {
        static float data[blockSize];
        for (std::size_t x = 0; x < blockEdge; ++x) {
            for (std::size_t u = 0; u < blockEdge; ++u) {
                data[x * blockEdge + u] = static_cast<float>(std::cos(
                    (2.0 * static_cast<double>(x) + 1.0)
                    * static_cast<double>(u) * std::numbers::pi / 16.0));
            }
        }
        return data;
    }();
    return table;
}

void
blockDequantizeIdct(const float (&coeffs)[blockSize],
                    const std::array<int, blockSize> &table,
                    float (&pixels)[blockSize])
{
    const float *cosTab = dctCosTable();

    float dequant[blockSize];
    for (std::size_t i = 0; i < blockSize; ++i)
        dequant[i] = coeffs[i] * static_cast<float>(table[i]);

    for (std::size_t y = 0; y < blockEdge; ++y) {
        for (std::size_t x = 0; x < blockEdge; ++x) {
            double sum = 0.0;
            for (std::size_t v = 0; v < blockEdge; ++v) {
                for (std::size_t u = 0; u < blockEdge; ++u) {
                    const double cu = (u == 0) ? 0.35355339059327373
                                               : 0.5;
                    const double cv = (v == 0) ? 0.35355339059327373
                                               : 0.5;
                    sum += cu * cv * dequant[v * blockEdge + u]
                        * cosTab[x * blockEdge + u]
                        * cosTab[y * blockEdge + v];
                }
            }
            pixels[y * blockEdge + x] = static_cast<float>(
                std::clamp(sum + 128.0, 0.0, 255.0));
        }
    }
}

void
BitStream::writeBits(std::uint32_t value, unsigned count)
{
    MITHRA_ASSERT(count <= 24, "bit run too long: ", count);
    for (unsigned i = count; i-- > 0;) {
        const bool bit = (value >> i) & 1;
        if (bitCount % 8 == 0)
            data.push_back(0);
        if (bit)
            data.back() |= static_cast<std::uint8_t>(
                1u << (7 - bitCount % 8));
        ++bitCount;
    }
}

BitReader::BitReader(const std::vector<std::uint8_t> &bytes)
    : data(bytes)
{
}

std::uint32_t
BitReader::readBits(unsigned count)
{
    MITHRA_ASSERT(count <= 24, "bit run too long: ", count);
    std::uint32_t value = 0;
    for (unsigned i = 0; i < count; ++i) {
        MITHRA_ASSERT(pos / 8 < data.size(), "bit stream overrun");
        const bool bit = (data[pos / 8] >> (7 - pos % 8)) & 1;
        value = (value << 1) | (bit ? 1u : 0u);
        ++pos;
    }
    return value;
}

bool
BitReader::exhausted() const
{
    return pos / 8 >= data.size();
}

HuffmanTable::HuffmanTable(const std::array<std::uint8_t, 16> &bits,
                           const std::vector<std::uint8_t> &vals)
    : symbols(vals)
{
    // Canonical code assignment, shortest codes first.
    std::uint16_t code = 0;
    std::size_t index = 0;
    for (unsigned length = 1; length <= 16; ++length) {
        firstCode[length] = code;
        firstIndex[length] = static_cast<std::uint16_t>(index);
        countAt[length] = bits[length - 1];
        for (unsigned i = 0; i < bits[length - 1]; ++i) {
            MITHRA_ASSERT(index < vals.size(),
                          "Huffman vals shorter than bits imply");
            const std::uint8_t symbol = vals[index];
            codes[symbol] = {code, static_cast<std::uint8_t>(length)};
            present[symbol] = true;
            ++code;
            ++index;
        }
        code = static_cast<std::uint16_t>(code << 1);
    }
    MITHRA_ASSERT(index == vals.size(), "unused Huffman vals");
}

void
HuffmanTable::encode(BitStream &out, std::uint8_t symbol) const
{
    MITHRA_ASSERT(present[symbol], "symbol has no Huffman code: ",
                  static_cast<int>(symbol));
    out.writeBits(codes[symbol].code, codes[symbol].length);
}

std::uint8_t
HuffmanTable::decode(BitReader &in) const
{
    std::uint16_t code = 0;
    for (unsigned length = 1; length <= 16; ++length) {
        code = static_cast<std::uint16_t>(
            (code << 1) | in.readBits(1));
        if (countAt[length] > 0
            && code < firstCode[length] + countAt[length]
            && code >= firstCode[length]) {
            const std::size_t index = firstIndex[length]
                + static_cast<std::size_t>(code - firstCode[length]);
            return symbols[index];
        }
    }
    panic("invalid Huffman code in stream");
}

const HuffmanTable &
HuffmanTable::standardDc()
{
    static const HuffmanTable table(
        {0, 1, 5, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0},
        {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
    return table;
}

const HuffmanTable &
HuffmanTable::standardAc()
{
    static const HuffmanTable table(
        {0, 2, 1, 3, 3, 2, 4, 3, 5, 5, 4, 4, 0, 0, 1, 0x7d},
        {0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12, 0x21, 0x31,
         0x41, 0x06, 0x13, 0x51, 0x61, 0x07, 0x22, 0x71, 0x14, 0x32,
         0x81, 0x91, 0xa1, 0x08, 0x23, 0x42, 0xb1, 0xc1, 0x15, 0x52,
         0xd1, 0xf0, 0x24, 0x33, 0x62, 0x72, 0x82, 0x09, 0x0a, 0x16,
         0x17, 0x18, 0x19, 0x1a, 0x25, 0x26, 0x27, 0x28, 0x29, 0x2a,
         0x34, 0x35, 0x36, 0x37, 0x38, 0x39, 0x3a, 0x43, 0x44, 0x45,
         0x46, 0x47, 0x48, 0x49, 0x4a, 0x53, 0x54, 0x55, 0x56, 0x57,
         0x58, 0x59, 0x5a, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69,
         0x6a, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78, 0x79, 0x7a, 0x83,
         0x84, 0x85, 0x86, 0x87, 0x88, 0x89, 0x8a, 0x92, 0x93, 0x94,
         0x95, 0x96, 0x97, 0x98, 0x99, 0x9a, 0xa2, 0xa3, 0xa4, 0xa5,
         0xa6, 0xa7, 0xa8, 0xa9, 0xaa, 0xb2, 0xb3, 0xb4, 0xb5, 0xb6,
         0xb7, 0xb8, 0xb9, 0xba, 0xc2, 0xc3, 0xc4, 0xc5, 0xc6, 0xc7,
         0xc8, 0xc9, 0xca, 0xd2, 0xd3, 0xd4, 0xd5, 0xd6, 0xd7, 0xd8,
         0xd9, 0xda, 0xe1, 0xe2, 0xe3, 0xe4, 0xe5, 0xe6, 0xe7, 0xe8,
         0xe9, 0xea, 0xf1, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8,
         0xf9, 0xfa});
    return table;
}

namespace
{

/** JPEG size category: bits needed for |v|. */
unsigned
category(int v)
{
    unsigned cat = 0;
    unsigned magnitude = static_cast<unsigned>(v < 0 ? -v : v);
    while (magnitude) {
        magnitude >>= 1;
        ++cat;
    }
    return cat;
}

/** Amplitude bits: negative values use the one's-complement form. */
std::uint32_t
amplitudeBits(int v, unsigned cat)
{
    if (v >= 0)
        return static_cast<std::uint32_t>(v);
    return static_cast<std::uint32_t>(v + (1 << cat) - 1);
}

/** Inverse of amplitudeBits. */
int
amplitudeValue(std::uint32_t bits, unsigned cat)
{
    if (cat == 0)
        return 0;
    const std::uint32_t half = 1u << (cat - 1);
    if (bits >= half)
        return static_cast<int>(bits);
    return static_cast<int>(bits) - static_cast<int>((1u << cat) - 1);
}

} // namespace

BitStream
entropyEncode(const std::vector<std::array<int, blockSize>> &blocks)
{
    const auto &dcTable = HuffmanTable::standardDc();
    const auto &acTable = HuffmanTable::standardAc();
    const auto &zigzag = zigzagOrder();

    BitStream out;
    int prevDc = 0;
    for (const auto &block : blocks) {
        // DC difference.
        const int dc = block[0];
        const int diff = dc - prevDc;
        prevDc = dc;
        const unsigned dcCat = category(diff);
        MITHRA_ASSERT(dcCat <= 11, "DC difference out of range: ", diff);
        dcTable.encode(out, static_cast<std::uint8_t>(dcCat));
        out.writeBits(amplitudeBits(diff, dcCat), dcCat);

        // AC run-length coding in zig-zag order.
        unsigned run = 0;
        for (std::size_t scan = 1; scan < blockSize; ++scan) {
            const int coeff = block[zigzag[scan]];
            if (coeff == 0) {
                ++run;
                continue;
            }
            while (run > 15) {
                acTable.encode(out, 0xf0); // ZRL: sixteen zeros
                run -= 16;
            }
            const unsigned cat = category(coeff);
            MITHRA_ASSERT(cat >= 1 && cat <= 10,
                          "AC coefficient out of range: ", coeff);
            const auto symbol = static_cast<std::uint8_t>(
                (run << 4) | cat);
            acTable.encode(out, symbol);
            out.writeBits(amplitudeBits(coeff, cat), cat);
            run = 0;
        }
        if (run > 0)
            acTable.encode(out, 0x00); // EOB
    }
    return out;
}

std::vector<std::array<int, blockSize>>
entropyDecode(const BitStream &stream, std::size_t blockCount)
{
    const auto &dcTable = HuffmanTable::standardDc();
    const auto &acTable = HuffmanTable::standardAc();
    const auto &zigzag = zigzagOrder();

    BitReader in(stream.bytes());
    std::vector<std::array<int, blockSize>> blocks(blockCount);
    int prevDc = 0;

    for (auto &block : blocks) {
        block.fill(0);
        const unsigned dcCat = dcTable.decode(in);
        const int diff = amplitudeValue(in.readBits(dcCat), dcCat);
        prevDc += diff;
        block[0] = prevDc;

        std::size_t scan = 1;
        while (scan < blockSize) {
            const std::uint8_t symbol = acTable.decode(in);
            if (symbol == 0x00)
                break; // EOB
            if (symbol == 0xf0) {
                scan += 16;
                continue;
            }
            const unsigned run = symbol >> 4;
            const unsigned cat = symbol & 0x0f;
            scan += run;
            MITHRA_ASSERT(scan < blockSize, "AC scan overrun");
            block[zigzag[scan]] =
                amplitudeValue(in.readBits(cat), cat);
            ++scan;
        }
    }
    return blocks;
}

} // namespace mithra::axbench::jpeg
