/**
 * @file
 * Baseline JPEG codec substrate for the jpeg benchmark.
 *
 * Implements the grayscale baseline pipeline from scratch:
 * 8x8 forward DCT-II, quantization with the Annex-K luminance table
 * (quality scaled), zig-zag ordering, DC-difference + AC run-length
 * entropy coding with the standard baseline Huffman tables, and the
 * full decode path (Huffman decode, dequantize, inverse DCT).
 *
 * The benchmark's safe-to-approximate target function is
 * blockDctQuantize(): pixels of one block in, 64 quantized
 * coefficients out — exactly the region AxBench offloads to the NPU
 * (64 -> 16 -> 64). Everything else here is the precise non-target
 * region of the application.
 */

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "axbench/image.hh"
#include "common/logging.hh"
#include "sim/opcount.hh"

namespace mithra::axbench::jpeg
{

/** Block edge: JPEG operates on 8x8 blocks. */
constexpr std::size_t blockEdge = 8;
/** Coefficients per block. */
constexpr std::size_t blockSize = blockEdge * blockEdge;

/** Zig-zag scan order (index = scan position, value = block index). */
const std::array<std::size_t, blockSize> &zigzagOrder();

/** Annex-K luminance quantization table scaled to a quality factor. */
std::array<int, blockSize> quantTable(int quality);

/** The 8x8 DCT cosine basis, row-major: cos((2x+1) u pi / 16). */
const float *dctCosTable();

/** floor() indirection so blockDctQuantize works for Counted<T>. */
inline float
floorT(float x)
{
    return std::floor(x);
}

/** Tallying floor for the instrumented scalar (rounds cost ~1 add). */
template <typename T>
sim::Counted<T>
floorT(sim::Counted<T> x)
{
    ++sim::opTally().addSub;
    return sim::Counted<T>(std::floor(x.value()));
}

/**
 * The safe-to-approximate target function: level-shift, 2-D DCT-II
 * and quantization of one 8x8 block.
 *
 * @param pixels 64 pixel values in [0, 255] in row-major order
 * @param table  the quantization table
 * @param coeffs output: 64 quantized coefficients, row-major
 */
template <typename T>
void
blockDctQuantize(const T (&pixels)[blockSize],
                 const std::array<int, blockSize> &table,
                 T (&coeffs)[blockSize])
{
    // Basis tables are plain float; arithmetic flows through T so the
    // instrumented scalar tallies every operation.
    const float *cosTab = dctCosTable();

    T shifted[blockSize];
    for (std::size_t i = 0; i < blockSize; ++i)
        shifted[i] = pixels[i] - T(128.0f);

    // Row pass.
    T rows[blockSize];
    for (std::size_t y = 0; y < blockEdge; ++y) {
        for (std::size_t u = 0; u < blockEdge; ++u) {
            T sum = T(0.0f);
            for (std::size_t x = 0; x < blockEdge; ++x)
                sum += shifted[y * blockEdge + x]
                    * T(cosTab[x * blockEdge + u]);
            rows[y * blockEdge + u] = sum;
        }
    }

    // Column pass plus normalization and quantization.
    for (std::size_t v = 0; v < blockEdge; ++v) {
        for (std::size_t u = 0; u < blockEdge; ++u) {
            T sum = T(0.0f);
            for (std::size_t y = 0; y < blockEdge; ++y)
                sum += rows[y * blockEdge + u]
                    * T(cosTab[y * blockEdge + v]);

            const float cu = (u == 0) ? 0.35355339059327373f : 0.5f;
            const float cv = (v == 0) ? 0.35355339059327373f : 0.5f;
            T coeff = sum * T(cu * cv);

            // Quantize: divide and round to nearest integer.
            coeff = coeff / T(static_cast<float>(
                table[v * blockEdge + u]));
            // Round half away from zero without integer conversion so
            // the instrumented type stays in play.
            if (coeff >= T(0.0f))
                coeff = floorT(coeff + T(0.5f));
            else
                coeff = -floorT(-coeff + T(0.5f));
            coeffs[v * blockEdge + u] = coeff;
        }
    }
}

/** Dequantize + inverse DCT of one block back to pixels [0, 255]. */
void blockDequantizeIdct(const float (&coeffs)[blockSize],
                         const std::array<int, blockSize> &table,
                         float (&pixels)[blockSize]);

/** A writable/readable MSB-first bit stream. */
class BitStream
{
  public:
    void writeBits(std::uint32_t value, unsigned count);
    std::size_t sizeBits() const { return bitCount; }
    std::size_t sizeBytes() const { return (bitCount + 7) / 8; }
    const std::vector<std::uint8_t> &bytes() const { return data; }

  private:
    std::vector<std::uint8_t> data;
    std::size_t bitCount = 0;
};

/** Reader over a BitStream's bytes. */
class BitReader
{
  public:
    explicit BitReader(const std::vector<std::uint8_t> &bytes);
    /** Read `count` bits MSB first; asserts on overrun. */
    std::uint32_t readBits(unsigned count);
    bool exhausted() const;

  private:
    const std::vector<std::uint8_t> &data;
    std::size_t pos = 0;
};

/** A canonical Huffman table (JPEG "bits"/"vals" representation). */
class HuffmanTable
{
  public:
    /**
     * @param bits  bits[i] = number of codes of length i+1 (16 entries)
     * @param vals  symbol values in code order
     */
    HuffmanTable(const std::array<std::uint8_t, 16> &bits,
                 const std::vector<std::uint8_t> &vals);

    /** Emit the code for a symbol. */
    void encode(BitStream &out, std::uint8_t symbol) const;

    /** Decode the next symbol from the reader. */
    std::uint8_t decode(BitReader &in) const;

    /** The standard baseline luminance DC table. */
    static const HuffmanTable &standardDc();
    /** The standard baseline luminance AC table. */
    static const HuffmanTable &standardAc();

  private:
    struct Code
    {
        std::uint16_t code;
        std::uint8_t length;
    };
    std::array<Code, 256> codes{};
    std::array<bool, 256> present{};
    /** length -> (first code, first index) for canonical decoding. */
    std::array<std::uint16_t, 17> firstCode{};
    std::array<std::uint16_t, 17> firstIndex{};
    std::array<std::uint16_t, 17> countAt{};
    std::vector<std::uint8_t> symbols;
};

/**
 * Entropy-encode a sequence of quantized blocks (already integer
 * valued) into a bit stream: DC differences + AC run-length symbols
 * against the standard baseline tables.
 */
BitStream entropyEncode(const std::vector<std::array<int, blockSize>>
                            &blocks);

/** Exact inverse of entropyEncode (needs the block count). */
std::vector<std::array<int, blockSize>> entropyDecode(
    const BitStream &stream, std::size_t blockCount);

} // namespace mithra::axbench::jpeg

