#include "axbench/image.hh"

#include <algorithm>
#include <cmath>

#include "common/contracts.hh"

namespace mithra::axbench
{

Image::Image(std::size_t width, std::size_t height, std::uint8_t fill)
    : w(width), h(height), data(width * height, fill)
{
    MITHRA_EXPECTS(width > 0 && height > 0, "degenerate image");
}

std::uint8_t
Image::at(std::size_t x, std::size_t y) const
{
    MITHRA_EXPECTS(x < w && y < h, "pixel out of range: (", x, ",", y, ")");
    return data[y * w + x];
}

void
Image::set(std::size_t x, std::size_t y, std::uint8_t value)
{
    MITHRA_EXPECTS(x < w && y < h, "pixel out of range: (", x, ",", y, ")");
    data[y * w + x] = value;
}

std::uint8_t
Image::atClamped(long x, long y) const
{
    const long cx = std::clamp<long>(x, 0, static_cast<long>(w) - 1);
    const long cy = std::clamp<long>(y, 0, static_cast<long>(h) - 1);
    return data[static_cast<std::size_t>(cy) * w
                + static_cast<std::size_t>(cx)];
}

namespace
{

std::uint8_t
toPixel(double value)
{
    return static_cast<std::uint8_t>(std::clamp(value, 0.0, 255.0));
}

void
paintGradient(Image &img, Rng &rng)
{
    const double base = rng.uniform(40.0, 200.0);
    const double gx = rng.uniform(-1.2, 1.2);
    const double gy = rng.uniform(-1.2, 1.2);
    for (std::size_t y = 0; y < img.height(); ++y) {
        for (std::size_t x = 0; x < img.width(); ++x) {
            const double v = base + gx * static_cast<double>(x)
                + gy * static_cast<double>(y);
            img.set(x, y, toPixel(v));
        }
    }
}

void
paintRectangle(Image &img, Rng &rng)
{
    const auto w = static_cast<long>(img.width());
    const auto h = static_cast<long>(img.height());
    const long x0 = static_cast<long>(rng.nextBelow(img.width()));
    const long y0 = static_cast<long>(rng.nextBelow(img.height()));
    const long rw = 2 + static_cast<long>(rng.nextBelow(img.width() / 2));
    const long rh = 2 + static_cast<long>(rng.nextBelow(img.height() / 2));
    const double shade = rng.uniform(0.0, 255.0);
    for (long y = y0; y < std::min(h, y0 + rh); ++y)
        for (long x = x0; x < std::min(w, x0 + rw); ++x)
            img.set(static_cast<std::size_t>(x),
                    static_cast<std::size_t>(y), toPixel(shade));
}

void
paintDisk(Image &img, Rng &rng)
{
    const double cx = rng.uniform(0.0, static_cast<double>(img.width()));
    const double cy = rng.uniform(0.0, static_cast<double>(img.height()));
    const double r = rng.uniform(2.0,
        static_cast<double>(std::min(img.width(), img.height())) / 3.0);
    const double shade = rng.uniform(0.0, 255.0);
    for (std::size_t y = 0; y < img.height(); ++y) {
        for (std::size_t x = 0; x < img.width(); ++x) {
            const double dx = static_cast<double>(x) - cx;
            const double dy = static_cast<double>(y) - cy;
            if (dx * dx + dy * dy <= r * r)
                img.set(x, y, toPixel(shade));
        }
    }
}

void
paintLine(Image &img, Rng &rng)
{
    double x = rng.uniform(0.0, static_cast<double>(img.width()));
    double y = rng.uniform(0.0, static_cast<double>(img.height()));
    const double angle = rng.uniform(0.0, 6.28318530717958647692);
    const double dx = std::cos(angle);
    const double dy = std::sin(angle);
    const double shade = rng.uniform(0.0, 255.0);
    const auto steps = static_cast<std::size_t>(
        rng.uniform(8.0, static_cast<double>(img.width())));
    for (std::size_t s = 0; s < steps; ++s) {
        const long px = static_cast<long>(std::lround(x));
        const long py = static_cast<long>(std::lround(y));
        if (px >= 0 && py >= 0 && px < static_cast<long>(img.width())
            && py < static_cast<long>(img.height())) {
            img.set(static_cast<std::size_t>(px),
                    static_cast<std::size_t>(py), toPixel(shade));
        }
        x += dx;
        y += dy;
    }
}

} // namespace

Image
generateScene(std::uint64_t seed, const SceneParams &params)
{
    Rng rng(seed ^ 0x696d616765ULL);
    Image img(params.width, params.height);
    paintGradient(img, rng);

    const std::size_t shapes = params.minShapes
        + rng.nextBelow(params.maxShapes - params.minShapes + 1);
    for (std::size_t s = 0; s < shapes; ++s) {
        switch (rng.nextBelow(3)) {
          case 0: paintRectangle(img, rng); break;
          case 1: paintDisk(img, rng); break;
          default: paintLine(img, rng); break;
        }
    }

    if (params.noiseStddev > 0.0) {
        for (auto &px : img.pixels()) {
            const double noisy = static_cast<double>(px)
                + rng.normal(0.0, params.noiseStddev);
            px = toPixel(noisy);
        }
    }
    return img;
}

} // namespace mithra::axbench
