/**
 * @file
 * Input-distribution drift injection.
 *
 * The offline certificate holds for the distribution the compile
 * datasets were drawn from; the watchdog exists for the day the
 * serving distribution walks away from it. This module manufactures
 * that day on demand: it measures the per-dimension input moments of
 * a reference trace and rebuilds the trace with every input moved
 * through an affine drift
 *
 *     x'_d = mean_d + spread * (x_d - mean_d) + shift * sigma_d
 *
 * so `shift` is a mean shift in per-dimension standard deviations
 * (the "2-sigma drift" of the experiments) and `spread` widens or
 * narrows the distribution around its mean. Precise outputs are
 * recomputed through Benchmark::targetFunction and approximate
 * outputs through the trained accelerator, so the drifted trace
 * carries real errors — whatever the NPU actually does out of
 * distribution, not a synthetic error model.
 */

#pragma once

#include <vector>

#include "axbench/benchmark.hh"

namespace mithra::axbench
{

/** Per-dimension first and second moments of a trace's inputs. */
struct InputMoments
{
    std::vector<double> mean;
    std::vector<double> stddev;

    std::size_t width() const { return mean.size(); }
};

/** Measure per-dimension input moments over one trace. */
InputMoments measureInputMoments(const InvocationTrace &trace);

/** One drift condition. */
struct DriftSpec
{
    /** Mean shift in units of the per-dimension stddev. */
    double shiftSigma = 0.0;
    /** Multiplier on the spread around the mean (1 = unchanged). */
    double spread = 1.0;
    /**
     * Scramble the shift's sign across dimensions with a fixed
     * pseudo-random pattern (SplitMix64 of the dimension index).
     * A uniform shift is invisible to translation-invariant kernels,
     * and a strictly alternating one lands in the null space of
     * symmetric stencils (sobel's gradient kernels cancel an even/odd
     * checkerboard exactly); a scrambled pattern deforms the input
     * with no such blind spot.
     */
    bool scrambleSigns = false;

    bool identity() const { return shiftSigma == 0.0 && spread == 1.0; }
};

/**
 * Rebuild `source` under `spec`: drift every input relative to
 * `moments`, recompute precise outputs with bench.targetFunction()
 * and attach the accelerator's approximations for the drifted inputs.
 * A dimension with zero spread in the reference trace (constant
 * input) is left unshifted — there is no scale to drift by.
 */
InvocationTrace driftTrace(const Benchmark &bench,
                           const npu::Approximator &accel,
                           const InvocationTrace &source,
                           const InputMoments &moments,
                           const DriftSpec &spec);

} // namespace mithra::axbench
