/**
 * @file
 * inversek2j — robotics (inverse kinematics for a 2-joint arm).
 *
 * The safe-to-approximate function maps a target end-effector position
 * (x, y) to the two joint angles (theta1, theta2) of a planar arm with
 * unit-length links. NPU topology 2->8->2; quality metric is average
 * relative error over the angles (paper Table I).
 */

#pragma once

#include "axbench/benchmark.hh"

namespace mithra::axbench
{

class InverseK2J final : public Benchmark
{
  public:
    /** Link lengths of the modeled arm. */
    static constexpr float l1 = 0.5f;
    static constexpr float l2 = 0.5f;

    std::string name() const override { return "inversek2j"; }
    std::string domain() const override { return "Robotics"; }
    QualityMetric metric() const override
    {
        return QualityMetric::AvgRelativeError;
    }
    npu::Topology npuTopology() const override { return {2, 8, 2}; }
    npu::TrainerOptions npuTrainerOptions() const override;
    unsigned tableQuantizerBits() const override { return 5; }

    std::unique_ptr<Dataset> makeDataset(std::uint64_t seed) const override;
    InvocationTrace trace(const Dataset &dataset) const override;
    FinalOutput recompose(
        const Dataset &dataset, const InvocationTrace &trace,
        const std::vector<std::uint8_t> &useAccel) const override;
    BenchmarkCosts measureCosts() const override;
    Vec targetFunction(const Vec &input) const override;

    /** Coordinates per dataset (paper: 10000 (x, y) points). */
    static std::size_t pointsPerDataset();

    /** Forward kinematics, used by the generator and tests. */
    static void forward(float theta1, float theta2, float &x, float &y);
};

} // namespace mithra::axbench

