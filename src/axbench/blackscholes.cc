#include "axbench/blackscholes.hh"

#include <algorithm>
#include <cmath>

#include "common/contracts.hh"
#include "common/rng.hh"
#include "common/scale.hh"

namespace mithra::axbench
{

namespace
{

// Unqualified math calls resolve to std:: for plain floats and to the
// tallying overloads (via ADL) for sim::Counted<float>.
using std::exp;
using std::log;
using std::sqrt;

/** One European option's parameters. */
struct Option
{
    float spot;
    float strike;
    float rate;
    float volatility;
    float time;
    float type; // 0 = call, 1 = put
};

struct BlackscholesDataset final : Dataset
{
    std::vector<Option> options;
};

/**
 * Cumulative normal distribution (Abramowitz–Stegun polynomial), the
 * same approximation the PARSEC kernel uses.
 */
template <typename T>
T
cndf(T x)
{
    bool negative = false;
    if (x < T(0.0f)) {
        x = -x;
        negative = true;
    }

    const T expValue = exp(T(-0.5f) * x * x);
    const T xNPrimeofX = expValue * T(0.39894228040143270286f);

    const T k = T(1.0f) / (T(1.0f) + T(0.2316419f) * x);
    const T k2 = k * k;
    const T k3 = k2 * k;
    const T k4 = k3 * k;
    const T k5 = k4 * k;

    T poly = k * T(0.319381530f)
        + k2 * T(-0.356563782f)
        + k3 * T(1.781477937f)
        + k4 * T(-1.821255978f)
        + k5 * T(1.330274429f);

    T result = T(1.0f) - poly * xNPrimeofX;
    if (negative)
        result = T(1.0f) - result;
    return result;
}

/** The safe-to-approximate target function: price one option. */
template <typename T>
T
priceOption(T spot, T strike, T rate, T volatility, T time, T type)
{
    const T sqrtTime = sqrt(time);
    const T logTerm = log(spot / strike);

    const T powerTerm = T(0.5f) * volatility * volatility;
    T d1 = (rate + powerTerm) * time + logTerm;
    const T den = volatility * sqrtTime;
    d1 = d1 / den;
    const T d2 = d1 - den;

    const T n1 = cndf(d1);
    const T n2 = cndf(d2);

    const T futureValue = strike * exp(-rate * time);
    if (type < T(0.5f)) {
        // Call option.
        return spot * n1 - futureValue * n2;
    }
    // Put option via the complementary CNDF values.
    return futureValue * (T(1.0f) - n2) - spot * (T(1.0f) - n1);
}

} // namespace

std::size_t
Blackscholes::optionsPerDataset()
{
    return scaledCount(4096, 256);
}

npu::TrainerOptions
Blackscholes::npuTrainerOptions() const
{
    npu::TrainerOptions options;
    options.epochs = 900;
    options.learningRate = 0.4f;
    options.lrDecay = 0.9975f;
    options.batchSize = 8;
    options.seed = 0xb5;
    return options;
}

std::unique_ptr<Dataset>
Blackscholes::makeDataset(std::uint64_t seed) const
{
    Rng rng(seed);
    auto dataset = std::make_unique<BlackscholesDataset>();
    dataset->options.reserve(optionsPerDataset());

    // Each dataset models one market snapshot: a modest set of option
    // series (PARSEC's input files likewise repeat a small set of
    // distinct option parameter lines) perturbed per quote. The
    // regime (rate/volatility levels) shifts between datasets.
    const double rateLevel = rng.uniform(0.02, 0.06);
    const double volLevel = rng.uniform(0.15, 0.45);

    const std::size_t series = 40 + rng.nextBelow(25);
    std::vector<Option> templates;
    templates.reserve(series);
    for (std::size_t s = 0; s < series; ++s) {
        Option opt;
        opt.spot = static_cast<float>(rng.lognormal(4.6, 0.15));
        opt.strike = static_cast<float>(
            opt.spot * rng.uniform(0.85, 1.15));
        opt.rate = static_cast<float>(
            std::clamp(rateLevel + rng.normal(0.0, 0.008), 0.01, 0.08));
        opt.volatility = static_cast<float>(
            std::clamp(volLevel + rng.normal(0.0, 0.06), 0.12, 0.55));
        opt.time = static_cast<float>(rng.uniform(0.4, 2.0));
        opt.type = rng.bernoulli(0.4) ? 1.0f : 0.0f;
        templates.push_back(opt);
    }

    for (std::size_t i = 0; i < optionsPerDataset(); ++i) {
        Option opt = templates[rng.nextBelow(templates.size())];
        // Tiny per-quote jitter: PARSEC's input files repeat a small
        // set of distinct option lines nearly verbatim.
        opt.spot *= static_cast<float>(1.0 + rng.normal(0.0, 0.002));
        opt.volatility = static_cast<float>(std::clamp(
            opt.volatility * (1.0 + rng.normal(0.0, 0.004)), 0.12,
            0.55));
        dataset->options.push_back(opt);
    }
    return dataset;
}

InvocationTrace
Blackscholes::trace(const Dataset &dataset) const
{
    const auto &ds = dynamic_cast<const BlackscholesDataset &>(dataset);
    InvocationTrace trace(6, 1);
    for (const Option &opt : ds.options) {
        const Vec input = {opt.spot, opt.strike, opt.rate,
                           opt.volatility, opt.time, opt.type};
        const float price = priceOption<float>(
            opt.spot, opt.strike, opt.rate, opt.volatility, opt.time,
            opt.type);
        trace.append(input, {price});
    }
    return trace;
}

FinalOutput
Blackscholes::recompose(const Dataset &, const InvocationTrace &trace,
                        const std::vector<std::uint8_t> &useAccel) const
{
    MITHRA_EXPECTS(useAccel.size() == trace.count(),
                   "decision vector size mismatch");
    FinalOutput out;
    out.elements.reserve(trace.count());
    for (std::size_t i = 0; i < trace.count(); ++i) {
        const auto chosen = useAccel[i] ? trace.approxOutput(i)
                                        : trace.preciseOutput(i);
        out.elements.push_back(chosen[0]);
    }
    return out;
}

BenchmarkCosts
Blackscholes::measureCosts() const
{
    using sim::Counted;

    const auto dataset = makeDataset(0x5eedc057);
    const auto &ds = dynamic_cast<const BlackscholesDataset &>(*dataset);
    const std::size_t sample = std::min<std::size_t>(128,
                                                     ds.options.size());

    BenchmarkCosts costs;
    {
        sim::ScopedOpCount scope;
        for (std::size_t i = 0; i < sample; ++i) {
            const Option &opt = ds.options[i];
            volatile float sink = priceOption<Counted<float>>(
                opt.spot, opt.strike, opt.rate, opt.volatility, opt.time,
                opt.type).value();
            (void)sink;
        }
        costs.targetOpsPerInvocation =
            scope.counts().scaled(1.0 / static_cast<double>(sample));
    }

    // Non-target region: the driver loop loads each option's six
    // fields, stores the price and advances the loop.
    sim::OpCounts perOption;
    perOption.memory = 7;
    perOption.addSub = 2;
    perOption.compare = 1;
    costs.otherOpsPerDataset = perOption.scaled(
        static_cast<double>(optionsPerDataset()));
    return costs;
}

Vec
Blackscholes::targetFunction(const Vec &input) const
{
    MITHRA_EXPECTS(input.size() == 6,
                   "blackscholes takes 6 inputs, got ", input.size());
    return {priceOption<float>(input[0], input[1], input[2], input[3],
                               input[4], input[5])};
}

} // namespace mithra::axbench
