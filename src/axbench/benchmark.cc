#include "axbench/benchmark.hh"

#include <atomic>
#include <cmath>
#include <functional>

#include "common/contracts.hh"

namespace mithra::axbench
{

namespace
{

std::uint64_t
nextTraceId()
{
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

InvocationTrace::InvocationTrace(std::size_t inputWidth,
                                 std::size_t outputWidth)
    : inWidth(inputWidth), outWidth(outputWidth), uniqueId(nextTraceId())
{
    MITHRA_ASSERT(inWidth > 0 && outWidth > 0,
                  "trace needs nonzero vector widths");
}

void
InvocationTrace::append(const Vec &input, const Vec &preciseOut)
{
    MITHRA_ASSERT(input.size() == inWidth, "trace input width mismatch");
    MITHRA_ASSERT(preciseOut.size() == outWidth,
                  "trace output width mismatch");
    inputs.insert(inputs.end(), input.begin(), input.end());
    preciseOuts.insert(preciseOuts.end(), preciseOut.begin(),
                       preciseOut.end());
    ++numInvocations;
}

template <typename Invoke>
void
InvocationTrace::attachWith(Invoke &&invoke)
{
    approxOuts.resize(preciseOuts.size());
    Vec input(inWidth);
    for (std::size_t i = 0; i < numInvocations; ++i) {
        const auto in = this->input(i);
        std::copy(in.begin(), in.end(), input.begin());
        const Vec out = invoke(input);
        MITHRA_ASSERT(out.size() == outWidth,
                      "accelerator output width mismatch");
        std::copy(out.begin(), out.end(),
                  approxOuts.begin()
                      + static_cast<std::ptrdiff_t>(i * outWidth));
    }
    approximated = true;
    localErrors.resize(numInvocations);
    for (std::size_t i = 0; i < numInvocations; ++i)
        localErrors[i] = computeError(i);
}

void
InvocationTrace::attachApproximations(const npu::Approximator &accel)
{
    attachWith([&](const Vec &input) { return accel.invoke(input); });
}

void
InvocationTrace::attachApproximations(const Accelerator &accel)
{
    attachWith([&](const Vec &input) { return accel.invoke(input); });
}

void
InvocationTrace::appendWithApprox(const Vec &input, const Vec &preciseOut,
                                  const Vec &approxOut)
{
    MITHRA_ASSERT(approxOut.size() == outWidth,
                  "trace approx width mismatch");
    MITHRA_ASSERT(approxOuts.size() == numInvocations * outWidth,
                  "cannot mix appendWithApprox with plain append");
    append(input, preciseOut);
    approxOuts.insert(approxOuts.end(), approxOut.begin(),
                      approxOut.end());
    approximated = true;
    localErrors.push_back(computeError(numInvocations - 1));
}

std::span<const float>
InvocationTrace::input(std::size_t i) const
{
    MITHRA_ASSERT(i < numInvocations, "trace index out of range: ", i);
    return {inputs.data() + i * inWidth, inWidth};
}

std::span<const float>
InvocationTrace::preciseOutput(std::size_t i) const
{
    MITHRA_ASSERT(i < numInvocations, "trace index out of range: ", i);
    return {preciseOuts.data() + i * outWidth, outWidth};
}

std::span<const float>
InvocationTrace::approxOutput(std::size_t i) const
{
    MITHRA_ASSERT(approximated, "no approximations attached yet");
    MITHRA_ASSERT(i < numInvocations, "trace index out of range: ", i);
    return {approxOuts.data() + i * outWidth, outWidth};
}

Vec
InvocationTrace::inputVec(std::size_t i) const
{
    const auto span = input(i);
    return Vec(span.begin(), span.end());
}

float
InvocationTrace::computeError(std::size_t i) const
{
    const auto precise = preciseOutput(i);
    const auto approx = approxOutput(i);
    float worst = 0.0f;
    for (std::size_t o = 0; o < outWidth; ++o)
        worst = std::max(worst, std::fabs(precise[o] - approx[o]));
    return worst;
}

float
InvocationTrace::maxAbsError(std::size_t i) const
{
    MITHRA_ASSERT(approximated, "no approximations attached yet");
    MITHRA_ASSERT(i < numInvocations, "trace index out of range: ", i);
    return localErrors[i];
}

std::span<const float>
InvocationTrace::maxAbsErrors() const
{
    MITHRA_ASSERT(approximated, "no approximations attached yet");
    return localErrors;
}

npu::TrainerOptions
Benchmark::npuTrainerOptions() const
{
    return npu::TrainerOptions{};
}

double
Benchmark::qualityLoss(const FinalOutput &reference,
                       const FinalOutput &candidate) const
{
    // Custom metrics must override; the free function rejects them.
    return axbench::qualityLoss(metric(), reference, candidate);
}

std::string
Benchmark::metricLabel() const
{
    return metricName(metric());
}

std::unique_ptr<Accelerator>
Benchmark::makeAccelerator() const
{
    return nullptr; // built-in NPU
}

FinalOutput
Benchmark::preciseOutput(const Dataset &dataset,
                         const InvocationTrace &trace) const
{
    return recompose(dataset, trace,
                     std::vector<std::uint8_t>(trace.count(), 0));
}

FinalOutput
Benchmark::approxOutput(const Dataset &dataset,
                        const InvocationTrace &trace) const
{
    return recompose(dataset, trace,
                     std::vector<std::uint8_t>(trace.count(), 1));
}

namespace
{

std::uint64_t
seedFor(const std::string &benchmark, std::size_t index,
        std::uint64_t salt)
{
    const std::uint64_t nameHash = std::hash<std::string>{}(benchmark);
    return nameHash ^ salt ^ (0x9e3779b97f4a7c15ULL * (index + 1));
}

} // namespace

std::uint64_t
compileSeed(const std::string &benchmark, std::size_t index)
{
    return seedFor(benchmark, index, 0xc0de5eedULL);
}

std::uint64_t
validationSeed(const std::string &benchmark, std::size_t index)
{
    return seedFor(benchmark, index, 0x7e57da7aULL << 16);
}

} // namespace mithra::axbench
