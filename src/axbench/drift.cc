#include "axbench/drift.hh"

#include <cmath>
#include <cstdint>

#include "common/contracts.hh"
#include "common/rng.hh"
#include "telemetry/telemetry.hh"

namespace mithra::axbench
{

namespace
{

/**
 * Fixed pseudo-random sign pattern for DriftSpec::scrambleSigns.
 * Uses a middle output bit: over consecutive dimension indices the
 * generator's low bit alternates almost perfectly, which would
 * reproduce exactly the checkerboard this pattern exists to avoid.
 */
bool
shiftSignIsNegative(std::size_t dimension)
{
    std::uint64_t state =
        0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(dimension) + 1);
    return (splitMix64(state) >> 24 & 1) != 0;
}

} // namespace

InputMoments
measureInputMoments(const InvocationTrace &trace)
{
    MITHRA_EXPECTS(trace.count() > 0, "cannot measure an empty trace");
    const std::size_t width = trace.inputWidth();
    const auto count = static_cast<double>(trace.count());

    InputMoments moments;
    moments.mean.assign(width, 0.0);
    moments.stddev.assign(width, 0.0);

    for (std::size_t i = 0; i < trace.count(); ++i) {
        const auto input = trace.input(i);
        for (std::size_t d = 0; d < width; ++d)
            moments.mean[d] += static_cast<double>(input[d]);
    }
    for (std::size_t d = 0; d < width; ++d)
        moments.mean[d] /= count;

    for (std::size_t i = 0; i < trace.count(); ++i) {
        const auto input = trace.input(i);
        for (std::size_t d = 0; d < width; ++d) {
            const double delta =
                static_cast<double>(input[d]) - moments.mean[d];
            moments.stddev[d] += delta * delta;
        }
    }
    for (std::size_t d = 0; d < width; ++d)
        moments.stddev[d] = std::sqrt(moments.stddev[d] / count);

    return moments;
}

InvocationTrace
driftTrace(const Benchmark &bench, const npu::Approximator &accel,
           const InvocationTrace &source, const InputMoments &moments,
           const DriftSpec &spec)
{
    MITHRA_SPAN("axbench.drift.trace");
    MITHRA_EXPECTS(moments.width() == source.inputWidth(),
                   "moments width ", moments.width(),
                   " does not match trace input width ",
                   source.inputWidth());
    MITHRA_EXPECTS(spec.spread > 0.0,
                   "spread must be positive, got ", spec.spread);

    InvocationTrace drifted(source.inputWidth(), source.outputWidth());
    Vec input(source.inputWidth());
    for (std::size_t i = 0; i < source.count(); ++i) {
        const auto raw = source.input(i);
        for (std::size_t d = 0; d < input.size(); ++d) {
            const double sigma = moments.stddev[d];
            if (sigma == 0.0) {
                // A constant dimension has no scale to drift by.
                input[d] = raw[d];
                continue;
            }
            const double sign =
                spec.scrambleSigns && shiftSignIsNegative(d) ? -1.0
                                                             : 1.0;
            const double centered =
                static_cast<double>(raw[d]) - moments.mean[d];
            input[d] = static_cast<float>(
                moments.mean[d] + spec.spread * centered
                + sign * spec.shiftSigma * sigma);
        }
        drifted.append(input, bench.targetFunction(input));
    }
    drifted.attachApproximations(accel);
    return drifted;
}

} // namespace mithra::axbench
