#include "axbench/sobel.hh"

#include <algorithm>
#include <cmath>

#include "common/contracts.hh"
#include "common/scale.hh"

namespace mithra::axbench
{

namespace
{

using std::sqrt;

struct SobelDataset final : Dataset
{
    Image image{1, 1};
};

/**
 * The safe-to-approximate target function: gradient magnitude of one
 * 3x3 window. Window values and the result are in [0, 1].
 */
template <typename T>
T
sobelWindow(const T (&w)[9])
{
    // Horizontal Sobel kernel.
    T gx = w[2] - w[0]
        + T(2.0f) * (w[5] - w[3])
        + w[8] - w[6];
    // Vertical Sobel kernel.
    T gy = w[6] - w[0]
        + T(2.0f) * (w[7] - w[1])
        + w[8] - w[2];

    T magnitude = sqrt(gx * gx + gy * gy) / T(5.65685424949238f);
    if (magnitude > T(1.0f))
        magnitude = T(1.0f);
    return magnitude;
}

} // namespace

std::size_t
Sobel::imageEdge()
{
    // Area scales with MITHRA_SCALE; the edge scales with its root.
    const double scale = experimentScale();
    const double edge = 128.0 * std::sqrt(scale);
    return std::max<std::size_t>(16, static_cast<std::size_t>(edge));
}

npu::TrainerOptions
Sobel::npuTrainerOptions() const
{
    npu::TrainerOptions options;
    options.epochs = 30;
    options.learningRate = 0.3f;
    options.seed = 0x50be1;
    return options;
}

std::unique_ptr<Dataset>
Sobel::makeDataset(std::uint64_t seed) const
{
    auto dataset = std::make_unique<SobelDataset>();
    SceneParams params;
    params.width = imageEdge();
    params.height = imageEdge();
    // Busier scenes than jpeg's: edge detection is judged on texture.
    params.maxShapes = 12;
    params.noiseStddev = 9.0;
    dataset->image = generateScene(seed, params);
    return dataset;
}

InvocationTrace
Sobel::trace(const Dataset &dataset) const
{
    const auto &ds = dynamic_cast<const SobelDataset &>(dataset);
    const Image &img = ds.image;
    InvocationTrace trace(9, 1);

    Vec input(9);
    for (std::size_t y = 0; y < img.height(); ++y) {
        for (std::size_t x = 0; x < img.width(); ++x) {
            float window[9];
            std::size_t k = 0;
            for (long dy = -1; dy <= 1; ++dy) {
                for (long dx = -1; dx <= 1; ++dx) {
                    window[k] = static_cast<float>(
                        img.atClamped(static_cast<long>(x) + dx,
                                      static_cast<long>(y) + dy)) / 255.0f;
                    input[k] = window[k];
                    ++k;
                }
            }
            const float magnitude = sobelWindow<float>(window);
            trace.append(input, {magnitude});
        }
    }
    return trace;
}

FinalOutput
Sobel::recompose(const Dataset &, const InvocationTrace &trace,
                 const std::vector<std::uint8_t> &useAccel) const
{
    MITHRA_EXPECTS(useAccel.size() == trace.count(),
                   "decision vector size mismatch");
    FinalOutput out;
    out.elements.reserve(trace.count());
    for (std::size_t i = 0; i < trace.count(); ++i) {
        const auto chosen = useAccel[i] ? trace.approxOutput(i)
                                        : trace.preciseOutput(i);
        const float pixel =
            std::clamp(chosen[0], 0.0f, 1.0f) * 255.0f;
        out.elements.push_back(pixel);
    }
    return out;
}

BenchmarkCosts
Sobel::measureCosts() const
{
    using sim::Counted;

    const auto dataset = makeDataset(0x5eed50b);
    const auto &ds = dynamic_cast<const SobelDataset &>(*dataset);
    const Image &img = ds.image;
    const std::size_t sample = std::min<std::size_t>(128,
        img.width() * img.height());

    BenchmarkCosts costs;
    {
        sim::ScopedOpCount scope;
        for (std::size_t i = 0; i < sample; ++i) {
            const std::size_t x = 1 + i % (img.width() - 2);
            const std::size_t y = 1 + (i / img.width()) % (img.height()
                                                           - 2);
            Counted<float> window[9];
            std::size_t k = 0;
            for (long dy = -1; dy <= 1; ++dy) {
                for (long dx = -1; dx <= 1; ++dx) {
                    window[k++] = Counted<float>(static_cast<float>(
                        img.atClamped(static_cast<long>(x) + dx,
                                      static_cast<long>(y) + dy))
                        / 255.0f);
                }
            }
            // The window gather is part of the target function: nine
            // loads plus the normalization divide per element.
            sim::countMemoryOps(9);
            sim::opTally().div += 9;
            volatile float sink =
                sobelWindow<Counted<float>>(window).value();
            (void)sink;
        }
        costs.targetOpsPerInvocation =
            scope.counts().scaled(1.0 / static_cast<double>(sample));
    }

    // Driver: store the output pixel, advance the scan loops.
    sim::OpCounts perPixel;
    perPixel.memory = 1;
    perPixel.addSub = 2;
    perPixel.compare = 2;
    costs.otherOpsPerDataset = perPixel.scaled(
        static_cast<double>(img.width() * img.height()));
    return costs;
}

Vec
Sobel::targetFunction(const Vec &input) const
{
    MITHRA_EXPECTS(input.size() == 9,
                   "sobel takes a 3x3 window (9 inputs), got ",
                   input.size());
    float window[9];
    for (std::size_t i = 0; i < 9; ++i)
        window[i] = input[i];
    return {sobelWindow<float>(window)};
}

} // namespace mithra::axbench
