#include "axbench/fft.hh"

#include <cmath>
#include <numbers>

#include "common/contracts.hh"
#include "common/rng.hh"
#include "common/scale.hh"

namespace mithra::axbench
{

namespace
{

using std::cos;
using std::sin;

struct FftDataset final : Dataset
{
    /** Real input signal, transformSize() samples. */
    std::vector<float> signal;
};

/**
 * The safe-to-approximate target function: one twiddle factor.
 * Angles are in [-pi, 0] for the forward transform.
 */
template <typename T>
void
twiddle(T angle, T &re, T &im)
{
    re = cos(angle);
    im = sin(angle);
}

/** Bit-reversal permutation of the signal into the work buffers. */
void
bitReverseLoad(const std::vector<float> &signal, std::vector<float> &re,
               std::vector<float> &im)
{
    const std::size_t n = signal.size();
    unsigned bits = 0;
    while ((std::size_t{1} << bits) < n)
        ++bits;
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t rev = 0;
        for (unsigned b = 0; b < bits; ++b)
            rev |= ((i >> b) & 1) << (bits - 1 - b);
        re[rev] = signal[i];
        im[rev] = 0.0f;
    }
}

/**
 * Iterative radix-2 FFT. Matching the AxBench extraction, the twiddle
 * function is invoked for *every butterfly* (no memoization across the
 * k loop — the extracted hot function recomputes sin/cos per call), so
 * the provider runs (n/2) log2 n times in deterministic order.
 */
template <typename TwiddleProvider>
void
runFft(std::vector<float> &re, std::vector<float> &im,
       TwiddleProvider &&provider)
{
    const std::size_t n = re.size();
    for (std::size_t m = 2; m <= n; m <<= 1) {
        const std::size_t half = m / 2;
        for (std::size_t j = 0; j < half; ++j) {
            const float angle = -2.0f
                * static_cast<float>(std::numbers::pi)
                * static_cast<float>(j) / static_cast<float>(m);
            for (std::size_t k = j; k < n; k += m) {
                float wr, wi;
                provider(angle, wr, wi);
                const std::size_t k2 = k + half;
                const float tr = wr * re[k2] - wi * im[k2];
                const float ti = wr * im[k2] + wi * re[k2];
                re[k2] = re[k] - tr;
                im[k2] = im[k] - ti;
                re[k] += tr;
                im[k] += ti;
            }
        }
    }
}

} // namespace

std::size_t
Fft::transformSize()
{
    // Keep a power of two; scale the exponent with MITHRA_SCALE.
    std::size_t n = 2048;
    double scale = experimentScale();
    while (scale < 0.5 && n > 256) {
        n /= 2;
        scale *= 2.0;
    }
    return n;
}

npu::TrainerOptions
Fft::npuTrainerOptions() const
{
    npu::TrainerOptions options;
    options.epochs = 1000;
    options.learningRate = 0.8f;
    options.lrDecay = 0.997f;
    options.batchSize = 8;
    options.seed = 0xff7;
    return options;
}

std::unique_ptr<Dataset>
Fft::makeDataset(std::uint64_t seed) const
{
    Rng rng(seed);
    auto dataset = std::make_unique<FftDataset>();
    const std::size_t n = transformSize();
    dataset->signal.resize(n);

    // A band-limited multi-tone signal with noise; tone count,
    // frequencies and SNR vary per dataset.
    const std::size_t tones = 1 + rng.nextBelow(6);
    std::vector<double> freqs, amps, phases;
    for (std::size_t t = 0; t < tones; ++t) {
        freqs.push_back(rng.uniform(1.0, static_cast<double>(n) / 4.0));
        amps.push_back(rng.uniform(0.2, 1.5));
        phases.push_back(rng.uniform(0.0, 2.0 * std::numbers::pi));
    }
    const double noise = rng.uniform(0.01, 0.2);

    for (std::size_t i = 0; i < n; ++i) {
        double v = 0.0;
        for (std::size_t t = 0; t < tones; ++t) {
            v += amps[t]
                * std::sin(2.0 * std::numbers::pi * freqs[t]
                               * static_cast<double>(i)
                               / static_cast<double>(n)
                           + phases[t]);
        }
        v += rng.normal(0.0, noise);
        dataset->signal[i] = static_cast<float>(v);
    }
    return dataset;
}

InvocationTrace
Fft::trace(const Dataset &dataset) const
{
    const auto &ds = dynamic_cast<const FftDataset &>(dataset);
    const std::size_t n = ds.signal.size();
    InvocationTrace trace(1, 2);

    std::vector<float> re(n), im(n);
    bitReverseLoad(ds.signal, re, im);
    runFft(re, im, [&](float angle, float &wr, float &wi) {
        twiddle<float>(angle, wr, wi);
        trace.append({angle}, {wr, wi});
    });
    return trace;
}

FinalOutput
Fft::recompose(const Dataset &dataset, const InvocationTrace &trace,
               const std::vector<std::uint8_t> &useAccel) const
{
    MITHRA_EXPECTS(useAccel.size() == trace.count(),
                   "decision vector size mismatch");
    const auto &ds = dynamic_cast<const FftDataset &>(dataset);
    const std::size_t n = ds.signal.size();

    std::vector<float> re(n), im(n);
    bitReverseLoad(ds.signal, re, im);

    std::size_t invocation = 0;
    runFft(re, im, [&](float, float &wr, float &wi) {
        MITHRA_ASSERT(invocation < trace.count(),
                      "twiddle stream longer than trace");
        const auto chosen = useAccel[invocation]
            ? trace.approxOutput(invocation)
            : trace.preciseOutput(invocation);
        wr = chosen[0];
        wi = chosen[1];
        ++invocation;
    });
    MITHRA_ASSERT(invocation == trace.count(),
                  "twiddle stream shorter than trace");

    FinalOutput out;
    out.elements.reserve(2 * n);
    for (std::size_t i = 0; i < n; ++i) {
        out.elements.push_back(re[i]);
        out.elements.push_back(im[i]);
    }
    return out;
}

BenchmarkCosts
Fft::measureCosts() const
{
    using sim::Counted;

    BenchmarkCosts costs;
    {
        // The target function is tiny and input independent in cost.
        sim::ScopedOpCount scope;
        constexpr std::size_t sample = 64;
        for (std::size_t i = 0; i < sample; ++i) {
            const float angle = -3.14159f
                * static_cast<float>(i) / static_cast<float>(sample);
            Counted<float> re, im;
            twiddle<Counted<float>>(Counted<float>(angle), re, im);
            volatile float sink = re.value() + im.value();
            (void)sink;
        }
        costs.targetOpsPerInvocation =
            scope.counts().scaled(1.0 / static_cast<double>(sample));
    }

    // Non-target region: the butterflies themselves — the FFT performs
    // (n/2) log2 n butterflies of 4 mul + 6 add + ~8 memory each (the
    // twiddle itself is the target function, invoked per butterfly).
    const std::size_t n = transformSize();
    unsigned stages = 0;
    while ((std::size_t{1} << stages) < n)
        ++stages;
    const double butterflies =
        static_cast<double>(n / 2) * static_cast<double>(stages);

    sim::OpCounts perButterfly;
    perButterfly.mul = 4;
    perButterfly.addSub = 6;
    perButterfly.memory = 8;
    perButterfly.compare = 1;
    costs.otherOpsPerDataset = perButterfly.scaled(butterflies);

    // Plus the bit-reversal load: one load/store pair per sample.
    sim::OpCounts reversal;
    reversal.memory = 2 * n;
    reversal.addSub = 2 * n;
    costs.otherOpsPerDataset += reversal;
    return costs;
}

Vec
Fft::targetFunction(const Vec &input) const
{
    MITHRA_EXPECTS(input.size() == 1,
                   "fft takes 1 input (the twiddle angle), got ",
                   input.size());
    float re, im;
    twiddle<float>(input[0], re, im);
    return {re, im};
}

} // namespace mithra::axbench
