/**
 * @file
 * The AxBench-style benchmark interface.
 *
 * Each benchmark exposes its safe-to-approximate function as a stream
 * of accelerator invocations. The key structure is the
 * InvocationTrace: for one dataset it caches every invocation's input
 * vector, the precise output vector, and (once an accelerator is
 * attached) the approximate output vector. The statistical optimizer
 * can then re-evaluate the final output quality for any error
 * threshold by *recomposing* the application output from the cached
 * per-invocation outputs — without re-running the kernels.
 */

#pragma once

#include <memory>
#include <span>
#include <string>

#include "axbench/accelerator.hh"
#include "axbench/quality.hh"
#include "common/vec.hh"
#include "npu/approximator.hh"
#include "npu/mlp.hh"
#include "npu/trainer.hh"
#include "sim/opcount.hh"

namespace mithra::axbench
{

/** Opaque per-benchmark dataset; concrete types live in each .cc. */
class Dataset
{
  public:
    virtual ~Dataset() = default;
};

/** Cached invocation stream of one dataset (flat storage). */
class InvocationTrace
{
  public:
    InvocationTrace(std::size_t inputWidth, std::size_t outputWidth);

    std::size_t count() const { return numInvocations; }
    std::size_t inputWidth() const { return inWidth; }
    std::size_t outputWidth() const { return outWidth; }

    /**
     * Process-unique identity of this trace. Benchmarks with expensive
     * recompose steps (jpeg's inverse DCT) key internal caches on it;
     * unlike the object address it is never reused.
     */
    std::uint64_t id() const { return uniqueId; }

    /** Append one invocation (precise output known, approx later). */
    void append(const Vec &input, const Vec &preciseOut);

    /** Fill approximate outputs by invoking the accelerator. */
    void attachApproximations(const npu::Approximator &accel);

    /** Same, for a custom accelerator backend (plugin workloads). */
    void attachApproximations(const Accelerator &accel);

    /**
     * Append one invocation with a known approximate output (tools and
     * tests that construct traces without an accelerator).
     */
    void appendWithApprox(const Vec &input, const Vec &preciseOut,
                          const Vec &approxOut);

    /** True once attachApproximations() has run. */
    bool hasApproximations() const { return approximated; }

    std::span<const float> input(std::size_t i) const;
    std::span<const float> preciseOutput(std::size_t i) const;
    std::span<const float> approxOutput(std::size_t i) const;

    /** Copy of one input as a Vec (for classifier APIs). */
    Vec inputVec(std::size_t i) const;

    /**
     * The whole input stream as one flat row-major buffer of
     * count() * inputWidth() floats (for batch classifier APIs).
     */
    std::span<const float> inputsFlat() const { return inputs; }

    /**
     * Largest |precise - approx| across the output vector of
     * invocation i — the accelerator's local error (paper Eq. 1).
     * Precomputed when the approximations attach, so this is one load
     * on the runtime decision loop's accounting path.
     */
    float maxAbsError(std::size_t i) const;

    /** All count() local errors as one flat buffer (batch loops). */
    std::span<const float> maxAbsErrors() const;

  private:
    float computeError(std::size_t i) const;

    template <typename Invoke>
    void attachWith(Invoke &&invoke);

    std::size_t inWidth;
    std::size_t outWidth;
    std::uint64_t uniqueId;
    std::size_t numInvocations = 0;
    bool approximated = false;
    std::vector<float> inputs;
    std::vector<float> preciseOuts;
    std::vector<float> approxOuts;
    /** localErrors[i] = max-abs error of invocation i (cached). */
    std::vector<float> localErrors;
};

/** Measured cost profile of one benchmark (op-count driven). */
struct BenchmarkCosts
{
    /** Mean dynamic ops of one precise target-function invocation. */
    sim::OpCounts targetOpsPerInvocation;
    /** Dynamic ops of the non-target region per dataset. */
    sim::OpCounts otherOpsPerDataset;
};

/** Abstract AxBench benchmark. */
class Benchmark
{
  public:
    virtual ~Benchmark() = default;

    /** Short name, e.g. "blackscholes". */
    virtual std::string name() const = 0;

    /** Application domain as listed in Table I. */
    virtual std::string domain() const = 0;

    /** Quality metric used for final outputs. */
    virtual QualityMetric metric() const = 0;

    /**
     * Final quality loss of `candidate` against `reference`, percent
     * (larger is worse, 0 = identical). The default delegates to the
     * free qualityLoss() over metric(); benchmarks with
     * QualityMetric::Custom must override (plugin workloads route
     * this to their C quality_loss hook). Every consumer of final
     * quality — threshold optimizer, calibration, runtime evaluator —
     * scores through this seam.
     */
    virtual double qualityLoss(const FinalOutput &reference,
                               const FinalOutput &candidate) const;

    /**
     * Human-readable metric label for tables and reports. Defaults to
     * metricName(metric()); custom-metric benchmarks override it with
     * their own label.
     */
    virtual std::string metricLabel() const;

    /** NPU topology from Table I, e.g. {6, 8, 3, 1}. */
    virtual npu::Topology npuTopology() const = 0;

    /**
     * Training hyper-parameters for the NPU. Tuned per benchmark so
     * the full-approximation error lands in the paper's 6%-18% band.
     */
    virtual npu::TrainerOptions npuTrainerOptions() const;

    /**
     * Quantizer code width for the table-based classifier — a
     * compile-time decision (paper §IV-A.1: the MISR configuration is
     * decided at compile time per application). Workloads with
     * clustered inputs want fine codes (clusters map to few distinct
     * patterns); diffuse workloads want coarse codes so similar
     * inputs share table entries. 0 defers to the width-based policy.
     */
    virtual unsigned tableQuantizerBits() const { return 0; }

    /** Create one dataset deterministically from a seed. */
    virtual std::unique_ptr<Dataset> makeDataset(
        std::uint64_t seed) const = 0;

    /**
     * Run the application once, recording every target-function
     * invocation (inputs + precise outputs) in order.
     */
    virtual InvocationTrace trace(const Dataset &dataset) const = 0;

    /**
     * Rebuild the final application output, taking invocation i's
     * output from the trace's approx outputs when useAccel[i] != 0 and
     * from the precise outputs otherwise.
     */
    virtual FinalOutput recompose(
        const Dataset &dataset, const InvocationTrace &trace,
        const std::vector<std::uint8_t> &useAccel) const = 0;

    /**
     * Evaluate the safe-to-approximate target function on one raw
     * input vector — the same kernel trace() invokes, exposed point-
     * wise. Lets harnesses obtain ground truth for inputs that never
     * appeared in any dataset: the drift injector shifts cached
     * inputs off the compile-time distribution and needs fresh
     * precise outputs for them.
     */
    virtual Vec targetFunction(const Vec &input) const = 0;

    /** Convenience: the all-precise final output. */
    FinalOutput preciseOutput(const Dataset &dataset,
                              const InvocationTrace &trace) const;

    /** Convenience: the all-approximate final output. */
    FinalOutput approxOutput(const Dataset &dataset,
                             const InvocationTrace &trace) const;

    /**
     * Measure the benchmark's cost profile by running instrumented
     * kernels (sim::Counted) over a representative dataset.
     */
    virtual BenchmarkCosts measureCosts() const = 0;

    /**
     * Custom accelerator backend, or nullptr for the built-in NPU
     * (the default). When non-null the pipeline trains and costs the
     * returned accelerator instead of the NPU, and the runtime
     * invokes it for every accelerated invocation.
     */
    virtual std::unique_ptr<Accelerator> makeAccelerator() const;
};

/** Seed layout: compile datasets and validation datasets never overlap. */
std::uint64_t compileSeed(const std::string &benchmark, std::size_t index);
std::uint64_t validationSeed(const std::string &benchmark,
                             std::size_t index);

} // namespace mithra::axbench

