#include "axbench/inversek2j.hh"

#include <algorithm>
#include <cmath>

#include "common/contracts.hh"
#include "common/rng.hh"
#include "common/scale.hh"

namespace mithra::axbench
{

namespace
{

using std::acos;
using std::atan2;
using std::cos;
using std::sin;
using std::sqrt;

struct InverseK2JDataset final : Dataset
{
    /** Flat (x, y) target coordinates. */
    std::vector<float> xs;
    std::vector<float> ys;
};

/**
 * The safe-to-approximate target function: closed-form inverse
 * kinematics of the 2-joint planar arm (elbow-down solution).
 */
template <typename T>
void
inverseK2J(T x, T y, T &theta1, T &theta2)
{
    const T len1 = T(InverseK2J::l1);
    const T len2 = T(InverseK2J::l2);

    const T dist2 = x * x + y * y;
    T cosTheta2 = (dist2 - len1 * len1 - len2 * len2)
        / (T(2.0f) * len1 * len2);
    // Clamp against numerical drift at the workspace boundary.
    if (cosTheta2 > T(1.0f))
        cosTheta2 = T(1.0f);
    if (cosTheta2 < T(-1.0f))
        cosTheta2 = T(-1.0f);

    theta2 = acos(cosTheta2);
    const T k1 = len1 + len2 * cos(theta2);
    const T k2 = len2 * sin(theta2);
    theta1 = atan2(y, x) - atan2(k2, k1);
}

} // namespace

std::size_t
InverseK2J::pointsPerDataset()
{
    return scaledCount(4096, 256);
}

void
InverseK2J::forward(float theta1, float theta2, float &x, float &y)
{
    x = l1 * std::cos(theta1) + l2 * std::cos(theta1 + theta2);
    y = l1 * std::sin(theta1) + l2 * std::sin(theta1 + theta2);
}

npu::TrainerOptions
InverseK2J::npuTrainerOptions() const
{
    npu::TrainerOptions options;
    options.epochs = 900;
    options.learningRate = 0.5f;
    options.lrDecay = 0.997f;
    options.batchSize = 8;
    options.seed = 0x1f2;
    return options;
}

std::unique_ptr<Dataset>
InverseK2J::makeDataset(std::uint64_t seed) const
{
    Rng rng(seed);
    auto dataset = std::make_unique<InverseK2JDataset>();
    dataset->xs.reserve(pointsPerDataset());
    dataset->ys.reserve(pointsPerDataset());

    // Each dataset is one trajectory workload: targets cluster around
    // a few waypoints (reachable by construction — sampled through
    // forward kinematics), emulating recorded robot motion.
    // Joint ranges stay inside the first-quadrant workspace, away
    // from the atan2 branch cut (a discontinuity no smooth NPU can
    // mimic and which real arm workloads avoid).
    const std::size_t waypoints = 2 + rng.nextBelow(4);
    std::vector<std::pair<double, double>> centers;
    for (std::size_t w = 0; w < waypoints; ++w) {
        centers.emplace_back(rng.uniform(0.2, 1.2),
                             rng.uniform(0.5, 2.2));
    }

    for (std::size_t i = 0; i < pointsPerDataset(); ++i) {
        const auto &center = centers[rng.nextBelow(centers.size())];
        const float theta1 = static_cast<float>(std::clamp(
            center.first + rng.normal(0.0, 0.2), 0.05, 1.45));
        const float theta2 = static_cast<float>(std::clamp(
            center.second + rng.normal(0.0, 0.4), 0.18, 2.8));
        float x, y;
        forward(theta1, theta2, x, y);
        dataset->xs.push_back(x);
        dataset->ys.push_back(y);
    }
    return dataset;
}

InvocationTrace
InverseK2J::trace(const Dataset &dataset) const
{
    const auto &ds = dynamic_cast<const InverseK2JDataset &>(dataset);
    InvocationTrace trace(2, 2);
    for (std::size_t i = 0; i < ds.xs.size(); ++i) {
        float theta1, theta2;
        inverseK2J<float>(ds.xs[i], ds.ys[i], theta1, theta2);
        trace.append({ds.xs[i], ds.ys[i]}, {theta1, theta2});
    }
    return trace;
}

FinalOutput
InverseK2J::recompose(const Dataset &, const InvocationTrace &trace,
                      const std::vector<std::uint8_t> &useAccel) const
{
    MITHRA_EXPECTS(useAccel.size() == trace.count(),
                   "decision vector size mismatch");
    FinalOutput out;
    out.elements.reserve(trace.count() * 2);
    for (std::size_t i = 0; i < trace.count(); ++i) {
        const auto chosen = useAccel[i] ? trace.approxOutput(i)
                                        : trace.preciseOutput(i);
        out.elements.push_back(chosen[0]);
        out.elements.push_back(chosen[1]);
    }
    return out;
}

BenchmarkCosts
InverseK2J::measureCosts() const
{
    using sim::Counted;

    const auto dataset = makeDataset(0x5eed1f2);
    const auto &ds = dynamic_cast<const InverseK2JDataset &>(*dataset);
    const std::size_t sample = std::min<std::size_t>(128, ds.xs.size());

    BenchmarkCosts costs;
    {
        sim::ScopedOpCount scope;
        for (std::size_t i = 0; i < sample; ++i) {
            Counted<float> theta1, theta2;
            inverseK2J<Counted<float>>(ds.xs[i], ds.ys[i], theta1, theta2);
            volatile float sink = theta1.value() + theta2.value();
            (void)sink;
        }
        costs.targetOpsPerInvocation =
            scope.counts().scaled(1.0 / static_cast<double>(sample));
    }

    // Driver loop: load (x, y), store the two angles, loop bookkeeping.
    sim::OpCounts perPoint;
    perPoint.memory = 4;
    perPoint.addSub = 2;
    perPoint.compare = 1;
    costs.otherOpsPerDataset =
        perPoint.scaled(static_cast<double>(pointsPerDataset()));
    return costs;
}

Vec
InverseK2J::targetFunction(const Vec &input) const
{
    MITHRA_EXPECTS(input.size() == 2,
                   "inversek2j takes 2 inputs (x, y), got ",
                   input.size());
    float theta1, theta2;
    inverseK2J<float>(input[0], input[1], theta1, theta2);
    return {theta1, theta2};
}

} // namespace mithra::axbench
