/**
 * @file
 * sobel — image processing (Sobel edge detector).
 *
 * The safe-to-approximate function maps a 3x3 pixel window (9 inputs,
 * normalized to [0, 1]) to the gradient magnitude of the center pixel
 * (1 output). NPU topology 9->8->1; quality metric is image diff
 * (paper Table I).
 */

#pragma once

#include "axbench/benchmark.hh"
#include "axbench/image.hh"

namespace mithra::axbench
{

class Sobel final : public Benchmark
{
  public:
    std::string name() const override { return "sobel"; }
    std::string domain() const override { return "Image Processing"; }
    QualityMetric metric() const override
    {
        return QualityMetric::ImageDiff;
    }
    npu::Topology npuTopology() const override { return {9, 8, 1}; }
    npu::TrainerOptions npuTrainerOptions() const override;
    unsigned tableQuantizerBits() const override { return 1; }

    std::unique_ptr<Dataset> makeDataset(std::uint64_t seed) const override;
    InvocationTrace trace(const Dataset &dataset) const override;
    FinalOutput recompose(
        const Dataset &dataset, const InvocationTrace &trace,
        const std::vector<std::uint8_t> &useAccel) const override;
    BenchmarkCosts measureCosts() const override;
    Vec targetFunction(const Vec &input) const override;

    /** Image edge length (paper: 512; default here: 128, scalable). */
    static std::size_t imageEdge();
};

} // namespace mithra::axbench

