#include "axbench/jpeg.hh"

#include <algorithm>
#include <cmath>

#include "axbench/jpeg_codec.hh"
#include "common/contracts.hh"
#include "common/scale.hh"

namespace mithra::axbench
{

namespace
{

struct JpegDataset final : Dataset
{
    Image image{8, 8};

    std::size_t blocksPerRow() const
    {
        return image.width() / jpeg::blockEdge;
    }
    std::size_t blockCount() const
    {
        return blocksPerRow() * (image.height() / jpeg::blockEdge);
    }
};

/** Gather one 8x8 block of pixels as floats. */
void
gatherBlock(const Image &img, std::size_t blockIndex,
            float (&pixels)[jpeg::blockSize])
{
    const std::size_t perRow = img.width() / jpeg::blockEdge;
    const std::size_t bx = (blockIndex % perRow) * jpeg::blockEdge;
    const std::size_t by = (blockIndex / perRow) * jpeg::blockEdge;
    for (std::size_t y = 0; y < jpeg::blockEdge; ++y)
        for (std::size_t x = 0; x < jpeg::blockEdge; ++x)
            pixels[y * jpeg::blockEdge + x] =
                static_cast<float>(img.at(bx + x, by + y));
}

} // namespace

std::size_t
Jpeg::imageEdge()
{
    const double scale = experimentScale();
    const double edge = 128.0 * std::sqrt(scale);
    // Round down to a multiple of the block edge, at least one block.
    const auto rounded = static_cast<std::size_t>(edge)
        / jpeg::blockEdge * jpeg::blockEdge;
    return std::max<std::size_t>(jpeg::blockEdge * 2, rounded);
}

npu::TrainerOptions
Jpeg::npuTrainerOptions() const
{
    npu::TrainerOptions options;
    options.epochs = 60;
    options.learningRate = 0.1f;
    options.batchSize = 32;
    options.seed = 0x9e6;
    return options;
}

std::unique_ptr<Dataset>
Jpeg::makeDataset(std::uint64_t seed) const
{
    auto dataset = std::make_unique<JpegDataset>();
    SceneParams params;
    params.width = imageEdge();
    params.height = imageEdge();
    dataset->image = generateScene(seed, params);
    return dataset;
}

InvocationTrace
Jpeg::trace(const Dataset &dataset) const
{
    const auto &ds = dynamic_cast<const JpegDataset &>(dataset);
    const auto table = jpeg::quantTable(quality);
    InvocationTrace trace(jpeg::blockSize, jpeg::blockSize);

    Vec input(jpeg::blockSize);
    Vec output(jpeg::blockSize);
    for (std::size_t b = 0; b < ds.blockCount(); ++b) {
        float pixels[jpeg::blockSize];
        gatherBlock(ds.image, b, pixels);

        float coeffs[jpeg::blockSize];
        jpeg::blockDctQuantize<float>(pixels, table, coeffs);

        for (std::size_t i = 0; i < jpeg::blockSize; ++i) {
            input[i] = pixels[i];
            output[i] = coeffs[i];
        }
        trace.append(input, output);
    }
    return trace;
}

namespace
{

/** Decode one variant of every block into a flat pixel buffer. */
void
decodeVariant(const InvocationTrace &trace, bool approx,
              const std::array<int, jpeg::blockSize> &table,
              std::vector<float> &pixels)
{
    pixels.resize(trace.count() * jpeg::blockSize);
    for (std::size_t b = 0; b < trace.count(); ++b) {
        const auto chosen = approx ? trace.approxOutput(b)
                                   : trace.preciseOutput(b);
        float coeffs[jpeg::blockSize];
        for (std::size_t i = 0; i < jpeg::blockSize; ++i) {
            // The entropy coder transmits integers; round whatever
            // the accelerator produced, exactly as the encoder would.
            coeffs[i] = std::nearbyint(chosen[i]);
        }
        float block[jpeg::blockSize];
        jpeg::blockDequantizeIdct(coeffs, table, block);
        std::copy(block, block + jpeg::blockSize,
                  pixels.begin()
                      + static_cast<std::ptrdiff_t>(b * jpeg::blockSize));
    }
}

} // namespace

FinalOutput
Jpeg::recompose(const Dataset &dataset, const InvocationTrace &trace,
                const std::vector<std::uint8_t> &useAccel) const
{
    MITHRA_EXPECTS(useAccel.size() == trace.count(),
                   "decision vector size mismatch");
    const auto &ds = dynamic_cast<const JpegDataset &>(dataset);
    const auto table = jpeg::quantTable(quality);
    const std::size_t perRow = ds.blocksPerRow();

    // Decode each variant at most once per trace (see DecodedBlocks).
    std::shared_ptr<DecodedBlocks> cache;
    {
        const std::lock_guard<std::mutex> lock(cacheMutex);
        if (decodeCache.size() > 600)
            decodeCache.clear();
        auto &slot = decodeCache[trace.id()];
        if (!slot)
            slot = std::make_shared<DecodedBlocks>();
        cache = slot;
    }
    const bool wantsApprox =
        std::any_of(useAccel.begin(), useAccel.end(),
                    [](std::uint8_t u) { return u != 0; });
    {
        const std::lock_guard<std::mutex> lock(cache->fill);
        if (cache->precisePixels.empty())
            decodeVariant(trace, false, table, cache->precisePixels);
        if (wantsApprox && !cache->hasApprox) {
            decodeVariant(trace, true, table, cache->approxPixels);
            cache->hasApprox = true;
        }
    }

    FinalOutput out;
    out.elements.assign(ds.image.width() * ds.image.height(), 0.0f);

    for (std::size_t b = 0; b < trace.count(); ++b) {
        const float *pixels = (useAccel[b] ? cache->approxPixels
                                           : cache->precisePixels)
                                  .data()
            + b * jpeg::blockSize;
        const std::size_t bx = (b % perRow) * jpeg::blockEdge;
        const std::size_t by = (b / perRow) * jpeg::blockEdge;
        for (std::size_t y = 0; y < jpeg::blockEdge; ++y) {
            for (std::size_t x = 0; x < jpeg::blockEdge; ++x) {
                out.elements[(by + y) * ds.image.width() + bx + x] =
                    pixels[y * jpeg::blockEdge + x];
            }
        }
    }
    return out;
}

BenchmarkCosts
Jpeg::measureCosts() const
{
    using sim::Counted;

    const auto dataset = makeDataset(0x5eed9e6);
    const auto &ds = dynamic_cast<const JpegDataset &>(*dataset);
    const auto table = jpeg::quantTable(quality);
    const std::size_t sample = std::min<std::size_t>(16, ds.blockCount());

    BenchmarkCosts costs;
    {
        sim::ScopedOpCount scope;
        for (std::size_t b = 0; b < sample; ++b) {
            float raw[jpeg::blockSize];
            gatherBlock(ds.image, b, raw);
            Counted<float> pixels[jpeg::blockSize];
            for (std::size_t i = 0; i < jpeg::blockSize; ++i)
                pixels[i] = Counted<float>(raw[i]);
            sim::countMemoryOps(jpeg::blockSize);

            Counted<float> coeffs[jpeg::blockSize];
            jpeg::blockDctQuantize<Counted<float>>(pixels, table, coeffs);
            volatile float sink = coeffs[0].value();
            (void)sink;
        }
        costs.targetOpsPerInvocation =
            scope.counts().scaled(1.0 / static_cast<double>(sample));
    }

    // Non-target region per block: zig-zag scan, run-length scan and
    // Huffman emission (~2 ops/coefficient), plus stream bookkeeping.
    sim::OpCounts perBlock;
    perBlock.memory = 2 * jpeg::blockSize;
    perBlock.addSub = 2 * jpeg::blockSize;
    perBlock.compare = jpeg::blockSize;
    costs.otherOpsPerDataset = perBlock.scaled(
        static_cast<double>(ds.blockCount()));
    return costs;
}

Vec
Jpeg::targetFunction(const Vec &input) const
{
    MITHRA_EXPECTS(input.size() == jpeg::blockSize,
                   "jpeg takes one 8x8 block (", jpeg::blockSize,
                   " inputs), got ", input.size());
    const auto table = jpeg::quantTable(quality);
    float pixels[jpeg::blockSize];
    for (std::size_t i = 0; i < jpeg::blockSize; ++i)
        pixels[i] = input[i];
    float coeffs[jpeg::blockSize];
    jpeg::blockDctQuantize<float>(pixels, table, coeffs);
    return Vec(coeffs, coeffs + jpeg::blockSize);
}

} // namespace mithra::axbench
