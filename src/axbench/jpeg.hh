/**
 * @file
 * jpeg — compression (baseline JPEG encoding).
 *
 * The safe-to-approximate function is the per-block DCT +
 * quantization: 64 pixels in, 64 quantized coefficients out, NPU
 * topology 64->16->64 (paper Table I). The rest of the codec
 * (zig-zag, Huffman entropy coding, the full decoder) is the precise
 * non-target region. Quality metric: image diff between the image
 * decoded from the precise encoding and the image decoded from the
 * (partially) approximated encoding.
 */

#pragma once

#include <memory>
#include <mutex>
// Keyed lookup cache only — never iterated, so hash order is
// harmless. mithra-lint: allow(no-unordered)
#include <unordered_map>

#include "axbench/benchmark.hh"
#include "axbench/image.hh"

namespace mithra::axbench
{

class Jpeg final : public Benchmark
{
  public:
    /** Encoder quality factor used throughout. */
    static constexpr int quality = 75;

    std::string name() const override { return "jpeg"; }
    std::string domain() const override { return "Compression"; }
    QualityMetric metric() const override
    {
        return QualityMetric::ImageDiff;
    }
    npu::Topology npuTopology() const override { return {64, 16, 64}; }
    npu::TrainerOptions npuTrainerOptions() const override;
    unsigned tableQuantizerBits() const override { return 1; }

    std::unique_ptr<Dataset> makeDataset(std::uint64_t seed) const override;
    InvocationTrace trace(const Dataset &dataset) const override;
    FinalOutput recompose(
        const Dataset &dataset, const InvocationTrace &trace,
        const std::vector<std::uint8_t> &useAccel) const override;
    BenchmarkCosts measureCosts() const override;
    Vec targetFunction(const Vec &input) const override;

    /** Image edge length (paper: 512; default here: 128, scalable). */
    static std::size_t imageEdge();

  private:
    /**
     * Inverse-DCT results per trace. The statistical optimizer calls
     * recompose() dozens of times per trace while searching for the
     * threshold; decoding each block's precise and approximate
     * coefficients once makes those calls cheap selections.
     *
     * recompose() runs concurrently (the optimizer evaluates compile
     * datasets in parallel), so entries are shared_ptrs handed out
     * under cacheMutex — a holder keeps its entry alive across a
     * concurrent eviction — and each entry's buffers are filled
     * exactly once under its own fill mutex, after which they are
     * immutable and read lock-free.
     */
    struct DecodedBlocks
    {
        std::mutex fill;
        std::vector<float> precisePixels;
        std::vector<float> approxPixels;
        bool hasApprox = false;
    };
    mutable std::mutex cacheMutex;
    // Inserted and looked up by trace key, never iterated; hash order
    // cannot leak into results. mithra-lint: allow(no-unordered)
    mutable std::unordered_map<std::uint64_t,
                               std::shared_ptr<DecodedBlocks>>
        decodeCache;
};

} // namespace mithra::axbench

