/**
 * @file
 * The accelerator seam: what the compile pipeline and the runtime
 * need from *any* approximate accelerator.
 *
 * The paper's accelerator is the NPU (src/npu), and the built-in
 * benchmarks keep using it directly through the concrete
 * npu::Approximator member of CompiledWorkload. Plugin workloads
 * (include/mithra_plugin.h) may instead name a custom backend; the
 * host adapts its C function table behind this interface, and the
 * pipeline/runtime drive it through the same offline workflow:
 * train once on sampled (input, output) pairs of the precise
 * function, then invoke per accelerated invocation.
 *
 * Implementations must be deterministic (training randomness derives
 * from the seed argument only) and invoke() must be safe to call
 * concurrently once trained — trace attachment runs under
 * parallelFor.
 */

#pragma once

#include <cstdint>
#include <string>

#include "common/vec.hh"

namespace mithra::axbench
{

/** Modeled hardware cost of one accelerator invocation. */
struct AcceleratorCost
{
    std::uint64_t cycles = 0;
    double picoJoules = 0.0;
};

/** Abstract approximate accelerator (the narrow virtual seam the C
 *  backend tables are adapted into). */
class Accelerator
{
  public:
    virtual ~Accelerator() = default;

    /** Short label for logs and reports, e.g. "npu", "lut16". */
    virtual std::string kind() const = 0;

    /**
     * Train to mimic the precise function on row-aligned sample
     * pairs; all randomness must derive from `seed`. Returns the
     * final training MSE in normalized units.
     */
    virtual double trainToMimic(const VecBatch &inputs,
                                const VecBatch &outputs,
                                std::uint64_t seed) = 0;

    /** True once trainToMimic() has run. */
    virtual bool trained() const = 0;

    /** One accelerated invocation (pure; thread-safe once trained). */
    virtual Vec invoke(const Vec &input) const = 0;

    /** Modeled per-invocation hardware cost. */
    virtual AcceleratorCost invocationCost() const = 0;
};

} // namespace mithra::axbench
