#include "axbench/jmeint.hh"

#include <cmath>

#include "common/contracts.hh"
#include "common/rng.hh"
#include "common/scale.hh"

namespace mithra::axbench
{

namespace
{

using std::fabs;
using std::sqrt;

struct JmeintDataset final : Dataset
{
    /** Flat vertex data, 18 floats per pair. */
    std::vector<float> vertices;

    std::size_t pairs() const { return vertices.size() / 18; }
};

template <typename T>
struct Vec3
{
    T x, y, z;
};

template <typename T>
Vec3<T>
cross(const Vec3<T> &a, const Vec3<T> &b)
{
    return {a.y * b.z - a.z * b.y,
            a.z * b.x - a.x * b.z,
            a.x * b.y - a.y * b.x};
}

template <typename T>
T
dot(const Vec3<T> &a, const Vec3<T> &b)
{
    return a.x * b.x + a.y * b.y + a.z * b.z;
}

template <typename T>
Vec3<T>
sub(const Vec3<T> &a, const Vec3<T> &b)
{
    return {a.x - b.x, a.y - b.y, a.z - b.z};
}

constexpr float jmeintEpsilon = 1e-6f;

/** Sort a projected interval so t0 <= t1. */
template <typename T>
void
sortPair(T &t0, T &t1)
{
    if (t0 > t1) {
        const T tmp = t0;
        t0 = t1;
        t1 = tmp;
    }
}

/**
 * Interval endpoints of a triangle along the intersection line
 * (Moller's COMPUTE_INTERVALS). Returns false on the coplanar case.
 */
template <typename T>
bool
computeIntervals(T vp0, T vp1, T vp2, T d0, T d1, T d2, T d0d1, T d0d2,
                 T &isect0, T &isect1)
{
    if (d0d1 > T(0.0f)) {
        // d0, d1 on the same side, d2 on the other.
        isect0 = vp2 + (vp0 - vp2) * d2 / (d2 - d0);
        isect1 = vp2 + (vp1 - vp2) * d2 / (d2 - d1);
    } else if (d0d2 > T(0.0f)) {
        isect0 = vp1 + (vp0 - vp1) * d1 / (d1 - d0);
        isect1 = vp1 + (vp2 - vp1) * d1 / (d1 - d2);
    } else if (d1 * d2 > T(0.0f) || d0 != T(0.0f)) {
        isect0 = vp0 + (vp1 - vp0) * d0 / (d0 - d1);
        isect1 = vp0 + (vp2 - vp0) * d0 / (d0 - d2);
    } else if (d1 != T(0.0f)) {
        isect0 = vp1 + (vp0 - vp1) * d1 / (d1 - d0);
        isect1 = vp1 + (vp2 - vp1) * d1 / (d1 - d2);
    } else if (d2 != T(0.0f)) {
        isect0 = vp2 + (vp0 - vp2) * d2 / (d2 - d0);
        isect1 = vp2 + (vp1 - vp2) * d2 / (d2 - d1);
    } else {
        return false; // coplanar
    }
    sortPair(isect0, isect1);
    return true;
}

/** 2D edge-against-edge test for the coplanar path. */
template <typename T>
bool
edgeEdgeTest(T v0x, T v0y, T u0x, T u0y, T u1x, T u1y, T ax, T ay)
{
    const T bx = u0x - u1x;
    const T by = u0y - u1y;
    const T cx = v0x - u0x;
    const T cy = v0y - u0y;
    const T f = ay * bx - ax * by;
    const T d = by * cx - bx * cy;
    if ((f > T(0.0f) && d >= T(0.0f) && d <= f)
        || (f < T(0.0f) && d <= T(0.0f) && d >= f)) {
        const T e = ax * cy - ay * cx;
        if (f > T(0.0f)) {
            if (e >= T(0.0f) && e <= f)
                return true;
        } else {
            if (e <= T(0.0f) && e >= f)
                return true;
        }
    }
    return false;
}

template <typename T>
bool
edgeAgainstTriEdges(T v0x, T v0y, T v1x, T v1y, T u0x, T u0y, T u1x,
                    T u1y, T u2x, T u2y)
{
    const T ax = v1x - v0x;
    const T ay = v1y - v0y;
    return edgeEdgeTest(v0x, v0y, u0x, u0y, u1x, u1y, ax, ay)
        || edgeEdgeTest(v0x, v0y, u1x, u1y, u2x, u2y, ax, ay)
        || edgeEdgeTest(v0x, v0y, u2x, u2y, u0x, u0y, ax, ay);
}

template <typename T>
bool
pointInTri(T px, T py, T u0x, T u0y, T u1x, T u1y, T u2x, T u2y)
{
    T a = u1y - u0y;
    T b = -(u1x - u0x);
    T c = -a * u0x - b * u0y;
    const T d0 = a * px + b * py + c;

    a = u2y - u1y;
    b = -(u2x - u1x);
    c = -a * u1x - b * u1y;
    const T d1 = a * px + b * py + c;

    a = u0y - u2y;
    b = -(u0x - u2x);
    c = -a * u2x - b * u2y;
    const T d2 = a * px + b * py + c;

    return d0 * d1 > T(0.0f) && d0 * d2 > T(0.0f);
}

/** Coplanar fallback: project to the dominant plane and do 2D tests. */
template <typename T>
bool
coplanarTriTri(const Vec3<T> &n, const Vec3<T> &v0, const Vec3<T> &v1,
               const Vec3<T> &v2, const Vec3<T> &u0, const Vec3<T> &u1,
               const Vec3<T> &u2)
{
    const T ax = fabs(n.x);
    const T ay = fabs(n.y);
    const T az = fabs(n.z);

    // Indices of the two kept axes after dropping the dominant one.
    auto pick = [&](const Vec3<T> &v, T &px, T &py) {
        if (ax > ay && ax > az) {
            px = v.y;
            py = v.z;
        } else if (ay > az) {
            px = v.x;
            py = v.z;
        } else {
            px = v.x;
            py = v.y;
        }
    };

    T v0x, v0y, v1x, v1y, v2x, v2y, u0x, u0y, u1x, u1y, u2x, u2y;
    pick(v0, v0x, v0y);
    pick(v1, v1x, v1y);
    pick(v2, v2x, v2y);
    pick(u0, u0x, u0y);
    pick(u1, u1x, u1y);
    pick(u2, u2x, u2y);

    if (edgeAgainstTriEdges(v0x, v0y, v1x, v1y, u0x, u0y, u1x, u1y, u2x,
                            u2y)
        || edgeAgainstTriEdges(v1x, v1y, v2x, v2y, u0x, u0y, u1x, u1y,
                               u2x, u2y)
        || edgeAgainstTriEdges(v2x, v2y, v0x, v0y, u0x, u0y, u1x, u1y,
                               u2x, u2y)) {
        return true;
    }

    return pointInTri(v0x, v0y, u0x, u0y, u1x, u1y, u2x, u2y)
        || pointInTri(u0x, u0y, v0x, v0y, v1x, v1y, v2x, v2y);
}

/**
 * The safe-to-approximate target function: Moller's triangle-triangle
 * intersection test over 18 packed coordinates.
 */
template <typename T>
bool
triTriIntersect(const T (&w)[18])
{
    const Vec3<T> v0{w[0], w[1], w[2]};
    const Vec3<T> v1{w[3], w[4], w[5]};
    const Vec3<T> v2{w[6], w[7], w[8]};
    const Vec3<T> u0{w[9], w[10], w[11]};
    const Vec3<T> u1{w[12], w[13], w[14]};
    const Vec3<T> u2{w[15], w[16], w[17]};

    // Plane of triangle V: n1 . x + d1 = 0.
    const Vec3<T> e1 = sub(v1, v0);
    const Vec3<T> e2 = sub(v2, v0);
    const Vec3<T> n1 = cross(e1, e2);
    const T d1 = -dot(n1, v0);

    T du0 = dot(n1, u0) + d1;
    T du1 = dot(n1, u1) + d1;
    T du2 = dot(n1, u2) + d1;

    if (fabs(du0) < T(jmeintEpsilon))
        du0 = T(0.0f);
    if (fabs(du1) < T(jmeintEpsilon))
        du1 = T(0.0f);
    if (fabs(du2) < T(jmeintEpsilon))
        du2 = T(0.0f);

    const T du0du1 = du0 * du1;
    const T du0du2 = du0 * du2;
    if (du0du1 > T(0.0f) && du0du2 > T(0.0f))
        return false; // all of U strictly on one side

    // Plane of triangle U.
    const Vec3<T> f1 = sub(u1, u0);
    const Vec3<T> f2 = sub(u2, u0);
    const Vec3<T> n2 = cross(f1, f2);
    const T d2 = -dot(n2, u0);

    T dv0 = dot(n2, v0) + d2;
    T dv1 = dot(n2, v1) + d2;
    T dv2 = dot(n2, v2) + d2;

    if (fabs(dv0) < T(jmeintEpsilon))
        dv0 = T(0.0f);
    if (fabs(dv1) < T(jmeintEpsilon))
        dv1 = T(0.0f);
    if (fabs(dv2) < T(jmeintEpsilon))
        dv2 = T(0.0f);

    const T dv0dv1 = dv0 * dv1;
    const T dv0dv2 = dv0 * dv2;
    if (dv0dv1 > T(0.0f) && dv0dv2 > T(0.0f))
        return false;

    // Direction of the intersection line; project on the dominant axis.
    const Vec3<T> dir = cross(n1, n2);
    const T absX = fabs(dir.x);
    const T absY = fabs(dir.y);
    const T absZ = fabs(dir.z);

    T vp0, vp1, vp2, up0, up1, up2;
    if (absX >= absY && absX >= absZ) {
        vp0 = v0.x; vp1 = v1.x; vp2 = v2.x;
        up0 = u0.x; up1 = u1.x; up2 = u2.x;
    } else if (absY >= absZ) {
        vp0 = v0.y; vp1 = v1.y; vp2 = v2.y;
        up0 = u0.y; up1 = u1.y; up2 = u2.y;
    } else {
        vp0 = v0.z; vp1 = v1.z; vp2 = v2.z;
        up0 = u0.z; up1 = u1.z; up2 = u2.z;
    }

    T isect1a, isect1b, isect2a, isect2b;
    if (!computeIntervals(vp0, vp1, vp2, dv0, dv1, dv2, dv0dv1, dv0dv2,
                          isect1a, isect1b)) {
        return coplanarTriTri(n1, v0, v1, v2, u0, u1, u2);
    }
    if (!computeIntervals(up0, up1, up2, du0, du1, du2, du0du1, du0du2,
                          isect2a, isect2b)) {
        return coplanarTriTri(n1, v0, v1, v2, u0, u1, u2);
    }

    return !(isect1b < isect2a || isect2b < isect1a);
}

/**
 * Straight-line variant of the intersection test used only for cost
 * measurement. The AxBench extraction of the jMonkeyEngine routine is
 * a fixed-input/fixed-output region without early exits (the NPU needs
 * a deterministic region shape), so the precise region's cost is that
 * of the full computation, not of the short-circuiting algorithm
 * above. Divisions are guarded so the arithmetic is well defined on
 * every input; the boolean result is not used.
 */
template <typename T>
bool
triTriIntersectExtracted(const T (&w)[18])
{
    const Vec3<T> v0{w[0], w[1], w[2]};
    const Vec3<T> v1{w[3], w[4], w[5]};
    const Vec3<T> v2{w[6], w[7], w[8]};
    const Vec3<T> u0{w[9], w[10], w[11]};
    const Vec3<T> u1{w[12], w[13], w[14]};
    const Vec3<T> u2{w[15], w[16], w[17]};

    // The jMonkeyEngine routine works on normalized plane normals
    // (Vector3f.normalize() per plane) and re-derives edge vectors for
    // every test; that redundant arithmetic is part of the extracted
    // region and of its cost.
    const Vec3<T> e1 = sub(v1, v0);
    const Vec3<T> e2 = sub(v2, v0);
    Vec3<T> n1 = cross(e1, e2);
    const T n1len = sqrt(dot(n1, n1)) + T(1e-30f);
    n1 = {n1.x / n1len, n1.y / n1len, n1.z / n1len};
    const T d1 = -dot(n1, v0);
    const T du0 = dot(n1, u0) + d1;
    const T du1 = dot(n1, u1) + d1;
    const T du2 = dot(n1, u2) + d1;

    const Vec3<T> f1 = sub(u1, u0);
    const Vec3<T> f2 = sub(u2, u0);
    Vec3<T> n2 = cross(f1, f2);
    const T n2len = sqrt(dot(n2, n2)) + T(1e-30f);
    n2 = {n2.x / n2len, n2.y / n2len, n2.z / n2len};
    const T d2 = -dot(n2, u0);
    const T dv0 = dot(n2, v0) + d2;
    const T dv1 = dot(n2, v1) + d2;
    const T dv2 = dot(n2, v2) + d2;

    const Vec3<T> dir = cross(n1, n2);
    const T absX = fabs(dir.x);
    const T absY = fabs(dir.y);
    const T absZ = fabs(dir.z);
    T vp0 = v0.x, vp1 = v1.x, vp2 = v2.x;
    T up0 = u0.x, up1 = u1.x, up2 = u2.x;
    if (absY > absX && absY >= absZ) {
        vp0 = v0.y; vp1 = v1.y; vp2 = v2.y;
        up0 = u0.y; up1 = u1.y; up2 = u2.y;
    } else if (absZ > absX) {
        vp0 = v0.z; vp1 = v1.z; vp2 = v2.z;
        up0 = u0.z; up1 = u1.z; up2 = u2.z;
    }

    // Both interval computations run unconditionally with guarded
    // denominators (the extracted region has no data-dependent skips).
    auto guardedInterval = [](T p0, T p1, T p2, T d0, T d1, T d2, T &a,
                              T &b) {
        const T eps = T(1e-30f);
        a = p2 + (p0 - p2) * d2 / (d2 - d0 + eps);
        b = p2 + (p1 - p2) * d2 / (d2 - d1 + eps);
        sortPair(a, b);
    };
    T i1a, i1b, i2a, i2b;
    guardedInterval(vp0, vp1, vp2, dv0, dv1, dv2, i1a, i1b);
    guardedInterval(up0, up1, up2, du0, du1, du2, i2a, i2b);

    const bool sideU = du0 * du1 > T(0.0f) && du0 * du2 > T(0.0f);
    const bool sideV = dv0 * dv1 > T(0.0f) && dv0 * dv2 > T(0.0f);
    const bool overlap = !(i1b < i2a || i2b < i1a);
    return !sideU && !sideV && overlap;
}

} // namespace

std::size_t
Jmeint::pairsPerDataset()
{
    return scaledCount(4096, 256);
}

bool
Jmeint::trianglesIntersect(const float (&vertices)[18])
{
    return triTriIntersect<float>(vertices);
}

npu::TrainerOptions
Jmeint::npuTrainerOptions() const
{
    npu::TrainerOptions options;
    options.epochs = 40;
    options.learningRate = 0.15f;
    options.batchSize = 32;
    options.seed = 0x13e;
    return options;
}

std::unique_ptr<Dataset>
Jmeint::makeDataset(std::uint64_t seed) const
{
    Rng rng(seed);
    auto dataset = std::make_unique<JmeintDataset>();
    dataset->vertices.reserve(pairsPerDataset() * 18);

    // Each dataset is one collision-detection frame: triangle sizes and
    // pair separations vary per dataset so the intersecting fraction
    // (and the hardness of borderline pairs) differs between datasets.
    const double triScale = rng.uniform(0.25, 0.6);
    const double separation = rng.uniform(0.1, 0.5);

    for (std::size_t p = 0; p < pairsPerDataset(); ++p) {
        float vertices[18];
        // First triangle around a random center.
        const double cx = rng.uniform(-1.0, 1.0);
        const double cy = rng.uniform(-1.0, 1.0);
        const double cz = rng.uniform(-1.0, 1.0);
        for (int v = 0; v < 3; ++v) {
            vertices[v * 3 + 0] = static_cast<float>(
                cx + rng.normal(0.0, triScale));
            vertices[v * 3 + 1] = static_cast<float>(
                cy + rng.normal(0.0, triScale));
            vertices[v * 3 + 2] = static_cast<float>(
                cz + rng.normal(0.0, triScale));
        }
        // Second triangle near the first (distance controls overlap
        // probability).
        const double ox = cx + rng.normal(0.0, separation);
        const double oy = cy + rng.normal(0.0, separation);
        const double oz = cz + rng.normal(0.0, separation);
        for (int v = 3; v < 6; ++v) {
            vertices[v * 3 + 0] = static_cast<float>(
                ox + rng.normal(0.0, triScale));
            vertices[v * 3 + 1] = static_cast<float>(
                oy + rng.normal(0.0, triScale));
            vertices[v * 3 + 2] = static_cast<float>(
                oz + rng.normal(0.0, triScale));
        }
        dataset->vertices.insert(dataset->vertices.end(), vertices,
                                 vertices + 18);
    }
    return dataset;
}

InvocationTrace
Jmeint::trace(const Dataset &dataset) const
{
    const auto &ds = dynamic_cast<const JmeintDataset &>(dataset);
    InvocationTrace trace(18, 2);

    Vec input(18);
    for (std::size_t p = 0; p < ds.pairs(); ++p) {
        float vertices[18];
        for (int i = 0; i < 18; ++i) {
            vertices[i] = ds.vertices[p * 18 + static_cast<std::size_t>(i)];
            input[static_cast<std::size_t>(i)] = vertices[i];
        }
        const bool hit = triTriIntersect<float>(vertices);
        // One-hot encoding: neuron 0 fires for "intersect".
        trace.append(input, hit ? Vec{1.0f, 0.0f} : Vec{0.0f, 1.0f});
    }
    return trace;
}

FinalOutput
Jmeint::recompose(const Dataset &, const InvocationTrace &trace,
                  const std::vector<std::uint8_t> &useAccel) const
{
    MITHRA_EXPECTS(useAccel.size() == trace.count(),
                   "decision vector size mismatch");
    FinalOutput out;
    out.elements.reserve(trace.count());
    for (std::size_t i = 0; i < trace.count(); ++i) {
        const auto chosen = useAccel[i] ? trace.approxOutput(i)
                                        : trace.preciseOutput(i);
        out.elements.push_back(chosen[0] > chosen[1] ? 1.0f : 0.0f);
    }
    return out;
}

BenchmarkCosts
Jmeint::measureCosts() const
{
    using sim::Counted;

    const auto dataset = makeDataset(0x5eed13e);
    const auto &ds = dynamic_cast<const JmeintDataset &>(*dataset);
    const std::size_t sample = std::min<std::size_t>(256, ds.pairs());

    BenchmarkCosts costs;
    {
        sim::ScopedOpCount scope;
        for (std::size_t p = 0; p < sample; ++p) {
            Counted<float> vertices[18];
            for (int i = 0; i < 18; ++i) {
                vertices[i] = Counted<float>(
                    ds.vertices[p * 18 + static_cast<std::size_t>(i)]);
            }
            sim::countMemoryOps(18);
            volatile bool sink =
                triTriIntersectExtracted<Counted<float>>(vertices);
            (void)sink;
        }
        costs.targetOpsPerInvocation =
            scope.counts().scaled(1.0 / static_cast<double>(sample));
    }

    sim::OpCounts perPair;
    perPair.memory = 1; // store the decision
    perPair.addSub = 2;
    perPair.compare = 1;
    costs.otherOpsPerDataset =
        perPair.scaled(static_cast<double>(pairsPerDataset()));
    return costs;
}

Vec
Jmeint::targetFunction(const Vec &input) const
{
    MITHRA_EXPECTS(input.size() == 18,
                   "jmeint takes 18 inputs (two triangles), got ",
                   input.size());
    float vertices[18];
    for (std::size_t i = 0; i < 18; ++i)
        vertices[i] = input[i];
    const bool hit = triTriIntersect<float>(vertices);
    return hit ? Vec{1.0f, 0.0f} : Vec{0.0f, 1.0f};
}

} // namespace mithra::axbench
