/**
 * @file
 * fft — signal processing (radix-2 Cooley-Tukey fast Fourier
 * transform).
 *
 * The safe-to-approximate function computes the twiddle factor
 * (cos a, sin a) of a butterfly angle — 1 input, 2 outputs, NPU
 * topology 1->4->4->2 (paper Table I). The surrounding application
 * performs the full FFT of a 2048-sample signal with those twiddles;
 * the quality metric is average relative error over the complex
 * spectrum.
 */

#pragma once

#include "axbench/benchmark.hh"

namespace mithra::axbench
{

class Fft final : public Benchmark
{
  public:
    std::string name() const override { return "fft"; }
    std::string domain() const override { return "Signal Processing"; }
    QualityMetric metric() const override
    {
        return QualityMetric::AvgRelativeError;
    }
    npu::Topology npuTopology() const override { return {1, 4, 4, 2}; }
    npu::TrainerOptions npuTrainerOptions() const override;
    unsigned tableQuantizerBits() const override { return 8; }

    std::unique_ptr<Dataset> makeDataset(std::uint64_t seed) const override;
    InvocationTrace trace(const Dataset &dataset) const override;
    FinalOutput recompose(
        const Dataset &dataset, const InvocationTrace &trace,
        const std::vector<std::uint8_t> &useAccel) const override;
    BenchmarkCosts measureCosts() const override;
    Vec targetFunction(const Vec &input) const override;

    /** Transform length (paper: 2048 points; power of two). */
    static std::size_t transformSize();
};

} // namespace mithra::axbench

