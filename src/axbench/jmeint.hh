/**
 * @file
 * jmeint — 3D gaming (triangle-triangle intersection detection).
 *
 * The safe-to-approximate function takes two 3D triangles (18 floats)
 * and decides whether they intersect, via Moller's interval-overlap
 * algorithm (the jMonkeyEngine routine AxBench extracts). The NPU
 * topology is 18->32->8->2 with a one-hot decision output; the quality
 * metric is miss rate (paper Table I).
 */

#pragma once

#include "axbench/benchmark.hh"

namespace mithra::axbench
{

class Jmeint final : public Benchmark
{
  public:
    std::string name() const override { return "jmeint"; }
    std::string domain() const override { return "3D Gaming"; }
    QualityMetric metric() const override { return QualityMetric::MissRate; }
    npu::Topology npuTopology() const override { return {18, 32, 8, 2}; }
    npu::TrainerOptions npuTrainerOptions() const override;
    unsigned tableQuantizerBits() const override { return 1; }

    std::unique_ptr<Dataset> makeDataset(std::uint64_t seed) const override;
    InvocationTrace trace(const Dataset &dataset) const override;
    FinalOutput recompose(
        const Dataset &dataset, const InvocationTrace &trace,
        const std::vector<std::uint8_t> &useAccel) const override;
    BenchmarkCosts measureCosts() const override;
    Vec targetFunction(const Vec &input) const override;

    /** Triangle pairs per dataset (paper: 10000 pairs). */
    static std::size_t pairsPerDataset();

    /** Exact intersection test, exposed for unit tests. */
    static bool trianglesIntersect(const float (&vertices)[18]);
};

} // namespace mithra::axbench

