/**
 * @file
 * Base-Delta-Immediate (BDI) cache-line compression
 * [Pekhimenko et al., PACT 2012], used by MITHRA to compress the trained
 * decision tables before encoding them in the program binary
 * (paper §IV-C.1 and §V-B.3 / Table II).
 *
 * A 64-byte line is encoded with the cheapest applicable scheme:
 *   - Zeros: the whole line is zero (payload-free).
 *   - Repeated: one 8-byte value repeated across the line.
 *   - B<base>D<delta>: one <base>-byte base plus per-word deltas that
 *     each fit in <delta> bytes (signed).
 * Otherwise the line stays uncompressed. Compression/decompression use
 * only additions, subtractions and comparisons, matching the
 * low-latency hardware the paper assumes.
 */

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mithra::compress
{

/** Bytes per compression line, matching a cache line. */
constexpr std::size_t lineBytes = 64;

/** The BDI encoding chosen for a line. */
enum class BdiEncoding : std::uint8_t
{
    Zeros,
    Repeated,
    Base8Delta1,
    Base8Delta2,
    Base8Delta4,
    Base4Delta1,
    Base4Delta2,
    Base2Delta1,
    Uncompressed,
};

/** Human-readable encoding name (for reports and tests). */
std::string encodingName(BdiEncoding encoding);

/** A compressed 64-byte line. */
struct BdiLine
{
    BdiEncoding encoding;
    /** Base + deltas (or raw bytes when uncompressed). */
    std::vector<std::uint8_t> payload;

    /** Payload bytes plus the per-line 4-bit encoding tag (rounded up). */
    std::size_t sizeBytes() const { return payload.size() + 1; }
};

/** Compress one 64-byte line with the cheapest applicable encoding. */
BdiLine compressLine(const std::array<std::uint8_t, lineBytes> &line);

/** Exact inverse of compressLine(). */
std::array<std::uint8_t, lineBytes> decompressLine(const BdiLine &line);

/** Result of compressing a whole buffer (e.g. a decision table). */
struct BdiBuffer
{
    std::vector<BdiLine> lines;
    std::size_t originalBytes;

    /** Total compressed size in bytes (payloads + tags). */
    std::size_t compressedBytes() const;

    /** originalBytes / compressedBytes. */
    double ratio() const;
};

/**
 * Compress an arbitrary buffer by splitting it into 64-byte lines
 * (zero-padding the final partial line).
 */
BdiBuffer compressBuffer(const std::vector<std::uint8_t> &bytes);

/** Exact inverse of compressBuffer (returns originalBytes bytes). */
std::vector<std::uint8_t> decompressBuffer(const BdiBuffer &buffer);

/**
 * Modeled decompression cost of one line in cycles: vector add plus
 * compare, per the paper's "only addition, subtraction and comparison"
 * claim. Uncompressed and zero lines are free to expand.
 */
std::size_t decompressCycles(BdiEncoding encoding);

} // namespace mithra::compress

