#include "compress/bdi.hh"

#include <algorithm>
#include <cstring>

#include "common/contracts.hh"

namespace mithra::compress
{

namespace
{

/** Read a little-endian unsigned word of `width` bytes at `offset`. */
std::uint64_t
readWord(const std::array<std::uint8_t, lineBytes> &line,
         std::size_t offset, std::size_t width)
{
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < width; ++i)
        value |= static_cast<std::uint64_t>(line[offset + i]) << (8 * i);
    return value;
}

/** Write a little-endian unsigned word of `width` bytes. */
void
writeWord(std::array<std::uint8_t, lineBytes> &line, std::size_t offset,
          std::size_t width, std::uint64_t value)
{
    for (std::size_t i = 0; i < width; ++i)
        line[offset + i] = static_cast<std::uint8_t>(value >> (8 * i));
}

/** Sign-extend a `width`-byte value to 64 bits. */
std::int64_t
signExtend(std::uint64_t value, std::size_t width)
{
    const int shift = static_cast<int>(64 - 8 * width);
    return static_cast<std::int64_t>(value << shift) >> shift;
}

/** Does `delta` fit in a signed `width`-byte integer? */
bool
fitsSigned(std::int64_t delta, std::size_t width)
{
    const std::int64_t bound = std::int64_t{1} << (8 * width - 1);
    return delta >= -bound && delta < bound;
}

/**
 * Try a base+delta encoding. Returns true and fills `payload` with
 * [base | deltas...] when every word's delta from the first word fits.
 */
bool
tryBaseDelta(const std::array<std::uint8_t, lineBytes> &line,
             std::size_t baseWidth, std::size_t deltaWidth,
             std::vector<std::uint8_t> &payload)
{
    const std::size_t words = lineBytes / baseWidth;
    const auto base =
        static_cast<std::int64_t>(signExtend(readWord(line, 0, baseWidth),
                                             baseWidth));

    std::vector<std::int64_t> deltas(words);
    for (std::size_t w = 0; w < words; ++w) {
        const auto value = signExtend(readWord(line, w * baseWidth,
                                               baseWidth), baseWidth);
        // Unsigned subtraction: 8-byte words can differ by more than
        // int64 can hold, and mod-2^64 deltas round-trip exactly.
        const auto delta = static_cast<std::int64_t>(
            static_cast<std::uint64_t>(value)
            - static_cast<std::uint64_t>(base));
        if (!fitsSigned(delta, deltaWidth))
            return false;
        deltas[w] = delta;
    }

    payload.clear();
    payload.reserve(baseWidth + words * deltaWidth);
    for (std::size_t i = 0; i < baseWidth; ++i) {
        payload.push_back(static_cast<std::uint8_t>(
            static_cast<std::uint64_t>(base) >> (8 * i)));
    }
    for (std::size_t w = 0; w < words; ++w) {
        for (std::size_t i = 0; i < deltaWidth; ++i) {
            payload.push_back(static_cast<std::uint8_t>(
                static_cast<std::uint64_t>(deltas[w]) >> (8 * i)));
        }
    }
    return true;
}

struct SchemeSpec
{
    BdiEncoding encoding;
    std::size_t baseWidth;
    std::size_t deltaWidth;
};

/** Candidate base+delta schemes, cheapest payload first. */
constexpr SchemeSpec schemes[] = {
    {BdiEncoding::Base8Delta1, 8, 1}, // 8 + 8  = 16 B
    {BdiEncoding::Base4Delta1, 4, 1}, // 4 + 16 = 20 B
    {BdiEncoding::Base8Delta2, 8, 2}, // 8 + 16 = 24 B
    {BdiEncoding::Base2Delta1, 2, 1}, // 2 + 32 = 34 B
    {BdiEncoding::Base4Delta2, 4, 2}, // 4 + 32 = 36 B
    {BdiEncoding::Base8Delta4, 8, 4}, // 8 + 32 = 40 B
};

} // namespace

std::string
encodingName(BdiEncoding encoding)
{
    switch (encoding) {
      case BdiEncoding::Zeros: return "zeros";
      case BdiEncoding::Repeated: return "repeated";
      case BdiEncoding::Base8Delta1: return "b8d1";
      case BdiEncoding::Base8Delta2: return "b8d2";
      case BdiEncoding::Base8Delta4: return "b8d4";
      case BdiEncoding::Base4Delta1: return "b4d1";
      case BdiEncoding::Base4Delta2: return "b4d2";
      case BdiEncoding::Base2Delta1: return "b2d1";
      case BdiEncoding::Uncompressed: return "raw";
    }
    panic("unknown BDI encoding");
}

BdiLine
compressLine(const std::array<std::uint8_t, lineBytes> &line)
{
    // Zero line?
    if (std::all_of(line.begin(), line.end(),
                    [](std::uint8_t b) { return b == 0; })) {
        return {BdiEncoding::Zeros, {}};
    }

    // Repeated 8-byte value?
    {
        const std::uint64_t first = readWord(line, 0, 8);
        bool repeated = true;
        for (std::size_t w = 1; w < lineBytes / 8 && repeated; ++w)
            repeated = readWord(line, w * 8, 8) == first;
        if (repeated) {
            std::vector<std::uint8_t> payload(line.begin(),
                                              line.begin() + 8);
            return {BdiEncoding::Repeated, std::move(payload)};
        }
    }

    // Base+delta schemes, in increasing payload order.
    BdiLine best{BdiEncoding::Uncompressed,
                 std::vector<std::uint8_t>(line.begin(), line.end())};
    for (const auto &scheme : schemes) {
        std::vector<std::uint8_t> payload;
        if (tryBaseDelta(line, scheme.baseWidth, scheme.deltaWidth,
                         payload)) {
            if (payload.size() < best.payload.size())
                best = {scheme.encoding, std::move(payload)};
        }
    }
    return best;
}

std::array<std::uint8_t, lineBytes>
decompressLine(const BdiLine &line)
{
    std::array<std::uint8_t, lineBytes> out{};

    switch (line.encoding) {
      case BdiEncoding::Zeros:
        return out;
      case BdiEncoding::Repeated: {
        MITHRA_EXPECTS(line.payload.size() == 8, "bad repeated payload");
        for (std::size_t w = 0; w < lineBytes / 8; ++w) {
            std::copy(line.payload.begin(), line.payload.end(),
                      out.begin() + static_cast<std::ptrdiff_t>(w * 8));
        }
        return out;
      }
      case BdiEncoding::Uncompressed:
        MITHRA_EXPECTS(line.payload.size() == lineBytes, "bad raw payload");
        std::copy(line.payload.begin(), line.payload.end(), out.begin());
        return out;
      default:
        break;
    }

    // Base+delta decode.
    const SchemeSpec *spec = nullptr;
    for (const auto &scheme : schemes) {
        if (scheme.encoding == line.encoding) {
            spec = &scheme;
            break;
        }
    }
    MITHRA_EXPECTS(spec, "unhandled BDI encoding in decompressLine");

    const std::size_t words = lineBytes / spec->baseWidth;
    MITHRA_EXPECTS(line.payload.size()
                       == spec->baseWidth + words * spec->deltaWidth,
                   "bad base+delta payload size");

    std::uint64_t baseRaw = 0;
    for (std::size_t i = 0; i < spec->baseWidth; ++i)
        baseRaw |= static_cast<std::uint64_t>(line.payload[i]) << (8 * i);
    const std::int64_t base = signExtend(baseRaw, spec->baseWidth);

    for (std::size_t w = 0; w < words; ++w) {
        std::uint64_t deltaRaw = 0;
        const std::size_t offset = spec->baseWidth + w * spec->deltaWidth;
        for (std::size_t i = 0; i < spec->deltaWidth; ++i) {
            deltaRaw |= static_cast<std::uint64_t>(line.payload[offset + i])
                << (8 * i);
        }
        // Mirror the encoder's mod-2^64 arithmetic (see tryBaseDelta).
        const std::uint64_t value = static_cast<std::uint64_t>(base)
            + static_cast<std::uint64_t>(
                  signExtend(deltaRaw, spec->deltaWidth));
        writeWord(out, w * spec->baseWidth, spec->baseWidth, value);
    }
    return out;
}

std::size_t
BdiBuffer::compressedBytes() const
{
    std::size_t total = 0;
    for (const auto &line : lines)
        total += line.sizeBytes();
    return total;
}

double
BdiBuffer::ratio() const
{
    const std::size_t compressed = compressedBytes();
    if (compressed == 0)
        return 1.0;
    return static_cast<double>(originalBytes)
        / static_cast<double>(compressed);
}

BdiBuffer
compressBuffer(const std::vector<std::uint8_t> &bytes)
{
    BdiBuffer out;
    out.originalBytes = bytes.size();
    for (std::size_t offset = 0; offset < bytes.size();
         offset += lineBytes) {
        std::array<std::uint8_t, lineBytes> line{};
        const std::size_t n = std::min(lineBytes, bytes.size() - offset);
        std::memcpy(line.data(), bytes.data() + offset, n);
        out.lines.push_back(compressLine(line));
    }
    MITHRA_ENSURES(out.lines.size()
                       == (bytes.size() + lineBytes - 1) / lineBytes,
                   "line count does not cover the input buffer");
    return out;
}

std::vector<std::uint8_t>
decompressBuffer(const BdiBuffer &buffer)
{
    std::vector<std::uint8_t> out;
    out.reserve(buffer.lines.size() * lineBytes);
    for (const auto &line : buffer.lines) {
        const auto raw = decompressLine(line);
        out.insert(out.end(), raw.begin(), raw.end());
    }
    MITHRA_EXPECTS(buffer.originalBytes <= out.size()
                       || buffer.lines.empty(),
                   "buffer metadata claims ", buffer.originalBytes,
                   " bytes but lines decode to ", out.size());
    out.resize(buffer.originalBytes);
    MITHRA_ENSURES(out.size() == buffer.originalBytes,
                   "round-trip size mismatch: ", out.size(), " vs ",
                   buffer.originalBytes);
    return out;
}

std::size_t
decompressCycles(BdiEncoding encoding)
{
    switch (encoding) {
      case BdiEncoding::Zeros:
      case BdiEncoding::Uncompressed:
        return 0;
      case BdiEncoding::Repeated:
        return 1;
      default:
        // One vector add to apply deltas plus one cycle of setup.
        return 2;
    }
}

} // namespace mithra::compress
