#include "sim/system_sim.hh"

#include "common/contracts.hh"
#include "telemetry/telemetry.hh"

namespace mithra::sim
{

double
speedup(const RunTotals &baseline, const RunTotals &other)
{
    MITHRA_EXPECTS(other.cycles > 0.0, "speedup versus zero cycles");
    return baseline.cycles / other.cycles;
}

double
energyReduction(const RunTotals &baseline, const RunTotals &other)
{
    MITHRA_EXPECTS(other.energyPj > 0.0, "energy reduction versus zero");
    return baseline.energyPj / other.energyPj;
}

double
edpImprovement(const RunTotals &baseline, const RunTotals &other)
{
    MITHRA_EXPECTS(other.edp() > 0.0, "EDP improvement versus zero");
    return baseline.edp() / other.edp();
}

SystemSimulator::SystemSimulator(const CoreModel &core,
                                 const SystemParams &params)
    : coreModel(core), sysParams(params)
{
}

RunTotals
SystemSimulator::baseline(const RegionProfile &profile) const
{
    MITHRA_COUNT("sim.runs.baseline", 1);
    const auto n = static_cast<double>(profile.invocationsPerDataset);
    RunTotals totals;
    totals.cycles = profile.otherCyclesPerDataset
        + n * profile.preciseCycles;
    totals.energyPj = profile.otherEnergyPjPerDataset
        + n * profile.preciseEnergyPj;
    return totals;
}

RunTotals
SystemSimulator::fullApprox(const RegionProfile &profile) const
{
    MITHRA_COUNT("sim.runs.full_approx", 1);
    MITHRA_COUNT("sim.invocations.approximated",
                 profile.invocationsPerDataset);
    const auto n = static_cast<double>(profile.invocationsPerDataset);
    const double idlePj = coreModel.params().picoJoulesPerCycle
        * sysParams.coreIdleEnergyFraction;

    RunTotals totals;
    totals.cycles = profile.otherCyclesPerDataset + n * profile.accelCycles;
    totals.energyPj = profile.otherEnergyPjPerDataset
        + n * (profile.accelEnergyPj + profile.accelCycles * idlePj);
    return totals;
}

RunTotals
SystemSimulator::run(const RegionProfile &profile,
                     const ClassifierCost &classifier, std::size_t numAccel,
                     std::size_t numPrecise) const
{
    MITHRA_ASSERT(numAccel + numPrecise == profile.invocationsPerDataset,
                  "decision counts (", numAccel, "+", numPrecise,
                  ") do not cover the dataset's ",
                  profile.invocationsPerDataset, " invocations");

    MITHRA_COUNT("sim.runs.classified", 1);
    MITHRA_COUNT("sim.invocations.approximated", numAccel);
    MITHRA_COUNT("sim.invocations.fallback", numPrecise);

    const auto accel = static_cast<double>(numAccel);
    const auto precise = static_cast<double>(numPrecise);
    const double idlePj = coreModel.params().picoJoulesPerCycle
        * sysParams.coreIdleEnergyFraction;

    RunTotals totals;
    totals.cycles = profile.otherCyclesPerDataset;
    totals.energyPj = profile.otherEnergyPjPerDataset;

    // Accelerated path: NPU invocation plus branch plus any classifier
    // cycles that could not hide behind the input enqueue.
    const double accelPathCycles = profile.accelCycles
        + sysParams.branchCycles + classifier.extraCyclesAccel;
    totals.cycles += accel * accelPathCycles;
    totals.energyPj += accel
        * (profile.accelEnergyPj + accelPathCycles * idlePj);

    // Precise path: the inputs were already enqueued when the
    // classifier redirected execution, so the fallback pays the
    // classifier latency, the branch, and the original function.
    const double precisePathCycles = profile.preciseCycles
        + sysParams.branchCycles + classifier.extraCyclesPrecise;
    totals.cycles += precise * precisePathCycles;
    totals.energyPj += precise
        * (profile.preciseEnergyPj
           + (sysParams.branchCycles + classifier.extraCyclesPrecise)
               * coreModel.params().picoJoulesPerCycle);

    // The classifier itself examines every invocation.
    totals.energyPj += (accel + precise)
        * classifier.energyPjPerInvocation;

    return totals;
}

RunTotals
SystemSimulator::auditOverhead(const RegionProfile &profile,
                               std::size_t preciseRuns,
                               std::size_t shadowAccelRuns) const
{
    MITHRA_COUNT("sim.invocations.audited",
                 preciseRuns + shadowAccelRuns);

    const auto precise = static_cast<double>(preciseRuns);
    const auto shadow = static_cast<double>(shadowAccelRuns);
    const double idlePj = coreModel.params().picoJoulesPerCycle
        * sysParams.coreIdleEnergyFraction;

    // No branch or classifier charges here: the audited invocation
    // already paid them in run(); the audit only duplicates the
    // function body on the other engine.
    RunTotals totals;
    totals.cycles = precise * profile.preciseCycles
        + shadow * profile.accelCycles;
    totals.energyPj = precise * profile.preciseEnergyPj
        + shadow
            * (profile.accelEnergyPj + profile.accelCycles * idlePj);
    return totals;
}

} // namespace mithra::sim
