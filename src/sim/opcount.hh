/**
 * @file
 * Operation-count instrumentation.
 *
 * This repository replaces the paper's MARSSx86 cycle-accurate
 * simulation with an analytical model driven by *measured* operation
 * counts of each code region. Benchmarks implement their kernels as
 * templates over the scalar type; running them once with
 * Counted<float> tallies every arithmetic operation into a
 * thread-local OpCounts, which sim/core_model then converts into
 * Nehalem-like cycles and energy.
 */

#pragma once

#include <cmath>
#include <cstdint>

namespace mithra::sim
{

/** Tally of dynamic operations executed by an instrumented region. */
struct OpCounts
{
    std::uint64_t addSub = 0;
    std::uint64_t mul = 0;
    std::uint64_t div = 0;
    std::uint64_t sqrtOp = 0;
    /** exp/log/sin/cos/atan2/pow and friends (libm calls). */
    std::uint64_t transcendental = 0;
    std::uint64_t compare = 0;
    /** Abstract load/store traffic attributed by kernels. */
    std::uint64_t memory = 0;

    OpCounts &operator+=(const OpCounts &other);
    OpCounts operator+(const OpCounts &other) const;
    OpCounts operator-(const OpCounts &other) const;
    /** Scale all counts (e.g. per-invocation -> per-dataset). */
    OpCounts scaled(double factor) const;

    std::uint64_t total() const;
};

/** Thread-local tally that Counted<T> operations accumulate into. */
OpCounts &opTally();

/** Reset the tally and return the previous counts. */
OpCounts resetOpTally();

/** RAII scope that measures the ops executed within it. */
class ScopedOpCount
{
  public:
    ScopedOpCount();
    ~ScopedOpCount();

    ScopedOpCount(const ScopedOpCount &) = delete;
    ScopedOpCount &operator=(const ScopedOpCount &) = delete;

    /** Counts accumulated since construction. */
    OpCounts counts() const;

  private:
    OpCounts saved;
};

/**
 * An arithmetic scalar that tallies every operation applied to it.
 * Use exactly like the underlying type in templated kernels.
 */
template <typename T>
class Counted
{
  public:
    Counted() : v() {}
    Counted(T value) : v(value) {}

    T value() const { return v; }
    explicit operator T() const { return v; }

    Counted operator-() const
    {
        ++opTally().addSub;
        return Counted(-v);
    }

    Counted &operator+=(Counted rhs)
    {
        ++opTally().addSub;
        v += rhs.v;
        return *this;
    }
    Counted &operator-=(Counted rhs)
    {
        ++opTally().addSub;
        v -= rhs.v;
        return *this;
    }
    Counted &operator*=(Counted rhs)
    {
        ++opTally().mul;
        v *= rhs.v;
        return *this;
    }
    Counted &operator/=(Counted rhs)
    {
        ++opTally().div;
        v /= rhs.v;
        return *this;
    }

    friend Counted operator+(Counted a, Counted b) { return a += b; }
    friend Counted operator-(Counted a, Counted b) { return a -= b; }
    friend Counted operator*(Counted a, Counted b) { return a *= b; }
    friend Counted operator/(Counted a, Counted b) { return a /= b; }

    friend bool operator<(Counted a, Counted b)
    {
        ++opTally().compare;
        return a.v < b.v;
    }
    friend bool operator>(Counted a, Counted b)
    {
        ++opTally().compare;
        return a.v > b.v;
    }
    friend bool operator<=(Counted a, Counted b)
    {
        ++opTally().compare;
        return a.v <= b.v;
    }
    friend bool operator>=(Counted a, Counted b)
    {
        ++opTally().compare;
        return a.v >= b.v;
    }
    friend bool operator==(Counted a, Counted b)
    {
        ++opTally().compare;
        return a.v == b.v;
    }
    friend bool operator!=(Counted a, Counted b)
    {
        ++opTally().compare;
        return a.v != b.v;
    }

  private:
    T v;
};

/** Attribute abstract memory traffic from a kernel. */
inline void
countMemoryOps(std::uint64_t n)
{
    opTally().memory += n;
}

// Math overloads for plain floats are pulled from <cmath> via ADL in
// kernels; these mirror them for Counted<T> with tallying.

template <typename T>
Counted<T>
sqrt(Counted<T> x)
{
    ++opTally().sqrtOp;
    return Counted<T>(std::sqrt(x.value()));
}

template <typename T>
Counted<T>
exp(Counted<T> x)
{
    ++opTally().transcendental;
    return Counted<T>(std::exp(x.value()));
}

template <typename T>
Counted<T>
log(Counted<T> x)
{
    ++opTally().transcendental;
    return Counted<T>(std::log(x.value()));
}

template <typename T>
Counted<T>
sin(Counted<T> x)
{
    ++opTally().transcendental;
    return Counted<T>(std::sin(x.value()));
}

template <typename T>
Counted<T>
cos(Counted<T> x)
{
    ++opTally().transcendental;
    return Counted<T>(std::cos(x.value()));
}

template <typename T>
Counted<T>
atan2(Counted<T> y, Counted<T> x)
{
    ++opTally().transcendental;
    return Counted<T>(std::atan2(y.value(), x.value()));
}

template <typename T>
Counted<T>
acos(Counted<T> x)
{
    ++opTally().transcendental;
    return Counted<T>(std::acos(x.value()));
}

template <typename T>
Counted<T>
pow(Counted<T> x, Counted<T> y)
{
    ++opTally().transcendental;
    return Counted<T>(std::pow(x.value(), y.value()));
}

template <typename T>
Counted<T>
fabs(Counted<T> x)
{
    ++opTally().compare;
    return Counted<T>(std::fabs(x.value()));
}

} // namespace mithra::sim

