#include "sim/opcount.hh"

namespace mithra::sim
{

OpCounts &
OpCounts::operator+=(const OpCounts &other)
{
    addSub += other.addSub;
    mul += other.mul;
    div += other.div;
    sqrtOp += other.sqrtOp;
    transcendental += other.transcendental;
    compare += other.compare;
    memory += other.memory;
    return *this;
}

OpCounts
OpCounts::operator+(const OpCounts &other) const
{
    OpCounts out = *this;
    out += other;
    return out;
}

OpCounts
OpCounts::operator-(const OpCounts &other) const
{
    OpCounts out;
    out.addSub = addSub - other.addSub;
    out.mul = mul - other.mul;
    out.div = div - other.div;
    out.sqrtOp = sqrtOp - other.sqrtOp;
    out.transcendental = transcendental - other.transcendental;
    out.compare = compare - other.compare;
    out.memory = memory - other.memory;
    return out;
}

OpCounts
OpCounts::scaled(double factor) const
{
    auto scale = [factor](std::uint64_t x) {
        return static_cast<std::uint64_t>(
            static_cast<double>(x) * factor + 0.5);
    };
    OpCounts out;
    out.addSub = scale(addSub);
    out.mul = scale(mul);
    out.div = scale(div);
    out.sqrtOp = scale(sqrtOp);
    out.transcendental = scale(transcendental);
    out.compare = scale(compare);
    out.memory = scale(memory);
    return out;
}

std::uint64_t
OpCounts::total() const
{
    return addSub + mul + div + sqrtOp + transcendental + compare + memory;
}

OpCounts &
opTally()
{
    thread_local OpCounts tally;
    return tally;
}

OpCounts
resetOpTally()
{
    OpCounts previous = opTally();
    opTally() = OpCounts{};
    return previous;
}

ScopedOpCount::ScopedOpCount()
    : saved(resetOpTally())
{
}

ScopedOpCount::~ScopedOpCount()
{
    opTally() += saved;
}

OpCounts
ScopedOpCount::counts() const
{
    return opTally();
}

} // namespace mithra::sim
