/**
 * @file
 * Hardware fault injection for the watchdog's drills.
 *
 * The watchdog guards against two decay channels the offline
 * certificate cannot see: the accelerator itself rotting (NPU weight
 * memory upsets) and the quality-control hardware rotting (MISR
 * decision-table bit flips). This module injects both, deterministic
 * under a seed so every drill is reproducible bit-for-bit:
 *
 *  - flipMlpWeightBits() flips single bits in randomly chosen NPU
 *    weights. A flip that would turn the weight non-finite (an
 *    exponent flip into the inf/NaN band) is modeled as a
 *    stuck-at-zero cell instead, so the corrupted network still
 *    produces finite-but-wrong outputs — the regime the watchdog's
 *    error audits can actually measure.
 *  - corruptTableBits() flips decision bits in a table ensemble.
 *    Clearing a 1 makes the classifier approve inputs it was trained
 *    to redirect (quality faults); setting a 0 redirects accelerable
 *    inputs (pure cost faults). Both directions are injected.
 */

#pragma once

#include <cstdint>

#include "hw/decision_table.hh"
#include "npu/mlp.hh"

namespace mithra::sim
{

/** Result of one injection pass. */
struct FaultReport
{
    /** Faults requested. */
    std::size_t requested = 0;
    /** Bits actually flipped. */
    std::size_t flipped = 0;
    /** Weight flips downgraded to stuck-at-zero (non-finite result). */
    std::size_t stuckAtZero = 0;
};

/**
 * Flip `faults` random single bits across the network's weights
 * (biases included). Deterministic under (network topology, seed).
 */
FaultReport flipMlpWeightBits(npu::Mlp &network, std::size_t faults,
                              std::uint64_t seed);

/**
 * Flip `faults` random decision bits across the ensemble's tables.
 * Deterministic under (geometry, seed).
 */
FaultReport corruptTableBits(hw::TableEnsemble &ensemble,
                             std::size_t faults, std::uint64_t seed);

} // namespace mithra::sim
