/**
 * @file
 * Out-of-order core cost model (Nehalem-like, 45 nm, 2.08 GHz).
 *
 * Converts measured operation counts into cycles and energy. The model
 * captures what the reproduced results actually depend on: the
 * relative cost of running a safe-to-approximate region precisely on
 * an aggressive core versus invoking the NPU, and the energy ratio
 * between the two. Latency weights approximate Nehalem execution
 * latencies; the ILP factor models the 4-wide out-of-order engine
 * extracting parallelism from real dependency chains.
 */

#pragma once

#include "sim/opcount.hh"

namespace mithra::sim
{

/** Per-operation-class cost weights and core-wide parameters. */
struct CoreParams
{
    double addSubCycles = 1.0;
    double mulCycles = 1.5;
    double divCycles = 12.0;
    double sqrtCycles = 14.0;
    /** libm transcendental (exp/log/sin/cos/pow) software cost. */
    double transcendentalCycles = 40.0;
    double compareCycles = 1.0;
    /** Average memory access (L1-dominated with some misses). */
    double memoryCycles = 2.0;

    /** Sustained instruction-level parallelism of the OoO engine. */
    double ilpFactor = 2.0;
    /** Per-invocation call/loop overhead cycles for a region entry. */
    double regionOverheadCycles = 8.0;
    /**
     * Data-dependent branch modeling: every compare is treated as a
     * potential branch; mispredictions flush the pipeline and are not
     * hidden by ILP. Branchy regions (jmeint's intersection tests)
     * are exactly the ones the branch-free NPU wins big on.
     */
    double branchMispredictRate = 0.08;
    double mispredictPenaltyCycles = 14.0;

    /** Active core energy per cycle (picojoules; ~2 nJ/cycle). */
    double picoJoulesPerCycle = 2000.0;
    /** Core clock in Hz (for absolute-time reporting only). */
    double clockHz = 2.08e9;
};

/** The analytical core model. */
class CoreModel
{
  public:
    explicit CoreModel(const CoreParams &params = CoreParams{});

    /** Cycles to execute a region with the given dynamic op counts. */
    double cycles(const OpCounts &ops) const;

    /** Energy (pJ) of executing that many cycles on the core. */
    double energyPj(double cycles) const;

    /** Wall-clock seconds for a cycle count at the modeled clock. */
    double seconds(double cycles) const;

    const CoreParams &params() const { return coreParams; }

  private:
    CoreParams coreParams;
};

} // namespace mithra::sim

