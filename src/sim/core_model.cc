#include "sim/core_model.hh"

#include "common/contracts.hh"

namespace mithra::sim
{

CoreModel::CoreModel(const CoreParams &params)
    : coreParams(params)
{
    MITHRA_EXPECTS(coreParams.ilpFactor > 0.0, "ILP factor must be > 0");
}

double
CoreModel::cycles(const OpCounts &ops) const
{
    const auto &p = coreParams;
    const double weighted =
        static_cast<double>(ops.addSub) * p.addSubCycles
        + static_cast<double>(ops.mul) * p.mulCycles
        + static_cast<double>(ops.div) * p.divCycles
        + static_cast<double>(ops.sqrtOp) * p.sqrtCycles
        + static_cast<double>(ops.transcendental) * p.transcendentalCycles
        + static_cast<double>(ops.compare) * p.compareCycles
        + static_cast<double>(ops.memory) * p.memoryCycles;
    // Misprediction flushes serialize; they are not amortized by ILP.
    const double mispredicts = static_cast<double>(ops.compare)
        * p.branchMispredictRate * p.mispredictPenaltyCycles;
    return weighted / p.ilpFactor + mispredicts;
}

double
CoreModel::energyPj(double cycles) const
{
    return cycles * coreParams.picoJoulesPerCycle;
}

double
CoreModel::seconds(double cycles) const
{
    return cycles / coreParams.clockHz;
}

} // namespace mithra::sim
