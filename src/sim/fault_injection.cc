#include "sim/fault_injection.hh"

#include <bit>
#include <cmath>

#include "common/contracts.hh"
#include "common/rng.hh"

namespace mithra::sim
{

FaultReport
flipMlpWeightBits(npu::Mlp &network, std::size_t faults,
                  std::uint64_t seed)
{
    const auto &topo = network.topology();
    MITHRA_EXPECTS(topo.size() >= 2, "network needs at least 2 layers");

    FaultReport report;
    report.requested = faults;

    Rng rng(rngStream(seed, 0x9a17ULL));
    for (std::size_t f = 0; f < faults; ++f) {
        // Pick a layer, neuron and fan-in edge (bias = fan-in slot).
        const std::size_t layer =
            1 + rng.nextBelow(static_cast<std::uint64_t>(topo.size() - 1));
        const std::size_t to =
            rng.nextBelow(static_cast<std::uint64_t>(topo[layer]));
        const std::size_t fanIn = topo[layer - 1];
        const std::size_t from =
            rng.nextBelow(static_cast<std::uint64_t>(fanIn + 1));

        const float old = network.weight(layer, to, from);
        // Flip one of the low 31 bits (sign flips are invisible for
        // near-zero weights; mantissa/exponent flips model real SRAM
        // upsets in magnitude).
        const auto bit = static_cast<std::uint32_t>(rng.nextBelow(31));
        const std::uint32_t raw = std::bit_cast<std::uint32_t>(old);
        float flipped = std::bit_cast<float>(raw ^ (1u << bit));
        if (!std::isfinite(flipped)) {
            // The exponent flipped into the inf/NaN band: model the
            // cell as stuck at zero so the corrupted network keeps
            // producing finite (auditable) outputs.
            flipped = 0.0f;
            ++report.stuckAtZero;
        }
        network.setWeight(layer, to, from, flipped);
        ++report.flipped;
    }
    return report;
}

FaultReport
corruptTableBits(hw::TableEnsemble &ensemble, std::size_t faults,
                 std::uint64_t seed)
{
    const auto &geom = ensemble.geometry();
    MITHRA_EXPECTS(geom.numTables >= 1, "ensemble has no tables");

    FaultReport report;
    report.requested = faults;

    Rng rng(rngStream(seed, 0x7ab1eULL));
    for (std::size_t f = 0; f < faults; ++f) {
        const std::size_t t =
            rng.nextBelow(static_cast<std::uint64_t>(geom.numTables));
        auto &table = ensemble.mutableTable(t);
        const auto index = static_cast<std::uint32_t>(
            rng.nextBelow(static_cast<std::uint64_t>(table.entries())));
        if (table.bit(index))
            table.clearBit(index);
        else
            table.setBit(index);
        ++report.flipped;
    }
    return report;
}

} // namespace mithra::sim
