/**
 * @file
 * Whole-system cost composition.
 *
 * Combines the core model, the NPU cost model and a classifier's
 * overheads into end-to-end cycles/energy for the three execution
 * modes the paper compares:
 *
 *   baseline   — the benchmark runs entirely on the precise core;
 *   fullApprox — every target invocation goes to the accelerator
 *                (the conventional always-invoke scheme);
 *   run        — MITHRA: a classifier routes each invocation either
 *                to the NPU or back to the precise function via the
 *                special branch instruction (paper §IV-D).
 *
 * The core idles (clock-gated) while the NPU computes; the branch
 * instruction and the classifier's own cycles/energy are charged per
 * invocation.
 */

#pragma once

#include <cstddef>

#include "sim/core_model.hh"

namespace mithra::sim
{

/** Modeled per-invocation and per-dataset costs of one benchmark. */
struct RegionProfile
{
    /** Cycles to run the original function once on the core. */
    double preciseCycles = 0.0;
    /** Core energy (pJ) of one precise execution. */
    double preciseEnergyPj = 0.0;
    /** Cycles of one NPU invocation (enqueue, compute, dequeue). */
    double accelCycles = 0.0;
    /** NPU energy (pJ) of one invocation (core idle energy separate). */
    double accelEnergyPj = 0.0;
    /** Target-function invocations per dataset. */
    std::size_t invocationsPerDataset = 0;
    /** Core cycles of the non-target region per dataset. */
    double otherCyclesPerDataset = 0.0;
    /** Core energy (pJ) of the non-target region per dataset. */
    double otherEnergyPjPerDataset = 0.0;
};

/** Per-invocation overheads a hardware classifier adds. */
struct ClassifierCost
{
    /** Extra cycles on the accelerated path (decision overlaps the
     *  input enqueue, so this is usually small). */
    double extraCyclesAccel = 0.0;
    /** Extra cycles before falling back to the precise function. */
    double extraCyclesPrecise = 0.0;
    /** Classifier energy per invocation (pJ), charged on every call. */
    double energyPjPerInvocation = 0.0;
    /** Classifier state that must live on chip (bytes). */
    double sizeBytes = 0.0;
};

/** Totals of one modeled execution. */
struct RunTotals
{
    double cycles = 0.0;
    double energyPj = 0.0;

    /** Energy-delay product (pJ * cycles). */
    double edp() const { return cycles * energyPj; }

    /**
     * Accumulate another total. Callers that fold per-shard or
     * per-dataset partials must do so in slot order (shard 0, 1, ...)
     * so the floating-point association — and therefore the result —
     * is independent of thread count.
     */
    RunTotals &operator+=(const RunTotals &other)
    {
        cycles += other.cycles;
        energyPj += other.energyPj;
        return *this;
    }
};

/** Ratio helpers used throughout the evaluation. */
double speedup(const RunTotals &baseline, const RunTotals &other);
double energyReduction(const RunTotals &baseline, const RunTotals &other);
double edpImprovement(const RunTotals &baseline, const RunTotals &other);

/** System-level knobs that are not per-benchmark. */
struct SystemParams
{
    /** The special MITHRA branch instruction (paper §IV-D). */
    double branchCycles = 1.0;
    /** Fraction of active core energy burned while waiting on the NPU
     *  (clock gating is imperfect). */
    double coreIdleEnergyFraction = 0.3;
};

/** Composes core, NPU and classifier costs into run totals. */
class SystemSimulator
{
  public:
    SystemSimulator(const CoreModel &core,
                    const SystemParams &params = SystemParams{});

    /** All invocations precise, no accelerator, no classifier. */
    RunTotals baseline(const RegionProfile &profile) const;

    /** Conventional approximate acceleration: always invoke the NPU. */
    RunTotals fullApprox(const RegionProfile &profile) const;

    /**
     * MITHRA execution with a classifier.
     *
     * @param numAccel   invocations routed to the accelerator
     * @param numPrecise invocations that fell back to the core
     */
    RunTotals run(const RegionProfile &profile,
                  const ClassifierCost &classifier, std::size_t numAccel,
                  std::size_t numPrecise) const;

    /**
     * Extra cost of watchdog audits on top of run(): an audited
     * accelerated invocation also executes the precise function, and
     * a DEGRADED shadow audit also executes the (gated) accelerator.
     * Charged separately because audits duplicate work for the same
     * invocation — they do not change how it was routed.
     *
     * @param preciseRuns     audits that re-ran the precise function
     * @param shadowAccelRuns shadow audits that ran the gated NPU
     */
    RunTotals auditOverhead(const RegionProfile &profile,
                            std::size_t preciseRuns,
                            std::size_t shadowAccelRuns) const;

    const CoreModel &core() const { return coreModel; }
    const SystemParams &params() const { return sysParams; }

  private:
    CoreModel coreModel;
    SystemParams sysParams;
};

} // namespace mithra::sim

