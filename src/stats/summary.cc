#include "stats/summary.hh"

#include <algorithm>
#include <cmath>

#include "common/contracts.hh"

namespace mithra::stats
{

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double mu = mean(xs);
    double sum = 0.0;
    for (double x : xs)
        sum += (x - mu) * (x - mu);
    return std::sqrt(sum / static_cast<double>(xs.size()));
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double logSum = 0.0;
    for (double x : xs) {
        MITHRA_EXPECTS(x > 0.0, "geomean needs positive samples, got ", x);
        logSum += std::log(x);
    }
    return std::exp(logSum / static_cast<double>(xs.size()));
}

double
minValue(const std::vector<double> &xs)
{
    MITHRA_EXPECTS(!xs.empty(), "minValue of empty sample");
    return *std::min_element(xs.begin(), xs.end());
}

double
maxValue(const std::vector<double> &xs)
{
    MITHRA_EXPECTS(!xs.empty(), "maxValue of empty sample");
    return *std::max_element(xs.begin(), xs.end());
}

double
percentile(std::vector<double> xs, double p)
{
    MITHRA_EXPECTS(!xs.empty(), "percentile of empty sample");
    MITHRA_EXPECTS(p >= 0.0 && p <= 100.0, "percentile out of range: ", p);
    std::sort(xs.begin(), xs.end());
    const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return xs[lo] + frac * (xs[hi] - xs[lo]);
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted(std::move(samples))
{
    MITHRA_EXPECTS(!sorted.empty(), "CDF of empty sample");
    std::sort(sorted.begin(), sorted.end());
}

double
EmpiricalCdf::fractionAtOrBelow(double x) const
{
    const auto it = std::upper_bound(sorted.begin(), sorted.end(), x);
    return static_cast<double>(it - sorted.begin())
        / static_cast<double>(sorted.size());
}

double
EmpiricalCdf::quantile(double p) const
{
    MITHRA_EXPECTS(p >= 0.0 && p <= 1.0, "quantile prob out of range: ", p);
    if (p <= 0.0)
        return sorted.front();
    const auto rank = static_cast<std::size_t>(
        std::ceil(p * static_cast<double>(sorted.size())));
    return sorted[std::min(rank == 0 ? 0 : rank - 1, sorted.size() - 1)];
}

std::vector<std::pair<double, double>>
EmpiricalCdf::series(std::size_t points) const
{
    MITHRA_EXPECTS(points >= 2, "a CDF series needs at least two points");
    std::vector<std::pair<double, double>> out;
    out.reserve(points);
    const double lo = sorted.front();
    const double hi = sorted.back();
    for (std::size_t i = 0; i < points; ++i) {
        const double x = lo + (hi - lo) * static_cast<double>(i)
            / static_cast<double>(points - 1);
        out.emplace_back(x, fractionAtOrBelow(x));
    }
    return out;
}

} // namespace mithra::stats
