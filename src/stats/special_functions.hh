/**
 * @file
 * Special functions needed by the statistical optimizer.
 *
 * The Clopper–Pearson exact method (paper Eq. 3) is defined in terms of
 * quantiles of the F distribution, which are equivalent to quantiles of
 * the Beta distribution. We implement the regularized incomplete beta
 * function I_x(a, b) with the standard Lentz continued-fraction
 * evaluation and invert it with a guarded Newton iteration, so the
 * library has no dependency on external math packages.
 */

#pragma once

namespace mithra::stats
{

/** Natural log of the gamma function. */
double lnGamma(double x);

/** Natural log of the beta function B(a, b). */
double lnBeta(double a, double b);

/**
 * Regularized incomplete beta function I_x(a, b), the CDF of the
 * Beta(a, b) distribution evaluated at x in [0, 1].
 */
double regIncompleteBeta(double a, double b, double x);

/**
 * Inverse of the regularized incomplete beta: the x such that
 * I_x(a, b) = p. Also known as the Beta(a, b) quantile function.
 */
double regIncompleteBetaInv(double a, double b, double p);

/** CDF of the binomial distribution: P(X <= k) for X ~ Bin(n, p). */
double binomialCdf(long k, long n, double p);

/** Quantile of the F distribution with (d1, d2) degrees of freedom. */
double fQuantile(double p, double d1, double d2);

} // namespace mithra::stats

