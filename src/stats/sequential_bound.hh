/**
 * @file
 * Sequential (anytime-valid) Clopper–Pearson bounds on a binomial
 * proportion.
 *
 * The offline certification (clopper_pearson.hh) looks at the data
 * exactly once, so a single exact interval at confidence beta is
 * valid. A runtime monitor cannot do that: it checks the bound after
 * every audited invocation, and a fixed-confidence interval that is
 * consulted repeatedly will eventually lie — with enough looks, some
 * look strays outside the interval even when the true rate never
 * moved (the classic "peeking" problem of sequential testing).
 *
 * SequentialBinomialBound restores the guarantee with alpha spending
 * over a geometric look schedule: the total error budget
 * alpha = 1 - confidence is split across looks j = 0, 1, 2, ... as
 *
 *     alpha_j = alpha * (6 / pi^2) / (j + 1)^2       (sums to alpha)
 *
 * and looks are taken only when the observation count reaches
 * n_j = ceil(firstLook * lookGrowth^j). Each look computes a two-sided
 * Clopper–Pearson interval at confidence 1 - alpha_j (alpha_j / 2 per
 * side) and intersects it with the running envelope. By the union
 * bound, the envelope covers the true proportion at *every* point of
 * the sequence simultaneously with probability >= confidence — the
 * watchdog may consult it after any audit without invalidating it.
 *
 * The bounds only tighten at looks; between looks the envelope is
 * constant, which is what makes the schedule cheap (O(1) amortized
 * incomplete-beta inversions per audit).
 */

#pragma once

#include <cstddef>

namespace mithra::stats
{

/** Knobs for the sequential bound's look schedule. */
struct SequentialBoundOptions
{
    /** Total coverage of the envelope over the whole sequence. */
    double confidence = 0.95;
    /** Observations at which the first look is taken. */
    std::size_t firstLook = 8;
    /** Geometric growth factor between look sample sizes (> 1). */
    double lookGrowth = 1.5;
};

/**
 * An anytime-valid confidence envelope on a Bernoulli success
 * probability, built from Clopper–Pearson intervals with alpha
 * spending (see the file comment). "Success" here is whatever the
 * caller counts — the watchdog counts quality *violations*.
 */
class SequentialBinomialBound
{
  public:
    explicit SequentialBinomialBound(
        const SequentialBoundOptions &options = SequentialBoundOptions{});

    /** Convenience: default schedule at the given confidence. */
    explicit SequentialBinomialBound(double confidence);

    /** Record one observation; takes a look when the schedule says. */
    void record(bool success);

    /** Observations recorded so far. */
    std::size_t observations() const { return numObservations; }

    /** Successes recorded so far. */
    std::size_t successes() const { return numSuccesses; }

    /** Looks (envelope refinements) taken so far. */
    std::size_t looksTaken() const { return numLooks; }

    /** Observation count that triggers the next look. */
    std::size_t nextLookAt() const { return nextLook; }

    /**
     * Anytime-valid upper bound on the success probability: with
     * probability >= confidence the true probability is below this at
     * every point of the sequence. 1 until the first look.
     */
    double upperBound() const { return upperEnvelope; }

    /** Anytime-valid lower bound (0 until the first look). */
    double lowerBound() const { return lowerEnvelope; }

    /** Total confidence the envelope is built for. */
    double confidence() const { return opts.confidence; }

    /** Forget everything; the look schedule restarts too. */
    void reset();

  private:
    /** Intersect the envelope with this look's CP interval. */
    void takeLook();

    SequentialBoundOptions opts;
    std::size_t numObservations = 0;
    std::size_t numSuccesses = 0;
    std::size_t numLooks = 0;
    std::size_t nextLook = 0;
    double upperEnvelope = 1.0;
    double lowerEnvelope = 0.0;
};

/**
 * The per-look error budget: alpha * (6 / pi^2) / (look + 1)^2 for
 * look = 0, 1, 2, ... — a convergent series summing to alpha, spent
 * fastest on the early looks where detection latency matters most.
 * Exposed so tests can cross-check the envelope per look.
 */
double sequentialAlphaAtLook(double alpha, std::size_t look);

/**
 * A [lower, upper] confidence envelope on one proportion — the value
 * pair a SequentialBinomialBound (or a plain Clopper–Pearson interval)
 * exposes, detached from its counts so envelopes from independent
 * monitors can be combined.
 */
struct ProportionEnvelope
{
    double lower = 0.0;
    double upper = 1.0;

    /** True when the envelope still contains at least one value. */
    bool valid() const { return lower <= upper; }
};

/**
 * The confidence each of `parts` parallel monitors must individually
 * carry so that, by the union bound, all of them cover simultaneously
 * with at least `confidence`: 1 - (1 - confidence) / parts. This is
 * the alpha split the sharded runtime applies — each shard's
 * sequential envelope spends alpha / N, and the intersection of the
 * per-shard envelopes keeps the deployment-wide guarantee.
 */
double splitConfidence(double confidence, std::size_t parts);

/**
 * Intersection of two envelopes on the *same* underlying proportion
 * (e.g. per-shard envelopes of one stationary deployment stream).
 * Each envelope covers with its own confidence; by the union bound
 * the intersection covers with 1 - sum of the alphas. An empty
 * intersection (lower > upper) is itself statistical evidence that
 * the shards do not share one proportion — the caller decides what to
 * do with it; this function just reports the clipped interval.
 */
ProportionEnvelope intersectEnvelopes(const ProportionEnvelope &a,
                                      const ProportionEnvelope &b);

} // namespace mithra::stats
