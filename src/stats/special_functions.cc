#include "stats/special_functions.hh"

#include <cmath>
#include <limits>

#include "common/contracts.hh"

namespace mithra::stats
{

double
lnGamma(double x)
{
    MITHRA_EXPECTS(x > 0.0, "lnGamma defined for positive x, got ", x);
    // std::lgamma writes the process-global `signgam`, which races
    // when evaluations run on the worker pool; the reentrant variant
    // reports the sign through an out-parameter instead.
    int sign = 0;
    return ::lgamma_r(x, &sign);
}

double
lnBeta(double a, double b)
{
    return lnGamma(a) + lnGamma(b) - lnGamma(a + b);
}

namespace
{

/**
 * Continued-fraction evaluation of the incomplete beta (modified Lentz
 * method). Converges quickly for x < (a + 1) / (a + b + 2).
 */
double
betaContinuedFraction(double a, double b, double x)
{
    MITHRA_EXPECTS(a > 0.0 && b > 0.0 && x > 0.0 && x < 1.0,
                   "continued fraction outside its domain: a=", a,
                   " b=", b, " x=", x);
    constexpr int maxIterations = 300;
    constexpr double epsilon = 3.0e-14;
    constexpr double tiny = 1.0e-300;

    const double qab = a + b;
    const double qap = a + 1.0;
    const double qam = a - 1.0;

    double c = 1.0;
    double d = 1.0 - qab * x / qap;
    if (std::fabs(d) < tiny)
        d = tiny;
    d = 1.0 / d;
    double h = d;

    for (int m = 1; m <= maxIterations; ++m) {
        const int m2 = 2 * m;
        // Even step.
        double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < tiny)
            d = tiny;
        c = 1.0 + aa / c;
        if (std::fabs(c) < tiny)
            c = tiny;
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < tiny)
            d = tiny;
        c = 1.0 + aa / c;
        if (std::fabs(c) < tiny)
            c = tiny;
        d = 1.0 / d;
        const double del = d * c;
        h *= del;
        if (std::fabs(del - 1.0) < epsilon) {
            MITHRA_ENSURES(std::isfinite(h),
                           "Lentz iteration produced a non-finite value "
                           "(a=", a, " b=", b, " x=", x, ")");
            return h;
        }
    }
    warn("betaContinuedFraction did not converge (a=", a, " b=", b,
         " x=", x, ")");
    MITHRA_ENSURES(std::isfinite(h),
                   "Lentz iteration diverged to a non-finite value "
                   "(a=", a, " b=", b, " x=", x, ")");
    return h;
}

} // namespace

double
regIncompleteBeta(double a, double b, double x)
{
    MITHRA_EXPECTS(a > 0.0 && b > 0.0, "beta parameters must be positive");
    if (x <= 0.0)
        return 0.0;
    if (x >= 1.0)
        return 1.0;

    const double lnFront = a * std::log(x) + b * std::log(1.0 - x)
        - lnBeta(a, b);
    const double front = std::exp(lnFront);

    if (x < (a + 1.0) / (a + b + 2.0))
        return front * betaContinuedFraction(a, b, x) / a;
    // Use the symmetry I_x(a, b) = 1 - I_{1-x}(b, a).
    return 1.0 - front * betaContinuedFraction(b, a, 1.0 - x) / b;
}

double
regIncompleteBetaInv(double a, double b, double p)
{
    MITHRA_EXPECTS(p >= 0.0 && p <= 1.0, "probability out of range: ", p);
    if (p <= 0.0)
        return 0.0;
    if (p >= 1.0)
        return 1.0;

    // Bisection bracket, refined by Newton steps where they behave.
    double lo = 0.0;
    double hi = 1.0;
    double x = a / (a + b); // start at the mean

    for (int iter = 0; iter < 200; ++iter) {
        const double f = regIncompleteBeta(a, b, x) - p;
        if (std::fabs(f) < 1.0e-13)
            break;
        if (f > 0.0)
            hi = x;
        else
            lo = x;

        // Newton step using the beta density as the derivative.
        const double lnPdf = (a - 1.0) * std::log(std::max(x, 1e-300))
            + (b - 1.0) * std::log(std::max(1.0 - x, 1e-300))
            - lnBeta(a, b);
        const double pdf = std::exp(lnPdf);
        double next = x - f / std::max(pdf,
            std::numeric_limits<double>::min());
        if (!(next > lo && next < hi))
            next = 0.5 * (lo + hi); // fall back to bisection
        if (std::fabs(next - x) < 1.0e-15 * (1.0 + std::fabs(x))) {
            x = next;
            break;
        }
        x = next;
    }
    MITHRA_ENSURES(x >= 0.0 && x <= 1.0, "quantile escaped [0, 1]: ", x);
    return x;
}

double
binomialCdf(long k, long n, double p)
{
    MITHRA_EXPECTS(n >= 0 && k <= n, "bad binomial arguments k=", k,
                   " n=", n);
    if (k < 0)
        return 0.0;
    if (k >= n)
        return 1.0;
    // P(X <= k) = I_{1-p}(n - k, k + 1).
    return regIncompleteBeta(static_cast<double>(n - k),
                             static_cast<double>(k + 1), 1.0 - p);
}

double
fQuantile(double p, double d1, double d2)
{
    MITHRA_EXPECTS(d1 > 0.0 && d2 > 0.0, "F dof must be positive");
    // If X ~ F(d1, d2) then d1*X / (d1*X + d2) ~ Beta(d1/2, d2/2).
    const double z = regIncompleteBetaInv(d1 / 2.0, d2 / 2.0, p);
    if (z >= 1.0)
        return std::numeric_limits<double>::infinity();
    return d2 * z / (d1 * (1.0 - z));
}

} // namespace mithra::stats
