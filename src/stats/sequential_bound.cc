#include "stats/sequential_bound.hh"

#include <cmath>

#include "common/contracts.hh"
#include "stats/clopper_pearson.hh"

namespace mithra::stats
{

double
sequentialAlphaAtLook(double alpha, std::size_t look)
{
    MITHRA_EXPECTS(alpha > 0.0 && alpha < 1.0,
                   "alpha must be in (0, 1), got ", alpha);
    // 6 / pi^2 normalizes sum 1/(j+1)^2 to 1 (Basel series).
    constexpr double baselNorm = 0.60792710185402662866;
    const double rank = static_cast<double>(look) + 1.0;
    return alpha * baselNorm / (rank * rank);
}

SequentialBinomialBound::SequentialBinomialBound(
    const SequentialBoundOptions &options)
    : opts(options), nextLook(options.firstLook)
{
    MITHRA_EXPECTS(opts.confidence > 0.0 && opts.confidence < 1.0,
                   "confidence must be in (0, 1), got ", opts.confidence);
    MITHRA_EXPECTS(opts.firstLook >= 1,
                   "the first look needs at least one observation");
    MITHRA_EXPECTS(opts.lookGrowth > 1.0,
                   "look growth must exceed 1, got ", opts.lookGrowth);
}

namespace
{

SequentialBoundOptions
defaultScheduleAt(double confidence)
{
    SequentialBoundOptions options;
    options.confidence = confidence;
    return options;
}

} // namespace

SequentialBinomialBound::SequentialBinomialBound(double confidenceIn)
    : SequentialBinomialBound(defaultScheduleAt(confidenceIn))
{
}

void
SequentialBinomialBound::record(bool success)
{
    ++numObservations;
    if (success)
        ++numSuccesses;
    if (numObservations >= nextLook)
        takeLook();
}

void
SequentialBinomialBound::takeLook()
{
    const double alpha = 1.0 - opts.confidence;
    const double lookAlpha = sequentialAlphaAtLook(alpha, numLooks);
    // Two-sided look: alpha_j / 2 per tail, both bounds valid at once.
    const double sideConfidence = 1.0 - lookAlpha / 2.0;

    const double upper = clopperPearsonUpper(numSuccesses,
                                             numObservations,
                                             sideConfidence);
    const double lower = clopperPearsonLower(numSuccesses,
                                             numObservations,
                                             sideConfidence);

    // Intersect with the envelope: bounds only ever tighten. A valid
    // envelope cannot invert; if sampling noise drives the new
    // interval past the old envelope the truth is outside one of them
    // (probability < alpha) — keep the envelope consistent regardless.
    if (upper < upperEnvelope)
        upperEnvelope = upper;
    if (lower > lowerEnvelope)
        lowerEnvelope = lower;
    if (lowerEnvelope > upperEnvelope)
        lowerEnvelope = upperEnvelope;

    ++numLooks;
    // Next look at ceil(n * growth), strictly advancing.
    const double scaled = static_cast<double>(numObservations)
        * opts.lookGrowth;
    const std::size_t next = static_cast<std::size_t>(std::ceil(scaled));
    nextLook = next > numObservations ? next : numObservations + 1;

    MITHRA_ENSURES(upperEnvelope >= 0.0 && upperEnvelope <= 1.0
                       && lowerEnvelope >= 0.0 && lowerEnvelope <= 1.0,
                   "envelope escaped [0, 1]: [", lowerEnvelope, ", ",
                   upperEnvelope, "]");
}

void
SequentialBinomialBound::reset()
{
    numObservations = 0;
    numSuccesses = 0;
    numLooks = 0;
    nextLook = opts.firstLook;
    upperEnvelope = 1.0;
    lowerEnvelope = 0.0;
}

double
splitConfidence(double confidence, std::size_t parts)
{
    MITHRA_EXPECTS(confidence > 0.0 && confidence < 1.0,
                   "confidence must be in (0, 1), got ", confidence);
    MITHRA_EXPECTS(parts > 0, "confidence split over zero parts");
    const double alpha = 1.0 - confidence;
    return 1.0 - alpha / static_cast<double>(parts);
}

ProportionEnvelope
intersectEnvelopes(const ProportionEnvelope &a,
                   const ProportionEnvelope &b)
{
    ProportionEnvelope merged;
    merged.lower = a.lower > b.lower ? a.lower : b.lower;
    merged.upper = a.upper < b.upper ? a.upper : b.upper;
    return merged;
}

} // namespace mithra::stats
