#include "stats/clopper_pearson.hh"

#include "common/contracts.hh"
#include "stats/special_functions.hh"

namespace mithra::stats
{

namespace
{

void
checkArgs(std::size_t successes, std::size_t trials, double confidence)
{
    MITHRA_EXPECTS(trials > 0, "Clopper-Pearson needs at least one trial");
    MITHRA_EXPECTS(successes <= trials, "successes (", successes,
                   ") exceed trials (", trials, ")");
    MITHRA_EXPECTS(confidence > 0.0 && confidence < 1.0,
                   "confidence must be in (0, 1), got ", confidence);
}

} // namespace

double
clopperPearsonLower(std::size_t successes, std::size_t trials,
                    double confidence)
{
    checkArgs(successes, trials, confidence);
    if (successes == 0)
        return 0.0;
    const double alpha = 1.0 - confidence;
    // Lower bound is the alpha quantile of Beta(k, n - k + 1).
    const double lower =
        regIncompleteBetaInv(static_cast<double>(successes),
                             static_cast<double>(trials - successes) + 1.0,
                             alpha);
    MITHRA_ENSURES(lower >= 0.0 && lower <= 1.0,
                   "lower bound escaped [0, 1]: ", lower);
    return lower;
}

double
clopperPearsonUpper(std::size_t successes, std::size_t trials,
                    double confidence)
{
    checkArgs(successes, trials, confidence);
    if (successes == trials)
        return 1.0;
    const double alpha = 1.0 - confidence;
    // Upper bound is the (1 - alpha) quantile of Beta(k + 1, n - k).
    const double upper =
        regIncompleteBetaInv(static_cast<double>(successes) + 1.0,
                             static_cast<double>(trials - successes),
                             1.0 - alpha);
    MITHRA_ENSURES(upper >= 0.0 && upper <= 1.0,
                   "upper bound escaped [0, 1]: ", upper);
    return upper;
}

ProportionInterval
clopperPearsonInterval(std::size_t successes, std::size_t trials,
                       double confidence)
{
    // Two-sided interval: split the tail mass alpha across both sides.
    const double oneSidedConfidence = 1.0 - (1.0 - confidence) / 2.0;
    ProportionInterval interval{
        clopperPearsonLower(successes, trials, oneSidedConfidence),
        clopperPearsonUpper(successes, trials, oneSidedConfidence)};
    MITHRA_ENSURES(interval.lower <= interval.upper,
                   "interval inverted: [", interval.lower, ", ",
                   interval.upper, "]");
    return interval;
}

std::size_t
requiredSuccesses(std::size_t trials, double targetRate, double confidence)
{
    MITHRA_EXPECTS(targetRate >= 0.0 && targetRate <= 1.0,
                   "target success rate out of range: ", targetRate);
    // clopperPearsonLower is monotone in successes; binary search.
    std::size_t lo = 0;
    std::size_t hi = trials;
    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (clopperPearsonLower(mid, trials, confidence) >= targetRate)
            hi = mid;
        else
            lo = mid + 1;
    }
    if (clopperPearsonLower(lo, trials, confidence) < targetRate)
        return trials + 1; // unreachable even with a perfect record
    return lo;
}

} // namespace mithra::stats
