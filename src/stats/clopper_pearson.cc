#include "stats/clopper_pearson.hh"

#include "common/logging.hh"
#include "stats/special_functions.hh"

namespace mithra::stats
{

namespace
{

void
checkArgs(std::size_t successes, std::size_t trials, double confidence)
{
    MITHRA_ASSERT(trials > 0, "Clopper-Pearson needs at least one trial");
    MITHRA_ASSERT(successes <= trials, "successes (", successes,
                  ") exceed trials (", trials, ")");
    MITHRA_ASSERT(confidence > 0.0 && confidence < 1.0,
                  "confidence must be in (0, 1), got ", confidence);
}

} // namespace

double
clopperPearsonLower(std::size_t successes, std::size_t trials,
                    double confidence)
{
    checkArgs(successes, trials, confidence);
    if (successes == 0)
        return 0.0;
    const double alpha = 1.0 - confidence;
    // Lower bound is the alpha quantile of Beta(k, n - k + 1).
    return regIncompleteBetaInv(static_cast<double>(successes),
                                static_cast<double>(trials - successes)
                                    + 1.0,
                                alpha);
}

double
clopperPearsonUpper(std::size_t successes, std::size_t trials,
                    double confidence)
{
    checkArgs(successes, trials, confidence);
    if (successes == trials)
        return 1.0;
    const double alpha = 1.0 - confidence;
    // Upper bound is the (1 - alpha) quantile of Beta(k + 1, n - k).
    return regIncompleteBetaInv(static_cast<double>(successes) + 1.0,
                                static_cast<double>(trials - successes),
                                1.0 - alpha);
}

ProportionInterval
clopperPearsonInterval(std::size_t successes, std::size_t trials,
                       double confidence)
{
    // Two-sided interval: split the tail mass alpha across both sides.
    const double oneSidedConfidence = 1.0 - (1.0 - confidence) / 2.0;
    return {clopperPearsonLower(successes, trials, oneSidedConfidence),
            clopperPearsonUpper(successes, trials, oneSidedConfidence)};
}

std::size_t
requiredSuccesses(std::size_t trials, double targetRate, double confidence)
{
    MITHRA_ASSERT(targetRate >= 0.0 && targetRate <= 1.0,
                  "target success rate out of range: ", targetRate);
    // clopperPearsonLower is monotone in successes; binary search.
    std::size_t lo = 0;
    std::size_t hi = trials;
    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (clopperPearsonLower(mid, trials, confidence) >= targetRate)
            hi = mid;
        else
            lo = mid + 1;
    }
    if (clopperPearsonLower(lo, trials, confidence) < targetRate)
        return trials + 1; // unreachable even with a perfect record
    return lo;
}

} // namespace mithra::stats
