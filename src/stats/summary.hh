/**
 * @file
 * Descriptive statistics and empirical CDFs used by the evaluation
 * harness (Figure 1 CDF plots, geometric-mean speedups, percentiles).
 */

#pragma once

#include <cstddef>
#include <vector>

namespace mithra::stats
{

/** Arithmetic mean; 0 for an empty sample. */
double mean(const std::vector<double> &xs);

/** Population standard deviation; 0 for fewer than two samples. */
double stddev(const std::vector<double> &xs);

/** Geometric mean; requires strictly positive samples. */
double geomean(const std::vector<double> &xs);

/** Minimum; asserts on empty input. */
double minValue(const std::vector<double> &xs);

/** Maximum; asserts on empty input. */
double maxValue(const std::vector<double> &xs);

/**
 * Linear-interpolated percentile, p in [0, 100]. p = 50 is the median.
 * Asserts on empty input.
 */
double percentile(std::vector<double> xs, double p);

/**
 * Empirical cumulative distribution function over a sample.
 *
 * Used to regenerate the Figure 1 per-element error CDFs: build from
 * the per-element final errors and sample fractionAtOrBelow() over a
 * grid of error levels.
 */
class EmpiricalCdf
{
  public:
    /** Build from a sample (copied and sorted). */
    explicit EmpiricalCdf(std::vector<double> samples);

    /** Fraction of samples <= x. */
    double fractionAtOrBelow(double x) const;

    /** Value below which a fraction p of the samples fall. */
    double quantile(double p) const;

    /** Number of samples. */
    std::size_t size() const { return sorted.size(); }

    /**
     * Evenly spaced (x, fraction) points across the sample range,
     * suitable for printing a CDF series.
     */
    std::vector<std::pair<double, double>> series(std::size_t points) const;

  private:
    std::vector<double> sorted;
};

} // namespace mithra::stats

