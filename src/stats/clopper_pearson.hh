/**
 * @file
 * Clopper–Pearson exact binomial confidence bounds (paper §III-A, Eq. 3).
 *
 * Given n_trials representative datasets of which n_success met the
 * desired final quality loss, the one-sided lower bound at confidence
 * beta is the success rate S such that, with probability beta, at least
 * a fraction S of *unseen* datasets will also meet the quality target.
 * The bound is exact (derived from the Beta distribution) and
 * conservative, exactly as the paper requires.
 */

#pragma once

#include <cstddef>

namespace mithra::stats
{

/** A two-sided confidence interval on a binomial proportion. */
struct ProportionInterval
{
    double lower;
    double upper;
};

/**
 * One-sided Clopper–Pearson lower confidence bound.
 *
 * @param successes  number of datasets meeting the quality target
 * @param trials     total number of datasets evaluated
 * @param confidence degree of confidence beta in (0, 1), e.g. 0.95
 * @return the largest S such that we can claim, with the given
 *         confidence, that the true success rate is at least S
 */
double clopperPearsonLower(std::size_t successes, std::size_t trials,
                           double confidence);

/** One-sided Clopper–Pearson upper confidence bound. */
double clopperPearsonUpper(std::size_t successes, std::size_t trials,
                           double confidence);

/** Two-sided Clopper–Pearson interval at the given confidence. */
ProportionInterval clopperPearsonInterval(std::size_t successes,
                                          std::size_t trials,
                                          double confidence);

/**
 * The smallest number of successes out of @p trials whose one-sided
 * lower bound at @p confidence reaches @p targetRate. Used to report
 * how many validation datasets must pass (the paper's "235 out of 250"
 * for 90% success at 95% confidence).
 */
std::size_t requiredSuccesses(std::size_t trials, double targetRate,
                              double confidence);

} // namespace mithra::stats

