#include "hw/quantizer.hh"

#include <algorithm>
#include <limits>

#include "common/contracts.hh"
#include "common/kernels/kernels.hh"

namespace mithra::hw
{

unsigned
InputQuantizer::defaultBits(std::size_t width)
{
    MITHRA_EXPECTS(width > 0, "zero-width quantizer");
    // Keep the distinct-pattern space (2^(bits*width)) around 2^8: the
    // multi-table OR-ensemble behaves like a Bloom filter over the
    // distinct patterns labeled "precise", and its false-positive rate
    // stays low only while that set is small relative to the table
    // capacity. Values below are the empirical sweet spots from the
    // per-benchmark sweep (see fig11 bench's --bits ablation).
    if (width == 1)
        return 8;
    if (width == 2)
        return 4;
    if (width <= 4)
        return 3;
    if (width <= 10)
        return 2;
    return 1;
}

void
InputQuantizer::calibrate(const VecBatch &inputs, unsigned bitsPerElement)
{
    MITHRA_EXPECTS(!inputs.empty(), "cannot calibrate from no inputs");
    const std::size_t n = inputs.front().size();
    codeBits = bitsPerElement ? bitsPerElement : defaultBits(n);
    MITHRA_ASSERT(codeBits >= 1 && codeBits <= 8,
                  "code width out of range: ", codeBits);

    lows.assign(n, std::numeric_limits<float>::max());
    highs.assign(n, std::numeric_limits<float>::lowest());

    for (const auto &vec : inputs) {
        MITHRA_EXPECTS(vec.size() == n, "ragged input batch: ", vec.size(),
                       " vs ", n);
        for (std::size_t i = 0; i < n; ++i) {
            lows[i] = std::min(lows[i], vec[i]);
            highs[i] = std::max(highs[i], vec[i]);
        }
    }

    // Degenerate (constant) elements get a unit-wide range so the
    // quantizer stays well defined.
    for (std::size_t i = 0; i < n; ++i) {
        if (!(highs[i] > lows[i]))
            highs[i] = lows[i] + 1.0f;
    }
}

InputQuantizer::InputQuantizer(std::vector<float> lowsIn,
                               std::vector<float> highsIn,
                               unsigned bitsPerElement)
    : lows(std::move(lowsIn)), highs(std::move(highsIn)),
      codeBits(bitsPerElement)
{
    MITHRA_EXPECTS(lows.size() == highs.size(),
                   "mismatched quantizer bounds");
    MITHRA_EXPECTS(codeBits >= 1 && codeBits <= 8,
                   "code width out of range: ", codeBits);
    for (std::size_t i = 0; i < lows.size(); ++i)
        MITHRA_EXPECTS(highs[i] > lows[i], "empty range at element ", i);
}

std::vector<std::uint8_t>
InputQuantizer::quantize(const Vec &input) const
{
    MITHRA_EXPECTS(input.size() == lows.size(),
                   "input width ", input.size(), " != calibrated width ",
                   lows.size());
    std::vector<std::uint8_t> codes(input.size());
    quantizeBatch(input.data(), 1, codes.data());
    return codes;
}

void
InputQuantizer::quantizeBatch(const float *inputs, std::size_t count,
                              std::uint8_t *out) const
{
    const std::uint32_t levels = (1u << codeBits) - 1;
    kernels::quantizeBatch(inputs, lows.size(), count, lows.data(),
                           highs.data(), levels, out);
}

} // namespace mithra::hw
