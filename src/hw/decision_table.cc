#include "hw/decision_table.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/contracts.hh"
#include "common/kernels/kernels.hh"
#include "common/parallel.hh"
#include "telemetry/telemetry.hh"

namespace mithra::hw
{

DecisionTable::DecisionTable(unsigned indexBits)
{
    MITHRA_EXPECTS(indexBits >= 4 && indexBits <= 24,
                   "unreasonable table index width: ", indexBits);
    numEntries = std::size_t{1} << indexBits;
    words.assign(numEntries / 64, 0);
}

bool
DecisionTable::bit(std::uint32_t index) const
{
    MITHRA_EXPECTS(index < numEntries, "table index out of range: ", index);
    return (words[index / 64] >> (index % 64)) & 1;
}

void
DecisionTable::setBit(std::uint32_t index)
{
    MITHRA_EXPECTS(index < numEntries, "table index out of range: ", index);
    words[index / 64] |= std::uint64_t{1} << (index % 64);
}

void
DecisionTable::clearBit(std::uint32_t index)
{
    MITHRA_EXPECTS(index < numEntries, "table index out of range: ", index);
    words[index / 64] &= ~(std::uint64_t{1} << (index % 64));
}

std::size_t
DecisionTable::onesCount() const
{
    std::size_t ones = 0;
    for (std::uint64_t word : words)
        ones += static_cast<std::size_t>(std::popcount(word));
    return ones;
}

std::vector<std::uint8_t>
DecisionTable::toBytes() const
{
    std::vector<std::uint8_t> bytes;
    bytes.reserve(words.size() * 8);
    for (std::uint64_t word : words) {
        for (int i = 0; i < 8; ++i)
            bytes.push_back(static_cast<std::uint8_t>(word >> (8 * i)));
    }
    return bytes;
}

DecisionTable
DecisionTable::fromBytes(const std::vector<std::uint8_t> &bytes)
{
    MITHRA_EXPECTS(!bytes.empty() && (bytes.size() & (bytes.size() - 1)) == 0,
                   "table byte size must be a power of two");
    unsigned bits = 0;
    while ((std::size_t{1} << bits) < bytes.size() * 8)
        ++bits;
    DecisionTable table(bits);
    for (std::size_t w = 0; w < table.words.size(); ++w) {
        std::uint64_t word = 0;
        for (int i = 0; i < 8; ++i) {
            word |= static_cast<std::uint64_t>(bytes[w * 8 + i])
                << (8 * i);
        }
        table.words[w] = word;
    }
    MITHRA_ENSURES(table.entries() == bytes.size() * 8,
                   "entry count does not round-trip: ", table.entries(),
                   " from ", bytes.size(), " bytes");
    return table;
}

unsigned
TableGeometry::indexBits() const
{
    MITHRA_EXPECTS(tableBytes >= 2 && (tableBytes & (tableBytes - 1)) == 0,
                   "table size must be a power-of-two byte count, got ",
                   tableBytes);
    unsigned bits = 0;
    while ((std::size_t{1} << bits) < tableBytes * 8)
        ++bits;
    return bits;
}

TableEnsemble::TableEnsemble(const TableGeometry &geometry,
                             std::vector<std::size_t> ids)
    : geom(geometry), configIds(std::move(ids))
{
    MITHRA_EXPECTS(configIds.size() == geom.numTables,
                   "need one MISR configuration per table");
    const unsigned bits = geom.indexBits();
    const auto &pool = misrConfigPool();
    for (std::size_t id : configIds) {
        MITHRA_EXPECTS(id < pool.size(), "MISR pool index out of range: ",
                       id);
        tables.emplace_back(bits);
        misrs.emplace_back(pool[id], bits);
    }
}

bool
TableEnsemble::decidePrecise(std::span<const std::uint8_t> codes) const
{
    // All MISRs hash in parallel in hardware; the combining gate fires
    // "precise" only when every table's entry agrees. Because training
    // marks a precise pattern in all tables, a trained pattern always
    // reads precise; an accelerable pattern must collide with marked
    // entries under all hash functions at once to be misrouted — the
    // Bloom-filter property that makes the multi-table design beat a
    // single large table (see DESIGN.md for the discussion of the
    // paper's OR-gate wording).
    for (std::size_t t = 0; t < tables.size(); ++t) {
        if (!tables[t].bit(misrs[t].hash(codes)))
            return false;
    }
    return true;
}

void
TableEnsemble::markPrecise(std::span<const std::uint8_t> codes)
{
    for (std::size_t t = 0; t < tables.size(); ++t)
        tables[t].setBit(misrs[t].hash(codes));
}

void
TableEnsemble::decideBatch(const std::uint8_t *codes, std::size_t width,
                           std::size_t count, std::uint8_t *out) const
{
    if (count == 0)
        return;
    std::fill(out, out + count, std::uint8_t{1});

    // The combining gate is an AND: once any table clears a row it can
    // never read precise again, so later tables only need to hash the
    // rows still alive. Table 0 sees the full batch; survivors are
    // compacted (codes and origin index side by side) and shrink fast
    // when most of the stream is accelerable, which is exactly the
    // regime the runtime loop runs in. Bitwise identical to hashing
    // every row through every table. Scratch is thread_local because
    // concurrent shards (core/shard.hh) decide blocks in parallel.
    static thread_local std::vector<std::uint32_t> signatures;
    static thread_local std::vector<std::uint8_t> packed;
    static thread_local std::vector<std::uint32_t> origin;
    signatures.resize(count);

    kernels::misrHashBatch(misrs[0].params(), codes, width, count,
                           signatures.data());
    packed.resize(count * width);
    origin.resize(count);
    std::size_t live = 0;
    for (std::size_t i = 0; i < count; ++i) {
        if (tables[0].bit(signatures[i])) {
            std::memcpy(packed.data() + live * width, codes + i * width,
                        width);
            origin[live++] = static_cast<std::uint32_t>(i);
        } else {
            out[i] = 0;
        }
    }

    for (std::size_t t = 1; t < tables.size() && live > 0; ++t) {
        kernels::misrHashBatch(misrs[t].params(), packed.data(), width,
                               live, signatures.data());
        const DecisionTable &table = tables[t];
        std::size_t kept = 0;
        for (std::size_t j = 0; j < live; ++j) {
            if (table.bit(signatures[j])) {
                if (kept != j) {
                    std::memmove(packed.data() + kept * width,
                                 packed.data() + j * width, width);
                    origin[kept] = origin[j];
                }
                ++kept;
            } else {
                out[origin[j]] = 0;
            }
        }
        live = kept;
    }
}

void
TableEnsemble::train(const std::vector<TrainingTuple> &tuples)
{
    // Entries start at zero (always accelerate); conservative fill.
    for (const auto &tuple : tuples) {
        if (tuple.precise)
            markPrecise(tuple.codes);
    }
}

std::vector<std::uint8_t>
TableEnsemble::toBytes() const
{
    std::vector<std::uint8_t> bytes;
    bytes.reserve(geom.totalBytes());
    for (const auto &table : tables) {
        const auto part = table.toBytes();
        bytes.insert(bytes.end(), part.begin(), part.end());
    }
    return bytes;
}

double
TableEnsemble::density() const
{
    std::size_t ones = 0;
    std::size_t total = 0;
    for (const auto &table : tables) {
        ones += table.onesCount();
        total += table.entries();
    }
    return total ? static_cast<double>(ones) / static_cast<double>(total)
                 : 0.0;
}

namespace
{

/** Flatten equal-width tuple codes into one row-major buffer. */
std::vector<std::uint8_t>
flattenCodes(const std::vector<TrainingTuple> &tuples, std::size_t width)
{
    std::vector<std::uint8_t> flat(width * tuples.size());
    for (std::size_t i = 0; i < tuples.size(); ++i) {
        MITHRA_EXPECTS(tuples[i].codes.size() == width,
                       "ragged tuple codes at tuple ", i);
        std::copy(tuples[i].codes.begin(), tuples[i].codes.end(),
                  flat.begin() + static_cast<std::ptrdiff_t>(i * width));
    }
    return flat;
}

} // namespace

FalseDecisionCount
countFalseDecisions(const TableEnsemble &ensemble,
                    const std::vector<TrainingTuple> &tuples)
{
    FalseDecisionCount count;
    count.total = tuples.size();
    if (tuples.empty())
        return count;

    // One flat code buffer; each parallel chunk batch-classifies its
    // slice (the MISRs hash lane-parallel inside decideBatch).
    const std::size_t width = tuples.front().codes.size();
    const std::vector<std::uint8_t> flat = flattenCodes(tuples, width);
    std::vector<std::uint8_t> decisions(tuples.size());
    constexpr std::size_t grain = 8192;
    parallelForChunks(
        0, tuples.size(), grain,
        [&](std::size_t begin, std::size_t end, std::size_t) {
            ensemble.decideBatch(flat.data() + begin * width, width,
                                 end - begin,
                                 decisions.data() + begin);
        });

    for (std::size_t i = 0; i < tuples.size(); ++i) {
        if (decisions[i] && !tuples[i].precise)
            ++count.falsePositives;
        else if (!decisions[i] && tuples[i].precise)
            ++count.falseNegatives;
    }
    // Bulk counts after the reduction, never per tuple: decidePrecise
    // is on the micro-bench hot path.
    MITHRA_COUNT("hw.table.decisions_audited", count.total);
    MITHRA_COUNT("hw.table.false_positives", count.falsePositives);
    MITHRA_COUNT("hw.table.false_negatives", count.falseNegatives);
    return count;
}

TableEnsemble
trainGreedyEnsemble(const TableGeometry &geometry,
                    const std::vector<TrainingTuple> &tuples)
{
    MITHRA_EXPECTS(!tuples.empty(), "cannot train an ensemble on no data");
    MITHRA_SPAN("hw.table.greedy_train");
    MITHRA_COUNT("hw.table.trainings", 1);
    const unsigned bits = geometry.indexBits();
    const auto &pool = misrConfigPool();

    // Hash every tuple under every pool configuration once; the greedy
    // search below then only manipulates precomputed indices. Each of
    // the 16 configurations batch-hashes the same flat code buffer
    // (lane-parallel inside, config-parallel across the pool).
    const std::size_t width = tuples.front().codes.size();
    const std::vector<std::uint8_t> flat = flattenCodes(tuples, width);
    std::vector<std::vector<std::uint32_t>> indices(misrPoolSize);
    parallelFor(0, misrPoolSize, 1, [&](std::size_t id) {
        const Misr misr(pool[id], bits);
        indices[id].resize(tuples.size());
        kernels::misrHashBatch(misr.params(), flat.data(), width,
                               tuples.size(), indices[id].data());
    });

    // Decision of the ensemble built so far, per tuple. With the
    // unanimity combination every table starts by agreeing "precise"
    // and each added table can only veto.
    std::vector<std::uint8_t> accumulated(tuples.size(), 1);

    std::vector<std::size_t> chosen;
    std::vector<bool> used(misrPoolSize, false);

    for (std::size_t t = 0; t < geometry.numTables; ++t) {
        // Evaluate all unused candidate configurations concurrently:
        // each trains its own single table and counts the errors of
        // (existing ensemble AND candidate). The argmin scan below
        // stays serial and in pool order, so the chosen configuration
        // is identical at any thread count.
        std::vector<std::size_t> candidateErrors(misrPoolSize,
                                                 ~std::size_t{0});
        parallelFor(0, misrPoolSize, 1, [&](std::size_t id) {
            if (used[id])
                return;

            // Conservative single-table fill under this configuration.
            DecisionTable candidate(bits);
            for (std::size_t i = 0; i < tuples.size(); ++i) {
                if (tuples[i].precise)
                    candidate.setBit(indices[id][i]);
            }

            std::size_t errors = 0;
            for (std::size_t i = 0; i < tuples.size(); ++i) {
                const bool precise =
                    accumulated[i] && candidate.bit(indices[id][i]);
                if (precise != tuples[i].precise)
                    ++errors;
            }
            candidateErrors[id] = errors;
        });

        // Counted after the parallel region: one eval per unused
        // configuration, independent of the thread count.
        MITHRA_COUNT("hw.table.candidate_evals", misrPoolSize - t);

        std::size_t bestId = misrPoolSize;
        std::size_t bestErrors = ~std::size_t{0};
        for (std::size_t id = 0; id < misrPoolSize; ++id) {
            if (!used[id] && candidateErrors[id] < bestErrors) {
                bestErrors = candidateErrors[id];
                bestId = id;
            }
        }

        MITHRA_ASSERT(bestId < misrPoolSize,
                      "MISR pool exhausted: more tables than configs");
        used[bestId] = true;
        chosen.push_back(bestId);

        // Fold the winner's decisions into the accumulated ensemble.
        DecisionTable winner(bits);
        for (std::size_t i = 0; i < tuples.size(); ++i) {
            if (tuples[i].precise)
                winner.setBit(indices[bestId][i]);
        }
        for (std::size_t i = 0; i < tuples.size(); ++i) {
            accumulated[i] = accumulated[i]
                && winner.bit(indices[bestId][i]);
        }
    }

    TableEnsemble ensemble(geometry, chosen);
    ensemble.train(tuples);
    // Occupancy after the conservative fill. Recorded as a histogram
    // sample, not a gauge: ensembles train concurrently when the
    // experiment runner prefetches workloads, and a last-write-wins
    // value would depend on completion order.
    MITHRA_HIST("hw.table.density", 0.0, 1.0, 20, ensemble.density());
    return ensemble;
}

} // namespace mithra::hw
