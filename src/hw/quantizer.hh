/**
 * @file
 * Input quantizer for the table-based classifier.
 *
 * The MISR hash (paper §IV-A.1) consumes fixed-width bit-vectors, one
 * per accelerator input element. The compiler calibrates a linear
 * 8-bit quantization range per element position from the training
 * inputs; the resulting codes are what stream into the MISRs at
 * runtime. The ranges are part of MITHRA's architectural configuration
 * (saved/restored on context switch alongside the NPU config).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/vec.hh"

namespace mithra::hw
{

/**
 * Per-element linear quantization to codes of a configurable width.
 *
 * The code width is a compile-time decision per application: the
 * distinct-pattern space (2^(bits * elements)) must stay comparable to
 * the decision-table capacity, otherwise accelerator inputs that
 * behave identically land on unrelated table entries and the
 * OR-ensemble drowns in destructive aliasing. The default policy
 * (defaultBits) budgets ~12 bits of pattern space across the input
 * elements, which is also why wide-input benchmarks (jmeint's 18 and
 * jpeg's 64 inputs) stress the table-based design exactly as the paper
 * observes.
 */
class InputQuantizer
{
  public:
    InputQuantizer() = default;

    /** Compile-time policy: bits per element for a given width. */
    static unsigned defaultBits(std::size_t width);

    /**
     * Calibrate per-element [lo, hi] ranges from a sample of input
     * vectors. All vectors must have the same width.
     *
     * @param bitsPerElement code width in [1, 8]; 0 = defaultBits()
     */
    void calibrate(const VecBatch &inputs, unsigned bitsPerElement = 0);

    /** Construct directly from known ranges (for tests/configs). */
    InputQuantizer(std::vector<float> lows, std::vector<float> highs,
                   unsigned bitsPerElement = 8);

    /** Quantize one input vector to one code per element (clamping). */
    std::vector<std::uint8_t> quantize(const Vec &input) const;

    /**
     * Quantize `count` input rows of width() floats each (row-major
     * flat buffer) into `out` through kernels::quantizeBatch. Exactly
     * equal to quantize() per row; the canonical rounding is
     * floor(t * levels + 0.5), identical to round-half-up for every
     * representable value in range.
     */
    void quantizeBatch(const float *inputs, std::size_t count,
                       std::uint8_t *out) const;

    /** Number of calibrated element positions. */
    std::size_t width() const { return lows.size(); }

    /** Code width in bits. */
    unsigned bits() const { return codeBits; }

    /** Calibrated lower bounds per element. */
    const std::vector<float> &lowerBounds() const { return lows; }

    /** Calibrated upper bounds per element. */
    const std::vector<float> &highBounds() const { return highs; }

  private:
    std::vector<float> lows;
    std::vector<float> highs;
    unsigned codeBits = 8;
};

} // namespace mithra::hw

