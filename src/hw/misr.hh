/**
 * @file
 * Multi-Input Signature Register (MISR) hash model (paper §IV-A.1).
 *
 * A MISR folds a stream of input codes into a short signature with XOR
 * gates feeding a shift register. MITHRA uses the final register value
 * as the decision-table index after the last input element of an
 * invocation arrives (tri-state gates isolate the tables until then).
 *
 * The hash must (1) combine every element, (2) minimize destructive
 * aliasing, (3) be cheap in hardware, (4) accept a varying number of
 * inputs and (5) be reconfigurable across applications. We model a
 * reconfigurable MISR as: rotate-by-r, LFSR-style feedback taps, and a
 * per-configuration input spreading pattern (an odd multiplier — a
 * fixed XOR wiring of the input byte across register bits). The pool
 * of 16 fixed configurations below is application independent; the
 * compiler greedily picks which configuration drives each table.
 */

#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "common/kernels/kernels.hh"

namespace mithra::hw
{

/** One fixed MISR wiring from the configuration pool. */
struct MisrConfig
{
    /** Feedback tap mask (XORed parity feeds bit 0). */
    std::uint32_t taps;
    /** Left-rotation applied each step. */
    unsigned rotate;
    /** Odd constant modeling the input spreading XOR wiring. */
    std::uint32_t spread;
    /** Initial register value. */
    std::uint32_t seed;
};

/** Number of fixed configurations in the pool. */
constexpr std::size_t misrPoolSize = 16;

/** The application-independent pool of 16 MISR configurations. */
const std::array<MisrConfig, misrPoolSize> &misrConfigPool();

/**
 * A MISR instance of a given index width, bound to one configuration
 * from the pool.
 */
class Misr
{
  public:
    /**
     * @param config    wiring from misrConfigPool()
     * @param indexBits signature width; the table has 2^indexBits rows
     */
    Misr(const MisrConfig &config, unsigned indexBits);

    /** Reset the register to the configuration seed. */
    void reset();

    /** Shift one 8-bit input code into the register. */
    void shiftIn(std::uint8_t code);

    /** Current signature (valid after the last element arrived). */
    std::uint32_t signature() const;

    /**
     * Convenience: hash a whole invocation's codes in one call. Pure —
     * it runs the register sequence on a local copy of the state, so
     * concurrent hashes through one Misr are safe (the ensemble's
     * decision path is hammered from parallel loops). Accepts any
     * contiguous code range, e.g. one row of a flat batch buffer.
     */
    std::uint32_t hash(std::span<const std::uint8_t> codes) const;

    /** Signature width in bits. */
    unsigned indexBits() const { return bits; }

    /**
     * This wiring flattened for kernels::misrHashBatch, which produces
     * exactly the hash() sequence one lane per invocation.
     */
    kernels::MisrParams params() const;

  private:
    /** One register step: feedback, rotate, spread-in one code. */
    std::uint32_t stepState(std::uint32_t current,
                            std::uint8_t code) const;

    MisrConfig cfg;
    unsigned bits;
    std::uint32_t mask;
    std::uint32_t state;
};

} // namespace mithra::hw

