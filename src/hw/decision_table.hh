/**
 * @file
 * Single-bit decision tables and the multi-table OR ensemble
 * (paper §IV-A).
 *
 * Each table stores one bit per entry: 0 = invoke the accelerator,
 * 1 = fall back to the precise function. Tables are indexed by a MISR
 * signature over the quantized accelerator inputs. Because aliasing in
 * a single small table is biased toward invoking the accelerator, the
 * ensemble ORs several tables that are indexed with *different* MISR
 * configurations — a boosting-like combination of weak learners.
 */

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hw/misr.hh"

namespace mithra::hw
{

/** One training example for the classifiers. */
struct TrainingTuple
{
    /** Quantized accelerator input codes. */
    std::vector<std::uint8_t> codes;
    /** True when the accelerator error exceeded the threshold. */
    bool precise;
};

/** A bit-addressable decision table of 2^indexBits entries. */
class DecisionTable
{
  public:
    /** Create an all-zero table with 2^indexBits single-bit entries. */
    explicit DecisionTable(unsigned indexBits);

    /** Read the decision bit at an index. */
    bool bit(std::uint32_t index) const;

    /** Set (never clear) the decision bit at an index. */
    void setBit(std::uint32_t index);

    /** Clear one bit (used by online-update ablations). */
    void clearBit(std::uint32_t index);

    /** Number of entries. */
    std::size_t entries() const { return numEntries; }

    /** Table storage in bytes (entries / 8). */
    std::size_t sizeBytes() const { return numEntries / 8; }

    /** Population count of set bits (table density diagnostics). */
    std::size_t onesCount() const;

    /** Raw storage for BDI compression / binary encoding. */
    std::vector<std::uint8_t> toBytes() const;

    /** Restore from raw storage (inverse of toBytes). */
    static DecisionTable fromBytes(const std::vector<std::uint8_t> &bytes);

  private:
    std::size_t numEntries;
    std::vector<std::uint64_t> words;
};

/** Geometry of the multi-table design (paper Figure 11 sweeps these). */
struct TableGeometry
{
    /** Number of parallel tables (paper default: 8). */
    std::size_t numTables = 8;
    /** Size of each table in bytes (paper default: 512 B = 0.5 KB). */
    std::size_t tableBytes = 512;

    /** log2 of entries per table (entries = 8 * tableBytes). */
    unsigned indexBits() const;
    /** Total uncompressed storage. */
    std::size_t totalBytes() const { return numTables * tableBytes; }
};

/**
 * The multi-table classifier hardware: N equally sized tables, each
 * hashed by a distinct MISR configuration, combined with an OR gate.
 */
class TableEnsemble
{
  public:
    /**
     * @param geometry  table count / size
     * @param configIds indices into misrConfigPool(), one per table
     */
    TableEnsemble(const TableGeometry &geometry,
                  std::vector<std::size_t> configIds);

    /**
     * Classify one invocation.
     * @return true when the precise function must run (any table hits).
     */
    bool decidePrecise(std::span<const std::uint8_t> codes) const;

    /**
     * Classify `count` invocations of `width` codes each, stored
     * row-major in one flat buffer: out[i] = 1 when invocation i must
     * run precise. Exactly equal to decidePrecise() per row, but each
     * table hashes the whole batch through kernels::misrHashBatch.
     */
    void decideBatch(const std::uint8_t *codes, std::size_t width,
                     std::size_t count, std::uint8_t *out) const;

    /**
     * Conservative training step: mark this input as precise in every
     * table (paper §IV-C.1; aliasing keeps the entry 1 even when other
     * aliased inputs are accelerable).
     */
    void markPrecise(std::span<const std::uint8_t> codes);

    /** Train from scratch over a tuple set (entries start at 0). */
    void train(const std::vector<TrainingTuple> &tuples);

    /** Geometry accessor. */
    const TableGeometry &geometry() const { return geom; }

    /** MISR pool indices in table order. */
    const std::vector<std::size_t> &misrConfigIds() const
    {
        return configIds;
    }

    /** Access a table (diagnostics/tests). */
    const DecisionTable &table(std::size_t i) const { return tables[i]; }

    /** Mutable table access (fault injection harness). */
    DecisionTable &mutableTable(std::size_t i) { return tables[i]; }

    /** Concatenated raw bytes of all tables (for BDI compression). */
    std::vector<std::uint8_t> toBytes() const;

    /** Fraction of set bits across all tables. */
    double density() const;

  private:
    TableGeometry geom;
    std::vector<std::size_t> configIds;
    std::vector<DecisionTable> tables;
    /** One MISR per table (hashing is pure; decide is thread-safe). */
    std::vector<Misr> misrs;
};

/**
 * Count the false decisions an ensemble makes against labeled tuples.
 * falsePositive: label says accelerate, ensemble says precise.
 * falseNegative: label says precise, ensemble says accelerate.
 */
struct FalseDecisionCount
{
    std::size_t falsePositives = 0;
    std::size_t falseNegatives = 0;
    std::size_t total = 0;

    std::size_t errors() const { return falsePositives + falseNegatives; }
};

FalseDecisionCount countFalseDecisions(
    const TableEnsemble &ensemble,
    const std::vector<TrainingTuple> &tuples);

/**
 * Compiler-side greedy construction (paper §IV-A.2): assign the first
 * table the pool configuration with the fewest false decisions when
 * trained alone, then grow the ensemble one table at a time, always
 * adding the configuration that minimizes the ensemble's false
 * decisions on the training tuples.
 */
TableEnsemble trainGreedyEnsemble(const TableGeometry &geometry,
                                  const std::vector<TrainingTuple> &tuples);

} // namespace mithra::hw

