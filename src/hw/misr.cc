#include "hw/misr.hh"

#include <bit>

#include "common/contracts.hh"

namespace mithra::hw
{

const std::array<MisrConfig, misrPoolSize> &
misrConfigPool()
{
    // Taps are primitive-polynomial-style masks; spread constants are
    // odd so every input bit reaches several register bits; seeds and
    // rotations differ so the 16 configurations map the same input
    // stream to dissimilar signatures.
    static const std::array<MisrConfig, misrPoolSize> pool = {{
        {0x0000002d, 1, 0x9e3779b1, 0x0badf00d},
        {0x00000053, 3, 0x85ebca77, 0x12345678},
        {0x000000c3, 5, 0xc2b2ae3d, 0xdeadbeef},
        {0x00000119, 7, 0x27d4eb2f, 0xcafebabe},
        {0x00000187, 2, 0x165667b1, 0x01234567},
        {0x00000211, 4, 0xd3a2646d, 0x89abcdef},
        {0x000002dd, 6, 0xfd7046c5, 0xfeedface},
        {0x00000369, 8, 0xb55a4f09, 0x0f1e2d3c},
        {0x000004a1, 1, 0x8da6b343, 0x55aa55aa},
        {0x0000058b, 3, 0xd8163841, 0xa5a5a5a5},
        {0x00000679, 5, 0xcb1ab31f, 0x77777777},
        {0x0000071d, 7, 0xa91e8f39, 0x31415926},
        {0x000008e5, 2, 0x63d83595, 0x27182818},
        {0x0000090f, 4, 0x4ed8aa4b, 0x16180339},
        {0x00000a93, 6, 0x2b7e1519, 0x0c0ffee0},
        {0x00000bb7, 8, 0x71374491, 0x600dd06e},
    }};
    return pool;
}

Misr::Misr(const MisrConfig &config, unsigned indexBits)
    : cfg(config), bits(indexBits)
{
    MITHRA_EXPECTS(indexBits >= 4 && indexBits <= 24,
                   "unreasonable MISR width: ", indexBits);
    mask = (std::uint32_t{1} << bits) - 1;
    reset();
}

void
Misr::reset()
{
    state = cfg.seed & mask;
}

std::uint32_t
Misr::stepState(std::uint32_t current, std::uint8_t code) const
{
    // LFSR-style feedback: parity of tapped bits enters at bit 0.
    const std::uint32_t feedback =
        static_cast<std::uint32_t>(std::popcount(current & cfg.taps) & 1);

    // Rotate within the signature width.
    const unsigned r = cfg.rotate % bits;
    current = ((current << r) | (current >> (bits - r))) & mask;
    current ^= feedback;

    // XOR the incoming code through the spreading wiring.
    const std::uint32_t spreadCode =
        (static_cast<std::uint32_t>(code) * cfg.spread) & mask;
    return current ^ spreadCode;
}

void
Misr::shiftIn(std::uint8_t code)
{
    state = stepState(state, code);
}

std::uint32_t
Misr::signature() const
{
    return state;
}

std::uint32_t
Misr::hash(std::span<const std::uint8_t> codes) const
{
    // Same register sequence as reset(); shiftIn()...; signature(),
    // but on a local register so the call has no shared state.
    std::uint32_t local = cfg.seed & mask;
    for (std::uint8_t code : codes)
        local = stepState(local, code);
    MITHRA_ENSURES(local <= mask, "signature ", local,
                   " escaped the register width");
    return local;
}

kernels::MisrParams
Misr::params() const
{
    kernels::MisrParams p;
    p.taps = cfg.taps;
    p.spread = cfg.spread;
    p.seed = cfg.seed;
    p.mask = mask;
    p.rotate = cfg.rotate;
    p.bits = bits;
    return p;
}

} // namespace mithra::hw
